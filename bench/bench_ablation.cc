// Ablation study: each optimization in isolation and in combination, plus the
// paper's stated future work — merging the optimizations with a DRAM young
// allocation space ("using DRAM for both allocation and GC", Section 5.2).
//
// This is not a paper figure; it isolates the contribution of every design
// choice DESIGN.md calls out.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

struct AblationCase {
  const char* name;
  bool write_cache = false;
  bool non_temporal = false;
  bool header_map = false;
  bool prefetch = true;   // Vanilla G1 ships with prefetch.
  bool async = false;
  bool eden_on_dram = false;
  // Start from AdaptiveOptions() and let the policy engine retune between
  // pauses (the flag fields above are ignored then).
  bool adaptive = false;
};

double RunCase(const WorkloadProfile& profile, const AblationCase& c, uint32_t threads) {
  const int reps = BenchRepetitions();
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    GcOptions gc;
    if (c.adaptive) {
      gc = AdaptiveOptions(CollectorKind::kG1, threads);
    } else {
      gc = VanillaOptions(CollectorKind::kG1, threads);
      gc.use_write_cache = c.write_cache;
      gc.use_non_temporal = c.non_temporal;
      gc.use_header_map = c.header_map;
      gc.prefetch = c.prefetch;
      gc.prefetch_header_map = c.header_map && c.prefetch;
      gc.async_flush = c.async;
    }
    WorkloadProfile p = profile;
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    total += RunSingle(p, DefaultHeap(DeviceKind::kNvm, c.eden_on_dram), gc).gc_seconds();
  }
  return total / reps;
}

int Main(BenchContext& ctx) {
  const uint32_t gc_threads = ctx.threads(20);
  const AblationCase cases[] = {
      {"vanilla"},
      {"no-prefetch", false, false, false, false},
      {"+writecache", true},
      {"+writecache+nt", true, true},
      {"+headermap only", false, false, true},
      {"+all (sync)", true, true, true},
      {"+all (async)", true, true, true, true, true},
      {"adaptive", false, false, false, true, false, false, true},
      {"young-dram", false, false, false, true, false, true},
      {"young-dram +all (future work)", true, true, true, true, false, true},
  };
  std::printf("=== Ablation: GC time per design choice (%u GC threads, NVM heap) ===\n\n",
              gc_threads);
  for (const char* app : {"page-rank", "naive-bayes", "dotty"}) {
    const WorkloadProfile profile = RenaissanceProfile(app);
    std::printf("--- %s ---\n", app);
    TablePrinter table({"configuration", "GC time (s)", "vs vanilla"});
    double vanilla = 0.0;
    for (const AblationCase& c : cases) {
      const double seconds = RunCase(profile, c, gc_threads);
      if (std::string(c.name) == "vanilla") {
        vanilla = seconds;
      }
      table.AddRow({c.name, FormatDouble(seconds, 3),
                    FormatDouble(vanilla / seconds, 2) + "x"});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("The last row implements the paper's future work: DRAM serves allocation\n"
              "while the write cache + header map serve collection.\n");
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(ablation)
