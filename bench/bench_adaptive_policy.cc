// Adaptive-policy bench: a phase-shifting workload where no single static
// configuration is right for the whole run.
//
// One VM runs three back-to-back phases on the NVM heap:
//   1. alloc-heavy    — high allocation rate, almost nothing survives: pauses
//                       are cheap, a big write cache is wasted DRAM;
//   2. survivor-heavy — a large live window with high survival: heavy copying
//                       wants the full cache, the header map, async flushing;
//   3. steal-heavy    — one deep chain dominates: load imbalance drives work
//                       stealing, which taints async region readiness.
//
// Static configurations keep one setting across all three phases; the
// adaptive configuration starts from AdaptiveOptions() and lets the policy
// engine retune between pauses. Acceptance (checked here, exit code != 0 on
// violation):
//   - per phase, adaptive GC time is within 10% of the best static config;
//   - end-to-end, adaptive beats the worst static config by at least 20%.

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/policy/policy_engine.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

constexpr size_t kPhaseCount = 3;
const char* const kPhaseNames[kPhaseCount] = {"alloc-heavy", "survivor-heavy",
                                              "steal-heavy"};

WorkloadProfile PhaseProfile(size_t phase, uint64_t seed) {
  WorkloadProfile p;
  p.name = kPhaseNames[phase];
  p.seed = seed + phase * 101;
  p.total_allocation_bytes = 48 * 1024 * 1024;
  switch (phase) {
    case 0:  // Alloc-heavy: churn with a tiny survivor stream.
      p.survival_fraction = 0.02;
      p.live_window_bytes = 1 * 1024 * 1024;
      p.reads_per_alloc = 0.2;
      p.writes_per_alloc = 0.1;
      break;
    case 1:  // Survivor-heavy: a large, hot live window.
      p.survival_fraction = 0.35;
      p.live_window_bytes = 10 * 1024 * 1024;
      p.small_object_fraction = 0.7;
      break;
    default:  // Steal-heavy: most survivors feed one deep chain.
      p.survival_fraction = 0.15;
      p.live_window_bytes = 6 * 1024 * 1024;
      p.chain_fraction = 0.85;
      break;
  }
  return p;
}

struct BenchConfig {
  const char* name;
  GcOptions gc;
  bool adaptive = false;
};

struct ConfigResult {
  std::array<uint64_t, kPhaseCount> phase_gc_ns{};
  uint64_t total_gc_ns = 0;
  uint64_t total_ns = 0;
  size_t gc_count = 0;
  size_t decisions = 0;
  uint64_t retreats = 0;
};

// Runs all three phases on one VM and returns per-phase GC-time deltas.
// Observability artifacts are harvested from the first repetition only.
ConfigResult RunPhases(BenchContext& ctx, const BenchConfig& config, uint64_t seed,
                       bool observe, const std::string& label) {
  VmOptions options;
  options.heap = DefaultHeap(DeviceKind::kNvm);
  options.gc = config.gc;
  options.trace_gc = observe && ctx.tracing();
  Vm vm(options);

  ConfigResult r;
  const double scale = BenchScale();
  for (size_t phase = 0; phase < kPhaseCount; ++phase) {
    WorkloadProfile p = PhaseProfile(phase, seed);
    p.total_allocation_bytes =
        static_cast<size_t>(static_cast<double>(p.total_allocation_bytes) * scale);
    const uint64_t gc_before = vm.gc_time_ns();
    SyntheticApp(&vm, p).Run();
    r.phase_gc_ns[phase] = vm.gc_time_ns() - gc_before;
  }
  r.total_gc_ns = vm.gc_time_ns();
  r.total_ns = vm.now_ns();
  r.gc_count = vm.gc_count();
  if (vm.policy() != nullptr) {
    r.decisions = vm.policy()->decisions().size();
    r.retreats = vm.policy()->retreats();
  }

  if (observe && ctx.observing()) {
    BenchRunRecord record;
    record.label = label;
    record.workload = "phase-shift";
    record.config = {{"config", config.name},
                     {"device", "nvm"},
                     {"collector", CollectorKindName(config.gc.collector)},
                     {"threads", std::to_string(config.gc.gc_threads)}};
    record.result.name = "phase-shift/" + std::string(config.name);
    record.result.total_ns = r.total_ns;
    record.result.gc_ns = r.total_gc_ns;
    record.result.app_ns = r.total_ns - r.total_gc_ns;
    record.result.gc_count = r.gc_count;
    record.pauses = vm.metrics().pauses();
    record.counters = vm.metrics().counters();
    record.gauges = vm.metrics().gauges();
    record.histograms = vm.metrics().Summaries();
    if (ctx.timeline_enabled()) {
      record.timeline = vm.timeline().samples();
    }
    for (size_t phase = 0; phase < kPhaseCount; ++phase) {
      record.extra[std::string(kPhaseNames[phase]) + "_gc_ms"] =
          static_cast<double>(r.phase_gc_ns[phase]) / 1e6;
    }
    record.extra["policy_decisions"] = static_cast<double>(r.decisions);
    record.extra["policy_retreats"] = static_cast<double>(r.retreats);
    ctx.AppendTrace(vm.tracer(), record.label);
    ctx.RecordRun(std::move(record));
  }
  return r;
}

int Main(BenchContext& ctx) {
  const uint32_t threads = ctx.threads(8);
  const CollectorKind collector = ctx.collector(CollectorKind::kG1);
  const int reps = BenchRepetitions();

  std::vector<BenchConfig> configs;
  configs.push_back({"vanilla", VanillaOptions(collector, threads)});
  {
    // All optimizations but a deliberately small, synchronously flushed cache:
    // fine for the alloc-heavy phase, starved in the survivor-heavy one.
    GcOptions gc = AllOptimizationsOptions(collector, threads);
    gc.write_cache_bytes = 512 * 1024;
    configs.push_back({"small-cache-sync", gc});
  }
  configs.push_back(
      {"all-async",
       GcOptionsBuilder(AllOptimizationsOptions(collector, threads)).AsyncFlush().Build()});
  configs.push_back({"adaptive", AdaptiveOptions(collector, threads), /*adaptive=*/true});

  std::printf("=== Adaptive policy vs static configurations "
              "(phase-shifting workload, %u GC threads, NVM heap) ===\n\n",
              threads);

  std::vector<ConfigResult> results(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    const std::string label = "phase-shift/" + std::string(configs[i].name) + "/nvm/" +
                              CollectorKindName(collector) + "/t" + std::to_string(threads);
    ConfigResult avg;
    for (int rep = 0; rep < reps; ++rep) {
      const ConfigResult r = RunPhases(ctx, configs[i], 1 + static_cast<uint64_t>(rep) * 7919,
                                       /*observe=*/rep == 0, label);
      for (size_t p = 0; p < kPhaseCount; ++p) {
        avg.phase_gc_ns[p] += r.phase_gc_ns[p];
      }
      avg.total_gc_ns += r.total_gc_ns;
      avg.total_ns += r.total_ns;
      avg.gc_count += r.gc_count;
      avg.decisions += r.decisions;
      avg.retreats += r.retreats;
    }
    for (size_t p = 0; p < kPhaseCount; ++p) {
      avg.phase_gc_ns[p] /= reps;
    }
    avg.total_gc_ns /= reps;
    avg.total_ns /= reps;
    avg.gc_count /= reps;
    avg.decisions /= reps;
    avg.retreats /= static_cast<uint64_t>(reps);
    results[i] = avg;
  }

  TablePrinter table({"configuration", "alloc (ms)", "survivor (ms)", "steal (ms)",
                      "GC total (ms)", "GCs", "decisions"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& r = results[i];
    table.AddRow({configs[i].name,
                  FormatDouble(static_cast<double>(r.phase_gc_ns[0]) / 1e6, 2),
                  FormatDouble(static_cast<double>(r.phase_gc_ns[1]) / 1e6, 2),
                  FormatDouble(static_cast<double>(r.phase_gc_ns[2]) / 1e6, 2),
                  FormatDouble(static_cast<double>(r.total_gc_ns) / 1e6, 2),
                  std::to_string(r.gc_count),
                  configs[i].adaptive ? std::to_string(r.decisions) : "-"});
  }
  table.Print();

  // --- Acceptance ---
  // Sanitizer instrumentation perturbs host thread scheduling, which shifts
  // work-steal counts and therefore the simulated steal-taint costs; the
  // performance bars are only meaningful in uninstrumented builds, so there
  // violations are reported but not enforced.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kEnforceAcceptance = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  constexpr bool kEnforceAcceptance = false;
#else
  constexpr bool kEnforceAcceptance = true;
#endif
#else
  constexpr bool kEnforceAcceptance = true;
#endif
  const ConfigResult& adaptive = results.back();
  int violations = 0;
  std::printf("\nAcceptance:\n");
  for (size_t p = 0; p < kPhaseCount; ++p) {
    uint64_t best = UINT64_MAX;
    for (size_t i = 0; i + 1 < configs.size(); ++i) {
      best = std::min(best, results[i].phase_gc_ns[p]);
    }
    const double ratio = static_cast<double>(adaptive.phase_gc_ns[p]) /
                         static_cast<double>(best);
    const bool ok = ratio <= 1.10;
    std::printf("  %-14s adaptive/best-static = %.3f (<= 1.10) %s\n", kPhaseNames[p],
                ratio, ok ? "OK" : "VIOLATION");
    violations += ok ? 0 : 1;
  }
  uint64_t worst = 0;
  for (size_t i = 0; i + 1 < configs.size(); ++i) {
    worst = std::max(worst, results[i].total_gc_ns);
  }
  const double end_to_end = static_cast<double>(adaptive.total_gc_ns) /
                            static_cast<double>(worst);
  const bool e2e_ok = end_to_end <= 0.80;
  std::printf("  end-to-end     adaptive/worst-static = %.3f (<= 0.80) %s\n", end_to_end,
              e2e_ok ? "OK" : "VIOLATION");
  violations += e2e_ok ? 0 : 1;
  std::printf("  policy: %zu decisions, %llu retreats over %zu GCs\n", adaptive.decisions,
              static_cast<unsigned long long>(adaptive.retreats), adaptive.gc_count);
  if (!kEnforceAcceptance && violations > 0) {
    std::printf("  (sanitizer build: %d violation(s) reported, not enforced)\n", violations);
  }
  return (kEnforceAcceptance && violations > 0) ? 1 : 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(adaptive_policy)
