#include "bench/bench_common.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "bench/bench_runner.h"
#include "src/runtime/vm.h"

namespace nvmgc {

namespace {

// A compact tag describing the GcOptions knobs that matter for telling sweep
// points apart ("wc" / "wc:32768" / "hm:16384" / "nt" / "async" / ...).
std::string GcOptionsTag(const GcOptions& gc) {
  std::string tag;
  const auto add = [&tag](const std::string& part) {
    if (!tag.empty()) {
      tag.push_back('+');
    }
    tag.append(part);
  };
  if (gc.use_write_cache) {
    add(gc.unlimited_write_cache
            ? std::string("wc:unlimited")
            : (gc.write_cache_bytes > 0 ? "wc:" + std::to_string(gc.write_cache_bytes) : "wc"));
  }
  if (gc.use_header_map) {
    add(gc.header_map_bytes > 0 ? "hm:" + std::to_string(gc.header_map_bytes) : "hm");
  }
  if (gc.use_non_temporal) {
    add("nt");
  }
  if (gc.async_flush) {
    add("async");
  }
  if (gc.prefetch) {
    add(gc.prefetch_header_map ? "pf:hm" : "pf");
  }
  return tag.empty() ? "vanilla" : tag;
}

double g_scale = -1.0;  // <0: uninitialized, read env on first use.
int g_reps = 0;         // 0: uninitialized.

// Label → filesystem-safe subdirectory name for incident dumps ("/" and
// anything else exotic becomes "_").
std::string SanitizeLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' && c != '_' &&
        c != '.' && c != '+') {
      c = '_';
    }
  }
  return out;
}

// Arms the flight recorder's incident dumps for one observed run: each label
// gets its own subdirectory of --flight-record so per-recorder incident
// sequence numbers never collide across Vms.
void ApplyFlightRecorder(const BenchContext& ctx, const std::string& label,
                         VmOptions* options) {
  if (!ctx.flight_recording()) {
    return;
  }
  options->flight_recorder.dump_dir = ctx.flight_record_dir() + "/" + SanitizeLabel(label);
  if (ctx.fr_threshold_ns() > 0) {
    options->flight_recorder.pause_threshold_ns = ctx.fr_threshold_ns();
  }
}

}  // namespace

const char* GcVariantName(GcVariant variant) {
  switch (variant) {
    case GcVariant::kVanilla:
      return "vanilla";
    case GcVariant::kWriteCache:
      return "+writecache";
    case GcVariant::kAll:
      return "+all";
    case GcVariant::kAllAsync:
      return "+all-async";
  }
  return "?";
}

const char* DeviceKindShortName(DeviceKind kind) {
  return kind == DeviceKind::kDram ? "dram" : "nvm";
}

HeapConfig DefaultHeap(DeviceKind device, bool eden_on_dram) {
  HeapConfig h;
  h.region_bytes = 64 * 1024;
  h.heap_regions = 1024;       // 64 MiB heap.
  h.eden_regions = 128;        // 8 MiB eden.
  h.dram_cache_regions = 384;  // Staging + (optionally) DRAM eden.
  // Long-lived data tenures into the old generation after a few copies and is
  // reclaimed there by the concurrent-cycle analog; the young copy path then
  // handles the recent-survivor volume a write cache of heap/32 is sized for.
  h.tenure_age = 3;
  h.heap_device = device;
  h.eden_on_dram = eden_on_dram;
  const BenchContext* ctx = CurrentBenchContext();
  if (ctx != nullptr && ctx->has_heap_mb()) {
    // Scale every region count by the requested heap size (64 KiB regions →
    // 16 regions per MiB) so eden and the DRAM cache keep their proportions.
    const double factor = static_cast<double>(ctx->heap_mb()) * 16.0 /
                          static_cast<double>(h.heap_regions);
    h.heap_regions = static_cast<uint32_t>(ctx->heap_mb()) * 16;
    h.eden_regions = std::max<uint32_t>(1, static_cast<uint32_t>(h.eden_regions * factor));
    h.dram_cache_regions =
        std::max<uint32_t>(1, static_cast<uint32_t>(h.dram_cache_regions * factor));
  }
  return h;
}

GcOptions MakeGcOptions(GcVariant variant, uint32_t threads, CollectorKind collector) {
  switch (variant) {
    case GcVariant::kVanilla:
      return VanillaOptions(collector, threads);
    case GcVariant::kWriteCache:
      return WriteCacheOptions(collector, threads);
    case GcVariant::kAll:
      return AllOptimizationsOptions(collector, threads);
    case GcVariant::kAllAsync:
      return GcOptionsBuilder(AllOptimizationsOptions(collector, threads)).AsyncFlush().Build();
  }
  return VanillaOptions(collector, threads);
}

double BenchScale() {
  if (g_scale < 0.0) {
    const char* env = std::getenv("NVMGC_BENCH_SCALE");
    const double v = env != nullptr ? std::atof(env) : 1.0;
    g_scale = v > 0.0 ? v : 1.0;
  }
  return g_scale;
}

void SetBenchScale(double scale) { g_scale = scale > 0.0 ? scale : 1.0; }

int BenchRepetitions() {
  if (g_reps == 0) {
    const char* env = std::getenv("NVMGC_BENCH_REPS");
    const int v = env != nullptr ? std::atoi(env) : 2;
    g_reps = v >= 1 ? v : 1;
  }
  return g_reps;
}

void SetBenchRepetitions(int reps) { g_reps = reps >= 1 ? reps : 1; }

WorkloadProfile ScaledProfile(WorkloadProfile profile) {
  const double scale = BenchScale();
  if (scale > 0.0 && scale != 1.0) {
    profile.total_allocation_bytes =
        static_cast<size_t>(static_cast<double>(profile.total_allocation_bytes) * scale);
  }
  return profile;
}

WorkloadResult RunSingle(const WorkloadProfile& profile, const HeapConfig& heap,
                         const GcOptions& gc) {
  BenchContext* ctx = CurrentBenchContext();
  if (ctx == nullptr || (!ctx->observing() && !ctx->flight_recording())) {
    return RunWorkload(ScaledProfile(profile), heap, gc);
  }
  VmOptions options;
  options.heap = heap;
  options.gc = gc;
  options.trace_gc = ctx->tracing();
  BenchRunRecord record;
  record.workload = profile.name;
  record.config = {{"collector", CollectorKindName(gc.collector)},
                   {"device", DeviceKindShortName(heap.heap_device)},
                   {"threads", std::to_string(gc.gc_threads)},
                   {"options", GcOptionsTag(gc)}};
  record.label = profile.name + "/" + GcOptionsTag(gc) + "/" +
                 DeviceKindShortName(heap.heap_device) + "/" +
                 CollectorKindName(gc.collector) + "/t" + std::to_string(gc.gc_threads);
  ApplyFlightRecorder(*ctx, record.label, &options);
  WorkloadResult result = RunWorkload(ScaledProfile(profile), options, [&](Vm& vm) {
    record.pauses = vm.metrics().pauses();
    record.counters = vm.metrics().counters();
    record.gauges = vm.metrics().gauges();
    record.histograms = vm.metrics().Summaries();
    if (ctx->timeline_enabled()) {
      record.timeline = vm.timeline().samples();
    }
    ctx->AppendTrace(vm.tracer(), record.label);
    if (ctx->flight_recording()) {
      // End-of-run explicit dump: every flight-recorded label ships at least
      // one incident file even when no anomaly trigger fired.
      vm.DumpFlightRecord();
    }
  });
  record.result = result;
  ctx->RecordRun(std::move(record));
  return result;
}

WorkloadResult RunOnce(const WorkloadProfile& profile, DeviceKind device, GcVariant variant,
                       uint32_t threads, CollectorKind collector, bool eden_on_dram) {
  BenchContext* ctx = CurrentBenchContext();
  const int reps = BenchRepetitions();
  const HeapConfig heap = DefaultHeap(device, eden_on_dram);
  const GcOptions gc = MakeGcOptions(variant, threads, collector);

  BenchRunRecord record;
  record.workload = profile.name;
  record.reps = reps;
  record.config = {{"variant", GcVariantName(variant)},
                   {"device", DeviceKindShortName(device)},
                   {"collector", CollectorKindName(collector)},
                   {"threads", std::to_string(threads)},
                   {"eden_on_dram", eden_on_dram ? "true" : "false"}};
  record.label = profile.name + std::string("/") + GcVariantName(variant) + "/" +
                 DeviceKindShortName(device) + (eden_on_dram ? "-young-dram" : "") + "/" +
                 CollectorKindName(collector) + "/t" + std::to_string(threads);

  WorkloadResult avg;
  double bw_sum = 0.0;
  bool observed = false;
  for (int rep = 0; rep < reps; ++rep) {
    WorkloadProfile p = profile;
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    WorkloadResult r;
    if (rep == 0 && ctx != nullptr && (ctx->observing() || ctx->flight_recording())) {
      // Observe the first repetition only: repetitions differ only in seed,
      // and one pause-by-pause record per data point keeps artifacts small.
      VmOptions options;
      options.heap = heap;
      options.gc = gc;
      options.trace_gc = ctx->tracing();
      ApplyFlightRecorder(*ctx, record.label, &options);
      r = RunWorkload(ScaledProfile(p), options, [&](Vm& vm) {
        record.pauses = vm.metrics().pauses();
        record.counters = vm.metrics().counters();
        record.gauges = vm.metrics().gauges();
        record.histograms = vm.metrics().Summaries();
        if (ctx->timeline_enabled()) {
          record.timeline = vm.timeline().samples();
        }
        ctx->AppendTrace(vm.tracer(), record.label);
        if (ctx->flight_recording()) {
          // End-of-run explicit dump: every flight-recorded label ships at
          // least one incident file even without an anomaly trigger.
          vm.DumpFlightRecord();
        }
      });
      observed = true;
    } else {
      r = RunWorkload(ScaledProfile(p), heap, gc);
    }
    avg.name = r.name;
    avg.total_ns += r.total_ns;
    avg.gc_ns += r.gc_ns;
    avg.app_ns += r.app_ns;
    avg.gc_count += r.gc_count;
    avg.bytes_allocated += r.bytes_allocated;
    bw_sum += r.gc_bandwidth_mbps;
  }
  avg.total_ns /= reps;
  avg.gc_ns /= reps;
  avg.app_ns /= reps;
  avg.gc_count /= reps;
  avg.bytes_allocated /= reps;
  avg.gc_bandwidth_mbps = bw_sum / reps;
  if (observed) {
    record.result = avg;
    ctx->RecordRun(std::move(record));
  }
  return avg;
}

}  // namespace nvmgc
