#include "bench/bench_common.h"

#include <cstdlib>

namespace nvmgc {

const char* GcVariantName(GcVariant variant) {
  switch (variant) {
    case GcVariant::kVanilla:
      return "vanilla";
    case GcVariant::kWriteCache:
      return "+writecache";
    case GcVariant::kAll:
      return "+all";
    case GcVariant::kAllAsync:
      return "+all-async";
  }
  return "?";
}

HeapConfig DefaultHeap(DeviceKind device, bool eden_on_dram) {
  HeapConfig h;
  h.region_bytes = 64 * 1024;
  h.heap_regions = 1024;       // 64 MiB heap.
  h.eden_regions = 128;        // 8 MiB eden.
  h.dram_cache_regions = 384;  // Staging + (optionally) DRAM eden.
  // Long-lived data tenures into the old generation after a few copies and is
  // reclaimed there by the concurrent-cycle analog; the young copy path then
  // handles the recent-survivor volume a write cache of heap/32 is sized for.
  h.tenure_age = 3;
  h.heap_device = device;
  h.eden_on_dram = eden_on_dram;
  return h;
}

GcOptions MakeGcOptions(GcVariant variant, uint32_t threads, CollectorKind collector) {
  switch (variant) {
    case GcVariant::kVanilla:
      return VanillaOptions(collector, threads);
    case GcVariant::kWriteCache:
      return WriteCacheOptions(collector, threads);
    case GcVariant::kAll:
      return AllOptimizationsOptions(collector, threads);
    case GcVariant::kAllAsync: {
      GcOptions o = AllOptimizationsOptions(collector, threads);
      o.async_flush = true;
      return o;
    }
  }
  return VanillaOptions(collector, threads);
}

WorkloadProfile ScaledProfile(WorkloadProfile profile) {
  static const double scale = [] {
    const char* env = std::getenv("NVMGC_BENCH_SCALE");
    return env != nullptr ? std::atof(env) : 1.0;
  }();
  if (scale > 0.0 && scale != 1.0) {
    profile.total_allocation_bytes =
        static_cast<size_t>(static_cast<double>(profile.total_allocation_bytes) * scale);
  }
  return profile;
}

int BenchRepetitions() {
  static const int reps = [] {
    const char* env = std::getenv("NVMGC_BENCH_REPS");
    const int v = env != nullptr ? std::atoi(env) : 2;
    return v >= 1 ? v : 1;
  }();
  return reps;
}

WorkloadResult RunSingle(const WorkloadProfile& profile, const HeapConfig& heap,
                         const GcOptions& gc) {
  return RunWorkload(ScaledProfile(profile), heap, gc);
}

WorkloadResult RunOnce(const WorkloadProfile& profile, DeviceKind device, GcVariant variant,
                       uint32_t threads, CollectorKind collector, bool eden_on_dram) {
  const int reps = BenchRepetitions();
  WorkloadResult avg;
  double bw_sum = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    WorkloadProfile p = profile;
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    const WorkloadResult r = RunWorkload(ScaledProfile(p), DefaultHeap(device, eden_on_dram),
                                         MakeGcOptions(variant, threads, collector));
    avg.name = r.name;
    avg.total_ns += r.total_ns;
    avg.gc_ns += r.gc_ns;
    avg.app_ns += r.app_ns;
    avg.gc_count += r.gc_count;
    avg.bytes_allocated += r.bytes_allocated;
    bw_sum += r.gc_bandwidth_mbps;
  }
  avg.total_ns /= reps;
  avg.gc_ns /= reps;
  avg.app_ns /= reps;
  avg.gc_count /= reps;
  avg.bytes_allocated /= reps;
  avg.gc_bandwidth_mbps = bw_sum / reps;
  return avg;
}

}  // namespace nvmgc
