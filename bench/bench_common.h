// Shared helpers for the figure/table reproduction benches.
//
// RunOnce / RunSingle consult the active BenchContext (bench_runner.h): when
// --json / --trace are set they run one observed repetition that harvests
// per-pause metric snapshots and GC phase traces, and record every data point
// for the machine-readable artifact writers.

#ifndef NVMGC_BENCH_BENCH_COMMON_H_
#define NVMGC_BENCH_BENCH_COMMON_H_

#include <string>

#include "src/gc/gc_options.h"
#include "src/heap/heap.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {

// The evaluated GC configurations of Figure 5 / 13.
enum class GcVariant {
  kVanilla,
  kWriteCache,  // "+writecache"
  kAll,         // "+all": write cache + header map + NT stores + prefetch
  kAllAsync,    // "+all" with asynchronous region flushing (Figure 11)
};

const char* GcVariantName(GcVariant variant);
const char* DeviceKindShortName(DeviceKind kind);

// Standard simulated-JVM shape used by all macro benches: 64 MiB heap in
// 64 KiB regions, 16 MiB eden (the paper's 16 GiB heap / 4 GiB young space,
// scaled 1:256 so a full figure sweep runs in seconds of wall time). The
// active BenchContext's --heap-mb scales all region counts proportionally.
HeapConfig DefaultHeap(DeviceKind device, bool eden_on_dram = false);

GcOptions MakeGcOptions(GcVariant variant, uint32_t threads,
                        CollectorKind collector = CollectorKind::kG1);

// Scales a profile's allocation volume by BenchScale().
WorkloadProfile ScaledProfile(WorkloadProfile profile);

// Runs `profile` on a fresh VM with the given settings and returns the result
// averaged over BenchRepetitions() (distinct seeds) — the paper likewise
// averages five runs per data point.
WorkloadResult RunOnce(const WorkloadProfile& profile, DeviceKind device, GcVariant variant,
                       uint32_t threads, CollectorKind collector = CollectorKind::kG1,
                       bool eden_on_dram = false);

// Single unaveraged run with explicit options (building block for sweeps).
WorkloadResult RunSingle(const WorkloadProfile& profile, const HeapConfig& heap,
                         const GcOptions& gc);

// Repetitions per data point: --repeat flag > NVMGC_BENCH_REPS env > 2.
int BenchRepetitions();
void SetBenchRepetitions(int reps);

// Allocation-volume scale: --scale flag > NVMGC_BENCH_SCALE env > 1.0.
double BenchScale();
void SetBenchScale(double scale);

}  // namespace nvmgc

#endif  // NVMGC_BENCH_BENCH_COMMON_H_
