// Durability bench: what crash consistency costs per pause.
//
// For each application profile the same workload runs twice on the NVM heap:
//   off — AllOptimizationsOptions: the non-durable "+all" configuration;
//   on  — DurableOptions: the same configuration with durability mode, i.e.
//         persisted write-back (flush per drained run, fence per batch) plus
//         the durable-last commit record sealed at the end of every pause.
//
// The interesting outputs are the GC-time overhead of durability and the
// persist counters (flush lines, fences, redo entries, commit bytes) that
// break the overhead down. Two invariants are enforced (exit != 0):
//   - durability off reports exactly zero persist work (the mode is free when
//     disabled);
//   - durability on seals one commit per pause and reports nonzero persist
//     work whenever a pause ran.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

struct DurabilityRunResult {
  double gc_seconds = 0.0;
  double persist_seconds = 0.0;
  double flush_lines = 0.0;
  double fences = 0.0;
  double redo_entries = 0.0;
  double commit_bytes = 0.0;
  size_t gc_count = 0;
  size_t commits_sealed = 0;
};

DurabilityRunResult RunConfig(BenchContext& ctx, const WorkloadProfile& profile,
                              uint32_t threads, bool durable, const std::string& label) {
  const int reps = BenchRepetitions();
  DurabilityRunResult result;
  for (int rep = 0; rep < reps; ++rep) {
    const bool observe = rep == 0;
    VmOptions options;
    options.heap = DefaultHeap(DeviceKind::kNvm);
    options.gc = durable ? DurableOptions(CollectorKind::kG1, threads)
                         : AllOptimizationsOptions(CollectorKind::kG1, threads);
    options.trace_gc = observe && ctx.tracing();
    WorkloadProfile p = ScaledProfile(profile);
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    Vm vm(options);
    SyntheticApp app(&vm, p);
    app.Run();
    const GcCycleStats totals = vm.gc_stats().Totals();
    result.gc_seconds += static_cast<double>(vm.gc_time_ns()) / 1e9;
    result.persist_seconds += static_cast<double>(totals.persist_ns) / 1e9;
    result.flush_lines += static_cast<double>(totals.persist_flush_lines);
    result.fences += static_cast<double>(totals.persist_fences);
    result.redo_entries += static_cast<double>(totals.persist_redo_entries);
    result.commit_bytes += static_cast<double>(totals.persist_commit_bytes);
    result.gc_count += vm.gc_count();
    result.commits_sealed += vm.collector().commit_instants().size();

    if (observe && ctx.observing()) {
      BenchRunRecord record;
      record.label = label;
      record.workload = profile.name;
      record.config = {{"config", durable ? "durable" : "all"},
                       {"device", "nvm"},
                       {"collector", CollectorKindName(CollectorKind::kG1)},
                       {"threads", std::to_string(threads)}};
      record.result.name = "durability/" + std::string(durable ? "on" : "off") + "/" +
                           profile.name;
      record.result.total_ns = vm.now_ns();
      record.result.gc_ns = vm.gc_time_ns();
      record.result.app_ns = vm.now_ns() - vm.gc_time_ns();
      record.result.gc_count = vm.gc_count();
      record.pauses = vm.metrics().pauses();
      record.counters = vm.metrics().counters();
      record.gauges = vm.metrics().gauges();
      record.histograms = vm.metrics().Summaries();
      if (ctx.timeline_enabled()) {
        record.timeline = vm.timeline().samples();
      }
      record.extra["persist_ms"] = static_cast<double>(totals.persist_ns) / 1e6;
      record.extra["persist_fences"] = static_cast<double>(totals.persist_fences);
      record.extra["commits_sealed"] =
          static_cast<double>(vm.collector().commit_instants().size());
      ctx.AppendTrace(vm.tracer(), record.label);
      ctx.RecordRun(std::move(record));
    }
  }
  result.gc_seconds /= reps;
  result.persist_seconds /= reps;
  result.flush_lines /= reps;
  result.fences /= reps;
  result.redo_entries /= reps;
  result.commit_bytes /= reps;
  result.gc_count /= static_cast<size_t>(reps);
  result.commits_sealed /= static_cast<size_t>(reps);
  return result;
}

int Main(BenchContext& ctx) {
  const uint32_t threads = ctx.threads(8);
  std::printf("=== GC cost of durability mode (durable vs non-durable, NVM heap) ===\n\n");
  TablePrinter table({"app", "off (s)", "on (s)", "overhead", "persist (ms)",
                      "flush lines", "fences", "commit KiB"});
  int violations = 0;
  double overhead_sum = 0.0;
  int n = 0;
  for (const auto& profile : AllApplicationProfiles()) {
    const std::string base = "durability/" + std::string(profile.name) + "/nvm/g1/t" +
                             std::to_string(threads);
    const DurabilityRunResult off =
        RunConfig(ctx, profile, threads, /*durable=*/false, base + "/off");
    const DurabilityRunResult on =
        RunConfig(ctx, profile, threads, /*durable=*/true, base + "/on");

    // Invariant: the mode is free when disabled.
    if (off.persist_seconds != 0.0 || off.flush_lines != 0.0 || off.fences != 0.0 ||
        off.commit_bytes != 0.0 || off.commits_sealed != 0) {
      std::printf("VIOLATION: %s reported persist work with durability off\n",
                  profile.name.c_str());
      ++violations;
    }
    // Invariant: one sealed commit per pause, and pauses actually persist.
    if (on.commits_sealed != on.gc_count ||
        (on.gc_count > 0 && (on.fences == 0.0 || on.commit_bytes == 0.0))) {
      std::printf("VIOLATION: %s sealed %zu commits over %zu pauses (fences=%.0f)\n",
                  profile.name.c_str(), on.commits_sealed, on.gc_count, on.fences);
      ++violations;
    }

    std::string overhead_cell = "n/a";  // Short runs may see no GC cycle.
    if (off.gc_seconds > 0.0) {
      const double overhead = (on.gc_seconds - off.gc_seconds) / off.gc_seconds * 100.0;
      overhead_cell = FormatDouble(overhead, 1) + "%";
      overhead_sum += overhead;
      ++n;
    }
    table.AddRow({profile.name, FormatDouble(off.gc_seconds, 3),
                  FormatDouble(on.gc_seconds, 3), overhead_cell,
                  FormatDouble(on.persist_seconds * 1e3, 2),
                  FormatDouble(on.flush_lines, 0), FormatDouble(on.fences, 0),
                  FormatDouble(on.commit_bytes / 1024.0, 1)});
  }
  table.Print();
  if (n > 0) {
    std::printf("\nmean GC-time overhead of durability: %.1f%%\n", overhead_sum / n);
  }
  return violations > 0 ? 1 : 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(durability)
