// Robustness bench: GC cost under injected NVM faults, with and without the
// collector's graceful-degradation reactions.
//
//   nominal   — no faults (baseline);
//   degrade   — randomized FaultPlan, auto-degradation on (the default):
//               throttle windows run pauses with synchronous flushing and
//               cache-line stores, DRAM pressure degrades workers to
//               direct-to-NVM copying;
//   rigid     — same FaultPlan, auto-degradation off: the collector keeps
//               non-temporal stores and async flushing through the faults.
//
// The interesting output is the degrade-vs-rigid delta (what the reactions
// buy or cost under each workload's survivor mix) and the degradation
// counters showing how often each path fired.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/nvm/fault_injector.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

constexpr uint64_t kFaultHorizonNs = 1'000'000'000;  // Faults span the first 1s.

struct FaultRunResult {
  double gc_seconds = 0.0;
  double degraded_cycles = 0.0;
  double pair_denials = 0.0;
  double fallback_workers = 0.0;
};

FaultRunResult RunConfig(const WorkloadProfile& profile, uint32_t threads, bool inject,
                         bool auto_degrade) {
  const int reps = BenchRepetitions();
  FaultRunResult result;
  for (int rep = 0; rep < reps; ++rep) {
    VmOptions options;
    options.heap = DefaultHeap(DeviceKind::kNvm);
    options.gc = MakeGcOptions(GcVariant::kAllAsync, threads);
    options.gc.auto_degrade = auto_degrade;
    WorkloadProfile p = ScaledProfile(profile);
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    Vm vm(options);
    FaultPlan plan = FaultPlan::Randomized(p.seed, kFaultHorizonNs);
    FaultInjector injector(plan);
    if (inject) {
      vm.heap_device().AttachFaultInjector(&injector);
      vm.dram_device().AttachFaultInjector(&injector);
    }
    SyntheticApp app(&vm, p);
    app.Run();
    const GcCycleStats totals = vm.gc_stats().Totals();
    result.gc_seconds += static_cast<double>(vm.gc_time_ns()) / 1e9;
    result.degraded_cycles += static_cast<double>(totals.degraded_mode);
    result.pair_denials += static_cast<double>(totals.cache_fault_denials);
    result.fallback_workers += static_cast<double>(totals.cache_fallback_workers);
  }
  result.gc_seconds /= reps;
  result.degraded_cycles /= reps;
  result.pair_denials /= reps;
  result.fallback_workers /= reps;
  return result;
}

int Main(BenchContext& ctx) {
  const uint32_t gc_threads = ctx.threads(20);
  std::printf("=== GC time under injected NVM faults (degrade vs rigid) ===\n\n");
  TablePrinter table({"app", "nominal (s)", "degrade (s)", "rigid (s)", "degrade vs rigid",
                      "degr. cycles", "pair denials"});
  double delta_sum = 0.0;
  int n = 0;
  for (const auto& profile : AllApplicationProfiles()) {
    const FaultRunResult nominal = RunConfig(profile, gc_threads, /*inject=*/false, /*auto_degrade=*/true);
    const FaultRunResult degrade = RunConfig(profile, gc_threads, /*inject=*/true, /*auto_degrade=*/true);
    const FaultRunResult rigid = RunConfig(profile, gc_threads, /*inject=*/true, /*auto_degrade=*/false);
    std::string delta_cell = "n/a";  // Short runs may see no GC cycle at all.
    if (rigid.gc_seconds > 0.0) {
      const double delta = (rigid.gc_seconds - degrade.gc_seconds) / rigid.gc_seconds * 100.0;
      delta_cell = FormatDouble(delta, 1) + "%";
      delta_sum += delta;
      ++n;
    }
    table.AddRow({profile.name, FormatDouble(nominal.gc_seconds, 3),
                  FormatDouble(degrade.gc_seconds, 3), FormatDouble(rigid.gc_seconds, 3),
                  delta_cell, FormatDouble(degrade.degraded_cycles, 1),
                  FormatDouble(degrade.pair_denials, 1)});
  }
  table.Print();
  if (n > 0) {
    std::printf("\nmean GC-time saving from degradation while faulted: %.1f%%\n", delta_sum / n);
  }
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fault_degradation)
