// Figure 1: application and GC time when replacing DRAM with NVM.
//
// Six applications (page-rank, kmeans from Spark; als, log-regression,
// movie-lens, scala-stm-bench7 from Renaissance) run on the vanilla G1
// collector with the heap on DRAM vs NVM. The paper reports GC pauses growing
// 2.02x-8.25x (avg 6.53x) while application time grows only ~2.68x on
// average, with movie-lens barely affected.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

int Main(BenchContext& ctx) {
  const uint32_t kGcThreads = ctx.threads(20);
  const std::vector<std::string> apps = {"page-rank", "kmeans",     "als",
                                         "log-regression", "movie-lens", "scala-stm-bench7"};
  std::printf("=== Figure 1: app and GC time, DRAM vs NVM (vanilla G1, %u GC threads) ===\n\n",
              kGcThreads);
  TablePrinter table({"app", "app-dram (s)", "gc-dram (s)", "app-nvm (s)", "gc-nvm (s)",
                      "gc slowdown", "app slowdown", "gc share nvm"});
  double gc_slowdown_sum = 0.0;
  double app_slowdown_sum = 0.0;
  for (const auto& app : apps) {
    const WorkloadProfile profile = RenaissanceProfile(app);
    const WorkloadResult dram = RunOnce(profile, DeviceKind::kDram, GcVariant::kVanilla,
                                        kGcThreads);
    const WorkloadResult nvm = RunOnce(profile, DeviceKind::kNvm, GcVariant::kVanilla,
                                       kGcThreads);
    const double gc_slowdown = nvm.gc_seconds() / dram.gc_seconds();
    const double app_slowdown = nvm.app_seconds() / dram.app_seconds();
    const double gc_share = nvm.gc_seconds() / nvm.total_seconds() * 100.0;
    gc_slowdown_sum += gc_slowdown;
    app_slowdown_sum += app_slowdown;
    table.AddRow({app, FormatDouble(dram.app_seconds(), 3), FormatDouble(dram.gc_seconds(), 3),
                  FormatDouble(nvm.app_seconds(), 3), FormatDouble(nvm.gc_seconds(), 3),
                  FormatDouble(gc_slowdown, 2) + "x", FormatDouble(app_slowdown, 2) + "x",
                  FormatDouble(gc_share, 1) + "%"});
  }
  table.Print();
  std::printf("\naverage GC slowdown DRAM->NVM:  %.2fx (paper: 6.53x, range 2.02x-8.25x)\n",
              gc_slowdown_sum / static_cast<double>(apps.size()));
  std::printf("average app slowdown DRAM->NVM: %.2fx (paper: ~2.68x)\n",
              app_slowdown_sum / static_cast<double>(apps.size()));
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig01_app_gc_time)
