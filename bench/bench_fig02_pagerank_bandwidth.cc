// Figure 2: bandwidth statistics for the page-rank application.
//
//   (a)/(b) consumed read/write bandwidth over time on DRAM vs NVM, with GC
//           intervals marked — on DRAM total bandwidth *rises* during GC,
//           on NVM it *collapses* because GC writes destroy the mixed-workload
//           bandwidth.
//   (c)/(d) average bandwidth during GC and accumulated GC time versus the
//           number of GC threads — NVM saturates around 8 threads while DRAM
//           keeps scaling.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

void RunSeries(DeviceKind device, const char* title) {
  VmOptions options;
  options.heap = DefaultHeap(device);
  options.gc = MakeGcOptions(GcVariant::kVanilla, 20);
  Vm vm(options);
  WorkloadProfile profile = ScaledProfile(RenaissanceProfile("page-rank"));
  profile.total_allocation_bytes /= 2;  // A shorter trace keeps the plot readable.
  vm.heap_device().StartRecording(0, 2'000'000 /* 2 ms buckets */, 65536);
  SyntheticApp app(&vm, profile);
  app.Run();
  vm.heap_device().StopRecording();

  const auto series = vm.heap_device().RecordedSeries();
  // Mark buckets that overlap a GC pause.
  std::vector<std::pair<uint64_t, uint64_t>> pauses;
  for (const auto& c : vm.gc_stats().cycles()) {
    pauses.emplace_back(c.start_ns, c.start_ns + c.pause_ns);
  }
  std::printf("--- %s: bandwidth over time (2 ms buckets) ---\n", title);
  TablePrinter table({"t (ms)", "read (MB/s)", "write (MB/s)", "total (MB/s)", "phase"});
  const size_t stride = series.size() > 48 ? series.size() / 48 : 1;
  for (size_t i = 0; i < series.size(); i += stride) {
    const auto& s = series[i];
    const uint64_t t0 = s.time_ns;
    const uint64_t t1 = s.time_ns + 2'000'000;
    bool in_gc = false;
    for (const auto& [start, end] : pauses) {
      if (start < t1 && end > t0) {
        in_gc = true;
        break;
      }
    }
    table.AddRow({FormatDouble(static_cast<double>(s.time_ns) / 1e6, 1),
                  FormatDouble(s.read_mbps, 0), FormatDouble(s.write_mbps, 0),
                  FormatDouble(s.total_mbps(), 0), in_gc ? "GC" : "app"});
  }
  table.Print();

  // Summary: bandwidth inside vs outside GC.
  double gc_total = 0.0;
  double app_total = 0.0;
  size_t gc_n = 0;
  size_t app_n = 0;
  for (const auto& s : series) {
    bool in_gc = false;
    for (const auto& [start, end] : pauses) {
      if (start < s.time_ns + 2'000'000 && end > s.time_ns) {
        in_gc = true;
        break;
      }
    }
    if (in_gc) {
      gc_total += s.total_mbps();
      ++gc_n;
    } else if (s.total_mbps() > 1.0) {
      app_total += s.total_mbps();
      ++app_n;
    }
  }
  if (gc_n > 0 && app_n > 0) {
    std::printf("mean total bandwidth: GC %.0f MB/s vs app %.0f MB/s (%s)\n\n",
                gc_total / gc_n, app_total / app_n,
                gc_total / gc_n > app_total / app_n ? "GC raises bandwidth"
                                                    : "GC collapses bandwidth");
  }
}

void RunScalability(DeviceKind device, const char* title) {
  std::printf("--- %s: bandwidth and GC time vs GC threads ---\n", title);
  TablePrinter table({"threads", "avg GC bandwidth (MB/s)", "accumulated GC time (s)"});
  for (uint32_t threads : {1u, 2u, 4u, 8u, 16u, 20u, 28u, 40u, 56u}) {
    const WorkloadResult r =
        RunOnce(RenaissanceProfile("page-rank"), device, GcVariant::kVanilla, threads);
    table.AddRow({std::to_string(threads), FormatDouble(r.gc_bandwidth_mbps, 0),
                  FormatDouble(r.gc_seconds(), 3)});
  }
  table.Print();
  std::printf("\n");
}

int Main(BenchContext&) {
  std::printf("=== Figure 2: bandwidth statistics for page-rank ===\n\n");
  RunSeries(DeviceKind::kDram, "Figure 2a: DRAM");
  RunSeries(DeviceKind::kNvm, "Figure 2b: NVM");
  RunScalability(DeviceKind::kNvm, "Figure 2c: NVM");
  RunScalability(DeviceKind::kDram, "Figure 2d: DRAM");
  std::printf("expected shape: NVM bandwidth and GC time flatten beyond ~8 threads;\n"
              "DRAM keeps scaling (paper Section 2.3).\n");
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig02_pagerank_bandwidth)
