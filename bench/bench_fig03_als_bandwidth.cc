// Figure 3: bandwidth statistics for the als application (DRAM vs NVM).
//
// Unlike page-rank, als does not saturate NVM bandwidth outside GC: the
// consumed bandwidth during GC is *larger* than during application execution
// even on NVM, which is why its application time is barely affected by the
// move to NVM (Section 2.3).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

void RunSeries(DeviceKind device, const char* title) {
  VmOptions options;
  options.heap = DefaultHeap(device);
  options.gc = MakeGcOptions(GcVariant::kVanilla, 20);
  Vm vm(options);
  WorkloadProfile profile = ScaledProfile(RenaissanceProfile("als"));
  profile.total_allocation_bytes /= 2;
  vm.heap_device().StartRecording(0, 2'000'000, 65536);
  SyntheticApp app(&vm, profile);
  app.Run();
  vm.heap_device().StopRecording();

  std::vector<std::pair<uint64_t, uint64_t>> pauses;
  for (const auto& c : vm.gc_stats().cycles()) {
    pauses.emplace_back(c.start_ns, c.start_ns + c.pause_ns);
  }
  const auto series = vm.heap_device().RecordedSeries();
  double gc_total = 0.0;
  double app_total = 0.0;
  size_t gc_n = 0;
  size_t app_n = 0;
  std::printf("--- %s ---\n", title);
  TablePrinter table({"t (ms)", "read (MB/s)", "write (MB/s)", "total (MB/s)", "phase"});
  const size_t stride = series.size() > 40 ? series.size() / 40 : 1;
  for (size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    bool in_gc = false;
    for (const auto& [start, end] : pauses) {
      if (start < s.time_ns + 2'000'000 && end > s.time_ns) {
        in_gc = true;
        break;
      }
    }
    if (i % stride == 0) {
      table.AddRow({FormatDouble(static_cast<double>(s.time_ns) / 1e6, 1),
                    FormatDouble(s.read_mbps, 0), FormatDouble(s.write_mbps, 0),
                    FormatDouble(s.total_mbps(), 0), in_gc ? "GC" : "app"});
    }
    if (in_gc) {
      gc_total += s.total_mbps();
      ++gc_n;
    } else if (s.total_mbps() > 1.0) {
      app_total += s.total_mbps();
      ++app_n;
    }
  }
  table.Print();
  if (gc_n > 0 && app_n > 0) {
    std::printf("mean total bandwidth: GC %.0f MB/s vs app %.0f MB/s\n\n", gc_total / gc_n,
                app_total / app_n);
  }
}

int Main(BenchContext&) {
  std::printf("=== Figure 3: bandwidth statistics for als ===\n\n");
  RunSeries(DeviceKind::kDram, "Figure 3a: DRAM");
  RunSeries(DeviceKind::kNvm, "Figure 3b: NVM");
  std::printf("expected shape: GC-phase bandwidth exceeds app-phase bandwidth on BOTH\n"
              "devices for als (its app phase leaves NVM bandwidth unsaturated).\n");
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig03_als_bandwidth)
