// Figure 5: GC time for all 26 applications under five configurations:
//   vanilla (NVM) / +writecache / +all / vanilla-dram / young-gen-dram.
//
// Paper results this should reproduce in shape: 23 of 26 applications improve;
// +all reduces GC time 1.69x on average (up to 2.69x); the write cache alone
// gives 1.17x on average (up to 2.08x); the DRAM:NVM GC gap shrinks from
// 4.21x to 2.28x; young-gen-dram beats the optimizations for most apps.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

int Main(BenchContext& ctx) {
  const uint32_t kGcThreads = ctx.threads(20);
  const CollectorKind collector = ctx.collector(CollectorKind::kG1);
  std::printf("=== Figure 5: GC time per application and configuration (%u GC threads) ===\n\n",
              kGcThreads);
  TablePrinter table({"app", "vanilla (s)", "+writecache (s)", "+all (s)", "vanilla-dram (s)",
                      "young-gen-dram (s)", "+all speedup", "+wc speedup"});
  double sum_all = 0.0;
  double sum_wc = 0.0;
  double max_all = 0.0;
  double max_wc = 0.0;
  double sum_gap_vanilla = 0.0;
  double sum_gap_opt = 0.0;
  int improved = 0;
  const auto profiles = AllApplicationProfiles();
  for (const auto& profile : profiles) {
    const auto vanilla = RunOnce(profile, DeviceKind::kNvm, GcVariant::kVanilla, kGcThreads, collector);
    const auto wc = RunOnce(profile, DeviceKind::kNvm, GcVariant::kWriteCache, kGcThreads, collector);
    const auto all = RunOnce(profile, DeviceKind::kNvm, GcVariant::kAll, kGcThreads, collector);
    const auto dram = RunOnce(profile, DeviceKind::kDram, GcVariant::kVanilla, kGcThreads, collector);
    const auto young_dram = RunOnce(profile, DeviceKind::kNvm, GcVariant::kVanilla, kGcThreads,
                                    collector, /*eden_on_dram=*/true);
    const double speedup_all = vanilla.gc_seconds() / all.gc_seconds();
    const double speedup_wc = vanilla.gc_seconds() / wc.gc_seconds();
    sum_all += speedup_all;
    sum_wc += speedup_wc;
    max_all = std::max(max_all, speedup_all);
    max_wc = std::max(max_wc, speedup_wc);
    sum_gap_vanilla += vanilla.gc_seconds() / dram.gc_seconds();
    sum_gap_opt += all.gc_seconds() / dram.gc_seconds();
    if (speedup_all > 1.02) {
      ++improved;
    }
    table.AddRow({profile.name, FormatDouble(vanilla.gc_seconds(), 3),
                  FormatDouble(wc.gc_seconds(), 3), FormatDouble(all.gc_seconds(), 3),
                  FormatDouble(dram.gc_seconds(), 3), FormatDouble(young_dram.gc_seconds(), 3),
                  FormatDouble(speedup_all, 2) + "x", FormatDouble(speedup_wc, 2) + "x"});
  }
  table.Print();
  const double n = static_cast<double>(profiles.size());
  std::printf("\napps improved by +all:            %d of %zu (paper: 23 of 26)\n", improved,
              profiles.size());
  std::printf("+all GC speedup:                  avg %.2fx, max %.2fx (paper: 1.69x avg, 2.69x max)\n",
              sum_all / n, max_all);
  std::printf("+writecache GC speedup:           avg %.2fx, max %.2fx (paper: 1.17x avg, 2.08x max)\n",
              sum_wc / n, max_wc);
  std::printf("DRAM:NVM GC gap vanilla -> +all:  %.2fx -> %.2fx (paper: 4.21x -> 2.28x)\n",
              sum_gap_vanilla / n, sum_gap_opt / n);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig05_gc_time)
