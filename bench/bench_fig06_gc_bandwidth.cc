// Figure 6: NVM bandwidth consumed during GC, optimized vs vanilla G1, for
// all 26 applications at 56 GC threads (enough to saturate the device).
//
// The paper reports a 55.0% average bandwidth improvement, larger (69.3%) for
// the Spark applications whose traversal phases are longest.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

int Main(BenchContext& ctx) {
  const uint32_t kGcThreads = ctx.threads(56);
  std::printf("=== Figure 6: NVM bandwidth during GC (G1-Opt vs G1-Vanilla, %u threads) ===\n\n",
              kGcThreads);
  TablePrinter table({"app", "vanilla (MB/s)", "optimized (MB/s)", "improvement"});
  double sum_impr = 0.0;
  double spark_impr = 0.0;
  int spark_n = 0;
  const auto profiles = AllApplicationProfiles();
  const auto spark = SparkProfiles();
  for (const auto& profile : profiles) {
    const auto vanilla = RunOnce(profile, DeviceKind::kNvm, GcVariant::kVanilla, kGcThreads);
    const auto opt = RunOnce(profile, DeviceKind::kNvm, GcVariant::kAll, kGcThreads);
    const double improvement = opt.gc_bandwidth_mbps / vanilla.gc_bandwidth_mbps - 1.0;
    sum_impr += improvement;
    for (const auto& s : spark) {
      if (s.name == profile.name) {
        spark_impr += improvement;
        ++spark_n;
      }
    }
    table.AddRow({profile.name, FormatDouble(vanilla.gc_bandwidth_mbps, 0),
                  FormatDouble(opt.gc_bandwidth_mbps, 0),
                  FormatDouble(improvement * 100.0, 1) + "%"});
  }
  table.Print();
  std::printf("\naverage bandwidth improvement:       %.1f%% (paper: 55.0%%)\n",
              sum_impr / static_cast<double>(profiles.size()) * 100.0);
  std::printf("Spark-only bandwidth improvement:    %.1f%% (paper: 69.3%%)\n",
              spark_n > 0 ? spark_impr / spark_n * 100.0 : 0.0);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig06_gc_bandwidth)
