// Figure 7: read/write NVM bandwidth during one GC pause, optimized vs
// vanilla, for page-rank, naive-bayes, and akka-uct.
//
// Expected shapes (Section 5.3):
//   * optimized runs show a read-mostly sub-phase (write bandwidth near zero)
//     followed by a short write-only burst whose write bandwidth approaches
//     the non-temporal ceiling;
//   * vanilla runs mix reads and writes throughout at a much lower total;
//   * naive-bayes reaches the highest read bandwidth (sequential primitive
//     array copies); akka-uct stays moderate due to load imbalance.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

constexpr uint64_t kBucketNs = 500'000;  // 0.5 ms buckets.

void RunCase(const std::string& app, GcVariant variant) {
  VmOptions options;
  options.heap = DefaultHeap(DeviceKind::kNvm);
  options.gc = MakeGcOptions(variant, 20);
  Vm vm(options);
  WorkloadProfile profile = ScaledProfile(RenaissanceProfile(app));
  vm.heap_device().StartRecording(0, kBucketNs, 1 << 17);
  SyntheticApp sapp(&vm, profile);
  sapp.Run();
  vm.heap_device().StopRecording();

  // Pick the longest pause and print the bandwidth inside it.
  const GcCycleStats* longest = nullptr;
  for (const auto& c : vm.gc_stats().cycles()) {
    if (longest == nullptr || c.pause_ns > longest->pause_ns) {
      longest = &c;
    }
  }
  std::printf("--- %s (%s): longest pause %.1f ms ---\n", app.c_str(), GcVariantName(variant),
              longest != nullptr ? static_cast<double>(longest->pause_ns) / 1e6 : 0.0);
  if (longest == nullptr) {
    return;
  }
  const auto series = vm.heap_device().RecordedSeries();
  TablePrinter table({"t in pause (ms)", "read (MB/s)", "write (MB/s)"});
  double peak_write = 0.0;
  double peak_read = 0.0;
  size_t rows = 0;
  for (const auto& s : series) {
    if (s.time_ns + kBucketNs <= longest->start_ns ||
        s.time_ns >= longest->start_ns + longest->pause_ns) {
      continue;
    }
    peak_write = std::max(peak_write, s.write_mbps);
    peak_read = std::max(peak_read, s.read_mbps);
    if (rows < 40) {
      // The first bucket can start before the pause does; clamp to 0.
      const uint64_t rel =
          s.time_ns > longest->start_ns ? s.time_ns - longest->start_ns : 0;
      table.AddRow({FormatDouble(static_cast<double>(rel) / 1e6, 1),
                    FormatDouble(s.read_mbps, 0), FormatDouble(s.write_mbps, 0)});
      ++rows;
    }
  }
  table.Print();
  std::printf("peak read %.0f MB/s, peak write %.0f MB/s\n\n", peak_read, peak_write);
}

int Main(BenchContext&) {
  std::printf("=== Figure 7: split NVM bandwidth during GC ===\n\n");
  for (const std::string& app : {"page-rank", "naive-bayes", "akka-uct"}) {
    RunCase(app, GcVariant::kAll);
    RunCase(app, GcVariant::kVanilla);
  }
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig07_split_bandwidth)
