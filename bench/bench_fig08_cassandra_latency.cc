// Figure 8: Cassandra tail latency vs offered throughput, optimized vs
// vanilla G1, for the cassandra-stress write-only and read-only phases.
//
// Paper result: at the highest throughput the optimizations improve p95/p99
// read latency by 5.09x/4.88x and write latency by 2.74x/2.54x, because
// shorter GC pauses shorten the worst-case queueing delay.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/cassandra.h"

namespace nvmgc {
namespace {

struct Curve {
  std::vector<LatencyResult> writes;
  std::vector<LatencyResult> reads;
};

void AddPhaseExtras(BenchRunRecord* record, const char* phase, const LatencyResult& r) {
  const std::string p(phase);
  record->extra[p + "_p50_ms"] = r.p50_ms;
  record->extra[p + "_p95_ms"] = r.p95_ms;
  record->extra[p + "_p99_ms"] = r.p99_ms;
  record->extra[p + "_mean_ms"] = r.mean_ms;
}

Curve RunCurve(BenchContext& ctx, GcVariant variant, uint32_t threads,
               const std::vector<double>& offered_kqps) {
  Curve curve;
  for (double kqps : offered_kqps) {
    VmOptions options;
    options.heap = DefaultHeap(DeviceKind::kNvm);
    options.gc = MakeGcOptions(variant, threads);
    options.trace_gc = ctx.tracing();
    Vm vm(options);
    CassandraService service(&vm, CassandraConfig{});
    // cassandra-stress: a write-only phase followed by a read-only phase.
    const uint64_t requests = static_cast<uint64_t>(kqps * 1000.0);  // ~1 sim-second each.
    curve.writes.push_back(service.RunPhase(requests, kqps, 1.0));
    curve.reads.push_back(service.RunPhase(requests, kqps, 0.0));
    if (ctx.observing()) {
      BenchRunRecord record;
      record.workload = "cassandra";
      record.config = {{"variant", GcVariantName(variant)},
                       {"device", "nvm"},
                       {"collector", "g1"},
                       {"threads", std::to_string(threads)},
                       {"offered_kqps", FormatDouble(kqps, 0)}};
      record.label = std::string("cassandra/") + GcVariantName(variant) + "/nvm/g1/t" +
                     std::to_string(threads) + "/" + FormatDouble(kqps, 0) + "kqps";
      record.result.name = "cassandra";
      record.result.total_ns = vm.now_ns();
      record.result.gc_ns = vm.gc_time_ns();
      record.result.app_ns = vm.app_time_ns();
      record.result.gc_count = vm.gc_count();
      AddPhaseExtras(&record, "write", curve.writes.back());
      AddPhaseExtras(&record, "read", curve.reads.back());
      record.pauses = vm.metrics().pauses();
      record.counters = vm.metrics().counters();
      record.gauges = vm.metrics().gauges();
      record.histograms = vm.metrics().Summaries();
      if (ctx.timeline_enabled()) {
        record.timeline = vm.timeline().samples();
      }
      ctx.AppendTrace(vm.tracer(), record.label);
      ctx.RecordRun(std::move(record));
    }
  }
  return curve;
}

void PrintPhase(const char* phase, const std::vector<double>& offered,
                const std::vector<LatencyResult>& opt, const std::vector<LatencyResult>& van) {
  std::printf("--- %s operations ---\n", phase);
  TablePrinter table({"throughput (kQPS)", "opt p50 (ms)", "opt p95 (ms)", "opt p99 (ms)",
                      "vanilla p50 (ms)", "vanilla p95 (ms)", "vanilla p99 (ms)", "p50 gain",
                      "p95 gain", "p99 gain"});
  for (size_t i = 0; i < offered.size(); ++i) {
    table.AddRow({FormatDouble(offered[i], 0), FormatDouble(opt[i].p50_ms, 2),
                  FormatDouble(opt[i].p95_ms, 2), FormatDouble(opt[i].p99_ms, 2),
                  FormatDouble(van[i].p50_ms, 2), FormatDouble(van[i].p95_ms, 2),
                  FormatDouble(van[i].p99_ms, 2),
                  FormatDouble(van[i].p50_ms / opt[i].p50_ms, 2) + "x",
                  FormatDouble(van[i].p95_ms / opt[i].p95_ms, 2) + "x",
                  FormatDouble(van[i].p99_ms / opt[i].p99_ms, 2) + "x"});
  }
  table.Print();
  std::printf("\n");
}

int Main(BenchContext& ctx) {
  const uint32_t gc_threads = ctx.threads(20);
  std::printf("=== Figure 8: Cassandra tail latency (opt vs vanilla G1, NVM heap) ===\n\n");
  const std::vector<double> offered_kqps = {30, 50, 70, 90, 110, 130};
  const Curve opt = RunCurve(ctx, GcVariant::kAll, gc_threads, offered_kqps);
  const Curve van = RunCurve(ctx, GcVariant::kVanilla, gc_threads, offered_kqps);
  PrintPhase("write", offered_kqps, opt.writes, van.writes);
  PrintPhase("read", offered_kqps, opt.reads, van.reads);
  std::printf("paper (130 kQPS): read p95/p99 gains 5.09x/4.88x, write 2.74x/2.54x\n");
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig08_cassandra_latency)
