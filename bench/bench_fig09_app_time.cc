// Figure 9: application execution time, optimized vs vanilla G1 on NVM.
//
// Expected shape (Section 5.4): most Renaissance applications change little
// (GC is a small share of their time); GC-intensive ones (scala-stm-bench7)
// and all Spark applications improve, Spark by 3.2%-6.9%.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

int Main(BenchContext& ctx) {
  const uint32_t kGcThreads = ctx.threads(20);
  std::printf("=== Figure 9: application time, G1-Opt vs G1-Vanilla (NVM heap) ===\n\n");
  TablePrinter table({"app", "vanilla (s)", "optimized (s)", "improvement"});
  const auto spark = SparkProfiles();
  double spark_min = 1e9;
  double spark_max = -1e9;
  for (const auto& profile : AllApplicationProfiles()) {
    const auto vanilla = RunOnce(profile, DeviceKind::kNvm, GcVariant::kVanilla, kGcThreads);
    const auto opt = RunOnce(profile, DeviceKind::kNvm, GcVariant::kAll, kGcThreads);
    const double improvement =
        (vanilla.total_seconds() - opt.total_seconds()) / vanilla.total_seconds() * 100.0;
    for (const auto& s : spark) {
      if (s.name == profile.name) {
        spark_min = std::min(spark_min, improvement);
        spark_max = std::max(spark_max, improvement);
      }
    }
    table.AddRow({profile.name, FormatDouble(vanilla.total_seconds(), 3),
                  FormatDouble(opt.total_seconds(), 3), FormatDouble(improvement, 1) + "%"});
  }
  table.Print();
  std::printf("\nSpark execution-time improvement: %.1f%% - %.1f%% (paper: 3.2%% - 6.9%%)\n",
              spark_min, spark_max);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig09_app_time)
