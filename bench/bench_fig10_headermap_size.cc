// Figure 10: GC time with different header-map size caps.
//
// The paper evaluates 512 MB / 1 GB / 2 GB caps against a 16 GB heap, i.e.
// heap/32, heap/16 and heap/8; the same ratios are used here. Expected shape:
// larger maps help (fewer forwarding pointers spill to NVM headers), but
// Renaissance saturates at the smallest setting (~3.3% further gain) while
// Spark — whose occupancy is near 100% — gains ~21%.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

struct SizedResult {
  double gc_seconds = 0.0;
  double peak_occupancy = 0.0;  // Peak per-GC installs / capacity.
};

SizedResult RunWithHeaderMapBytes(const WorkloadProfile& profile, uint32_t threads,
                                  size_t map_bytes) {
  SizedResult out;
  const int reps = BenchRepetitions();
  for (int rep = 0; rep < reps; ++rep) {
    VmOptions options;
    options.heap = DefaultHeap(DeviceKind::kNvm);
    options.gc = GcOptionsBuilder(MakeGcOptions(GcVariant::kAll, threads))
                     .HeaderMapBytes(map_bytes)
                     .Build();
    Vm vm(options);
    WorkloadProfile p = ScaledProfile(profile);
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    SyntheticApp app(&vm, p);
    app.Run();
    out.gc_seconds += static_cast<double>(vm.gc_time_ns()) / 1e9;
    const size_t capacity = vm.collector().header_map()->capacity();
    for (const auto& c : vm.gc_stats().cycles()) {
      out.peak_occupancy =
          std::max(out.peak_occupancy,
                   static_cast<double>(c.header_map_installs) / static_cast<double>(capacity));
    }
  }
  out.gc_seconds /= reps;
  return out;
}

int Main(BenchContext& ctx) {
  const uint32_t gc_threads = ctx.threads(20);
  const size_t heap_bytes = DefaultHeap(DeviceKind::kNvm).region_bytes *
                            DefaultHeap(DeviceKind::kNvm).heap_regions;
  // The paper's 512M/1G/2G caps are sized so that Spark saturates the small
  // setting (its occupancy is "close to 100%", Section 5.5). Our simulated
  // heap has a lower object density, so the three points are scaled to match
  // *occupancy*, not byte ratio: the smallest cap overflows for Spark-style
  // survivor floods while comfortably holding the Renaissance apps.
  const size_t cap32 = heap_bytes / 256;  // "512M" (occupancy-matched).
  const size_t cap16 = heap_bytes / 64;   // "1G"
  const size_t cap8 = heap_bytes / 16;    // "2G"
  std::printf(
      "=== Figure 10: GC time vs header-map size (occupancy-matched 512M/1G/2G) ===\n\n");
  TablePrinter table({"app", "512M-eq (s)", "1G-eq (s)", "2G-eq (s)", "gain small->large",
                      "occupancy@2G-eq"});
  double ren_gain = 0.0;
  int ren_n = 0;
  double spark_gain = 0.0;
  int spark_n = 0;
  const auto spark = SparkProfiles();
  for (const auto& profile : AllApplicationProfiles()) {
    const SizedResult small = RunWithHeaderMapBytes(profile, gc_threads, cap32);
    const SizedResult mid = RunWithHeaderMapBytes(profile, gc_threads, cap16);
    const SizedResult big = RunWithHeaderMapBytes(profile, gc_threads, cap8);
    const double gain = (small.gc_seconds - big.gc_seconds) / small.gc_seconds * 100.0;
    bool is_spark = false;
    for (const auto& s : spark) {
      if (s.name == profile.name) {
        is_spark = true;
      }
    }
    if (is_spark) {
      spark_gain += gain;
      ++spark_n;
    } else {
      ren_gain += gain;
      ++ren_n;
    }
    table.AddRow({profile.name, FormatDouble(small.gc_seconds, 3), FormatDouble(mid.gc_seconds, 3),
                  FormatDouble(big.gc_seconds, 3), FormatDouble(gain, 1) + "%",
                  FormatDouble(big.peak_occupancy * 100.0, 0) + "%"});
  }
  table.Print();
  std::printf("\nRenaissance avg gain from 4x larger map: %.1f%% (paper: 3.3%%)\n",
              ren_gain / ren_n);
  std::printf("Spark avg gain from 4x larger map:       %.1f%% (paper: 21.1%%)\n",
              spark_n > 0 ? spark_gain / spark_n : 0.0);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig10_headermap_size)
