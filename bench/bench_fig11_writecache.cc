// Figure 11: GC time under different write-cache settings:
//   sync            — default bounded cache (heap/32), flushed at pause end;
//   sync-unlimited  — no capacity bound;
//   async           — asynchronous region flushing (non-temporal stores);
//   dram            — the whole heap on DRAM, as the reference floor.
//
// Expected shape (Section 5.5): most applications gain nothing from an
// unlimited cache (heap/32 suffices); the exceptions are page-rank and kmeans
// with their floods of small surviving objects. Async flushing costs ~6.9% on
// average while reclaiming DRAM early.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

double RunVariantGcSeconds(const WorkloadProfile& profile, uint32_t threads, bool unlimited,
                           bool async, DeviceKind device) {
  const int reps = BenchRepetitions();
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    VmOptions options;
    options.heap = DefaultHeap(device);
    options.gc = GcOptionsBuilder(MakeGcOptions(GcVariant::kAll, threads))
                     .UnlimitedWriteCache(unlimited)
                     .AsyncFlush(async)
                     .Build();
    if (device == DeviceKind::kDram) {
      options.gc = MakeGcOptions(GcVariant::kVanilla, threads);
    }
    WorkloadProfile p = ScaledProfile(profile);
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    Vm vm(options);
    SyntheticApp app(&vm, p);
    app.Run();
    total += static_cast<double>(vm.gc_time_ns()) / 1e9;
  }
  return total / reps;
}

int Main(BenchContext& ctx) {
  const uint32_t gc_threads = ctx.threads(20);
  std::printf("=== Figure 11: GC time with different write-cache settings ===\n\n");
  TablePrinter table({"app", "sync (s)", "sync-unlimited (s)", "async (s)", "dram (s)",
                      "async slowdown"});
  double async_slowdown_sum = 0.0;
  int n = 0;
  for (const auto& profile : AllApplicationProfiles()) {
    const double sync = RunVariantGcSeconds(profile, gc_threads, false, false, DeviceKind::kNvm);
    const double unlimited = RunVariantGcSeconds(profile, gc_threads, true, false, DeviceKind::kNvm);
    const double async = RunVariantGcSeconds(profile, gc_threads, false, true, DeviceKind::kNvm);
    const double dram = RunVariantGcSeconds(profile, gc_threads, false, false, DeviceKind::kDram);
    const double async_slowdown = (async - sync) / sync * 100.0;
    async_slowdown_sum += async_slowdown;
    ++n;
    table.AddRow({profile.name, FormatDouble(sync, 3), FormatDouble(unlimited, 3),
                  FormatDouble(async, 3), FormatDouble(dram, 3),
                  FormatDouble(async_slowdown, 1) + "%"});
  }
  table.Print();
  std::printf("\naverage async-flush slowdown vs sync: %.1f%% (paper: 6.9%%)\n",
              async_slowdown_sum / n);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig11_writecache)
