// Figure 11: GC time under different write-cache settings:
//   sync            — default bounded cache (heap/32), flushed at pause end;
//   sync-unlimited  — no capacity bound;
//   async           — asynchronous region flushing (non-temporal stores);
//   dram            — the whole heap on DRAM, as the reference floor.
//
// Expected shape (Section 5.5): most applications gain nothing from an
// unlimited cache (heap/32 suffices); the exceptions are page-rank and kmeans
// with their floods of small surviving objects. Async flushing costs ~6.9% on
// average while reclaiming DRAM early.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

constexpr uint32_t kGcThreads = 20;

double RunVariantGcSeconds(const WorkloadProfile& profile, bool unlimited, bool async,
                           DeviceKind device) {
  const int reps = BenchRepetitions();
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    VmOptions options;
    options.heap = DefaultHeap(device);
    options.gc = MakeGcOptions(GcVariant::kAll, kGcThreads);
    options.gc.unlimited_write_cache = unlimited;
    options.gc.async_flush = async;
    if (device == DeviceKind::kDram) {
      options.gc = MakeGcOptions(GcVariant::kVanilla, kGcThreads);
    }
    WorkloadProfile p = ScaledProfile(profile);
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    Vm vm(options);
    SyntheticApp app(&vm, p);
    app.Run();
    total += static_cast<double>(vm.gc_time_ns()) / 1e9;
  }
  return total / reps;
}

int Main() {
  std::printf("=== Figure 11: GC time with different write-cache settings ===\n\n");
  TablePrinter table({"app", "sync (s)", "sync-unlimited (s)", "async (s)", "dram (s)",
                      "async slowdown"});
  double async_slowdown_sum = 0.0;
  int n = 0;
  for (const auto& profile : AllApplicationProfiles()) {
    const double sync = RunVariantGcSeconds(profile, false, false, DeviceKind::kNvm);
    const double unlimited = RunVariantGcSeconds(profile, true, false, DeviceKind::kNvm);
    const double async = RunVariantGcSeconds(profile, false, true, DeviceKind::kNvm);
    const double dram = RunVariantGcSeconds(profile, false, false, DeviceKind::kDram);
    const double async_slowdown = (async - sync) / sync * 100.0;
    async_slowdown_sum += async_slowdown;
    ++n;
    table.AddRow({profile.name, FormatDouble(sync, 3), FormatDouble(unlimited, 3),
                  FormatDouble(async, 3), FormatDouble(dram, 3),
                  FormatDouble(async_slowdown, 1) + "%"});
  }
  table.Print();
  std::printf("\naverage async-flush slowdown vs sync: %.1f%% (paper: 6.9%%)\n",
              async_slowdown_sum / n);
  return 0;
}

}  // namespace
}  // namespace nvmgc

int main() { return nvmgc::Main(); }
