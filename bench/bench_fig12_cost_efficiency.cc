// Figure 12: cost-efficiency analysis — GC-improvement-per-dollar.
//
// The metric is GC time reduction (seconds) per extra dollar spent over the
// all-NVM baseline. The optimizations add a little DRAM (write cache + header
// map); the alternative buys enough DRAM for the whole heap. Per-GB prices
// follow the paper: DRAM $7.81/GB, NVM $3.01/GB. Expected shape: direct DRAM
// wins on raw time but loses on improvement-per-dollar for most applications
// (9.58x average advantage for the optimizations on Spark).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/nvm/device_profile.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

int Main(BenchContext& ctx) {
  const uint32_t kGcThreads = ctx.threads(20);
  const HeapConfig heap = DefaultHeap(DeviceKind::kNvm);
  const double gb = 1024.0 * 1024.0 * 1024.0;
  const double heap_gb = static_cast<double>(heap.region_bytes * heap.heap_regions) / gb;
  // Extra DRAM used by the optimizations: write cache (heap/32) + header map
  // (heap/32).
  const double opt_dram_gb = heap_gb / 32.0 * 2.0;
  const double dram_price = MakeDramProfile().dollars_per_gb;
  const double nvm_price = MakeOptaneProfile().dollars_per_gb;
  const double opt_extra_dollars = opt_dram_gb * dram_price;
  // Replacing the NVM heap with DRAM: pay the DRAM-NVM price difference.
  const double dram_extra_dollars = heap_gb * (dram_price - nvm_price);

  std::printf("=== Figure 12: GC-improvement-per-dollar (opt vs all-DRAM) ===\n");
  std::printf("extra cost: +opt = $%.4f (DRAM staging), all-DRAM = $%.4f (price delta)\n\n",
              opt_extra_dollars, dram_extra_dollars);
  TablePrinter table({"app", "opt gain (s)", "dram gain (s)", "opt s/$", "dram s/$",
                      "opt advantage"});
  double spark_adv = 0.0;
  int spark_n = 0;
  const auto spark = SparkProfiles();
  for (const auto& profile : AllApplicationProfiles()) {
    const auto vanilla = RunOnce(profile, DeviceKind::kNvm, GcVariant::kVanilla, kGcThreads);
    const auto opt = RunOnce(profile, DeviceKind::kNvm, GcVariant::kAll, kGcThreads);
    const auto dram = RunOnce(profile, DeviceKind::kDram, GcVariant::kVanilla, kGcThreads);
    const double opt_gain = vanilla.gc_seconds() - opt.gc_seconds();
    const double dram_gain = vanilla.gc_seconds() - dram.gc_seconds();
    const double opt_per_dollar = opt_gain / opt_extra_dollars;
    const double dram_per_dollar = dram_gain / dram_extra_dollars;
    const double advantage = opt_per_dollar / dram_per_dollar;
    for (const auto& s : spark) {
      if (s.name == profile.name) {
        spark_adv += advantage;
        ++spark_n;
      }
    }
    table.AddRow({profile.name, FormatDouble(opt_gain, 3), FormatDouble(dram_gain, 3),
                  FormatDouble(opt_per_dollar, 2), FormatDouble(dram_per_dollar, 2),
                  FormatDouble(advantage, 2) + "x"});
  }
  table.Print();
  std::printf("\nSpark avg GC-improvement-per-dollar advantage: %.2fx (paper: 9.58x)\n",
              spark_n > 0 ? spark_adv / spark_n : 0.0);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig12_cost_efficiency)
