// Figure 13: GC scalability — accumulated GC time vs number of GC threads
// (1, 2, 4, 8, 20, 28, 56) for vanilla / +writecache / +all on every
// application.
//
// Expected shape (Section 5.6): vanilla is competitive below 8 threads but
// stops scaling (or regresses) beyond; +writecache scales to ~20; +all keeps
// scaling to 56 for most applications.
//
// Full sweep is 26 apps x 7 thread counts x 3 variants; to keep the default
// run short it executes one repetition per point (set NVMGC_BENCH_REPS to
// average more).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

const uint32_t kThreads[] = {1, 2, 4, 8, 20, 28, 56};

double GcSeconds(const WorkloadProfile& profile, GcVariant variant, uint32_t threads) {
  return RunSingle(profile, DefaultHeap(DeviceKind::kNvm),
                   MakeGcOptions(variant, threads))
      .gc_seconds();
}

int Main(BenchContext&) {
  std::printf("=== Figure 13: GC time vs GC threads (NVM heap) ===\n\n");
  int vanilla_knee = 0;
  int all_scales_past_20 = 0;
  int all_wins_at_56 = 0;
  int apps = 0;
  for (const auto& base_profile : AllApplicationProfiles()) {
    WorkloadProfile profile = base_profile;
    profile.total_allocation_bytes /= 2;  // Keep the 546-point sweep fast.
    std::printf("--- %s ---\n", profile.name.c_str());
    TablePrinter table({"threads", "vanilla (s)", "+writecache (s)", "+all (s)"});
    double vanilla_at[7];
    double all_at[7];
    for (size_t i = 0; i < std::size(kThreads); ++i) {
      const uint32_t t = kThreads[i];
      const double vanilla = GcSeconds(profile, GcVariant::kVanilla, t);
      const double wc = GcSeconds(profile, GcVariant::kWriteCache, t);
      const double all = GcSeconds(profile, GcVariant::kAll, t);
      vanilla_at[i] = vanilla;
      all_at[i] = all;
      table.AddRow({std::to_string(t), FormatDouble(vanilla, 3), FormatDouble(wc, 3),
                    FormatDouble(all, 3)});
    }
    table.Print();
    // Shape checks: vanilla stops improving (or regresses) past its ~8-thread
    // knee, while +all keeps profiting from extra threads all the way to 56.
    if (vanilla_at[3] < vanilla_at[6] * 1.10) {
      ++vanilla_knee;
    }
    if (all_at[6] < all_at[3] * 1.02) {
      ++all_scales_past_20;
    }
    if (all_at[6] < vanilla_at[6]) {
      ++all_wins_at_56;
    }
    ++apps;
    std::printf("\n");
  }
  std::printf("apps where vanilla stops scaling past 8 threads:   %d of %d\n", vanilla_knee,
              apps);
  std::printf("apps where +all at 56 threads beats +all at 8:     %d of %d\n",
              all_scales_past_20, apps);
  std::printf("apps where +all beats vanilla at 56 threads:       %d of %d\n", all_wins_at_56,
              apps);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig13_scalability)
