// Figure 14: the optimizations migrated to the Parallel Scavenge collector.
//
// Three configurations over the Renaissance suite: vanilla PS, "+all" without
// prefetching (PS ships with no GC prefetching), and "+all". Expected shape
// (Section 5.7): speedups from 0.61x to 2.26x — smaller than G1 on average
// because PS's irregular (non-LAB) copies bypass the write cache — and
// prefetching worth ~4.8% on average.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

double RunPs(const WorkloadProfile& profile, uint32_t threads, GcVariant variant,
             bool prefetch) {
  const int reps = BenchRepetitions();
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    GcOptions base = MakeGcOptions(variant, threads, CollectorKind::kParallelScavenge);
    const GcOptions gc = GcOptionsBuilder(base)
                             .Prefetch(prefetch)
                             .PrefetchHeaderMap(prefetch && base.use_header_map)
                             .Build();
    WorkloadProfile p = profile;
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    total += RunSingle(p, DefaultHeap(DeviceKind::kNvm), gc).gc_seconds();
  }
  return total / reps;
}

int Main(BenchContext& ctx) {
  const uint32_t gc_threads = ctx.threads(20);
  std::printf("=== Figure 14: GC time for Parallel Scavenge (vanilla / no-prefetch / +all) ===\n\n");
  TablePrinter table({"app", "vanilla (s)", "+all no-prefetch (s)", "+all (s)", "speedup",
                      "prefetch gain"});
  double sum_speedup = 0.0;
  double min_speedup = 1e9;
  double max_speedup = 0.0;
  double sum_pf = 0.0;
  int n = 0;
  for (const auto& profile : RenaissanceProfiles()) {
    const double vanilla = RunPs(profile, gc_threads, GcVariant::kVanilla, /*prefetch=*/false);
    const double nopf = RunPs(profile, gc_threads, GcVariant::kAll, /*prefetch=*/false);
    const double all = RunPs(profile, gc_threads, GcVariant::kAll, /*prefetch=*/true);
    const double speedup = vanilla / all;
    const double pf_gain = (nopf - all) / nopf * 100.0;
    sum_speedup += speedup;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    sum_pf += pf_gain;
    ++n;
    table.AddRow({profile.name, FormatDouble(vanilla, 3), FormatDouble(nopf, 3),
                  FormatDouble(all, 3), FormatDouble(speedup, 2) + "x",
                  FormatDouble(pf_gain, 1) + "%"});
  }
  table.Print();
  std::printf("\nPS speedup: avg %.2fx, range %.2fx - %.2fx (paper: 0.61x - 2.26x)\n",
              sum_speedup / n, min_speedup, max_speedup);
  std::printf("prefetching gain: %.1f%% avg (paper: 4.8%%)\n", sum_pf / n);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(fig14_ps_collector)
