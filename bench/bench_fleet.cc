// Multi-tenant fleet bench: three tenants sharing one simulated Optane
// device — a Cassandra-style serving tenant (QoS serving), a Spark-style
// batch-analytics tenant (QoS batch), and a Renaissance-style synthetic
// churner (QoS background) — run twice: uncoordinated (no arbitration, no
// pause scheduling: every tenant fends for itself on the shared device) and
// coordinated (BandwidthArbiter budget enforcement + fleet pause staggering).
//
// Reported per tenant and mode: simulated runtime, GC time/count, serving op
// latency percentiles, batch task throughput, and the arbiter's throttling
// totals. The bench enforces the fleet manager's acceptance bars itself and
// exits nonzero when they do not hold:
//
//   * coordinated serving p99 must beat the uncoordinated baseline by at
//     least kMinServingP99Gain;
//   * coordinated batch throughput must stay within kMinBatchThroughputRatio
//     of the uncoordinated baseline (QoS must not starve the batch tier).
//
// Under --json each tenant x mode pair is one labeled run (gated against
// BENCH_baseline_fleet.json by CI); under --trace each tenant becomes its own
// Chrome-trace process, so Perfetto shows the fleet's pause/bandwidth
// interleaving per Vm. --flight-record points every tenant's recorder at one
// shared directory: the per-tenant incident tags keep the dumps collision-free.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/fleet/fleet_manager.h"
#include "src/fleet/qos.h"
#include "src/fleet/tenant_workload.h"
#include "src/util/table_printer.h"

namespace nvmgc {
namespace {

// Acceptance bars (see header comment).
constexpr double kMinServingP99Gain = 1.05;        // >= 5% p99 improvement.
constexpr double kMinBatchThroughputRatio = 0.70;  // Batch keeps >= 70%.

struct TenantPoint {
  std::string name;
  BenchRunRecord record;
  HistogramSummary latency;  // Serving tenant only.
  double tasks_per_s = 0.0;  // Batch tenant only.
  uint64_t throttle_windows = 0;
  uint64_t stall_ns = 0;
};

struct FleetPoint {
  std::vector<TenantPoint> tenants;  // serving, batch, background.
  uint64_t pauses_deferred = 0;
  uint64_t pause_defer_ns = 0;
};

FleetPoint RunFleet(BenchContext& ctx, bool coordinated, uint32_t threads) {
  const std::string mode = coordinated ? "coordinated" : "uncoordinated";
  FleetOptions options;
  options.arbitration = coordinated;
  options.pause_coordination = coordinated;

  FleetManager fleet(options);

  VmOptions vm_base;
  vm_base.heap = DefaultHeap(DeviceKind::kNvm);
  vm_base.gc = MakeGcOptions(GcVariant::kAll, threads);
  vm_base.trace_gc = ctx.tracing();
  if (ctx.flight_recording()) {
    // One shared incident directory for the whole fleet: the per-tenant
    // incident tags (incident-<tenant>-<seq>.json) keep dumps from colliding.
    vm_base.flight_recorder.dump_dir = ctx.flight_record_dir() + "/fleet-" + mode;
  }

  FleetTenantSpec serving_spec;
  serving_spec.name = "serving";
  serving_spec.tier = QosTier::kServing;
  serving_spec.bandwidth_budget_mbps = 800.0;
  serving_spec.vm = vm_base;
  // A latency tenant is provisioned so steady-state serving fits in eden:
  // its tail must come from device contention (what the arbiter manages),
  // not from self-inflicted evacuation pauses that dwarf request latencies.
  serving_spec.vm.heap.eden_regions = 512;  // 32 MiB.
  FleetTenantSpec batch_spec;
  batch_spec.name = "batch";
  batch_spec.tier = QosTier::kBatch;
  batch_spec.bandwidth_budget_mbps = 400.0;
  batch_spec.vm = vm_base;
  FleetTenantSpec background_spec;
  background_spec.name = "background";
  background_spec.tier = QosTier::kBackground;
  background_spec.bandwidth_budget_mbps = 150.0;
  background_spec.vm = vm_base;

  const uint32_t s = fleet.AddTenant(serving_spec);
  const uint32_t b = fleet.AddTenant(batch_spec);
  const uint32_t g = fleet.AddTenant(background_spec);

  const double scale = BenchScale();
  ServingConfig sc;
  sc.total_requests = static_cast<uint64_t>(40000 * scale);
  auto serving_driver = std::make_unique<ServingDriver>(&fleet.vm(s), sc);
  ServingDriver* serving = serving_driver.get();

  // Batch and background volumes are sized to keep both co-tenants busy for
  // the serving tenant's whole run — the contention window must cover the
  // serving pauses and tail, or the modes trivially tie.
  BatchConfig bc;
  bc.total_tasks = static_cast<uint64_t>(1200 * scale);
  auto batch_driver = std::make_unique<BatchDriver>(&fleet.vm(b), bc);
  BatchDriver* batch = batch_driver.get();

  BackgroundConfig gc_cfg;
  gc_cfg.total_allocation_bytes = static_cast<size_t>(480.0 * 1024 * 1024 * scale);
  auto background_driver = std::make_unique<BackgroundDriver>(&fleet.vm(g), gc_cfg);
  BackgroundDriver* background = background_driver.get();

  fleet.SetDriver(s, std::move(serving_driver));
  fleet.SetDriver(b, std::move(batch_driver));
  fleet.SetDriver(g, std::move(background_driver));
  fleet.Run();

  // Exact, seed-deterministic application allocation volume per tenant
  // (tables + per-op allocations), so the regression gate can pin it tightly.
  const uint64_t serving_alloc =
      (sc.rows + serving->served()) * sc.row_bytes + serving->served() * 48;
  const uint64_t batch_alloc =
      bc.rows * bc.row_bytes + batch->tasks_done() * bc.intermediate_bytes;

  FleetPoint point;
  point.pauses_deferred = fleet.pauses_deferred();
  point.pause_defer_ns = fleet.pause_scheduler().total_defer_ns();
  for (uint32_t id : {s, b, g}) {
    Vm& vm = fleet.vm(id);
    TenantPoint t;
    t.name = fleet.tenant_name(id);
    t.throttle_windows = fleet.arbiter().stats(id).windows_throttled;
    t.stall_ns = fleet.arbiter().stats(id).total_stall_ns;

    BenchRunRecord& r = t.record;
    r.workload = "fleet-" + t.name;
    r.label = "fleet/" + t.name + "/" + mode + "/nvm/t" + std::to_string(threads);
    r.config = {{"mode", mode},
                {"tier", QosTierName(fleet.tenant_tier(id))},
                {"budget_mbps", FormatDouble(fleet.arbiter().budget_mbps(id), 0)},
                {"device", "nvm"},
                {"collector", "g1"},
                {"threads", std::to_string(threads)}};
    r.result.name = r.label;
    r.result.total_ns = vm.now_ns();
    r.result.gc_ns = vm.gc_time_ns();
    r.result.app_ns = vm.app_time_ns();
    r.result.gc_count = vm.gc_count();
    r.result.bytes_allocated = id == s   ? serving_alloc
                               : id == b ? batch_alloc
                                         : background->allocated_bytes();
    const GcCycleStats totals = vm.gc_stats().Totals();
    const uint64_t gc_device_bytes = totals.device_read_bytes + totals.device_write_bytes;
    r.result.gc_bandwidth_mbps =
        vm.gc_time_ns() > 0
            ? static_cast<double>(gc_device_bytes) * 1000.0 / static_cast<double>(vm.gc_time_ns())
            : 0.0;

    r.extra["throttle_windows"] = static_cast<double>(t.throttle_windows);
    r.extra["stall_ms"] = static_cast<double>(t.stall_ns) / 1e6;
    r.extra["device_bytes"] =
        static_cast<double>(fleet.device().tenant_counters(static_cast<uint8_t>(id)).total_bytes());
    if (id == s) {
      t.latency = serving->LatencySummary();
      r.extra["p50_us"] = static_cast<double>(t.latency.p50) / 1e3;
      r.extra["p95_us"] = static_cast<double>(t.latency.p95) / 1e3;
      r.extra["p99_us"] = static_cast<double>(t.latency.p99) / 1e3;
      r.extra["mean_us"] = t.latency.mean / 1e3;
      r.extra["fleet_pauses_deferred"] = static_cast<double>(point.pauses_deferred);
      r.extra["fleet_pause_defer_ms"] = static_cast<double>(point.pause_defer_ns) / 1e6;
    } else if (id == b) {
      t.tasks_per_s = batch->TasksPerSecond();
      r.extra["tasks_per_s"] = t.tasks_per_s;
    } else {
      r.extra["alloc_mb"] = static_cast<double>(background->allocated_bytes()) / (1024.0 * 1024.0);
    }

    if (ctx.observing()) {
      r.pauses = vm.metrics().pauses();
      r.counters = vm.metrics().counters();
      r.gauges = vm.metrics().gauges();
      r.histograms = vm.metrics().Summaries();
      if (ctx.timeline_enabled()) {
        r.timeline = vm.timeline().samples();
      }
      ctx.AppendTrace(vm.tracer(), r.label);
    }
    if (ctx.flight_recording()) {
      vm.DumpFlightRecord();
    }
    point.tenants.push_back(std::move(t));
  }
  return point;
}

int Main(BenchContext& ctx) {
  const uint32_t threads = ctx.threads(4);
  std::printf(
      "=== Fleet: 3 tenants, one shared Optane device — uncoordinated vs "
      "coordinated (QoS arbitration + pause staggering), %u GC threads ===\n\n",
      threads);

  FleetPoint uncoordinated = RunFleet(ctx, /*coordinated=*/false, threads);
  FleetPoint coordinated = RunFleet(ctx, /*coordinated=*/true, threads);

  TablePrinter table({"tenant", "mode", "total (ms)", "gc (ms)", "gcs", "p99 (us)",
                      "tasks/s", "throttled", "stall (ms)"});
  for (const FleetPoint* point : {&uncoordinated, &coordinated}) {
    for (const TenantPoint& t : point->tenants) {
      table.AddRow({t.name, std::string(t.record.config.at("mode")),
                    FormatDouble(static_cast<double>(t.record.result.total_ns) / 1e6, 1),
                    FormatDouble(static_cast<double>(t.record.result.gc_ns) / 1e6, 1),
                    std::to_string(t.record.result.gc_count),
                    t.latency.count > 0 ? FormatDouble(static_cast<double>(t.latency.p99) / 1e3, 1)
                                        : "-",
                    t.tasks_per_s > 0 ? FormatDouble(t.tasks_per_s, 0) : "-",
                    std::to_string(t.throttle_windows),
                    FormatDouble(static_cast<double>(t.stall_ns) / 1e6, 1)});
    }
  }
  table.Print();

  const double p99_unc = static_cast<double>(uncoordinated.tenants[0].latency.p99);
  const double p99_coord = static_cast<double>(coordinated.tenants[0].latency.p99);
  const double p99_gain = p99_coord > 0 ? p99_unc / p99_coord : 0.0;
  const double batch_unc = uncoordinated.tenants[1].tasks_per_s;
  const double batch_coord = coordinated.tenants[1].tasks_per_s;
  const double batch_ratio = batch_unc > 0 ? batch_coord / batch_unc : 0.0;

  // Cross-mode scalars ride on the coordinated records for artifact readers.
  coordinated.tenants[0].record.extra["p99_gain_vs_uncoordinated"] = p99_gain;
  coordinated.tenants[1].record.extra["throughput_ratio_vs_uncoordinated"] = batch_ratio;
  for (FleetPoint* point : {&uncoordinated, &coordinated}) {
    for (TenantPoint& t : point->tenants) {
      ctx.RecordRun(std::move(t.record));
    }
  }

  std::printf("\nserving p99: %.1f us uncoordinated -> %.1f us coordinated "
              "(%.2fx, bar >= %.2fx)\n",
              p99_unc / 1e3, p99_coord / 1e3, p99_gain, kMinServingP99Gain);
  std::printf("batch throughput: %.0f -> %.0f tasks/s (%.2fx of baseline, bar >= %.2fx)\n",
              batch_unc, batch_coord, batch_ratio, kMinBatchThroughputRatio);
  std::printf("pauses deferred (coordinated): %llu (%.2f ms total)\n",
              static_cast<unsigned long long>(coordinated.pauses_deferred),
              static_cast<double>(coordinated.pause_defer_ns) / 1e6);

  const bool p99_ok = p99_gain >= kMinServingP99Gain;
  const bool batch_ok = batch_ratio >= kMinBatchThroughputRatio;
  std::printf("\nacceptance: serving p99 %s, batch throughput %s\n",
              p99_ok ? "OK" : "FAILED", batch_ok ? "OK" : "FAILED");
  return p99_ok && batch_ok ? 0 : 1;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(bench_fleet)
