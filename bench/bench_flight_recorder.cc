// Flight-recorder overhead: the always-on recorder + allocation-site
// profiler must not perturb the simulation.
//
// Each app runs twice on the vanilla G1 / NVM configuration: once with the
// flight recorder disabled and once with it enabled (the default). Both
// recorder and site profiler are host-side bookkeeping — they never touch the
// simulated devices — so the simulated total time must agree within 3%
// (in practice: exactly, the bench enforces the bound itself and exits
// nonzero past it). Wall-clock cost of the bookkeeping is reported in the
// per-run "extra" scalars for the artifact readers.
//
// Under --flight-record=DIR the recorder-on runs also dump incident files
// (one explicit end-of-run dump always; anomaly-triggered dumps when
// --fr-threshold-ns seeds a pause-threshold trigger), which CI feeds to
// scripts/fr_analyze.py --validate.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"

namespace nvmgc {
namespace {

struct Point {
  WorkloadResult result;
  uint64_t incidents = 0;
  double wall_ms = 0.0;
};

Point RunPoint(BenchContext& ctx, const WorkloadProfile& profile, uint32_t threads,
               bool recorder_on) {
  VmOptions options;
  options.heap = DefaultHeap(DeviceKind::kNvm);
  options.gc = MakeGcOptions(GcVariant::kVanilla, threads);
  options.trace_gc = ctx.tracing();
  options.flight_recorder.enabled = recorder_on;
  if (recorder_on) {
    if (ctx.fr_threshold_ns() > 0) {
      options.flight_recorder.pause_threshold_ns = ctx.fr_threshold_ns();
    }
    if (ctx.flight_recording()) {
      // App names are filesystem-safe; a per-label subdirectory keeps the
      // per-recorder incident sequence numbers from colliding.
      options.flight_recorder.dump_dir = ctx.flight_record_dir() + "/" + profile.name;
    }
  }

  BenchRunRecord record;
  record.workload = profile.name;
  record.config = {{"variant", "vanilla"},
                   {"device", "nvm"},
                   {"collector", "g1"},
                   {"threads", std::to_string(threads)},
                   {"recorder", recorder_on ? "on" : "off"}};
  record.label = profile.name + std::string(recorder_on ? "/fr-on" : "/fr-off") +
                 "/nvm/g1/t" + std::to_string(threads);

  Point point;
  const auto wall_start = std::chrono::steady_clock::now();
  point.result = RunWorkload(ScaledProfile(profile), options, [&](Vm& vm) {
    record.pauses = vm.metrics().pauses();
    record.counters = vm.metrics().counters();
    record.gauges = vm.metrics().gauges();
    record.histograms = vm.metrics().Summaries();
    if (ctx.timeline_enabled()) {
      record.timeline = vm.timeline().samples();
    }
    ctx.AppendTrace(vm.tracer(), record.label);
    if (recorder_on) {
      if (!vm.options().flight_recorder.dump_dir.empty()) {
        vm.DumpFlightRecord();
      }
      point.incidents = vm.flight_recorder().incidents();
    }
  });
  point.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  record.result = point.result;
  record.extra["wall_ms"] = point.wall_ms;
  record.extra["incidents"] = static_cast<double>(point.incidents);
  ctx.RecordRun(std::move(record));
  return point;
}

int Main(BenchContext& ctx) {
  const uint32_t kGcThreads = ctx.threads(8);
  const std::vector<std::string> apps = {"page-rank", "movie-lens", "scala-stm-bench7"};
  constexpr double kMaxSimRatio = 1.03;  // The PR's acceptance bound.

  std::printf("=== Flight recorder overhead: recorder off vs on (vanilla G1/NVM, %u GC threads) ===\n\n",
              kGcThreads);
  TablePrinter table({"app", "total-off (s)", "total-on (s)", "sim ratio", "wall-off (ms)",
                      "wall-on (ms)", "incidents"});
  bool within_bound = true;
  for (const auto& app : apps) {
    const WorkloadProfile profile = RenaissanceProfile(app);
    const Point off = RunPoint(ctx, profile, kGcThreads, false);
    const Point on = RunPoint(ctx, profile, kGcThreads, true);
    const double ratio = static_cast<double>(on.result.total_ns) /
                         static_cast<double>(off.result.total_ns);
    within_bound &= ratio <= kMaxSimRatio;
    table.AddRow({app, FormatDouble(off.result.total_seconds(), 3),
                  FormatDouble(on.result.total_seconds(), 3), FormatDouble(ratio, 4) + "x",
                  FormatDouble(off.wall_ms, 1), FormatDouble(on.wall_ms, 1),
                  std::to_string(on.incidents)});
  }
  table.Print();
  std::printf("\nsimulated-time ratio bound %.2fx: %s\n", kMaxSimRatio,
              within_bound ? "OK (recorder is host-side only)" : "EXCEEDED");
  return within_bound ? 0 : 1;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(flight_recorder)
