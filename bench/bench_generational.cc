// Generational bench: what the DRAM young generation saves in NVM traffic.
//
// Two application phases run on the NVM heap under two configurations:
//   all — AllOptimizationsOptions: the non-generational "+all" baseline
//         (every allocation and every survivor copy touches NVM);
//   gen — GenerationalGcOptions: the same optimizations with the DRAM young
//         generation in front — objects are born in DRAM eden, age through
//         DRAM survivor space, and only tenured survivors (plus large
//         objects) ever reach NVM.
//
// The phases separate the two claims:
//   alloc-heavy    — almost everything dies young: the young generation
//                    should absorb nearly all writes, so the NVM write volume
//                    must drop by at least half (enforced, exit != 0);
//   survivor-heavy — a large live window forces real tenuring and major
//                    cycles: the major pause cost per evacuated byte must stay
//                    within 10% of the baseline's (enforced, exit != 0), i.e.
//                    paying for generational collection does not blow up
//                    full-heap collections.
// Each generational run ends with one forced major cycle so major-pause data
// exists even when old-generation pressure alone would not trigger one.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_runner.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"

namespace nvmgc {
namespace {

WorkloadProfile AllocHeavyPhase() {
  WorkloadProfile p;
  p.name = "alloc-heavy";
  p.survival_fraction = 0.02;  // Weak generational hypothesis: most die young.
  p.live_window_bytes = 1 * 1024 * 1024;
  p.total_allocation_bytes = 64 * 1024 * 1024;
  p.seed = 11;
  return p;
}

WorkloadProfile SurvivorHeavyPhase() {
  WorkloadProfile p;
  p.name = "survivor-heavy";
  p.survival_fraction = 0.35;  // Heavy tenuring into the old generation.
  p.live_window_bytes = 10 * 1024 * 1024;
  p.total_allocation_bytes = 48 * 1024 * 1024;
  p.seed = 13;
  return p;
}

struct GenRunResult {
  double nvm_write_bytes = 0.0;
  double gc_seconds = 0.0;
  double pause_mean_ns = 0.0;
  double major_pause_mean_ns = 0.0;
  // Pause nanoseconds per byte evacuated — the size-independent pause cost
  // (a major moves the whole heap in one pause, so raw pause times are not
  // comparable against the baseline's young-only cycles).
  double copy_cost_ns_per_byte = 0.0;
  double major_copy_cost_ns_per_byte = 0.0;
  double bytes_promoted = 0.0;
  double survivor_overflow_bytes = 0.0;
  size_t major_count = 0;
  size_t gc_count = 0;
};

GenRunResult RunConfig(BenchContext& ctx, const WorkloadProfile& profile,
                       uint32_t threads, bool generational, const std::string& label) {
  const int reps = BenchRepetitions();
  GenRunResult result;
  double pause_ns_sum = 0.0, major_ns_sum = 0.0;
  double copied_sum = 0.0, major_copied_sum = 0.0;
  size_t pause_n = 0, major_n = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const bool observe = rep == 0;
    VmOptions options;
    options.heap = DefaultHeap(DeviceKind::kNvm);
    options.gc = generational ? GenerationalGcOptions(CollectorKind::kG1, threads)
                              : AllOptimizationsOptions(CollectorKind::kG1, threads);
    options.trace_gc = observe && ctx.tracing();
    WorkloadProfile p = ScaledProfile(profile);
    p.seed = profile.seed + static_cast<uint64_t>(rep) * 7919;
    Vm vm(options);
    {
      SyntheticApp app(&vm, p);
      app.Run();
      if (generational) {
        // Guarantee at least one full-heap cycle per run: the major-pause
        // invariant needs data even when old-gen pressure stays low.
        vm.CollectNow(GcKind::kMajor);
      }
    }
    const GcCycleStats totals = vm.gc_stats().Totals();
    result.nvm_write_bytes +=
        static_cast<double>(vm.heap().heap_device()->counters().write_bytes);
    result.gc_seconds += static_cast<double>(vm.gc_time_ns()) / 1e9;
    result.bytes_promoted += static_cast<double>(totals.bytes_promoted);
    result.survivor_overflow_bytes += static_cast<double>(totals.survivor_overflow_bytes);
    result.gc_count += vm.gc_count();
    size_t rep_majors = 0;
    for (const GcCycleStats& cycle : vm.gc_stats().cycles()) {
      pause_ns_sum += static_cast<double>(cycle.pause_ns);
      copied_sum += static_cast<double>(cycle.bytes_copied);
      ++pause_n;
      if (cycle.is_major != 0) {
        major_ns_sum += static_cast<double>(cycle.pause_ns);
        major_copied_sum += static_cast<double>(cycle.bytes_copied);
        ++major_n;
        ++rep_majors;
      }
    }
    result.major_count += rep_majors;

    if (observe && ctx.observing()) {
      BenchRunRecord record;
      record.label = label;
      record.workload = profile.name;
      record.config = {{"config", generational ? "gen" : "all"},
                       {"device", "nvm"},
                       {"collector", CollectorKindName(CollectorKind::kG1)},
                       {"threads", std::to_string(threads)}};
      record.result.name = "generational/" + std::string(generational ? "gen" : "all") +
                           "/" + profile.name;
      record.result.total_ns = vm.now_ns();
      record.result.gc_ns = vm.gc_time_ns();
      record.result.app_ns = vm.now_ns() - vm.gc_time_ns();
      record.result.gc_count = vm.gc_count();
      record.pauses = vm.metrics().pauses();
      record.counters = vm.metrics().counters();
      record.gauges = vm.metrics().gauges();
      record.histograms = vm.metrics().Summaries();
      if (ctx.timeline_enabled()) {
        record.timeline = vm.timeline().samples();
      }
      record.extra["nvm_write_mb"] =
          static_cast<double>(vm.heap().heap_device()->counters().write_bytes) / 1e6;
      record.extra["bytes_promoted_mb"] = static_cast<double>(totals.bytes_promoted) / 1e6;
      record.extra["survivor_overflow_mb"] =
          static_cast<double>(totals.survivor_overflow_bytes) / 1e6;
      record.extra["major_pauses"] = static_cast<double>(rep_majors);
      ctx.AppendTrace(vm.tracer(), record.label);
      ctx.RecordRun(std::move(record));
    }
  }
  result.nvm_write_bytes /= reps;
  result.gc_seconds /= reps;
  result.bytes_promoted /= reps;
  result.survivor_overflow_bytes /= reps;
  result.gc_count /= static_cast<size_t>(reps);
  result.major_count /= static_cast<size_t>(reps);
  result.pause_mean_ns = pause_n > 0 ? pause_ns_sum / static_cast<double>(pause_n) : 0.0;
  result.major_pause_mean_ns =
      major_n > 0 ? major_ns_sum / static_cast<double>(major_n) : 0.0;
  result.copy_cost_ns_per_byte = copied_sum > 0.0 ? pause_ns_sum / copied_sum : 0.0;
  result.major_copy_cost_ns_per_byte =
      major_copied_sum > 0.0 ? major_ns_sum / major_copied_sum : 0.0;
  return result;
}

int Main(BenchContext& ctx) {
  const uint32_t threads = ctx.threads(8);
  std::printf(
      "=== NVM traffic and pauses: generational DRAM young gen vs +all (NVM heap) "
      "===\n\n");
  TablePrinter table({"phase", "all NVM MB", "gen NVM MB", "reduction",
                      "all ns/B", "major ns/B", "gen major ms", "majors",
                      "promoted MB"});
  int violations = 0;
  for (const WorkloadProfile& profile : {AllocHeavyPhase(), SurvivorHeavyPhase()}) {
    const std::string base = "generational/" + profile.name + "/nvm/g1/t" +
                             std::to_string(threads);
    const GenRunResult all =
        RunConfig(ctx, profile, threads, /*generational=*/false, base + "/all");
    const GenRunResult gen =
        RunConfig(ctx, profile, threads, /*generational=*/true, base + "/gen");

    const double reduction =
        all.nvm_write_bytes > 0.0
            ? (all.nvm_write_bytes - gen.nvm_write_bytes) / all.nvm_write_bytes * 100.0
            : 0.0;
    // Invariant: with most objects dying young, the DRAM young generation
    // must absorb at least half of the NVM write volume.
    if (profile.name == "alloc-heavy" &&
        gen.nvm_write_bytes > 0.5 * all.nvm_write_bytes) {
      std::printf("VIOLATION: %s: generational NVM writes %.1f MB > 50%% of "
                  "baseline %.1f MB\n",
                  profile.name.c_str(), gen.nvm_write_bytes / 1e6,
                  all.nvm_write_bytes / 1e6);
      ++violations;
    }
    // Invariant: full-heap (major) cycles must not pay for the generational
    // split — their per-evacuated-byte pause cost stays within 10% of the
    // baseline's (a major moves far more bytes in one pause than any young
    // cycle, so raw pause times are compared per byte copied).
    if (gen.major_count > 0 && all.copy_cost_ns_per_byte > 0.0 &&
        gen.major_copy_cost_ns_per_byte > 1.10 * all.copy_cost_ns_per_byte) {
      std::printf("VIOLATION: %s: major pause cost %.2f ns/byte > 110%% of "
                  "baseline pause cost %.2f ns/byte\n",
                  profile.name.c_str(), gen.major_copy_cost_ns_per_byte,
                  all.copy_cost_ns_per_byte);
      ++violations;
    }
    if (gen.major_count == 0) {
      std::printf("VIOLATION: %s: no major cycle ran (forced major missing?)\n",
                  profile.name.c_str());
      ++violations;
    }

    table.AddRow({profile.name, FormatDouble(all.nvm_write_bytes / 1e6, 1),
                  FormatDouble(gen.nvm_write_bytes / 1e6, 1),
                  FormatDouble(reduction, 1) + "%",
                  FormatDouble(all.copy_cost_ns_per_byte, 2),
                  FormatDouble(gen.major_copy_cost_ns_per_byte, 2),
                  FormatDouble(gen.major_pause_mean_ns / 1e6, 2),
                  std::to_string(gen.major_count),
                  FormatDouble(gen.bytes_promoted / 1e6, 1)});
  }
  table.Print();
  std::printf("\nalloc-heavy gate: generational NVM writes must be <= 50%% of the "
              "non-generational baseline; major pause cost per evacuated byte "
              "within 10%% of baseline.\n");
  return violations > 0 ? 1 : 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(generational)
