// Google-benchmark micro suite for the library's hot components: the device
// cost model, header-map operations, task queues, and the histogram. These
// measure HOST-side overhead (how expensive the simulation machinery itself
// is), complementing the figure benches, which report simulated time.

#include <benchmark/benchmark.h>

#include "src/core/header_map.h"
#include "src/gc/task_queue.h"
#include "src/nvm/memory_device.h"
#include "src/util/histogram.h"
#include "src/util/random.h"

namespace nvmgc {
namespace {

void BM_DeviceRandomRead(benchmark::State& state) {
  MemoryDevice dev(MakeOptaneProfile());
  SimClock clock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.Access(&clock, RandomRead(0x1000, 64)));
  }
}
BENCHMARK(BM_DeviceRandomRead);

void BM_DeviceSequentialWrite(benchmark::State& state) {
  MemoryDevice dev(MakeOptaneProfile());
  SimClock clock;
  const uint32_t bytes = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.Access(&clock, SequentialWrite(0x1000, bytes)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_DeviceSequentialWrite)->Arg(64)->Arg(4096)->Arg(65536);

void BM_DeviceMixEstimate(benchmark::State& state) {
  MemoryDevice dev(MakeOptaneProfile());
  SimClock clock;
  for (int i = 0; i < 1000; ++i) {
    dev.Access(&clock, RandomRead(0x1000, 64));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev.CurrentTotalBandwidthMbps(clock.now_ns()));
  }
}
BENCHMARK(BM_DeviceMixEstimate);

void BM_HeaderMapPut(benchmark::State& state) {
  MemoryDevice dram(MakeDramProfile());
  HeaderMap map(16 * 1024 * 1024, 16, &dram);
  SimClock clock;
  Address key = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Put(key, key + 1, &clock, nullptr));
    key += 8;
  }
}
BENCHMARK(BM_HeaderMapPut);

void BM_HeaderMapGetHit(benchmark::State& state) {
  MemoryDevice dram(MakeDramProfile());
  HeaderMap map(16 * 1024 * 1024, 16, &dram);
  SimClock clock;
  for (Address key = 8; key < 8 * 10000; key += 8) {
    map.Put(key, key + 1, &clock, nullptr);
  }
  Random rng(5);
  for (auto _ : state) {
    const Address key = 8 * (1 + rng.NextBelow(9999));
    benchmark::DoNotOptimize(map.Get(key, &clock, nullptr));
  }
}
BENCHMARK(BM_HeaderMapGetHit);

void BM_HeaderMapGetMiss(benchmark::State& state) {
  MemoryDevice dram(MakeDramProfile());
  HeaderMap map(16 * 1024 * 1024, 16, &dram);
  SimClock clock;
  Address key = 0x100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Get(key, &clock, nullptr));
    key += 8;
  }
}
BENCHMARK(BM_HeaderMapGetMiss);

void BM_TaskQueuePushPop(benchmark::State& state) {
  TaskQueue queue;
  Address slot = 0;
  for (auto _ : state) {
    queue.Push(0x1000);
    queue.Pop(&slot);
    benchmark::DoNotOptimize(slot);
  }
}
BENCHMARK(BM_TaskQueuePushPop);

void BM_TaskQueueStealHalf(benchmark::State& state) {
  TaskQueue queue;
  std::vector<Address> buffer;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 64; ++i) {
      queue.Push(static_cast<Address>(i));
    }
    buffer.clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(queue.StealHalf(&buffer));
    state.PauseTiming();
    Address slot;
    while (queue.Pop(&slot)) {
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_TaskQueueStealHalf);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Random rng(3);
  for (auto _ : state) {
    h.Record(rng.NextBelow(1'000'000'000));
  }
  benchmark::DoNotOptimize(h.Percentile(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_RandomNext(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RandomNext);

}  // namespace
}  // namespace nvmgc

BENCHMARK_MAIN();
