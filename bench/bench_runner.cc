#include "bench/bench_runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"

namespace nvmgc {

namespace {

BenchContext* g_current = nullptr;

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendString(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendEscaped(out, s);
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendU64Map(std::string* out, const std::map<std::string, uint64_t>& m) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    AppendString(out, k);
    out->push_back(':');
    AppendU64(out, v);
  }
  out->push_back('}');
}

void AppendDoubleMap(std::string* out, const std::map<std::string, double>& m) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    AppendString(out, k);
    out->push_back(':');
    AppendDouble(out, v);
  }
  out->push_back('}');
}

void AppendHistogramMap(std::string* out, const std::map<std::string, HistogramSummary>& m) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, s] : m) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    AppendString(out, k);
    out->append(":{\"count\":");
    AppendU64(out, s.count);
    out->append(",\"p50\":");
    AppendU64(out, s.p50);
    out->append(",\"p95\":");
    AppendU64(out, s.p95);
    out->append(",\"p99\":");
    AppendU64(out, s.p99);
    out->append(",\"max\":");
    AppendU64(out, s.max);
    out->append(",\"mean\":");
    AppendDouble(out, s.mean);
    out->push_back('}');
  }
  out->push_back('}');
}

void AppendTimeline(std::string* out, const std::vector<TimelineSample>& samples) {
  out->push_back('[');
  bool first = true;
  for (const TimelineSample& s : samples) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    out->append("\n{\"pause\":");
    AppendU64(out, s.pause_id);
    out->append(",\"phase\":");
    AppendString(out, GcPhaseKindName(s.phase));
    out->append(",\"time_ns\":");
    AppendU64(out, s.time_ns);
    out->append(",\"read_mbps\":");
    AppendDouble(out, s.read_mbps);
    out->append(",\"write_mbps\":");
    AppendDouble(out, s.write_mbps);
    out->append(",\"interleave\":");
    AppendDouble(out, s.interleave);
    out->append(",\"model_mbps\":");
    AppendDouble(out, s.model_mbps);
    out->push_back('}');
  }
  out->push_back(']');
}

void AppendStringMap(std::string* out, const std::map<std::string, std::string>& m) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    AppendString(out, k);
    out->push_back(':');
    AppendString(out, v);
  }
  out->push_back('}');
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  if (written != body.size()) {
    std::fclose(f);
    return false;
  }
  return std::fclose(f) == 0;
}

// Accepts "--flag=value" and "--flag value"; returns true and advances *i on
// match.
bool MatchFlag(int argc, char** argv, int* i, const char* flag, std::string* value) {
  const char* arg = argv[*i];
  const size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) {
    return false;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0' && *i + 1 < argc) {
    ++*i;
    *value = argv[*i];
    return true;
  }
  return false;
}

void PrintUsage(const char* name) {
  std::printf(
      "usage: %s [flags]\n"
      "  --threads=N     override the bench's default GC thread count\n"
      "  --heap-mb=N     override the default simulated heap size\n"
      "  --collector=K   g1 | ps\n"
      "  --json=PATH     write machine-readable results (nvmgc.bench.v2)\n"
      "  --trace=PATH    write a Chrome-trace / Perfetto JSON timeline\n"
      "  --timeline      embed per-pause NVM bandwidth samples in --json\n"
      "  --repeat=N      repetitions per data point (default $NVMGC_BENCH_REPS or 2)\n"
      "  --scale=F       allocation-volume scale (default $NVMGC_BENCH_SCALE or 1.0)\n"
      "  --flight-record=DIR  write flight-recorder incident dumps under DIR\n"
      "  --fr-threshold-ns=N  absolute pause threshold for the anomaly trigger\n",
      name);
}

}  // namespace

BenchContext* CurrentBenchContext() { return g_current; }

void BenchContext::RecordRun(BenchRunRecord record) { runs_.push_back(std::move(record)); }

void BenchContext::AppendTrace(const GcTracer& tracer, const std::string& process_name) {
  if (!tracing()) {
    return;
  }
  if (!trace_events_.empty()) {
    trace_events_.append(",\n");
  }
  tracer.AppendChromeEvents(&trace_events_, next_trace_pid_++, process_name);
}

bool BenchContext::WriteJson(const std::string& bench_name) const {
  std::string out;
  out.append("{\"schema\":\"nvmgc.bench.v2\",\"bench\":");
  AppendString(&out, bench_name);
  out.append(",\"config\":{\"threads\":");
  AppendU64(&out, threads_);
  out.append(",\"heap_mb\":");
  AppendU64(&out, heap_mb_);
  out.append(",\"collector\":");
  AppendString(&out, has_collector_ ? CollectorKindName(collector_) : "default");
  out.append(",\"repeat\":");
  AppendU64(&out, static_cast<uint64_t>(BenchRepetitions()));
  out.append(",\"scale\":");
  AppendDouble(&out, BenchScale());
  out.append("},\n\"runs\":[\n");
  bool first_run = true;
  for (const BenchRunRecord& run : runs_) {
    if (!first_run) {
      out.append(",\n");
    }
    first_run = false;
    out.append("{\"label\":");
    AppendString(&out, run.label);
    out.append(",\"workload\":");
    AppendString(&out, run.workload);
    out.append(",\"config\":");
    AppendStringMap(&out, run.config);
    out.append(",\"reps\":");
    AppendU64(&out, static_cast<uint64_t>(run.reps));
    out.append(",\"result\":{\"total_ns\":");
    AppendU64(&out, run.result.total_ns);
    out.append(",\"gc_ns\":");
    AppendU64(&out, run.result.gc_ns);
    out.append(",\"app_ns\":");
    AppendU64(&out, run.result.app_ns);
    out.append(",\"gc_count\":");
    AppendU64(&out, run.result.gc_count);
    out.append(",\"bytes_allocated\":");
    AppendU64(&out, run.result.bytes_allocated);
    out.append(",\"gc_bandwidth_mbps\":");
    AppendDouble(&out, run.result.gc_bandwidth_mbps);
    out.append("},\"extra\":");
    AppendDoubleMap(&out, run.extra);
    out.append(",\"metrics\":{\"counters\":");
    AppendU64Map(&out, run.counters);
    out.append(",\"gauges\":");
    AppendU64Map(&out, run.gauges);
    out.append(",\"histograms\":");
    AppendHistogramMap(&out, run.histograms);
    out.push_back('}');
    if (timeline_) {
      out.append(",\"timeline\":");
      AppendTimeline(&out, run.timeline);
    }
    out.append(",\"pauses\":[");
    bool first_pause = true;
    for (const PauseSnapshot& pause : run.pauses) {
      if (!first_pause) {
        out.push_back(',');
      }
      first_pause = false;
      out.append("\n{\"id\":");
      AppendU64(&out, pause.id);
      out.append(",\"start_ns\":");
      AppendU64(&out, pause.start_ns);
      out.append(",\"values\":");
      AppendU64Map(&out, pause.values);
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append("\n]}\n");
  return WriteFile(json_path_, out);
}

bool BenchContext::WriteTrace() const {
  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  out.append(trace_events_);
  out.append("\n]}\n");
  return WriteFile(trace_path_, out);
}

int BenchMain(const char* name, BenchFn fn, int argc, char** argv) {
  BenchContext ctx;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(name);
      return 0;
    }
    if (MatchFlag(argc, argv, &i, "--threads", &value)) {
      ctx.threads_ = static_cast<uint32_t>(std::atoi(value.c_str()));
      if (ctx.threads_ == 0) {
        std::fprintf(stderr, "%s: --threads must be a positive integer, got '%s'\n", name,
                     value.c_str());
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--heap-mb", &value)) {
      ctx.heap_mb_ = static_cast<uint32_t>(std::atoi(value.c_str()));
      if (ctx.heap_mb_ == 0) {
        std::fprintf(stderr, "%s: --heap-mb must be a positive integer, got '%s'\n", name,
                     value.c_str());
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--collector", &value)) {
      if (value == "g1") {
        ctx.collector_ = CollectorKind::kG1;
      } else if (value == "ps") {
        ctx.collector_ = CollectorKind::kParallelScavenge;
      } else {
        std::fprintf(stderr, "%s: --collector must be 'g1' or 'ps', got '%s'\n", name,
                     value.c_str());
        return 2;
      }
      ctx.has_collector_ = true;
    } else if (MatchFlag(argc, argv, &i, "--json", &value)) {
      ctx.json_path_ = value;
    } else if (MatchFlag(argc, argv, &i, "--trace", &value)) {
      ctx.trace_path_ = value;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      ctx.timeline_ = true;
    } else if (MatchFlag(argc, argv, &i, "--flight-record", &value)) {
      ctx.flight_record_dir_ = value;
    } else if (MatchFlag(argc, argv, &i, "--fr-threshold-ns", &value)) {
      ctx.fr_threshold_ns_ = static_cast<uint64_t>(std::atoll(value.c_str()));
      if (ctx.fr_threshold_ns_ == 0) {
        std::fprintf(stderr, "%s: --fr-threshold-ns must be a positive integer, got '%s'\n",
                     name, value.c_str());
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--repeat", &value)) {
      ctx.repeat_ = std::atoi(value.c_str());
      if (ctx.repeat_ < 1) {
        std::fprintf(stderr, "%s: --repeat must be >= 1, got '%s'\n", name, value.c_str());
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--scale", &value)) {
      ctx.scale_ = std::atof(value.c_str());
      if (ctx.scale_ <= 0.0) {
        std::fprintf(stderr, "%s: --scale must be > 0, got '%s'\n", name, value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", name, argv[i]);
      PrintUsage(name);
      return 2;
    }
  }
  if (ctx.repeat_ > 0) {
    SetBenchRepetitions(ctx.repeat_);
  }
  if (ctx.scale_ > 0.0) {
    SetBenchScale(ctx.scale_);
  }

  g_current = &ctx;
  const int rc = fn(ctx);
  g_current = nullptr;

  if (rc == 0 && !ctx.json_path_.empty() && !ctx.WriteJson(name)) {
    std::fprintf(stderr, "%s: failed to write --json=%s\n", name, ctx.json_path_.c_str());
    return 3;
  }
  if (rc == 0 && !ctx.trace_path_.empty() && !ctx.WriteTrace()) {
    std::fprintf(stderr, "%s: failed to write --trace=%s\n", name, ctx.trace_path_.c_str());
    return 3;
  }
  return rc;
}

}  // namespace nvmgc
