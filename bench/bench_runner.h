// BenchRunner: the shared command-line front end for every bench binary.
//
// A bench registers one entry point with the NVMGC_BENCH_MAIN macro and
// receives a BenchContext carrying the uniform flag set:
//
//   --threads=N     override the bench's default GC thread count
//   --heap-mb=N     override the default simulated heap size (region counts
//                   scale proportionally; benches that build a HeapConfig by
//                   hand are unaffected)
//   --collector=K   g1 | ps
//   --json=PATH     write a machine-readable result file (schema
//                   "nvmgc.bench.v2": config + per-run results + lifetime
//                   metrics + per-pause snapshots + histogram percentile
//                   digests + optional extra scalars)
//   --trace=PATH    write a merged Chrome-trace / Perfetto JSON file; each
//                   recorded run becomes one "process" named by its label,
//                   with NVM bandwidth counter tracks under the GC spans
//   --timeline      embed each observed run's per-pause bandwidth timeline
//                   (150 us read/write MB/s + interleave samples) in --json
//   --repeat=N      repetitions averaged per data point (NVMGC_BENCH_REPS)
//   --scale=F       allocation-volume scale factor (NVMGC_BENCH_SCALE)
//   --flight-record=DIR  arm the GC flight recorder's anomaly dumps: each
//                   observed run writes nvmgc.incident.v1 files into a
//                   per-label subdirectory of DIR, plus one explicit
//                   end-of-run dump (see scripts/fr_analyze.py)
//   --fr-threshold-ns=N  absolute pause threshold for the recorder's
//                   anomaly trigger (default: trailing-p99 outlier only)
//
// bench_common's RunOnce / RunSingle consult the active context, so existing
// table-printing bench bodies pick up --json / --trace without any changes
// beyond using ctx.threads()/ctx.collector() for their defaults.

#ifndef NVMGC_BENCH_BENCH_RUNNER_H_
#define NVMGC_BENCH_BENCH_RUNNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/gc/gc_options.h"
#include "src/obs/device_timeline.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {

// One recorded data point: an (averaged) workload run plus the observability
// artifacts harvested from its first repetition.
struct BenchRunRecord {
  std::string label;     // Unique-ish "<workload>/<variant>/<device>/tN" key.
  std::string workload;  // Profile name.
  std::map<std::string, std::string> config;  // variant/device/collector/...
  WorkloadResult result;                      // Averaged over `reps`.
  int reps = 1;
  // Captured from repetition 0 when --json is active:
  std::vector<PauseSnapshot> pauses;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  // Percentile digests of every registry histogram (schema v2).
  std::map<std::string, HistogramSummary> histograms;
  // Per-pause bandwidth samples, harvested only under --timeline (schema v2).
  std::vector<TimelineSample> timeline;
  // Bench-specific scalar results (e.g. cassandra p50_ms/p95_ms/p99_ms) that
  // don't fit WorkloadResult (schema v2).
  std::map<std::string, double> extra;
};

class BenchContext {
 public:
  // --- Flag accessors; the bench passes its paper-default value ---
  uint32_t threads(uint32_t default_threads) const {
    return threads_ > 0 ? threads_ : default_threads;
  }
  CollectorKind collector(CollectorKind default_collector) const {
    return has_collector_ ? collector_ : default_collector;
  }
  bool has_heap_mb() const { return heap_mb_ > 0; }
  uint32_t heap_mb() const { return heap_mb_; }

  const std::string& json_path() const { return json_path_; }
  const std::string& trace_path() const { return trace_path_; }
  // True when runs should be observed (per-pause metrics harvested).
  bool observing() const { return !json_path_.empty() || !trace_path_.empty(); }
  // True when GC phase tracing should be enabled on observed runs.
  bool tracing() const { return !trace_path_.empty(); }
  // True when per-pause bandwidth timelines should be embedded in the JSON
  // artifact (--timeline; adds a "timeline" array per run).
  bool timeline_enabled() const { return timeline_; }
  // Flight-recorder incident directory (--flight-record). Empty = anomaly
  // dumps disabled. bench_common gives each observed run a per-label
  // subdirectory underneath so incident names never collide.
  const std::string& flight_record_dir() const { return flight_record_dir_; }
  bool flight_recording() const { return !flight_record_dir_.empty(); }
  // Pause-threshold override for the recorder's anomaly trigger
  // (--fr-threshold-ns; 0 = keep the p99-outlier default).
  uint64_t fr_threshold_ns() const { return fr_threshold_ns_; }

  // --- Recording (called by bench_common) ---
  void RecordRun(BenchRunRecord record);
  // Appends one observed run's trace events as a new Chrome-trace "process"
  // named `process_name`.
  void AppendTrace(const GcTracer& tracer, const std::string& process_name);

  const std::vector<BenchRunRecord>& runs() const { return runs_; }

 private:
  friend int BenchMain(const char* name, int (*fn)(BenchContext&), int argc, char** argv);

  bool WriteJson(const std::string& bench_name) const;
  bool WriteTrace() const;

  uint32_t threads_ = 0;  // 0 = bench default.
  uint32_t heap_mb_ = 0;  // 0 = bench default.
  bool has_collector_ = false;
  CollectorKind collector_ = CollectorKind::kG1;
  std::string json_path_;
  std::string trace_path_;
  std::string flight_record_dir_;
  uint64_t fr_threshold_ns_ = 0;
  bool timeline_ = false;
  int repeat_ = 0;      // 0 = env/default.
  double scale_ = 0.0;  // 0 = env/default.

  std::vector<BenchRunRecord> runs_;
  std::string trace_events_;  // Accumulated Chrome-trace objects.
  uint32_t next_trace_pid_ = 1;
};

// The context of the BenchMain currently running, or nullptr outside one
// (e.g. when a bench body is driven from a test).
BenchContext* CurrentBenchContext();

using BenchFn = int (*)(BenchContext&);

// Parses the uniform flags, runs `fn` under an installed context, then writes
// the requested --json / --trace artifacts. Returns the bench's exit code, or
// nonzero on bad flags / artifact-write failure.
int BenchMain(const char* name, BenchFn fn, int argc, char** argv);

}  // namespace nvmgc

// Defines main() for a bench whose entry point is `int Main(BenchContext&)`
// in namespace nvmgc (anonymous namespaces included).
#define NVMGC_BENCH_MAIN(bench_name)                                   \
  int main(int argc, char** argv) {                                    \
    return ::nvmgc::BenchMain(#bench_name, ::nvmgc::Main, argc, argv); \
  }

#endif  // NVMGC_BENCH_BENCH_RUNNER_H_
