// Section 4.3 table: the software-prefetch microbenchmark.
//
// 40 million random read+update accesses to a large array, with and without
// prefetching, on DRAM and NVM. Paper numbers: DRAM 1.513s -> 0.958s (1.58x),
// NVM 4.171s -> 1.369s (3.05x) — prefetching helps NVM roughly twice as much
// because there is more miss latency to hide.

#include <cstdio>

#include "bench/bench_runner.h"
#include "src/util/table_printer.h"
#include "src/workloads/prefetch_micro.h"

namespace nvmgc {
namespace {

int Main(BenchContext&) {
  std::printf("=== Section 4.3 table: prefetch microbenchmark (40M random accesses) ===\n\n");
  TablePrinter table({"configuration", "result (s)", "paper (s)"});
  const PrefetchMicroResult dram_nopf = RunPrefetchMicro(DeviceKind::kDram, false);
  const PrefetchMicroResult dram_pf = RunPrefetchMicro(DeviceKind::kDram, true);
  const PrefetchMicroResult nvm_nopf = RunPrefetchMicro(DeviceKind::kNvm, false);
  const PrefetchMicroResult nvm_pf = RunPrefetchMicro(DeviceKind::kNvm, true);
  table.AddRow({"DRAM-noprefetch", FormatDouble(dram_nopf.seconds, 3), "1.513"});
  table.AddRow({"DRAM-prefetch", FormatDouble(dram_pf.seconds, 3), "0.958"});
  table.AddRow({"NVM-noprefetch", FormatDouble(nvm_nopf.seconds, 3), "4.171"});
  table.AddRow({"NVM-prefetch", FormatDouble(nvm_pf.seconds, 3), "1.369"});
  table.Print();
  std::printf("\nDRAM improvement: %.2fx (paper: 1.58x)\n", dram_nopf.seconds / dram_pf.seconds);
  std::printf("NVM improvement:  %.2fx (paper: 3.05x)\n", nvm_nopf.seconds / nvm_pf.seconds);
  return 0;
}

}  // namespace
}  // namespace nvmgc

NVMGC_BENCH_MAIN(tbl_prefetch_micro)
