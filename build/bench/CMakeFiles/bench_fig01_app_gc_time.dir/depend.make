# Empty dependencies file for bench_fig01_app_gc_time.
# This may be replaced when dependencies are built.
