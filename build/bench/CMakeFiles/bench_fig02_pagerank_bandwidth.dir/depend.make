# Empty dependencies file for bench_fig02_pagerank_bandwidth.
# This may be replaced when dependencies are built.
