# Empty dependencies file for bench_fig03_als_bandwidth.
# This may be replaced when dependencies are built.
