file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_gc_time.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig05_gc_time.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig05_gc_time.dir/bench_fig05_gc_time.cc.o"
  "CMakeFiles/bench_fig05_gc_time.dir/bench_fig05_gc_time.cc.o.d"
  "bench_fig05_gc_time"
  "bench_fig05_gc_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_gc_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
