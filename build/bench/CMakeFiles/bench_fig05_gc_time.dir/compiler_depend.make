# Empty compiler generated dependencies file for bench_fig05_gc_time.
# This may be replaced when dependencies are built.
