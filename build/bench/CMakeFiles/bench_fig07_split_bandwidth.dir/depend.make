# Empty dependencies file for bench_fig07_split_bandwidth.
# This may be replaced when dependencies are built.
