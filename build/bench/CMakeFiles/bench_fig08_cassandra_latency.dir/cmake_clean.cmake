file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_cassandra_latency.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig08_cassandra_latency.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig08_cassandra_latency.dir/bench_fig08_cassandra_latency.cc.o"
  "CMakeFiles/bench_fig08_cassandra_latency.dir/bench_fig08_cassandra_latency.cc.o.d"
  "bench_fig08_cassandra_latency"
  "bench_fig08_cassandra_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_cassandra_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
