# Empty dependencies file for bench_fig08_cassandra_latency.
# This may be replaced when dependencies are built.
