# Empty compiler generated dependencies file for bench_fig09_app_time.
# This may be replaced when dependencies are built.
