# Empty compiler generated dependencies file for bench_fig10_headermap_size.
# This may be replaced when dependencies are built.
