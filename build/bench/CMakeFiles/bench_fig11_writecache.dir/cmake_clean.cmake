file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_writecache.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig11_writecache.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig11_writecache.dir/bench_fig11_writecache.cc.o"
  "CMakeFiles/bench_fig11_writecache.dir/bench_fig11_writecache.cc.o.d"
  "bench_fig11_writecache"
  "bench_fig11_writecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_writecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
