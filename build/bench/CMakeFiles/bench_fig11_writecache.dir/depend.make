# Empty dependencies file for bench_fig11_writecache.
# This may be replaced when dependencies are built.
