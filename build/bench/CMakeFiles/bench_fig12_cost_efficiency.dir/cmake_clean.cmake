file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cost_efficiency.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig12_cost_efficiency.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig12_cost_efficiency.dir/bench_fig12_cost_efficiency.cc.o"
  "CMakeFiles/bench_fig12_cost_efficiency.dir/bench_fig12_cost_efficiency.cc.o.d"
  "bench_fig12_cost_efficiency"
  "bench_fig12_cost_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cost_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
