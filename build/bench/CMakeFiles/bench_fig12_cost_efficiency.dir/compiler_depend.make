# Empty compiler generated dependencies file for bench_fig12_cost_efficiency.
# This may be replaced when dependencies are built.
