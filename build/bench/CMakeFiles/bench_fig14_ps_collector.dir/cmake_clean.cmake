file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ps_collector.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig14_ps_collector.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig14_ps_collector.dir/bench_fig14_ps_collector.cc.o"
  "CMakeFiles/bench_fig14_ps_collector.dir/bench_fig14_ps_collector.cc.o.d"
  "bench_fig14_ps_collector"
  "bench_fig14_ps_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ps_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
