# Empty dependencies file for bench_fig14_ps_collector.
# This may be replaced when dependencies are built.
