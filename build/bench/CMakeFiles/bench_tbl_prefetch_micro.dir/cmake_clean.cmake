file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl_prefetch_micro.dir/bench_common.cc.o"
  "CMakeFiles/bench_tbl_prefetch_micro.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_tbl_prefetch_micro.dir/bench_tbl_prefetch_micro.cc.o"
  "CMakeFiles/bench_tbl_prefetch_micro.dir/bench_tbl_prefetch_micro.cc.o.d"
  "bench_tbl_prefetch_micro"
  "bench_tbl_prefetch_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl_prefetch_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
