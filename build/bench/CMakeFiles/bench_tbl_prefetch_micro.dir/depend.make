# Empty dependencies file for bench_tbl_prefetch_micro.
# This may be replaced when dependencies are built.
