file(REMOVE_RECURSE
  "CMakeFiles/example_cassandra_tail_latency.dir/cassandra_tail_latency.cpp.o"
  "CMakeFiles/example_cassandra_tail_latency.dir/cassandra_tail_latency.cpp.o.d"
  "example_cassandra_tail_latency"
  "example_cassandra_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cassandra_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
