# Empty dependencies file for example_cassandra_tail_latency.
# This may be replaced when dependencies are built.
