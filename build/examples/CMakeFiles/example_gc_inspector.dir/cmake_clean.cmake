file(REMOVE_RECURSE
  "CMakeFiles/example_gc_inspector.dir/gc_inspector.cpp.o"
  "CMakeFiles/example_gc_inspector.dir/gc_inspector.cpp.o.d"
  "example_gc_inspector"
  "example_gc_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gc_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
