# Empty compiler generated dependencies file for example_gc_inspector.
# This may be replaced when dependencies are built.
