file(REMOVE_RECURSE
  "CMakeFiles/example_gc_tuning.dir/gc_tuning.cpp.o"
  "CMakeFiles/example_gc_tuning.dir/gc_tuning.cpp.o.d"
  "example_gc_tuning"
  "example_gc_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gc_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
