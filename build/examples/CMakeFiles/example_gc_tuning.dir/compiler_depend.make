# Empty compiler generated dependencies file for example_gc_tuning.
# This may be replaced when dependencies are built.
