file(REMOVE_RECURSE
  "CMakeFiles/example_spark_pagerank.dir/spark_pagerank.cpp.o"
  "CMakeFiles/example_spark_pagerank.dir/spark_pagerank.cpp.o.d"
  "example_spark_pagerank"
  "example_spark_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spark_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
