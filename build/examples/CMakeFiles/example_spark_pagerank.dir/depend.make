# Empty dependencies file for example_spark_pagerank.
# This may be replaced when dependencies are built.
