
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/header_map.cc" "src/CMakeFiles/nvmgc.dir/core/header_map.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/core/header_map.cc.o.d"
  "/root/repo/src/core/write_cache.cc" "src/CMakeFiles/nvmgc.dir/core/write_cache.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/core/write_cache.cc.o.d"
  "/root/repo/src/gc/copy_collector.cc" "src/CMakeFiles/nvmgc.dir/gc/copy_collector.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/gc/copy_collector.cc.o.d"
  "/root/repo/src/gc/gc_thread_pool.cc" "src/CMakeFiles/nvmgc.dir/gc/gc_thread_pool.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/gc/gc_thread_pool.cc.o.d"
  "/root/repo/src/gc/old_reclaim.cc" "src/CMakeFiles/nvmgc.dir/gc/old_reclaim.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/gc/old_reclaim.cc.o.d"
  "/root/repo/src/heap/heap.cc" "src/CMakeFiles/nvmgc.dir/heap/heap.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/heap/heap.cc.o.d"
  "/root/repo/src/heap/heap_verifier.cc" "src/CMakeFiles/nvmgc.dir/heap/heap_verifier.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/heap/heap_verifier.cc.o.d"
  "/root/repo/src/heap/klass.cc" "src/CMakeFiles/nvmgc.dir/heap/klass.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/heap/klass.cc.o.d"
  "/root/repo/src/heap/region.cc" "src/CMakeFiles/nvmgc.dir/heap/region.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/heap/region.cc.o.d"
  "/root/repo/src/nvm/bandwidth_ledger.cc" "src/CMakeFiles/nvmgc.dir/nvm/bandwidth_ledger.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/nvm/bandwidth_ledger.cc.o.d"
  "/root/repo/src/nvm/bandwidth_model.cc" "src/CMakeFiles/nvmgc.dir/nvm/bandwidth_model.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/nvm/bandwidth_model.cc.o.d"
  "/root/repo/src/nvm/device_profile.cc" "src/CMakeFiles/nvmgc.dir/nvm/device_profile.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/nvm/device_profile.cc.o.d"
  "/root/repo/src/nvm/memory_device.cc" "src/CMakeFiles/nvmgc.dir/nvm/memory_device.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/nvm/memory_device.cc.o.d"
  "/root/repo/src/runtime/gc_report.cc" "src/CMakeFiles/nvmgc.dir/runtime/gc_report.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/runtime/gc_report.cc.o.d"
  "/root/repo/src/runtime/mutator.cc" "src/CMakeFiles/nvmgc.dir/runtime/mutator.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/runtime/mutator.cc.o.d"
  "/root/repo/src/runtime/vm.cc" "src/CMakeFiles/nvmgc.dir/runtime/vm.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/runtime/vm.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/nvmgc.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/nvmgc.dir/util/random.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/util/random.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/nvmgc.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/util/table_printer.cc.o.d"
  "/root/repo/src/workloads/cassandra.cc" "src/CMakeFiles/nvmgc.dir/workloads/cassandra.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/workloads/cassandra.cc.o.d"
  "/root/repo/src/workloads/prefetch_micro.cc" "src/CMakeFiles/nvmgc.dir/workloads/prefetch_micro.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/workloads/prefetch_micro.cc.o.d"
  "/root/repo/src/workloads/renaissance.cc" "src/CMakeFiles/nvmgc.dir/workloads/renaissance.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/workloads/renaissance.cc.o.d"
  "/root/repo/src/workloads/spark.cc" "src/CMakeFiles/nvmgc.dir/workloads/spark.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/workloads/spark.cc.o.d"
  "/root/repo/src/workloads/synthetic_app.cc" "src/CMakeFiles/nvmgc.dir/workloads/synthetic_app.cc.o" "gcc" "src/CMakeFiles/nvmgc.dir/workloads/synthetic_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
