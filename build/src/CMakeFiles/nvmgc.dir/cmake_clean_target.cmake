file(REMOVE_RECURSE
  "libnvmgc.a"
)
