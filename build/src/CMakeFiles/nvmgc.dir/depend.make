# Empty dependencies file for nvmgc.
# This may be replaced when dependencies are built.
