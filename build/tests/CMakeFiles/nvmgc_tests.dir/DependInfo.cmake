
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bandwidth_observability_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/bandwidth_observability_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/bandwidth_observability_test.cc.o.d"
  "/root/repo/tests/gc_integration_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/gc_integration_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/gc_integration_test.cc.o.d"
  "/root/repo/tests/gc_property_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/gc_property_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/gc_property_test.cc.o.d"
  "/root/repo/tests/header_map_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/header_map_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/header_map_test.cc.o.d"
  "/root/repo/tests/heap_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/heap_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/heap_test.cc.o.d"
  "/root/repo/tests/nvm_device_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/nvm_device_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/nvm_device_test.cc.o.d"
  "/root/repo/tests/old_reclaim_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/old_reclaim_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/old_reclaim_test.cc.o.d"
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/runtime_test.cc.o.d"
  "/root/repo/tests/spark_semantics_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/spark_semantics_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/spark_semantics_test.cc.o.d"
  "/root/repo/tests/task_queue_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/task_queue_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/task_queue_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/workloads_test.cc.o.d"
  "/root/repo/tests/write_cache_test.cc" "tests/CMakeFiles/nvmgc_tests.dir/write_cache_test.cc.o" "gcc" "tests/CMakeFiles/nvmgc_tests.dir/write_cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nvmgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
