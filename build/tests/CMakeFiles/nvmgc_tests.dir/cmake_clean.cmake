file(REMOVE_RECURSE
  "CMakeFiles/nvmgc_tests.dir/bandwidth_observability_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/bandwidth_observability_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/gc_integration_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/gc_integration_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/gc_property_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/gc_property_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/header_map_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/header_map_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/heap_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/heap_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/nvm_device_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/nvm_device_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/old_reclaim_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/old_reclaim_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/runtime_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/runtime_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/spark_semantics_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/spark_semantics_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/task_queue_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/task_queue_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/util_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/util_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/workloads_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/workloads_test.cc.o.d"
  "CMakeFiles/nvmgc_tests.dir/write_cache_test.cc.o"
  "CMakeFiles/nvmgc_tests.dir/write_cache_test.cc.o.d"
  "nvmgc_tests"
  "nvmgc_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmgc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
