# Empty dependencies file for nvmgc_tests.
# This may be replaced when dependencies are built.
