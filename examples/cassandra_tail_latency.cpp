// Drives the Cassandra-style key-value service with an open-loop load and
// shows how GC pauses shape the latency tail — and how the NVM-aware
// collector shortens it (paper Figure 8).
//
//   ./build/examples/example_cassandra_tail_latency [kqps]

#include <cstdio>
#include <cstdlib>

#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/cassandra.h"

namespace {

using namespace nvmgc;

LatencyResult RunPhase(const GcOptions& gc, double kqps, double write_fraction,
                       size_t* gcs_out) {
  VmOptions options;
  options.heap.region_bytes = 64 * 1024;
  options.heap.heap_regions = 1024;
  options.heap.eden_regions = 128;
  options.heap.dram_cache_regions = 128;
  options.heap.heap_device = DeviceKind::kNvm;
  options.gc = gc;
  Vm vm(options);
  CassandraService service(&vm, CassandraConfig{});
  const uint64_t requests = static_cast<uint64_t>(kqps * 1000.0);  // ~1 simulated second.
  const LatencyResult r = service.RunPhase(requests, kqps, write_fraction);
  *gcs_out = vm.gc_count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double kqps = argc > 1 ? std::atof(argv[1]) : 70.0;
  std::printf("cassandra-stress analog at %.0f kQPS offered load (simulated)\n\n", kqps);

  TablePrinter table({"phase", "collector", "p50 (ms)", "p95 (ms)", "p99 (ms)", "GCs"});
  for (double write_fraction : {1.0, 0.0}) {
    const char* phase = write_fraction == 1.0 ? "write" : "read";
    size_t gcs = 0;
    const LatencyResult vanilla =
        RunPhase(VanillaOptions(CollectorKind::kG1, 16), kqps, write_fraction, &gcs);
    table.AddRow({phase, "vanilla G1", FormatDouble(vanilla.p50_ms, 2),
                  FormatDouble(vanilla.p95_ms, 2), FormatDouble(vanilla.p99_ms, 2),
                  std::to_string(gcs)});
    const LatencyResult opt =
        RunPhase(AllOptimizationsOptions(CollectorKind::kG1, 16), kqps, write_fraction, &gcs);
    table.AddRow({phase, "NVM-aware G1", FormatDouble(opt.p50_ms, 2),
                  FormatDouble(opt.p95_ms, 2), FormatDouble(opt.p99_ms, 2),
                  std::to_string(gcs)});
  }
  table.Print();
  std::printf("\nThe median barely moves (it is service-time bound); the p95/p99 tail is\n"
              "GC-pause bound and shrinks with the NVM-aware collector.\n");
  return 0;
}
