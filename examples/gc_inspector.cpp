// GC inspector: run any of the 26 application profiles under any collector
// configuration and print the full unified-logging-style GC log plus the
// summary — the workflow a GC engineer would use to study one workload.
//
// Usage:
//   example_gc_inspector [app] [collector] [variant] [threads] [device]
//     app       one of the 26 profile names (default: page-rank)
//     collector g1 | ps                      (default: g1)
//     variant   vanilla | writecache | all | all-async   (default: all)
//     threads   GC thread count              (default: 16)
//     device    nvm | dram                   (default: nvm)
//
// Example:
//   ./build/examples/example_gc_inspector naive-bayes g1 vanilla 20 nvm

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/runtime/gc_report.h"
#include "src/runtime/vm.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace {

using namespace nvmgc;

GcOptions ParseVariant(const char* variant, CollectorKind collector, uint32_t threads) {
  if (std::strcmp(variant, "vanilla") == 0) {
    return VanillaOptions(collector, threads);
  }
  if (std::strcmp(variant, "writecache") == 0) {
    return WriteCacheOptions(collector, threads);
  }
  if (std::strcmp(variant, "all-async") == 0) {
    GcOptions o = AllOptimizationsOptions(collector, threads);
    o.async_flush = true;
    return o;
  }
  return AllOptimizationsOptions(collector, threads);
}

}  // namespace

int main(int argc, char** argv) {
  const char* app = argc > 1 ? argv[1] : "page-rank";
  const CollectorKind collector = argc > 2 && std::strcmp(argv[2], "ps") == 0
                                      ? CollectorKind::kParallelScavenge
                                      : CollectorKind::kG1;
  const char* variant = argc > 3 ? argv[3] : "all";
  const uint32_t threads = argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 16;
  const DeviceKind device = argc > 5 && std::strcmp(argv[5], "dram") == 0 ? DeviceKind::kDram
                                                                          : DeviceKind::kNvm;

  VmOptions options;
  options.heap.region_bytes = 64 * 1024;
  options.heap.heap_regions = 1024;
  options.heap.eden_regions = 128;
  options.heap.dram_cache_regions = 384;
  options.heap.heap_device = device;
  options.gc = ParseVariant(variant, collector, threads);

  std::printf("workload %s | collector %s | variant %s | %u GC threads | heap on %s\n\n", app,
              collector == CollectorKind::kG1 ? "g1" : "ps", variant, threads,
              device == DeviceKind::kNvm ? "NVM" : "DRAM");

  Vm vm(options);
  SyntheticApp sapp(&vm, RenaissanceProfile(app));
  const WorkloadResult result = sapp.Run();

  PrintGcLog(&vm);
  std::printf("\n");
  PrintGcSummary(&vm);
  std::printf("\napplication: %.2f ms app + %.2f ms GC = %.2f ms total (%.1f%% in GC)\n",
              static_cast<double>(result.app_ns) / 1e6,
              static_cast<double>(result.gc_ns) / 1e6,
              static_cast<double>(result.total_ns) / 1e6,
              static_cast<double>(result.gc_ns) / static_cast<double>(result.total_ns) * 100.0);
  return 0;
}
