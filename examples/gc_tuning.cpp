// GC tuning walkthrough: sweeps the write-cache and header-map budgets for a
// workload and prints the pause-time / DRAM-footprint trade-off — the
// decision the paper's Section 5.5 is about.
//
//   ./build/examples/example_gc_tuning

#include <cstdio>

#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace {

using namespace nvmgc;

struct TuneResult {
  double gc_ms = 0.0;
  uint64_t hm_overflows = 0;
  uint64_t cache_overflow_bytes = 0;
};

TuneResult Run(size_t write_cache_bytes, size_t header_map_bytes) {
  VmOptions options;
  options.heap.region_bytes = 64 * 1024;
  options.heap.heap_regions = 1024;
  options.heap.eden_regions = 128;
  options.heap.dram_cache_regions = 256;
  options.heap.heap_device = DeviceKind::kNvm;
  options.gc = AllOptimizationsOptions(CollectorKind::kG1, 16);
  options.gc.write_cache_bytes = write_cache_bytes;
  options.gc.header_map_bytes = header_map_bytes;
  Vm vm(options);
  WorkloadProfile profile = RenaissanceProfile("page-rank");
  SyntheticApp app(&vm, profile);
  app.Run();
  TuneResult r;
  r.gc_ms = static_cast<double>(vm.gc_time_ns()) / 1e6;
  const GcCycleStats totals = vm.gc_stats().Totals();
  r.hm_overflows = totals.header_map_overflows;
  r.cache_overflow_bytes = totals.cache_overflow_bytes;
  return r;
}

}  // namespace

int main() {
  std::printf("Tuning the DRAM budget of the NVM-aware collector (page-rank profile)\n\n");
  constexpr size_t kMiB = 1024 * 1024;
  TablePrinter table({"write cache", "header map", "GC (ms)", "cache overflow",
                      "hm overflows"});
  const size_t cache_sizes[] = {1 * kMiB, 2 * kMiB, 4 * kMiB, 8 * kMiB};
  const size_t map_sizes[] = {1 * kMiB, 4 * kMiB};
  for (size_t map : map_sizes) {
    for (size_t cache : cache_sizes) {
      const TuneResult r = Run(cache, map);
      table.AddRow({FormatSiBytes(cache), FormatSiBytes(map), FormatDouble(r.gc_ms, 1),
                    FormatSiBytes(r.cache_overflow_bytes),
                    std::to_string(r.hm_overflows)});
    }
  }
  table.Print();
  std::printf("\nRule of thumb from the paper: heap/32 for each is enough unless the\n"
              "workload floods the young generation with small survivors (page-rank,\n"
              "kmeans) — then a larger write cache keeps paying off.\n");
  return 0;
}
