// Quickstart: build a VM on simulated NVM, allocate an object graph, trigger
// collections under every GC configuration, and compare the pause times.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/util/table_printer.h"

namespace {

using namespace nvmgc;

// One simulated JVM: 64 MiB heap on NVM, 8 MiB eden, 16 GC threads.
VmOptions MakeOptions(const GcOptions& gc) {
  VmOptions options;
  options.heap.region_bytes = 64 * 1024;
  options.heap.heap_regions = 1024;
  options.heap.eden_regions = 128;
  options.heap.dram_cache_regions = 128;
  options.heap.heap_device = DeviceKind::kNvm;  // The -XX:AllocateHeapAt analog.
  options.gc = gc;
  return options;
}

double RunScenario(const GcOptions& gc) {
  Vm vm(MakeOptions(gc));
  Mutator* mutator = vm.CreateMutator();

  // A "TreeNode" with two reference fields and a 16-byte payload.
  const KlassId node = vm.heap().klasses().RegisterRegular("TreeNode", 2, 16);

  // Keep a rolling window of live linked lists while churning garbage; the
  // eden quota triggers young collections automatically.
  std::vector<RootHandle> live;
  for (int round = 0; round < 120; ++round) {
    const RootHandle root = vm.NewRoot(mutator->Allocate({node}));
    for (int i = 0; i < 3000; ++i) {
      Address child = mutator->Allocate({node});
      if (i % 2 == 0) {
        // Prepend to the list: the whole chain stays reachable from the root.
        mutator->WriteRef(child, 0, vm.GetRoot(root));
        vm.SetRoot(root, child);
      }
      // The other half is immediate garbage.
    }
    live.push_back(root);
    if (live.size() > 6) {  // Old lists become unreachable.
      vm.ReleaseRoot(live.front());
      live.erase(live.begin());
    }
  }
  std::printf("  %zu young GCs, %.2f ms total pause, %llu objects copied\n", vm.gc_count(),
              static_cast<double>(vm.gc_time_ns()) / 1e6,
              static_cast<unsigned long long>(vm.gc_stats().Totals().objects_copied));
  return static_cast<double>(vm.gc_time_ns()) / 1e6;
}

}  // namespace

int main() {
  std::printf("nvmgc quickstart: copy-based young GC on simulated Optane\n\n");

  std::printf("vanilla G1 (mixed NVM reads+writes during evacuation):\n");
  const double vanilla = RunScenario(VanillaOptions(CollectorKind::kG1, 16));

  std::printf("\n+write cache (survivors staged in DRAM, streamed back):\n");
  const double wc = RunScenario(WriteCacheOptions(CollectorKind::kG1, 16));

  std::printf("\n+all (write cache + header map + non-temporal stores + prefetch):\n");
  const double all = RunScenario(AllOptimizationsOptions(CollectorKind::kG1, 16));

  std::printf("\nGC pause reduction: +writecache %.2fx, +all %.2fx\n", vanilla / wc,
              vanilla / all);
  std::printf("(all times are simulated; see DESIGN.md for the device model)\n");
  return 0;
}
