// Runs the miniature Spark page-rank workload — the paper's flagship
// GC-hostile application — on DRAM vs NVM, vanilla vs optimized, and prints
// the execution/GC time split.
//
//   ./build/examples/example_spark_pagerank [vertices] [iterations]

#include <cstdio>
#include <cstdlib>

#include "src/runtime/vm.h"
#include "src/util/table_printer.h"
#include "src/workloads/spark.h"

namespace {

using namespace nvmgc;

WorkloadResult Run(DeviceKind device, const GcOptions& gc, const SparkConfig& config) {
  VmOptions options;
  options.heap.region_bytes = 64 * 1024;
  options.heap.heap_regions = 1024;
  options.heap.eden_regions = 48;  // 3 MiB eden: a memory-hungry configuration.
  options.heap.dram_cache_regions = 128;
  options.heap.heap_device = device;
  options.gc = gc;
  Vm vm(options);
  return RunPageRank(&vm, config);
}

}  // namespace

int main(int argc, char** argv) {
  SparkConfig config;
  config.vertices = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 30000;
  config.iterations = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 8;

  std::printf("mini-Spark page-rank: %u vertices, %u iterations (simulated time)\n\n",
              config.vertices, config.iterations);

  TablePrinter table({"configuration", "total (ms)", "app (ms)", "gc (ms)", "gc share", "GCs"});
  struct Case {
    const char* name;
    DeviceKind device;
    GcOptions gc;
  };
  const Case cases[] = {
      {"DRAM, vanilla G1", DeviceKind::kDram, VanillaOptions(CollectorKind::kG1, 16)},
      {"NVM,  vanilla G1", DeviceKind::kNvm, VanillaOptions(CollectorKind::kG1, 16)},
      {"NVM,  G1 +writecache", DeviceKind::kNvm, WriteCacheOptions(CollectorKind::kG1, 16)},
      {"NVM,  G1 +all", DeviceKind::kNvm, AllOptimizationsOptions(CollectorKind::kG1, 16)},
  };
  for (const Case& c : cases) {
    const WorkloadResult r = Run(c.device, c.gc, config);
    table.AddRow({c.name, FormatDouble(static_cast<double>(r.total_ns) / 1e6, 1),
                  FormatDouble(static_cast<double>(r.app_ns) / 1e6, 1),
                  FormatDouble(static_cast<double>(r.gc_ns) / 1e6, 1),
                  FormatDouble(static_cast<double>(r.gc_ns) / r.total_ns * 100.0, 1) + "%",
                  std::to_string(r.gc_count)});
  }
  table.Print();
  std::printf("\nExpected shape (paper Fig. 1/5/9): GC blows up on NVM far more than the\n"
              "application does, and the NVM-aware optimizations claw most of it back.\n");
  return 0;
}
