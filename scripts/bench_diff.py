#!/usr/bin/env python3
"""Diff two nvmgc bench JSON files (--json output, schema nvmgc.bench.v1).

Runs are matched by label; for each shared label the headline result metrics
are compared, with deltas reported as percentages of the baseline. Exit code
is 0 unless --fail-above is given and some |gc_ns delta| exceeds it.

Usage:
  bench_diff.py baseline.json candidate.json [--metric gc_ns] [--top N]
                [--fail-above PCT]
"""

import argparse
import json
import sys

SCHEMA = "nvmgc.bench.v1"
RESULT_METRICS = ("total_ns", "gc_ns", "app_ns", "gc_count", "bytes_allocated",
                  "gc_bandwidth_mbps")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"{path}: expected schema {SCHEMA}, got {doc.get('schema')!r}")
    return doc


def pct(base, cand):
    if base == 0:
        return float("inf") if cand != 0 else 0.0
    return (cand - base) / base * 100.0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--metric", default="gc_ns", choices=RESULT_METRICS,
                    help="metric used for ranking and --fail-above (default: gc_ns)")
    ap.add_argument("--top", type=int, default=20,
                    help="show only the N largest movers (default: 20; 0 = all)")
    ap.add_argument("--fail-above", type=float, default=None, metavar="PCT",
                    help="exit 1 if any |delta| of --metric exceeds PCT percent")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    base = {r["label"]: r for r in base_doc["runs"]}
    cand = {r["label"]: r for r in cand_doc["runs"]}

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    rows = []
    for label in shared:
        b, c = base[label]["result"], cand[label]["result"]
        rows.append((label, {m: (b[m], c[m], pct(b[m], c[m])) for m in RESULT_METRICS}))
    rows.sort(key=lambda r: abs(r[1][args.metric][2]), reverse=True)

    print(f"bench: {base_doc['bench']} -> {cand_doc['bench']}")
    print(f"runs: {len(base)} baseline, {len(cand)} candidate, {len(shared)} matched")
    if only_base:
        print(f"only in baseline : {', '.join(only_base[:8])}"
              + (" ..." if len(only_base) > 8 else ""))
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand[:8])}"
              + (" ..." if len(only_cand) > 8 else ""))
    print()

    shown = rows if args.top == 0 else rows[:args.top]
    width = max((len(r[0]) for r in shown), default=5)
    print(f"{'label':<{width}}  {'metric':<18} {'baseline':>14} {'candidate':>14} {'delta':>9}")
    for label, metrics in shown:
        first = True
        for m in RESULT_METRICS:
            b, c, d = metrics[m]
            if b == c:
                continue
            name = label if first else ""
            first = False
            print(f"{name:<{width}}  {m:<18} {b:>14.6g} {c:>14.6g} {d:>+8.1f}%")
        if first:  # All metrics identical.
            print(f"{label:<{width}}  (identical)")
    if args.top and len(rows) > args.top:
        print(f"... {len(rows) - args.top} more runs (use --top 0 for all)")

    if args.fail_above is not None:
        worst = max((abs(r[1][args.metric][2]) for r in rows), default=0.0)
        if worst > args.fail_above:
            print(f"\nFAIL: worst |{args.metric}| delta {worst:.1f}% "
                  f"> threshold {args.fail_above:.1f}%")
            return 1
        print(f"\nOK: worst |{args.metric}| delta {worst:.1f}% "
              f"<= threshold {args.fail_above:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
