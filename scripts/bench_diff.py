#!/usr/bin/env python3
"""Diff two nvmgc bench JSON files (--json output, schema nvmgc.bench.v1/v2).

Runs are matched by label; for each shared label the headline result metrics
are compared, with deltas reported as percentages of the baseline.

--fail-above is direction-aware: for time-like metrics (total_ns, gc_ns,
app_ns) only a candidate *slower* than baseline beyond PCT fails, for
gc_bandwidth_mbps only a *drop* beyond PCT fails, and improvements are
reported but never fail; the neutral metrics (gc_count, bytes_allocated) fail
on any move beyond PCT in either direction. --fail-any-change is the escape
hatch that fails on any deviation of any result metric, regardless of
direction.

Histogram percentile digests (schema v2 metrics.histograms) are diffed per
matched label: keys present on both sides report the p99 move, keys present
on only one side are annotated as added/removed rather than erroring — new
instrumentation (e.g. the gc.pause.minor.*/major.* split) routinely appears
in the candidate before the baseline is regenerated. --histograms shows the
shared-key moves; added/removed annotations always print.

Usage:
  bench_diff.py baseline.json candidate.json [--metric gc_ns] [--top N]
                [--fail-above PCT] [--fail-any-change] [--histograms]
"""

import argparse
import json
import sys

SCHEMAS = ("nvmgc.bench.v1", "nvmgc.bench.v2")
RESULT_METRICS = ("total_ns", "gc_ns", "app_ns", "gc_count", "bytes_allocated",
                  "gc_bandwidth_mbps")
LOWER_IS_BETTER = {"total_ns", "gc_ns", "app_ns"}
HIGHER_IS_BETTER = {"gc_bandwidth_mbps"}
# Everything else (gc_count, bytes_allocated) is neutral: any move counts.


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in SCHEMAS:
        sys.exit(f"{path}: expected schema in {SCHEMAS}, got {doc.get('schema')!r}")
    return doc


def pct(base, cand):
    if base == 0:
        return float("inf") if cand != 0 else 0.0
    return (cand - base) / base * 100.0


def regression_pct(metric, delta_pct):
    """The share of `delta_pct` that counts against the candidate (>= 0)."""
    if metric in LOWER_IS_BETTER:
        return max(0.0, delta_pct)
    if metric in HIGHER_IS_BETTER:
        return max(0.0, -delta_pct)
    return abs(delta_pct)


def histograms_of(run):
    """The run's histogram digests, {} on schema v1 (no KeyError either way)."""
    return run.get("metrics", {}).get("histograms", {}) or {}


def diff_histograms(label, base_run, cand_run, show_shared):
    """Prints the label's histogram changes; never fails on one-sided keys."""
    b, c = histograms_of(base_run), histograms_of(cand_run)
    added = sorted(set(c) - set(b))
    removed = sorted(set(b) - set(c))
    lines = []
    for name in added:
        lines.append(f"    histogram {name}: added (candidate only, "
                     f"count={c[name].get('count', 0)})")
    for name in removed:
        lines.append(f"    histogram {name}: removed (baseline only, "
                     f"count={b[name].get('count', 0)})")
    if show_shared:
        for name in sorted(set(b) & set(c)):
            bp, cp = b[name].get("p99", 0), c[name].get("p99", 0)
            if bp == cp:
                continue
            lines.append(f"    histogram {name}: p99 {bp:.6g} -> {cp:.6g} "
                         f"({pct(bp, cp):+.1f}%)")
    if lines:
        print(f"  {label}")
        for line in lines:
            print(line)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--metric", default="gc_ns", choices=RESULT_METRICS,
                    help="metric used for ranking and --fail-above (default: gc_ns)")
    ap.add_argument("--top", type=int, default=20,
                    help="show only the N largest movers (default: 20; 0 = all)")
    ap.add_argument("--fail-above", type=float, default=None, metavar="PCT",
                    help="exit 1 if any run regresses --metric beyond PCT percent "
                         "(direction-aware; improvements never fail)")
    ap.add_argument("--fail-any-change", action="store_true",
                    help="exit 1 on any deviation of any result metric")
    ap.add_argument("--histograms", action="store_true",
                    help="also show p99 moves of histogram digests shared by "
                         "both sides (added/removed keys always print)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    base = {r["label"]: r for r in base_doc["runs"]}
    cand = {r["label"]: r for r in cand_doc["runs"]}

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    rows = []
    for label in shared:
        b, c = base[label]["result"], cand[label]["result"]
        rows.append((label, {m: (b[m], c[m], pct(b[m], c[m])) for m in RESULT_METRICS}))
    rows.sort(key=lambda r: abs(r[1][args.metric][2]), reverse=True)

    print(f"bench: {base_doc['bench']} -> {cand_doc['bench']}")
    print(f"runs: {len(base)} baseline, {len(cand)} candidate, {len(shared)} matched")
    if only_base:
        print(f"only in baseline : {', '.join(only_base[:8])}"
              + (" ..." if len(only_base) > 8 else ""))
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand[:8])}"
              + (" ..." if len(only_cand) > 8 else ""))
    print()

    shown = rows if args.top == 0 else rows[:args.top]
    width = max((len(r[0]) for r in shown), default=5)
    print(f"{'label':<{width}}  {'metric':<18} {'baseline':>14} {'candidate':>14} {'delta':>9}")
    for label, metrics in shown:
        first = True
        for m in RESULT_METRICS:
            b, c, d = metrics[m]
            if b == c:
                continue
            name = label if first else ""
            first = False
            print(f"{name:<{width}}  {m:<18} {b:>14.6g} {c:>14.6g} {d:>+8.1f}%")
        if first:  # All metrics identical.
            print(f"{label:<{width}}  (identical)")
    if args.top and len(rows) > args.top:
        print(f"... {len(rows) - args.top} more runs (use --top 0 for all)")

    # Histogram digests: one-sided keys are annotated, never a failure.
    hist_labels = [label for label in shared
                   if set(histograms_of(base[label])) != set(histograms_of(cand[label]))
                   or (args.histograms and histograms_of(base[label]))]
    if hist_labels:
        print("\nhistogram digests:")
        for label in hist_labels:
            diff_histograms(label, base[label], cand[label], args.histograms)

    if args.fail_any_change:
        changed = [(label, m) for label, metrics in rows
                   for m in RESULT_METRICS if metrics[m][0] != metrics[m][1]]
        if changed:
            print(f"\nFAIL: {len(changed)} metric values changed "
                  f"(first: {changed[0][0]} {changed[0][1]}) and --fail-any-change is set")
            return 1
        print("\nOK: all matched runs identical")
        return 0

    if args.fail_above is not None:
        worst = max((regression_pct(args.metric, r[1][args.metric][2]) for r in rows),
                    default=0.0)
        best = min((r[1][args.metric][2] for r in rows), default=0.0)
        if args.metric in LOWER_IS_BETTER and best < 0:
            print(f"\nnote: best {args.metric} improvement {best:.1f}% (does not fail)")
        if worst > args.fail_above:
            print(f"\nFAIL: worst {args.metric} regression {worst:.1f}% "
                  f"> threshold {args.fail_above:.1f}%")
            return 1
        print(f"\nOK: worst {args.metric} regression {worst:.1f}% "
              f"<= threshold {args.fail_above:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
