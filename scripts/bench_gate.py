#!/usr/bin/env python3
"""Regression gate: compare a bench JSON run against a checked-in baseline.

Runs are matched by label. Every baseline label must be present in the
candidate (a missing label means the bench silently lost coverage). For each
matched run every headline result metric is compared against a per-metric,
direction-aware tolerance:

  total_ns / gc_ns / app_ns    fail only when the candidate is SLOWER than
                               baseline * (1 + tol); speedups always pass
                               (times vary with host thread scheduling, so
                               the default tolerance is generous)
  gc_bandwidth_mbps            fail only when it DROPS below
                               baseline * (1 - tol)
  gc_count / bytes_allocated   fail on any move beyond the (tight) tolerance
                               in either direction — these are allocation-
                               driven and deterministic per seed

Tiny runs have unbounded *relative* noise (a single sub-millisecond pause can
swing several-fold with work-steal scheduling), so time metrics additionally
need an absolute move beyond --floor-ns (default 2 ms) to fail, and
gc_bandwidth_mbps is not gated at all when the baseline's gc_ns measurement
window is below that floor.

Exit code 0 when every metric of every gated pair is within tolerance, 1
otherwise.

Usage:
  bench_gate.py BASELINE.json CANDIDATE.json        single pair (classic form)
  bench_gate.py --baseline BASELINE.json=CANDIDATE.json ...
                                              repeatable: gate several
                                              baseline/candidate pairs in one
                                              invocation; each pair is checked
                                              independently (every baseline
                                              label must be present in its own
                                              candidate) and a failure in any
                                              pair fails the run
  common flags:
                [--tolerance NAME=PCT]...   override one metric's tolerance
                                            (applies to every pair)
                [--inject-regression PCT]   self-test: inflate the candidates'
                                            time metrics by PCT before gating
"""

import argparse
import json
import sys

SCHEMAS = ("nvmgc.bench.v1", "nvmgc.bench.v2")

LOWER_IS_BETTER = {"total_ns", "gc_ns", "app_ns"}
HIGHER_IS_BETTER = {"gc_bandwidth_mbps"}
NEUTRAL = {"gc_count", "bytes_allocated"}

# Default tolerances in percent. Simulated times are deterministic per seed
# only up to work-steal scheduling, which shifts pause boundaries; counts and
# allocation volume are exact.
DEFAULT_TOLERANCE = {
    "total_ns": 50.0,
    "gc_ns": 50.0,
    "app_ns": 50.0,
    "gc_bandwidth_mbps": 50.0,
    "gc_count": 25.0,
    "bytes_allocated": 1.0,
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: {path}: cannot load: {e}")
    if doc.get("schema") not in SCHEMAS:
        sys.exit(f"bench_gate: {path}: expected schema in {SCHEMAS}, "
                 f"got {doc.get('schema')!r}")
    return doc


def parse_tolerances(overrides):
    tol = dict(DEFAULT_TOLERANCE)
    for item in overrides:
        name, _, value = item.partition("=")
        if name not in tol:
            sys.exit(f"bench_gate: unknown metric in --tolerance: {name!r} "
                     f"(known: {sorted(tol)})")
        try:
            tol[name] = float(value)
        except ValueError:
            sys.exit(f"bench_gate: bad --tolerance value: {item!r}")
    return tol


def check_metric(metric, base, cand, tol_pct, floor_ns):
    """Returns (ok, regression_pct) for one metric comparison."""
    if base == 0:
        return cand == 0, 0.0 if cand == 0 else float("inf")
    delta_pct = (cand - base) / base * 100.0
    if metric in LOWER_IS_BETTER:
        regression = max(0.0, delta_pct)
        if metric.endswith("_ns") and cand - base <= floor_ns:
            return True, regression  # Within the absolute noise floor.
    elif metric in HIGHER_IS_BETTER:
        regression = max(0.0, -delta_pct)
    else:
        regression = abs(delta_pct)
    return regression <= tol_pct, regression


def gate_pair(baseline_path, candidate_path, tolerances, floor_ns, inject_pct):
    """Gates one baseline/candidate pair. Returns True when it passes."""
    base_doc = load(baseline_path)
    cand_doc = load(candidate_path)
    base = {r["label"]: r["result"] for r in base_doc["runs"]}
    cand = {r["label"]: r["result"] for r in cand_doc["runs"]}

    if inject_pct is not None:
        factor = 1.0 + inject_pct / 100.0
        for result in cand.values():
            for metric in LOWER_IS_BETTER:
                result[metric] = result[metric] * factor

    missing = sorted(set(base) - set(cand))
    if missing:
        print(f"bench_gate: FAIL: {len(missing)} baseline run(s) absent from "
              f"candidate: {', '.join(missing[:5])}"
              + (" ..." if len(missing) > 5 else ""))
        return False
    extra = sorted(set(cand) - set(base))
    if extra:
        print(f"bench_gate: note: {len(extra)} candidate run(s) not in baseline "
              "(new coverage, not gated)")

    failures = []
    worst = {}  # metric -> worst regression pct seen.
    skipped_bandwidth = 0
    for label in sorted(base):
        for metric, tol_pct in tolerances.items():
            b, c = base[label].get(metric), cand[label].get(metric)
            if b is None or c is None:
                failures.append((label, metric, "metric missing from result"))
                continue
            if (metric == "gc_bandwidth_mbps"
                    and base[label].get("gc_ns", 0) < floor_ns):
                skipped_bandwidth += 1
                continue
            ok, regression = check_metric(metric, b, c, tol_pct, floor_ns)
            worst[metric] = max(worst.get(metric, 0.0), regression)
            if not ok:
                failures.append(
                    (label, metric,
                     f"baseline {b:.6g} -> candidate {c:.6g} "
                     f"(regression {regression:.1f}% > tolerance {tol_pct:.1f}%)"))

    print(f"bench_gate: {base_doc['bench']}: {len(base)} gated run(s)")
    if skipped_bandwidth:
        print(f"  gc_bandwidth_mbps ungated for {skipped_bandwidth} run(s) with "
              f"baseline gc_ns < {floor_ns:.0f} ns")
    for metric in sorted(worst):
        print(f"  {metric:<18} worst regression {worst[metric]:6.1f}% "
              f"(tolerance {tolerances[metric]:.1f}%)")
    if failures:
        print(f"\nbench_gate: FAIL: {len(failures)} metric(s) out of tolerance")
        for label, metric, detail in failures[:20]:
            print(f"  {label}: {metric}: {detail}")
        if len(failures) > 20:
            print(f"  ... {len(failures) - 20} more")
        return False
    print("\nbench_gate: OK: all metrics within tolerance")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?",
                    help="baseline JSON (classic two-positional form)")
    ap.add_argument("candidate", nargs="?",
                    help="candidate JSON (classic two-positional form)")
    ap.add_argument("--baseline", action="append", default=[], dest="pairs",
                    metavar="BASELINE=CANDIDATE",
                    help="repeatable baseline/candidate pair; each pair is "
                         "gated independently in one invocation")
    ap.add_argument("--tolerance", action="append", default=[], metavar="NAME=PCT",
                    help="override one metric's tolerance, e.g. gc_ns=30")
    ap.add_argument("--floor-ns", type=float, default=2_000_000.0, metavar="NS",
                    help="absolute noise floor: a time metric must also move "
                         "by more than NS to fail, and gc_bandwidth_mbps is "
                         "ungated when the baseline gc_ns window is below NS "
                         "(default: 2ms)")
    ap.add_argument("--inject-regression", type=float, default=None, metavar="PCT",
                    help="self-test: inflate candidate time metrics by PCT "
                         "before gating (the gate must then fail)")
    args = ap.parse_args()

    pairs = []
    for item in args.pairs:
        baseline, sep, candidate = item.partition("=")
        if not sep or not baseline or not candidate:
            sys.exit(f"bench_gate: bad --baseline value {item!r} "
                     "(expected BASELINE=CANDIDATE)")
        pairs.append((baseline, candidate))
    if args.baseline is not None:
        if args.candidate is None:
            sys.exit("bench_gate: positional BASELINE needs a CANDIDATE")
        pairs.append((args.baseline, args.candidate))
    if not pairs:
        sys.exit("bench_gate: nothing to gate: pass BASELINE CANDIDATE or "
                 "--baseline BASELINE=CANDIDATE")

    tolerances = parse_tolerances(args.tolerance)
    failed = 0
    for i, (baseline, candidate) in enumerate(pairs):
        if i:
            print()
        if not gate_pair(baseline, candidate, tolerances, args.floor_ns,
                         args.inject_regression):
            failed += 1
    if len(pairs) > 1:
        print(f"\nbench_gate: {len(pairs) - failed}/{len(pairs)} pair(s) passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
