#!/usr/bin/env python3
"""Validate the artifacts a bench writes with --json / --trace.

Checks that the result JSON follows schema nvmgc.bench.v1 (required keys,
well-formed runs, per-pause snapshots keyed by the stable dotted metric
names) and that the trace file is a loadable Chrome-trace JSON with nested
GC phase spans. Used by CI after the smoke bench; exits nonzero with a
message on the first violation.

Usage: check_bench_artifacts.py --json PATH [--trace PATH]
       [--require-pauses] [--require-trace-spans]
"""

import argparse
import json
import sys

SCHEMA = "nvmgc.bench.v1"
RESULT_KEYS = {"total_ns", "gc_ns", "app_ns", "gc_count", "bytes_allocated",
               "gc_bandwidth_mbps"}
RUN_KEYS = {"label", "workload", "config", "reps", "result", "metrics", "pauses"}
# Spans every traced GC cycle must produce (see src/obs/trace.h).
PHASE_SPANS = {"gc.pause", "gc.read_phase"}


def fail(msg):
    sys.exit(f"check_bench_artifacts: FAIL: {msg}")


def check_json(path, require_pauses):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot load: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in ("bench", "config", "runs"):
        if key not in doc:
            fail(f"{path}: missing top-level key {key!r}")
    for key in ("threads", "heap_mb", "collector", "repeat", "scale"):
        if key not in doc["config"]:
            fail(f"{path}: config missing key {key!r}")
    if not doc["runs"]:
        fail(f"{path}: runs[] is empty")
    total_pauses = 0
    for i, run in enumerate(doc["runs"]):
        missing = RUN_KEYS - run.keys()
        if missing:
            fail(f"{path}: runs[{i}] missing keys {sorted(missing)}")
        if RESULT_KEYS - run["result"].keys():
            fail(f"{path}: runs[{i}].result missing keys "
                 f"{sorted(RESULT_KEYS - run['result'].keys())}")
        for sub in ("counters", "gauges"):
            if sub not in run["metrics"]:
                fail(f"{path}: runs[{i}].metrics missing {sub!r}")
        for j, pause in enumerate(run["pauses"]):
            for key in ("id", "start_ns", "values"):
                if key not in pause:
                    fail(f"{path}: runs[{i}].pauses[{j}] missing {key!r}")
            if "gc.pause_ns" not in pause["values"]:
                fail(f"{path}: runs[{i}].pauses[{j}].values lacks gc.pause_ns")
            # Snapshot-vs-aggregate consistency: no pause value may exceed the
            # lifetime counter of the same name.
            for name, value in pause["values"].items():
                lifetime = run["metrics"]["counters"].get(name)
                if lifetime is not None and value > lifetime:
                    fail(f"{path}: runs[{i}].pauses[{j}] {name}={value} exceeds "
                         f"lifetime counter {lifetime}")
        total_pauses += len(run["pauses"])
    if require_pauses and total_pauses == 0:
        fail(f"{path}: no run recorded any GC pause "
             "(increase --scale or the workload volume)")
    print(f"check_bench_artifacts: {path}: OK "
          f"({len(doc['runs'])} runs, {total_pauses} pauses)")
    return doc


def check_trace(path, require_spans):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot load: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    for e in events:
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event missing {key!r}: {e}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: complete event missing dur: {e}")
        names.add(e["name"])
    if require_spans:
        missing = PHASE_SPANS - names
        if missing:
            fail(f"{path}: expected phase spans absent: {sorted(missing)}")
        # Worker spans must be distinct per logical GC thread.
        tids = {e["tid"] for e in events if e["name"] == "gc.read_phase"}
        if len(tids) < 1:
            fail(f"{path}: no gc.read_phase spans with worker tids")
    print(f"check_bench_artifacts: {path}: OK "
          f"({len(events)} events, {len(names)} span names)")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--json", required=True, help="bench --json output to validate")
    ap.add_argument("--trace", help="bench --trace output to validate")
    ap.add_argument("--require-pauses", action="store_true",
                    help="fail when no run recorded a GC pause")
    ap.add_argument("--require-trace-spans", action="store_true",
                    help="fail when the trace lacks gc.pause / gc.read_phase spans")
    args = ap.parse_args()
    check_json(args.json, args.require_pauses)
    if args.trace:
        check_trace(args.trace, args.require_trace_spans)
    return 0


if __name__ == "__main__":
    sys.exit(main())
