#!/usr/bin/env python3
"""Validate the artifacts a bench writes with --json / --trace.

Checks that the result JSON follows schema nvmgc.bench.v1 or v2 (required
keys, well-formed runs, per-pause snapshots keyed by the stable dotted metric
names; v2 adds histogram percentile digests, optional per-run bandwidth
timelines and extra scalars) and that the trace file is a loadable
Chrome-trace JSON with nested GC phase spans. Used by CI after the smoke
bench; exits nonzero with a message on the first violation.

Usage: check_bench_artifacts.py --json PATH [--trace PATH]
       [--require-pauses] [--require-trace-spans] [--require-counter-tracks]
       [--require-timeline] [--require-policy-tracks] [--require-persist-tracks]
       [--require-gen-tracks] [--require-tenant-tracks] [--require-incident DIR]
"""

import argparse
import json
import os
import sys

SCHEMAS = ("nvmgc.bench.v1", "nvmgc.bench.v2")
RESULT_KEYS = {"total_ns", "gc_ns", "app_ns", "gc_count", "bytes_allocated",
               "gc_bandwidth_mbps"}
RUN_KEYS = {"label", "workload", "config", "reps", "result", "metrics", "pauses"}
HISTOGRAM_KEYS = {"count", "p50", "p95", "p99", "max", "mean"}
TIMELINE_KEYS = {"pause", "phase", "time_ns", "read_mbps", "write_mbps",
                 "interleave", "model_mbps"}
TIMELINE_PHASES = {"read", "writeback"}
# Spans every traced GC cycle must produce (see src/obs/trace.h).
PHASE_SPANS = {"gc.pause", "gc.read_phase"}
# Counter tracks the DeviceTimeline emits (see src/obs/device_timeline.h).
COUNTER_TRACKS = {"nvm.read_mbps", "nvm.write_mbps", "nvm.interleave"}
# Counter tracks the adaptive policy engine emits once per pause
# (see src/policy/policy_engine.h).
POLICY_TRACKS = {"policy.active_threads", "policy.write_cache_mb",
                 "policy.header_map_entries", "policy.async_flush",
                 "policy.prefetch_window", "policy.decisions_total"}
# Counter tracks durability mode emits once per pause
# (see src/gc/copy_collector.cc PersistEpilogue + the pause tracer block).
PERSIST_TRACKS = {"persist.flush_lines", "persist.fences", "persist.phase_ns"}
# Counter tracks the generational heap emits once per pause
# (see the generational tracer block in src/gc/copy_collector.cc).
GEN_TRACKS = {"gen.young_used_bytes", "gen.tenured_bytes", "gen.tenure_threshold",
              "gen.survivor_overflow_bytes"}


def fail(msg):
    sys.exit(f"check_bench_artifacts: FAIL: {msg}")


def check_histograms(path, i, histograms):
    if not isinstance(histograms, dict):
        fail(f"{path}: runs[{i}].metrics.histograms is not an object")
    for name, h in histograms.items():
        missing = HISTOGRAM_KEYS - h.keys()
        if missing:
            fail(f"{path}: runs[{i}] histogram {name!r} missing keys {sorted(missing)}")
        if h["count"] > 0 and not h["p50"] <= h["p95"] <= h["p99"] <= h["max"]:
            fail(f"{path}: runs[{i}] histogram {name!r} percentiles not ordered: "
                 f"p50={h['p50']} p95={h['p95']} p99={h['p99']} max={h['max']}")


def check_timeline(path, i, timeline):
    if not isinstance(timeline, list):
        fail(f"{path}: runs[{i}].timeline is not a list")
    prev_time = 0
    for j, s in enumerate(timeline):
        missing = TIMELINE_KEYS - s.keys()
        if missing:
            fail(f"{path}: runs[{i}].timeline[{j}] missing keys {sorted(missing)}")
        if s["phase"] not in TIMELINE_PHASES:
            fail(f"{path}: runs[{i}].timeline[{j}] phase {s['phase']!r} "
                 f"not in {sorted(TIMELINE_PHASES)}")
        if s["read_mbps"] < 0 or s["write_mbps"] < 0 or s["model_mbps"] < 0:
            fail(f"{path}: runs[{i}].timeline[{j}] has a negative bandwidth")
        if not 0.0 <= s["interleave"] <= 1.0:
            fail(f"{path}: runs[{i}].timeline[{j}] interleave {s['interleave']} "
                 "outside [0, 1]")
        if s["time_ns"] < prev_time:
            fail(f"{path}: runs[{i}].timeline[{j}] time_ns {s['time_ns']} "
                 f"precedes previous sample {prev_time}")
        prev_time = s["time_ns"]
    return len(timeline)


def check_json(path, require_pauses, require_timeline):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot load: {e}")
    if doc.get("schema") not in SCHEMAS:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected one of {SCHEMAS}")
    v2 = doc["schema"] == "nvmgc.bench.v2"
    if require_timeline and not v2:
        fail(f"{path}: --require-timeline needs schema v2, got {doc['schema']!r}")
    for key in ("bench", "config", "runs"):
        if key not in doc:
            fail(f"{path}: missing top-level key {key!r}")
    for key in ("threads", "heap_mb", "collector", "repeat", "scale"):
        if key not in doc["config"]:
            fail(f"{path}: config missing key {key!r}")
    if not doc["runs"]:
        fail(f"{path}: runs[] is empty")
    total_pauses = 0
    total_samples = 0
    for i, run in enumerate(doc["runs"]):
        missing = RUN_KEYS - run.keys()
        if missing:
            fail(f"{path}: runs[{i}] missing keys {sorted(missing)}")
        if RESULT_KEYS - run["result"].keys():
            fail(f"{path}: runs[{i}].result missing keys "
                 f"{sorted(RESULT_KEYS - run['result'].keys())}")
        for sub in ("counters", "gauges"):
            if sub not in run["metrics"]:
                fail(f"{path}: runs[{i}].metrics missing {sub!r}")
        if v2:
            if "histograms" not in run["metrics"]:
                fail(f"{path}: runs[{i}].metrics missing 'histograms' (schema v2)")
            check_histograms(path, i, run["metrics"]["histograms"])
            if "extra" not in run:
                fail(f"{path}: runs[{i}] missing 'extra' (schema v2)")
            if not isinstance(run["extra"], dict):
                fail(f"{path}: runs[{i}].extra is not an object")
            if "timeline" in run:
                total_samples += check_timeline(path, i, run["timeline"])
        for j, pause in enumerate(run["pauses"]):
            for key in ("id", "start_ns", "values"):
                if key not in pause:
                    fail(f"{path}: runs[{i}].pauses[{j}] missing {key!r}")
            if "gc.pause_ns" not in pause["values"]:
                fail(f"{path}: runs[{i}].pauses[{j}].values lacks gc.pause_ns")
            # Snapshot-vs-aggregate consistency: no pause value may exceed the
            # lifetime counter of the same name.
            for name, value in pause["values"].items():
                lifetime = run["metrics"]["counters"].get(name)
                if lifetime is not None and value > lifetime:
                    fail(f"{path}: runs[{i}].pauses[{j}] {name}={value} exceeds "
                         f"lifetime counter {lifetime}")
        total_pauses += len(run["pauses"])
    if require_pauses and total_pauses == 0:
        fail(f"{path}: no run recorded any GC pause "
             "(increase --scale or the workload volume)")
    if require_timeline and total_samples == 0:
        fail(f"{path}: no run embedded timeline samples "
             "(was the bench invoked with --timeline?)")
    print(f"check_bench_artifacts: {path}: OK ({doc['schema']}, "
          f"{len(doc['runs'])} runs, {total_pauses} pauses, "
          f"{total_samples} timeline samples)")
    return doc


def check_trace(path, require_spans, require_counter_tracks, require_policy_tracks,
                require_persist_tracks, require_gen_tracks, require_tenant_tracks):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot load: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    counter_names = set()
    named_pids = {}          # pid -> process_name metadata value
    counters_by_pid = {}     # pid -> set of counter-track names
    for e in events:
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event missing {key!r}: {e}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: complete event missing dur: {e}")
        if e["ph"] == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"{path}: counter event lacks numeric args.value: {e}")
            counter_names.add(e["name"])
            counters_by_pid.setdefault(e["pid"], set()).add(e["name"])
        if e["ph"] == "M" and e["name"] == "process_name":
            pname = e.get("args", {}).get("name")
            if not isinstance(pname, str) or not pname:
                fail(f"{path}: process_name metadata lacks args.name: {e}")
            named_pids[e["pid"]] = pname
        names.add(e["name"])
    if require_spans:
        missing = PHASE_SPANS - names
        if missing:
            fail(f"{path}: expected phase spans absent: {sorted(missing)}")
        # Worker spans must be distinct per logical GC thread.
        tids = {e["tid"] for e in events if e["name"] == "gc.read_phase"}
        if len(tids) < 1:
            fail(f"{path}: no gc.read_phase spans with worker tids")
    if require_counter_tracks:
        missing = COUNTER_TRACKS - counter_names
        if missing:
            fail(f"{path}: expected counter tracks absent: {sorted(missing)}")
    if require_policy_tracks:
        missing = POLICY_TRACKS - counter_names
        if missing:
            fail(f"{path}: expected policy counter tracks absent: {sorted(missing)} "
                 "(was an adaptive configuration traced?)")
    if require_persist_tracks:
        missing = PERSIST_TRACKS - counter_names
        if missing:
            fail(f"{path}: expected persist counter tracks absent: {sorted(missing)} "
                 "(was a durable configuration traced?)")
    if require_gen_tracks:
        missing = GEN_TRACKS - counter_names
        if missing:
            fail(f"{path}: expected generational counter tracks absent: "
                 f"{sorted(missing)} (was a generational configuration traced?)")
    if require_tenant_tracks:
        # A fleet trace renders each tenant Vm as its own Chrome-trace
        # process: multiple named pids, and the nvm.* bandwidth tracks
        # repeated per tenant pid (a GC-less tenant may legitimately have no
        # counters, so only two pids need the full track set).
        if len(named_pids) < 2:
            fail(f"{path}: expected >= 2 process_name-tagged tenant pids, "
                 f"found {len(named_pids)}: {named_pids}")
        pids_with_tracks = [pid for pid, tracks in counters_by_pid.items()
                            if pid in named_pids and not COUNTER_TRACKS - tracks]
        if len(pids_with_tracks) < 2:
            fail(f"{path}: expected >= 2 tenant pids carrying the nvm.* "
                 f"counter tracks, found {len(pids_with_tracks)} "
                 f"(named pids: {sorted(named_pids)})")
    print(f"check_bench_artifacts: {path}: OK ({len(events)} events, "
          f"{len(names)} span names, {len(counter_names)} counter tracks, "
          f"{len(named_pids)} named pids)")


def check_incident_dir(dirpath):
    """At least one flight-recorder incident dump exists under dirpath.

    Deep validation (trigger semantics, site attribution, companion trace) is
    fr_analyze.py --validate's job; this check only gates that the bench's
    --flight-record plumbing produced schema-tagged incident files at all.
    """
    found = 0
    for root, _dirs, files in os.walk(dirpath):
        for name in sorted(files):
            if not (name.startswith("incident-") and name.endswith(".json")) \
               or name.endswith(".trace.json"):
                continue
            path = os.path.join(root, name)
            try:
                with open(path) as f:
                    doc = json.load(f)
            except (OSError, json.JSONDecodeError) as e:
                fail(f"{path}: unreadable or invalid incident JSON: {e}")
            if doc.get("schema") != "nvmgc.incident.v1":
                fail(f"{path}: schema is {doc.get('schema')!r}, "
                     "want 'nvmgc.incident.v1'")
            found += 1
    if found == 0:
        fail(f"{dirpath}: no incident-*.json flight-recorder dumps found")
    print(f"check_bench_artifacts: {found} incident dump(s) under {dirpath}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--json", required=True, help="bench --json output to validate")
    ap.add_argument("--trace", help="bench --trace output to validate")
    ap.add_argument("--require-pauses", action="store_true",
                    help="fail when no run recorded a GC pause")
    ap.add_argument("--require-trace-spans", action="store_true",
                    help="fail when the trace lacks gc.pause / gc.read_phase spans")
    ap.add_argument("--require-counter-tracks", action="store_true",
                    help="fail when the trace lacks nvm.* bandwidth counter tracks")
    ap.add_argument("--require-timeline", action="store_true",
                    help="fail when no run embedded bandwidth timeline samples")
    ap.add_argument("--require-policy-tracks", action="store_true",
                    help="fail when the trace lacks the policy.* counter tracks "
                         "of the adaptive engine")
    ap.add_argument("--require-persist-tracks", action="store_true",
                    help="fail when the trace lacks the persist.* counter tracks "
                         "of durability mode")
    ap.add_argument("--require-gen-tracks", action="store_true",
                    help="fail when the trace lacks the gen.* counter tracks of "
                         "the generational heap")
    ap.add_argument("--require-tenant-tracks", action="store_true",
                    help="fail unless the trace has >= 2 process_name-tagged "
                         "tenant pids and >= 2 of them carry the nvm.* tracks "
                         "(fleet benches)")
    ap.add_argument("--require-incident", metavar="DIR",
                    help="fail unless DIR (searched recursively) holds at least "
                         "one nvmgc.incident.v1 flight-recorder dump")
    args = ap.parse_args()
    check_json(args.json, args.require_pauses, args.require_timeline)
    if args.trace:
        check_trace(args.trace, args.require_trace_spans, args.require_counter_tracks,
                    args.require_policy_tracks, args.require_persist_tracks,
                    args.require_gen_tracks, args.require_tenant_tracks)
    if args.require_incident:
        check_incident_dir(args.require_incident)
    return 0


if __name__ == "__main__":
    sys.exit(main())
