#!/usr/bin/env bash
# Local CI: build and test both configurations.
#
#   default   RelWithDebInfo            -> build/
#   sanitize  Debug + ASan/UBSan        -> build-sanitize/
#
# Both run the full ctest suite, including the nvmgc_fault_stress entry
# (randomized seeded fault plans with heap verification after every GC cycle).

set -euo pipefail
cd "$(dirname "$0")/.."

for preset in default sanitize; do
  echo "=== [${preset}] configure ==="
  cmake --preset "${preset}"
  echo "=== [${preset}] build ==="
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "=== [${preset}] test ==="
  ctest --preset "${preset}" -j "$(nproc)"
done

echo "CI OK"
