#!/usr/bin/env bash
# Local CI: build and test both configurations.
#
#   default   RelWithDebInfo            -> build/
#   sanitize  Debug + ASan/UBSan        -> build-sanitize/
#
# Both run the full ctest suite, including:
#   - nvmgc_fault_stress: randomized seeded fault plans with heap verification
#     after every GC cycle;
#   - nvmgc_bench_smoke: a small bench_fig05_gc_time run writing --json/--trace
#     artifacts (with --timeline bandwidth samples) into <build>/artifacts/
#     (retained after the run);
#   - nvmgc_bench_artifacts_check: scripts/check_bench_artifacts.py validating
#     the smoke artifacts against the nvmgc.bench.v2 schema, including the
#     NVM bandwidth counter tracks in the trace;
#   - nvmgc_bench_gate (+ its WILL_FAIL selftest): scripts/bench_gate.py
#     comparing the smoke run against the checked-in BENCH_baseline.json;
#   - nvmgc_bench_adaptive_smoke / _artifacts_check / _gate: the adaptive
#     policy engine's phase-shifting bench (which enforces its own acceptance
#     criteria), its policy.* counter tracks, and its regression baseline
#     (BENCH_baseline_adaptive.json);
#   - nvmgc_crash_recovery: the durability acceptance sweep — 200 seeded
#     power-cut points over a multi-cycle durable run, each either recovering
#     a verified heap or classifying the torn state;
#   - nvmgc_bench_durability_smoke / _artifacts_check / _gate: durable vs
#     non-durable pause cost (the bench enforces zero persist work with
#     durability off), the persist.* counter tracks, and the durability
#     regression baseline (BENCH_baseline_durability.json);
#   - nvmgc_bench_generational_smoke / _artifacts_check / _gate: the DRAM
#     young generation vs the non-generational baseline (the bench enforces
#     >= 50% NVM write reduction on the alloc-heavy phase and major pause
#     cost per evacuated byte within 10%), the gen.* counter tracks, and the
#     generational regression baseline (BENCH_baseline_generational.json);
#   - nvmgc_bench_flightrec_smoke / _artifacts_check / _gate: the GC flight
#     recorder off vs on (the bench enforces the <= 3% simulated-time bound
#     itself), with a seeded pause-threshold anomaly dumping nvmgc.incident.v1
#     files into <build>/artifacts/fr/ (retained after the run), checked by
#     --require-incident and pinned by BENCH_baseline_flightrec.json;
#   - nvmgc_flight_record_check: scripts/fr_analyze.py --validate over every
#     incident dump — trigger semantics, retained pauses, per-allocation-site
#     attribution of the triggering pause, and the companion Perfetto trace;
#   - nvmgc_bench_fleet_smoke / _artifacts_check / _gate (+
#     nvmgc_fleet_flight_record_check): the multi-tenant fleet bench —
#     three QoS-tiered tenants on one shared device, uncoordinated vs
#     coordinated (the bench enforces the serving-p99 gain and batch
#     throughput-retention bars itself), with per-tenant Chrome-trace
#     processes (--require-tenant-tracks), tenant-tagged incident dumps in
#     <build>/artifacts/fr-fleet/, and BENCH_baseline_fleet.json.

set -euo pipefail
cd "$(dirname "$0")/.."

for preset in default sanitize; do
  echo "=== [${preset}] configure ==="
  cmake --preset "${preset}"
  echo "=== [${preset}] build ==="
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "=== [${preset}] test ==="
  ctest --preset "${preset}" -j "$(nproc)"
done

echo "=== bench regression gates (default build artifacts) ==="
python3 scripts/bench_gate.py \
  --baseline BENCH_baseline.json=build/artifacts/smoke.json \
  --baseline BENCH_baseline_adaptive.json=build/artifacts/adaptive.json \
  --baseline BENCH_baseline_durability.json=build/artifacts/durability.json \
  --baseline BENCH_baseline_generational.json=build/artifacts/generational.json \
  --baseline BENCH_baseline_flightrec.json=build/artifacts/flightrec.json \
  --baseline BENCH_baseline_fleet.json=build/artifacts/fleet.json

echo "=== flight-recorder incident validation ==="
python3 scripts/fr_analyze.py build/artifacts/fr --validate
python3 scripts/fr_analyze.py build/artifacts/fr-fleet --validate

echo "=== retained bench artifacts ==="
ls -l build*/artifacts/ 2>/dev/null || true

echo "CI OK"
