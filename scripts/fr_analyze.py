#!/usr/bin/env python3
"""Decode and validate GC flight-recorder incident dumps (nvmgc.incident.v1).

An incident file is written by the in-VM FlightRecorder (src/obs/
flight_recorder.h) when an anomaly trigger fires, on Vm::DumpFlightRecord(),
or on a simulated crash. It is self-contained: the trigger, the retained
pause-by-pause flight record (per-phase spans, counters, policy decisions,
bandwidth timeline, per-allocation-site deltas), cumulative allocation-site
demographics, and a companion Chrome-trace file for Perfetto.

Default mode prints a human-readable digest: the trigger banner, the retained
pause timeline, and the top allocation sites by NVM traffic. With --validate
it instead checks the incident (and its companion trace) against the schema
and exits nonzero on the first violation — CI runs this over the incidents a
deliberately-seeded anomaly run produced.

Usage: fr_analyze.py PATH [--validate] [--top N]
       PATH is one incident-*.json file or a directory searched recursively.
"""

import argparse
import json
import os
import signal
import sys

# Digest output is routinely piped into head/less; die quietly on SIGPIPE.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

TRIGGER_KINDS = {"pause_threshold", "p99_outlier", "degraded", "retreat",
                 "survivor_overflow", "explicit", "crash"}
TRIGGER_KEYS = {"kind", "pause_id", "observed_ns", "threshold_ns", "detail"}
PAUSE_KEYS = {"pause_id", "kind", "degraded", "retreat", "start_ns", "pause_ns",
              "read_phase_ns", "writeback_phase_ns", "counters", "decisions",
              "timeline", "sites"}
PAUSE_SITE_KEYS = {"site", "name", "survived_objects", "survived_bytes",
                   "promoted_objects", "promoted_bytes", "died_objects",
                   "died_bytes", "nvm_copy_bytes", "staged_bytes"}
CUMULATIVE_SITE_KEYS = {"site", "name", "allocated_objects", "allocated_bytes",
                        "survived_bytes", "promoted_bytes", "died_bytes",
                        "nvm_copy_bytes", "tenuring_rate",
                        "nvm_write_amplification", "lifetime"}
LIFETIME_KEYS = {"count", "p50", "p95", "p99", "max", "mean"}


def fail(msg):
    sys.exit(f"fr_analyze: FAIL: {msg}")


def find_incidents(path):
    if os.path.isfile(path):
        return [path]
    found = []
    for root, _dirs, files in os.walk(path):
        for name in sorted(files):
            if name.startswith("incident-") and name.endswith(".json") \
               and not name.endswith(".trace.json"):
                found.append(os.path.join(root, name))
    return sorted(found)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: unreadable or invalid JSON: {e}")


def validate_incident(path, doc):
    if doc.get("schema") != "nvmgc.incident.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'nvmgc.incident.v1'")
    # Optional fleet tag: multi-tenant Vms stamp their tenant label into the
    # dump (and the file name) so one shared incident directory stays
    # attributable per tenant.
    if "tenant" in doc:
        if not isinstance(doc["tenant"], str) or not doc["tenant"]:
            fail(f"{path}: tenant tag present but not a non-empty string: "
                 f"{doc['tenant']!r}")
        base = os.path.basename(path)
        if not base.startswith(f"incident-{doc['tenant']}-"):
            fail(f"{path}: file name does not carry the tenant tag "
                 f"{doc['tenant']!r} (want incident-{doc['tenant']}-<seq>.json)")
    trigger = doc.get("trigger")
    if not isinstance(trigger, dict):
        fail(f"{path}: missing trigger object")
    missing = TRIGGER_KEYS - trigger.keys()
    if missing:
        fail(f"{path}: trigger missing keys {sorted(missing)}")
    if trigger["kind"] not in TRIGGER_KINDS:
        fail(f"{path}: unknown trigger kind {trigger['kind']!r}")
    pauses = doc.get("pauses")
    if not isinstance(pauses, list) or not pauses:
        fail(f"{path}: pauses[] missing or empty")
    for i, p in enumerate(pauses):
        missing = PAUSE_KEYS - p.keys()
        if missing:
            fail(f"{path}: pauses[{i}] missing keys {sorted(missing)}")
        if not isinstance(p["counters"], dict) or not p["counters"]:
            fail(f"{path}: pauses[{i}].counters missing or empty")
        if "gc.pause_ns" not in p["counters"]:
            fail(f"{path}: pauses[{i}].counters lacks gc.pause_ns")
        for j, s in enumerate(p["sites"]):
            missing = PAUSE_SITE_KEYS - s.keys()
            if missing:
                fail(f"{path}: pauses[{i}].sites[{j}] missing keys {sorted(missing)}")
    # The triggering pause must be part of the retained record, carrying its
    # own per-allocation-site attribution.
    trig_pause = next((p for p in pauses
                       if p["pause_id"] == trigger["pause_id"]), None)
    if trig_pause is None:
        fail(f"{path}: triggering pause {trigger['pause_id']} not retained "
             f"(have {[p['pause_id'] for p in pauses]})")
    if not trig_pause["sites"]:
        fail(f"{path}: triggering pause {trigger['pause_id']} has no "
             "allocation-site attribution")
    sites = doc.get("sites")
    if not isinstance(sites, list) or not sites:
        fail(f"{path}: cumulative sites[] missing or empty")
    for i, s in enumerate(sites):
        missing = CUMULATIVE_SITE_KEYS - s.keys()
        if missing:
            fail(f"{path}: sites[{i}] missing keys {sorted(missing)}")
        missing = LIFETIME_KEYS - s["lifetime"].keys()
        if missing:
            fail(f"{path}: sites[{i}].lifetime missing keys {sorted(missing)}")
    # Companion Chrome trace: loadable, with at least one gc.pause span.
    trace_path = os.path.join(os.path.dirname(path), doc.get("trace_file", ""))
    trace = load(trace_path)
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{trace_path}: missing traceEvents[]")
    span_names = {e.get("name") for e in events if e.get("ph") == "X"}
    if "gc.pause" not in span_names:
        fail(f"{trace_path}: no gc.pause span (have {sorted(span_names)})")


def mb(nbytes):
    return nbytes / (1024.0 * 1024.0)


def print_incident(path, doc, top):
    trigger = doc["trigger"]
    print(f"=== {path}")
    if doc.get("tenant"):
        print(f"  tenant: {doc['tenant']}")
    print(f"  trigger: {trigger['kind']} at pause {trigger['pause_id']} "
          f"(observed {trigger['observed_ns'] / 1e6:.3f} ms, "
          f"threshold {trigger['threshold_ns'] / 1e6:.3f} ms)")
    if trigger.get("detail"):
        print(f"    {trigger['detail']}")
    print(f"  retained {doc['retained_pauses']} of {doc['pauses_recorded']} pauses, "
          f"trailing p99 {doc['trailing_p99_ns'] / 1e6:.3f} ms")
    print("  pauses:")
    for p in doc["pauses"]:
        marks = "".join(["*" if p["pause_id"] == trigger["pause_id"] else " ",
                         "D" if p["degraded"] else " ",
                         "R" if p["retreat"] else " "])
        copied = p["counters"].get("gc.bytes_copied", 0)
        decided = len(p["decisions"])
        print(f"   {marks} GC({p['pause_id']}) {p['kind']:5s} "
              f"{p['pause_ns'] / 1e6:8.3f} ms "
              f"(read {p['read_phase_ns'] / 1e6:.3f}, "
              f"wb {p['writeback_phase_ns'] / 1e6:.3f}) "
              f"copied {mb(copied):.2f} MiB, {decided} policy decisions, "
              f"{len(p['sites'])} sites")
    sites = sorted(doc["sites"], key=lambda s: -s["nvm_copy_bytes"])
    if sites:
        print(f"  top allocation sites (of {len(sites)}, by NVM copy traffic):")
        for s in sites[:top]:
            life = s["lifetime"]
            print(f"    {s['name']:32s} alloc {mb(s['allocated_bytes']):8.2f} MiB  "
                  f"died {mb(s['died_bytes']):8.2f} MiB  "
                  f"tenured {100.0 * s['tenuring_rate']:5.1f}%  "
                  f"nvm-amp {s['nvm_write_amplification']:.2f}  "
                  f"life p50/p99 {life['p50']}/{life['p99']}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("path", help="incident-*.json file, or a directory "
                    "searched recursively for incident files")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check every incident (and its companion "
                    "trace) instead of printing the digest")
    ap.add_argument("--top", type=int, default=8,
                    help="allocation sites to show per incident (default 8)")
    args = ap.parse_args()

    incidents = find_incidents(args.path)
    if not incidents:
        fail(f"{args.path}: no incident-*.json files found")
    for path in incidents:
        doc = load(path)
        if args.validate:
            validate_incident(path, doc)
        else:
            print_incident(path, doc, args.top)
    if args.validate:
        print(f"fr_analyze: OK: {len(incidents)} incident(s) valid "
              f"({args.path})")


if __name__ == "__main__":
    main()
