#include "src/core/header_map.h"

#include <algorithm>
#include <bit>

#include "src/nvm/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace nvmgc {

namespace {
// CPU cost of a hash + compare step, charged on top of the memory access.
constexpr uint64_t kProbeCpuNs = 2;
}  // namespace

HeaderMap::HeaderMap(size_t capacity_bytes, uint32_t search_bound, MemoryDevice* dram)
    : dram_(dram), search_bound_(search_bound) {
  NVMGC_CHECK(dram != nullptr && dram->kind() == DeviceKind::kDram);
  NVMGC_CHECK(search_bound >= 2);
  size_t entries = capacity_bytes / sizeof(Entry);
  NVMGC_CHECK(entries >= 16);
  entries = std::bit_floor(entries);
  mask_ = entries - 1;
  entries_ = std::make_unique<Entry[]>(entries);
}

void HeaderMap::ChargeProbe(SimClock* clock, PrefetchQueue* prefetch,
                            Address probe_addr) const {
  AccessDescriptor d = RandomRead(probe_addr, sizeof(Entry));
  if (prefetch != nullptr && prefetch->Consume(probe_addr)) {
    d.prefetched = true;
  }
  FaultInjector* injector = dram_->fault_injector();
  if (injector != nullptr && injector->AnyFaultActive(clock->now_ns())) {
    fault_probes_.fetch_add(1, std::memory_order_relaxed);
  }
  dram_->Access(clock, d);
  clock->Advance(kProbeCpuNs);
}

void HeaderMap::PrefetchProbe(Address old_addr, PrefetchQueue* prefetch) const {
  if (prefetch == nullptr) {
    return;
  }
  const size_t idx = (IndexFor(old_addr) + 1) & mask_;
  prefetch->Prefetch(reinterpret_cast<Address>(&entries_[idx]));
}

Address HeaderMap::Put(Address old_addr, Address new_addr, SimClock* clock,
                       PrefetchQueue* prefetch, std::vector<uint32_t>* journal) {
  NVMGC_DCHECK(old_addr != kNullAddress && new_addr != kNullAddress);
  size_t idx = IndexFor(old_addr);
  uint32_t cnt = 0;
  while (true) {
    ++cnt;
    if (cnt > search_bound_) {
      overflows_.fetch_add(1, std::memory_order_relaxed);
      return kNullAddress;  // Caller installs into the NVM header.
    }
    idx = (idx + 1) & mask_;
    Entry& entry = entries_[idx];
    ChargeProbe(clock, prefetch, reinterpret_cast<Address>(&entry));
    Address probed_key = entry.key.load(std::memory_order_acquire);
    if (probed_key != old_addr) {
      if (probed_key != kNullAddress) {
        continue;  // Occupied by another object; keep probing.
      }
      // Free slot: claim it. Never skip an empty slot without CASing — that is
      // what makes concurrent puts for the same key agree on one entry.
      Address expected = kNullAddress;
      if (entry.key.compare_exchange_strong(expected, old_addr, std::memory_order_acq_rel)) {
        // Won the slot: publish the value.
        entry.value.store(new_addr, std::memory_order_release);
        dram_->Access(clock, RandomWrite(reinterpret_cast<Address>(&entry), 16));
        installs_.fetch_add(1, std::memory_order_relaxed);
        if (journal != nullptr) {
          journal->push_back(static_cast<uint32_t>(idx));
        }
        return new_addr;
      }
      // CAS failed: `expected` now holds the occupant's key.
      if (expected == old_addr) {
        // Another thread is installing the same object; wait for its value.
        while (true) {
          const Address value = entry.value.load(std::memory_order_acquire);
          if (value != kNullAddress) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return value;
          }
        }
      }
      continue;  // Occupant is a different object; keep probing.
    }
    // Key already present: another thread is (or finished) installing it.
    while (true) {
      const Address value = entry.value.load(std::memory_order_acquire);
      if (value != kNullAddress) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return value;
      }
    }
  }
}

Address HeaderMap::Get(Address old_addr, SimClock* clock, PrefetchQueue* prefetch) const {
  size_t idx = IndexFor(old_addr);
  uint32_t cnt = 0;
  while (true) {
    ++cnt;
    if (cnt > search_bound_) {
      return kNullAddress;  // Definitively absent; caller checks the NVM header.
    }
    idx = (idx + 1) & mask_;
    const Entry& entry = entries_[idx];
    ChargeProbe(clock, prefetch, reinterpret_cast<Address>(&entry));
    const Address probed_key = entry.key.load(std::memory_order_acquire);
    if (probed_key == kNullAddress) {
      return kNullAddress;  // Probe chain ends at the first free slot.
    }
    if (probed_key == old_addr) {
      // Spin for the value if the installer has claimed but not published yet.
      while (true) {
        const Address value = entry.value.load(std::memory_order_acquire);
        if (value != kNullAddress) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return value;
        }
      }
    }
  }
}

void HeaderMap::ClearStripe(uint32_t worker, uint32_t total_workers, SimClock* clock) {
  const size_t entries = capacity();
  const size_t per = (entries + total_workers - 1) / total_workers;
  const size_t begin = std::min(entries, per * worker);
  const size_t end = std::min(entries, begin + per);
  for (size_t i = begin; i < end; ++i) {
    entries_[i].key.store(kNullAddress, std::memory_order_relaxed);
    entries_[i].value.store(kNullAddress, std::memory_order_relaxed);
  }
  if (end > begin) {
    dram_->Access(clock, SequentialWrite(reinterpret_cast<Address>(&entries_[begin]),
                                         static_cast<uint32_t>((end - begin) * sizeof(Entry))));
  }
}

void HeaderMap::ClearJournal(std::vector<uint32_t>* journal, SimClock* clock) {
  TraceSpan span(tracer_, clock, "hm.clear", "hm");
  for (const uint32_t idx : *journal) {
    Entry& entry = entries_[idx];
    entry.key.store(kNullAddress, std::memory_order_relaxed);
    entry.value.store(kNullAddress, std::memory_order_relaxed);
    dram_->Access(clock, RandomWrite(reinterpret_cast<Address>(&entry), sizeof(Entry)));
  }
  journal->clear();
}

void HeaderMap::ResizeEntries(size_t entries) {
  entries = std::bit_floor(std::max<size_t>(entries, 16));
  if (entries == capacity()) {
    return;
  }
  NVMGC_DCHECK(OccupiedEntries() == 0);  // Between pauses the map is empty.
  mask_ = entries - 1;
  entries_ = std::make_unique<Entry[]>(entries);
}

void HeaderMap::ExportMetrics(MetricsRegistry* metrics) const {
  metrics->SetGauge("hm.capacity_entries", capacity());
  metrics->SetGauge("hm.lifetime.installs", installs());
  metrics->SetGauge("hm.lifetime.overflows", overflows());
  metrics->SetGauge("hm.lifetime.hits", hits());
  metrics->SetGauge("hm.lifetime.fault_probes", fault_probes());
}

size_t HeaderMap::OccupiedEntries() const {
  size_t occupied = 0;
  for (size_t i = 0; i <= mask_; ++i) {
    if (entries_[i].key.load(std::memory_order_relaxed) != kNullAddress) {
      ++occupied;
    }
  }
  return occupied;
}

}  // namespace nvmgc
