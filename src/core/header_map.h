// Header map: a global lock-free closed-hashing table that keeps forwarding
// pointers in DRAM so object headers on NVM are never rewritten (Section 3.3
// and Algorithm 1 of the paper).
//
// Entries are (old address -> new address). A put claims the key slot with a
// CAS within a bounded probe window; losers either wait for the winner's value
// (same key) or keep probing (different key). When the window is exhausted the
// caller falls back to installing the forwarding pointer in the object's NVM
// header. Contents are only meaningful during a pause and are cleared in
// parallel at GC end.

#ifndef NVMGC_SRC_CORE_HEADER_MAP_H_
#define NVMGC_SRC_CORE_HEADER_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/heap/object.h"
#include "src/nvm/memory_device.h"
#include "src/nvm/prefetch_queue.h"
#include "src/nvm/sim_clock.h"

namespace nvmgc {

class GcTracer;
class MetricsRegistry;

class HeaderMap {
 public:
  // `capacity_bytes` is rounded down to a power-of-two entry count (16 B per
  // entry). `dram` is the device charged for probe traffic.
  HeaderMap(size_t capacity_bytes, uint32_t search_bound, MemoryDevice* dram);

  // Algorithm 1 PUT. Returns:
  //   * new_addr            — this thread won the installation;
  //   * another address     — another thread already forwarded the object;
  //   * kNullAddress        — probe window exhausted (caller must fall back to
  //                           the NVM header).
  // When `journal` is non-null, the index of a won entry is recorded so the
  // end-of-pause clear touches only occupied entries (see ClearJournal).
  Address Put(Address old_addr, Address new_addr, SimClock* clock, PrefetchQueue* prefetch,
              std::vector<uint32_t>* journal = nullptr);

  // Algorithm 1 GET. Returns the forwarding pointer or kNullAddress if absent
  // from the map (caller must then consult the NVM header).
  Address Get(Address old_addr, SimClock* clock, PrefetchQueue* prefetch) const;

  // Issues a software prefetch for the probe line of `old_addr` (used when a
  // reference is pushed, Section 4.3 "extend the original prefetching
  // instructions to consider the random read operations on the header map").
  void PrefetchProbe(Address old_addr, PrefetchQueue* prefetch) const;

  // Clears the stripe belonging to `worker` of `total_workers`, charging
  // sequential DRAM writes. All GC threads empty the map simultaneously.
  // (Simple but touches the whole capacity; the collector uses ClearJournal.)
  void ClearStripe(uint32_t worker, uint32_t total_workers, SimClock* clock);

  // Clears exactly the entries this worker installed during the pause (its
  // journal from Put) and empties the journal. Equivalent to the paper's
  // all-threads parallel clean-up, but the cost scales with occupancy instead
  // of capacity — which is what makes the clean-up "trivial compared with the
  // GC pauses" at any map size.
  void ClearJournal(std::vector<uint32_t>* journal, SimClock* clock);

  size_t capacity() const { return mask_ + 1; }
  size_t OccupiedEntries() const;

  // Replaces the table with one of `entries` slots (rounded down to a power of
  // two, floor 16). Only legal between pauses: the map is empty then — every
  // install is journaled and cleared at pause end — so no live forwarding
  // pointer can be dropped. Used by the adaptive policy engine.
  void ResizeEntries(size_t entries);

  // Stats (monotonic across a run; the collector snapshots deltas).
  uint64_t installs() const { return installs_.load(std::memory_order_relaxed); }
  uint64_t overflows() const { return overflows_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  // Probes charged while the DRAM device had an active fault window; under
  // fault-lengthened probing these are the puts/gets whose contention drives
  // the bounded window into the NVM-header fallback (overflows above).
  uint64_t fault_probes() const { return fault_probes_.load(std::memory_order_relaxed); }

  // Observability: when a tracer is attached, each worker's end-of-pause
  // journal clear emits an "hm.clear" span. The tracer must outlive the map.
  void set_tracer(GcTracer* tracer) { tracer_ = tracer; }
  // Publishes lifetime gauges ("hm.capacity_entries", "hm.lifetime.installs",
  // "hm.lifetime.overflows", "hm.lifetime.hits", "hm.lifetime.fault_probes").
  void ExportMetrics(MetricsRegistry* metrics) const;

 private:
  struct Entry {
    std::atomic<Address> key{kNullAddress};
    std::atomic<Address> value{kNullAddress};
  };

  size_t IndexFor(Address old_addr) const {
    // Fibonacci hashing over the 8-byte-aligned address.
    return static_cast<size_t>((old_addr >> 3) * 0x9e3779b97f4a7c15ULL >> 32) & mask_;
  }

  void ChargeProbe(SimClock* clock, PrefetchQueue* prefetch, Address probe_addr) const;

  MemoryDevice* dram_;
  GcTracer* tracer_ = nullptr;
  uint32_t search_bound_;
  size_t mask_;
  std::unique_ptr<Entry[]> entries_;

  mutable std::atomic<uint64_t> installs_{0};
  mutable std::atomic<uint64_t> overflows_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> fault_probes_{0};
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_CORE_HEADER_MAP_H_
