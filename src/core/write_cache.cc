#include "src/core/write_cache.h"

#include <cstring>

#include "src/nvm/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace nvmgc {

namespace {
// CPU cost of taking a fresh cache/twin region pair.
constexpr uint64_t kPairAllocNs = 250;
}  // namespace

WriteCache::WriteCache(Heap* heap, const GcOptions& options)
    : heap_(heap),
      // Non-generational: the cache stages survivors, so twins are NVM
      // survivor regions. Generational: only tenured copies go through the
      // cache (survivors stay in DRAM), so twins are NVM old regions.
      twin_type_(options.generational.enabled ? RegionType::kOld : RegionType::kSurvivor),
      non_temporal_(options.use_non_temporal),
      unlimited_(options.unlimited_write_cache),
      async_(options.async_flush) {
  NVMGC_CHECK(heap != nullptr);
  capacity_bytes_.store(options.write_cache_bytes != 0
                            ? options.write_cache_bytes
                            : heap->heap_arena_bytes() / 32,  // Paper default: heap/32.
                        std::memory_order_relaxed);
}

void WriteCache::EnterDirectFallback(WriteCacheWorkerState* state, GcCycleStats* stats) {
  state->direct_fallback = true;
  stats->cache_fallback_workers += 1;
}

bool WriteCache::Allocate(WriteCacheWorkerState* state, size_t bytes, Allocation* out,
                          uint64_t gc_epoch, SimClock* clock, GcCycleStats* stats) {
  NVMGC_DCHECK(bytes <= heap_->region_bytes());
  if (state->direct_fallback) {
    return false;  // Worker already degraded to direct-to-NVM for this pause.
  }
  while (true) {
    if (state->cache_region == nullptr) {
      if (!unlimited_ && staged_bytes_.load(std::memory_order_relaxed) >= capacity_bytes()) {
        return false;  // Cap reached: caller copies directly into NVM.
      }
      FaultInjector* injector = heap_->dram_device()->fault_injector();
      if (injector != nullptr && !injector->AllowRegionPairAllocation(clock->now_ns())) {
        // DRAM-pressure fault: staging memory is gone for now. Unlike the
        // capacity cap (re-checked per object), this degrades the worker for
        // the rest of the pause.
        stats->cache_fault_denials += 1;
        EnterDirectFallback(state, stats);
        return false;
      }
      Region* cache = heap_->AllocateCacheRegion();
      if (cache == nullptr) {
        EnterDirectFallback(state, stats);
        return false;  // DRAM arena exhausted.
      }
      Region* twin = heap_->AllocateRegion(twin_type_);
      if (twin == nullptr) {
        heap_->FreeCacheRegion(cache);
        EnterDirectFallback(state, stats);
        return false;
      }
      twin->set_gc_epoch(gc_epoch);
      twin->set_cache_twin(cache);
      cache->set_cache_twin(twin);
      {
        std::lock_guard<std::mutex> lock(mu_);
        pause_twins_.push_back(twin);
      }
      clock->Advance(kPairAllocNs);
      state->cache_region = cache;
      state->twin_region = twin;
    }
    const Address physical = state->cache_region->Allocate(bytes);
    if (physical != kNullAddress) {
      staged_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      out->physical = physical;
      out->final = state->twin_region->bottom() + (physical - state->cache_region->bottom());
      out->cache_region = state->cache_region;
      out->twin_region = state->twin_region;
      return true;
    }
    ClosePair(state, clock, stats);
  }
}

void WriteCache::Retract(const Allocation& allocation, size_t bytes) {
  // Only valid immediately after Allocate on the same worker (bump rollback).
  NVMGC_DCHECK(allocation.cache_region->top() == allocation.physical + bytes);
  allocation.cache_region->set_top(allocation.physical);
  staged_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

Address WriteCache::Physical(Heap* heap, Address final_address) {
  Region* region = heap->RegionFor(final_address);
  if (region == nullptr) {
    return final_address;
  }
  Region* cache = region->cache_twin();
  if (cache == nullptr) {
    return final_address;  // Not staged (direct copy, or already flushed).
  }
  return cache->bottom() + (final_address - region->bottom());
}

void WriteCache::ClosePair(WriteCacheWorkerState* state, SimClock* clock, GcCycleStats* stats) {
  Region* cache = state->cache_region;
  Region* twin = state->twin_region;
  state->cache_region = nullptr;
  state->twin_region = nullptr;
  if (cache == nullptr) {
    return;
  }
  cache->set_closed(true);
  if (async_enabled()) {
    MaybeAsyncFlush(twin, clock, stats);
  }
}

void WriteCache::MaybeAsyncFlush(Region* twin, SimClock* clock, GcCycleStats* stats) {
  if (!async_enabled() || twin == nullptr) {
    return;
  }
  Region* cache = twin->cache_twin();
  if (cache == nullptr || !cache->closed() || cache->pending_slots() != 0) {
    return;
  }
  if (cache->steal_tainted()) {
    return;  // LIFO tracking broken by work stealing: leave for the sync flush.
  }
  if (cache->ClaimFlush()) {
    FlushPair(twin, clock, stats, /*async=*/true);
  }
}

void WriteCache::FlushRemaining(uint32_t worker, uint32_t total_workers, SimClock* clock,
                                GcCycleStats* stats, PersistBatch* batch) {
  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    count = pause_twins_.size();
  }
  for (size_t idx = worker; idx < count; idx += total_workers) {
    Region* twin = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      twin = pause_twins_[idx];
    }
    Region* cache = twin->cache_twin();
    if (cache == nullptr) {
      continue;  // Already flushed asynchronously.
    }
    if (cache->steal_tainted()) {
      stats->regions_steal_tainted += 1;
    }
    if (cache->ClaimFlush()) {
      FlushPair(twin, clock, stats, /*async=*/false, batch);
    }
  }
}

void WriteCache::FlushPair(Region* twin, SimClock* clock, GcCycleStats* stats, bool async,
                           PersistBatch* batch) {
  // Emitted on the flushing worker's timeline: async flushes appear inside
  // the read phase, sync flushes inside the write-back phase.
  TraceSpan span(tracer_, clock, async ? "cache.flush.async" : "cache.flush.sync", "cache");
  Region* cache = twin->cache_twin();
  NVMGC_CHECK(cache != nullptr);
  const size_t used = cache->used();
  if (used > 0) {
    heap_->dram_device()->Access(clock,
                                 SequentialRead(cache->bottom(), static_cast<uint32_t>(used)));
    AccessDescriptor write = non_temporal_enabled()
                                 ? NonTemporalWrite(twin->bottom(), static_cast<uint32_t>(used))
                                 : SequentialWrite(twin->bottom(), static_cast<uint32_t>(used));
    heap_->heap_device()->Access(clock, write);
    std::memcpy(reinterpret_cast<void*>(twin->bottom()),
                reinterpret_cast<const void*>(cache->bottom()), used);
  }
  PersistOrderingLedger* ledger = &heap_->heap_device()->persist();
  if (ledger->enabled() && used > 0) {
    if (batch != nullptr) {
      // Sync write-back: each drained run is flushed into the worker's batch;
      // the collector fences once at the batch boundary.
      batch->FlushRange(twin->bottom(), used, clock);
    } else {
      // Async flush: fence immediately so the region is durable the moment it
      // lands (the flushing worker issues its own SFENCE).
      PersistBatch local(ledger);
      local.FlushRange(twin->bottom(), used, clock);
      local.Fence(clock);
      stats->persist_flush_lines += local.flush_lines();
      stats->persist_fences += local.fences();
      stats->persist_ns += local.persist_ns();
    }
  }
  twin->set_top(twin->bottom() + used);
  twin->set_flushed(true);
  twin->set_cache_twin(nullptr);
  heap_->FreeCacheRegion(cache);
  if (async) {
    stats->regions_flushed_async += 1;
  } else {
    stats->regions_flushed_sync += 1;
  }
}

void WriteCache::ExportMetrics(MetricsRegistry* metrics) const {
  metrics->SetGauge("cache.capacity_bytes", unlimited_ ? 0 : capacity_bytes());
  metrics->SetGauge("cache.staged_bytes_now", staged_bytes());
  metrics->SetGauge("cache.unlimited", unlimited_ ? 1 : 0);
}

std::vector<Region*> WriteCache::TakePauseTwins() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Region*> out;
  out.swap(pause_twins_);
  staged_bytes_.store(0, std::memory_order_relaxed);
  return out;
}

}  // namespace nvmgc
