// Write cache: DRAM staging of survivor regions (Section 3.2 of the paper).
//
// During the copy-and-traverse phase live objects are copied into DRAM cache
// regions instead of NVM survivor regions. Each cache region is paired with an
// NVM "twin" at pair-allocation time; an object staged at cache offset k has
// the final address twin.bottom + k, and references are fixed up with that
// final NVM address immediately (the paper's region mapping). Cache regions
// are written back to NVM sequentially — with non-temporal stores when enabled
// — either all at once in the write-only sub-phase (synchronous mode) or as
// soon as each region becomes ready (asynchronous flushing, Section 4.2).
//
// Readiness for asynchronous flushing generalizes the paper's Figure 4 LIFO
// trick: a region is ready once it is closed to new objects and its count of
// outstanding (pushed but unprocessed) reference slots reaches zero — under
// depth-first processing this is exactly the moment Figure 4's memorized
// "last" reference is popped. Regions whose references were stolen are
// steal-tainted and fall back to the synchronous flush, as in the paper.

#ifndef NVMGC_SRC_CORE_WRITE_CACHE_H_
#define NVMGC_SRC_CORE_WRITE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/gc/gc_options.h"
#include "src/gc/gc_stats.h"
#include "src/heap/heap.h"
#include "src/nvm/persist_ledger.h"
#include "src/nvm/sim_clock.h"

namespace nvmgc {

class GcTracer;
class MetricsRegistry;

// Per-GC-worker staging state: the worker's current cache/twin pair.
struct WriteCacheWorkerState {
  Region* cache_region = nullptr;
  Region* twin_region = nullptr;  // NVM survivor twin providing final addresses.
  // Sticky for the rest of the pause once a cache/twin pair could not be
  // allocated (DRAM arena exhausted, or denied by a fault-injected pressure
  // window): the worker copies survivors directly to NVM instead of aborting.
  bool direct_fallback = false;
};

class WriteCache {
 public:
  struct Allocation {
    Address physical = kNullAddress;  // DRAM staging location (copy target).
    Address final = kNullAddress;     // Final NVM address (what references get).
    Region* cache_region = nullptr;
    Region* twin_region = nullptr;
  };

  WriteCache(Heap* heap, const GcOptions& options);

  // Attempts to stage `bytes` for `state`'s worker. Returns false when the
  // cache cannot supply space (capacity cap reached or DRAM arena exhausted);
  // the caller then copies directly to NVM, exactly as the paper's bounded
  // write cache does. A pair-allocation failure (arena exhausted or denied by
  // the DRAM device's fault injector) flips `state` into the sticky
  // direct-to-NVM fallback for the remainder of the pause, recorded in
  // `stats`.
  bool Allocate(WriteCacheWorkerState* state, size_t bytes, Allocation* out,
                uint64_t gc_epoch, SimClock* clock, GcCycleStats* stats);

  // Undoes the most recent allocation (the CAS to claim the object was lost).
  void Retract(const Allocation& allocation, size_t bytes);

  // Translates a final NVM address to the physical location holding the bytes
  // right now (DRAM while staged, the NVM address once flushed/direct).
  static Address Physical(Heap* heap, Address final_address);

  // Asynchronous flush attempt: flushes `twin`'s pair if it is closed, has no
  // outstanding slots, and was not steal-tainted. Safe to call from any
  // worker; at most one caller wins the flush.
  void MaybeAsyncFlush(Region* twin, SimClock* clock, GcCycleStats* stats);

  // Synchronous write-back of every still-unflushed pair; workers call this
  // concurrently and split the list by striding (worker, total_workers), so
  // the per-worker simulated cost is host-scheduling independent. In
  // durability mode the caller passes its per-worker PersistBatch: each
  // drained run is flushed into the batch and the caller fences once at the
  // batch boundary (one SFENCE per worker per write-back phase).
  void FlushRemaining(uint32_t worker, uint32_t total_workers, SimClock* clock,
                      GcCycleStats* stats, PersistBatch* batch = nullptr);

  // End-of-pause bookkeeping; returns twins created this pause (survivors).
  std::vector<Region*> TakePauseTwins();

  size_t staged_bytes() const { return staged_bytes_.load(std::memory_order_relaxed); }
  size_t capacity_bytes() const { return capacity_bytes_.load(std::memory_order_relaxed); }
  bool unlimited() const { return unlimited_; }

  // Between-pause retuning hooks for the adaptive policy engine. Both are
  // plain publications: workers re-read the values on their next allocation /
  // pair close, so calling these mid-pause would be safe but is only done by
  // CopyCollector::ApplyTuning between pauses.
  void SetCapacityBytes(size_t bytes) {
    capacity_bytes_.store(bytes, std::memory_order_relaxed);
  }
  void SetAsync(bool async) { async_.store(async, std::memory_order_relaxed); }

  // Observability: when a tracer is attached, every region flush emits a
  // "cache.flush.sync" / "cache.flush.async" span on the flushing worker's
  // timeline. The tracer must outlive the cache.
  void set_tracer(GcTracer* tracer) { tracer_ = tracer; }
  // Publishes configuration/occupancy gauges ("cache.capacity_bytes",
  // "cache.staged_bytes_now", "cache.unlimited").
  void ExportMetrics(MetricsRegistry* metrics) const;

  // Degraded mode (set per pause by the collector under sustained device
  // throttling): asynchronous flushing and non-temporal stores are disabled so
  // the write-back is a plain synchronous stream of cache-line stores.
  void SetDegraded(bool degraded) { degraded_.store(degraded, std::memory_order_relaxed); }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  bool async_enabled() const {
    return async_.load(std::memory_order_relaxed) && !degraded();
  }
  bool non_temporal_enabled() const { return non_temporal_ && !degraded(); }

 private:
  // Flips the worker into the sticky direct-to-NVM fallback.
  static void EnterDirectFallback(WriteCacheWorkerState* state, GcCycleStats* stats);
  // Closes the worker's current pair (region full) and, in async mode,
  // attempts to flush it.
  void ClosePair(WriteCacheWorkerState* state, SimClock* clock, GcCycleStats* stats);

  // Performs the actual write-back of one pair. Caller must have won the
  // flush claim. `batch` collects the persist flushes in durability mode
  // (sync path); async flushes fence their own batch immediately so the
  // region is durable as soon as it lands.
  void FlushPair(Region* twin, SimClock* clock, GcCycleStats* stats, bool async,
                 PersistBatch* batch = nullptr);

  Heap* heap_;
  GcTracer* tracer_ = nullptr;
  const RegionType twin_type_;  // kSurvivor, or kOld in generational mode.
  const bool non_temporal_;
  const bool unlimited_;
  std::atomic<bool> async_;
  std::atomic<size_t> capacity_bytes_;

  std::atomic<bool> degraded_{false};
  std::atomic<size_t> staged_bytes_{0};

  std::mutex mu_;
  std::vector<Region*> pause_twins_;  // Twins created during this pause.
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_CORE_WRITE_CACHE_H_
