#include "src/fleet/bandwidth_arbiter.h"

#include <algorithm>

#include "src/util/check.h"

namespace nvmgc {

namespace {
// MB/s over a window of ns: bytes = mbps * 1e6 B/s * (window_ns / 1e9 s)
//                                 = mbps * window_ns / 1000.
uint64_t MbpsToBytes(double mbps, uint64_t window_ns) {
  if (mbps <= 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(mbps * static_cast<double>(window_ns) / 1000.0);
}
}  // namespace

uint32_t BandwidthArbiter::AddTenant(QosTier tier, double budget_mbps) {
  Tenant t;
  t.tier = tier;
  t.budget_mbps = budget_mbps;
  tenants_.push_back(t);
  return static_cast<uint32_t>(tenants_.size() - 1);
}

uint64_t BandwidthArbiter::BudgetBytesPerWindow(uint32_t tenant) const {
  return MbpsToBytes(tenants_[tenant].budget_mbps, options_.window_ns);
}

std::vector<uint64_t> BandwidthArbiter::EndWindow(const std::vector<uint64_t>& bytes) {
  NVMGC_CHECK(bytes.size() == tenants_.size());
  ++windows_closed_;

  uint64_t fleet_bytes = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    fleet_bytes += bytes[i];
    tenants_[i].stats.total_bytes += bytes[i];
  }

  const uint64_t capacity_bytes = MbpsToBytes(options_.device_capacity_mbps, options_.window_ns);
  const bool contended =
      capacity_bytes == 0 ||
      static_cast<double>(fleet_bytes) >
          options_.contention_fraction * static_cast<double>(capacity_bytes);

  std::vector<uint64_t> stalls(tenants_.size(), 0);
  if (!contended) {
    return stalls;
  }

  for (size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    if (t.budget_mbps <= 0.0 || t.tier == QosTier::kServing) {
      continue;
    }
    const double budget_bytes = static_cast<double>(BudgetBytesPerWindow(static_cast<uint32_t>(i)));
    const double over = static_cast<double>(bytes[i]) - options_.grace * budget_bytes;
    if (over <= 0.0) {
      continue;
    }
    bool higher_tier_active = false;
    for (size_t j = 0; j < tenants_.size(); ++j) {
      if (j != i && tenants_[j].tier < t.tier && bytes[j] > 0) {
        higher_tier_active = true;
        break;
      }
    }
    if (!higher_tier_active) {
      continue;
    }
    // Pay back the overshoot at the budget rate: over bytes at budget_mbps
    // take over * 1000 / mbps ns to move legitimately.
    double stall_ns = over * 1000.0 / t.budget_mbps;
    if (t.tier == QosTier::kBackground) {
      stall_ns *= options_.background_penalty;
    }
    stall_ns = std::min(stall_ns,
                        options_.max_stall_windows * static_cast<double>(options_.window_ns));
    stalls[i] = static_cast<uint64_t>(stall_ns + 0.5);
    ++t.stats.windows_throttled;
    t.stats.total_stall_ns += stalls[i];
  }
  return stalls;
}

}  // namespace nvmgc
