// Per-tenant bandwidth budget enforcement for one shared NVM device.
//
// The arbiter closes fixed accounting windows of simulated time. For each
// window it receives the bytes every tenant moved on the device and returns a
// per-tenant stall: simulated ns the tenant must idle before issuing more
// traffic (the FleetManager applies the stall by advancing the tenant's
// application clock). The policy, in priority order:
//
//   * A tenant with no budget (budget_mbps <= 0) is never throttled.
//   * Serving-tier tenants are never throttled: their budget is an
//     entitlement the lower tiers are throttled *toward*, not a cap.
//   * Nothing is throttled while the device is uncontended (fleet bytes in
//     the window below contention_fraction of what the device could move):
//     idle bandwidth is free, the arbiter is work-conserving.
//   * Otherwise a batch/background tenant that moved more than
//     grace x budget pays back the overshoot at its budget rate:
//     stall = over_bytes / budget_rate, doubled for background
//     (background_penalty) — and only when some strictly higher-priority
//     tenant actually competed in the window (nonzero bytes), because
//     throttling with no higher-priority demand would just idle the device.
//
// Pure simulated-time bookkeeping: no Vm or device dependencies, fully
// deterministic, unit-testable in isolation.

#ifndef NVMGC_SRC_FLEET_BANDWIDTH_ARBITER_H_
#define NVMGC_SRC_FLEET_BANDWIDTH_ARBITER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/fleet/qos.h"

namespace nvmgc {

struct ArbiterOptions {
  // Accounting window width in simulated ns.
  uint64_t window_ns = 1'000'000;
  // Over-budget tolerance before a throttle: 1.10 = 10% slack, so tenants
  // riding exactly at budget are not flapped by bucket-boundary noise.
  double grace = 1.10;
  // The device total the contention test compares against. <= 0 (the
  // default) means "always contended" — budgets are strict contracts. Set it
  // (e.g. to an achievable device bandwidth) to make the arbiter
  // work-conserving: under-capacity windows are never throttled.
  double device_capacity_mbps = 0.0;
  // A window counts as contended when fleet bytes exceed this fraction of
  // device capacity x window.
  double contention_fraction = 0.5;
  // Background overshoot is paid back at this multiple of the base stall.
  double background_penalty = 2.0;
  // Stall ceiling, in windows, so a pathological burst cannot freeze a
  // tenant for the rest of the run.
  double max_stall_windows = 8.0;
};

struct ArbiterTenantStats {
  uint64_t windows_throttled = 0;
  uint64_t total_stall_ns = 0;
  uint64_t total_bytes = 0;
};

class BandwidthArbiter {
 public:
  explicit BandwidthArbiter(const ArbiterOptions& options) : options_(options) {}

  // Registers a tenant; ids are assigned densely in call order and must match
  // the indices of the byte vectors handed to EndWindow.
  uint32_t AddTenant(QosTier tier, double budget_mbps);

  // Closes one accounting window; bytes[i] is tenant i's device traffic
  // during it. Returns the per-tenant stall in simulated ns.
  std::vector<uint64_t> EndWindow(const std::vector<uint64_t>& bytes);

  size_t tenant_count() const { return tenants_.size(); }
  uint64_t windows_closed() const { return windows_closed_; }
  const ArbiterTenantStats& stats(uint32_t tenant) const { return tenants_[tenant].stats; }
  QosTier tier(uint32_t tenant) const { return tenants_[tenant].tier; }
  double budget_mbps(uint32_t tenant) const { return tenants_[tenant].budget_mbps; }
  const ArbiterOptions& options() const { return options_; }

  // Budget converted to bytes per window (what EndWindow compares against).
  uint64_t BudgetBytesPerWindow(uint32_t tenant) const;

 private:
  struct Tenant {
    QosTier tier = QosTier::kBatch;
    double budget_mbps = 0.0;
    ArbiterTenantStats stats;
  };

  ArbiterOptions options_;
  std::vector<Tenant> tenants_;
  uint64_t windows_closed_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_FLEET_BANDWIDTH_ARBITER_H_
