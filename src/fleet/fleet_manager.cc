#include "src/fleet/fleet_manager.h"

#include <algorithm>
#include <fstream>

#include "src/util/check.h"

namespace nvmgc {

FleetOptions::FleetOptions() : device(MakeOptaneProfile()) {}

FleetManager::FleetManager(const FleetOptions& options)
    : options_(options),
      device_(std::make_unique<MemoryDevice>(options.device)),
      arbiter_(options.arbiter),
      pause_scheduler_(options.pause_scheduler) {}

FleetManager::~FleetManager() {
  // Tenant Vms hold raw pointers to this manager (GcCoordinator) and to the
  // shared device; detach before members destruct under them.
  for (Tenant& t : tenants_) {
    if (t.vm != nullptr) {
      t.vm->set_gc_coordinator(nullptr);
    }
  }
  tenants_.clear();
}

uint32_t FleetManager::AddTenant(const FleetTenantSpec& spec) {
  NVMGC_CHECK_MSG(!ran_, "AddTenant after Run: build the whole fleet first");
  NVMGC_CHECK_MSG(tenants_.size() < MemoryDevice::kMaxTenants,
                  "fleet exceeds MemoryDevice::kMaxTenants");
  const uint32_t id = static_cast<uint32_t>(tenants_.size());
  VmOptions vm_options = spec.vm;
  vm_options.shared_heap_device = device_.get();
  vm_options.tenant_id = id;
  vm_options.tenant_label = spec.name;
  NVMGC_CHECK_MSG(vm_options.heap.heap_device == device_->kind(),
                  "tenant heap device kind does not match the fleet device");

  Tenant tenant;
  tenant.name = spec.name;
  tenant.tier = spec.tier;
  tenant.vm = std::make_unique<Vm>(vm_options);
  if (options_.pause_coordination) {
    tenant.vm->set_gc_coordinator(this);
  }
  tenants_.push_back(std::move(tenant));
  const uint32_t arbiter_id = arbiter_.AddTenant(spec.tier, spec.bandwidth_budget_mbps);
  NVMGC_CHECK(arbiter_id == id);
  return id;
}

void FleetManager::SetDriver(uint32_t tenant, std::unique_ptr<TenantDriver> driver) {
  tenants_[tenant].driver = std::move(driver);
}

void FleetManager::Run(uint64_t deadline_ns) {
  NVMGC_CHECK_MSG(!tenants_.empty(), "Run on an empty fleet");
  for (const Tenant& t : tenants_) {
    NVMGC_CHECK_MSG(t.driver != nullptr, "tenant without a driver: call SetDriver first");
  }
  ran_ = true;
  for (;;) {
    // Cooperative scheduling: advance the most-lagging unfinished tenant so
    // all tenant clocks move forward together and their traffic shares
    // ledger epochs.
    int pick = -1;
    uint64_t min_ns = UINT64_MAX;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i].driver->Done()) {
        continue;
      }
      const uint64_t now = tenants_[i].vm->now_ns();
      if (now < min_ns) {
        min_ns = now;
        pick = static_cast<int>(i);
      }
    }
    if (pick < 0 || min_ns >= deadline_ns) {
      break;
    }
    tenants_[static_cast<size_t>(pick)].driver->Step();
    if (options_.arbitration) {
      // Account windows against the fleet's lagging edge: a window only
      // closes once every unfinished tenant has moved past it, so each
      // tenant's traffic for the window is complete when it is judged.
      uint64_t lagging = UINT64_MAX;
      for (const Tenant& t : tenants_) {
        if (!t.driver->Done()) {
          lagging = std::min(lagging, t.vm->now_ns());
        }
      }
      if (lagging != UINT64_MAX) {
        CloseWindowsUpTo(lagging);
      }
    }
  }
}

void FleetManager::CloseWindowsUpTo(uint64_t fleet_now_ns) {
  const uint64_t window_ns = arbiter_.options().window_ns;
  while (window_start_ns_ + window_ns <= fleet_now_ns) {
    std::vector<uint64_t> bytes(tenants_.size(), 0);
    for (size_t i = 0; i < tenants_.size(); ++i) {
      const uint64_t total =
          device_->tenant_counters(static_cast<uint8_t>(i)).total_bytes();
      bytes[i] = total - tenants_[i].window_bytes_mark;
      tenants_[i].window_bytes_mark = total;
    }
    const std::vector<uint64_t> stalls = arbiter_.EndWindow(bytes);
    for (size_t i = 0; i < stalls.size(); ++i) {
      if (stalls[i] > 0) {
        // Simulated-time throttling: the tenant idles out its stall before
        // it may issue more traffic.
        tenants_[i].vm->clock().Advance(stalls[i]);
        tenants_[i].vm->NoteFleetStall(stalls[i]);
        tenants_[i].vm->metrics().AddCounter("fleet.throttle_stall_ns", stalls[i]);
        tenants_[i].vm->metrics().AddCounter("fleet.throttle_windows", 1);
      }
    }
    window_start_ns_ += window_ns;
  }
}

uint64_t FleetManager::OnPauseRequested(uint32_t tenant, GcKind kind, uint64_t now_ns) {
  if (!options_.pause_coordination) {
    return 0;
  }
  const uint64_t defer_ns = pause_scheduler_.DeferNs(tenant, kind, now_ns);
  if (defer_ns > 0) {
    ++pauses_deferred_;
    pause_defer_ns_ += defer_ns;
  }
  return defer_ns;
}

void FleetManager::OnPauseFinished(uint32_t tenant, GcKind kind, uint64_t start_ns,
                                   uint64_t end_ns, uint64_t writeback_ns) {
  (void)kind;
  pause_scheduler_.OnPauseFinished(tenant, start_ns, end_ns, writeback_ns);
}

void FleetManager::ExportMetrics(MetricsRegistry* out) const {
  for (size_t i = 0; i < tenants_.size(); ++i) {
    out->MergeFrom(tenants_[i].vm->metrics(), "tenant." + std::to_string(i) + ".");
  }
  out->SetGauge("fleet.tenants", tenants_.size());
  out->SetGauge("fleet.pauses_deferred", pauses_deferred_);
  out->SetGauge("fleet.pause_defer_ns", pause_defer_ns_);
  out->SetGauge("fleet.arbiter.windows", arbiter_.windows_closed());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const ArbiterTenantStats& s = arbiter_.stats(static_cast<uint32_t>(i));
    const std::string prefix = "fleet.tenant." + std::to_string(i) + ".";
    out->SetGauge(prefix + "stall_ns", s.total_stall_ns);
    out->SetGauge(prefix + "windows_throttled", s.windows_throttled);
    out->SetGauge(prefix + "device_bytes", s.total_bytes);
  }
}

bool FleetManager::WriteChromeTrace(const std::string& path) const {
  std::string events;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (!events.empty()) {
      events += ',';
    }
    // pid 0 renders oddly in some viewers; tenants start at pid 1.
    tenants_[i].vm->tracer().AppendChromeEvents(
        &events, static_cast<uint32_t>(i + 1),
        std::to_string(i) + "." + tenants_[i].name);
  }
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "{\"traceEvents\":[" << events << "]}";
  return out.good();
}

}  // namespace nvmgc
