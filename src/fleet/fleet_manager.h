// FleetManager: N tenant Vms co-located on one shared NVM device.
//
// The manager owns the shared MemoryDevice and the tenant Vms, and runs their
// step-wise workload drivers under a cooperative simulated-time scheduler:
// each iteration advances the tenant whose clock is furthest behind, so the
// tenants' traffic interleaves in the device's ledger epochs and the
// contention model (BandwidthModel::TenantShareFraction) sees realistic
// co-occupancy. Host execution is serial — concurrency exists in simulated
// time only, which keeps fleet runs deterministic.
//
// Two coordination mechanisms, both optional (the uncoordinated baseline of
// bench_fleet turns them off):
//
//   Bandwidth arbitration   At every accounting-window boundary the manager
//                           reads per-tenant device counters and asks the
//                           BandwidthArbiter for stalls; a stalled tenant's
//                           clock is advanced, modeling budget-enforcement
//                           throttling (see bandwidth_arbiter.h for policy).
//   Pause scheduling        The manager implements GcCoordinator: tenant Vms
//                           report every pause's write-back drain window, and
//                           a tenant about to run a major (write-back-heavy)
//                           pause inside a co-tenant's drain is deferred
//                           (see pause_scheduler.h).
//
// Observability: ExportMetrics merges every tenant's registry under
// "tenant.<id>." plus fleet-level gauges; WriteChromeTrace emits one Chrome
// trace process per tenant (pid = tenant id + 1), so Perfetto renders one
// track group per Vm including its nvm.*/policy.*/persist.* counter tracks.

#ifndef NVMGC_SRC_FLEET_FLEET_MANAGER_H_
#define NVMGC_SRC_FLEET_FLEET_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fleet/bandwidth_arbiter.h"
#include "src/fleet/pause_scheduler.h"
#include "src/fleet/qos.h"
#include "src/fleet/tenant_workload.h"
#include "src/nvm/device_profile.h"
#include "src/nvm/memory_device.h"
#include "src/obs/metrics.h"
#include "src/runtime/gc_coordinator.h"
#include "src/runtime/vm.h"

namespace nvmgc {

struct FleetOptions {
  // Profile of the one shared heap device every tenant binds to.
  DeviceProfile device;
  // Coordination switches (both off = the uncoordinated baseline).
  bool arbitration = true;
  bool pause_coordination = true;
  ArbiterOptions arbiter;
  PauseSchedulerOptions pause_scheduler;

  FleetOptions();  // Defaults device to MakeOptaneProfile().
};

struct FleetTenantSpec {
  std::string name;
  QosTier tier = QosTier::kBatch;
  // Device-bandwidth budget (MB/s); <= 0 = unlimited (never throttled).
  double bandwidth_budget_mbps = 0.0;
  // Vm configuration. The manager overrides shared_heap_device, tenant_id
  // and tenant_label; heap.heap_device must match the fleet device's kind.
  VmOptions vm;
};

class FleetManager : public GcCoordinator {
 public:
  explicit FleetManager(const FleetOptions& options);
  ~FleetManager() override;

  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  // Adds a tenant Vm; returns its dense tenant id (also its index). All
  // tenants must be added before Run. At most MemoryDevice::kMaxTenants.
  uint32_t AddTenant(const FleetTenantSpec& spec);

  // Installs the tenant's workload. Drivers need the Vm, so the pattern is:
  //   id = AddTenant(spec);
  //   SetDriver(id, std::make_unique<ServingDriver>(&fleet.vm(id), cfg));
  void SetDriver(uint32_t tenant, std::unique_ptr<TenantDriver> driver);

  // Runs every driver to completion (or until all clocks pass `deadline_ns`),
  // co-scheduled in simulated time.
  void Run(uint64_t deadline_ns = UINT64_MAX);

  // --- GcCoordinator (called by tenant Vms at pause boundaries) ---
  uint64_t OnPauseRequested(uint32_t tenant, GcKind kind, uint64_t now_ns) override;
  void OnPauseFinished(uint32_t tenant, GcKind kind, uint64_t start_ns, uint64_t end_ns,
                       uint64_t writeback_ns) override;

  // --- Accessors ---
  size_t tenant_count() const { return tenants_.size(); }
  Vm& vm(uint32_t tenant) { return *tenants_[tenant].vm; }
  const Vm& vm(uint32_t tenant) const { return *tenants_[tenant].vm; }
  const std::string& tenant_name(uint32_t tenant) const { return tenants_[tenant].name; }
  QosTier tenant_tier(uint32_t tenant) const { return tenants_[tenant].tier; }
  MemoryDevice& device() { return *device_; }
  const BandwidthArbiter& arbiter() const { return arbiter_; }
  const FleetPauseScheduler& pause_scheduler() const { return pause_scheduler_; }
  const FleetOptions& options() const { return options_; }
  uint64_t pauses_deferred() const { return pauses_deferred_; }

  // --- Fleet observability ---
  // Merges each tenant's registry into `out` under "tenant.<id>." and
  // publishes fleet gauges: fleet.tenants, fleet.pauses_deferred,
  // fleet.pause_defer_ns, fleet.arbiter.windows, and per tenant
  // fleet.tenant.<id>.{stall_ns,windows_throttled,device_bytes}.
  void ExportMetrics(MetricsRegistry* out) const;

  // Writes one Chrome trace with each tenant as its own process
  // (pid = tenant id + 1, named "<id>.<name>"). Tenants must have been run
  // with vm.trace_gc enabled to contribute spans.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct Tenant {
    std::string name;
    QosTier tier = QosTier::kBatch;
    std::unique_ptr<Vm> vm;
    std::unique_ptr<TenantDriver> driver;
    // Device-counter watermark at the last closed arbiter window.
    uint64_t window_bytes_mark = 0;
  };

  // Closes arbiter accounting windows up to the fleet's lagging clock and
  // applies the resulting stalls.
  void CloseWindowsUpTo(uint64_t fleet_now_ns);

  FleetOptions options_;
  std::unique_ptr<MemoryDevice> device_;
  std::vector<Tenant> tenants_;
  BandwidthArbiter arbiter_;
  FleetPauseScheduler pause_scheduler_;
  uint64_t window_start_ns_ = 0;
  uint64_t pauses_deferred_ = 0;
  uint64_t pause_defer_ns_ = 0;
  bool ran_ = false;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_FLEET_FLEET_MANAGER_H_
