#include "src/fleet/pause_scheduler.h"

#include <algorithm>

namespace nvmgc {

void FleetPauseScheduler::OnPauseFinished(uint32_t tenant, uint64_t start_ns, uint64_t end_ns,
                                          uint64_t writeback_ns) {
  if (writeback_ns == 0) {
    return;  // Nothing drained; no window to avoid.
  }
  DrainWindow w;
  w.end_ns = end_ns;
  w.start_ns = end_ns - std::min(writeback_ns, end_ns - start_ns);
  last_drain_[tenant] = w;
}

uint64_t FleetPauseScheduler::DeferNs(uint32_t tenant, GcKind kind, uint64_t now_ns) const {
  if (kind == GcKind::kMinor && !options_.defer_minor) {
    return 0;
  }
  uint64_t defer = 0;
  for (const auto& [other, w] : last_drain_) {
    if (other == tenant) {
      continue;
    }
    // Overlap test with a leading margin: defer when `now` falls inside
    // [start - margin, end) of a co-tenant's drain.
    if (now_ns + options_.margin_ns >= w.start_ns && now_ns < w.end_ns) {
      defer = std::max(defer, w.end_ns - now_ns);
    }
  }
  defer = std::min(defer, options_.max_defer_ns);
  if (defer > 0) {
    ++deferrals_;
    total_defer_ns_ += defer;
  }
  return defer;
}

}  // namespace nvmgc
