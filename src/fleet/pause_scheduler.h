// Fleet GC pause scheduling: stagger co-located write-back storms.
//
// The pathology (motivated by the paper's write-back analysis): a major
// cycle's write-back floods the shared device's write path, and Optane's
// mixed-traffic collapse means a co-tenant pausing *during* that drain pays
// the collapsed-bandwidth price for its whole evacuation. The scheduler
// tracks each tenant's most recent write-back drain window and tells a
// tenant requesting a write-back-heavy (major) pause to defer — run
// application code a little longer — until the co-tenant's drain has passed.
//
// Deferrals are bounded (max_defer_ns): the requesting tenant's heap is near
// exhaustion, so the pause can be delayed, not denied. Minor pauses (young
// evacuations, mostly DRAM-side in generational heaps) are not deferred by
// default.
//
// Pure simulated-time bookkeeping; deterministic; no Vm dependencies.

#ifndef NVMGC_SRC_FLEET_PAUSE_SCHEDULER_H_
#define NVMGC_SRC_FLEET_PAUSE_SCHEDULER_H_

#include <cstdint>
#include <map>

#include "src/gc/gc_stats.h"

namespace nvmgc {

struct PauseSchedulerOptions {
  // Deferral ceiling per pause request.
  uint64_t max_defer_ns = 2'000'000;
  // Defer when the request lands within this margin *before* a drain window
  // too: co-tenant clocks are only loosely synchronized, so a pause that
  // would start just ahead of a known drain would still overlap it.
  uint64_t margin_ns = 100'000;
  // Also stagger minor pauses (off: young evacuations are DRAM-heavy and
  // barely touch the shared device).
  bool defer_minor = false;
};

class FleetPauseScheduler {
 public:
  explicit FleetPauseScheduler(const PauseSchedulerOptions& options) : options_(options) {}

  // Records tenant's completed pause: its write-back drain window is the
  // final `writeback_ns` of [start_ns, end_ns).
  void OnPauseFinished(uint32_t tenant, uint64_t start_ns, uint64_t end_ns,
                       uint64_t writeback_ns);

  // Returns how long `tenant` should defer a pause of `kind` requested at
  // `now_ns` (0 = clear to pause). Never counts the tenant's own windows.
  uint64_t DeferNs(uint32_t tenant, GcKind kind, uint64_t now_ns) const;

  uint64_t deferrals() const { return deferrals_; }
  uint64_t total_defer_ns() const { return total_defer_ns_; }
  const PauseSchedulerOptions& options() const { return options_; }

 private:
  struct DrainWindow {
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
  };

  PauseSchedulerOptions options_;
  std::map<uint32_t, DrainWindow> last_drain_;
  // Mutated by DeferNs through the manager path; kept simple with mutable
  // counters since the scheduler is single-threaded by construction.
  mutable uint64_t deferrals_ = 0;
  mutable uint64_t total_defer_ns_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_FLEET_PAUSE_SCHEDULER_H_
