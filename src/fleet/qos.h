// QoS tiers for multi-tenant fleets sharing one NVM device.
//
// Lower numeric value = higher priority. The tier ordering is the arbiter's
// whole contract: serving tenants' budgets are entitlements (never throttled),
// batch tenants are throttled when over budget under contention, background
// tenants pay a penalty multiplier on top (see BandwidthArbiter).

#ifndef NVMGC_SRC_FLEET_QOS_H_
#define NVMGC_SRC_FLEET_QOS_H_

#include <cstdint>

namespace nvmgc {

enum class QosTier : uint8_t {
  kServing = 0,     // Latency-sensitive (Cassandra-style request serving).
  kBatch = 1,       // Throughput jobs with deadlines (Spark-style analytics).
  kBackground = 2,  // Best-effort churn (compaction, rebuilds, crons).
};

inline const char* QosTierName(QosTier tier) {
  switch (tier) {
    case QosTier::kServing:
      return "serving";
    case QosTier::kBatch:
      return "batch";
    case QosTier::kBackground:
      return "background";
  }
  return "unknown";
}

}  // namespace nvmgc

#endif  // NVMGC_SRC_FLEET_QOS_H_
