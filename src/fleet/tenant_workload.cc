#include "src/fleet/tenant_workload.h"

#include <algorithm>

#include "src/heap/klass.h"
#include "src/obs/metrics.h"

namespace nvmgc {

// --- ServingDriver ---

ServingDriver::ServingDriver(Vm* vm, const ServingConfig& config)
    : vm_(vm),
      config_(config),
      mutator_(vm->CreateMutator()),
      rng_(config.seed),
      zipf_(config.rows, config.zipf_theta, config.seed ^ 0x5a5a) {
  KlassTable& klasses = vm->heap().klasses();
  row_klass_ = klasses.RegisterByteArray("serving.Row");
  request_klass_ = klasses.RegisterRegular("serving.Request", 1, 48);
  table_ = std::make_unique<ManagedTable>(vm, mutator_, config.rows);
  for (uint64_t i = 0; i < config.rows; ++i) {
    table_->Set(i, mutator_->Allocate({row_klass_, config.row_bytes}));
  }
}

void ServingDriver::ServeRead(uint64_t row) {
  const Address request = mutator_->Allocate({request_klass_});
  const Address data = table_->Get(row);
  mutator_->WriteRef(request, 0, data);
  mutator_->ReadPayload(data, config_.row_bytes);
  const Address response = mutator_->Allocate({row_klass_, config_.row_bytes});
  mutator_->WritePayload(response, config_.row_bytes);
}

void ServingDriver::ServeWrite(uint64_t row) {
  const Address request = mutator_->Allocate({request_klass_});
  const Address fresh = mutator_->Allocate({row_klass_, config_.row_bytes});
  mutator_->WriteRef(request, 0, fresh);
  mutator_->WritePayload(fresh, config_.row_bytes);
  table_->Set(row, fresh);
}

void ServingDriver::Step() {
  if (Done()) {
    return;
  }
  if (!started_) {
    // Arrivals are anchored at the first step, not construction: table
    // population time is provisioning, not serving.
    first_arrival_ns_ = vm_->now_ns();
    started_ = true;
  }
  const double interarrival_ns = 1e6 / config_.offered_kqps;
  const uint64_t batch = std::min(config_.requests_per_step, config_.total_requests - served_);
  for (uint64_t i = 0; i < batch; ++i) {
    const uint64_t arrival =
        first_arrival_ns_ +
        static_cast<uint64_t>(static_cast<double>(served_) * interarrival_ns);
    // Open loop: idle until the arrival; a backlog counts as queueing latency.
    vm_->clock().SyncForwardTo(arrival);
    const uint64_t row = zipf_.Next();
    if (rng_.NextBool(config_.write_fraction)) {
      ServeWrite(row);
    } else {
      ServeRead(row);
    }
    vm_->clock().Advance(config_.request_cpu_ns);
    const uint64_t latency_ns = vm_->now_ns() - arrival;
    latencies_.Record(latency_ns);
    vm_->metrics().RecordHistogram("serving.op_latency_ns", latency_ns);
    ++served_;
  }
}

HistogramSummary ServingDriver::LatencySummary() const { return Summarize(latencies_); }

// --- BatchDriver ---

BatchDriver::BatchDriver(Vm* vm, const BatchConfig& config)
    : vm_(vm), config_(config), mutator_(vm->CreateMutator()), rng_(config.seed) {
  KlassTable& klasses = vm->heap().klasses();
  row_klass_ = klasses.RegisterByteArray("batch.Row");
  result_klass_ = klasses.RegisterByteArray("batch.Intermediate");
  table_ = std::make_unique<ManagedTable>(vm, mutator_, config.rows);
  for (uint64_t i = 0; i < config.rows; ++i) {
    table_->Set(i, mutator_->Allocate({row_klass_, config.row_bytes}));
  }
}

void BatchDriver::RunTask() {
  // One task: scan a contiguous slice of the table (hot analytics loop),
  // fold each row into a freshly allocated intermediate buffer. The
  // intermediates die at task end — exactly the short-lived flood that makes
  // batch analytics GC-heavy.
  const uint64_t base = rng_.NextBelow(config_.rows);
  const Address intermediate = mutator_->Allocate({result_klass_, config_.intermediate_bytes});
  for (uint64_t i = 0; i < config_.rows_per_task; ++i) {
    const Address row = table_->Get((base + i) % config_.rows);
    mutator_->ReadPayload(row, config_.row_bytes);
    mutator_->WritePayload(intermediate, std::min(config_.intermediate_bytes, 256u));
  }
  ++tasks_done_;
}

void BatchDriver::Step() {
  if (Done()) {
    return;
  }
  if (!started_) {
    start_ns_ = vm_->now_ns();
    started_ = true;
  }
  const uint64_t batch = std::min(config_.tasks_per_step, config_.total_tasks - tasks_done_);
  for (uint64_t i = 0; i < batch; ++i) {
    RunTask();
  }
}

double BatchDriver::TasksPerSecond() const {
  if (!started_ || vm_->now_ns() <= start_ns_) {
    return 0.0;
  }
  return static_cast<double>(tasks_done_) * 1e9 /
         static_cast<double>(vm_->now_ns() - start_ns_);
}

// --- BackgroundDriver ---

BackgroundDriver::BackgroundDriver(Vm* vm, const BackgroundConfig& config)
    : vm_(vm), config_(config), mutator_(vm->CreateMutator()), rng_(config.seed) {
  byte_array_klass_ = vm->heap().klasses().RegisterByteArray("background.Chunk");
}

void BackgroundDriver::AllocateOne() {
  const uint32_t bytes = static_cast<uint32_t>(
      rng_.NextInRange(config_.object_bytes_min, config_.object_bytes_max));
  const Address object = mutator_->Allocate({byte_array_klass_, bytes});
  allocated_bytes_ += bytes;
  if (rng_.NextBool(config_.touches_per_alloc)) {
    mutator_->WritePayload(object, std::min<uint32_t>(bytes, 256));
  }
  if (rng_.NextBool(config_.survival_fraction)) {
    live_window_.emplace_back(GlobalRoot(*vm_, object), bytes);
    live_window_bytes_ += bytes;
    while (live_window_bytes_ > config_.live_window_bytes && !live_window_.empty()) {
      live_window_bytes_ -= live_window_.front().second;
      live_window_.pop_front();
    }
  }
}

void BackgroundDriver::Step() {
  if (Done()) {
    return;
  }
  for (uint64_t i = 0; i < config_.allocs_per_step && !Done(); ++i) {
    AllocateOne();
  }
}

}  // namespace nvmgc
