// Step-wise tenant workload drivers for the FleetManager.
//
// The single-Vm workloads (src/workloads/) run to completion inside one call,
// which is useless for a fleet: tenants must interleave in simulated time so
// their traffic lands in the same device ledger epochs. Each driver here does
// a small quantum of application work per Step() — the FleetManager picks the
// tenant with the least-advanced clock each iteration, keeping the fleet
// loosely time-synchronized.
//
// Three drivers mirror the mixed production fleet of the bench:
//   ServingDriver     Cassandra-style open-loop request serving (read/write
//                     row ops, Zipf row popularity, op latency histogram) —
//                     the QoS-serving tenant whose p99 the fleet protects.
//   BatchDriver       Spark-style analytics tasks: scan a slice of a rooted
//                     table, allocate short-lived intermediates — the
//                     throughput tenant.
//   BackgroundDriver  Renaissance-style synthetic churn: allocation-heavy
//                     with a sliding survivor window — the bandwidth hog the
//                     arbiter exists to contain.

#ifndef NVMGC_SRC_FLEET_TENANT_WORKLOAD_H_
#define NVMGC_SRC_FLEET_TENANT_WORKLOAD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>

#include "src/runtime/global_root.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/util/histogram.h"
#include "src/util/random.h"
#include "src/workloads/spark.h"

namespace nvmgc {

// One tenant's application, advanced one quantum at a time.
class TenantDriver {
 public:
  virtual ~TenantDriver() = default;

  // Runs one quantum of application work on the tenant's Vm (advances its
  // simulated clock). Must be a no-op once Done().
  virtual void Step() = 0;
  virtual bool Done() const = 0;
};

// --- Serving tenant ---

struct ServingConfig {
  uint64_t rows = 16384;
  uint32_t row_bytes = 256;
  double zipf_theta = 0.99;
  double offered_kqps = 90.0;
  double write_fraction = 0.10;
  uint64_t total_requests = 40000;
  uint64_t requests_per_step = 32;
  // Request-handling CPU outside heap accesses (parse/serialize/coordinate).
  uint64_t request_cpu_ns = 3500;
  uint64_t seed = 1;
};

class ServingDriver : public TenantDriver {
 public:
  ServingDriver(Vm* vm, const ServingConfig& config);

  void Step() override;
  bool Done() const override { return served_ >= config_.total_requests; }

  // Digest of the op-latency histogram (simulated ns).
  HistogramSummary LatencySummary() const;
  uint64_t served() const { return served_; }

 private:
  void ServeRead(uint64_t row);
  void ServeWrite(uint64_t row);

  Vm* vm_;
  ServingConfig config_;
  Mutator* mutator_;
  Random rng_;
  ZipfGenerator zipf_;
  KlassId row_klass_ = 0;
  KlassId request_klass_ = 0;
  std::unique_ptr<ManagedTable> table_;
  Histogram latencies_;
  uint64_t served_ = 0;
  uint64_t first_arrival_ns_ = 0;
  bool started_ = false;
};

// --- Batch tenant ---

struct BatchConfig {
  uint64_t rows = 32768;
  uint32_t row_bytes = 512;
  uint64_t total_tasks = 600;
  uint64_t tasks_per_step = 2;
  // Rows scanned and intermediate allocations per task.
  uint64_t rows_per_task = 96;
  uint32_t intermediate_bytes = 2048;
  uint64_t seed = 2;
};

class BatchDriver : public TenantDriver {
 public:
  BatchDriver(Vm* vm, const BatchConfig& config);

  void Step() override;
  bool Done() const override { return tasks_done_ >= config_.total_tasks; }

  uint64_t tasks_done() const { return tasks_done_; }
  // Tasks per simulated second since the first step.
  double TasksPerSecond() const;

 private:
  void RunTask();

  Vm* vm_;
  BatchConfig config_;
  Mutator* mutator_;
  Random rng_;
  KlassId row_klass_ = 0;
  KlassId result_klass_ = 0;
  std::unique_ptr<ManagedTable> table_;
  uint64_t tasks_done_ = 0;
  uint64_t start_ns_ = 0;
  bool started_ = false;
};

// --- Background tenant ---

struct BackgroundConfig {
  size_t total_allocation_bytes = 48 * 1024 * 1024;
  uint64_t allocs_per_step = 192;
  uint32_t object_bytes_min = 128;
  uint32_t object_bytes_max = 4096;
  double survival_fraction = 0.12;
  size_t live_window_bytes = 3 * 1024 * 1024;
  // Payload touches per allocation (reads + writes), modeling churny
  // streaming passes over fresh data.
  double touches_per_alloc = 0.7;
  uint64_t seed = 3;
};

class BackgroundDriver : public TenantDriver {
 public:
  BackgroundDriver(Vm* vm, const BackgroundConfig& config);

  void Step() override;
  bool Done() const override { return allocated_bytes_ >= config_.total_allocation_bytes; }

  uint64_t allocated_bytes() const { return allocated_bytes_; }

 private:
  void AllocateOne();

  Vm* vm_;
  BackgroundConfig config_;
  Mutator* mutator_;
  Random rng_;
  KlassId byte_array_klass_ = 0;
  std::deque<std::pair<GlobalRoot, size_t>> live_window_;
  size_t live_window_bytes_ = 0;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_FLEET_TENANT_WORKLOAD_H_
