#include "src/gc/copy_collector.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/nvm/fault_injector.h"
#include "src/util/check.h"

namespace nvmgc {

namespace {
// CPU cost constants (simulated ns), independent of the memory device.
constexpr uint64_t kQueueOpNs = 6;    // Push/pop on the local task queue.
constexpr uint64_t kStealNs = 45;     // Cross-queue steal (CAS + cache ping).
constexpr uint64_t kEvacCpuNs = 55;   // Size/age computation, barrier checks.
constexpr uint64_t kFenceNs = 120;    // sfence after non-temporal write-back.
// Serial, device-independent pause overhead: safepoint synchronization, root
// scanning setup, region bookkeeping, termination. Real G1 pauses have a
// floor of this order regardless of how little is copied.
constexpr uint64_t kPauseFixedOverheadNs = 40'000;
}  // namespace

CopyCollector::CopyCollector(Heap* heap, const GcOptions& options, GcThreadPool* pool)
    : heap_(heap), options_(options), tuning_(DefaultGcTuning(options)), pool_(pool) {
  NVMGC_CHECK(heap != nullptr && pool != nullptr);
  NVMGC_CHECK(pool->thread_count() == options.gc_threads);
  workers_.resize(options.gc_threads);
  for (uint32_t i = 0; i < options.gc_threads; ++i) {
    workers_[i].id = i;
  }
  queues_ = std::make_unique<TaskQueueSet>(options.gc_threads);
  published_clock_ = std::make_unique<std::atomic<uint64_t>[]>(options.gc_threads);
  if (options_.use_write_cache) {
    write_cache_ = std::make_unique<WriteCache>(heap_, options_);
  }
  if (options_.use_header_map) {
    const size_t bytes = options_.header_map_bytes != 0 ? options_.header_map_bytes
                                                        : heap_->heap_arena_bytes() / 32;
    header_map_ = std::make_unique<HeaderMap>(bytes, options_.header_map_search_bound,
                                              heap_->dram_device());
  }
  if (options_.durability.enabled) {
    commit_layout_ = ComputeCommitLayout(heap_->config(), options_.durability);
    NVMGC_CHECK_MSG(heap_->commit_area_bytes() >= commit_layout_.total_bytes(),
                    "durability enabled but the heap's commit area is too small: the Vm "
                    "must size HeapConfig::commit_area_bytes from ComputeCommitLayout");
  }
}

bool CopyCollector::StageableThroughCache(size_t) const { return true; }

uint32_t CopyCollector::TenureThreshold() const {
  if (options_.generational.enabled) {
    return tuning_.tenure_threshold != 0 ? tuning_.tenure_threshold
                                         : options_.generational.tenure_threshold;
  }
  return heap_->config().tenure_age;
}

void CopyCollector::set_tracer(GcTracer* tracer) {
  tracer_ = tracer;
  if (write_cache_ != nullptr) {
    write_cache_->set_tracer(tracer);
  }
  if (header_map_ != nullptr) {
    header_map_->set_tracer(tracer);
  }
}

bool CopyCollector::HeaderMapActive() const {
  // The header map only pays off once the read bandwidth is contended; the
  // static gate (gc_threads >= header_map_min_threads, Section 3.3) is baked
  // into DefaultGcTuning, and the adaptive policy may override it per pause.
  return header_map_ != nullptr && tuning_.header_map_enabled;
}

void CopyCollector::ApplyTuning(const GcTuning& tuning) {
  NVMGC_CHECK(queues_->AllEmpty());  // Only between pauses.
  GcTuning t = tuning;
  t.active_gc_threads = std::clamp<uint32_t>(t.active_gc_threads, 1, options_.gc_threads);
  t.header_map_enabled = t.header_map_enabled && header_map_ != nullptr;
  t.async_flush = t.async_flush && write_cache_ != nullptr;
  t.prefetch_window =
      std::clamp<uint32_t>(t.prefetch_window, 1, PrefetchQueue::kCapacity);
  if (write_cache_ != nullptr) {
    if (t.write_cache_capacity_bytes != 0) {
      write_cache_->SetCapacityBytes(t.write_cache_capacity_bytes);
    }
    write_cache_->SetAsync(t.async_flush);
  }
  if (header_map_ != nullptr && t.header_map_entries != 0) {
    header_map_->ResizeEntries(t.header_map_entries);
  }
  t.tenure_threshold = std::min<uint32_t>(t.tenure_threshold, 15);  // 4-bit age field.
  if (options_.generational.enabled && t.eden_quota_regions != 0) {
    heap_->set_eden_quota(t.eden_quota_regions);
  }
  tuning_ = t;
}

MemoryDevice* CopyCollector::DeviceForAddress(Address a) {
  Region* region = heap_->RegionFor(a);
  if (region == nullptr) {
    return heap_->dram_device();  // Mutator handles and other host memory.
  }
  return heap_->DeviceFor(region);
}

GcCycleStats CopyCollector::Collect(const std::vector<Address*>& roots, SimClock* app_clock,
                                    GcKind kind) {
  ++gc_epoch_;
  const uint64_t t0 = app_clock->now_ns();
  NVMGC_CHECK(queues_->AllEmpty());
  kind_ = kind;

  // Degraded mode: a pause that starts inside a sustained-throttle window
  // runs with asynchronous flushing and non-temporal stores disabled — mixed
  // NT traffic on a throttled device makes the collapse worse, and async
  // flushes would race the shrinking bandwidth. Re-evaluated every pause, so
  // the optimizations come back the first pause after the window closes.
  FaultInjector* injector = heap_->heap_device()->fault_injector();
  bool degraded = options_.auto_degrade && injector != nullptr && injector->ThrottleActive(t0);
  if (write_cache_ != nullptr) {
    write_cache_->SetDegraded(degraded);
  }

  // --- Build the collection set. ---
  // Minor: every young region (eden + survivors of previous cycles). Major:
  // additionally every old region; humongous and large-object regions are
  // never copied, so they stay out and contribute their reference slots as
  // extra roots below.
  uint64_t young_cset_bytes = 0;
  uint64_t old_cset_bytes = 0;
  std::vector<Region*> cset;
  heap_->ForEachRegion([&](Region* r) {
    const bool young = r->type() == RegionType::kEden ||
                       (r->type() == RegionType::kSurvivor && r->gc_epoch() < gc_epoch_);
    const bool old_in_major = kind == GcKind::kMajor && r->type() == RegionType::kOld;
    if (young || old_in_major) {
      r->set_in_cset(true);
      cset.push_back(r);
      (young ? young_cset_bytes : old_cset_bytes) += r->used();
    }
  });

  // --- Seed worker queues with roots and remembered-set entries. ---
  // Only the first `n` workers participate this pause (the adaptive policy
  // may have shrunk the active count); their queues get all the seed work and
  // every loop below — dispatch, lockstep, termination, stats merge — is
  // bounded by `n` so parked workers never contribute stale state.
  size_t qi = 0;
  const uint32_t n = tuning_.active_gc_threads;
  for (Address* root : roots) {
    queues_->queue(qi++ % n).Push(reinterpret_cast<Address>(root));
  }
  if (kind == GcKind::kMinor) {
    for (Region* r : cset) {
      for (Address slot : r->remset().Take()) {
        queues_->queue(qi++ % n).Push(slot);
      }
    }
  } else {
    // Major: drop every cset remset — a recorded slot may live inside an old
    // region that is itself about to be evacuated, and updating the stale
    // location after its containing object moved would lose the store. The
    // surviving edges are rediscovered (and the remsets rebuilt) as the
    // evacuated copies' slots are scanned. Humongous and large-object spaces
    // are not evacuated, so their slots are scanned conservatively as roots
    // — they are also the only old->old edges no remset tracks.
    for (Region* r : cset) {
      r->remset().Take();
    }
    heap_->ForEachRegion([&](Region* r) {
      if (r->type() != RegionType::kHumongous && r->type() != RegionType::kLarge) {
        return;
      }
      r->remset().Take();
      heap_->ForEachObjectInRegion(r, [&](Address a) {
        const Klass& klass = heap_->klasses().Get(obj::KlassIdOf(a));
        const size_t nslots = obj::RefSlotCount(a, klass);
        for (size_t i = 0; i < nslots; ++i) {
          const Address slot = obj::RefSlot(a, klass, i);
          if (obj::LoadRef(slot) != kNullAddress) {
            queues_->queue(qi++ % n).Push(slot);
          }
        }
      });
    });
  }

  const DeviceCounters before = heap_->heap_device()->counters();

  // --- Read-mostly sub-phase: parallel copy-and-traverse. ---
  idle_workers_.store(0, std::memory_order_relaxed);
  for (uint32_t i = 0; i < n; ++i) {
    published_clock_[i].store(t0, std::memory_order_relaxed);
  }
  {
    ScopedDeviceActivity heap_activity(heap_->heap_device(), n);
    ScopedDeviceActivity dram_activity(heap_->dram_device(), n);
    pool_->RunParallel(n, [&](uint32_t id) {
      Worker& w = workers_[id];
      w.local = GcCycleStats{};
      w.clock.SetTime(t0);
      w.prefetch.SetWindow(tuning_.prefetch_window);
      w.hm_prefetch.SetWindow(tuning_.prefetch_window);
      w.prefetch.Reset();
      w.hm_prefetch.Reset();
      w.cache_state = WriteCacheWorkerState{};
      w.direct_survivor = nullptr;
      w.old_target = nullptr;
      w.site_local.assign(
          site_profiler_ != nullptr ? site_profiler_->site_count() : 0, SiteWorkerDelta{});
      if (tracer_ != nullptr) {
        tracer_->BindThread(id);
      }
      TraceSpan read_span(tracer_, &w.clock, "gc.read_phase", "gc");
      DrainWorker(&w);
    });
  }
  uint64_t read_end = t0;
  for (uint32_t i = 0; i < n; ++i) {
    read_end = std::max(read_end, workers_[i].clock.now_ns());
  }
  if (std::getenv("NVMGC_GC_DEBUG") != nullptr) {
    uint64_t sum = 0;
    uint64_t max_objs = 0;
    for (uint32_t i = 0; i < n; ++i) {
      sum += workers_[i].clock.now_ns() - t0;
      max_objs = std::max(max_objs, workers_[i].local.objects_copied);
    }
    std::fprintf(stderr,
                 "[gc %llu] read phase max=%.2fms avg=%.2fms max_worker_objs=%llu\n",
                 static_cast<unsigned long long>(gc_epoch_),
                 static_cast<double>(read_end - t0) / 1e6,
                 static_cast<double>(sum) / n / 1e6,
                 static_cast<unsigned long long>(max_objs));
  }

  // A throttle window that opened mid-pause still degrades the write-back:
  // whatever was not already flushed asynchronously goes back synchronously
  // with cache-line stores.
  if (!degraded && options_.auto_degrade && injector != nullptr &&
      injector->ThrottleActive(read_end)) {
    degraded = true;
    if (write_cache_ != nullptr) {
      write_cache_->SetDegraded(true);
    }
  }

  // --- Write-only sub-phase: stream cache regions to NVM, clear header map. ---
  uint64_t pause_end = read_end;
  if (write_cache_ != nullptr || HeaderMapActive()) {
    ScopedDeviceActivity heap_activity(heap_->heap_device(), n);
    ScopedDeviceActivity dram_activity(heap_->dram_device(), n);
    pool_->RunParallel(n, [&](uint32_t id) {
      Worker& w = workers_[id];
      w.clock.SetTime(read_end);
      if (tracer_ != nullptr) {
        tracer_->BindThread(id);
      }
      TraceSpan writeback_span(tracer_, &w.clock, "gc.writeback_phase", "gc");
      if (write_cache_ != nullptr) {
        // Close this worker's open pair so the shared flush pass picks it up.
        w.cache_state.cache_region = nullptr;
        w.cache_state.twin_region = nullptr;
        // Durability: each drained run is CLWB'd into this worker's batch and
        // one SFENCE at the batch boundary makes the whole write-back
        // durable (no-ops when the persistence ledger is unconfigured).
        PersistBatch batch(&heap_->heap_device()->persist());
        write_cache_->FlushRemaining(id, n, &w.clock, &w.local, &batch);
        batch.Fence(&w.clock);
        w.local.persist_flush_lines += batch.flush_lines();
        w.local.persist_fences += batch.fences();
        w.local.persist_ns += batch.persist_ns();
        w.clock.Advance(kFenceNs);  // Single ordering fence before GC ends.
      }
      if (HeaderMapActive()) {
        header_map_->ClearJournal(&w.hm_journal, &w.clock);
      }
    });
    for (uint32_t i = 0; i < n; ++i) {
      pause_end = std::max(pause_end, workers_[i].clock.now_ns());
    }
  }

  // --- Epilogue: reclaim the collection set. ---
  std::vector<Region*> twins;
  if (write_cache_ != nullptr) {
    twins = write_cache_->TakePauseTwins();
    for (Region* twin : twins) {
      NVMGC_CHECK(twin->cache_twin() == nullptr);  // Everything must be flushed.
    }
  }
  for (Region* r : cset) {
    heap_->FreeRegion(r);
  }

  // Durability: seal this pause's commit record (flush new live regions,
  // redo-log in-place updates, durable-last seal, release the quarantine).
  GcCycleStats persist_stats;
  if (options_.durability.enabled) {
    PersistEpilogue(roots, &pause_end, &persist_stats);
  }

  // --- Assemble cycle statistics. ---
  GcCycleStats cycle;
  for (uint32_t i = 0; i < n; ++i) {
    Worker& w = workers_[i];
    const GcCycleStats& l = w.local;
    cycle.objects_copied += l.objects_copied;
    cycle.bytes_copied += l.bytes_copied;
    cycle.objects_promoted += l.objects_promoted;
    cycle.bytes_promoted += l.bytes_promoted;
    cycle.refs_processed += l.refs_processed;
    cycle.steals += l.steals;
    cycle.cache_bytes_staged += l.cache_bytes_staged;
    cycle.cache_overflow_bytes += l.cache_overflow_bytes;
    cycle.regions_flushed_sync += l.regions_flushed_sync;
    cycle.regions_flushed_async += l.regions_flushed_async;
    cycle.regions_steal_tainted += l.regions_steal_tainted;
    cycle.cache_fault_denials += l.cache_fault_denials;
    cycle.cache_fallback_workers += l.cache_fallback_workers;
    cycle.cache_fallback_bytes += l.cache_fallback_bytes;
    cycle.survivor_overflow_bytes += l.survivor_overflow_bytes;
    cycle.prefetches_issued += l.prefetches_issued;
    cycle.prefetch_hits += w.prefetch.hits();
    cycle.persist_flush_lines += l.persist_flush_lines;
    cycle.persist_fences += l.persist_fences;
    cycle.persist_ns += l.persist_ns;
  }
  if (site_profiler_ != nullptr) {
    // Fold the worker-local site deltas into the profiler (control thread):
    // survivals per birth site, from which it infers this pause's deaths.
    std::vector<SiteWorkerDelta> merged(site_profiler_->site_count());
    for (uint32_t i = 0; i < n; ++i) {
      const Worker& w = workers_[i];
      for (size_t s = 0; s < w.site_local.size() && s < merged.size(); ++s) {
        merged[s].Merge(w.site_local[s]);
      }
    }
    site_profiler_->OnCycleEnd(merged, kind == GcKind::kMajor);
  }
  cycle.persist_flush_lines += persist_stats.persist_flush_lines;
  cycle.persist_fences += persist_stats.persist_fences;
  cycle.persist_ns += persist_stats.persist_ns;
  cycle.persist_redo_entries = persist_stats.persist_redo_entries;
  cycle.persist_commit_bytes = persist_stats.persist_commit_bytes;
  cycle.degraded_mode = degraded ? 1 : 0;
  cycle.is_major = kind == GcKind::kMajor ? 1 : 0;
  cycle.young_cset_bytes = young_cset_bytes;
  cycle.old_cset_bytes = old_cset_bytes;
  cycle.tenure_threshold_used = TenureThreshold();
  if (header_map_ != nullptr) {
    // Header-map counters are monotonic; report per-cycle deltas.
    cycle.header_map_installs = header_map_->installs() - last_hm_installs_;
    cycle.header_map_overflows = header_map_->overflows() - last_hm_overflows_;
    cycle.header_map_hits = header_map_->hits() - last_hm_hits_;
    cycle.header_map_fault_probes = header_map_->fault_probes() - last_hm_fault_probes_;
    last_hm_installs_ = header_map_->installs();
    last_hm_overflows_ = header_map_->overflows();
    last_hm_hits_ = header_map_->hits();
    last_hm_fault_probes_ = header_map_->fault_probes();
  }
  const DeviceCounters after = heap_->heap_device()->counters();
  cycle.device_read_bytes = (after - before).read_bytes;
  cycle.device_write_bytes = (after - before).write_bytes;

  // Drain the ledger buckets into the bandwidth timeline while they are still
  // resident (the ring spans ~9.6 ms of simulated time). Phase windows are
  // half-open and contiguous, so no bucket lands in both.
  size_t timeline_from = 0;
  if (timeline_ != nullptr) {
    timeline_from = timeline_->size();
    timeline_->SamplePhase(gc_epoch_, GcPhaseKind::kRead, t0, read_end, n);
    timeline_->SamplePhase(gc_epoch_, GcPhaseKind::kWriteback, read_end, pause_end, n);
  }

  pause_end += kPauseFixedOverheadNs;
  cycle.start_ns = t0;
  cycle.pause_ns = pause_end - t0;
  cycle.read_phase_ns = read_end - t0;
  cycle.writeback_phase_ns = pause_end - read_end;

  // The whole pause on the control thread's timeline; worker phase spans and
  // their nested flush/clear spans all fall inside it.
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->BindThread(tracer_->control_tid());
    if (degraded) {
      tracer_->EmitInstant("gc.degraded", "gc", t0);
    }
    tracer_->Emit("gc.pause", "gc", t0, pause_end);
    if (options_.durability.enabled) {
      // Per-pause persist cost counter tracks (Perfetto; see EXPERIMENTS.md).
      tracer_->EmitCounter("persist.flush_lines", "persist", pause_end,
                           static_cast<double>(cycle.persist_flush_lines));
      tracer_->EmitCounter("persist.fences", "persist", pause_end,
                           static_cast<double>(cycle.persist_fences));
      tracer_->EmitCounter("persist.phase_ns", "persist", pause_end,
                           static_cast<double>(cycle.persist_ns));
    }
    if (options_.generational.enabled) {
      // Generational health tracks (Perfetto; consumed by check_bench_artifacts).
      uint64_t young_used = 0;
      heap_->ForEachRegion([&](Region* r) {
        if (r->is_young()) {
          young_used += r->used();
        }
      });
      tracer_->EmitCounter("gen.young_used_bytes", "gen", pause_end,
                           static_cast<double>(young_used));
      tracer_->EmitCounter("gen.tenured_bytes", "gen", pause_end,
                           static_cast<double>(cycle.bytes_promoted));
      tracer_->EmitCounter("gen.tenure_threshold", "gen", pause_end,
                           static_cast<double>(cycle.tenure_threshold_used));
      tracer_->EmitCounter("gen.survivor_overflow_bytes", "gen", pause_end,
                           static_cast<double>(cycle.survivor_overflow_bytes));
    }
    if (timeline_ != nullptr) {
      timeline_->EmitCounters(tracer_, timeline_from);
    }
  }

  app_clock->SetTime(pause_end);
  stats_.Add(cycle);
  return cycle;
}

void CopyCollector::DrainWorker(Worker* w) {
  TaskQueue& own = queues_->queue(w->id);
  Address slot = kNullAddress;
  std::vector<Address> steal_buffer;
  const uint32_t n = tuning_.active_gc_threads;
  // A worker may run at most this far (simulated) ahead of the slowest
  // non-idle worker before parking.
  constexpr uint64_t kLockstepWindowNs = 100'000;
  auto throttle = [&] {
    published_clock_[w->id].store(w->clock.now_ns(), std::memory_order_relaxed);
    while (true) {
      uint64_t min_clock = UINT64_MAX;
      for (uint32_t i = 0; i < n; ++i) {
        min_clock = std::min(min_clock, published_clock_[i].load(std::memory_order_relaxed));
      }
      if (min_clock == UINT64_MAX || w->clock.now_ns() <= min_clock + kLockstepWindowNs) {
        return;  // Everyone else idle, or we are within the window.
      }
      std::this_thread::yield();  // Laggards will steal from our queue.
    }
  };
  while (true) {
    while (own.Pop(&slot)) {
      w->clock.Advance(kQueueOpNs);
      ProcessSlot(w, slot);
      throttle();
    }
    uint32_t victim = 0;
    steal_buffer.clear();
    if (queues_->StealHalfFor(w->id, &steal_buffer, &victim) > 0) {
      w->clock.Advance(kStealNs + kQueueOpNs * steal_buffer.size());
      w->local.steals += steal_buffer.size();
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->EmitInstant("gc.steal", "gc", w->clock.now_ns());
      }
      for (Address stolen : steal_buffer) {
        TaintRegionOfSlot(stolen);
        own.Push(stolen);
      }
      continue;
    }
    // Termination protocol: exit only when every worker is idle and every
    // queue is empty; otherwise re-arm and retry stealing. Idle workers stop
    // participating in the lockstep window (they publish "infinitely far").
    published_clock_[w->id].store(UINT64_MAX, std::memory_order_relaxed);
    idle_workers_.fetch_add(1, std::memory_order_acq_rel);
    bool done = false;
    while (true) {
      if (!queues_->AllEmpty()) {
        break;
      }
      if (idle_workers_.load(std::memory_order_acquire) == n) {
        done = true;
        break;
      }
      std::this_thread::yield();
    }
    if (done) {
      return;
    }
    idle_workers_.fetch_sub(1, std::memory_order_acq_rel);
    published_clock_[w->id].store(w->clock.now_ns(), std::memory_order_relaxed);
  }
}

void CopyCollector::ProcessSlot(Worker* w, Address slot) {
  MemoryDevice* slot_dev = DeviceForAddress(slot);
  Region* slot_region = heap_->RegionFor(slot);
  slot_dev->Access(&w->clock, RandomRead(slot, 8));
  const Address value = obj::LoadRef(slot);
  if (value != kNullAddress) {
    Region* target_region = heap_->RegionFor(value);
    if (target_region != nullptr && target_region->in_cset()) {
      const Address forwarded = Evacuate(w, value);
      obj::StoreRef(slot, forwarded);
      slot_dev->Access(&w->clock, RandomWrite(slot, 8));
      w->local.refs_processed += 1;
      // Remembered-set maintenance: surviving old->young edges are re-recorded
      // so the next young collection still sees them as roots.
      Region* home_region = slot_region;
      Address home_slot = slot;
      if (slot_region != nullptr && slot_region->type() == RegionType::kWriteCache) {
        // Staged copy: the slot's bytes sit in a DRAM cache region, but the
        // object's final home is the NVM twin (kOld in generational mode).
        // An old->young edge must be recorded at the final address — the
        // flush memcpy carries the already-updated slot value there.
        Region* twin = slot_region->cache_twin();
        if (twin != nullptr) {
          home_region = twin;
          home_slot = twin->bottom() + (slot - slot_region->bottom());
        }
      }
      if (home_region != nullptr && home_region->is_old_like()) {
        Region* new_region = heap_->RegionFor(forwarded);
        if (new_region != nullptr && new_region->is_young()) {
          new_region->remset().Add(home_slot);
        }
      }
    }
  }
  if (slot_region != nullptr && slot_region->type() == RegionType::kWriteCache) {
    slot_region->AddPendingSlots(-1);
    if (write_cache_ != nullptr) {
      write_cache_->MaybeAsyncFlush(slot_region->cache_twin(), &w->clock, &w->local);
    }
  }
}

Address CopyCollector::Evacuate(Worker* w, Address old_addr) {
  Region* src_region = heap_->RegionFor(old_addr);
  NVMGC_DCHECK(src_region != nullptr && src_region->in_cset());
  MemoryDevice* src_dev = heap_->DeviceFor(src_region);
  const bool hm = HeaderMapActive();
  PrefetchQueue* hm_prefetch = options_.prefetch_header_map ? &w->hm_prefetch : nullptr;

  if (hm) {
    const Address fwd = header_map_->Get(old_addr, &w->clock, hm_prefetch);
    if (fwd != kNullAddress) {
      return fwd;
    }
  }

  // Read the header (mark + klass); software prefetching may hide the miss.
  AccessDescriptor header_read = RandomRead(old_addr, obj::kHeaderBytes);
  if (options_.prefetch && w->prefetch.Consume(old_addr)) {
    header_read.prefetched = true;
  }
  src_dev->Access(&w->clock, header_read);
  const uint64_t mark = obj::LoadMark(old_addr);
  if (obj::IsForwarded(mark)) {
    return obj::ForwardeeOf(mark);
  }

  const Klass& klass = heap_->klasses().Get(obj::KlassIdOf(old_addr));
  const uint64_t array_length =
      klass.kind == KlassKind::kRegular ? 0 : obj::ArrayLength(old_addr);
  const size_t size = obj::SizeOf(klass, array_length);
  const uint32_t age = obj::AgeOf(mark);
  // In a major collection old objects are evacuated old->old; they are
  // already tenured, so they never demote back into the young generation.
  const bool already_old = src_region->type() == RegionType::kOld;
  const bool promote = already_old || age + 1 >= TenureThreshold();
  w->clock.Advance(kEvacCpuNs);

  CopyTarget target;
  AllocateTarget(w, size, promote, &target);

  // Install the forwarding pointer; exactly one thread wins.
  Address winner;
  if (hm) {
    winner = header_map_->Put(old_addr, target.final, &w->clock, hm_prefetch, &w->hm_journal);
    if (winner == kNullAddress) {
      // Bounded probe window exhausted: fall back to the NVM header.
      src_dev->Access(&w->clock, RandomWrite(old_addr, 8));
      const Address prev = obj::CasForward(old_addr, target.final);
      winner = prev == kNullAddress ? target.final : prev;
    }
  } else {
    src_dev->Access(&w->clock, RandomWrite(old_addr, 8));
    const Address prev = obj::CasForward(old_addr, target.final);
    winner = prev == kNullAddress ? target.final : prev;
  }
  if (winner != target.final) {
    RetractTarget(w, target, size);
    return winner;
  }

  // Copy the object and refresh the new header.
  src_dev->Access(&w->clock, SequentialRead(old_addr, static_cast<uint32_t>(size)));
  MemoryDevice* dst_dev = DeviceForAddress(target.physical);
  dst_dev->Access(&w->clock, SequentialWrite(target.physical, static_cast<uint32_t>(size)));
  std::memcpy(reinterpret_cast<void*>(target.physical),
              reinterpret_cast<const void*>(old_addr), size);
  // The age field is 4 bits; old->old copies in major collections saturate it.
  // The allocation-site tag survives every copy.
  obj::StoreMark(target.physical,
                 obj::MarkWithAgeSite(std::min<uint32_t>(age + 1, 15), obj::SiteOf(mark)));

  w->local.objects_copied += 1;
  w->local.bytes_copied += size;
  if (target.promoted && !already_old) {
    w->local.objects_promoted += 1;
    w->local.bytes_promoted += size;
  }
  if (target.staged) {
    w->local.cache_bytes_staged += size;
  }
  if (site_profiler_ != nullptr) {
    // Attribute this copy back to its birth site (untagged when the tag
    // overflows the table — it cannot: tags come from the same profiler).
    uint32_t site = obj::SiteOf(mark);
    if (site >= w->site_local.size()) site = kUntaggedSite;
    SiteWorkerDelta& d = w->site_local[site];
    if (already_old) {
      d.old_copy_objects += 1;
      d.old_copy_bytes += size;
    } else {
      d.copied_objects[age] += 1;
      d.copied_bytes[age] += size;
      if (target.promoted) {
        d.promoted_objects[age] += 1;
        d.promoted_bytes[age] += size;
      }
    }
    if (heap_->config().heap_device == DeviceKind::kNvm && heap_->InHeapArena(target.final)) {
      d.nvm_copy_bytes += size;
    }
    if (target.staged) {
      d.staged_bytes += size;
    }
  }

  // Scan the new copy's reference slots and push work.
  const size_t nslots = obj::RefSlotCount(target.physical, klass);
  if (nslots > 0) {
    const Address first_slot = obj::RefSlot(target.physical, klass, 0);
    dst_dev->Access(&w->clock,
                    SequentialRead(first_slot, static_cast<uint32_t>(8 * nslots)));
    Region* phys_region = heap_->RegionFor(target.physical);
    const bool track =
        phys_region != nullptr && phys_region->type() == RegionType::kWriteCache;
    for (size_t i = 0; i < nslots; ++i) {
      const Address fslot = obj::RefSlot(target.physical, klass, i);
      const Address fval = obj::LoadRef(fslot);
      if (fval == kNullAddress) {
        continue;
      }
      Region* fregion = heap_->RegionFor(fval);
      if (fregion == nullptr || !fregion->in_cset()) {
        continue;
      }
      if (options_.prefetch) {
        w->prefetch.Prefetch(fval);
        w->local.prefetches_issued += 1;
        if (hm && options_.prefetch_header_map) {
          header_map_->PrefetchProbe(fval, &w->hm_prefetch);
        }
      }
      if (track) {
        phys_region->AddPendingSlots(1);
      }
      queues_->queue(w->id).Push(fslot);
      w->clock.Advance(kQueueOpNs);
    }
  }
  return target.final;
}

void CopyCollector::AllocateTarget(Worker* w, size_t size, bool promote, CopyTarget* out) {
  out->promoted = promote;
  // Staging policy: the cache absorbs copies headed for NVM. Without the
  // generational heap every survivor lands on NVM, so non-promoted copies
  // stage; with it survivors stay in DRAM and only tenured copies stage
  // (their twins are NVM old regions — see WriteCache's twin_type_).
  const bool generational = options_.generational.enabled;
  const bool cache_eligible = generational ? promote : !promote;
  if (cache_eligible && write_cache_ != nullptr) {
    if (StageableThroughCache(size)) {
      WriteCache::Allocation a;
      if (write_cache_->Allocate(&w->cache_state, size, &a, gc_epoch_, &w->clock, &w->local)) {
        out->physical = a.physical;
        out->final = a.final;
        out->staged = true;
        return;
      }
      w->local.cache_overflow_bytes += size;
      if (w->cache_state.direct_fallback) {
        w->local.cache_fallback_bytes += size;
      }
    } else {
      // PS-style LAB policy: the object is copied outside the buffers the
      // cache stages, so its writes land on NVM directly (Section 4.4).
      w->local.cache_overflow_bytes += size;
    }
  }
  out->staged = false;
  while (true) {
    Region** target = out->promoted ? &w->old_target : &w->direct_survivor;
    const RegionType type = out->promoted ? RegionType::kOld : RegionType::kSurvivor;
    if (*target == nullptr) {
      *target = heap_->AllocateRegion(type);
      if (*target == nullptr) {
        // Only the generational survivor quota may run out mid-evacuation;
        // anything else is genuine heap exhaustion. Overflowing objects are
        // promoted early (straight to NVM old — no restaging through the
        // cache, the worker's pair state may already be degraded).
        NVMGC_CHECK(generational && type == RegionType::kSurvivor);
        w->local.survivor_overflow_bytes += size;
        out->promoted = true;
        continue;
      }
      if (type == RegionType::kSurvivor) {
        (*target)->set_gc_epoch(gc_epoch_);
      }
    }
    const Address addr = (*target)->Allocate(size);
    if (addr != kNullAddress) {
      out->physical = addr;
      out->final = addr;
      return;
    }
    *target = nullptr;  // Region full; it keeps its type and data.
  }
}

void CopyCollector::RetractTarget(Worker* w, const CopyTarget& target, size_t size) {
  if (target.staged) {
    WriteCache::Allocation a;
    a.physical = target.physical;
    a.cache_region = heap_->RegionFor(target.physical);
    write_cache_->Retract(a, size);
    return;
  }
  Region* region = heap_->RegionFor(target.physical);
  NVMGC_DCHECK(region != nullptr && region->top() == target.physical + size);
  region->set_top(target.physical);
  // Keep the worker's target pointer; it still owns the region.
  static_cast<void>(w);
}

void CopyCollector::TaintRegionOfSlot(Address slot) {
  Region* region = heap_->RegionFor(slot);
  if (region != nullptr && region->type() == RegionType::kWriteCache) {
    region->set_steal_tainted(true);
  }
}

void CopyCollector::PersistEpilogue(const std::vector<Address*>& roots, uint64_t* pause_end,
                                    GcCycleStats* cycle) {
  MemoryDevice* dev = heap_->heap_device();
  PersistOrderingLedger* ledger = &dev->persist();
  NVMGC_CHECK_MSG(ledger->enabled(),
                  "durability enabled but the persistence ledger is unconfigured — the Vm "
                  "must Configure() the heap device's ledger before the first pause");
  SimClock ctl;
  ctl.SetTime(*pause_end);
  PersistBatch batch(ledger);

  // Every region the commit must cover: tenured content in the heap arena.
  // Eden and prior survivors were all in the collection set and are already
  // freed, so "live" here is exactly survivor/old/humongous.
  std::vector<Region*> live;
  heap_->ForEachRegion([&](Region* r) {
    if (!heap_->InHeapArena(r->bottom())) {
      return;  // DRAM cache regions are staging only, never durable.
    }
    const RegionType t = r->type();
    if (t == RegionType::kSurvivor || t == RegionType::kOld ||
        t == RegionType::kHumongous || t == RegionType::kLarge) {
      live.push_back(r);
    }
  });

  // 1. New regions (not in the previous sealed commit): their content is
  // invisible to a rollback, so flush in place and fence. Regions already
  // fenced by the write-back (or async flushing) have no dirty lines left and
  // cost nothing here.
  for (Region* r : live) {
    if (!r->durable_committed() && r->used() > 0) {
      batch.FlushRange(r->bottom(), r->used(), &ctl);
    }
  }

  // 2. In-place updates to previously committed regions (remembered-set slot
  // rewrites during this pause, mutator writes to old objects since the last
  // pause) go through a content redo log instead of an in-place flush: a
  // crash before this pause's seal must still roll back to the previous
  // epoch's in-place content, a crash after it replays the log.
  const Address area = heap_->commit_area_base();
  std::vector<uint64_t> redo_offsets;
  for (Region* r : live) {
    if (r->durable_committed() && r->used() > 0) {
      ledger->CollectDirtyLines(r->bottom(), r->used(), &redo_offsets);
    }
  }
  const size_t redo_bytes = redo_offsets.size() * sizeof(RedoEntry);
  NVMGC_CHECK_MSG(redo_bytes <= commit_layout_.redo_slot_bytes,
                  "durability redo log overflow: raise DurabilityOptions::redo_log_bytes");
  std::vector<RedoEntry> redo(redo_offsets.size());
  const Address redo_base = area + commit_layout_.redo_offset(gc_epoch_);
  if (!redo.empty()) {
    for (size_t i = 0; i < redo_offsets.size(); ++i) {
      redo[i].arena_offset = redo_offsets[i];
      std::memcpy(redo[i].content,
                  reinterpret_cast<const void*>(heap_->heap_base() + redo_offsets[i]),
                  sizeof(redo[i].content));
    }
    dev->Access(&ctl, SequentialWrite(redo_base, static_cast<uint32_t>(redo_bytes)));
    std::memcpy(reinterpret_cast<void*>(redo_base), redo.data(), redo_bytes);
    batch.FlushRange(redo_base, redo_bytes, &ctl);
  }
  batch.Fence(&ctl);  // New-region content + redo log durable before any seal write.
  const uint64_t redo_checksum =
      Fnv1a(reinterpret_cast<const uint8_t*>(redo.data()), redo_bytes);

  // 3. Commit record, sealed durable-last. The slot alternates by epoch
  // parity, so the previous epoch's sealed record is never touched and one of
  // the two slots is always intact.
  const Address record_base = area + commit_layout_.record_offset(gc_epoch_);
  const Address seal_addr = area + commit_layout_.seal_offset(gc_epoch_);

  // 3a. Clear the stale seal (this slot last held epoch-2's commit) so a torn
  // payload below can never pair with a valid-looking seal.
  uint64_t seal_word = 0;
  dev->Access(&ctl, RandomWrite(seal_addr, sizeof(seal_word)));
  std::memcpy(reinterpret_cast<void*>(seal_addr), &seal_word, sizeof(seal_word));
  batch.FlushRange(seal_addr, sizeof(seal_word), &ctl);
  batch.Fence(&ctl);

  // 3b. Payload: header + region table + root offsets (checksummed).
  std::vector<CommitRegionEntry> entries;
  entries.reserve(live.size());
  for (Region* r : live) {
    CommitRegionEntry e;
    e.index = r->index();
    e.type = static_cast<uint32_t>(r->type());
    e.used_bytes = r->used();
    e.gc_epoch = r->gc_epoch();
    entries.push_back(e);
  }
  std::vector<uint64_t> root_offsets;
  root_offsets.reserve(roots.size());
  for (Address* root : roots) {
    const Address v = *root;
    root_offsets.push_back(heap_->InHeapArena(v) ? v - heap_->heap_base() : kNullRootOffset);
  }
  const size_t payload_bytes = sizeof(CommitHeader) +
                               entries.size() * sizeof(CommitRegionEntry) +
                               root_offsets.size() * sizeof(uint64_t);
  NVMGC_CHECK_MSG(payload_bytes + sizeof(uint64_t) <= commit_layout_.record_slot_bytes,
                  "durability commit record overflow: raise DurabilityOptions::commit_record_bytes");
  std::vector<uint8_t> payload(payload_bytes);
  uint8_t* cursor = payload.data() + sizeof(CommitHeader);
  std::memcpy(cursor, entries.data(), entries.size() * sizeof(CommitRegionEntry));
  cursor += entries.size() * sizeof(CommitRegionEntry);
  std::memcpy(cursor, root_offsets.data(), root_offsets.size() * sizeof(uint64_t));
  CommitHeader header;
  header.magic = kCommitMagic;
  header.epoch = gc_epoch_;
  header.commit_ns = ctl.now_ns();
  header.region_count = entries.size();
  header.root_count = root_offsets.size();
  header.redo_entry_count = redo.size();
  header.redo_checksum = redo_checksum;
  header.payload_checksum = Fnv1a(payload.data() + sizeof(CommitHeader),
                                  payload_bytes - sizeof(CommitHeader));
  std::memcpy(payload.data(), &header, sizeof(CommitHeader));
  dev->Access(&ctl, SequentialWrite(record_base, static_cast<uint32_t>(payload_bytes)));
  std::memcpy(reinterpret_cast<void*>(record_base), payload.data(), payload_bytes);
  batch.FlushRange(record_base, payload_bytes, &ctl);
  batch.Fence(&ctl);

  // 3c. The seal: one 8-byte durable write. Once this fence completes, the
  // commit is the recovery point.
  seal_word = SealValue(gc_epoch_);
  dev->Access(&ctl, RandomWrite(seal_addr, sizeof(seal_word)));
  std::memcpy(reinterpret_cast<void*>(seal_addr), &seal_word, sizeof(seal_word));
  batch.FlushRange(seal_addr, sizeof(seal_word), &ctl);
  batch.Fence(&ctl);
  commit_instants_.push_back(ctl.now_ns());

  // 4. The sealed commit supersedes the previous epoch, so the redo-logged
  // lines may now advance in place.
  for (Region* r : live) {
    if (r->durable_committed() && r->used() > 0) {
      batch.FlushRange(r->bottom(), r->used(), &ctl);
    }
  }
  batch.Fence(&ctl);

  // 5. Everything live is covered by the new seal: future in-place updates go
  // through the redo log, and regions freed while listed in the *previous*
  // commit (quarantined by Heap::FreeRegion) are safe to reuse.
  for (Region* r : live) {
    r->set_durable_committed(true);
  }
  heap_->ReleaseQuarantinedRegions();

  cycle->persist_flush_lines += batch.flush_lines();
  cycle->persist_fences += batch.fences();
  cycle->persist_ns += batch.persist_ns();
  cycle->persist_redo_entries += redo.size();
  cycle->persist_commit_bytes += payload_bytes;
  *pause_end = ctl.now_ns();
}

}  // namespace nvmgc
