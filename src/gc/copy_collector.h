// Parallel stop-the-world copying young collector (the engine shared by the
// G1-style and Parallel-Scavenge-style collectors).
//
// The collection set is every young region (eden + survivors of the previous
// cycle). Roots are the mutator handles plus each young region's remembered
// set. Workers run the classic copy-and-traverse loop over per-thread task
// queues with work stealing:
//
//   1. pop a reference slot, read the referent            (random read)
//   2. copy the referent to a survivor target             (sequential r/w)
//   3. install the forwarding pointer in the old header   (random write)
//      — or into the DRAM header map when enabled
//   4. update the slot with the new address               (random write)
//      and push the referents' own slots                  (sequential read)
//
// With the write cache enabled, step 2 copies into a DRAM cache region whose
// NVM twin provides the final address; the pause then ends with a write-only
// sub-phase that streams cache regions back to NVM (non-temporal stores when
// enabled), optionally overlapped via asynchronous region flushing.

#ifndef NVMGC_SRC_GC_COPY_COLLECTOR_H_
#define NVMGC_SRC_GC_COPY_COLLECTOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/header_map.h"
#include "src/core/write_cache.h"
#include "src/gc/gc_options.h"
#include "src/gc/gc_stats.h"
#include "src/gc/gc_thread_pool.h"
#include "src/gc/task_queue.h"
#include "src/heap/heap.h"
#include "src/nvm/prefetch_queue.h"
#include "src/nvm/sim_clock.h"
#include "src/obs/alloc_site.h"
#include "src/obs/device_timeline.h"
#include "src/obs/trace.h"
#include "src/recovery/commit_record.h"

namespace nvmgc {

class CopyCollector {
 public:
  CopyCollector(Heap* heap, const GcOptions& options, GcThreadPool* pool);
  virtual ~CopyCollector() = default;

  CopyCollector(const CopyCollector&) = delete;
  CopyCollector& operator=(const CopyCollector&) = delete;

  // Performs one stop-the-world collection. `roots` are host locations
  // holding heap addresses (mutator handles); `app_clock` is the simulated
  // application clock, advanced by the pause duration. `kind` selects the
  // collection set: kMinor evacuates the young generation only (the default,
  // and the only kind outside generational mode); kMajor additionally
  // evacuates old regions, using humongous/large-object reference slots as
  // extra roots since those spaces are never copied.
  GcCycleStats Collect(const std::vector<Address*>& roots, SimClock* app_clock,
                       GcKind kind = GcKind::kMinor);

  GcStats& stats() { return stats_; }
  const GcStats& stats() const { return stats_; }
  const GcOptions& options() const { return options_; }

  // Installs the per-pause tuning produced by the adaptive policy engine.
  // Only legal between pauses. Values are clamped to what this collector can
  // honor (thread count to the pool size, feature toggles to constructed
  // subsystems); capacity changes are applied to the write cache / header map
  // immediately — both are empty between pauses, so nothing is dropped.
  void ApplyTuning(const GcTuning& tuning);
  const GcTuning& tuning() const { return tuning_; }
  HeaderMap* header_map() { return header_map_.get(); }
  WriteCache* write_cache() { return write_cache_.get(); }
  virtual const char* name() const { return "copy"; }

  // Attaches the tracer that receives pause / phase / flush / steal events
  // (forwarded to the write cache and header map). The tracer must outlive
  // the collector; pass nullptr to detach.
  void set_tracer(GcTracer* tracer);
  GcTracer* tracer() { return tracer_; }

  // Attaches the heap-device bandwidth timeline, sampled at the end of every
  // pause (read phase, then write-back phase). Must outlive the collector;
  // pass nullptr to detach.
  void set_timeline(DeviceTimeline* timeline) { timeline_ = timeline; }
  DeviceTimeline* timeline() { return timeline_; }

  // Attaches the allocation-site profiler: workers then attribute every
  // evacuation-time copy back to the referent's birth-site tag (spare mark
  // bits) into worker-local deltas, merged and folded into the profiler on
  // the control thread at pause end. Must outlive the collector; pass nullptr
  // to detach.
  void set_site_profiler(AllocSiteProfiler* profiler) { site_profiler_ = profiler; }
  AllocSiteProfiler* site_profiler() { return site_profiler_; }

  // Durability mode: the simulated instants at which each pause's commit
  // record sealed (the seal fence completed). Crash sweeps use this to
  // predict which epoch recovery must land on for a given power-cut instant.
  const std::vector<uint64_t>& commit_instants() const { return commit_instants_; }

 protected:
  // Policy hook: may this object be staged through the write cache? PS copies
  // objects larger than a LAB fraction outside its buffers, which the cache
  // cannot absorb (Section 4.4).
  virtual bool StageableThroughCache(size_t size) const;

 private:
  struct Worker {
    uint32_t id = 0;
    SimClock clock;
    PrefetchQueue prefetch;
    // Separate queue for header-map probe lines so probe prefetches do not
    // evict object prefetches (Section 4.3's "extended" prefetching).
    PrefetchQueue hm_prefetch;
    // Header-map entries this worker installed (cleared at pause end).
    std::vector<uint32_t> hm_journal;
    GcCycleStats local;
    WriteCacheWorkerState cache_state;
    Region* direct_survivor = nullptr;
    Region* old_target = nullptr;
    // Per-site evacuation deltas (indexed by site id); only sized when a
    // profiler is attached.
    std::vector<SiteWorkerDelta> site_local;
  };

  struct CopyTarget {
    Address physical = kNullAddress;
    Address final = kNullAddress;
    bool staged = false;
    bool promoted = false;
  };

  bool HeaderMapActive() const;
  MemoryDevice* DeviceForAddress(Address a);
  // Copy count at which a survivor tenures: the tuned generational threshold
  // when the generational heap is on, HeapConfig::tenure_age otherwise.
  uint32_t TenureThreshold() const;

  // Durability-mode pause epilogue (control thread, after cset reclaim):
  // flushes new live regions, writes the in-place-update redo log, seals the
  // commit record durable-last, and releases the region quarantine. Advances
  // *pause_end by the persist cost and fills the cycle's persist_* fields.
  void PersistEpilogue(const std::vector<Address*>& roots, uint64_t* pause_end,
                       GcCycleStats* cycle);

  void DrainWorker(Worker* w);
  void ProcessSlot(Worker* w, Address slot);
  Address Evacuate(Worker* w, Address old_addr);
  void AllocateTarget(Worker* w, size_t size, bool promote, CopyTarget* out);
  void RetractTarget(Worker* w, const CopyTarget& target, size_t size);
  void TaintRegionOfSlot(Address slot);

  Heap* heap_;
  GcOptions options_;
  // The per-pause mutable view of options_: static runs keep DefaultGcTuning
  // forever; adaptive runs rewrite it between pauses via ApplyTuning.
  GcTuning tuning_;
  GcThreadPool* pool_;
  GcTracer* tracer_ = nullptr;
  DeviceTimeline* timeline_ = nullptr;
  AllocSiteProfiler* site_profiler_ = nullptr;

  std::unique_ptr<HeaderMap> header_map_;
  std::unique_ptr<WriteCache> write_cache_;
  std::unique_ptr<TaskQueueSet> queues_;
  std::vector<Worker> workers_;
  // Published per-worker simulated clocks for lockstep throttling: a worker
  // that runs far ahead of the slowest active worker in *simulated* time
  // parks until the others catch up (or go idle), so work stealing and the
  // bandwidth arbiter see a faithful parallel schedule even when the host
  // serializes the worker threads.
  std::unique_ptr<std::atomic<uint64_t>[]> published_clock_;
  std::atomic<uint32_t> idle_workers_{0};
  uint64_t gc_epoch_ = 0;
  GcKind kind_ = GcKind::kMinor;  // Kind of the pause currently running.
  CommitLayout commit_layout_;  // Durability mode only.
  std::vector<uint64_t> commit_instants_;
  uint64_t last_hm_installs_ = 0;
  uint64_t last_hm_overflows_ = 0;
  uint64_t last_hm_hits_ = 0;
  uint64_t last_hm_fault_probes_ = 0;
  GcStats stats_;
};

// Garbage-First-style configuration: regional survivor targets, software
// prefetching on by default.
class G1Collector : public CopyCollector {
 public:
  G1Collector(Heap* heap, const GcOptions& options, GcThreadPool* pool)
      : CopyCollector(heap, options, pool) {}
  const char* name() const override { return "g1"; }
};

// Parallel-Scavenge-style configuration: objects beyond the LAB fraction are
// copied directly and bypass the write cache.
class PsCollector : public CopyCollector {
 public:
  PsCollector(Heap* heap, const GcOptions& options, GcThreadPool* pool)
      : CopyCollector(heap, options, pool), lab_bytes_(options.lab_bytes) {}
  const char* name() const override { return "ps"; }

 protected:
  bool StageableThroughCache(size_t size) const override { return size <= lab_bytes_ / 4; }

 private:
  size_t lab_bytes_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_COPY_COLLECTOR_H_
