#include "src/gc/gc_options.h"

#include "src/util/check.h"

namespace nvmgc {

const char* CollectorKindName(CollectorKind kind) {
  switch (kind) {
    case CollectorKind::kG1:
      return "g1";
    case CollectorKind::kParallelScavenge:
      return "ps";
  }
  return "?";
}

std::string GcOptions::Validate() const {
  if (gc_threads == 0) {
    return "gc_threads is 0: the collector needs at least one worker "
           "(GcOptionsBuilder::GcThreads)";
  }
  if (!use_write_cache) {
    if (async_flush) {
      return "async_flush requires use_write_cache: asynchronous flushing streams "
             "DRAM cache regions back to NVM, which do not exist without the write "
             "cache (enable WriteCache() or drop AsyncFlush())";
    }
    if (use_non_temporal) {
      return "use_non_temporal requires use_write_cache: non-temporal stores only "
             "apply to the write-back of DRAM cache regions (enable WriteCache() or "
             "drop NonTemporal())";
    }
    if (write_cache_bytes != 0) {
      return "write_cache_bytes is set but use_write_cache is false: the capacity "
             "would silently be ignored (enable WriteCache() or drop "
             "WriteCacheBytes())";
    }
    if (unlimited_write_cache) {
      return "unlimited_write_cache is set but use_write_cache is false (enable "
             "WriteCache() or drop UnlimitedWriteCache())";
    }
  }
  if (use_write_cache && unlimited_write_cache && write_cache_bytes != 0) {
    return "unlimited_write_cache contradicts an explicit write_cache_bytes cap "
           "(pick one of UnlimitedWriteCache() / WriteCacheBytes())";
  }
  if (!use_header_map) {
    if (prefetch_header_map) {
      return "prefetch_header_map requires use_header_map: there are no probe lines "
             "to prefetch without the DRAM header map (enable HeaderMap() or drop "
             "PrefetchHeaderMap())";
    }
    if (header_map_bytes != 0) {
      return "header_map_bytes is set but use_header_map is false: the capacity "
             "would silently be ignored (enable HeaderMap() or drop "
             "HeaderMapBytes())";
    }
  }
  if (use_header_map && header_map_search_bound == 0) {
    return "header_map_search_bound is 0: every probe would overflow to the NVM "
           "header immediately (use HeaderMapSearchBound(n) with n >= 1)";
  }
  if (prefetch_header_map && !prefetch) {
    return "prefetch_header_map requires prefetch: header-map probe prefetching "
           "extends object prefetching, it cannot run alone (enable Prefetch())";
  }
  if (collector == CollectorKind::kParallelScavenge && lab_bytes == 0) {
    return "lab_bytes is 0 with the ParallelScavenge collector: every object would "
           "bypass the local allocation buffers (use LabBytes(n) with n > 0)";
  }
  if (!durability.enabled) {
    if (durability.flush_line_cost_ns != -1 || durability.fence_cost_ns != -1 ||
        durability.commit_record_bytes != 0 || durability.redo_log_bytes != 0) {
      return "durability sub-options are set but durability.enabled is false: they "
             "would silently be ignored (enable Durability() or drop the "
             "DurabilityOptions overrides)";
    }
  } else {
    if (durability.flush_line_cost_ns < -1) {
      return "durability.flush_line_cost_ns must be >= 0 (or -1 for the device "
             "profile default): a negative flush cost would run time backwards "
             "(fix it via Durability(DurabilityOptions))";
    }
    if (durability.fence_cost_ns < -1) {
      return "durability.fence_cost_ns must be >= 0 (or -1 for the device profile "
             "default): a negative fence cost would run time backwards (fix it via "
             "Durability(DurabilityOptions))";
    }
    if (durability.commit_record_bytes != 0) {
      if (durability.commit_record_bytes < 4096 ||
          durability.commit_record_bytes > 8 * 1024 * 1024) {
        return "durability.commit_record_bytes outside [4 KiB, 8 MiB]: the slot "
               "must hold the commit header plus the region-table snapshot and "
               "root offsets, and stay a small fraction of the heap (use 0 to "
               "derive it from the heap geometry, or pick a value in range via "
               "Durability(DurabilityOptions))";
      }
      if (durability.commit_record_bytes % 8 != 0) {
        return "durability.commit_record_bytes must be 8-byte aligned: the seal "
               "word sits in the slot's last 8 bytes (round it up via "
               "Durability(DurabilityOptions))";
      }
    }
    if (durability.redo_log_bytes != 0 && durability.redo_log_bytes < 4096) {
      return "durability.redo_log_bytes below 4 KiB: a single in-place update "
             "batch would overflow the redo slot (use 0 for the heap-derived "
             "default or raise it via Durability(DurabilityOptions))";
    }
  }
  if (!generational.enabled) {
    if (generational.young_gen_bytes != 0 ||
        generational.survivor_fraction != 0.125 ||
        generational.tenure_threshold != 3 ||
        generational.large_object_threshold != 0) {
      return "generational sub-options are set but generational.enabled is false: "
             "they would silently be ignored (enable Generational() or drop the "
             "GenerationalOptions overrides)";
    }
  } else {
    if (generational.survivor_fraction <= 0.0 ||
        generational.survivor_fraction > 0.5) {
      return "generational.survivor_fraction outside (0, 0.5]: the survivor space "
             "must exist and cannot exceed half the young generation (fix it via "
             "Generational(GenerationalOptions))";
    }
    if (generational.tenure_threshold < 1 || generational.tenure_threshold > 15) {
      return "generational.tenure_threshold outside [1, 15]: the object age field "
             "is 4 bits wide, and a threshold of 0 would tenure everything on its "
             "first copy (fix it via Generational(GenerationalOptions))";
    }
    if (generational.large_object_threshold != 0 &&
        generational.large_object_threshold < 1024) {
      return "generational.large_object_threshold below 1 KiB: ordinary small "
             "objects would flood the never-copied large-object space (use 0 for "
             "the region-derived default or raise it via "
             "Generational(GenerationalOptions))";
    }
  }
  if (adaptive.enabled) {
    if (adaptive.step_fraction <= 0.0 || adaptive.step_fraction > 1.0) {
      return "adaptive.step_fraction must be in (0, 1]: it is the multiplicative "
             "grow/shrink step for capacity knobs (fix it via "
             "AdaptivePolicy(AdaptivePolicyOptions))";
    }
    if (adaptive.min_gc_threads == 0) {
      return "adaptive.min_gc_threads is 0: the controller must keep at least one "
             "worker active (set min_gc_threads >= 1 via "
             "AdaptivePolicy(AdaptivePolicyOptions))";
    }
    if (adaptive.min_gc_threads > gc_threads) {
      return "adaptive.min_gc_threads exceeds gc_threads: the clamp range must fit "
             "inside the constructed pool (lower min_gc_threads or raise GcThreads "
             "before AdaptivePolicy(AdaptivePolicyOptions))";
    }
    if (adaptive.max_gc_threads != 0) {
      if (adaptive.max_gc_threads > gc_threads) {
        return "adaptive.max_gc_threads exceeds gc_threads: the pool only has "
               "gc_threads workers, the controller cannot add more (lower "
               "max_gc_threads or raise GcThreads before "
               "AdaptivePolicy(AdaptivePolicyOptions))";
      }
      if (adaptive.max_gc_threads < adaptive.min_gc_threads) {
        return "adaptive.max_gc_threads is below adaptive.min_gc_threads: the "
               "thread clamp range is empty (fix the range via "
               "AdaptivePolicy(AdaptivePolicyOptions))";
      }
    }
    if (adaptive.min_write_cache_bytes == 0) {
      return "adaptive.min_write_cache_bytes is 0: the controller could shrink the "
             "write cache to nothing and every survivor would stall on a capacity "
             "probe (set a positive floor via AdaptivePolicy(AdaptivePolicyOptions))";
    }
    if (adaptive.max_write_cache_bytes != 0 &&
        adaptive.min_write_cache_bytes > adaptive.max_write_cache_bytes) {
      return "adaptive.min_write_cache_bytes exceeds adaptive.max_write_cache_bytes: "
             "the write-cache clamp range is empty (fix the range via "
             "AdaptivePolicy(AdaptivePolicyOptions))";
    }
    if (use_write_cache && unlimited_write_cache) {
      return "adaptive.enabled contradicts unlimited_write_cache: the controller "
             "tunes a bounded capacity cap (drop UnlimitedWriteCache() or "
             "AdaptivePolicy())";
    }
  }
  return std::string();
}

GcTuning DefaultGcTuning(const GcOptions& options) {
  GcTuning t;
  t.active_gc_threads = options.gc_threads;
  t.write_cache_capacity_bytes = 0;  // Keep the constructed capacity.
  t.header_map_enabled =
      options.use_header_map && options.gc_threads >= options.header_map_min_threads;
  t.header_map_entries = 0;  // Keep the constructed table size.
  t.async_flush = options.async_flush;
  t.prefetch_window = 64;  // PrefetchQueue::kCapacity (full distance).
  t.tenure_threshold =
      options.generational.enabled ? options.generational.tenure_threshold : 0;
  t.eden_quota_regions = 0;  // Keep the constructed quota.
  return t;
}

GcOptionsBuilder& GcOptionsBuilder::Collector(CollectorKind kind) {
  o_.collector = kind;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::GcThreads(uint32_t threads) {
  o_.gc_threads = threads;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::WriteCache(bool on) {
  o_.use_write_cache = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::WriteCacheBytes(size_t bytes) {
  o_.write_cache_bytes = bytes;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::UnlimitedWriteCache(bool on) {
  o_.unlimited_write_cache = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::HeaderMap(bool on) {
  o_.use_header_map = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::HeaderMapBytes(size_t bytes) {
  o_.header_map_bytes = bytes;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::HeaderMapMinThreads(uint32_t threads) {
  o_.header_map_min_threads = threads;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::HeaderMapSearchBound(uint32_t bound) {
  o_.header_map_search_bound = bound;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::NonTemporal(bool on) {
  o_.use_non_temporal = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::AsyncFlush(bool on) {
  o_.async_flush = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::Prefetch(bool on) {
  o_.prefetch = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::PrefetchHeaderMap(bool on) {
  o_.prefetch_header_map = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::LabBytes(size_t bytes) {
  o_.lab_bytes = bytes;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::AutoDegrade(bool on) {
  o_.auto_degrade = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::AdaptivePolicy(bool on) {
  o_.adaptive.enabled = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::AdaptivePolicy(const AdaptivePolicyOptions& adaptive) {
  o_.adaptive = adaptive;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::Durability(bool on) {
  o_.durability.enabled = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::Durability(const DurabilityOptions& durability) {
  o_.durability = durability;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::Generational(bool on) {
  o_.generational.enabled = on;
  return *this;
}
GcOptionsBuilder& GcOptionsBuilder::Generational(const GenerationalOptions& generational) {
  o_.generational = generational;
  return *this;
}

GcOptions GcOptionsBuilder::Build() const {
  const std::string error = o_.Validate();
  NVMGC_CHECK_MSG(error.empty(), error.c_str());
  return o_;
}

GcOptions VanillaOptions(CollectorKind collector, uint32_t threads) {
  return GcOptionsBuilder()
      .Collector(collector)
      .GcThreads(threads)
      .Prefetch(collector == CollectorKind::kG1)  // G1 ships with prefetch; PS does not.
      .Build();
}

GcOptions WriteCacheOptions(CollectorKind collector, uint32_t threads) {
  return GcOptionsBuilder(VanillaOptions(collector, threads)).WriteCache().Build();
}

GcOptions AllOptimizationsOptions(CollectorKind collector, uint32_t threads) {
  return GcOptionsBuilder(WriteCacheOptions(collector, threads))
      .HeaderMap()
      .NonTemporal()
      .Prefetch()
      .PrefetchHeaderMap()
      .Build();
}

GcOptions AdaptiveOptions(CollectorKind collector, uint32_t threads) {
  return GcOptionsBuilder(AllOptimizationsOptions(collector, threads))
      .AsyncFlush()
      .AdaptivePolicy()
      .Build();
}

GcOptions DurableOptions(CollectorKind collector, uint32_t threads) {
  return GcOptionsBuilder(AllOptimizationsOptions(collector, threads)).Durability().Build();
}

GcOptions GenerationalGcOptions(CollectorKind collector, uint32_t threads) {
  return GcOptionsBuilder(AllOptimizationsOptions(collector, threads))
      .Generational()
      .Build();
}

}  // namespace nvmgc
