// Collector configuration (the analog of -XX: flags).
//
// Prefer GcOptionsBuilder (chainable, validated at Build()) or the presets
// below over poking fields directly: the Vm constructor rejects invalid
// combinations with GcOptions::Validate()'s actionable error message, so a
// misconfiguration fails fast instead of silently running the wrong collector.

#ifndef NVMGC_SRC_GC_GC_OPTIONS_H_
#define NVMGC_SRC_GC_GC_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace nvmgc {

enum class CollectorKind : uint8_t {
  kG1,                // Garbage-First-style regional young GC (default).
  kParallelScavenge,  // PS-style young GC with local allocation buffers.
};

const char* CollectorKindName(CollectorKind kind);

struct GcOptions {
  CollectorKind collector = CollectorKind::kG1;
  uint32_t gc_threads = 8;

  // --- Paper optimizations ---
  bool use_write_cache = false;
  // Write-cache capacity in bytes; 0 means the paper default of heap/32.
  size_t write_cache_bytes = 0;
  // Remove the cap entirely (Figure 11 "sync-unlimited").
  bool unlimited_write_cache = false;

  bool use_header_map = false;
  // Header-map capacity in bytes; 0 means the paper default of heap/32.
  size_t header_map_bytes = 0;
  // The header map only pays off once reads are bandwidth-starved; below this
  // thread count it is bypassed (paper default 8).
  uint32_t header_map_min_threads = 8;
  // Bounded linear-probe window (Algorithm 1's SEARCH_BOUND).
  uint32_t header_map_search_bound = 16;

  // Non-temporal (streaming) stores for write-cache write-back.
  bool use_non_temporal = false;
  // Flush cache regions asynchronously as they become ready (Section 4.2).
  bool async_flush = false;

  // Software prefetching on work-stack push. Vanilla G1 already does this;
  // vanilla PS does not (Section 4.4).
  bool prefetch = true;
  // Extend prefetching to header-map probe lines.
  bool prefetch_header_map = false;

  // PS only: local allocation buffer size; objects larger than lab_bytes/4
  // are copied directly (PS's "irregular" copies that bypass LABs).
  size_t lab_bytes = 64 * 1024;

  // --- Robustness ---
  // When the attached FaultInjector reports a sustained bandwidth-throttle
  // window at pause start (or write-back start), run the pause degraded:
  // asynchronous flushing and non-temporal stores are disabled until a pause
  // begins outside the window.
  bool auto_degrade = true;

  // Returns an empty string when the configuration is coherent, otherwise an
  // actionable description of the first problem found (what is wrong and
  // which setter/flag fixes it). Checked by the Vm constructor.
  std::string Validate() const;
  bool valid() const { return Validate().empty(); }
};

// Chainable construction of a validated GcOptions. Build() check-fails with
// the Validate() message on an incoherent combination; start from a preset
// with the one-argument constructor to tweak a known-good base.
class GcOptionsBuilder {
 public:
  GcOptionsBuilder() = default;
  explicit GcOptionsBuilder(GcOptions base) : o_(base) {}

  GcOptionsBuilder& Collector(CollectorKind kind);
  GcOptionsBuilder& GcThreads(uint32_t threads);
  GcOptionsBuilder& WriteCache(bool on = true);
  GcOptionsBuilder& WriteCacheBytes(size_t bytes);
  GcOptionsBuilder& UnlimitedWriteCache(bool on = true);
  GcOptionsBuilder& HeaderMap(bool on = true);
  GcOptionsBuilder& HeaderMapBytes(size_t bytes);
  GcOptionsBuilder& HeaderMapMinThreads(uint32_t threads);
  GcOptionsBuilder& HeaderMapSearchBound(uint32_t bound);
  GcOptionsBuilder& NonTemporal(bool on = true);
  GcOptionsBuilder& AsyncFlush(bool on = true);
  GcOptionsBuilder& Prefetch(bool on = true);
  GcOptionsBuilder& PrefetchHeaderMap(bool on = true);
  GcOptionsBuilder& LabBytes(size_t bytes);
  GcOptionsBuilder& AutoDegrade(bool on = true);

  // Validates and returns the options; dies with the Validate() message on an
  // invalid combination.
  GcOptions Build() const;
  // Escape hatch for tests that exercise the invalid paths deliberately.
  GcOptions BuildUnchecked() const { return o_; }

 private:
  GcOptions o_;
};

// --- Presets matching the paper's evaluated configurations ---

// "vanilla": unmodified collector (G1 ships with prefetch; PS does not).
GcOptions VanillaOptions(CollectorKind collector, uint32_t threads);

// "+writecache": write cache only.
GcOptions WriteCacheOptions(CollectorKind collector, uint32_t threads);

// "+all": write cache + header map + non-temporal write-back + prefetching
// (extended to the header map).
GcOptions AllOptimizationsOptions(CollectorKind collector, uint32_t threads);

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_GC_OPTIONS_H_
