// Collector configuration (the analog of -XX: flags).
//
// Prefer GcOptionsBuilder (chainable, validated at Build()) or the presets
// below over poking fields directly: the Vm constructor rejects invalid
// combinations with GcOptions::Validate()'s actionable error message, so a
// misconfiguration fails fast instead of silently running the wrong collector.

#ifndef NVMGC_SRC_GC_GC_OPTIONS_H_
#define NVMGC_SRC_GC_GC_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace nvmgc {

enum class CollectorKind : uint8_t {
  kG1,                // Garbage-First-style regional young GC (default).
  kParallelScavenge,  // PS-style young GC with local allocation buffers.
};

const char* CollectorKindName(CollectorKind kind);

// Configuration of the adaptive policy engine (src/policy/): when enabled, a
// per-pause feedback controller retunes the NVM optimizations between pauses
// (write-cache capacity, header-map gating/size, async flushing, prefetch
// distance, GC thread count) from the previous pauses' measured behavior.
// Every adapted value stays inside the clamp ranges below, which Validate()
// checks against the static configuration.
struct AdaptivePolicyOptions {
  bool enabled = false;
  // Pauses observed before the first decision (the signal history warms up).
  uint32_t warmup_pauses = 1;
  // Minimum pauses between two consecutive changes of the same knob.
  uint32_t cooldown_pauses = 1;
  // Multiplicative step for capacity knobs, in (0, 1]: grow multiplies by
  // (1 + step), shrink by (1 - step).
  double step_fraction = 0.5;
  // Clamp range for the adapted GC thread count. max 0 = gc_threads (the
  // pool size, which is also the hard upper bound).
  uint32_t min_gc_threads = 1;
  uint32_t max_gc_threads = 0;
  // Clamp range for the adapted write-cache capacity. max 0 = derived from
  // the heap geometry (the DRAM cache arena, capped at heap/8).
  size_t min_write_cache_bytes = 256 * 1024;
  size_t max_write_cache_bytes = 0;
};

// Configuration of durability mode (src/nvm/persist_ledger.h +
// src/recovery/): when enabled, the write cache's sequential write-back
// becomes a persistence batch (flush per drained run, fence at batch
// boundaries) and every pause ends with a durable-last commit record, so a
// crash at any simulated instant rolls back to the last sealed commit.
struct DurabilityOptions {
  bool enabled = false;
  // Simulated CLWB / SFENCE costs; -1 = take them from the heap device's
  // DeviceProfile (flush_line_ns / fence_ns). Explicit values >= 0 override
  // for sensitivity studies.
  int64_t flush_line_cost_ns = -1;
  int64_t fence_cost_ns = -1;
  // Commit-record slot size in bytes; 0 = derived from the heap geometry
  // (region-table snapshot + root set, page aligned). Explicit values are
  // bounds-checked by Validate().
  size_t commit_record_bytes = 0;
  // Redo-log slot size in bytes; 0 = max(heap/32, 256 KiB). Holds the
  // content redo entries for in-place updates to previously committed
  // regions (see DESIGN.md §8).
  size_t redo_log_bytes = 0;
};

// Configuration of the generational NVM-tiered heap (src/heap + src/gc):
// when enabled, allocation goes to a DRAM-resident young generation (eden +
// survivor regions served from the DRAM arena), survivors age in place and
// are tenured into NVM old regions — through the write cache when it is on —
// once they reach tenure_threshold copies. Objects at or above
// large_object_threshold bypass the young generation entirely and are placed
// in the NVM large-object space, never copied. Minor collections evacuate
// only the young generation (the old→young remembered set provides the extra
// roots); major collections also evacuate old regions. The young generation
// is deliberately volatile: like the DRAM header map, it holds no committed
// state, so durability's commit protocol covers only the NVM generations.
struct GenerationalOptions {
  bool enabled = false;
  // Young-generation budget in bytes (eden + survivor); 0 = heap/4, matching
  // the paper's 16 GiB heap / 4 GiB young space. Rounded to whole regions and
  // bounds-checked against the heap geometry by the Vm constructor.
  size_t young_gen_bytes = 0;
  // Fraction of the young generation reserved for survivor regions, in
  // (0, 0.5]. Survivor overflow promotes early (counted, never fails).
  double survivor_fraction = 0.125;
  // Copy count after which a survivor is tenured to NVM, in [1, 15] (the age
  // field is 4 bits wide). The adaptive policy retunes this per pause.
  uint32_t tenure_threshold = 3;
  // Objects of at least this many bytes go straight to the NVM large-object
  // space; 0 = region_bytes/8, derived from the heap geometry by the Vm.
  size_t large_object_threshold = 0;
};

struct GcOptions {
  CollectorKind collector = CollectorKind::kG1;
  uint32_t gc_threads = 8;

  // --- Paper optimizations ---
  bool use_write_cache = false;
  // Write-cache capacity in bytes; 0 means the paper default of heap/32.
  size_t write_cache_bytes = 0;
  // Remove the cap entirely (Figure 11 "sync-unlimited").
  bool unlimited_write_cache = false;

  bool use_header_map = false;
  // Header-map capacity in bytes; 0 means the paper default of heap/32.
  size_t header_map_bytes = 0;
  // The header map only pays off once reads are bandwidth-starved; below this
  // thread count it is bypassed (paper default 8).
  uint32_t header_map_min_threads = 8;
  // Bounded linear-probe window (Algorithm 1's SEARCH_BOUND).
  uint32_t header_map_search_bound = 16;

  // Non-temporal (streaming) stores for write-cache write-back.
  bool use_non_temporal = false;
  // Flush cache regions asynchronously as they become ready (Section 4.2).
  bool async_flush = false;

  // Software prefetching on work-stack push. Vanilla G1 already does this;
  // vanilla PS does not (Section 4.4).
  bool prefetch = true;
  // Extend prefetching to header-map probe lines.
  bool prefetch_header_map = false;

  // PS only: local allocation buffer size; objects larger than lab_bytes/4
  // are copied directly (PS's "irregular" copies that bypass LABs).
  size_t lab_bytes = 64 * 1024;

  // --- Robustness ---
  // When the attached FaultInjector reports a sustained bandwidth-throttle
  // window at pause start (or write-back start), run the pause degraded:
  // asynchronous flushing and non-temporal stores are disabled until a pause
  // begins outside the window.
  bool auto_degrade = true;

  // --- Durability ---
  // Opt-in crash consistency for the NVM heap (see DurabilityOptions).
  DurabilityOptions durability;

  // --- Adaptive policy ---
  // Per-pause feedback tuning of the knobs above (see AdaptivePolicyOptions).
  AdaptivePolicyOptions adaptive;

  // --- Generational heap ---
  // DRAM young generation with age-based tenuring into the NVM old
  // generation (see GenerationalOptions).
  GenerationalOptions generational;

  // Returns an empty string when the configuration is coherent, otherwise an
  // actionable description of the first problem found (what is wrong and
  // which setter/flag fixes it). Checked by the Vm constructor.
  std::string Validate() const;
  bool valid() const { return Validate().empty(); }
};

// The per-pause mutable subset of GcOptions. The collector consumes a GcTuning
// at the start of every pause; between pauses the policy engine (src/policy/)
// rewrites it within the AdaptivePolicyOptions clamp ranges. DefaultGcTuning
// reproduces the static configuration exactly, so a Vm without the adaptive
// policy behaves as if the tuning layer did not exist.
struct GcTuning {
  // Workers participating in the next pause, in [1, gc_threads]. Inactive
  // workers stay parked; their queues receive no seed work.
  uint32_t active_gc_threads = 1;
  // Write-cache capacity cap; 0 = keep the constructed capacity.
  size_t write_cache_capacity_bytes = 0;
  // Overrides the static >= header_map_min_threads gate.
  bool header_map_enabled = false;
  // Header-map table size (entries, power of two); 0 = keep the current size.
  size_t header_map_entries = 0;
  bool async_flush = false;
  // Outstanding-prefetch budget (the prefetch distance), clamped to
  // [1, PrefetchQueue::kCapacity].
  uint32_t prefetch_window = 64;
  // Generational only: survivor age at which the next copy tenures to NVM,
  // in [1, 15]. Ignored (0) when the generational heap is off.
  uint32_t tenure_threshold = 0;
  // Generational only: eden region quota for the next mutator epoch; 0 =
  // keep the constructed quota. The policy engine grows/shrinks it with the
  // measured minor-survival rate.
  uint32_t eden_quota_regions = 0;
};

GcTuning DefaultGcTuning(const GcOptions& options);

// Chainable construction of a validated GcOptions. Build() check-fails with
// the Validate() message on an incoherent combination; start from a preset
// with the one-argument constructor to tweak a known-good base.
class GcOptionsBuilder {
 public:
  GcOptionsBuilder() = default;
  explicit GcOptionsBuilder(GcOptions base) : o_(base) {}

  GcOptionsBuilder& Collector(CollectorKind kind);
  GcOptionsBuilder& GcThreads(uint32_t threads);
  GcOptionsBuilder& WriteCache(bool on = true);
  GcOptionsBuilder& WriteCacheBytes(size_t bytes);
  GcOptionsBuilder& UnlimitedWriteCache(bool on = true);
  GcOptionsBuilder& HeaderMap(bool on = true);
  GcOptionsBuilder& HeaderMapBytes(size_t bytes);
  GcOptionsBuilder& HeaderMapMinThreads(uint32_t threads);
  GcOptionsBuilder& HeaderMapSearchBound(uint32_t bound);
  GcOptionsBuilder& NonTemporal(bool on = true);
  GcOptionsBuilder& AsyncFlush(bool on = true);
  GcOptionsBuilder& Prefetch(bool on = true);
  GcOptionsBuilder& PrefetchHeaderMap(bool on = true);
  GcOptionsBuilder& LabBytes(size_t bytes);
  GcOptionsBuilder& AutoDegrade(bool on = true);
  GcOptionsBuilder& AdaptivePolicy(bool on = true);
  GcOptionsBuilder& AdaptivePolicy(const AdaptivePolicyOptions& adaptive);
  GcOptionsBuilder& Durability(bool on = true);
  GcOptionsBuilder& Durability(const DurabilityOptions& durability);
  GcOptionsBuilder& Generational(bool on = true);
  GcOptionsBuilder& Generational(const GenerationalOptions& generational);

  // Validates and returns the options; dies with the Validate() message on an
  // invalid combination.
  GcOptions Build() const;
  // Escape hatch for tests that exercise the invalid paths deliberately.
  GcOptions BuildUnchecked() const { return o_; }

 private:
  GcOptions o_;
};

// --- Presets matching the paper's evaluated configurations ---

// "vanilla": unmodified collector (G1 ships with prefetch; PS does not).
GcOptions VanillaOptions(CollectorKind collector, uint32_t threads);

// "+writecache": write cache only.
GcOptions WriteCacheOptions(CollectorKind collector, uint32_t threads);

// "+all": write cache + header map + non-temporal write-back + prefetching
// (extended to the header map).
GcOptions AllOptimizationsOptions(CollectorKind collector, uint32_t threads);

// "adaptive": +all with asynchronous flushing, governed by the policy engine
// — every optimization starts enabled and the controller retunes from there.
GcOptions AdaptiveOptions(CollectorKind collector, uint32_t threads);

// "durable": +all with durability mode — crash-consistent write-back and
// per-pause commit records. Requires an NVM-backed tenured heap (the Vm
// constructor enforces this, since the check needs the HeapConfig).
GcOptions DurableOptions(CollectorKind collector, uint32_t threads);

// "generational": +all with the DRAM young generation — most objects die in
// DRAM and never touch NVM; only tenured survivors and large objects do.
GcOptions GenerationalGcOptions(CollectorKind collector, uint32_t threads);

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_GC_OPTIONS_H_
