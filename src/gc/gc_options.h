// Collector configuration (the analog of -XX: flags).

#ifndef NVMGC_SRC_GC_GC_OPTIONS_H_
#define NVMGC_SRC_GC_GC_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace nvmgc {

enum class CollectorKind : uint8_t {
  kG1,                // Garbage-First-style regional young GC (default).
  kParallelScavenge,  // PS-style young GC with local allocation buffers.
};

struct GcOptions {
  CollectorKind collector = CollectorKind::kG1;
  uint32_t gc_threads = 8;

  // --- Paper optimizations ---
  bool use_write_cache = false;
  // Write-cache capacity in bytes; 0 means the paper default of heap/32.
  size_t write_cache_bytes = 0;
  // Remove the cap entirely (Figure 11 "sync-unlimited").
  bool unlimited_write_cache = false;

  bool use_header_map = false;
  // Header-map capacity in bytes; 0 means the paper default of heap/32.
  size_t header_map_bytes = 0;
  // The header map only pays off once reads are bandwidth-starved; below this
  // thread count it is bypassed (paper default 8).
  uint32_t header_map_min_threads = 8;
  // Bounded linear-probe window (Algorithm 1's SEARCH_BOUND).
  uint32_t header_map_search_bound = 16;

  // Non-temporal (streaming) stores for write-cache write-back.
  bool use_non_temporal = false;
  // Flush cache regions asynchronously as they become ready (Section 4.2).
  bool async_flush = false;

  // Software prefetching on work-stack push. Vanilla G1 already does this;
  // vanilla PS does not (Section 4.4).
  bool prefetch = true;
  // Extend prefetching to header-map probe lines.
  bool prefetch_header_map = false;

  // PS only: local allocation buffer size; objects larger than lab_bytes/4
  // are copied directly (PS's "irregular" copies that bypass LABs).
  size_t lab_bytes = 64 * 1024;

  // --- Robustness ---
  // When the attached FaultInjector reports a sustained bandwidth-throttle
  // window at pause start (or write-back start), run the pause degraded:
  // asynchronous flushing and non-temporal stores are disabled until a pause
  // begins outside the window.
  bool auto_degrade = true;
};

// --- Presets matching the paper's evaluated configurations ---

// "vanilla": unmodified collector.
inline GcOptions VanillaOptions(CollectorKind collector, uint32_t threads) {
  GcOptions o;
  o.collector = collector;
  o.gc_threads = threads;
  o.prefetch = collector == CollectorKind::kG1;  // G1 ships with prefetch; PS does not.
  return o;
}

// "+writecache": write cache only.
inline GcOptions WriteCacheOptions(CollectorKind collector, uint32_t threads) {
  GcOptions o = VanillaOptions(collector, threads);
  o.use_write_cache = true;
  return o;
}

// "+all": write cache + header map + non-temporal write-back + prefetching
// (extended to the header map).
inline GcOptions AllOptimizationsOptions(CollectorKind collector, uint32_t threads) {
  GcOptions o = WriteCacheOptions(collector, threads);
  o.use_header_map = true;
  o.use_non_temporal = true;
  o.prefetch = true;
  o.prefetch_header_map = true;
  return o;
}

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_GC_OPTIONS_H_
