// Per-collection and accumulated GC statistics.

#ifndef NVMGC_SRC_GC_GC_STATS_H_
#define NVMGC_SRC_GC_GC_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nvmgc {

// Cycle kind (generational mode). Non-generational runs only perform minor
// collections over the all-young heap.
enum class GcKind : uint8_t {
  kMinor,  // Young generation only (eden + aged survivors).
  kMajor,  // Young + old regions; large-object/humongous spaces are marked in place.
};

inline const char* GcKindName(GcKind kind) {
  return kind == GcKind::kMajor ? "major" : "minor";
}

struct GcCycleStats {
  uint64_t start_ns = 0;  // Simulated time at which the pause began.
  uint64_t pause_ns = 0;
  uint64_t read_phase_ns = 0;       // Copy-and-traverse (read-mostly) sub-phase.
  uint64_t writeback_phase_ns = 0;  // Write-only sub-phase (write cache only).

  // Generational split (is_major stays 0 outside generational mode).
  uint64_t is_major = 0;                 // 1 when this cycle was a major collection.
  uint64_t young_cset_bytes = 0;         // Young-region bytes in the collection set.
  uint64_t old_cset_bytes = 0;           // Old-region bytes in the cset (major only).
  uint64_t survivor_overflow_bytes = 0;  // Promoted early: DRAM survivor space full.
  uint64_t tenure_threshold_used = 0;    // Threshold in effect for this cycle.

  uint64_t objects_copied = 0;
  uint64_t bytes_copied = 0;
  uint64_t objects_promoted = 0;
  uint64_t bytes_promoted = 0;
  uint64_t refs_processed = 0;
  uint64_t steals = 0;

  // Write cache.
  uint64_t cache_bytes_staged = 0;      // Bytes copied through the DRAM cache.
  uint64_t cache_overflow_bytes = 0;    // Copied directly to NVM (cap hit).
  uint64_t regions_flushed_sync = 0;
  uint64_t regions_flushed_async = 0;
  uint64_t regions_steal_tainted = 0;

  // Header map.
  uint64_t header_map_installs = 0;   // Forwardings kept in DRAM.
  uint64_t header_map_overflows = 0;  // Fell back to NVM header CAS.
  uint64_t header_map_hits = 0;       // Lookups resolved from DRAM.

  // Fault injection & graceful degradation.
  uint64_t cache_fault_denials = 0;     // Pair allocations denied by the injector.
  uint64_t cache_fallback_workers = 0;  // Workers degraded to direct-to-NVM copying.
  uint64_t cache_fallback_bytes = 0;    // Bytes copied directly while degraded.
  uint64_t degraded_mode = 0;           // 1 when async/NT stores were disabled.
  uint64_t header_map_fault_probes = 0;  // HM probes charged under an active fault.

  // Device traffic deltas over the pause (heap device).
  uint64_t device_read_bytes = 0;
  uint64_t device_write_bytes = 0;

  // Prefetching.
  uint64_t prefetches_issued = 0;
  uint64_t prefetch_hits = 0;

  // Durability (all zero outside durability mode).
  uint64_t persist_flush_lines = 0;   // 64B lines CLWB'd during the pause.
  uint64_t persist_fences = 0;        // Store fences issued.
  uint64_t persist_ns = 0;            // Simulated time in flushes + fences.
  uint64_t persist_redo_entries = 0;  // In-place-update redo log entries.
  uint64_t persist_commit_bytes = 0;  // Commit record payload bytes written.
};

class GcStats {
 public:
  void Add(const GcCycleStats& cycle) { cycles_.push_back(cycle); }

  const std::vector<GcCycleStats>& cycles() const { return cycles_; }
  size_t gc_count() const { return cycles_.size(); }

  // Cycles that ran with async flushing and non-temporal stores disabled
  // because the fault injector reported sustained throttling.
  uint64_t degraded_cycles() const {
    uint64_t n = 0;
    for (const auto& c : cycles_) {
      n += c.degraded_mode;
    }
    return n;
  }

  uint64_t total_pause_ns() const {
    uint64_t total = 0;
    for (const auto& c : cycles_) {
      total += c.pause_ns;
    }
    return total;
  }

  GcCycleStats Totals() const {
    GcCycleStats t;
    for (const auto& c : cycles_) {
      t.pause_ns += c.pause_ns;
      t.read_phase_ns += c.read_phase_ns;
      t.writeback_phase_ns += c.writeback_phase_ns;
      t.is_major += c.is_major;
      t.young_cset_bytes += c.young_cset_bytes;
      t.old_cset_bytes += c.old_cset_bytes;
      t.survivor_overflow_bytes += c.survivor_overflow_bytes;
      // tenure_threshold_used is a per-cycle value, not a sum; keep the last.
      t.tenure_threshold_used = c.tenure_threshold_used;
      t.objects_copied += c.objects_copied;
      t.bytes_copied += c.bytes_copied;
      t.objects_promoted += c.objects_promoted;
      t.bytes_promoted += c.bytes_promoted;
      t.refs_processed += c.refs_processed;
      t.steals += c.steals;
      t.cache_bytes_staged += c.cache_bytes_staged;
      t.cache_overflow_bytes += c.cache_overflow_bytes;
      t.regions_flushed_sync += c.regions_flushed_sync;
      t.regions_flushed_async += c.regions_flushed_async;
      t.regions_steal_tainted += c.regions_steal_tainted;
      t.header_map_installs += c.header_map_installs;
      t.header_map_overflows += c.header_map_overflows;
      t.header_map_hits += c.header_map_hits;
      t.cache_fault_denials += c.cache_fault_denials;
      t.cache_fallback_workers += c.cache_fallback_workers;
      t.cache_fallback_bytes += c.cache_fallback_bytes;
      t.degraded_mode += c.degraded_mode;
      t.header_map_fault_probes += c.header_map_fault_probes;
      t.device_read_bytes += c.device_read_bytes;
      t.device_write_bytes += c.device_write_bytes;
      t.prefetches_issued += c.prefetches_issued;
      t.prefetch_hits += c.prefetch_hits;
      t.persist_flush_lines += c.persist_flush_lines;
      t.persist_fences += c.persist_fences;
      t.persist_ns += c.persist_ns;
      t.persist_redo_entries += c.persist_redo_entries;
      t.persist_commit_bytes += c.persist_commit_bytes;
    }
    return t;
  }

 private:
  std::vector<GcCycleStats> cycles_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_GC_STATS_H_
