#include "src/gc/gc_thread_pool.h"

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace nvmgc {

GcThreadPool::GcThreadPool(uint32_t threads) {
  NVMGC_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

GcThreadPool::~GcThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void GcThreadPool::RunParallel(const std::function<void(uint32_t)>& fn) {
  RunParallel(thread_count(), fn);
}

void GcThreadPool::RunParallel(uint32_t active_threads,
                               const std::function<void(uint32_t)>& fn) {
  NVMGC_CHECK(active_threads >= 1 && active_threads <= thread_count());
  std::unique_lock<std::mutex> lock(mu_);
  NVMGC_CHECK(remaining_ == 0);
  ++parallel_phases_;
  current_fn_ = &fn;
  active_threads_ = active_threads;
  remaining_ = thread_count();
  ++epoch_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  current_fn_ = nullptr;
}

void GcThreadPool::WorkerLoop(uint32_t id) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(uint32_t)>* fn = nullptr;
    uint32_t active = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) {
        return;
      }
      seen_epoch = epoch_;
      fn = current_fn_;
      active = active_threads_;
    }
    if (id < active) {
      (*fn)(id);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void GcThreadPool::ExportMetrics(MetricsRegistry* metrics) const {
  metrics->SetGauge("gc.pool.threads", thread_count());
  metrics->SetGauge("gc.pool.parallel_phases", parallel_phases_);
}

}  // namespace nvmgc
