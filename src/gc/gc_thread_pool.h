// Persistent pool of GC worker threads.
//
// Workers park between pauses; RunParallel dispatches one parallel phase and
// blocks until every worker finishes. Logical GC thread counts larger than
// the host's core count are fine: each worker's contribution to the pause is
// its own simulated time, so only semantics (not host scheduling) matter.

#ifndef NVMGC_SRC_GC_GC_THREAD_POOL_H_
#define NVMGC_SRC_GC_GC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvmgc {

class MetricsRegistry;

class GcThreadPool {
 public:
  explicit GcThreadPool(uint32_t threads);
  ~GcThreadPool();

  GcThreadPool(const GcThreadPool&) = delete;
  GcThreadPool& operator=(const GcThreadPool&) = delete;

  // Runs fn(worker_id) on every worker; returns when all have completed.
  void RunParallel(const std::function<void(uint32_t)>& fn);

  // Runs fn(worker_id) on workers [0, active_threads); the rest wake, skip
  // the phase, and re-park. The adaptive policy uses this to shrink the
  // effective GC parallelism without tearing down pool threads.
  void RunParallel(uint32_t active_threads, const std::function<void(uint32_t)>& fn);

  uint32_t thread_count() const { return static_cast<uint32_t>(workers_.size()); }

  // Parallel phases dispatched over the pool's lifetime (a pause runs one or
  // two: copy-and-traverse, plus write-back/clear when those features are on).
  uint64_t parallel_phases() const { return parallel_phases_; }

  // Publishes pool gauges ("gc.pool.threads", "gc.pool.parallel_phases").
  void ExportMetrics(MetricsRegistry* metrics) const;

 private:
  void WorkerLoop(uint32_t id);

  uint64_t parallel_phases_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* current_fn_ = nullptr;
  uint32_t active_threads_ = 0;  // Workers with id >= this skip the phase.
  uint64_t epoch_ = 0;
  uint32_t remaining_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_GC_THREAD_POOL_H_
