#include "src/gc/old_reclaim.h"

#include <unordered_set>

#include "src/util/check.h"

namespace nvmgc {

OldReclaimStats ReclaimDeadOldRegions(Heap* heap, const std::vector<Address*>& roots) {
  OldReclaimStats stats;

  // --- Mark: flag every old-like region that holds a reachable object. ---
  std::unordered_set<Address> visited;
  std::vector<Address> stack;
  for (Address* root : roots) {
    if (*root != kNullAddress) {
      stack.push_back(*root);
    }
  }
  std::vector<bool> old_live(heap->config().heap_regions, false);
  while (!stack.empty()) {
    const Address a = stack.back();
    stack.pop_back();
    if (!visited.insert(a).second) {
      continue;
    }
    Region* region = heap->RegionFor(a);
    NVMGC_DCHECK(region != nullptr && region->type() != RegionType::kFree);
    if (region->is_old_like()) {
      old_live[region->index()] = true;
    }
    const Klass& klass = heap->klasses().Get(obj::KlassIdOf(a));
    const size_t nslots = obj::RefSlotCount(a, klass);
    for (size_t i = 0; i < nslots; ++i) {
      const Address value = obj::LoadRef(obj::RefSlot(a, klass, i));
      if (value != kNullAddress) {
        stack.push_back(value);
      }
    }
  }

  // --- Sweep: free wholly-dead old/humongous regions. ---
  std::vector<Region*> freed;
  heap->ForEachRegion([&](Region* region) {
    if (!region->is_old_like()) {
      return;
    }
    if (old_live[region->index()]) {
      ++stats.regions_kept;
      return;
    }
    freed.push_back(region);
  });
  for (Region* region : freed) {
    heap->FreeRegion(region);
    ++stats.regions_freed;
  }

  // --- Purge stale remembered-set entries sourced from freed regions. ---
  if (!freed.empty()) {
    heap->ForEachRegion([&](Region* region) {
      if (!region->is_young()) {
        return;
      }
      std::vector<Address> kept;
      for (Address slot : region->remset().Take()) {
        const Region* source = heap->RegionFor(slot);
        if (source != nullptr && source->type() == RegionType::kFree) {
          ++stats.remset_entries_purged;
          continue;
        }
        kept.push_back(slot);
      }
      for (Address slot : kept) {
        region->remset().Add(slot);
      }
    });
  }
  return stats;
}

}  // namespace nvmgc
