// Old-generation region reclamation — the analog of G1's concurrent cycle.
//
// The paper's workloads never trigger full GCs; long-lived data is promoted
// to the old generation and eventually reclaimed by concurrent marking plus
// (rare) mixed collections. This module provides the minimal equivalent the
// young collector needs to run indefinitely: a mark pass over the reachable
// graph (modeled as concurrent, i.e. not charged to the mutator clock) that
// frees old/humongous regions containing no live objects, and purges stale
// remembered-set entries whose source slots lived in freed regions.
//
// Region-granularity reclamation is effective here for the same reason G1's
// region design is: objects promoted together die together.

#ifndef NVMGC_SRC_GC_OLD_RECLAIM_H_
#define NVMGC_SRC_GC_OLD_RECLAIM_H_

#include <cstdint>
#include <vector>

#include "src/heap/heap.h"

namespace nvmgc {

struct OldReclaimStats {
  uint32_t regions_freed = 0;
  uint32_t regions_kept = 0;
  uint64_t remset_entries_purged = 0;
};

// Marks from `roots` (host slots holding heap addresses) and frees old and
// humongous regions with no live object. Must run at a safepoint (no mutator
// or GC activity).
OldReclaimStats ReclaimDeadOldRegions(Heap* heap, const std::vector<Address*>& roots);

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_OLD_RECLAIM_H_
