// Per-worker work-stealing task queues.
//
// A task is the address of a reference slot awaiting processing (exactly what
// HotSpot's GC task queues hold during evacuation). The owner pushes/pops at
// the bottom (LIFO — the depth-first order both the paper's Figure 4 flush
// tracking and G1's prefetching strategy depend on); thieves steal from the
// top (FIFO).
//
// A mutex-per-queue implementation is deliberately chosen over Chase-Lev:
// queue operation *cost* is modeled on the simulated clock, so host-side
// lock overhead does not distort results, while the semantics (LIFO owner
// order, FIFO stealing) stay exact and easy to verify.

#ifndef NVMGC_SRC_GC_TASK_QUEUE_H_
#define NVMGC_SRC_GC_TASK_QUEUE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/heap/object.h"

namespace nvmgc {

class TaskQueue {
 public:
  TaskQueue() = default;

  void Push(Address slot) {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(slot);
  }

  bool Pop(Address* slot) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) {
      return false;
    }
    *slot = tasks_.back();
    tasks_.pop_back();
    return true;
  }

  bool Steal(Address* slot) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) {
      return false;
    }
    *slot = tasks_.front();
    tasks_.pop_front();
    return true;
  }

  // Steals up to half of this queue (oldest first) into `out`; returns the
  // number stolen. Batching steals keeps thieves from ping-ponging one task
  // at a time when a victim holds a deep subtree.
  size_t StealHalf(std::vector<Address>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t take = (tasks_.size() + 1) / 2;
    for (size_t i = 0; i < take; ++i) {
      out->push_back(tasks_.front());
      tasks_.pop_front();
    }
    return take;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<Address> tasks_;
};

// The set of queues for one parallel phase, with steal-victim selection.
class TaskQueueSet {
 public:
  explicit TaskQueueSet(uint32_t n) : queues_(n) {}

  TaskQueue& queue(uint32_t i) { return queues_[i]; }
  uint32_t size() const { return static_cast<uint32_t>(queues_.size()); }

  // Attempts to steal a task for `thief`, round-robining over victims.
  // Returns the victim id through `victim_out` on success.
  bool StealFor(uint32_t thief, Address* slot, uint32_t* victim_out) {
    const uint32_t n = size();
    for (uint32_t i = 1; i < n; ++i) {
      const uint32_t victim = (thief + i) % n;
      if (queues_[victim].Steal(slot)) {
        *victim_out = victim;
        return true;
      }
    }
    return false;
  }

  // Steal-half variant: moves up to half of the first non-empty victim's
  // queue into `out`.
  size_t StealHalfFor(uint32_t thief, std::vector<Address>* out, uint32_t* victim_out) {
    const uint32_t n = size();
    for (uint32_t i = 1; i < n; ++i) {
      const uint32_t victim = (thief + i) % n;
      const size_t stolen = queues_[victim].StealHalf(out);
      if (stolen > 0) {
        *victim_out = victim;
        return stolen;
      }
    }
    return 0;
  }

  bool AllEmpty() const {
    for (const auto& q : queues_) {
      if (!q.empty()) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<TaskQueue> queues_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_GC_TASK_QUEUE_H_
