#include "src/heap/heap.h"

#include <algorithm>

#include "src/util/check.h"

namespace nvmgc {

Heap::Heap(const HeapConfig& config, MemoryDevice* heap_device, MemoryDevice* dram_device)
    : config_(config), heap_device_(heap_device), dram_device_(dram_device) {
  NVMGC_CHECK(heap_device_ != nullptr && dram_device_ != nullptr);
  NVMGC_CHECK(heap_device_->kind() == config.heap_device);
  NVMGC_CHECK(dram_device_->kind() == DeviceKind::kDram);
  NVMGC_CHECK(config.region_bytes >= 4096 && (config.region_bytes % 8) == 0);
  NVMGC_CHECK(config.eden_regions <= config.heap_regions);
  if (config.generational) {
    // The whole young generation is DRAM-resident; the arena must hold it.
    NVMGC_CHECK(config.dram_cache_regions >= config.eden_regions + config.survivor_regions);
  }
  eden_quota_ = config.eden_regions;

  heap_bytes_ = config.region_bytes * config.heap_regions;
  cache_bytes_ = config.region_bytes * config.dram_cache_regions;
  // The commit area (durability mode) lives past the regions in the same
  // arena so its writes are charged to the same device and tracked by the
  // same persistence ledger; InHeapArena()/RegionFor() exclude it.
  heap_arena_ = std::make_unique<uint8_t[]>(heap_bytes_ + config.commit_area_bytes);
  cache_arena_ = std::make_unique<uint8_t[]>(cache_bytes_ == 0 ? 1 : cache_bytes_);
  heap_base_ = reinterpret_cast<Address>(heap_arena_.get());
  cache_base_ = reinterpret_cast<Address>(cache_arena_.get());

  heap_region_count_ = config.heap_regions;
  cache_region_count_ = config.dram_cache_regions;
  heap_regions_ = std::make_unique<Region[]>(heap_region_count_);
  for (uint32_t i = 0; i < heap_region_count_; ++i) {
    heap_regions_[i].Initialize(i, heap_base_ + i * config.region_bytes, config.region_bytes,
                                config.heap_device);
    free_heap_regions_.push_back(heap_region_count_ - 1 - i);
  }
  cache_regions_ = std::make_unique<Region[]>(cache_region_count_ == 0 ? 1 : cache_region_count_);
  for (uint32_t i = 0; i < cache_region_count_; ++i) {
    cache_regions_[i].Initialize(i, cache_base_ + i * config.region_bytes, config.region_bytes,
                                 DeviceKind::kDram);
    free_cache_regions_.push_back(cache_region_count_ - 1 - i);
  }

  // Bind each device's per-region access heatmap to the arena it serves, so
  // every access charged from now on is attributed to its heap region.
  // AddArena (not Configure) keeps co-tenant arenas intact when the heap
  // device is shared across Vms (fleet mode).
  heap_device_->heatmap().AddArena(heap_base_, config.region_bytes, heap_region_count_);
  if (cache_region_count_ > 0) {
    dram_device_->heatmap().AddArena(cache_base_, config.region_bytes, cache_region_count_);
  }
}

Region* Heap::AllocateFromFreeList(std::vector<uint32_t>* free_list, Region* regions,
                                   RegionType type) {
  if (free_list->empty()) {
    return nullptr;
  }
  const uint32_t idx = free_list->back();
  free_list->pop_back();
  Region* region = &regions[idx];
  region->ResetForType(type);
  return region;
}

Region* Heap::AllocateRegion(RegionType type) {
  NVMGC_CHECK(type != RegionType::kFree && type != RegionType::kWriteCache);
  std::lock_guard<std::mutex> lock(mu_);
  if (type == RegionType::kEden && eden_count_ >= eden_quota_) {
    return nullptr;  // Eden quota exhausted: caller should trigger a young GC.
  }
  if (config_.generational && type == RegionType::kSurvivor &&
      survivor_count_ >= config_.survivor_regions) {
    return nullptr;  // Survivor quota exhausted: the collector promotes early.
  }
  // In generational mode the whole young generation lives in the DRAM arena;
  // eden_on_dram covers the non-generational "young-gen-dram" configuration.
  const bool from_dram_arena =
      config_.generational ? type == RegionType::kEden || type == RegionType::kSurvivor
                           : type == RegionType::kEden && config_.eden_on_dram;
  Region* region =
      from_dram_arena ? AllocateFromFreeList(&free_cache_regions_, cache_regions_.get(), type)
                      : AllocateFromFreeList(&free_heap_regions_, heap_regions_.get(), type);
  if (region != nullptr && type == RegionType::kEden) {
    ++eden_count_;
  }
  if (region != nullptr && config_.generational && type == RegionType::kSurvivor) {
    ++survivor_count_;
  }
  return region;
}

Address Heap::AllocateLarge(size_t bytes) {
  NVMGC_CHECK(bytes <= config_.region_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  if (los_current_ != nullptr) {
    const Address a = los_current_->Allocate(bytes);
    if (a != kNullAddress) {
      return a;
    }
  }
  Region* region =
      AllocateFromFreeList(&free_heap_regions_, heap_regions_.get(), RegionType::kLarge);
  if (region == nullptr) {
    return kNullAddress;
  }
  los_current_ = region;
  return region->Allocate(bytes);
}

void Heap::set_eden_quota(uint32_t regions) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t max_quota = config_.generational
                                 ? config_.dram_cache_regions - config_.survivor_regions
                                 : config_.heap_regions;
  eden_quota_ = std::max<uint32_t>(1, std::min(regions, max_quota));
}

uint32_t Heap::eden_quota() const {
  std::lock_guard<std::mutex> lock(mu_);
  return eden_quota_;
}

Region* Heap::AllocateHumongousRegion() {
  std::lock_guard<std::mutex> lock(mu_);
  return AllocateFromFreeList(&free_heap_regions_, heap_regions_.get(), RegionType::kHumongous);
}

void Heap::FreeRegion(Region* region) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool in_heap_pool =
      region >= heap_regions_.get() && region < heap_regions_.get() + heap_region_count_;
  const bool in_cache_pool = cache_region_count_ > 0 && region >= cache_regions_.get() &&
                             region < cache_regions_.get() + cache_region_count_;
  NVMGC_CHECK(in_heap_pool || in_cache_pool);
  if (region->type() == RegionType::kEden) {
    NVMGC_CHECK(eden_count_ > 0);
    --eden_count_;
  }
  if (config_.generational && region->type() == RegionType::kSurvivor && in_cache_pool) {
    NVMGC_CHECK(survivor_count_ > 0);
    --survivor_count_;
  }
  if (region == los_current_) {
    los_current_ = nullptr;  // Reclaimed large-object region: reopen lazily.
  }
  const bool quarantine = durable_quarantine_ && in_heap_pool && region->durable_committed();
  region->ResetForType(RegionType::kFree);
  if (quarantine) {
    // Still live in the latest sealed commit: park it until the next commit
    // seals (ReleaseQuarantinedRegions).
    quarantined_heap_regions_.push_back(region->index());
  } else if (in_heap_pool) {
    free_heap_regions_.push_back(region->index());
  } else {
    free_cache_regions_.push_back(region->index());
  }
}

void Heap::ReleaseQuarantinedRegions() {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t idx : quarantined_heap_regions_) {
    free_heap_regions_.push_back(idx);
  }
  quarantined_heap_regions_.clear();
}

size_t Heap::quarantined_region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_heap_regions_.size();
}

Region* Heap::RestoreRegion(uint32_t index, RegionType type, size_t used_bytes,
                            uint64_t gc_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  NVMGC_CHECK(index < heap_region_count_);
  NVMGC_CHECK(used_bytes <= config_.region_bytes);
  auto it = std::find(free_heap_regions_.begin(), free_heap_regions_.end(), index);
  NVMGC_CHECK_MSG(it != free_heap_regions_.end(),
                  "RestoreRegion: region is not free (restored twice?)");
  free_heap_regions_.erase(it);
  Region* region = &heap_regions_[index];
  region->ResetForType(type);
  region->set_top(region->bottom() + used_bytes);
  region->set_gc_epoch(gc_epoch);
  return region;
}

Region* Heap::AllocateCacheRegion() {
  std::lock_guard<std::mutex> lock(mu_);
  return AllocateFromFreeList(&free_cache_regions_, cache_regions_.get(), RegionType::kWriteCache);
}

void Heap::FreeCacheRegion(Region* region) {
  std::lock_guard<std::mutex> lock(mu_);
  NVMGC_CHECK(region >= cache_regions_.get() &&
              region < cache_regions_.get() + cache_region_count_);
  region->ResetForType(RegionType::kFree);
  free_cache_regions_.push_back(region->index());
}

Region* Heap::RegionFor(Address a) {
  if (InHeapArena(a)) {
    return &heap_regions_[(a - heap_base_) / config_.region_bytes];
  }
  if (InCacheArena(a)) {
    return &cache_regions_[(a - cache_base_) / config_.region_bytes];
  }
  return nullptr;
}

const Region* Heap::RegionFor(Address a) const {
  return const_cast<Heap*>(this)->RegionFor(a);
}

void Heap::ForEachRegion(const std::function<void(Region*)>& fn) {
  for (uint32_t i = 0; i < heap_region_count_; ++i) {
    fn(&heap_regions_[i]);
  }
  for (uint32_t i = 0; i < cache_region_count_; ++i) {
    fn(&cache_regions_[i]);
  }
}

std::vector<Region*> Heap::RegionsOfType(RegionType type) {
  std::vector<Region*> out;
  ForEachRegion([&](Region* region) {
    if (region->type() == type) {
      out.push_back(region);
    }
  });
  return out;
}

uint32_t Heap::CountRegions(RegionType type) const {
  uint32_t count = 0;
  for (uint32_t i = 0; i < heap_region_count_; ++i) {
    if (heap_regions_[i].type() == type) {
      ++count;
    }
  }
  for (uint32_t i = 0; i < cache_region_count_; ++i) {
    if (cache_regions_[i].type() == type) {
      ++count;
    }
  }
  return count;
}

uint32_t Heap::free_region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(free_heap_regions_.size());
}

uint32_t Heap::free_cache_region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(free_cache_regions_.size());
}

void Heap::ForEachObjectInRegion(Region* region,
                                 const std::function<void(Address)>& fn) const {
  Address cursor = region->bottom();
  const Address top = region->top();
  while (cursor < top) {
    fn(cursor);
    const size_t size = obj::SizeOfAt(cursor, klasses_);
    NVMGC_CHECK(size >= obj::kHeaderBytes);
    cursor += size;
  }
  NVMGC_CHECK(cursor == top);
}

}  // namespace nvmgc
