// The managed heap: region arenas on simulated devices.
//
// The heap owns two arenas:
//   * the Java heap arena, placed on the device selected by HeapConfig
//     (the analog of -XX:AllocateHeapAt pointing at an Optane DAX mount), and
//   * a DRAM staging arena used for write-cache regions.
// Bytes physically live in host RAM either way; timing comes from the
// MemoryDevice each arena is bound to.

#ifndef NVMGC_SRC_HEAP_HEAP_H_
#define NVMGC_SRC_HEAP_HEAP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/heap/klass.h"
#include "src/heap/object.h"
#include "src/heap/region.h"
#include "src/nvm/memory_device.h"

namespace nvmgc {

struct HeapConfig {
  size_t region_bytes = 256 * 1024;
  uint32_t heap_regions = 1024;      // G1 default is 2048 regions; scaled down.
  uint32_t dram_cache_regions = 96;  // Staging arena for the write cache.
  uint32_t eden_regions = 192;       // Eden quota; exhaustion triggers young GC.
  uint32_t tenure_age = 3;           // Copies survived before promotion to old.
  DeviceKind heap_device = DeviceKind::kNvm;
  // Serve eden regions from the DRAM arena ("young-gen-dram" comparison
  // configuration in Figure 5: extra DRAM used for allocation, GC copies
  // DRAM eden -> NVM survivors). Requires dram_cache_regions >= eden_regions.
  bool eden_on_dram = false;
  // Generational NVM-tiered mode: the whole young generation (eden AND
  // survivor regions) is served from the DRAM arena; only tenured old,
  // humongous and large-object regions live on the heap device. The Vm
  // derives these fields from GcOptions::generational and grows
  // dram_cache_regions by the young-generation budget.
  bool generational = false;
  uint32_t survivor_regions = 0;  // DRAM survivor quota (generational only).
  // Extra bytes appended to the heap arena past the regions, reserved for the
  // durability mode's commit records and redo logs (the Vm sizes it from
  // DurabilityOptions; 0 outside durability mode). RegionFor() returns
  // nullptr inside this area.
  size_t commit_area_bytes = 0;
};

class Heap {
 public:
  Heap(const HeapConfig& config, MemoryDevice* heap_device, MemoryDevice* dram_device);

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Region allocation from the heap arena. Returns nullptr when the arena (or,
  // for eden, the eden quota) is exhausted.
  Region* AllocateRegion(RegionType type);
  void FreeRegion(Region* region);

  // --- Durability support ---
  // When the quarantine is armed, FreeRegion() of a durable-committed heap
  // region parks it instead of returning it to the free list: its content is
  // still live in the latest sealed commit, so reusing (and re-fencing) it
  // before the next commit seals would corrupt rollback. The collector calls
  // ReleaseQuarantinedRegions() right after sealing each commit.
  void set_durable_quarantine(bool on) { durable_quarantine_ = on; }
  void ReleaseQuarantinedRegions();
  size_t quarantined_region_count() const;

  // Recovery-time restore: re-materializes heap region `index` as `type` with
  // `used_bytes` of content and the given survivor age, pulling it off the
  // free list. Only valid on a freshly constructed heap.
  Region* RestoreRegion(uint32_t index, RegionType type, size_t used_bytes, uint64_t gc_epoch);

  // Allocates a whole region for one over-sized object; returns the object
  // address (header initialized by the caller).
  Region* AllocateHumongousRegion();

  // Large-object space (generational mode): bump-allocates `bytes` into the
  // current kLarge region on the heap device, opening a new one when needed.
  // Large objects are tenured in place and never copied. Returns kNullAddress
  // when the heap arena is exhausted.
  Address AllocateLarge(size_t bytes);

  // Generational mode: retune the eden quota between pauses (the adaptive
  // policy's kEdenQuota knob). Clamped to [1, regions the DRAM arena can
  // actually serve]; never shrinks below the eden regions currently in use.
  void set_eden_quota(uint32_t regions);
  uint32_t eden_quota() const;

  // DRAM staging arena (write-cache regions). Returns nullptr when exhausted.
  Region* AllocateCacheRegion();
  void FreeCacheRegion(Region* region);

  // Region lookup for any address in either arena; nullptr if foreign.
  Region* RegionFor(Address a);
  const Region* RegionFor(Address a) const;

  bool InHeapArena(Address a) const {
    return a >= heap_base_ && a < heap_base_ + heap_bytes_;
  }
  bool InCacheArena(Address a) const {
    return a >= cache_base_ && a < cache_base_ + cache_bytes_;
  }

  MemoryDevice* DeviceFor(const Region* region) {
    return region->device() == heap_device_->kind() ? heap_device_ : dram_device_;
  }
  MemoryDevice* heap_device() { return heap_device_; }
  MemoryDevice* dram_device() { return dram_device_; }

  KlassTable& klasses() { return klasses_; }
  const KlassTable& klasses() const { return klasses_; }

  const HeapConfig& config() const { return config_; }
  size_t region_bytes() const { return config_.region_bytes; }

  // Iteration and statistics.
  void ForEachRegion(const std::function<void(Region*)>& fn);
  std::vector<Region*> RegionsOfType(RegionType type);
  uint32_t CountRegions(RegionType type) const;
  uint32_t free_region_count() const;
  uint32_t free_cache_region_count() const;
  uint32_t eden_region_count() const { return eden_count_; }
  uint32_t survivor_region_count() const { return survivor_count_; }

  // Walks all (parsable) objects in a region bottom..top.
  void ForEachObjectInRegion(Region* region, const std::function<void(Address)>& fn) const;

  // Total bytes of DRAM currently lent to staging (for cost accounting).
  size_t cache_arena_bytes() const { return cache_bytes_; }
  size_t heap_arena_bytes() const { return heap_bytes_; }
  // Arena origin: lets tests compare object placement across Vm instances by
  // arena offset rather than host address.
  Address heap_base() const { return heap_base_; }
  // The durability commit area appended past the regions (empty when
  // commit_area_bytes is 0).
  Address commit_area_base() const { return heap_base_ + heap_bytes_; }
  size_t commit_area_bytes() const { return config_.commit_area_bytes; }

 private:
  Region* AllocateFromFreeList(std::vector<uint32_t>* free_list, Region* regions,
                               RegionType type);

  HeapConfig config_;
  MemoryDevice* heap_device_;
  MemoryDevice* dram_device_;
  KlassTable klasses_;

  std::unique_ptr<uint8_t[]> heap_arena_;
  std::unique_ptr<uint8_t[]> cache_arena_;
  Address heap_base_ = 0;
  Address cache_base_ = 0;
  size_t heap_bytes_ = 0;
  size_t cache_bytes_ = 0;

  mutable std::mutex mu_;
  std::unique_ptr<Region[]> heap_regions_;
  std::unique_ptr<Region[]> cache_regions_;
  uint32_t heap_region_count_ = 0;
  uint32_t cache_region_count_ = 0;
  std::vector<uint32_t> free_heap_regions_;
  std::vector<uint32_t> free_cache_regions_;
  uint32_t eden_count_ = 0;
  uint32_t eden_quota_ = 0;      // Runtime-tunable copy of config.eden_regions.
  uint32_t survivor_count_ = 0;  // DRAM survivor regions in use (generational).
  Region* los_current_ = nullptr;  // Open large-object region (generational).
  bool durable_quarantine_ = false;
  std::vector<uint32_t> quarantined_heap_regions_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_HEAP_HEAP_H_
