#include "src/heap/heap_verifier.h"

#include <cstdio>
#include <unordered_set>
#include <vector>

namespace nvmgc {

namespace {

std::string Describe(const char* what, Address a) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s (address 0x%zx)", what, static_cast<size_t>(a));
  return buf;
}

}  // namespace

bool HeapVerifier::CheckObject(Address a, std::string* error) const {
  const Region* region = heap_->RegionFor(a);
  if (region == nullptr) {
    *error = Describe("reference outside heap arenas", a);
    return false;
  }
  if (region->type() == RegionType::kFree) {
    *error = Describe("reference into a free region", a);
    return false;
  }
  if (region->type() == RegionType::kWriteCache) {
    *error = Describe("reference into a write-cache staging region outside GC", a);
    return false;
  }
  if (a + obj::kHeaderBytes > region->top()) {
    *error = Describe("reference beyond region top", a);
    return false;
  }
  const uint64_t mark = obj::LoadMark(a);
  if (obj::IsForwarded(mark)) {
    *error = Describe("object header still holds a forwarding pointer", a);
    return false;
  }
  if (!heap_->klasses().IsValid(obj::KlassIdOf(a))) {
    *error = Describe("invalid klass id", a);
    return false;
  }
  return true;
}

bool HeapVerifier::VerifyReachable(const std::vector<Address*>& roots, std::string* error) {
  std::unordered_set<Address> visited;
  std::vector<Address> stack;
  for (Address* root : roots) {
    if (*root != kNullAddress) {
      stack.push_back(*root);
    }
  }
  while (!stack.empty()) {
    const Address a = stack.back();
    stack.pop_back();
    if (!visited.insert(a).second) {
      continue;
    }
    if (!CheckObject(a, error)) {
      return false;
    }
    const Klass& klass = heap_->klasses().Get(obj::KlassIdOf(a));
    const size_t nslots = obj::RefSlotCount(a, klass);
    for (size_t i = 0; i < nslots; ++i) {
      const Address value = obj::LoadRef(obj::RefSlot(a, klass, i));
      if (value != kNullAddress) {
        stack.push_back(value);
      }
    }
  }
  return true;
}

bool HeapVerifier::VerifyParsability(std::string* error) {
  bool ok = true;
  heap_->ForEachRegion([&](Region* region) {
    if (!ok) {
      return;
    }
    if (region->type() == RegionType::kFree || region->type() == RegionType::kWriteCache) {
      return;
    }
    Address cursor = region->bottom();
    const Address top = region->top();
    while (cursor < top) {
      if (!heap_->klasses().IsValid(obj::KlassIdOf(cursor))) {
        *error = Describe("unparsable object (bad klass id)", cursor);
        ok = false;
        return;
      }
      cursor += obj::SizeOfAt(cursor, heap_->klasses());
    }
    if (cursor != top) {
      *error = Describe("region does not parse exactly to top", region->bottom());
      ok = false;
    }
  });
  return ok;
}

bool HeapVerifier::VerifyRemsetCompleteness(std::string* error) {
  // Snapshot remembered sets (Take + re-Add to avoid draining them for real).
  bool ok = true;
  std::unordered_set<Address> recorded;
  std::vector<std::pair<Region*, std::vector<Address>>> snapshots;
  heap_->ForEachRegion([&](Region* region) {
    if (region->is_young()) {
      auto slots = region->remset().Take();
      for (Address s : slots) {
        recorded.insert(s);
      }
      snapshots.emplace_back(region, std::move(slots));
    }
  });
  for (auto& [region, slots] : snapshots) {
    for (Address s : slots) {
      region->remset().Add(s);
    }
  }

  heap_->ForEachRegion([&](Region* region) {
    if (!ok || !region->is_old_like()) {
      return;
    }
    heap_->ForEachObjectInRegion(region, [&](Address a) {
      if (!ok) {
        return;
      }
      const Klass& klass = heap_->klasses().Get(obj::KlassIdOf(a));
      const size_t nslots = obj::RefSlotCount(a, klass);
      for (size_t i = 0; i < nslots; ++i) {
        const Address slot = obj::RefSlot(a, klass, i);
        const Address value = obj::LoadRef(slot);
        if (value == kNullAddress) {
          continue;
        }
        const Region* target = heap_->RegionFor(value);
        if (target != nullptr && target->is_young() && recorded.count(slot) == 0) {
          *error = Describe("old->young edge missing from remembered set", slot);
          ok = false;
          return;
        }
      }
    });
  });
  return ok;
}

}  // namespace nvmgc
