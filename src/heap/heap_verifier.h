// Heap invariant checking (used by tests and debug runs).

#ifndef NVMGC_SRC_HEAP_HEAP_VERIFIER_H_
#define NVMGC_SRC_HEAP_HEAP_VERIFIER_H_

#include <string>
#include <vector>

#include "src/heap/heap.h"

namespace nvmgc {

class HeapVerifier {
 public:
  explicit HeapVerifier(Heap* heap) : heap_(heap) {}

  // Walks the object graph from `roots` (host slots holding heap addresses)
  // and checks that every reachable reference points at a valid, parsable,
  // non-forwarded object in a live region. Returns true on success; on
  // failure `error` describes the first violation.
  bool VerifyReachable(const std::vector<Address*>& roots, std::string* error);

  // Checks that every used (non-free, non-cache) region parses bottom..top
  // into a sequence of valid objects.
  bool VerifyParsability(std::string* error);

  // Checks remembered-set completeness: every reference slot in an old or
  // humongous region that points into a young region must be recorded in that
  // young region's remembered set.
  bool VerifyRemsetCompleteness(std::string* error);

 private:
  bool CheckObject(Address a, std::string* error) const;

  Heap* heap_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_HEAP_HEAP_VERIFIER_H_
