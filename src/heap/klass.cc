#include "src/heap/klass.h"

#include "src/util/check.h"

namespace nvmgc {

KlassTable::KlassTable() = default;

KlassId KlassTable::Register(Klass klass) {
  klass.id = static_cast<KlassId>(klasses_.size());
  klasses_.push_back(std::move(klass));
  return klasses_.back().id;
}

KlassId KlassTable::RegisterRegular(std::string name, uint16_t ref_fields,
                                    uint32_t payload_bytes) {
  Klass k;
  k.name = std::move(name);
  k.kind = KlassKind::kRegular;
  k.ref_fields = ref_fields;
  k.payload_bytes = payload_bytes;
  return Register(std::move(k));
}

KlassId KlassTable::RegisterRefArray(std::string name) {
  Klass k;
  k.name = std::move(name);
  k.kind = KlassKind::kRefArray;
  return Register(std::move(k));
}

KlassId KlassTable::RegisterByteArray(std::string name) {
  Klass k;
  k.name = std::move(name);
  k.kind = KlassKind::kByteArray;
  return Register(std::move(k));
}

const Klass& KlassTable::Get(KlassId id) const {
  NVMGC_CHECK(id < klasses_.size());
  return klasses_[id];
}

}  // namespace nvmgc
