// Class descriptors for the managed object model.
//
// A Klass describes the layout of a managed object the way a HotSpot klass
// does: how many reference slots it has, how many primitive payload bytes
// follow them, or — for arrays — the element kind. Workloads register their
// klasses once; objects store only a 32-bit klass id.

#ifndef NVMGC_SRC_HEAP_KLASS_H_
#define NVMGC_SRC_HEAP_KLASS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nvmgc {

using KlassId = uint32_t;

enum class KlassKind : uint8_t {
  kRegular,    // Fixed layout: ref fields then primitive payload.
  kRefArray,   // Variable-length array of references.
  kByteArray,  // Variable-length array of primitive bytes.
};

struct Klass {
  KlassId id = 0;
  std::string name;
  KlassKind kind = KlassKind::kRegular;
  uint16_t ref_fields = 0;      // kRegular only.
  uint32_t payload_bytes = 0;   // kRegular only.
};

// Immutable-after-setup registry of klasses. Reads are lock-free; workloads
// register all klasses before mutators start.
class KlassTable {
 public:
  KlassTable();

  KlassId Register(Klass klass);
  KlassId RegisterRegular(std::string name, uint16_t ref_fields, uint32_t payload_bytes);
  KlassId RegisterRefArray(std::string name);
  KlassId RegisterByteArray(std::string name);

  const Klass& Get(KlassId id) const;
  bool IsValid(KlassId id) const { return id < klasses_.size(); }
  size_t size() const { return klasses_.size(); }

 private:
  std::vector<Klass> klasses_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_HEAP_KLASS_H_
