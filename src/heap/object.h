// Managed object layout and header operations.
//
// Layout (8-byte aligned, addresses are host pointers into a heap arena):
//
//   offset  0: mark word (uint64)  — age bits, or a forwarding pointer during GC
//   offset  8: klass id (uint32) | padding (uint32)
//   offset 16: payload
//     kRegular:  ref slots (8B each) then primitive payload bytes
//     kRefArray: uint64 length, then `length` ref slots
//     kByteArray:uint64 length, then `length` bytes (padded to 8)
//
// The mark word mirrors HotSpot's use during copying GC: the collector claims
// an object by CAS-installing a forwarding pointer (low bit set). Age bits let
// survivors tenure into the old generation.

#ifndef NVMGC_SRC_HEAP_OBJECT_H_
#define NVMGC_SRC_HEAP_OBJECT_H_

#include <atomic>
#include <cstdint>
#include <cstring>

#include "src/heap/klass.h"
#include "src/util/check.h"

namespace nvmgc {

// A managed heap address. 0 is the null reference.
using Address = uintptr_t;
inline constexpr Address kNullAddress = 0;

namespace obj {

inline constexpr uint64_t kForwardedBit = 0x1;
inline constexpr uint64_t kAgeShift = 1;
inline constexpr uint64_t kAgeMask = 0xFULL << kAgeShift;
// Allocation-site tag (src/obs/alloc_site.h). 16 bits is far above the number
// of distinct sites a workload registers; 0 means "untagged".
inline constexpr uint64_t kSiteShift = 5;
inline constexpr uint64_t kSiteMask = 0xFFFFULL << kSiteShift;

inline constexpr size_t kHeaderBytes = 16;
inline constexpr size_t kMarkOffset = 0;
inline constexpr size_t kKlassOffset = 8;
inline constexpr size_t kArrayLengthOffset = 16;
inline constexpr size_t kArrayElementsOffset = 24;

inline uint64_t* MarkWordPtr(Address a) { return reinterpret_cast<uint64_t*>(a); }

inline uint64_t LoadMark(Address a) {
  return std::atomic_ref<uint64_t>(*MarkWordPtr(a)).load(std::memory_order_acquire);
}

inline void StoreMark(Address a, uint64_t mark) {
  std::atomic_ref<uint64_t>(*MarkWordPtr(a)).store(mark, std::memory_order_release);
}

// Attempts to claim the object for copying by installing `forwardee` as a
// forwarding pointer. On success returns kNullAddress; on failure returns the
// address the object was already forwarded to by another thread.
inline Address CasForward(Address a, Address forwardee) {
  std::atomic_ref<uint64_t> mark(*MarkWordPtr(a));
  uint64_t expected = mark.load(std::memory_order_acquire);
  while (true) {
    if ((expected & kForwardedBit) != 0) {
      return static_cast<Address>(expected & ~kForwardedBit);
    }
    const uint64_t desired = static_cast<uint64_t>(forwardee) | kForwardedBit;
    if (mark.compare_exchange_weak(expected, desired, std::memory_order_acq_rel)) {
      return kNullAddress;
    }
  }
}

inline bool IsForwarded(uint64_t mark) { return (mark & kForwardedBit) != 0; }
inline Address ForwardeeOf(uint64_t mark) { return static_cast<Address>(mark & ~kForwardedBit); }

inline uint32_t AgeOf(uint64_t mark) { return static_cast<uint32_t>((mark & kAgeMask) >> kAgeShift); }
inline uint32_t SiteOf(uint64_t mark) {
  return static_cast<uint32_t>((mark & kSiteMask) >> kSiteShift);
}
inline uint64_t MarkWithAgeSite(uint32_t age, uint32_t site) {
  return ((static_cast<uint64_t>(age) << kAgeShift) & kAgeMask) |
         ((static_cast<uint64_t>(site) << kSiteShift) & kSiteMask);
}
inline uint64_t MarkWithAge(uint32_t age) { return MarkWithAgeSite(age, 0); }

inline KlassId KlassIdOf(Address a) {
  return *reinterpret_cast<const uint32_t*>(a + kKlassOffset);
}

inline void StoreKlassId(Address a, KlassId id) {
  *reinterpret_cast<uint32_t*>(a + kKlassOffset) = id;
}

inline uint64_t ArrayLength(Address a) {
  return *reinterpret_cast<const uint64_t*>(a + kArrayLengthOffset);
}

inline void StoreArrayLength(Address a, uint64_t length) {
  *reinterpret_cast<uint64_t*>(a + kArrayLengthOffset) = length;
}

inline size_t AlignUp8(size_t n) { return (n + 7) & ~size_t{7}; }

// Total object size in bytes given its klass (and, for arrays, its length).
inline size_t SizeOf(const Klass& klass, uint64_t array_length) {
  switch (klass.kind) {
    case KlassKind::kRegular:
      return kHeaderBytes + size_t{8} * klass.ref_fields + AlignUp8(klass.payload_bytes);
    case KlassKind::kRefArray:
      return kArrayElementsOffset + size_t{8} * array_length;
    case KlassKind::kByteArray:
      return kArrayElementsOffset + AlignUp8(array_length);
  }
  NVMGC_CHECK(false);
}

// Size of an allocated object read back from the heap.
inline size_t SizeOfAt(Address a, const KlassTable& klasses) {
  const Klass& k = klasses.Get(KlassIdOf(a));
  const uint64_t len = k.kind == KlassKind::kRegular ? 0 : ArrayLength(a);
  return SizeOf(k, len);
}

// Address of the i-th reference slot.
inline Address RefSlot(Address a, const Klass& klass, size_t i) {
  if (klass.kind == KlassKind::kRegular) {
    NVMGC_DCHECK(i < klass.ref_fields);
    return a + kHeaderBytes + 8 * i;
  }
  NVMGC_DCHECK(klass.kind == KlassKind::kRefArray);
  NVMGC_DCHECK(i < ArrayLength(a));
  return a + kArrayElementsOffset + 8 * i;
}

// Number of reference slots in the object at `a`.
inline size_t RefSlotCount(Address a, const Klass& klass) {
  switch (klass.kind) {
    case KlassKind::kRegular:
      return klass.ref_fields;
    case KlassKind::kRefArray:
      return ArrayLength(a);
    case KlassKind::kByteArray:
      return 0;
  }
  NVMGC_CHECK(false);
}

inline Address LoadRef(Address slot) {
  return std::atomic_ref<Address>(*reinterpret_cast<Address*>(slot))
      .load(std::memory_order_relaxed);
}

inline void StoreRef(Address slot, Address value) {
  std::atomic_ref<Address>(*reinterpret_cast<Address*>(slot))
      .store(value, std::memory_order_relaxed);
}

// Address of the primitive payload of a regular object.
inline Address PayloadOf(Address a, const Klass& klass) {
  NVMGC_DCHECK(klass.kind == KlassKind::kRegular);
  return a + kHeaderBytes + size_t{8} * klass.ref_fields;
}

// Initializes header + klass (and array length) of a freshly allocated object
// and zeroes its reference slots. `site` is the allocation-site tag carried in
// the spare mark bits (0 = untagged).
inline void InitializeObject(Address a, const Klass& klass, uint64_t array_length,
                             uint32_t site = 0) {
  StoreMark(a, MarkWithAgeSite(0, site));
  StoreKlassId(a, klass.id);
  switch (klass.kind) {
    case KlassKind::kRegular:
      std::memset(reinterpret_cast<void*>(a + kHeaderBytes), 0, size_t{8} * klass.ref_fields);
      break;
    case KlassKind::kRefArray:
      StoreArrayLength(a, array_length);
      std::memset(reinterpret_cast<void*>(a + kArrayElementsOffset), 0, size_t{8} * array_length);
      break;
    case KlassKind::kByteArray:
      StoreArrayLength(a, array_length);
      break;
  }
}

}  // namespace obj
}  // namespace nvmgc

#endif  // NVMGC_SRC_HEAP_OBJECT_H_
