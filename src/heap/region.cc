#include "src/heap/region.h"

namespace nvmgc {

const char* RegionTypeName(RegionType type) {
  switch (type) {
    case RegionType::kFree:
      return "free";
    case RegionType::kEden:
      return "eden";
    case RegionType::kSurvivor:
      return "survivor";
    case RegionType::kOld:
      return "old";
    case RegionType::kHumongous:
      return "humongous";
    case RegionType::kWriteCache:
      return "write-cache";
    case RegionType::kLarge:
      return "large";
  }
  return "?";
}

void Region::Initialize(uint32_t index, Address bottom, size_t bytes, DeviceKind device) {
  index_ = index;
  bottom_ = bottom;
  end_ = bottom + bytes;
  top_ = bottom;
  type_ = RegionType::kFree;
  device_ = device;
}

void Region::ResetForType(RegionType type) {
  type_ = type;
  top_ = bottom_;
  gc_epoch_ = 0;
  in_cset_ = false;
  remset_.Clear();
  cache_twin_.store(nullptr, std::memory_order_relaxed);
  last_tracked_ref_ = kNullAddress;
  flush_ready_.store(false, std::memory_order_relaxed);
  steal_tainted_.store(false, std::memory_order_relaxed);
  flushed_.store(false, std::memory_order_relaxed);
  pending_slots_.store(0, std::memory_order_relaxed);
  closed_.store(false, std::memory_order_relaxed);
  durable_committed_ = false;
}

}  // namespace nvmgc
