// Heap regions: the basic memory-management unit (as in G1).
//
// A region is a fixed-size, bump-allocated slab. Eden regions serve mutator
// TLABs; survivor/old regions are GC evacuation targets; write-cache regions
// live in the DRAM arena and act as DRAM twins of NVM survivor regions during
// a pause. The flush-tracking fields implement the paper's Figure 4 readiness
// protocol for asynchronous region flushing.

#ifndef NVMGC_SRC_HEAP_REGION_H_
#define NVMGC_SRC_HEAP_REGION_H_

#include <atomic>
#include <cstdint>

#include "src/heap/object.h"
#include "src/heap/remembered_set.h"
#include "src/nvm/device_profile.h"

namespace nvmgc {

enum class RegionType : uint8_t {
  kFree,
  kEden,
  kSurvivor,
  kOld,
  kHumongous,   // Single over-sized object; never evacuated.
  kWriteCache,  // DRAM staging twin of an NVM survivor/old region.
  kLarge,       // Large-object space: NVM-resident, tenured in place, never copied.
};

const char* RegionTypeName(RegionType type);

class Region {
 public:
  Region() = default;

  void Initialize(uint32_t index, Address bottom, size_t bytes, DeviceKind device);

  // Bump allocation. Only the owning thread allocates into a region, so this
  // needs no atomics; ownership hand-off happens through the region manager's
  // lock.
  Address Allocate(size_t bytes) {
    const Address result = top_;
    if (result + bytes > end_) {
      return kNullAddress;
    }
    top_ = result + bytes;
    return result;
  }

  // Prepares the region for (re)use as `type`.
  void Retire(RegionType type) { type_ = type; }
  void ResetForType(RegionType type);

  bool Contains(Address a) const { return a >= bottom_ && a < end_; }

  uint32_t index() const { return index_; }
  Address bottom() const { return bottom_; }
  Address end() const { return end_; }
  Address top() const { return top_; }
  void set_top(Address top) { top_ = top; }
  size_t capacity() const { return end_ - bottom_; }
  size_t used() const { return top_ - bottom_; }
  size_t free_bytes() const { return end_ - top_; }
  RegionType type() const { return type_; }
  DeviceKind device() const { return device_; }

  bool is_young() const { return type_ == RegionType::kEden || type_ == RegionType::kSurvivor; }
  bool is_old_like() const {
    return type_ == RegionType::kOld || type_ == RegionType::kHumongous ||
           type_ == RegionType::kLarge;
  }

  RememberedSet& remset() { return remset_; }
  const RememberedSet& remset() const { return remset_; }

  // Survivor-region age bookkeeping: survivor regions created during GC cycle
  // N are part of the collection set of cycle N+1.
  uint64_t gc_epoch() const { return gc_epoch_; }
  void set_gc_epoch(uint64_t e) { gc_epoch_ = e; }

  // Collection-set membership, set during STW setup (no concurrency).
  bool in_cset() const { return in_cset_; }
  void set_in_cset(bool in) { in_cset_ = in; }

  // --- Write-cache pairing (used only while a GC pause is active) ---
  Region* cache_twin() const { return cache_twin_.load(std::memory_order_acquire); }
  void set_cache_twin(Region* twin) { cache_twin_.store(twin, std::memory_order_release); }

  // --- Asynchronous-flush tracking (paper Figure 4) ---
  // `last_tracked_ref` memorizes the slot that will (in LIFO order) be the
  // final one processed among the objects copied into this region so far.
  Address last_tracked_ref() const { return last_tracked_ref_; }
  void set_last_tracked_ref(Address slot) { last_tracked_ref_ = slot; }
  bool flush_ready() const { return flush_ready_.load(std::memory_order_acquire); }
  void set_flush_ready(bool ready) { flush_ready_.store(ready, std::memory_order_release); }
  // One-shot claim of the flush; returns true for exactly one caller.
  bool ClaimFlush() { return !flush_ready_.exchange(true, std::memory_order_acq_rel); }
  // Work stealing breaks the LIFO order; a tainted region falls back to the
  // synchronous end-of-GC flush.
  bool steal_tainted() const { return steal_tainted_.load(std::memory_order_acquire); }
  void set_steal_tainted(bool tainted) { steal_tainted_.store(tainted, std::memory_order_release); }
  bool flushed() const { return flushed_.load(std::memory_order_acquire); }
  void set_flushed(bool flushed) { flushed_.store(flushed, std::memory_order_release); }

  // Outstanding reference slots inside this region still sitting in some
  // working stack. Zero (with the region closed to new objects) means every
  // reference the region contains has been processed — the exact moment the
  // paper's Figure 4 LIFO trick detects under depth-first processing.
  void AddPendingSlots(int64_t n) { pending_slots_.fetch_add(n, std::memory_order_acq_rel); }
  int64_t pending_slots() const { return pending_slots_.load(std::memory_order_acquire); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  void set_closed(bool closed) { closed_.store(closed, std::memory_order_release); }

  // --- Durability (set/read only by the control thread at pause end) ---
  // True once this region's content was part of a sealed commit record. Such
  // a region must not be reused until the *next* commit seals (the Heap
  // quarantines it on free), and in-place rewrites of it go through the redo
  // log before the commit point (see DESIGN.md §8).
  bool durable_committed() const { return durable_committed_; }
  void set_durable_committed(bool committed) { durable_committed_ = committed; }

 private:
  uint32_t index_ = 0;
  Address bottom_ = 0;
  Address end_ = 0;
  Address top_ = 0;
  RegionType type_ = RegionType::kFree;
  DeviceKind device_ = DeviceKind::kDram;
  uint64_t gc_epoch_ = 0;
  bool in_cset_ = false;
  RememberedSet remset_;

  std::atomic<Region*> cache_twin_{nullptr};
  Address last_tracked_ref_ = kNullAddress;
  std::atomic<bool> flush_ready_{false};
  std::atomic<bool> steal_tainted_{false};
  std::atomic<bool> flushed_{false};
  std::atomic<int64_t> pending_slots_{0};
  std::atomic<bool> closed_{false};
  bool durable_committed_ = false;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_HEAP_REGION_H_
