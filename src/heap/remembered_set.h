// Per-region remembered set.
//
// Records the addresses of reference slots that live *outside* the young
// generation (old/humongous regions) and point *into* this region. The
// mutator write barrier populates it; young GC treats its entries as roots.

#ifndef NVMGC_SRC_HEAP_REMEMBERED_SET_H_
#define NVMGC_SRC_HEAP_REMEMBERED_SET_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace nvmgc {

class RememberedSet {
 public:
  RememberedSet() = default;

  void Add(uintptr_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.push_back(slot);
  }

  // Snapshot + clear, used at the start of a collection (the GC re-records
  // surviving old->young edges as it updates them).
  std::vector<uintptr_t> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uintptr_t> out;
    out.swap(slots_);
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<uintptr_t> slots_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_HEAP_REMEMBERED_SET_H_
