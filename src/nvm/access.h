// Descriptors for simulated memory accesses.
//
// Every heap access performed by the collector or runtime is described by an
// AccessDescriptor and charged to a SimClock through MemoryDevice::Access().
// The descriptor captures exactly the properties the paper's analysis hinges
// on: direction (read/write), spatial pattern (random/sequential), whether a
// non-temporal (streaming) store was used, and whether the line was software-
// prefetched ahead of use.

#ifndef NVMGC_SRC_NVM_ACCESS_H_
#define NVMGC_SRC_NVM_ACCESS_H_

#include <cstdint>

namespace nvmgc {

enum class AccessOp : uint8_t {
  kRead,
  kWrite,
};

enum class AccessPattern : uint8_t {
  kRandom,      // Pointer-chasing access: pays the device miss latency.
  kSequential,  // Streaming access: latency amortized over cache lines.
};

struct AccessDescriptor {
  uint64_t address = 0;
  uint32_t bytes = 0;
  AccessOp op = AccessOp::kRead;
  AccessPattern pattern = AccessPattern::kRandom;
  // Streaming store that bypasses the cache hierarchy (MOVNTDQ-style). Only
  // meaningful for writes.
  bool non_temporal = false;
  // Set when the address was software-prefetched recently enough that the miss
  // latency is (mostly) hidden.
  bool prefetched = false;
};

// Convenience constructors for the common shapes.
inline AccessDescriptor RandomRead(uint64_t address, uint32_t bytes) {
  return AccessDescriptor{address, bytes, AccessOp::kRead, AccessPattern::kRandom, false, false};
}

inline AccessDescriptor SequentialRead(uint64_t address, uint32_t bytes) {
  return AccessDescriptor{address,        bytes, AccessOp::kRead, AccessPattern::kSequential,
                          false,          false};
}

inline AccessDescriptor RandomWrite(uint64_t address, uint32_t bytes) {
  return AccessDescriptor{address, bytes, AccessOp::kWrite, AccessPattern::kRandom, false, false};
}

inline AccessDescriptor SequentialWrite(uint64_t address, uint32_t bytes) {
  return AccessDescriptor{address,         bytes, AccessOp::kWrite, AccessPattern::kSequential,
                          false,           false};
}

inline AccessDescriptor NonTemporalWrite(uint64_t address, uint32_t bytes) {
  return AccessDescriptor{address,        bytes, AccessOp::kWrite, AccessPattern::kSequential,
                          true,           false};
}

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_ACCESS_H_
