#include "src/nvm/access_heatmap.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace nvmgc {

void AccessHeatmap::Configure(uint64_t base, uint64_t region_bytes, uint32_t regions) {
  arenas_.clear();
  slots_.clear();
  AddArena(base, region_bytes, regions);
}

uint32_t AccessHeatmap::AddArena(uint64_t base, uint64_t region_bytes, uint32_t regions) {
  Arena arena;
  arena.base = base;
  arena.end = base + region_bytes * regions;
  arena.region_bytes = region_bytes;
  arena.slot_offset = slots_.size();
  arenas_.push_back(arena);
  for (uint32_t i = 0; i < regions; ++i) {
    slots_.emplace_back();
  }
  return static_cast<uint32_t>(arena.slot_offset);
}

void AccessHeatmap::Charge(const AccessDescriptor& d) {
  const Arena* arena = nullptr;
  for (const Arena& a : arenas_) {
    if (d.address >= a.base && d.address < a.end) {
      arena = &a;
      break;
    }
  }
  if (arena == nullptr) {
    return;
  }
  const uint64_t slot_index =
      arena->slot_offset + (d.address - arena->base) / arena->region_bytes;
  Slot& slot = slots_[slot_index];
  if (d.op == AccessOp::kRead) {
    slot.read_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
    slot.read_ops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.write_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
  slot.write_ops.fetch_add(1, std::memory_order_relaxed);
  // A write continues the region's stream when it starts exactly where the
  // previous write into the region ended. The exchange is racy across threads
  // writing the same region concurrently, which is faithful: interleaved
  // streams from two writers *are* discontiguous at the device.
  const uint64_t prev_end =
      slot.last_write_end.exchange(d.address + d.bytes, std::memory_order_relaxed);
  if (prev_end != 0 && prev_end != d.address) {
    slot.discontiguous_writes.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<RegionHeat> AccessHeatmap::Snapshot() const {
  std::vector<RegionHeat> out;
  out.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    RegionHeat heat;
    heat.region = static_cast<uint32_t>(i);
    heat.read_bytes = s.read_bytes.load(std::memory_order_relaxed);
    heat.write_bytes = s.write_bytes.load(std::memory_order_relaxed);
    heat.read_ops = s.read_ops.load(std::memory_order_relaxed);
    heat.write_ops = s.write_ops.load(std::memory_order_relaxed);
    heat.discontiguous_writes = s.discontiguous_writes.load(std::memory_order_relaxed);
    out.push_back(heat);
  }
  return out;
}

HeatmapTotals AccessHeatmap::Totals() const {
  HeatmapTotals t;
  for (const Slot& s : slots_) {
    const uint64_t reads = s.read_ops.load(std::memory_order_relaxed);
    const uint64_t writes = s.write_ops.load(std::memory_order_relaxed);
    t.regions_read += reads > 0 ? 1 : 0;
    t.regions_written += writes > 0 ? 1 : 0;
    t.write_ops += writes;
    t.discontiguous_writes += s.discontiguous_writes.load(std::memory_order_relaxed);
    t.max_region_write_bytes = std::max(t.max_region_write_bytes,
                                        s.write_bytes.load(std::memory_order_relaxed));
  }
  return t;
}

void AccessHeatmap::ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const {
  if (!configured()) {
    return;
  }
  const HeatmapTotals t = Totals();
  metrics->SetGauge(prefix + ".heatmap.regions_read", t.regions_read);
  metrics->SetGauge(prefix + ".heatmap.regions_written", t.regions_written);
  metrics->SetGauge(prefix + ".heatmap.write_ops", t.write_ops);
  metrics->SetGauge(prefix + ".heatmap.discontiguous_writes", t.discontiguous_writes);
  metrics->SetGauge(prefix + ".heatmap.max_region_write_bytes", t.max_region_write_bytes);
  // Gauges are integers; publish the sequentiality evidence as permille.
  metrics->SetGauge(prefix + ".heatmap.contiguous_write_permille",
                    static_cast<uint64_t>(t.contiguous_write_fraction() * 1000.0 + 0.5));
}

}  // namespace nvmgc
