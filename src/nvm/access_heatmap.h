// Per-region access heatmap for a simulated memory device.
//
// Divides a device's arena into fixed-size slots (one per heap region) and
// counts, per slot, the read/write bytes and the *discontiguous* writes — a
// write whose start address is not the end of the previous write into the
// same slot. The discontiguity count is the direct, spatial evidence for the
// paper's central claim: the vanilla collector scatters small random writes
// (forwarding installs, slot updates) across survivor regions, while the
// write cache turns each region's write-back into one contiguous stream.
// Optane behavior hinges on exactly this distinction — the device's 256-byte
// XPLine write amplification punishes discontiguous sub-line writes.

#ifndef NVMGC_SRC_NVM_ACCESS_HEATMAP_H_
#define NVMGC_SRC_NVM_ACCESS_HEATMAP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/nvm/access.h"

namespace nvmgc {

class MetricsRegistry;

// Plain-value snapshot of one region slot (see AccessHeatmap::Snapshot).
struct RegionHeat {
  uint32_t region = 0;  // Slot index == region index within the arena.
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t discontiguous_writes = 0;

  // Fraction of writes that continued the previous write's stream. 1.0 for an
  // untouched or perfectly sequential region.
  double contiguous_write_fraction() const {
    if (write_ops == 0) {
      return 1.0;
    }
    return 1.0 - static_cast<double>(discontiguous_writes) / static_cast<double>(write_ops);
  }
};

// Aggregate over all slots (what ExportMetrics publishes as gauges).
struct HeatmapTotals {
  uint64_t regions_read = 0;     // Slots with at least one read.
  uint64_t regions_written = 0;  // Slots with at least one write.
  uint64_t write_ops = 0;
  uint64_t discontiguous_writes = 0;
  uint64_t max_region_write_bytes = 0;

  double contiguous_write_fraction() const {
    if (write_ops == 0) {
      return 1.0;
    }
    return 1.0 - static_cast<double>(discontiguous_writes) / static_cast<double>(write_ops);
  }
};

// Thread-safe (relaxed atomics — the heatmap feeds evidence, not invariants).
// Unconfigured heatmaps ignore every charge; addresses outside the configured
// arenas are ignored too (mutator handles and other host memory).
//
// A heatmap covers one or more disjoint arenas: a private device has one (its
// Vm's heap arena), a shared fleet device has one per tenant Vm. Slots are
// numbered across arenas in registration order, so `region` in RegionHeat is
// a global slot index. Arenas must be registered (at Vm/Heap construction)
// before their addresses see traffic; registration is not thread-safe against
// concurrent Charge on the *same* heatmap configuration step, matching how
// Vms are constructed.
class AccessHeatmap {
 public:
  AccessHeatmap() = default;

  AccessHeatmap(const AccessHeatmap&) = delete;
  AccessHeatmap& operator=(const AccessHeatmap&) = delete;

  // Drops every arena, then covers [base, base + region_bytes * regions) with
  // one slot per region (single-arena compatibility entry point).
  void Configure(uint64_t base, uint64_t region_bytes, uint32_t regions);
  // Appends an arena without touching existing ones; returns its first slot
  // index. Used by Heaps binding onto a shared device.
  uint32_t AddArena(uint64_t base, uint64_t region_bytes, uint32_t regions);
  bool configured() const { return !arenas_.empty(); }
  uint32_t arena_count() const { return static_cast<uint32_t>(arenas_.size()); }
  uint32_t regions() const { return static_cast<uint32_t>(slots_.size()); }

  void Charge(const AccessDescriptor& d);

  // Copies out the per-region counters (index == slot == region index).
  std::vector<RegionHeat> Snapshot() const;
  HeatmapTotals Totals() const;

  // Publishes aggregate gauges under "<prefix>.heatmap.*": regions_read,
  // regions_written, write_ops, discontiguous_writes,
  // max_region_write_bytes, contiguous_write_permille.
  void ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const;

 private:
  struct Slot {
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> write_bytes{0};
    std::atomic<uint64_t> read_ops{0};
    std::atomic<uint64_t> write_ops{0};
    std::atomic<uint64_t> discontiguous_writes{0};
    // End address of the most recent write into this slot (0 = none yet).
    std::atomic<uint64_t> last_write_end{0};
  };

  struct Arena {
    uint64_t base = 0;
    uint64_t end = 0;
    uint64_t region_bytes = 0;
    size_t slot_offset = 0;
  };

  // Slots live in a deque: atomics are immovable, and AddArena must grow the
  // slot store without relocating slots other threads are charging.
  std::vector<Arena> arenas_;
  std::deque<Slot> slots_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_ACCESS_HEATMAP_H_
