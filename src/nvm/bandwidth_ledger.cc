#include "src/nvm/bandwidth_ledger.h"

namespace nvmgc {

BandwidthLedger::BandwidthLedger(uint64_t bucket_ns) : bucket_ns_(bucket_ns) {}

BandwidthLedger::Bucket* BandwidthLedger::BucketFor(uint64_t epoch) {
  Bucket& b = ring_[epoch % kRingSize];
  uint64_t seen = b.epoch.load(std::memory_order_relaxed);
  if (seen != epoch) {
    // Claim/reset the slot for this epoch. A benign race may drop a handful of
    // bytes from another thread straddling the reset; acceptable for a mix
    // estimator.
    if (b.epoch.compare_exchange_strong(seen, epoch, std::memory_order_relaxed)) {
      b.read_bytes.store(0, std::memory_order_relaxed);
      b.write_bytes.store(0, std::memory_order_relaxed);
      b.nt_bytes.store(0, std::memory_order_relaxed);
      for (auto& t : b.tenant_bytes) {
        t.store(0, std::memory_order_relaxed);
      }
    }
  }
  return &b;
}

void BandwidthLedger::Charge(uint64_t now_ns, const AccessDescriptor& d, uint8_t tenant) {
  Bucket* b = BucketFor(now_ns / bucket_ns_);
  if (d.op == AccessOp::kRead) {
    b->read_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
  } else {
    b->write_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
    if (d.non_temporal) {
      b->nt_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
    }
  }
  b->tenant_bytes[tenant % kMaxTenants].fetch_add(d.bytes, std::memory_order_relaxed);
}

BandwidthLedger::TenantOccupancy BandwidthLedger::SampleTenantOccupancy(
    uint64_t now_ns, uint8_t tenant, int window_buckets) const {
  const uint64_t current = now_ns / bucket_ns_;
  uint64_t per_tenant[kMaxTenants] = {};
  for (int i = 0; i < window_buckets; ++i) {
    if (current < static_cast<uint64_t>(i)) {
      break;
    }
    const uint64_t epoch = current - static_cast<uint64_t>(i);
    const Bucket& b = ring_[epoch % kRingSize];
    if (b.epoch.load(std::memory_order_relaxed) != epoch) {
      continue;
    }
    for (uint32_t t = 0; t < kMaxTenants; ++t) {
      per_tenant[t] += b.tenant_bytes[t].load(std::memory_order_relaxed);
    }
  }
  TenantOccupancy occ;
  occ.active_tenants = 0;
  for (uint32_t t = 0; t < kMaxTenants; ++t) {
    occ.total_bytes += per_tenant[t];
    if (per_tenant[t] > 0) {
      ++occ.active_tenants;
    }
  }
  occ.own_bytes = per_tenant[tenant % kMaxTenants];
  if (occ.own_bytes == 0) {
    // The sampling tenant is about to issue traffic: it is active even when
    // its window history is empty.
    ++occ.active_tenants;
  }
  if (occ.active_tenants == 0) {
    occ.active_tenants = 1;
  }
  return occ;
}

bool BandwidthLedger::ReadBucket(uint64_t epoch, BucketSample* out) const {
  const Bucket& b = ring_[epoch % kRingSize];
  if (b.epoch.load(std::memory_order_relaxed) != epoch) {
    return false;
  }
  out->read_bytes = b.read_bytes.load(std::memory_order_relaxed);
  out->write_bytes = b.write_bytes.load(std::memory_order_relaxed);
  out->nt_bytes = b.nt_bytes.load(std::memory_order_relaxed);
  return true;
}

BandwidthLedger::Mix BandwidthLedger::SampleMix(uint64_t now_ns, int window_buckets) const {
  const uint64_t current = now_ns / bucket_ns_;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t nt = 0;
  for (int i = 0; i < window_buckets; ++i) {
    if (current < static_cast<uint64_t>(i)) {
      break;
    }
    const uint64_t epoch = current - static_cast<uint64_t>(i);
    const Bucket& b = ring_[epoch % kRingSize];
    if (b.epoch.load(std::memory_order_relaxed) != epoch) {
      continue;
    }
    reads += b.read_bytes.load(std::memory_order_relaxed);
    writes += b.write_bytes.load(std::memory_order_relaxed);
    nt += b.nt_bytes.load(std::memory_order_relaxed);
  }
  Mix mix;
  const uint64_t total = reads + writes;
  mix.window_bytes = total;
  if (total > 0) {
    mix.write_fraction = static_cast<double>(writes) / static_cast<double>(total);
    mix.nt_write_fraction = static_cast<double>(nt) / static_cast<double>(total);
  }
  return mix;
}

BandwidthRecorder::BandwidthRecorder(uint64_t bucket_ns, size_t max_buckets)
    : bucket_ns_(bucket_ns), cells_(max_buckets) {}

void BandwidthRecorder::Start(uint64_t now_ns) {
  start_ns_ = now_ns;
  for (auto& cell : cells_) {
    cell.read_bytes.store(0, std::memory_order_relaxed);
    cell.write_bytes.store(0, std::memory_order_relaxed);
  }
}

void BandwidthRecorder::Charge(uint64_t now_ns, const AccessDescriptor& d) {
  if (now_ns < start_ns_) {
    return;
  }
  const uint64_t idx = (now_ns - start_ns_) / bucket_ns_;
  if (idx >= cells_.size()) {
    return;  // Past the recording horizon; drop.
  }
  if (d.op == AccessOp::kRead) {
    cells_[idx].read_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
  } else {
    cells_[idx].write_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
  }
}

std::vector<BandwidthSample> BandwidthRecorder::Series() const {
  std::vector<BandwidthSample> out;
  // MB/s = bytes / bucket_seconds / 1e6.
  const double to_mbps = 1e9 / static_cast<double>(bucket_ns_) / 1e6;
  size_t last_nonzero = 0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].read_bytes.load(std::memory_order_relaxed) != 0 ||
        cells_[i].write_bytes.load(std::memory_order_relaxed) != 0) {
      last_nonzero = i + 1;
    }
  }
  out.reserve(last_nonzero);
  for (size_t i = 0; i < last_nonzero; ++i) {
    BandwidthSample s;
    s.time_ns = i * bucket_ns_;
    s.read_mbps =
        static_cast<double>(cells_[i].read_bytes.load(std::memory_order_relaxed)) * to_mbps;
    s.write_mbps =
        static_cast<double>(cells_[i].write_bytes.load(std::memory_order_relaxed)) * to_mbps;
    out.push_back(s);
  }
  return out;
}

}  // namespace nvmgc
