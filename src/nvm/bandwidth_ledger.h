// Sliding-window traffic accounting used to estimate the current access mix,
// plus an optional full-resolution recorder for bandwidth-versus-time figures.

#ifndef NVMGC_SRC_NVM_BANDWIDTH_LEDGER_H_
#define NVMGC_SRC_NVM_BANDWIDTH_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/nvm/access.h"

namespace nvmgc {

// One point of a recorded bandwidth series (already aggregated per bucket).
struct BandwidthSample {
  uint64_t time_ns = 0;       // Bucket start, relative to recording start.
  double read_mbps = 0.0;
  double write_mbps = 0.0;
  double total_mbps() const { return read_mbps + write_mbps; }
};

// Thread-safe ring of time buckets. Charges are attributed to the bucket that
// contains the accessing thread's simulated time; the mix estimate aggregates
// the most recent buckets. All counters are relaxed atomics: the ledger feeds
// a statistical model, not a correctness invariant.
class BandwidthLedger {
 public:
  // Tenants a shared device can attribute traffic to. Single-Vm devices only
  // ever use tenant 0.
  static constexpr uint32_t kMaxTenants = 8;

  // `bucket_ns` is the bucket width in simulated nanoseconds. The defaults
  // (150 us buckets, 3-bucket sampling window) make the mix estimate adapt
  // within ~0.5 ms of simulated time — fast enough to see the read-mostly /
  // write-only phase separation the write cache creates.
  explicit BandwidthLedger(uint64_t bucket_ns = 150'000);

  void Charge(uint64_t now_ns, const AccessDescriptor& d, uint8_t tenant = 0);

  struct Mix {
    double write_fraction = 0.0;
    double nt_write_fraction = 0.0;
    uint64_t window_bytes = 0;
  };
  // Mix over the last `window_buckets` buckets ending at `now_ns`.
  Mix SampleMix(uint64_t now_ns, int window_buckets = 3) const;

  // One epoch's raw byte counters, readable while the epoch is still resident
  // in the ring (the ring spans kRingSize * bucket_ns() of simulated time).
  struct BucketSample {
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t nt_bytes = 0;
    uint64_t total_bytes() const { return read_bytes + write_bytes; }
  };
  // Reads the bucket for `epoch` (== time_ns / bucket_ns()). Returns false
  // when the epoch was never charged or its slot has been reused for a newer
  // epoch; the DeviceTimeline sampler counts that as a missing bucket.
  bool ReadBucket(uint64_t epoch, BucketSample* out) const;

  // Occupancy of one tenant relative to the whole window, for the contention
  // model (BandwidthModel::TenantShareFraction).
  struct TenantOccupancy {
    uint64_t own_bytes = 0;
    uint64_t total_bytes = 0;
    // Tenants with nonzero bytes in the window; the sampling tenant always
    // counts as active (it is issuing the access being costed).
    uint32_t active_tenants = 1;

    double own_fraction() const {
      if (total_bytes == 0) {
        return 1.0;
      }
      return static_cast<double>(own_bytes) / static_cast<double>(total_bytes);
    }
  };
  // Per-tenant occupancy over the last `window_buckets` buckets at `now_ns`.
  TenantOccupancy SampleTenantOccupancy(uint64_t now_ns, uint8_t tenant,
                                        int window_buckets = 3) const;

  uint64_t bucket_ns() const { return bucket_ns_; }
  static constexpr int ring_size() { return kRingSize; }

 private:
  struct Bucket {
    std::atomic<uint64_t> epoch{UINT64_MAX};
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> write_bytes{0};
    std::atomic<uint64_t> nt_bytes{0};
    // Byte totals split by tenant (shared devices; single-Vm traffic all
    // lands in slot 0). Kept alongside the direction split rather than as a
    // tenant x direction matrix: the contention model needs occupancy, the
    // mix model needs direction, and no consumer needs both at once.
    std::atomic<uint64_t> tenant_bytes[kMaxTenants] = {};
  };

  static constexpr int kRingSize = 64;

  Bucket* BucketFor(uint64_t epoch);

  uint64_t bucket_ns_;
  mutable Bucket ring_[kRingSize];
};

// Fixed-capacity, lock-free recorder: buckets cover simulated time from
// Start() onward. Used to produce the paper's bandwidth time-series plots
// (Figures 2, 3 and 7).
class BandwidthRecorder {
 public:
  BandwidthRecorder(uint64_t bucket_ns, size_t max_buckets);

  void Charge(uint64_t now_ns, const AccessDescriptor& d);

  // Rebase so that `now_ns` becomes time zero of the series.
  void Start(uint64_t now_ns);

  std::vector<BandwidthSample> Series() const;

  uint64_t bucket_ns() const { return bucket_ns_; }

 private:
  struct Cell {
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> write_bytes{0};
  };

  uint64_t bucket_ns_;
  uint64_t start_ns_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_BANDWIDTH_LEDGER_H_
