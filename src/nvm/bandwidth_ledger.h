// Sliding-window traffic accounting used to estimate the current access mix,
// plus an optional full-resolution recorder for bandwidth-versus-time figures.

#ifndef NVMGC_SRC_NVM_BANDWIDTH_LEDGER_H_
#define NVMGC_SRC_NVM_BANDWIDTH_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/nvm/access.h"

namespace nvmgc {

// One point of a recorded bandwidth series (already aggregated per bucket).
struct BandwidthSample {
  uint64_t time_ns = 0;       // Bucket start, relative to recording start.
  double read_mbps = 0.0;
  double write_mbps = 0.0;
  double total_mbps() const { return read_mbps + write_mbps; }
};

// Thread-safe ring of time buckets. Charges are attributed to the bucket that
// contains the accessing thread's simulated time; the mix estimate aggregates
// the most recent buckets. All counters are relaxed atomics: the ledger feeds
// a statistical model, not a correctness invariant.
class BandwidthLedger {
 public:
  // `bucket_ns` is the bucket width in simulated nanoseconds. The defaults
  // (150 us buckets, 3-bucket sampling window) make the mix estimate adapt
  // within ~0.5 ms of simulated time — fast enough to see the read-mostly /
  // write-only phase separation the write cache creates.
  explicit BandwidthLedger(uint64_t bucket_ns = 150'000);

  void Charge(uint64_t now_ns, const AccessDescriptor& d);

  struct Mix {
    double write_fraction = 0.0;
    double nt_write_fraction = 0.0;
    uint64_t window_bytes = 0;
  };
  // Mix over the last `window_buckets` buckets ending at `now_ns`.
  Mix SampleMix(uint64_t now_ns, int window_buckets = 3) const;

  // One epoch's raw byte counters, readable while the epoch is still resident
  // in the ring (the ring spans kRingSize * bucket_ns() of simulated time).
  struct BucketSample {
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t nt_bytes = 0;
    uint64_t total_bytes() const { return read_bytes + write_bytes; }
  };
  // Reads the bucket for `epoch` (== time_ns / bucket_ns()). Returns false
  // when the epoch was never charged or its slot has been reused for a newer
  // epoch; the DeviceTimeline sampler counts that as a missing bucket.
  bool ReadBucket(uint64_t epoch, BucketSample* out) const;

  uint64_t bucket_ns() const { return bucket_ns_; }
  static constexpr int ring_size() { return kRingSize; }

 private:
  struct Bucket {
    std::atomic<uint64_t> epoch{UINT64_MAX};
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> write_bytes{0};
    std::atomic<uint64_t> nt_bytes{0};
  };

  static constexpr int kRingSize = 64;

  Bucket* BucketFor(uint64_t epoch);

  uint64_t bucket_ns_;
  mutable Bucket ring_[kRingSize];
};

// Fixed-capacity, lock-free recorder: buckets cover simulated time from
// Start() onward. Used to produce the paper's bandwidth time-series plots
// (Figures 2, 3 and 7).
class BandwidthRecorder {
 public:
  BandwidthRecorder(uint64_t bucket_ns, size_t max_buckets);

  void Charge(uint64_t now_ns, const AccessDescriptor& d);

  // Rebase so that `now_ns` becomes time zero of the series.
  void Start(uint64_t now_ns);

  std::vector<BandwidthSample> Series() const;

  uint64_t bucket_ns() const { return bucket_ns_; }

 private:
  struct Cell {
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> write_bytes{0};
  };

  uint64_t bucket_ns_;
  uint64_t start_ns_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_BANDWIDTH_LEDGER_H_
