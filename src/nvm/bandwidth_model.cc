#include "src/nvm/bandwidth_model.h"

#include <algorithm>
#include <cmath>

namespace nvmgc {

double BandwidthModel::ReadCeilingMbps(uint32_t threads) const {
  const uint32_t t = std::max<uint32_t>(1, threads);
  const double knee = static_cast<double>(profile_.read_saturation_threads);
  const double ramp = std::min<double>(t, knee) / knee;
  return profile_.peak_read_bw_mbps * ramp;
}

double BandwidthModel::WriteCeilingMbps(uint32_t threads, double nt_share) const {
  const uint32_t t = std::max<uint32_t>(1, threads);
  const double peak = profile_.peak_write_bw_mbps * (1.0 - nt_share) +
                      profile_.peak_write_nt_bw_mbps * nt_share;
  const double knee = static_cast<double>(profile_.write_saturation_threads);
  const double ramp = std::min<double>(t, knee) / knee;
  double ceiling = peak * ramp;
  if (t > knee) {
    // Beyond the knee additional writers degrade on-DIMM write combining.
    const double over = static_cast<double>(t) - knee;
    ceiling *= std::max(0.25, 1.0 - profile_.write_contention_decline * over);
  }
  return ceiling;
}

double BandwidthModel::MixInterference(double write_fraction, double nt_write_fraction) const {
  // Only the *mixing* of writes into reads is penalized: the term vanishes at
  // pure-read (w == 0) and pure-write (w == 1) phases, which is exactly why
  // the paper splits copy-and-traverse into read-mostly and write-only
  // sub-phases. Non-temporal write bytes count with a discount because they
  // bypass the cache hierarchy and the DIMM read-modify-write path.
  const double regular_w = std::max(0.0, write_fraction - nt_write_fraction);
  const double effective_w = regular_w + nt_write_fraction * profile_.nt_interference_discount;
  const double mix_term = 4.0 * effective_w * std::max(0.0, 1.0 - write_fraction);
  // Quadratic shape: a small residual write share costs little, but the
  // collapse deepens rapidly as reads and writes approach parity — matching
  // the measured Optane bandwidth-vs-mix curves, which fall off a cliff
  // between ~10% and ~50% writes.
  return 1.0 / (1.0 + profile_.mix_interference * mix_term * mix_term);
}

double BandwidthModel::TotalBandwidthMbps(const MixState& mix) const {
  const double w = std::clamp(mix.write_fraction, 0.0, 1.0);
  const double nt_share_of_writes = w > 1e-9 ? std::clamp(mix.nt_write_fraction / w, 0.0, 1.0)
                                             : 0.0;
  const double read_bw = ReadCeilingMbps(mix.active_threads);
  const double write_bw = WriteCeilingMbps(mix.active_threads, nt_share_of_writes);
  // Harmonic blend: time to move a byte is the mix-weighted time per direction.
  const double per_byte = (1.0 - w) / read_bw + w / write_bw;
  const double base = 1.0 / per_byte;
  return base * MixInterference(w, std::clamp(mix.nt_write_fraction, 0.0, w));
}

double BandwidthModel::TenantShareFraction(double own_fraction, uint32_t active_tenants) const {
  if (active_tenants <= 1) {
    return 1.0;
  }
  const double t = static_cast<double>(active_tenants);
  const double f = std::clamp(own_fraction, 0.0, 1.0);
  const double share = std::min(1.0, std::max(f, 1.0 / t));
  return share / (1.0 + profile_.tenant_interference * (t - 1.0));
}

double BandwidthModel::PatternFraction(AccessOp op, AccessPattern pattern) const {
  if (pattern == AccessPattern::kSequential) {
    return 1.0;
  }
  return op == AccessOp::kRead ? profile_.random_read_bw_fraction
                               : profile_.random_write_bw_fraction;
}

}  // namespace nvmgc
