// Analytical bandwidth model for a simulated memory device.
//
// The model computes the total bandwidth a device can sustain given the recent
// access mix. It encodes the three Optane phenomena the paper's design builds
// on:
//   1. asymmetric ceilings  (peak read >> peak write),
//   2. interference         (mixing writes into a read stream collapses the
//                            total well below the harmonic blend),
//   3. early write-side thread saturation (and mild decline beyond the knee).
// Non-temporal stores use a higher write ceiling and contribute less to the
// interference term, which is what makes the write cache's sequential
// write-back and asynchronous flushing profitable.

#ifndef NVMGC_SRC_NVM_BANDWIDTH_MODEL_H_
#define NVMGC_SRC_NVM_BANDWIDTH_MODEL_H_

#include <cstdint>

#include "src/nvm/access.h"
#include "src/nvm/device_profile.h"

namespace nvmgc {

// Snapshot of the recent traffic mix on a device (fractions of bytes).
struct MixState {
  double write_fraction = 0.0;     // All writes / total.
  double nt_write_fraction = 0.0;  // Non-temporal writes / total.
  uint32_t active_threads = 1;
};

class BandwidthModel {
 public:
  explicit BandwidthModel(const DeviceProfile& profile) : profile_(profile) {}

  // Total sustainable bandwidth (MB/s) for the given mix.
  double TotalBandwidthMbps(const MixState& mix) const;

  // Read-direction ceiling at `threads` concurrent readers (MB/s).
  double ReadCeilingMbps(uint32_t threads) const;

  // Write-direction ceiling at `threads` concurrent writers (MB/s);
  // `nt_share` in [0,1] is the fraction of write bytes using streaming stores.
  double WriteCeilingMbps(uint32_t threads, double nt_share) const;

  // Multiplier (0,1] applied to a single access's bandwidth share based on its
  // own spatial pattern.
  double PatternFraction(AccessOp op, AccessPattern pattern) const;

  // Fraction of the device total one tenant can claim when `active_tenants`
  // tenants have traffic in the recent ledger window. The documented curve
  // (tests assert it exactly):
  //
  //   share(f, T) = 1.0                                         for T <= 1
  //   share(f, T) = min(1, max(f, 1/T)) / (1 + kappa * (T - 1)) for T >= 2
  //
  // where f is the tenant's byte fraction of the window and kappa is
  // DeviceProfile::tenant_interference. The max(f, 1/T) floor guarantees an
  // idle-ish tenant still gets an equal share the moment it issues traffic
  // (the device schedules per-request, not per-history); the 1/(1+kappa(T-1))
  // factor is the efficiency the device loses to interleaving the streams —
  // the co-location penalty measured on real Optane (see PAPERS.md: HPC-NVM
  // characterization; Optane system evaluation).
  double TenantShareFraction(double own_fraction, uint32_t active_tenants) const;

  const DeviceProfile& profile() const { return profile_; }

 private:
  // Interference multiplier (0,1] for the given write mix.
  double MixInterference(double write_fraction, double nt_write_fraction) const;

  DeviceProfile profile_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_BANDWIDTH_MODEL_H_
