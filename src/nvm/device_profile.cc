#include "src/nvm/device_profile.h"

namespace nvmgc {

DeviceProfile MakeDramProfile() {
  DeviceProfile p;
  p.name = "dram";
  p.kind = DeviceKind::kDram;
  p.random_read_latency_ns = 85;
  p.random_write_latency_ns = 85;
  p.sequential_line_ns = 1.0;
  p.prefetch_hide_fraction = 0.55;  // DRAM misses are short; less to hide.
  p.peak_read_bw_mbps = 85000.0;
  p.peak_write_bw_mbps = 48000.0;
  p.peak_write_nt_bw_mbps = 48000.0;
  p.random_read_bw_fraction = 0.60;
  p.random_write_bw_fraction = 0.60;
  p.read_saturation_threads = 28;
  p.write_saturation_threads = 20;
  p.write_contention_decline = 0.0;
  p.mix_interference = 0.15;
  p.nt_interference_discount = 1.0;
  p.tenant_interference = 0.03;  // Channel interleaving absorbs most of it.
  p.flush_line_ns = 20;  // CLWB retire + writeback overlap.
  p.fence_ns = 30;       // SFENCE with a shallow store buffer.
  p.dollars_per_gb = 7.81;
  return p;
}

DeviceProfile MakeOptaneProfile() {
  DeviceProfile p;
  p.name = "nvm";
  p.kind = DeviceKind::kNvm;
  p.random_read_latency_ns = 305;  // ~3.6x DRAM (Izraelevitz et al.).
  p.random_write_latency_ns = 190; // ADR write buffer hides media latency partially.
  p.sequential_line_ns = 3.5;
  p.prefetch_hide_fraction = 0.80; // Long misses leave more latency to hide.
  p.peak_read_bw_mbps = 38000.0;   // 6 DIMMs x ~6.4 GB/s sequential read.
  p.peak_write_bw_mbps = 8200.0;   // Regular cached stores.
  p.peak_write_nt_bw_mbps = 13600.0;  // ntstore reaches the DIMM write ceiling.
  p.random_read_bw_fraction = 0.30;
  p.random_write_bw_fraction = 0.22;
  p.read_saturation_threads = 24;
  p.write_saturation_threads = 4;
  p.write_contention_decline = 0.006;
  p.mix_interference = 3.8;
  p.nt_interference_discount = 0.35;
  p.tenant_interference = 0.12;  // Interleaved tenants thrash the XPBuffer.
  p.flush_line_ns = 40;  // CLWB into the on-DIMM write-pending queue.
  p.fence_ns = 500;      // SFENCE waits for the WPQ to drain to ADR domain.
  p.dollars_per_gb = 3.01;
  return p;
}

}  // namespace nvmgc
