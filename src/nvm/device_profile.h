// Calibrated performance profiles for simulated memory devices.
//
// The NVM numbers follow the published characterizations of Intel Optane DC
// Persistent Memory the paper itself relies on (Izraelevitz et al. 2019;
// Yang et al., FAST 2020): ~3x random read latency vs DRAM, strongly
// asymmetric peak read/write bandwidth, total bandwidth that collapses as the
// write fraction of a mixed workload rises, write-side saturation at a small
// number of threads, and better behavior for non-temporal (streaming) stores
// in mixed workloads. The DRAM profile is an ordinary DDR4-2933 six-channel
// socket.

#ifndef NVMGC_SRC_NVM_DEVICE_PROFILE_H_
#define NVMGC_SRC_NVM_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>

namespace nvmgc {

enum class DeviceKind : uint8_t {
  kDram,
  kNvm,
};

struct DeviceProfile {
  std::string name;
  DeviceKind kind = DeviceKind::kDram;

  // --- Latency terms (paid once per random access; hidden by prefetching) ---
  uint64_t random_read_latency_ns = 0;
  uint64_t random_write_latency_ns = 0;
  // Per-64B-line cost when streaming sequentially (row-buffer / WC-buffer hit).
  double sequential_line_ns = 0.0;
  // Fraction of the random-access latency hidden when the line was prefetched
  // far enough in advance.
  double prefetch_hide_fraction = 0.0;

  // --- Bandwidth terms (MB/s) ---
  double peak_read_bw_mbps = 0.0;       // Sequential read ceiling.
  double peak_write_bw_mbps = 0.0;      // Regular (cached) store ceiling.
  double peak_write_nt_bw_mbps = 0.0;   // Non-temporal store ceiling.
  // Achievable fraction of peak when the pattern is random (small accesses).
  double random_read_bw_fraction = 1.0;
  double random_write_bw_fraction = 1.0;

  // --- Parallelism ---
  // Threads needed to reach the read/write ceilings. Below the knee, total
  // bandwidth scales linearly with threads.
  uint32_t read_saturation_threads = 1;
  uint32_t write_saturation_threads = 1;
  // Relative bandwidth LOSS per extra thread beyond the write knee: Optane's
  // on-DIMM write combining degrades under concurrent writers.
  double write_contention_decline = 0.0;

  // --- Read/write interference ---
  // Strength of the total-bandwidth collapse when reads and writes mix.
  // 0 = independent channels (DRAM-like); larger = Optane-like collapse.
  double mix_interference = 0.0;
  // Non-temporal stores interfere less: their write fraction is scaled by
  // this factor before the interference term is computed.
  double nt_interference_discount = 1.0;
  // --- Cross-tenant interference (shared-device fleets) ---
  // Per-co-tenant efficiency loss when several tenants' access streams
  // interleave on one device: each extra *active* tenant multiplies the
  // device total by 1 / (1 + tenant_interference). Optane loses real
  // efficiency to interleaving (XPBuffer thrash, lost prefetch locality);
  // DRAM loses little. See BandwidthModel::TenantShareFraction.
  double tenant_interference = 0.0;

  // --- Persistence costs (durability mode; see src/nvm/persist_ledger.h) ---
  // Cost of flushing one dirty 64B cache line to the device's persistence
  // domain (CLWB) and of a store fence that orders outstanding flushes
  // (SFENCE drain). On DRAM these model plain cache maintenance; on Optane
  // the fence must wait for the WPQ/ADR domain to accept the lines, which is
  // what makes fence placement the dominant durability cost (NVTraverse).
  uint64_t flush_line_ns = 0;
  uint64_t fence_ns = 0;

  // Per-GB price in dollars (Figure 12 cost-efficiency analysis).
  double dollars_per_gb = 0.0;
};

// Six-channel DDR4 socket (as in the paper's testbed).
DeviceProfile MakeDramProfile();

// Six interleaved 128 GB Optane DC PM DIMMs on one socket.
DeviceProfile MakeOptaneProfile();

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_DEVICE_PROFILE_H_
