#include "src/nvm/fault_injector.h"

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace nvmgc {

namespace {

// splitmix64 finalizer: the per-access hash behind deterministic stall draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlan& FaultPlan::AddLatencySpike(uint64_t start_ns, uint64_t end_ns, double multiplier) {
  FaultWindow w;
  w.kind = FaultKind::kLatencySpike;
  w.start_ns = start_ns;
  w.end_ns = end_ns;
  w.cost_multiplier = multiplier;
  windows.push_back(w);
  return *this;
}

FaultPlan& FaultPlan::AddThrottle(uint64_t start_ns, uint64_t end_ns,
                                  double bandwidth_fraction) {
  FaultWindow w;
  w.kind = FaultKind::kBandwidthThrottle;
  w.start_ns = start_ns;
  w.end_ns = end_ns;
  w.bandwidth_fraction = bandwidth_fraction;
  windows.push_back(w);
  return *this;
}

FaultPlan& FaultPlan::AddStalls(uint64_t start_ns, uint64_t end_ns, double probability,
                                uint64_t stall_ns, uint32_t max_retries) {
  FaultWindow w;
  w.kind = FaultKind::kAccessStall;
  w.start_ns = start_ns;
  w.end_ns = end_ns;
  w.stall_probability = probability;
  w.stall_ns = stall_ns;
  w.max_retries = max_retries == 0 ? 1 : max_retries;
  windows.push_back(w);
  return *this;
}

FaultPlan& FaultPlan::AddDramPressure(uint64_t start_ns, uint64_t end_ns) {
  FaultWindow w;
  w.kind = FaultKind::kDramPressure;
  w.start_ns = start_ns;
  w.end_ns = end_ns;
  windows.push_back(w);
  return *this;
}

FaultPlan FaultPlan::Randomized(uint64_t seed, uint64_t horizon_ns) {
  NVMGC_CHECK(horizon_ns > 0);
  Random rng(seed);
  FaultPlan plan;
  plan.seed = seed;

  // Guaranteed sustained-throttle window opening the run: any pause starting
  // early runs degraded.
  const uint64_t throttle_end = horizon_ns * rng.NextInRange(30, 60) / 100;
  plan.AddThrottle(0, throttle_end, 0.2 + rng.NextDouble() * 0.3);

  // Guaranteed DRAM-pressure window opening the run: the first pauses must
  // take the direct-to-NVM write-cache fallback.
  const uint64_t pressure_end = horizon_ns * rng.NextInRange(40, 80) / 100;
  plan.AddDramPressure(0, pressure_end);

  // 1-3 latency spikes anywhere in the horizon.
  const uint64_t spikes = rng.NextInRange(1, 3);
  for (uint64_t i = 0; i < spikes; ++i) {
    const uint64_t start = rng.NextBelow(horizon_ns);
    const uint64_t duration = horizon_ns / 50 + rng.NextBelow(horizon_ns / 10 + 1);
    plan.AddLatencySpike(start, start + duration, 2.0 + rng.NextDouble() * 6.0);
  }

  // 1-2 transient-stall windows with bounded retries.
  const uint64_t stall_windows = rng.NextInRange(1, 2);
  for (uint64_t i = 0; i < stall_windows; ++i) {
    const uint64_t start = rng.NextBelow(horizon_ns);
    const uint64_t duration = horizon_ns / 20 + rng.NextBelow(horizon_ns / 5 + 1);
    plan.AddStalls(start, start + duration, 0.002 + rng.NextDouble() * 0.01,
                   1000 + rng.NextBelow(8000), 1 + static_cast<uint32_t>(rng.NextBelow(3)));
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultWindow& w : plan_.windows) {
    NVMGC_CHECK(w.end_ns >= w.start_ns);
    if (w.kind == FaultKind::kBandwidthThrottle) {
      NVMGC_CHECK(w.bandwidth_fraction > 0.0 && w.bandwidth_fraction <= 1.0);
    }
    if (w.kind == FaultKind::kLatencySpike) {
      NVMGC_CHECK(w.cost_multiplier >= 1.0);
    }
  }
}

uint64_t FaultInjector::StallDraw(uint64_t now_ns, uint64_t address) const {
  return Mix64(plan_.seed ^ Mix64(address) ^ (now_ns * 0xd1b54a32d192ed03ULL));
}

uint64_t FaultInjector::PerturbCost(uint64_t now_ns, const AccessDescriptor& d,
                                    uint64_t base_cost_ns) {
  double cost = static_cast<double>(base_cost_ns);
  uint64_t extra = 0;
  bool touched = false;
  for (const FaultWindow& w : plan_.windows) {
    if (!w.Contains(now_ns)) {
      continue;
    }
    switch (w.kind) {
      case FaultKind::kLatencySpike:
        cost *= w.cost_multiplier;
        spiked_accesses_.fetch_add(1, std::memory_order_relaxed);
        touched = true;
        break;
      case FaultKind::kBandwidthThrottle:
        cost /= w.bandwidth_fraction;
        throttled_accesses_.fetch_add(1, std::memory_order_relaxed);
        touched = true;
        break;
      case FaultKind::kAccessStall: {
        const uint64_t draw = StallDraw(now_ns, d.address);
        // Top 53 bits as a uniform double in [0, 1).
        const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
        if (u < w.stall_probability) {
          // The access stalls; the runtime retries with exponential backoff.
          // Retry count is drawn from the low bits, bounded by max_retries.
          const uint32_t retries = 1 + static_cast<uint32_t>(draw % w.max_retries);
          uint64_t stall_total = 0;
          for (uint32_t r = 0; r < retries; ++r) {
            stall_total += w.stall_ns << r;
          }
          extra += stall_total;
          stalls_injected_.fetch_add(1, std::memory_order_relaxed);
          stall_retries_.fetch_add(retries, std::memory_order_relaxed);
          stall_extra_ns_.fetch_add(stall_total, std::memory_order_relaxed);
          touched = true;
        }
        break;
      }
      case FaultKind::kDramPressure:
        break;  // Allocation-path fault; does not change access cost.
    }
  }
  if (touched) {
    perturbed_accesses_.fetch_add(1, std::memory_order_relaxed);
  }
  return static_cast<uint64_t>(cost + 0.5) + extra;
}

bool FaultInjector::ThrottleActive(uint64_t now_ns) const {
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kBandwidthThrottle && w.Contains(now_ns)) {
      return true;
    }
  }
  return false;
}

double FaultInjector::BandwidthFraction(uint64_t now_ns) const {
  double fraction = 1.0;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kBandwidthThrottle && w.Contains(now_ns)) {
      fraction *= w.bandwidth_fraction;
    }
  }
  return fraction;
}

bool FaultInjector::DramPressureActive(uint64_t now_ns) const {
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kDramPressure && w.Contains(now_ns)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::AllowRegionPairAllocation(uint64_t now_ns) {
  if (DramPressureActive(now_ns)) {
    dram_denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool FaultInjector::AnyFaultActive(uint64_t now_ns) const {
  for (const FaultWindow& w : plan_.windows) {
    if (w.Contains(now_ns)) {
      return true;
    }
  }
  return false;
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.perturbed_accesses = perturbed_accesses_.load(std::memory_order_relaxed);
  s.spiked_accesses = spiked_accesses_.load(std::memory_order_relaxed);
  s.throttled_accesses = throttled_accesses_.load(std::memory_order_relaxed);
  s.stalls_injected = stalls_injected_.load(std::memory_order_relaxed);
  s.stall_retries = stall_retries_.load(std::memory_order_relaxed);
  s.stall_extra_ns = stall_extra_ns_.load(std::memory_order_relaxed);
  s.dram_denials = dram_denials_.load(std::memory_order_relaxed);
  return s;
}

void FaultInjector::ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const {
  const FaultStats s = stats();
  metrics->SetGauge(prefix + ".perturbed_accesses", s.perturbed_accesses);
  metrics->SetGauge(prefix + ".spiked_accesses", s.spiked_accesses);
  metrics->SetGauge(prefix + ".throttled_accesses", s.throttled_accesses);
  metrics->SetGauge(prefix + ".stalls_injected", s.stalls_injected);
  metrics->SetGauge(prefix + ".stall_retries", s.stall_retries);
  metrics->SetGauge(prefix + ".stall_extra_ns", s.stall_extra_ns);
  metrics->SetGauge(prefix + ".dram_denials", s.dram_denials);
}

}  // namespace nvmgc
