// Declarative fault injection for the simulated NVM/DRAM devices.
//
// Real Optane DIMMs do not degrade gracefully: published characterizations
// (Izraelevitz et al. 2019; Peng et al.'s system evaluation) report thermal
// throttling windows where sustained bandwidth collapses, WPQ/write-buffer
// drain stalls that freeze individual accesses for microseconds, and latency
// that is wildly sensitive to the concurrent workload mix. On the host side,
// the DRAM the write cache borrows can vanish under memory pressure. A
// collector aimed at production has to keep completing pauses — correctly —
// through all of that.
//
// A FaultPlan is a declarative, seeded schedule of fault windows over
// simulated time. A FaultInjector evaluates the plan on every
// MemoryDevice::Access (perturbing the charged cost) and on every write-cache
// region-pair allocation (denying DRAM staging during pressure windows).
// Everything is deterministic: stall decisions hash (seed, address, time)
// instead of consuming shared RNG state, so a plan replays identically
// regardless of host thread interleaving of the access that asks.
//
// The GC-side reactions live elsewhere: WriteCache degrades workers to
// direct-to-NVM copying when pair allocation is denied, and CopyCollector
// disables asynchronous flushing + non-temporal stores for pauses that start
// (or write back) inside a sustained-throttle window. See DESIGN.md
// "Fault injection & degraded mode".

#ifndef NVMGC_SRC_NVM_FAULT_INJECTOR_H_
#define NVMGC_SRC_NVM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/nvm/access.h"

namespace nvmgc {

class MetricsRegistry;

enum class FaultKind : uint8_t {
  // Multiplies the cost of every access in the window (media retries,
  // mixed-workload latency cliffs).
  kLatencySpike,
  // Sustained bandwidth derate: the device delivers only `bandwidth_fraction`
  // of nominal throughput (thermal-throttle window). The collector treats an
  // active throttle window as the signal to enter degraded mode.
  kBandwidthThrottle,
  // Transient per-access stalls (WPQ drain, buffer-full backpressure): an
  // affected access pays `stall_ns`, doubling per bounded retry.
  kAccessStall,
  // Host DRAM pressure: write-cache region-pair allocations are denied, so GC
  // workers must fall back to direct-to-NVM survivor copying.
  kDramPressure,
};

struct FaultWindow {
  FaultKind kind = FaultKind::kLatencySpike;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // Exclusive.

  // kLatencySpike: cost multiplier (> 1).
  double cost_multiplier = 1.0;
  // kBandwidthThrottle: fraction of nominal bandwidth available (0 < f <= 1).
  double bandwidth_fraction = 1.0;
  // kAccessStall: per-access stall probability, base stall, and retry bound.
  double stall_probability = 0.0;
  uint64_t stall_ns = 0;
  uint32_t max_retries = 1;

  bool Contains(uint64_t now_ns) const { return now_ns >= start_ns && now_ns < end_ns; }
};

// A declarative, seeded schedule of fault windows. Windows may overlap; all
// active windows apply. The builder methods return *this for chaining.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultWindow> windows;

  FaultPlan& AddLatencySpike(uint64_t start_ns, uint64_t end_ns, double multiplier);
  FaultPlan& AddThrottle(uint64_t start_ns, uint64_t end_ns, double bandwidth_fraction);
  FaultPlan& AddStalls(uint64_t start_ns, uint64_t end_ns, double probability,
                       uint64_t stall_ns, uint32_t max_retries);
  FaultPlan& AddDramPressure(uint64_t start_ns, uint64_t end_ns);

  // Deterministic randomized schedule over [0, horizon_ns). Every randomized
  // plan contains at least one sustained-throttle window and one DRAM-pressure
  // window opening at t=0 (so short runs are guaranteed to exercise both
  // degradation paths), plus a random assortment of spikes and stall windows.
  static FaultPlan Randomized(uint64_t seed, uint64_t horizon_ns);
};

// Counter snapshot (all monotonic since construction).
struct FaultStats {
  uint64_t perturbed_accesses = 0;  // Accesses whose cost any window changed.
  uint64_t spiked_accesses = 0;
  uint64_t throttled_accesses = 0;
  uint64_t stalls_injected = 0;
  uint64_t stall_retries = 0;    // Backoff rounds across all stalls.
  uint64_t stall_extra_ns = 0;   // Total simulated ns added by stalls.
  uint64_t dram_denials = 0;     // Region-pair allocations denied.
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Returns the cost of `d` at `now_ns` given a nominal cost of
  // `base_cost_ns`, applying every active window. Thread-safe, deterministic
  // in (plan, now_ns, d.address).
  uint64_t PerturbCost(uint64_t now_ns, const AccessDescriptor& d, uint64_t base_cost_ns);

  // True when a kBandwidthThrottle window is active: the collector's signal
  // to run the pause degraded (synchronous, cache-line stores).
  bool ThrottleActive(uint64_t now_ns) const;
  // Product of active throttle fractions (1.0 when nominal).
  double BandwidthFraction(uint64_t now_ns) const;

  // DRAM-pressure gate for write-cache region-pair allocation. Returns false
  // (and counts a denial) while a kDramPressure window is active.
  bool AllowRegionPairAllocation(uint64_t now_ns);
  bool DramPressureActive(uint64_t now_ns) const;

  // True when any window is active (used for fault-attribution counters).
  bool AnyFaultActive(uint64_t now_ns) const;

  FaultStats stats() const;
  const FaultPlan& plan() const { return plan_; }

  // Publishes the counter snapshot as gauges under "<prefix>.*"
  // (e.g. "fault.heap.stalls_injected").
  void ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const;

 private:
  // Deterministic Bernoulli + retry draw for stall windows.
  uint64_t StallDraw(uint64_t now_ns, uint64_t address) const;

  FaultPlan plan_;

  std::atomic<uint64_t> perturbed_accesses_{0};
  std::atomic<uint64_t> spiked_accesses_{0};
  std::atomic<uint64_t> throttled_accesses_{0};
  std::atomic<uint64_t> stalls_injected_{0};
  std::atomic<uint64_t> stall_retries_{0};
  std::atomic<uint64_t> stall_extra_ns_{0};
  std::atomic<uint64_t> dram_denials_{0};
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_FAULT_INJECTOR_H_
