#include "src/nvm/memory_device.h"

#include <algorithm>
#include <cmath>

#include "src/nvm/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace nvmgc {

MemoryDevice::MemoryDevice(DeviceProfile profile) : model_(profile) {}

void MemoryDevice::BindTenantRange(uint8_t tenant, uint64_t base, uint64_t bytes) {
  NVMGC_CHECK_MSG(tenant < kMaxTenants, "tenant id out of range: a shared device supports "
                                        "at most BandwidthLedger::kMaxTenants tenants");
  const uint32_t count = tenant_range_count_.load(std::memory_order_relaxed);
  NVMGC_CHECK_MSG(count < kMaxTenantRanges, "too many tenant ranges bound to one device");
  tenant_ranges_[count] = TenantRange{tenant, base, base + bytes};
  // Publish the range after its fields are written; readers that miss the new
  // count attribute a brief prefix of traffic to tenant 0, which is fine —
  // Vms bind their arena before issuing any traffic against it.
  tenant_range_count_.store(count + 1, std::memory_order_release);
  for (uint32_t i = 0; i < count; ++i) {
    if (tenant_ranges_[i].tenant != tenant) {
      multi_tenant_.store(true, std::memory_order_relaxed);
    }
  }
}

uint8_t MemoryDevice::TenantFor(uint64_t address) const {
  const uint32_t count = tenant_range_count_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < count; ++i) {
    const TenantRange& r = tenant_ranges_[i];
    if (address >= r.base && address < r.end) {
      return r.tenant;
    }
  }
  return 0;
}

DeviceCounters MemoryDevice::tenant_counters(uint8_t tenant) const {
  DeviceCounters c;
  if (tenant >= kMaxTenants) {
    return c;
  }
  const TenantCounters& t = tenant_counters_[tenant];
  c.read_bytes = t.read_bytes.load(std::memory_order_relaxed);
  c.write_bytes = t.write_bytes.load(std::memory_order_relaxed);
  c.nt_write_bytes = t.nt_write_bytes.load(std::memory_order_relaxed);
  c.read_ops = t.read_ops.load(std::memory_order_relaxed);
  c.write_ops = t.write_ops.load(std::memory_order_relaxed);
  return c;
}

uint64_t MemoryDevice::CostNs(uint64_t now_ns, const AccessDescriptor& d) const {
  const DeviceProfile& p = model_.profile();

  // Latency term.
  double latency_ns = 0.0;
  if (d.pattern == AccessPattern::kRandom) {
    latency_ns = d.op == AccessOp::kRead ? static_cast<double>(p.random_read_latency_ns)
                                         : static_cast<double>(p.random_write_latency_ns);
    if (d.prefetched) {
      latency_ns *= 1.0 - p.prefetch_hide_fraction;
    }
  } else {
    const uint32_t lines = (d.bytes + 63) / 64;
    latency_ns = p.sequential_line_ns * static_cast<double>(lines);
  }

  // Bandwidth term: bytes over this thread's share of the device total.
  const BandwidthLedger::Mix window = ledger_.SampleMix(now_ns);
  MixState mix;
  mix.write_fraction = window.write_fraction;
  mix.nt_write_fraction = window.nt_write_fraction;
  mix.active_threads = active_threads();
  const double total_mbps = model_.TotalBandwidthMbps(mix);
  double share_mbps = total_mbps / static_cast<double>(mix.active_threads) *
                      model_.PatternFraction(d.op, d.pattern);
  if (multi_tenant_.load(std::memory_order_relaxed)) {
    // Shared device: scale this tenant's share by its occupancy-derived
    // fraction of the device (plus the cross-tenant interleaving penalty).
    // Devices with zero or one bound tenant never reach this branch, so the
    // single-Vm cost function is bit-identical to the pre-fleet model.
    const uint8_t tenant = TenantFor(d.address);
    const BandwidthLedger::TenantOccupancy occ = ledger_.SampleTenantOccupancy(now_ns, tenant);
    share_mbps *= model_.TenantShareFraction(occ.own_fraction(), occ.active_tenants);
  }
  share_mbps = std::max(1.0, share_mbps);
  // 1 MB/s == 1e6 bytes / 1e9 ns, so ns = bytes * 1000 / MBps.
  const double bw_ns = static_cast<double>(d.bytes) * 1000.0 / share_mbps;

  return static_cast<uint64_t>(latency_ns + bw_ns + 0.5);
}

uint64_t MemoryDevice::Access(SimClock* clock, const AccessDescriptor& d) {
  NVMGC_DCHECK(clock != nullptr);
  const uint64_t now = clock->now_ns();
  uint64_t cost = CostNs(now, d);
  if (FaultInjector* injector = injector_.load(std::memory_order_acquire)) {
    cost = injector->PerturbCost(now, d, cost);
  }
  clock->Advance(cost);

  const uint8_t tenant =
      tenant_range_count_.load(std::memory_order_relaxed) > 0 ? TenantFor(d.address) : 0;
  ledger_.Charge(now, d, tenant);
  heatmap_.Charge(d);
  if (d.op == AccessOp::kWrite && persist_.enabled()) {
    persist_.NoteWrite(d.address, d.bytes);
  }
  if (recording_.load(std::memory_order_acquire)) {
    recorder_->Charge(now, d);
  }

  TenantCounters& tc = tenant_counters_[tenant];
  if (d.op == AccessOp::kRead) {
    read_bytes_.fetch_add(d.bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
    tc.read_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
    tc.read_ops.fetch_add(1, std::memory_order_relaxed);
  } else {
    write_bytes_.fetch_add(d.bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
    tc.write_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
    tc.write_ops.fetch_add(1, std::memory_order_relaxed);
    if (d.non_temporal) {
      nt_write_bytes_.fetch_add(d.bytes, std::memory_order_relaxed);
      tc.nt_write_bytes.fetch_add(d.bytes, std::memory_order_relaxed);
    }
  }
  return cost;
}

DeviceCounters MemoryDevice::counters() const {
  DeviceCounters c;
  c.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  c.write_bytes = write_bytes_.load(std::memory_order_relaxed);
  c.nt_write_bytes = nt_write_bytes_.load(std::memory_order_relaxed);
  c.read_ops = read_ops_.load(std::memory_order_relaxed);
  c.write_ops = write_ops_.load(std::memory_order_relaxed);
  return c;
}

void MemoryDevice::ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const {
  const DeviceCounters c = counters();
  metrics->SetGauge(prefix + ".lifetime.read_bytes", c.read_bytes);
  metrics->SetGauge(prefix + ".lifetime.write_bytes", c.write_bytes);
  metrics->SetGauge(prefix + ".lifetime.nt_write_bytes", c.nt_write_bytes);
  metrics->SetGauge(prefix + ".lifetime.read_ops", c.read_ops);
  metrics->SetGauge(prefix + ".lifetime.write_ops", c.write_ops);
  heatmap_.ExportMetrics(metrics, prefix);
  persist_.ExportMetrics(metrics, prefix);
}

void MemoryDevice::StartRecording(uint64_t now_ns, uint64_t bucket_ns, size_t max_buckets) {
  // Replacing the recorder while other threads may still be charging it is a
  // use-after-free; on a shared (fleet) device it would also silently steal a
  // co-tenant's recording. One recorder per device at a time.
  NVMGC_CHECK_MSG(!recording_.load(std::memory_order_acquire),
                  "StartRecording while a recording is active: call StopRecording first "
                  "(shared devices get one bandwidth recorder, not one per tenant)");
  recorder_ = std::make_unique<BandwidthRecorder>(bucket_ns, max_buckets);
  recorder_->Start(now_ns);
  recording_.store(true, std::memory_order_release);
}

void MemoryDevice::StopRecording() { recording_.store(false, std::memory_order_release); }

std::vector<BandwidthSample> MemoryDevice::RecordedSeries() const {
  if (!recorder_) {
    return {};
  }
  return recorder_->Series();
}

MixState MemoryDevice::CurrentMix(uint64_t now_ns) const {
  const BandwidthLedger::Mix window = ledger_.SampleMix(now_ns);
  MixState mix;
  mix.write_fraction = window.write_fraction;
  mix.nt_write_fraction = window.nt_write_fraction;
  mix.active_threads = active_threads();
  return mix;
}

double MemoryDevice::CurrentTotalBandwidthMbps(uint64_t now_ns) const {
  return model_.TotalBandwidthMbps(CurrentMix(now_ns));
}

}  // namespace nvmgc
