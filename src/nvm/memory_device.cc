#include "src/nvm/memory_device.h"

#include <algorithm>
#include <cmath>

#include "src/nvm/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace nvmgc {

MemoryDevice::MemoryDevice(DeviceProfile profile) : model_(profile) {}

uint64_t MemoryDevice::CostNs(uint64_t now_ns, const AccessDescriptor& d) const {
  const DeviceProfile& p = model_.profile();

  // Latency term.
  double latency_ns = 0.0;
  if (d.pattern == AccessPattern::kRandom) {
    latency_ns = d.op == AccessOp::kRead ? static_cast<double>(p.random_read_latency_ns)
                                         : static_cast<double>(p.random_write_latency_ns);
    if (d.prefetched) {
      latency_ns *= 1.0 - p.prefetch_hide_fraction;
    }
  } else {
    const uint32_t lines = (d.bytes + 63) / 64;
    latency_ns = p.sequential_line_ns * static_cast<double>(lines);
  }

  // Bandwidth term: bytes over this thread's share of the device total.
  const BandwidthLedger::Mix window = ledger_.SampleMix(now_ns);
  MixState mix;
  mix.write_fraction = window.write_fraction;
  mix.nt_write_fraction = window.nt_write_fraction;
  mix.active_threads = active_threads();
  const double total_mbps = model_.TotalBandwidthMbps(mix);
  const double share_mbps = std::max(
      1.0, total_mbps / static_cast<double>(mix.active_threads) *
               model_.PatternFraction(d.op, d.pattern));
  // 1 MB/s == 1e6 bytes / 1e9 ns, so ns = bytes * 1000 / MBps.
  const double bw_ns = static_cast<double>(d.bytes) * 1000.0 / share_mbps;

  return static_cast<uint64_t>(latency_ns + bw_ns + 0.5);
}

uint64_t MemoryDevice::Access(SimClock* clock, const AccessDescriptor& d) {
  NVMGC_DCHECK(clock != nullptr);
  const uint64_t now = clock->now_ns();
  uint64_t cost = CostNs(now, d);
  if (FaultInjector* injector = injector_.load(std::memory_order_acquire)) {
    cost = injector->PerturbCost(now, d, cost);
  }
  clock->Advance(cost);

  ledger_.Charge(now, d);
  heatmap_.Charge(d);
  if (d.op == AccessOp::kWrite && persist_.enabled()) {
    persist_.NoteWrite(d.address, d.bytes);
  }
  if (recording_.load(std::memory_order_acquire)) {
    recorder_->Charge(now, d);
  }

  if (d.op == AccessOp::kRead) {
    read_bytes_.fetch_add(d.bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
  } else {
    write_bytes_.fetch_add(d.bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
    if (d.non_temporal) {
      nt_write_bytes_.fetch_add(d.bytes, std::memory_order_relaxed);
    }
  }
  return cost;
}

DeviceCounters MemoryDevice::counters() const {
  DeviceCounters c;
  c.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  c.write_bytes = write_bytes_.load(std::memory_order_relaxed);
  c.nt_write_bytes = nt_write_bytes_.load(std::memory_order_relaxed);
  c.read_ops = read_ops_.load(std::memory_order_relaxed);
  c.write_ops = write_ops_.load(std::memory_order_relaxed);
  return c;
}

void MemoryDevice::ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const {
  const DeviceCounters c = counters();
  metrics->SetGauge(prefix + ".lifetime.read_bytes", c.read_bytes);
  metrics->SetGauge(prefix + ".lifetime.write_bytes", c.write_bytes);
  metrics->SetGauge(prefix + ".lifetime.nt_write_bytes", c.nt_write_bytes);
  metrics->SetGauge(prefix + ".lifetime.read_ops", c.read_ops);
  metrics->SetGauge(prefix + ".lifetime.write_ops", c.write_ops);
  heatmap_.ExportMetrics(metrics, prefix);
  persist_.ExportMetrics(metrics, prefix);
}

void MemoryDevice::StartRecording(uint64_t now_ns, uint64_t bucket_ns, size_t max_buckets) {
  recorder_ = std::make_unique<BandwidthRecorder>(bucket_ns, max_buckets);
  recorder_->Start(now_ns);
  recording_.store(true, std::memory_order_release);
}

void MemoryDevice::StopRecording() { recording_.store(false, std::memory_order_release); }

std::vector<BandwidthSample> MemoryDevice::RecordedSeries() const {
  if (!recorder_) {
    return {};
  }
  return recorder_->Series();
}

MixState MemoryDevice::CurrentMix(uint64_t now_ns) const {
  const BandwidthLedger::Mix window = ledger_.SampleMix(now_ns);
  MixState mix;
  mix.write_fraction = window.write_fraction;
  mix.nt_write_fraction = window.nt_write_fraction;
  mix.active_threads = active_threads();
  return mix;
}

double MemoryDevice::CurrentTotalBandwidthMbps(uint64_t now_ns) const {
  return model_.TotalBandwidthMbps(CurrentMix(now_ns));
}

}  // namespace nvmgc
