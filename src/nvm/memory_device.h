// Simulated memory device: the global arbiter that charges simulated time for
// every heap access and maintains traffic statistics.
//
// This is the substitution point for real Optane hardware (see DESIGN.md §2):
// heap bytes physically live in host RAM, but all timing comes from the
// calibrated DeviceProfile + BandwidthModel. The arbiter couples concurrent
// threads through a shared mix estimate and an active-thread count, which is
// what makes the vanilla collector stop scaling at the write knee and the
// optimized collector keep scaling — emergently rather than by fiat.

#ifndef NVMGC_SRC_NVM_MEMORY_DEVICE_H_
#define NVMGC_SRC_NVM_MEMORY_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/nvm/access.h"
#include "src/nvm/access_heatmap.h"
#include "src/nvm/bandwidth_ledger.h"
#include "src/nvm/bandwidth_model.h"
#include "src/nvm/device_profile.h"
#include "src/nvm/persist_ledger.h"
#include "src/nvm/sim_clock.h"

namespace nvmgc {

class FaultInjector;
class MetricsRegistry;

// Aggregate counters, readable at any time. Snapshot subtraction gives
// per-phase traffic (e.g. bytes moved during one GC pause).
struct DeviceCounters {
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t nt_write_bytes = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;

  DeviceCounters operator-(const DeviceCounters& rhs) const {
    return DeviceCounters{read_bytes - rhs.read_bytes, write_bytes - rhs.write_bytes,
                          nt_write_bytes - rhs.nt_write_bytes, read_ops - rhs.read_ops,
                          write_ops - rhs.write_ops};
  }
  uint64_t total_bytes() const { return read_bytes + write_bytes; }
};

class MemoryDevice {
 public:
  static constexpr uint32_t kMaxTenants = BandwidthLedger::kMaxTenants;

  explicit MemoryDevice(DeviceProfile profile);

  // Charges `clock` for the access and returns the charged nanoseconds.
  // Thread-safe. When a fault injector is attached, the nominal cost is
  // perturbed by its active fault windows before charging.
  uint64_t Access(SimClock* clock, const AccessDescriptor& d);

  // Nominal cost preview without charging, accounting, or fault perturbation
  // (used by tests/models).
  uint64_t CostNs(uint64_t now_ns, const AccessDescriptor& d) const;

  // --- Multi-tenant sharing (fleet mode) ---
  // Attributes the address range [base, base + bytes) to `tenant`: every
  // access landing in it charges that tenant's ledger occupancy and counters.
  // Each Vm sharing the device binds its heap arena once at construction;
  // binding must finish before the range sees traffic (ranges are appended
  // lock-free for readers, but registration itself is not thread-safe).
  // Unbound addresses (and all traffic on a device with no bindings) belong
  // to tenant 0.
  void BindTenantRange(uint8_t tenant, uint64_t base, uint64_t bytes);
  uint8_t TenantFor(uint64_t address) const;
  // True once ranges from two or more distinct tenants are bound — only then
  // does the cross-tenant contention term enter CostNs, so single-Vm devices
  // behave exactly as before.
  bool multi_tenant() const { return multi_tenant_.load(std::memory_order_relaxed); }
  // Lifetime traffic attributed to `tenant`. The regression invariant a
  // shared device must keep: summing tenant_counters over all tenants equals
  // counters().
  DeviceCounters tenant_counters(uint8_t tenant) const;

  // Fault injection: attach a (non-owned) injector whose plan perturbs every
  // subsequent access; pass nullptr to detach. The injector must outlive its
  // attachment.
  void AttachFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const { return injector_.load(std::memory_order_acquire); }

  // Active-thread management: the runtime declares how many logical threads
  // are concurrently issuing traffic (GC workers during a pause, mutators
  // otherwise). RAII helper below.
  void AddActiveThreads(uint32_t n) { active_threads_.fetch_add(n, std::memory_order_relaxed); }
  void RemoveActiveThreads(uint32_t n) { active_threads_.fetch_sub(n, std::memory_order_relaxed); }
  uint32_t active_threads() const {
    const uint32_t t = active_threads_.load(std::memory_order_relaxed);
    return t == 0 ? 1 : t;
  }

  DeviceCounters counters() const;

  // Time-series recording (bandwidth figures). The recorder is created by
  // StartRecording and charged on every access until StopRecording.
  void StartRecording(uint64_t now_ns, uint64_t bucket_ns, size_t max_buckets);
  void StopRecording();
  std::vector<BandwidthSample> RecordedSeries() const;

  // Instantaneous model outputs (for tests and monitors).
  MixState CurrentMix(uint64_t now_ns) const;
  double CurrentTotalBandwidthMbps(uint64_t now_ns) const;

  // The sliding-window traffic ledger (the DeviceTimeline sampler drains its
  // per-epoch buckets into per-pause bandwidth series).
  const BandwidthLedger& ledger() const { return ledger_; }

  // Per-region access heatmap. Unconfigured (and thus free) until the heap
  // binds its arena via heatmap().Configure(); see src/nvm/access_heatmap.h.
  AccessHeatmap& heatmap() { return heatmap_; }
  const AccessHeatmap& heatmap() const { return heatmap_; }

  // Persistence state tracker (durability mode). Unconfigured (and thus
  // free — one relaxed load per write) until the runtime binds the arena via
  // persist().Configure(); see src/nvm/persist_ledger.h.
  PersistOrderingLedger& persist() { return persist_; }
  const PersistOrderingLedger& persist() const { return persist_; }

  // Publishes the lifetime traffic ledger as gauges under
  // "<prefix>.lifetime.*" (read_bytes, write_bytes, nt_write_bytes, read_ops,
  // write_ops) — e.g. "device.heap.lifetime.read_bytes" — plus the heatmap
  // aggregates under "<prefix>.heatmap.*" when the heatmap is configured.
  void ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const;

  const DeviceProfile& profile() const { return model_.profile(); }
  const BandwidthModel& model() const { return model_; }
  DeviceKind kind() const { return model_.profile().kind; }

 private:
  // One bound tenant address range. A fixed array + atomic count keeps
  // TenantFor lock-free for the access hot path.
  struct TenantRange {
    uint8_t tenant = 0;
    uint64_t base = 0;
    uint64_t end = 0;
  };
  static constexpr size_t kMaxTenantRanges = 16;

  struct TenantCounters {
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> write_bytes{0};
    std::atomic<uint64_t> nt_write_bytes{0};
    std::atomic<uint64_t> read_ops{0};
    std::atomic<uint64_t> write_ops{0};
  };

  BandwidthModel model_;
  BandwidthLedger ledger_;
  AccessHeatmap heatmap_;
  PersistOrderingLedger persist_;

  std::atomic<uint32_t> active_threads_{0};
  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> write_bytes_{0};
  std::atomic<uint64_t> nt_write_bytes_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};

  TenantRange tenant_ranges_[kMaxTenantRanges];
  std::atomic<uint32_t> tenant_range_count_{0};
  std::atomic<bool> multi_tenant_{false};
  TenantCounters tenant_counters_[kMaxTenants];

  std::atomic<bool> recording_{false};
  std::unique_ptr<BandwidthRecorder> recorder_;
  std::atomic<FaultInjector*> injector_{nullptr};
};

// Declares `n` active threads on `device` for the current scope.
class ScopedDeviceActivity {
 public:
  ScopedDeviceActivity(MemoryDevice* device, uint32_t n) : device_(device), n_(n) {
    device_->AddActiveThreads(n_);
  }
  ~ScopedDeviceActivity() { device_->RemoveActiveThreads(n_); }

  ScopedDeviceActivity(const ScopedDeviceActivity&) = delete;
  ScopedDeviceActivity& operator=(const ScopedDeviceActivity&) = delete;

 private:
  MemoryDevice* device_;
  uint32_t n_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_MEMORY_DEVICE_H_
