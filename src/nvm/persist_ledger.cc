#include "src/nvm/persist_ledger.h"

#include <algorithm>
#include <cstring>

#include "src/nvm/sim_clock.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace nvmgc {

void PersistOrderingLedger::Configure(uint64_t base, uint64_t bytes, uint64_t flush_line_ns,
                                      uint64_t fence_ns) {
  NVMGC_CHECK(bytes > 0);
  base_ = base;
  bytes_ = bytes;
  flush_line_ns_ = flush_line_ns;
  fence_ns_ = fence_ns;
  line_count_ = (bytes + 63) / 64;
  lines_ = std::make_unique<std::atomic<uint8_t>[]>(line_count_);
  for (uint64_t i = 0; i < line_count_; ++i) {
    lines_[i].store(kClean, std::memory_order_relaxed);
  }
  flush_lines_.store(0, std::memory_order_relaxed);
  fences_.store(0, std::memory_order_relaxed);
  persist_ns_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void PersistOrderingLedger::NoteWrite(uint64_t address, uint32_t bytes) {
  if (bytes == 0 || address + bytes <= base_ || address >= base_ + bytes_) {
    return;  // Outside the arena (mutator handles, DRAM structures, ...).
  }
  const uint64_t start = address > base_ ? address - base_ : 0;
  uint64_t end = address + bytes - base_;
  if (end > bytes_) {
    end = bytes_;
  }
  const uint64_t first = start / 64;
  const uint64_t last = (end - 1) / 64;
  for (uint64_t line = first; line <= last; ++line) {
    lines_[line].store(kDirty, std::memory_order_relaxed);
  }
}

void PersistOrderingLedger::CollectDirtyLines(uint64_t address, uint64_t bytes,
                                              std::vector<uint64_t>* line_offsets) const {
  if (!enabled() || bytes == 0 || address + bytes <= base_ || address >= base_ + bytes_) {
    return;
  }
  const uint64_t start = address > base_ ? address - base_ : 0;
  uint64_t end = address + bytes - base_;
  if (end > bytes_) {
    end = bytes_;
  }
  for (uint64_t line = start / 64; line <= (end - 1) / 64; ++line) {
    if (lines_[line].load(std::memory_order_relaxed) == kDirty) {
      line_offsets->push_back(line * 64);
    }
  }
}

bool PersistOrderingLedger::PromoteLine(uint64_t line) {
  uint8_t expected = kFlushed;
  return lines_[line].compare_exchange_strong(expected, kDurable, std::memory_order_relaxed);
}

void PersistOrderingLedger::ArmCrashCapture(uint64_t crash_ns) {
  NVMGC_CHECK_MSG(enabled(), "ArmCrashCapture requires a configured ledger");
  std::lock_guard<std::mutex> lock(capture_mu_);
  capture_.base = base_;
  capture_.bytes = bytes_;
  capture_.crash_ns = crash_ns;
  capture_.image.assign(bytes_, kPersistPoisonByte);
  capture_.durable.assign(line_count_, 0);
  capture_armed_.store(true, std::memory_order_release);
}

CrashImage PersistOrderingLedger::TakeCrashImage() {
  std::lock_guard<std::mutex> lock(capture_mu_);
  capture_armed_.store(false, std::memory_order_release);
  CrashImage image = std::move(capture_);
  capture_ = CrashImage{};
  return image;
}

void PersistOrderingLedger::ExportMetrics(MetricsRegistry* metrics,
                                          const std::string& prefix) const {
  if (!enabled()) {
    return;
  }
  metrics->SetGauge(prefix + ".persist.flush_lines", flush_lines());
  metrics->SetGauge(prefix + ".persist.fences", fences());
  metrics->SetGauge(prefix + ".persist.ns", persist_ns());
}

void PersistBatch::FlushRange(uint64_t address, uint64_t bytes, SimClock* clock) {
  if (ledger_ == nullptr || !ledger_->enabled() || bytes == 0) {
    return;
  }
  const uint64_t base = ledger_->base_;
  const uint64_t arena = ledger_->bytes_;
  if (address + bytes <= base || address >= base + arena) {
    return;
  }
  const uint64_t start = address > base ? address - base : 0;
  uint64_t end = address + bytes - base;
  if (end > arena) {
    end = arena;
  }
  const uint64_t first = start / 64;
  const uint64_t last = (end - 1) / 64;
  uint64_t flushed = 0;
  for (uint64_t line = first; line <= last; ++line) {
    uint8_t expected = PersistOrderingLedger::kDirty;
    if (ledger_->lines_[line].compare_exchange_strong(expected,
                                                      PersistOrderingLedger::kFlushed,
                                                      std::memory_order_relaxed)) {
      pending_.push_back(line);
      ++flushed;
    }
  }
  if (flushed > 0) {
    const uint64_t cost = flushed * ledger_->flush_line_ns_;
    clock->Advance(cost);
    flush_lines_ += flushed;
    persist_ns_ += cost;
    ledger_->flush_lines_.fetch_add(flushed, std::memory_order_relaxed);
    ledger_->persist_ns_.fetch_add(cost, std::memory_order_relaxed);
  }
}

void PersistBatch::Fence(SimClock* clock) {
  if (ledger_ == nullptr || !ledger_->enabled()) {
    return;
  }
  clock->Advance(ledger_->fence_ns_);
  ++fences_;
  persist_ns_ += ledger_->fence_ns_;
  ledger_->fences_.fetch_add(1, std::memory_order_relaxed);
  ledger_->persist_ns_.fetch_add(ledger_->fence_ns_, std::memory_order_relaxed);

  // Promote this batch's flushed lines to durable. A line re-dirtied since
  // its flush stays dirty — its new content was never flushed, so the fence
  // has nothing to order for it.
  std::vector<uint64_t> promoted;
  promoted.reserve(pending_.size());
  for (uint64_t line : pending_) {
    if (ledger_->PromoteLine(line)) {
      promoted.push_back(line);
    }
  }
  pending_.clear();

  if (!promoted.empty() && ledger_->capture_armed() &&
      clock->now_ns() < ledger_->capture_.crash_ns) {
    // Power is still on at fence completion: the promoted lines' current
    // arena content is what the DIMM will hold at the crash instant (no
    // later fence can un-persist it; a later fence of the same line just
    // overwrites the captured content).
    std::lock_guard<std::mutex> lock(ledger_->capture_mu_);
    CrashImage& cap = ledger_->capture_;
    for (uint64_t line : promoted) {
      const uint64_t offset = line * 64;
      const uint64_t len = std::min<uint64_t>(64, ledger_->bytes_ - offset);
      std::memcpy(cap.image.data() + offset,
                  reinterpret_cast<const void*>(ledger_->base_ + offset), len);
      cap.durable[line] = 1;
    }
  }

  // Durable lines return to the trackable pool: a subsequent write makes
  // them dirty again via NoteWrite (kDirty overwrites kDurable).
}

}  // namespace nvmgc
