// Persistence model for a simulated NVM device.
//
// Real persistent memory only guarantees durability for cache lines that were
// explicitly flushed (CLWB/CLFLUSHOPT) and then ordered by a store fence
// (SFENCE). The PersistOrderingLedger tracks that state machine per 64-byte
// line of the device arena:
//
//   kClean --write--> kDirty --flush--> kFlushed --fence--> kDurable
//                       ^                  |
//                       +---- re-write ----+
//
// MemoryDevice::Access() marks written lines dirty; a PersistBatch charges
// the simulated flush cost per dirty line it touches and the fence cost when
// the batch is fenced, promoting its flushed lines to durable. The ledger can
// additionally be armed with a crash instant: at every fence that completes
// before that instant, the *current arena content* of the newly durable lines
// is copied into a crash image — "what the DIMM would hold after power loss
// at time T" under last-fenced-content semantics. Lines never fenced before T
// stay poison (0xCD) in the image.
//
// Model simplification (documented in DESIGN.md §8): we ignore spontaneous
// cache evictions, so a dirty-but-unflushed line is never durable. This makes
// the recovery checker strictly conservative — real hardware could only be
// *more* durable than the model claims.
//
// An unconfigured ledger is free: Access() performs one relaxed load and
// skips all tracking, so durability off costs nothing (ISSUE 6 acceptance
// criterion).

#ifndef NVMGC_SRC_NVM_PERSIST_LEDGER_H_
#define NVMGC_SRC_NVM_PERSIST_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nvmgc {

class MetricsRegistry;
class SimClock;

// Byte value crash images are initialized with; any line never captured at a
// fence keeps this pattern, so recovery code reading it sees garbage rather
// than silently-valid stale data.
inline constexpr uint8_t kPersistPoisonByte = 0xCD;

// The surviving NVM state at a simulated power-cut instant.
struct CrashImage {
  uint64_t base = 0;      // Host address the image mirrors.
  uint64_t bytes = 0;     // Arena length covered.
  uint64_t crash_ns = 0;  // Simulated instant power was cut.
  std::vector<uint8_t> image;    // Last-fenced content; poison where none.
  std::vector<uint8_t> durable;  // 1 per 64B line: content is durable.

  bool LineDurable(uint64_t offset) const { return durable[offset / 64] != 0; }
};

class PersistOrderingLedger {
 public:
  PersistOrderingLedger() = default;

  PersistOrderingLedger(const PersistOrderingLedger&) = delete;
  PersistOrderingLedger& operator=(const PersistOrderingLedger&) = delete;

  // Covers [base, base + bytes) with one state byte per 64B line and sets the
  // simulated flush/fence costs. Reconfiguring resets all lines to kClean.
  void Configure(uint64_t base, uint64_t bytes, uint64_t flush_line_ns, uint64_t fence_ns);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Marks every line overlapping [address, address + bytes) dirty. Called by
  // MemoryDevice::Access() for each write when the ledger is enabled.
  void NoteWrite(uint64_t address, uint32_t bytes);

  // Appends the arena byte offsets (line-aligned) of every currently-dirty
  // line overlapping [address, address + bytes). The collector uses this to
  // build the in-place-update redo log at commit time.
  void CollectDirtyLines(uint64_t address, uint64_t bytes,
                         std::vector<uint64_t>* line_offsets) const;

  // Arms crash capture: from now on, every fence whose completion time is
  // < crash_ns snapshots its newly durable lines into the image.
  void ArmCrashCapture(uint64_t crash_ns);
  bool capture_armed() const { return capture_armed_.load(std::memory_order_acquire); }

  // Surrenders the armed capture image (the ledger stays configured).
  CrashImage TakeCrashImage();

  // --- Lifetime counters ---
  uint64_t flush_lines() const { return flush_lines_.load(std::memory_order_relaxed); }
  uint64_t fences() const { return fences_.load(std::memory_order_relaxed); }
  uint64_t persist_ns() const { return persist_ns_.load(std::memory_order_relaxed); }

  uint64_t flush_line_ns() const { return flush_line_ns_; }
  uint64_t fence_ns() const { return fence_ns_; }
  uint64_t base() const { return base_; }
  uint64_t bytes() const { return bytes_; }

  // Publishes lifetime gauges under "<prefix>.persist.*" (flush_lines,
  // fences, persist_ns). No-op when disabled.
  void ExportMetrics(MetricsRegistry* metrics, const std::string& prefix) const;

 private:
  friend class PersistBatch;

  enum LineState : uint8_t {
    kClean = 0,
    kDirty = 1,
    kFlushed = 2,
    kDurable = 3,
  };

  // Promotes `line` kFlushed -> kDurable; returns true if this fence did the
  // promotion (a concurrent re-dirty loses the race and stays dirty).
  bool PromoteLine(uint64_t line);

  std::atomic<bool> enabled_{false};
  uint64_t base_ = 0;
  uint64_t bytes_ = 0;
  uint64_t flush_line_ns_ = 0;
  uint64_t fence_ns_ = 0;
  std::unique_ptr<std::atomic<uint8_t>[]> lines_;
  uint64_t line_count_ = 0;

  std::atomic<uint64_t> flush_lines_{0};
  std::atomic<uint64_t> fences_{0};
  std::atomic<uint64_t> persist_ns_{0};

  // Crash capture. Fences are rare (a handful per pause), so a mutex around
  // the capture step costs nothing measurable.
  std::atomic<bool> capture_armed_{false};
  std::mutex capture_mu_;
  CrashImage capture_;
};

// One CPU's in-flight flush set: CLWBs issued since the last SFENCE. Flushing
// marks lines kFlushed and charges flush_line_ns each; Fence() charges
// fence_ns, promotes the batch's lines to durable, and (when capture is
// armed) snapshots their content into the crash image. Matches SFENCE
// semantics: a fence only drains the flushes the issuing CPU performed, so
// each GC worker carries its own batch.
//
// All methods are no-ops when the ledger is disabled, so call sites need no
// durability guards of their own.
class PersistBatch {
 public:
  explicit PersistBatch(PersistOrderingLedger* ledger) : ledger_(ledger) {}

  // Flushes the dirty lines overlapping [address, address + bytes), charging
  // `clock` per line. Clean/flushed/durable lines cost nothing (CLWB of an
  // unmodified line is ~free and changes no state we track).
  void FlushRange(uint64_t address, uint64_t bytes, SimClock* clock);

  // Orders every flush in this batch: charges the fence cost and makes the
  // flushed lines durable. Resets the batch for reuse.
  void Fence(SimClock* clock);

  // --- Per-batch accumulated counters (survive across Fence calls) ---
  uint64_t flush_lines() const { return flush_lines_; }
  uint64_t fences() const { return fences_; }
  uint64_t persist_ns() const { return persist_ns_; }
  bool empty() const { return pending_.empty(); }

 private:
  PersistOrderingLedger* ledger_;
  std::vector<uint64_t> pending_;  // Line indices flushed since last fence.
  uint64_t flush_lines_ = 0;
  uint64_t fences_ = 0;
  uint64_t persist_ns_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_PERSIST_LEDGER_H_
