// Software-prefetch tracking (Section 4.3 of the paper).
//
// When the collector pushes a reference onto its working stack it may issue a
// prefetch for the referent (and, with the header map enabled, for the probe
// line). The queue remembers the most recent prefetched addresses; when a
// later access hits one, the device charges a reduced miss latency. A real
// __builtin_prefetch is issued too, but the simulated effect is what the
// experiments measure.

#ifndef NVMGC_SRC_NVM_PREFETCH_QUEUE_H_
#define NVMGC_SRC_NVM_PREFETCH_QUEUE_H_

#include <cstddef>
#include <cstdint>

namespace nvmgc {

class PrefetchQueue {
 public:
  static constexpr size_t kCapacity = 64;  // Maximum outstanding-prefetch budget.

  PrefetchQueue() { Reset(); }

  void Reset() {
    for (auto& slot : ring_) {
      slot = 0;
    }
    next_ = 0;
    issued_ = 0;
    hits_ = 0;
  }

  // Sets the prefetch distance: how many outstanding prefetches are tracked
  // before the oldest is overwritten. A prefetch issued too far ahead of its
  // use is evicted by newer ones (distance too large for the access stream);
  // the adaptive policy tunes this from the observed hit rate. Clamped to
  // [1, kCapacity]; only meaningful to change between pauses (Reset clears
  // the ring each pause).
  void SetWindow(size_t window) {
    window_ = window < 1 ? 1 : (window > kCapacity ? kCapacity : window);
  }
  size_t window() const { return window_; }

  // Records a prefetch of the cache line containing `address`.
  void Prefetch(uint64_t address) {
    ring_[next_] = LineOf(address);
    next_ = (next_ + 1) % window_;
    ++issued_;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(reinterpret_cast<const void*>(address), 0, 1);
#endif
  }

  // Returns true (and consumes the slot) if `address`'s line is still covered
  // by an outstanding prefetch.
  bool Consume(uint64_t address) {
    const uint64_t line = LineOf(address);
    for (size_t i = 0; i < window_; ++i) {
      if (ring_[i] == line) {
        ring_[i] = 0;
        ++hits_;
        return true;
      }
    }
    return false;
  }

  uint64_t issued() const { return issued_; }
  uint64_t hits() const { return hits_; }

 private:
  static uint64_t LineOf(uint64_t address) { return address >> 6; }

  uint64_t ring_[kCapacity];
  size_t window_ = kCapacity;
  size_t next_ = 0;
  uint64_t issued_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_PREFETCH_QUEUE_H_
