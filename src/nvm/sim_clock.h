// Per-thread simulated clock.
//
// Simulated time, not wall time, is what all reported GC/application numbers
// are measured in. Each logical thread (GC worker, mutator) owns a SimClock;
// MemoryDevice::Access() advances it by the modeled cost of each access, and
// compute phases advance it explicitly. A parallel phase's duration is the max
// across its workers' advances, which makes N logical GC threads faithful even
// on a single-core host.

#ifndef NVMGC_SRC_NVM_SIM_CLOCK_H_
#define NVMGC_SRC_NVM_SIM_CLOCK_H_

#include <cstdint>

namespace nvmgc {

class SimClock {
 public:
  SimClock() = default;

  uint64_t now_ns() const { return now_ns_; }

  void Advance(uint64_t ns) { now_ns_ += ns; }

  void SetTime(uint64_t ns) { now_ns_ = ns; }

  // Synchronizes this clock forward to `ns` (a barrier); never moves backward.
  void SyncForwardTo(uint64_t ns) {
    if (ns > now_ns_) {
      now_ns_ = ns;
    }
  }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_NVM_SIM_CLOCK_H_
