#include "src/obs/alloc_site.h"

#include <algorithm>

#include "src/util/check.h"

namespace nvmgc {

namespace {

uint64_t ClampedSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

void SiteWorkerDelta::Merge(const SiteWorkerDelta& other) {
  for (uint32_t a = 0; a < kSiteAgeSlots; ++a) {
    copied_objects[a] += other.copied_objects[a];
    copied_bytes[a] += other.copied_bytes[a];
    promoted_objects[a] += other.promoted_objects[a];
    promoted_bytes[a] += other.promoted_bytes[a];
  }
  old_copy_objects += other.old_copy_objects;
  old_copy_bytes += other.old_copy_bytes;
  nvm_copy_bytes += other.nvm_copy_bytes;
  staged_bytes += other.staged_bytes;
}

bool SiteWorkerDelta::Empty() const {
  if (old_copy_objects != 0 || nvm_copy_bytes != 0 || staged_bytes != 0) return false;
  for (uint32_t a = 0; a < kSiteAgeSlots; ++a) {
    if (copied_objects[a] != 0) return false;
  }
  return true;
}

double SiteStats::TenuringRate() const {
  return allocated_bytes == 0
             ? 0.0
             : static_cast<double>(promoted_bytes) / static_cast<double>(allocated_bytes);
}

double SiteStats::NvmWriteAmplification() const {
  return allocated_bytes == 0
             ? 0.0
             : static_cast<double>(nvm_copy_bytes) / static_cast<double>(allocated_bytes);
}

AllocSiteProfiler::AllocSiteProfiler() {
  sites_.emplace_back();
  sites_[0].name = "(untagged)";
}

AllocSiteId AllocSiteProfiler::RegisterSite(std::string_view name) {
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == name) return static_cast<AllocSiteId>(i);
  }
  if (sites_.size() >= kMaxSites) return kUntaggedSite;
  sites_.emplace_back();
  sites_.back().name = std::string(name);
  return static_cast<AllocSiteId>(sites_.size() - 1);
}

void AllocSiteProfiler::OnBirth(AllocSiteId site, size_t bytes) {
  if (site >= sites_.size()) site = kUntaggedSite;
  SiteStats& s = sites_[site];
  s.allocated_objects += 1;
  s.allocated_bytes += bytes;
  s.pop_objects[0] += 1;
  s.pop_bytes[0] += bytes;
}

void AllocSiteProfiler::OnLargeAlloc(AllocSiteId site, size_t bytes) {
  if (site >= sites_.size()) site = kUntaggedSite;
  SiteStats& s = sites_[site];
  s.allocated_objects += 1;
  s.allocated_bytes += bytes;
  s.large_objects += 1;
  s.large_bytes += bytes;
}

void AllocSiteProfiler::OnCycleEnd(const std::vector<SiteWorkerDelta>& merged, bool is_major) {
  NVMGC_CHECK(merged.size() <= sites_.size());
  last_cycle_.clear();
  for (size_t i = 0; i < sites_.size(); ++i) {
    SiteStats& s = sites_[i];
    static const SiteWorkerDelta kEmpty;
    const SiteWorkerDelta& d = i < merged.size() ? merged[i] : kEmpty;

    SitePauseDelta pause;
    pause.site = static_cast<AllocSiteId>(i);
    pause.name = s.name;
    pause.nvm_copy_bytes = d.nvm_copy_bytes;
    pause.staged_bytes = d.staged_bytes;

    // Every collected young object was either copied (survived) or died at
    // the age it had reached. Survivors age up in the population; promoted
    // survivors move to the tenured population.
    uint64_t new_pop_objects[kSiteAgeSlots] = {};
    uint64_t new_pop_bytes[kSiteAgeSlots] = {};
    for (uint32_t a = 0; a < kSiteAgeSlots; ++a) {
      const uint64_t copied_o = std::min(d.copied_objects[a], s.pop_objects[a]);
      const uint64_t copied_b = std::min(d.copied_bytes[a], s.pop_bytes[a]);
      const uint64_t died_o = ClampedSub(s.pop_objects[a], d.copied_objects[a]);
      const uint64_t died_b = ClampedSub(s.pop_bytes[a], d.copied_bytes[a]);
      if (died_o > 0) s.lifetime.RecordMany(a, died_o);
      pause.died_objects += died_o;
      pause.died_bytes += died_b;
      const uint64_t promoted_o = std::min(d.promoted_objects[a], copied_o);
      const uint64_t promoted_b = std::min(d.promoted_bytes[a], copied_b);
      pause.survived_objects += d.copied_objects[a];
      pause.survived_bytes += d.copied_bytes[a];
      pause.promoted_objects += promoted_o;
      pause.promoted_bytes += promoted_b;
      const uint32_t next = std::min(a + 1, kSiteAgeSlots - 1);
      new_pop_objects[next] += copied_o - promoted_o;
      new_pop_bytes[next] += copied_b - promoted_b;
      s.old_pop_objects += promoted_o;
      s.old_pop_bytes += promoted_b;
    }
    std::copy(new_pop_objects, new_pop_objects + kSiteAgeSlots, s.pop_objects);
    std::copy(new_pop_bytes, new_pop_bytes + kSiteAgeSlots, s.pop_bytes);

    // A major cycle evacuates the whole tenured generation: anything not
    // recompacted died after tenuring (exact age unknown; recorded at the
    // kDiedTenuredAge sentinel). Regions freed early by ReclaimDeadOldRegions
    // settle here too, at the next major.
    if (is_major) {
      const uint64_t old_died_o = ClampedSub(s.old_pop_objects, d.old_copy_objects);
      const uint64_t old_died_b = ClampedSub(s.old_pop_bytes, d.old_copy_bytes);
      if (old_died_o > 0) s.lifetime.RecordMany(kDiedTenuredAge, old_died_o);
      pause.died_objects += old_died_o;
      pause.died_bytes += old_died_b;
      s.old_pop_objects = std::min(s.old_pop_objects, d.old_copy_objects);
      s.old_pop_bytes = std::min(s.old_pop_bytes, d.old_copy_bytes);
    }
    pause.survived_objects += d.old_copy_objects;
    pause.survived_bytes += d.old_copy_bytes;

    s.survived_objects += pause.survived_objects;
    s.survived_bytes += pause.survived_bytes;
    s.promoted_objects += pause.promoted_objects;
    s.promoted_bytes += pause.promoted_bytes;
    s.died_objects += pause.died_objects;
    s.died_bytes += pause.died_bytes;
    s.nvm_copy_bytes += d.nvm_copy_bytes;
    s.staged_bytes += d.staged_bytes;

    if (pause.survived_objects != 0 || pause.died_objects != 0 ||
        pause.nvm_copy_bytes != 0 || pause.staged_bytes != 0) {
      last_cycle_.push_back(std::move(pause));
    }
  }
}

}  // namespace nvmgc
