// Allocation-site lifetime profiling.
//
// Workloads tag each distinct allocation statement with an AllocSiteId
// (RegisterSite), the mutator threads the tag through AllocRequest into the
// spare mark-word bits (obj::kSiteMask), and the collector attributes every
// evacuation-time copy back to its birth site. From births (mutator side) and
// survivals (GC side) the profiler infers deaths per pause — an object that
// was live at age `a` before the pause and was not copied died at age `a` —
// producing per-site lifetime histograms, tenuring rates, and NVM
// write-amplification: exactly the demographics needed to judge
// kTenureThreshold and to steer a pause-time SLO mode.
//
// Threading: births happen on the host (mutator) thread; GC workers fill
// worker-local SiteWorkerDelta vectors which the control thread merges and
// feeds to OnCycleEnd. The profiler itself is only ever mutated from the host
// / control thread, so it needs no locks. All accounting is host-side
// bookkeeping: it charges zero simulated time by construction.

#ifndef NVMGC_SRC_OBS_ALLOC_SITE_H_
#define NVMGC_SRC_OBS_ALLOC_SITE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/histogram.h"

namespace nvmgc {

// Index into the profiler's site table, carried in mark bits [5, 21).
// 0 is the always-present "(untagged)" site.
using AllocSiteId = uint32_t;
inline constexpr AllocSiteId kUntaggedSite = 0;

// Ages are 4 bits (obj::kAgeMask); population vectors index by age.
inline constexpr uint32_t kSiteAgeSlots = 16;
// Lifetime-histogram value recorded for objects that die after tenuring: their
// exact age is unknown, only that it exceeded every young age slot.
inline constexpr uint64_t kDiedTenuredAge = kSiteAgeSlots;

// Per-GC-worker evacuation counts for one site in one pause. Each worker owns
// a vector of these (indexed by site id); the control thread merges them.
struct SiteWorkerDelta {
  uint64_t copied_objects[kSiteAgeSlots] = {};    // young survivors, by pre-copy age
  uint64_t copied_bytes[kSiteAgeSlots] = {};
  uint64_t promoted_objects[kSiteAgeSlots] = {};  // subset of copied that tenured
  uint64_t promoted_bytes[kSiteAgeSlots] = {};
  uint64_t old_copy_objects = 0;  // already-tenured objects recompacted (major)
  uint64_t old_copy_bytes = 0;
  uint64_t nvm_copy_bytes = 0;    // copied bytes whose final home is the NVM arena
  uint64_t staged_bytes = 0;      // copied bytes staged through the write cache

  void Merge(const SiteWorkerDelta& other);
  bool Empty() const;
};

// One site's digest for a single pause, as retained by the flight recorder.
struct SitePauseDelta {
  AllocSiteId site = kUntaggedSite;
  std::string name;
  uint64_t survived_objects = 0;
  uint64_t survived_bytes = 0;
  uint64_t promoted_objects = 0;
  uint64_t promoted_bytes = 0;
  uint64_t died_objects = 0;
  uint64_t died_bytes = 0;
  uint64_t nvm_copy_bytes = 0;
  uint64_t staged_bytes = 0;
};

// Cumulative per-site demographics.
struct SiteStats {
  std::string name;
  uint64_t allocated_objects = 0;
  uint64_t allocated_bytes = 0;
  uint64_t large_objects = 0;  // humongous / large-object space: never copied
  uint64_t large_bytes = 0;
  uint64_t survived_objects = 0;
  uint64_t survived_bytes = 0;
  uint64_t promoted_objects = 0;
  uint64_t promoted_bytes = 0;
  uint64_t died_objects = 0;
  uint64_t died_bytes = 0;
  uint64_t nvm_copy_bytes = 0;
  uint64_t staged_bytes = 0;
  // Age-in-pauses at inferred death (kDiedTenuredAge for tenured deaths).
  Histogram lifetime;

  // Live young population by age; pop[0] is this epoch's eden births.
  uint64_t pop_objects[kSiteAgeSlots] = {};
  uint64_t pop_bytes[kSiteAgeSlots] = {};
  // Live tenured population (drained by major cycles; regions reclaimed by
  // ReclaimDeadOldRegions settle at the next major).
  uint64_t old_pop_objects = 0;
  uint64_t old_pop_bytes = 0;

  // promoted / allocated bytes: fraction of this site's allocation that ever
  // reaches NVM. High tenuring + short measured lifetime means the tenure
  // threshold is promoting prematurely for this site.
  double TenuringRate() const;
  // NVM bytes written per allocated byte (copies into the NVM arena, including
  // major-cycle recompaction). > tenuring rate means repeated old compaction.
  double NvmWriteAmplification() const;
};

class AllocSiteProfiler {
 public:
  AllocSiteProfiler();

  // Registers a site and returns its id. Returns the existing id if `name` is
  // already registered; returns kUntaggedSite once the 16-bit tag space'
  // practical cap (kMaxSites) is reached. Host thread only, outside pauses.
  AllocSiteId RegisterSite(std::string_view name);

  // Mutator-side birth accounting (host thread).
  void OnBirth(AllocSiteId site, size_t bytes);
  // Humongous / large-object allocations: counted, never part of the copied
  // young population.
  void OnLargeAlloc(AllocSiteId site, size_t bytes);

  // Control thread, end of pause: fold one merged delta vector (indexed by
  // site id, sized <= site_count()) into the cumulative stats, infer deaths,
  // and stage the per-pause digests retrievable via last_cycle().
  void OnCycleEnd(const std::vector<SiteWorkerDelta>& merged, bool is_major);

  size_t site_count() const { return sites_.size(); }
  const std::vector<SiteStats>& sites() const { return sites_; }
  const std::vector<SitePauseDelta>& last_cycle() const { return last_cycle_; }

  static constexpr size_t kMaxSites = 256;

 private:
  std::vector<SiteStats> sites_;
  std::vector<SitePauseDelta> last_cycle_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_OBS_ALLOC_SITE_H_
