#include "src/obs/device_timeline.h"

#include "src/nvm/memory_device.h"
#include "src/obs/trace.h"

namespace nvmgc {

const char* GcPhaseKindName(GcPhaseKind phase) {
  switch (phase) {
    case GcPhaseKind::kRead:
      return "read";
    case GcPhaseKind::kWriteback:
      return "writeback";
  }
  return "unknown";
}

DeviceTimeline::DeviceTimeline(const MemoryDevice* device) : device_(device) {}

size_t DeviceTimeline::SamplePhase(uint64_t pause_id, GcPhaseKind phase, uint64_t start_ns,
                                   uint64_t end_ns, uint32_t active_threads) {
  if (device_ == nullptr || end_ns <= start_ns) {
    return 0;
  }
  const BandwidthLedger& ledger = device_->ledger();
  const uint64_t bucket_ns = ledger.bucket_ns();
  // First bucket whose start is >= start_ns; last bucket whose start < end_ns.
  const uint64_t first_epoch = (start_ns + bucket_ns - 1) / bucket_ns;
  const uint64_t end_epoch = (end_ns + bucket_ns - 1) / bucket_ns;
  size_t appended = 0;
  for (uint64_t epoch = first_epoch; epoch < end_epoch; ++epoch) {
    BandwidthLedger::BucketSample bucket;
    if (!ledger.ReadBucket(epoch, &bucket)) {
      // Never charged (a genuinely idle bucket) is indistinguishable from
      // evicted here; both read as absent. Treat absent buckets inside an
      // active GC phase as missing — an idle 150 us window mid-phase would
      // itself be a finding.
      ++missing_buckets_;
      continue;
    }
    const uint64_t total = bucket.total_bytes();
    if (total == 0) {
      continue;
    }
    if (samples_.size() >= kMaxSamples) {
      ++dropped_samples_;
      continue;
    }
    TimelineSample s;
    s.pause_id = pause_id;
    s.phase = phase;
    s.time_ns = epoch * bucket_ns;
    // 1 MB/s == 1e6 bytes / 1e9 ns, so MB/s = bytes * 1000 / bucket_ns.
    s.read_mbps = static_cast<double>(bucket.read_bytes) * 1000.0 / bucket_ns;
    s.write_mbps = static_cast<double>(bucket.write_bytes) * 1000.0 / bucket_ns;
    s.interleave = static_cast<double>(bucket.write_bytes) / static_cast<double>(total);
    MixState mix;
    mix.write_fraction = s.interleave;
    mix.nt_write_fraction = static_cast<double>(bucket.nt_bytes) / static_cast<double>(total);
    mix.active_threads = active_threads == 0 ? 1 : active_threads;
    s.model_mbps = device_->model().TotalBandwidthMbps(mix);
    samples_.push_back(s);
    ++appended;
  }
  return appended;
}

DeviceTimeline::PhaseAverages DeviceTimeline::AveragePhase(uint64_t pause_id,
                                                           GcPhaseKind phase) const {
  PhaseAverages avg;
  for (size_t i = samples_.size(); i-- > 0;) {
    const TimelineSample& s = samples_[i];
    if (s.pause_id < pause_id) {
      break;  // Samples are appended in pause order.
    }
    if (s.pause_id != pause_id || s.phase != phase) {
      continue;
    }
    avg.read_mbps += s.read_mbps;
    avg.write_mbps += s.write_mbps;
    avg.interleave += s.interleave;
    avg.model_mbps += s.model_mbps;
    ++avg.sample_count;
  }
  if (avg.sample_count > 0) {
    const double inv = 1.0 / static_cast<double>(avg.sample_count);
    avg.read_mbps *= inv;
    avg.write_mbps *= inv;
    avg.interleave *= inv;
    avg.model_mbps *= inv;
  }
  return avg;
}

void DeviceTimeline::EmitCounters(GcTracer* tracer, size_t from_index) const {
  if (tracer == nullptr || !tracer->enabled()) {
    return;
  }
  for (size_t i = from_index; i < samples_.size(); ++i) {
    const TimelineSample& s = samples_[i];
    tracer->EmitCounter("nvm.read_mbps", "nvm", s.time_ns, s.read_mbps);
    tracer->EmitCounter("nvm.write_mbps", "nvm", s.time_ns, s.write_mbps);
    tracer->EmitCounter("nvm.interleave", "nvm", s.time_ns, s.interleave);
    tracer->EmitCounter("nvm.model_mbps", "nvm", s.time_ns, s.model_mbps);
  }
}

void DeviceTimeline::Clear() {
  samples_.clear();
  missing_buckets_ = 0;
  dropped_samples_ = 0;
}

}  // namespace nvmgc
