// Per-pause NVM bandwidth timeline, sampled from the device's traffic ledger.
//
// The BandwidthLedger already buckets every charged access into 150 us epochs
// for the mix estimator; the DeviceTimeline drains those same buckets right
// after each GC phase into a per-pause time series of read MB/s, write MB/s,
// the read/write interleave ratio, and the BandwidthModel's effective-
// bandwidth estimate for that bucket's mix. Each sample is attributed to the
// enclosing phase (read-mostly copy/traverse vs write-only write-back), which
// is what lets a Perfetto counter track visualize the paper's Figure 7 story:
// the vanilla collector holds a mixed interleave through the whole pause while
// the optimized one separates into a read plateau followed by a write burst.
//
// Sampling rules:
//  - a bucket belongs to a phase iff its *start* timestamp lies inside
//    [phase_start, phase_end): no bucket is counted twice across the two
//    contiguous phases, and the partial first bucket (contaminated with
//    pre-pause mutator traffic) is excluded;
//  - sampling must happen synchronously at pause end, while the buckets are
//    still resident in the ledger ring (64 buckets x 150 us ≈ 9.6 ms of
//    simulated time); evicted epochs are counted in missing_buckets().
//
// Not thread-safe: the collector samples from the control thread between
// parallel phases.

#ifndef NVMGC_SRC_OBS_DEVICE_TIMELINE_H_
#define NVMGC_SRC_OBS_DEVICE_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nvmgc {

class GcTracer;
class MemoryDevice;

enum class GcPhaseKind : uint8_t {
  kRead,       // Parallel copy-and-traverse (read-mostly).
  kWriteback,  // Cache flush + header-map clear (write-only).
};

const char* GcPhaseKindName(GcPhaseKind phase);

// One ledger bucket, resolved into rates. `time_ns` is the bucket start in
// simulated time; rates are averaged over the full bucket width.
struct TimelineSample {
  uint64_t pause_id = 0;  // 1-based GC cycle ordinal.
  GcPhaseKind phase = GcPhaseKind::kRead;
  uint64_t time_ns = 0;
  double read_mbps = 0.0;
  double write_mbps = 0.0;
  // Write share of the bucket's traffic: 0 = pure read, 1 = pure write.
  double interleave = 0.0;
  // BandwidthModel effective total bandwidth (MB/s) under this bucket's mix —
  // the ceiling the device arbiter enforced while this bucket filled.
  double model_mbps = 0.0;

  double total_mbps() const { return read_mbps + write_mbps; }
};

class DeviceTimeline {
 public:
  // Samples `device`'s ledger; the device must outlive the timeline.
  explicit DeviceTimeline(const MemoryDevice* device);

  DeviceTimeline(const DeviceTimeline&) = delete;
  DeviceTimeline& operator=(const DeviceTimeline&) = delete;

  // Drains the ledger buckets whose start lies in [start_ns, end_ns) and
  // appends one sample per non-empty resident bucket. `active_threads` is the
  // thread count to evaluate the bandwidth model under (the GC worker count
  // during a pause). Returns the number of samples appended.
  size_t SamplePhase(uint64_t pause_id, GcPhaseKind phase, uint64_t start_ns,
                     uint64_t end_ns, uint32_t active_threads);

  // Emits samples [from_index, size()) as Chrome-trace counter events on the
  // tracer's currently bound thread: nvm.read_mbps, nvm.write_mbps,
  // nvm.interleave, nvm.model_mbps (category "nvm").
  void EmitCounters(GcTracer* tracer, size_t from_index) const;

  const std::vector<TimelineSample>& samples() const { return samples_; }
  size_t size() const { return samples_.size(); }

  // Mean rates over one phase of one pause, for consumers that want a single
  // number per phase (the adaptive policy's interleave / effective-bandwidth
  // signals). Zero-filled when the phase produced no samples.
  struct PhaseAverages {
    size_t sample_count = 0;
    double read_mbps = 0.0;
    double write_mbps = 0.0;
    double interleave = 0.0;
    double model_mbps = 0.0;
  };
  // Scans backward from the newest sample, so querying the pause that just
  // ended is O(samples of that pause).
  PhaseAverages AveragePhase(uint64_t pause_id, GcPhaseKind phase) const;

  // Buckets requested but no longer resident in the ledger ring (sampled too
  // late) — should stay 0 when sampling synchronously at pause end.
  uint64_t missing_buckets() const { return missing_buckets_; }
  // Samples discarded once the retention cap was reached.
  uint64_t dropped_samples() const { return dropped_samples_; }

  void Clear();

 private:
  static constexpr size_t kMaxSamples = 1u << 18;  // ~14 MB worst case.

  const MemoryDevice* device_;
  std::vector<TimelineSample> samples_;
  uint64_t missing_buckets_ = 0;
  uint64_t dropped_samples_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_OBS_DEVICE_TIMELINE_H_
