#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace nvmgc {

namespace {

// Minimal JSON emission, matching the hand-serialized style of the bench
// runner: no dependency, append-only into a std::string.

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, const char* key, uint64_t value, bool comma = true) {
  *out += '"';
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
  if (comma) *out += ',';
}

void AppendBool(std::string* out, const char* key, bool value, bool comma = true) {
  *out += '"';
  *out += key;
  *out += "\":";
  *out += value ? "true" : "false";
  if (comma) *out += ',';
}

void AppendDouble(std::string* out, const char* key, double value, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, value);
  *out += buf;
  if (comma) *out += ',';
}

void AppendStr(std::string* out, const char* key, const std::string& value,
               bool comma = true) {
  *out += '"';
  *out += key;
  *out += "\":";
  AppendEscaped(out, value);
  if (comma) *out += ',';
}

void AppendSiteFields(std::string* out, const SitePauseDelta& s) {
  AppendU64(out, "site", s.site);
  AppendStr(out, "name", s.name);
  AppendU64(out, "survived_objects", s.survived_objects);
  AppendU64(out, "survived_bytes", s.survived_bytes);
  AppendU64(out, "promoted_objects", s.promoted_objects);
  AppendU64(out, "promoted_bytes", s.promoted_bytes);
  AppendU64(out, "died_objects", s.died_objects);
  AppendU64(out, "died_bytes", s.died_bytes);
  AppendU64(out, "nvm_copy_bytes", s.nvm_copy_bytes);
  AppendU64(out, "staged_bytes", s.staged_bytes, /*comma=*/false);
}

// Chrome-trace timestamp: simulated ns in microseconds.
void AppendTs(std::string* out, uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"ts\":%.3f", ns / 1000.0);
  *out += buf;
}

void AppendCounterEvent(std::string* out, const char* name, uint64_t time_ns,
                        double value, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += "{\"ph\":\"C\",\"name\":\"";
  *out += name;
  *out += "\",\"cat\":\"nvm\",\"pid\":0,\"tid\":0,";
  AppendTs(out, time_ns);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.6g}}", value);
  *out += buf;
}

}  // namespace

const char* FrTriggerName(FrTrigger trigger) {
  switch (trigger) {
    case FrTrigger::kNone: return "none";
    case FrTrigger::kPauseThreshold: return "pause_threshold";
    case FrTrigger::kP99Outlier: return "p99_outlier";
    case FrTrigger::kDegraded: return "degraded";
    case FrTrigger::kRetreat: return "retreat";
    case FrTrigger::kSurvivorOverflow: return "survivor_overflow";
    case FrTrigger::kExplicit: return "explicit";
    case FrTrigger::kCrash: return "crash";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.retain_pauses == 0) options_.retain_pauses = 1;
}

uint64_t FlightRecorder::TrailingP99() const {
  if (trailing_pause_ns_.empty()) return 0;
  std::vector<uint64_t> window(trailing_pause_ns_.begin(), trailing_pause_ns_.end());
  const size_t idx = (window.size() - 1) * 99 / 100;
  std::nth_element(window.begin(), window.begin() + idx, window.end());
  return window[idx];
}

FrTriggerInfo FlightRecorder::Evaluate(const FlightPauseRecord& record) const {
  FrTriggerInfo info;
  info.pause_id = record.pause_id;
  info.observed_ns = record.stats.pause_ns;
  if (options_.pause_threshold_ns > 0 &&
      record.stats.pause_ns > options_.pause_threshold_ns) {
    info.kind = FrTrigger::kPauseThreshold;
    info.threshold_ns = options_.pause_threshold_ns;
    info.detail = "pause exceeded the configured absolute threshold";
    return info;
  }
  if (options_.p99_multiplier > 0 &&
      trailing_pause_ns_.size() >= options_.p99_min_history) {
    const uint64_t p99 = TrailingP99();
    const double bound = static_cast<double>(p99) * options_.p99_multiplier;
    if (p99 > 0 && static_cast<double>(record.stats.pause_ns) > bound) {
      info.kind = FrTrigger::kP99Outlier;
      info.threshold_ns = static_cast<uint64_t>(bound);
      info.detail = "pause exceeded the trailing-p99 multiple";
      return info;
    }
  }
  if (options_.trigger_on_degraded && record.degraded) {
    info.kind = FrTrigger::kDegraded;
    info.detail = "pause ran in degraded mode";
    return info;
  }
  if (options_.trigger_on_retreat && record.retreat) {
    info.kind = FrTrigger::kRetreat;
    for (const PolicyDecision& d : record.decisions) {
      if (d.retreat) {
        info.detail = "policy retreat: " + d.reason;
        break;
      }
    }
    return info;
  }
  if (options_.trigger_on_survivor_overflow &&
      record.stats.survivor_overflow_bytes > 0) {
    info.kind = FrTrigger::kSurvivorOverflow;
    info.observed_ns = record.stats.survivor_overflow_bytes;
    info.detail = "survivor space overflowed; survivors promoted early";
    return info;
  }
  return info;
}

FrTrigger FlightRecorder::RecordPause(FlightPauseRecord record) {
  if (!options_.enabled) return FrTrigger::kNone;
  ++pauses_recorded_;
  pauses_.push_back(std::move(record));
  while (pauses_.size() > options_.retain_pauses) pauses_.pop_front();

  // Evaluate against the trailing window *excluding* this pause, so a single
  // outlier cannot raise the p99 it is judged against.
  const FrTriggerInfo info = Evaluate(pauses_.back());
  trailing_pause_ns_.push_back(pauses_.back().stats.pause_ns);
  while (trailing_pause_ns_.size() > kTrailingWindow) trailing_pause_ns_.pop_front();

  if (info.kind == FrTrigger::kNone) return FrTrigger::kNone;
  last_trigger_ = info;
  if (!options_.dump_dir.empty() && auto_dumps_ < options_.max_dumps) {
    std::string path;
    if (WriteIncident(options_.dump_dir, info, &path)) {
      ++auto_dumps_;
      ++incidents_;
      last_dump_path_ = path;
    }
  }
  return info.kind;
}

std::string FlightRecorder::Dump(FrTrigger trigger, const std::string& dir_override) {
  if (!options_.enabled || pauses_.empty()) return "";
  const std::string& dir = dir_override.empty() ? options_.dump_dir : dir_override;
  if (dir.empty()) return "";
  FrTriggerInfo info;
  info.kind = trigger;
  info.pause_id = pauses_.back().pause_id;
  info.observed_ns = pauses_.back().stats.pause_ns;
  info.detail = trigger == FrTrigger::kCrash
                    ? "crash image captured; flight record of the pauses before the cut"
                    : "explicit dump request";
  std::string path;
  if (!WriteIncident(dir, info, &path)) return "";
  last_trigger_ = info;
  ++incidents_;
  last_dump_path_ = path;
  return path;
}

bool FlightRecorder::WriteIncident(const std::string& dir, const FrTriggerInfo& trigger,
                                   std::string* out_path) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string base = options_.tenant.empty()
                               ? "incident-" + std::to_string(next_incident_seq_)
                               : "incident-" + options_.tenant + "-" +
                                     std::to_string(next_incident_seq_);
  const std::string trace_name = base + ".trace.json";
  const std::filesystem::path incident_path = std::filesystem::path(dir) / (base + ".json");
  const std::filesystem::path trace_path = std::filesystem::path(dir) / trace_name;
  {
    std::ofstream trace(trace_path);
    if (!trace) return false;
    trace << SerializeTrace();
    if (!trace.good()) return false;
  }
  {
    std::ofstream incident(incident_path);
    if (!incident) return false;
    incident << SerializeIncident(trigger, trace_name);
    if (!incident.good()) return false;
  }
  ++next_incident_seq_;
  *out_path = incident_path.string();
  return true;
}

std::string FlightRecorder::SerializeIncident(const FrTriggerInfo& trigger,
                                              const std::string& trace_file) const {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"schema\":\"nvmgc.incident.v1\",";
  if (!options_.tenant.empty()) {
    AppendStr(&out, "tenant", options_.tenant);
  }
  out += "\"trigger\":{";
  AppendStr(&out, "kind", FrTriggerName(trigger.kind));
  AppendU64(&out, "pause_id", trigger.pause_id);
  AppendU64(&out, "observed_ns", trigger.observed_ns);
  AppendU64(&out, "threshold_ns", trigger.threshold_ns);
  AppendStr(&out, "detail", trigger.detail, /*comma=*/false);
  out += "},";
  AppendStr(&out, "trace_file", trace_file);
  AppendU64(&out, "retained_pauses", pauses_.size());
  AppendU64(&out, "pauses_recorded", pauses_recorded_);
  AppendU64(&out, "trailing_p99_ns", TrailingP99());
  out += "\"pauses\":[";
  bool first_pause = true;
  for (const FlightPauseRecord& p : pauses_) {
    if (!first_pause) out += ',';
    first_pause = false;
    out += '{';
    AppendU64(&out, "pause_id", p.pause_id);
    AppendStr(&out, "kind", GcKindName(p.kind));
    AppendBool(&out, "degraded", p.degraded);
    AppendBool(&out, "retreat", p.retreat);
    AppendU64(&out, "start_ns", p.stats.start_ns);
    AppendU64(&out, "pause_ns", p.stats.pause_ns);
    AppendU64(&out, "read_phase_ns", p.stats.read_phase_ns);
    AppendU64(&out, "writeback_phase_ns", p.stats.writeback_phase_ns);
    out += "\"counters\":{";
    // The stable dotted names (metrics.h kCycleFields) + the pause's DRAM
    // traffic, exactly what the per-pause MetricsRegistry snapshot carries.
    PauseSnapshot snap = SnapshotFromCycle(p.pause_id, p.stats);
    snap.values["device.dram.read_bytes"] = p.dram_read_bytes;
    snap.values["device.dram.write_bytes"] = p.dram_write_bytes;
    bool first_counter = true;
    for (const auto& [name, value] : snap.values) {
      if (!first_counter) out += ',';
      first_counter = false;
      AppendEscaped(&out, name);
      out += ':';
      out += std::to_string(value);
    }
    out += "},";
    out += "\"decisions\":[";
    bool first_decision = true;
    for (const PolicyDecision& d : p.decisions) {
      if (!first_decision) out += ',';
      first_decision = false;
      out += '{';
      AppendStr(&out, "knob", PolicyKnobName(d.knob));
      AppendU64(&out, "from", d.old_value);
      AppendU64(&out, "to", d.new_value);
      AppendBool(&out, "retreat", d.retreat);
      AppendStr(&out, "reason", d.reason, /*comma=*/false);
      out += '}';
    }
    out += "],";
    out += "\"timeline\":[";
    bool first_sample = true;
    for (const TimelineSample& s : p.timeline) {
      if (!first_sample) out += ',';
      first_sample = false;
      out += '{';
      AppendStr(&out, "phase", GcPhaseKindName(s.phase));
      AppendU64(&out, "time_ns", s.time_ns);
      AppendDouble(&out, "read_mbps", s.read_mbps);
      AppendDouble(&out, "write_mbps", s.write_mbps);
      AppendDouble(&out, "interleave", s.interleave);
      AppendDouble(&out, "model_mbps", s.model_mbps, /*comma=*/false);
      out += '}';
    }
    out += "],";
    out += "\"sites\":[";
    bool first_site = true;
    for (const SitePauseDelta& s : p.sites) {
      if (!first_site) out += ',';
      first_site = false;
      out += '{';
      AppendSiteFields(&out, s);
      out += '}';
    }
    out += "]}";
  }
  out += "],";
  out += "\"sites\":[";
  if (site_profiler_ != nullptr) {
    bool first_site = true;
    for (size_t i = 0; i < site_profiler_->sites().size(); ++i) {
      const SiteStats& s = site_profiler_->sites()[i];
      if (s.allocated_objects == 0 && i != kUntaggedSite) continue;
      if (!first_site) out += ',';
      first_site = false;
      out += '{';
      AppendU64(&out, "site", i);
      AppendStr(&out, "name", s.name);
      AppendU64(&out, "allocated_objects", s.allocated_objects);
      AppendU64(&out, "allocated_bytes", s.allocated_bytes);
      AppendU64(&out, "large_objects", s.large_objects);
      AppendU64(&out, "large_bytes", s.large_bytes);
      AppendU64(&out, "survived_objects", s.survived_objects);
      AppendU64(&out, "survived_bytes", s.survived_bytes);
      AppendU64(&out, "promoted_objects", s.promoted_objects);
      AppendU64(&out, "promoted_bytes", s.promoted_bytes);
      AppendU64(&out, "died_objects", s.died_objects);
      AppendU64(&out, "died_bytes", s.died_bytes);
      AppendU64(&out, "nvm_copy_bytes", s.nvm_copy_bytes);
      AppendU64(&out, "staged_bytes", s.staged_bytes);
      AppendDouble(&out, "tenuring_rate", s.TenuringRate());
      AppendDouble(&out, "nvm_write_amplification", s.NvmWriteAmplification());
      const HistogramSummary life = Summarize(s.lifetime);
      out += "\"lifetime\":{";
      AppendU64(&out, "count", life.count);
      AppendU64(&out, "p50", life.p50);
      AppendU64(&out, "p95", life.p95);
      AppendU64(&out, "p99", life.p99);
      AppendU64(&out, "max", life.max);
      AppendDouble(&out, "mean", life.mean, /*comma=*/false);
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::SerializeTrace() const {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const FlightPauseRecord& p : pauses_) {
    const uint64_t start = p.stats.start_ns;
    struct Span {
      const char* name;
      uint64_t start_ns;
      uint64_t dur_ns;
    };
    const Span spans[] = {
        {"gc.pause", start, p.stats.pause_ns},
        {"gc.read_phase", start, p.stats.read_phase_ns},
        {"gc.writeback_phase", start + p.stats.read_phase_ns,
         p.stats.writeback_phase_ns},
    };
    for (const Span& s : spans) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"X\",\"name\":\"";
      out += s.name;
      out += "\",\"cat\":\"gc\",\"pid\":0,\"tid\":0,";
      AppendTs(&out, s.start_ns);
      char buf[48];
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f,", s.dur_ns / 1000.0);
      out += buf;
      out += "\"args\":{";
      AppendU64(&out, "pause_id", p.pause_id);
      AppendStr(&out, "kind", GcKindName(p.kind), /*comma=*/false);
      out += "}}";
    }
    if (p.degraded) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"i\",\"name\":\"gc.degraded\",\"cat\":\"gc\",\"s\":\"g\","
             "\"pid\":0,\"tid\":0,";
      AppendTs(&out, start);
      out += ",\"args\":{";
      AppendU64(&out, "pause_id", p.pause_id, /*comma=*/false);
      out += "}}";
    }
    for (const PolicyDecision& d : p.decisions) {
      if (!first) out += ',';
      first = false;
      out += "{\"ph\":\"i\",\"name\":\"policy.";
      out += PolicyKnobName(d.knob);
      out += "\",\"cat\":\"policy\",\"s\":\"g\",\"pid\":0,\"tid\":0,";
      AppendTs(&out, start + p.stats.pause_ns);
      out += ",\"args\":{";
      AppendU64(&out, "from", d.old_value);
      AppendU64(&out, "to", d.new_value);
      AppendBool(&out, "retreat", d.retreat);
      AppendStr(&out, "reason", d.reason, /*comma=*/false);
      out += "}}";
    }
    for (const TimelineSample& s : p.timeline) {
      AppendCounterEvent(&out, "nvm.read_mbps", s.time_ns, s.read_mbps, &first);
      AppendCounterEvent(&out, "nvm.write_mbps", s.time_ns, s.write_mbps, &first);
      AppendCounterEvent(&out, "nvm.interleave", s.time_ns, s.interleave, &first);
      AppendCounterEvent(&out, "nvm.model_mbps", s.time_ns, s.model_mbps, &first);
    }
  }
  out += "]}";
  return out;
}

}  // namespace nvmgc
