// GC flight recorder: always-on, bounded-memory retention of the last N
// pauses of rich context — per-phase durations, the full per-pause counter
// set (persist.* / device.* included), policy decisions, degraded/fault
// state, per-pause NVM bandwidth samples, and per-allocation-site
// demographics — dumped as a self-contained incident file the moment an
// anomaly trigger fires, so tail pauses can be attributed after the fact
// instead of reconstructed.
//
// Triggers (first match wins, evaluated per pause):
//   pause_threshold    pause_ns > FlightRecorderOptions::pause_threshold_ns
//   p99_outlier        pause_ns > p99_multiplier x trailing-window p99
//   degraded           the pause ran in degraded mode (fault throttling)
//   retreat            the policy engine took a retreat decision this pause
//                      (includes the durability fence-stall retreat)
//   survivor_overflow  survivors promoted early because survivor space filled
//   explicit           Vm::DumpFlightRecord()
//   crash              CrashInjector captured a power-cut image
//
// An incident is two files in dump_dir: `incident-<seq>.json` (schema
// nvmgc.incident.v1: trigger, retained pauses with full context, cumulative
// per-site demographics) and `incident-<seq>.trace.json` (Chrome trace
// synthesized from the recorder's own retained data — loads in Perfetto even
// when VmOptions::trace_gc was off). Decode/validate with
// scripts/fr_analyze.py.
//
// Threading & cost: the recorder is fed from the control thread at pause end
// and is pure host-side bookkeeping — it never touches MemoryDevice, so it
// charges zero *simulated* time by construction; the ≤3% bound CI enforces is
// on host wall-clock (bench_flight_recorder). Memory is bounded by
// retain_pauses plus a fixed trailing pause-time window.

#ifndef NVMGC_SRC_OBS_FLIGHT_RECORDER_H_
#define NVMGC_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/gc/gc_stats.h"
#include "src/obs/alloc_site.h"
#include "src/obs/device_timeline.h"
#include "src/policy/policy_engine.h"

namespace nvmgc {

struct FlightRecorderOptions {
  // The recorder is always-on by default; `false` turns RecordPause into a
  // no-op (the overhead-bench control arm).
  bool enabled = true;
  // Ring depth: pauses of context an incident ships with.
  size_t retain_pauses = 32;
  // Absolute pause-duration trigger in simulated ns; 0 disables.
  uint64_t pause_threshold_ns = 0;
  // Relative trigger: fire when pause_ns exceeds `p99_multiplier` times the
  // trailing-window p99. <= 0 disables; needs p99_min_history prior pauses.
  double p99_multiplier = 3.0;
  size_t p99_min_history = 16;
  bool trigger_on_degraded = true;
  bool trigger_on_retreat = true;
  bool trigger_on_survivor_overflow = true;
  // Where incident files go. Empty = record but never auto-dump (explicit
  // Dump calls with a directory override still work).
  std::string dump_dir;
  // Auto-dump budget per recorder; explicit/crash dumps are not counted.
  size_t max_dumps = 4;
  // Tenant tag for fleet runs: non-empty makes incident files
  // `incident-<tenant>-<seq>.json` (instead of `incident-<seq>.json`) and
  // adds a "tenant" field to the incident JSON, so co-tenant Vms dumping
  // into one directory never collide. Vm fills this from its tenant
  // label/id when running on a shared heap device.
  std::string tenant;
};

enum class FrTrigger : uint8_t {
  kNone,
  kPauseThreshold,
  kP99Outlier,
  kDegraded,
  kRetreat,
  kSurvivorOverflow,
  kExplicit,
  kCrash,
};

const char* FrTriggerName(FrTrigger trigger);

struct FrTriggerInfo {
  FrTrigger kind = FrTrigger::kNone;
  uint64_t pause_id = 0;
  uint64_t observed_ns = 0;   // The triggering pause's duration.
  uint64_t threshold_ns = 0;  // The bound it crossed (0 for state triggers).
  std::string detail;
};

// Everything the recorder retains about one pause.
struct FlightPauseRecord {
  uint64_t pause_id = 0;
  GcKind kind = GcKind::kMinor;
  bool degraded = false;
  bool retreat = false;  // Any policy retreat decision at this pause.
  GcCycleStats stats;    // Serialized through the stable dotted names at dump.
  uint64_t dram_read_bytes = 0;
  uint64_t dram_write_bytes = 0;
  std::vector<PolicyDecision> decisions;   // Decisions made at this pause end.
  std::vector<TimelineSample> timeline;    // This pause's bandwidth samples.
  std::vector<SitePauseDelta> sites;       // Per-site demographics of the pause.
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  // Control thread, once per pause end. Evaluates the trigger table and, when
  // one fires with dump_dir configured and auto-dump budget left, writes an
  // incident. Returns the trigger that fired (kNone otherwise).
  FrTrigger RecordPause(FlightPauseRecord record);

  // Writes an incident dump now (explicit / crash paths; also used
  // internally by RecordPause). `dir_override` replaces the configured
  // dump_dir when non-empty. Returns the incident file path, or "" when the
  // recorder is disabled, has no retained pauses, or the write failed.
  std::string Dump(FrTrigger trigger, const std::string& dir_override = "");

  const std::deque<FlightPauseRecord>& pauses() const { return pauses_; }
  uint64_t pauses_recorded() const { return pauses_recorded_; }
  uint64_t incidents() const { return incidents_; }
  const FrTriggerInfo& last_trigger() const { return last_trigger_; }
  const std::string& last_dump_path() const { return last_dump_path_; }
  bool enabled() const { return options_.enabled; }
  const FlightRecorderOptions& options() const { return options_; }

  // Trailing-window p99 of pause durations (0 with an empty window).
  uint64_t TrailingP99() const;

  // Cumulative site table serialized into incidents (set once at wiring).
  void set_site_profiler(const AllocSiteProfiler* profiler) { site_profiler_ = profiler; }

 private:
  static constexpr size_t kTrailingWindow = 128;

  FrTriggerInfo Evaluate(const FlightPauseRecord& record) const;
  bool WriteIncident(const std::string& dir, const FrTriggerInfo& trigger,
                     std::string* out_path);
  std::string SerializeIncident(const FrTriggerInfo& trigger,
                                const std::string& trace_file) const;
  std::string SerializeTrace() const;

  FlightRecorderOptions options_;
  const AllocSiteProfiler* site_profiler_ = nullptr;
  std::deque<FlightPauseRecord> pauses_;
  std::deque<uint64_t> trailing_pause_ns_;
  uint64_t pauses_recorded_ = 0;
  uint64_t incidents_ = 0;       // All dumps written, explicit included.
  uint64_t auto_dumps_ = 0;      // Trigger-initiated dumps (max_dumps budget).
  uint64_t next_incident_seq_ = 0;
  FrTriggerInfo last_trigger_;
  std::string last_dump_path_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_OBS_FLIGHT_RECORDER_H_
