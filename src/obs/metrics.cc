#include "src/obs/metrics.h"

#include <utility>

namespace nvmgc {

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, uint64_t value) {
  gauges_[name] = value;
}

void MetricsRegistry::RecordHistogram(const std::string& name, uint64_t value) {
  histograms_[name].Record(value);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  return counters_.find(name) != counters_.end();
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

HistogramSummary Summarize(const Histogram& h) {
  HistogramSummary s;
  if (h.count() == 0) {
    return s;
  }
  s.count = h.count();
  s.p50 = h.Percentile(50.0);
  s.p95 = h.Percentile(95.0);
  s.p99 = h.Percentile(99.0);
  s.max = h.max();
  s.mean = h.Mean();
  return s;
}

HistogramSummary MetricsRegistry::Summary(const std::string& name) const {
  const Histogram* h = histogram(name);
  return h == nullptr ? HistogramSummary{} : Summarize(*h);
}

std::map<std::string, HistogramSummary> MetricsRegistry::Summaries() const {
  std::map<std::string, HistogramSummary> out;
  for (const auto& [name, hist] : histograms_) {
    out[name] = Summarize(hist);
  }
  return out;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted.
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    names.push_back(name);
  }
  return names;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& src, const std::string& prefix) {
  for (const auto& [name, value] : src.counters_) {
    AddCounter(prefix + name, value);
  }
  for (const auto& [name, value] : src.gauges_) {
    SetGauge(prefix + name, value);
  }
  for (const auto& [name, histogram] : src.histograms_) {
    histograms_[prefix + name].Merge(histogram);
  }
  for (const PauseSnapshot& pause : src.pauses_) {
    PauseSnapshot prefixed;
    prefixed.id = pause.id;
    prefixed.start_ns = pause.start_ns;
    for (const auto& [name, value] : pause.values) {
      prefixed.values[prefix + name] = value;
    }
    // Appended directly (not via RecordPause): the merged counters above
    // already carry these values, and double-adding would break the
    // snapshot-vs-aggregate consistency MergeFrom preserves.
    pauses_.push_back(std::move(prefixed));
  }
}

void MetricsRegistry::RecordPause(PauseSnapshot snapshot) {
  for (const auto& [name, value] : snapshot.values) {
    AddCounter(name, value);
  }
  pauses_.push_back(std::move(snapshot));
}

namespace {

// (name, field pointer) table: single source of truth for the cycle→metric
// mapping, so the name list and the snapshot contents cannot drift apart.
struct CycleField {
  const char* name;
  uint64_t GcCycleStats::* field;
};

constexpr CycleField kCycleFields[] = {
    {"gc.pause_ns", &GcCycleStats::pause_ns},
    {"gc.read_phase_ns", &GcCycleStats::read_phase_ns},
    {"gc.writeback_phase_ns", &GcCycleStats::writeback_phase_ns},
    {"gc.objects_copied", &GcCycleStats::objects_copied},
    {"gc.bytes_copied", &GcCycleStats::bytes_copied},
    {"gc.objects_promoted", &GcCycleStats::objects_promoted},
    {"gc.bytes_promoted", &GcCycleStats::bytes_promoted},
    {"gc.refs_processed", &GcCycleStats::refs_processed},
    {"gc.steals", &GcCycleStats::steals},
    {"gc.degraded_pauses", &GcCycleStats::degraded_mode},
    {"gc.major_pauses", &GcCycleStats::is_major},
    {"gen.young_cset_bytes", &GcCycleStats::young_cset_bytes},
    {"gen.old_cset_bytes", &GcCycleStats::old_cset_bytes},
    {"gen.survivor_overflow_bytes", &GcCycleStats::survivor_overflow_bytes},
    {"cache.bytes_staged", &GcCycleStats::cache_bytes_staged},
    {"cache.overflow_bytes", &GcCycleStats::cache_overflow_bytes},
    {"cache.regions_flushed_sync", &GcCycleStats::regions_flushed_sync},
    {"cache.regions_flushed_async", &GcCycleStats::regions_flushed_async},
    {"cache.regions_steal_tainted", &GcCycleStats::regions_steal_tainted},
    {"cache.fault_denials", &GcCycleStats::cache_fault_denials},
    {"cache.fallback_workers", &GcCycleStats::cache_fallback_workers},
    {"cache.fallback_bytes", &GcCycleStats::cache_fallback_bytes},
    {"hm.installs", &GcCycleStats::header_map_installs},
    {"hm.overflows", &GcCycleStats::header_map_overflows},
    {"hm.hits", &GcCycleStats::header_map_hits},
    {"hm.fault_probes", &GcCycleStats::header_map_fault_probes},
    {"device.heap.read_bytes", &GcCycleStats::device_read_bytes},
    {"device.heap.write_bytes", &GcCycleStats::device_write_bytes},
    {"prefetch.issued", &GcCycleStats::prefetches_issued},
    {"prefetch.hits", &GcCycleStats::prefetch_hits},
    {"persist.flush_lines", &GcCycleStats::persist_flush_lines},
    {"persist.fences", &GcCycleStats::persist_fences},
    {"persist.ns", &GcCycleStats::persist_ns},
    {"persist.redo_entries", &GcCycleStats::persist_redo_entries},
    {"persist.commit_bytes", &GcCycleStats::persist_commit_bytes},
};

}  // namespace

const std::vector<std::string>& GcPauseMetricNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>;
    for (const CycleField& f : kCycleFields) {
      v->push_back(f.name);
    }
    return v;
  }();
  return *names;
}

PauseSnapshot SnapshotFromCycle(uint64_t id, const GcCycleStats& cycle) {
  PauseSnapshot snap;
  snap.id = id;
  snap.start_ns = cycle.start_ns;
  for (const CycleField& f : kCycleFields) {
    snap.values[f.name] = cycle.*(f.field);
  }
  return snap;
}

void RecordGcCycleHistograms(MetricsRegistry* registry, const GcCycleStats& cycle) {
  registry->RecordHistogram("gc.pause_ns", cycle.pause_ns);
  registry->RecordHistogram("gc.read_phase_ns", cycle.read_phase_ns);
  registry->RecordHistogram("gc.writeback_phase_ns", cycle.writeback_phase_ns);
  const std::string kind_prefix =
      std::string("gc.pause.") + (cycle.is_major != 0 ? "major" : "minor") + ".";
  registry->RecordHistogram(kind_prefix + "pause_ns", cycle.pause_ns);
  registry->RecordHistogram(kind_prefix + "read_phase_ns", cycle.read_phase_ns);
  registry->RecordHistogram(kind_prefix + "writeback_phase_ns", cycle.writeback_phase_ns);
}

void RecordGcCycle(MetricsRegistry* registry, const GcCycleStats& cycle) {
  RecordGcCycleHistograms(registry, cycle);
  registry->RecordPause(SnapshotFromCycle(registry->pauses().size(), cycle));
}

}  // namespace nvmgc
