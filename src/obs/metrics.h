// Unified metrics registry: every counter the runtime produces — GcCycleStats,
// write-cache and header-map counters, fault-injector counters, MemoryDevice
// traffic ledgers — under stable dotted names (see DESIGN.md §6 for the naming
// scheme), with per-pause snapshots and process-lifetime aggregation.
//
// Threading: the registry is owned by the Vm and mutated only on the control
// thread (pause boundaries, end-of-run exports). Parallel GC phases never
// touch it — workers accumulate into their own GcCycleStats and the merged
// cycle is recorded once per pause.

#ifndef NVMGC_SRC_OBS_METRICS_H_
#define NVMGC_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/gc/gc_stats.h"
#include "src/util/histogram.h"

namespace nvmgc {

// One pause's metric values (name → value). Names are the stable dotted
// scheme; the set of keys for GC pauses is GcPauseMetricNames().
struct PauseSnapshot {
  uint64_t id = 0;        // Pause ordinal within the process (0-based).
  uint64_t start_ns = 0;  // Simulated time the pause began.
  std::map<std::string, uint64_t> values;
};

// Plain-value percentile digest of one histogram (what reports and bench
// JSON carry — the full bucket array never leaves the registry).
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  double mean = 0.0;
};

// Digest of `h` (all zeros for an empty histogram).
HistogramSummary Summarize(const Histogram& h);

class MetricsRegistry {
 public:
  // --- Lifetime aggregates ---
  // Counters are monotonic sums; gauges are last-value-wins.
  void AddCounter(const std::string& name, uint64_t delta);
  void SetGauge(const std::string& name, uint64_t value);
  // Records `value` into the named histogram (created on first use).
  void RecordHistogram(const std::string& name, uint64_t value);

  // Returns 0 / nullptr when the name was never recorded.
  uint64_t counter(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;
  bool has_counter(const std::string& name) const;
  // Percentile digest of the named histogram (zero digest when absent).
  HistogramSummary Summary(const std::string& name) const;
  // Digests of every recorded histogram, keyed by name.
  std::map<std::string, HistogramSummary> Summaries() const;

  // Stable (sorted) name lists.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  // Merges `src` into this registry with every name prefixed — the fleet
  // roll-up: FleetManager merges each tenant Vm's registry under
  // "tenant.<id>.". Counters add, gauges last-write-wins, histograms merge,
  // and pause snapshots are appended with prefixed value keys (ids and start
  // times kept, so per-tenant pause streams stay distinguishable and
  // correctly timestamped).
  void MergeFrom(const MetricsRegistry& src, const std::string& prefix);

  // --- Per-pause snapshots ---
  // Records one pause: every snapshot value is also added to the lifetime
  // counter of the same name, so snapshot-vs-aggregate stays consistent by
  // construction.
  void RecordPause(PauseSnapshot snapshot);
  const std::vector<PauseSnapshot>& pauses() const { return pauses_; }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, uint64_t>& gauges() const { return gauges_; }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, uint64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<PauseSnapshot> pauses_;
};

// --- GC cycle → metrics mapping ---

// The stable per-pause metric names, in the order they appear in snapshots.
const std::vector<std::string>& GcPauseMetricNames();

// Maps one merged GC cycle to a snapshot keyed by GcPauseMetricNames().
PauseSnapshot SnapshotFromCycle(uint64_t id, const GcCycleStats& cycle);

// Records the per-pause duration histograms for one cycle: the aggregate
// gc.pause_ns / gc.read_phase_ns / gc.writeback_phase_ns tracks plus the
// kind-split gc.pause.minor.* / gc.pause.major.* tracks (derived from
// cycle.is_major; non-generational runs only ever populate the minor tracks,
// so percentile dashboards stay comparable across modes).
void RecordGcCycleHistograms(MetricsRegistry* registry, const GcCycleStats& cycle);

// Records `cycle` into `registry`: per-pause snapshot + lifetime counters +
// the duration histograms of RecordGcCycleHistograms().
void RecordGcCycle(MetricsRegistry* registry, const GcCycleStats& cycle);

}  // namespace nvmgc

#endif  // NVMGC_SRC_OBS_METRICS_H_
