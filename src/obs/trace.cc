#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace nvmgc {

namespace {

// Host-thread → (tracer, ring) binding. A single slot per host thread is
// enough: a thread serves one tracer at a time (worker threads belong to one
// pool; bench processes run Vms sequentially).
struct ThreadBinding {
  const GcTracer* owner = nullptr;
  uint32_t tid = 0;
};
thread_local ThreadBinding tls_binding;

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

// Chrome trace timestamps are microseconds; keep nanosecond precision with a
// fractional part.
void AppendMicros(std::string* out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out->append(buf);
}

}  // namespace

GcTracer::GcTracer(uint32_t gc_threads, size_t ring_capacity)
    : gc_threads_(gc_threads), ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      rings_(gc_threads + 1) {}

void GcTracer::BindThread(uint32_t tid) {
  tls_binding.owner = this;
  tls_binding.tid = tid <= gc_threads_ ? tid : gc_threads_;
}

GcTracer::Ring* GcTracer::BoundRing() {
  if (tls_binding.owner != this) {
    return nullptr;
  }
  return &rings_[tls_binding.tid];
}

void GcTracer::Emit(const char* name, const char* cat, uint64_t start_ns, uint64_t end_ns) {
  if (!enabled()) {
    return;
  }
  Ring* ring = BoundRing();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.tid = tls_binding.tid;
  e.start_ns = start_ns;
  e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  if (ring->events.size() < ring_capacity_) {
    ring->events.push_back(e);
  } else {
    // Ring full: overwrite the oldest retained event.
    ring->events[ring->next % ring_capacity_] = e;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++ring->next;
  ++ring->total;
}

void GcTracer::EmitInstant(const char* name, const char* cat, uint64_t now_ns) {
  Emit(name, cat, now_ns, now_ns);
}

void GcTracer::EmitCounter(const char* name, const char* cat, uint64_t now_ns, double value) {
  if (!enabled()) {
    return;
  }
  Ring* ring = BoundRing();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.tid = tls_binding.tid;
  e.start_ns = now_ns;
  e.kind = TraceEventKind::kCounter;
  e.value = value;
  if (ring->events.size() < ring_capacity_) {
    ring->events.push_back(e);
  } else {
    ring->events[ring->next % ring_capacity_] = e;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++ring->next;
  ++ring->total;
}

std::vector<TraceEvent> GcTracer::SortedEvents() const {
  std::vector<TraceEvent> all;
  for (const Ring& ring : rings_) {
    all.insert(all.end(), ring.events.begin(), ring.events.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) {
      return a.start_ns < b.start_ns;
    }
    if (a.tid != b.tid) {
      return a.tid < b.tid;
    }
    return a.dur_ns > b.dur_ns;  // Outer (longer) spans first at equal starts.
  });
  return all;
}

void GcTracer::Clear() {
  for (Ring& ring : rings_) {
    ring.events.clear();
    ring.next = 0;
    ring.total = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void GcTracer::AppendChromeEvents(std::string* out, uint32_t pid,
                                  const std::string& process_name) const {
  char buf[64];
  out->append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
  std::snprintf(buf, sizeof(buf), "%u", pid);
  out->append(buf);
  out->append(",\"tid\":0,\"args\":{\"name\":\"");
  AppendJsonEscaped(out, process_name.c_str());
  out->append("\"}}");
  for (const TraceEvent& e : SortedEvents()) {
    out->append(",\n{\"name\":\"");
    AppendJsonEscaped(out, e.name);
    out->append("\",\"cat\":\"");
    AppendJsonEscaped(out, e.cat);
    out->append("\",\"ph\":");
    if (e.kind == TraceEventKind::kCounter) {
      out->append("\"C\",\"ts\":");
      AppendMicros(out, e.start_ns);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.3f}", e.value);
      out->append(buf);
    } else if (e.dur_ns > 0) {
      out->append("\"X\",\"ts\":");
      AppendMicros(out, e.start_ns);
      out->append(",\"dur\":");
      AppendMicros(out, e.dur_ns);
    } else {
      out->append("\"i\",\"s\":\"t\",\"ts\":");
      AppendMicros(out, e.start_ns);
    }
    std::snprintf(buf, sizeof(buf), ",\"pid\":%u,\"tid\":%u}", pid, e.tid);
    out->append(buf);
  }
}

bool GcTracer::WriteChromeTrace(const std::string& path,
                                const std::string& process_name) const {
  std::string body;
  body.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  AppendChromeEvents(&body, /*pid=*/1, process_name);
  body.append("\n]}\n");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (written != body.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace nvmgc
