// Low-overhead GC event tracer with Chrome-trace (Perfetto) export.
//
// Every pause can be replayed as a timeline: the control thread emits one
// span per pause, each GC worker emits read-phase / write-back spans, and the
// write cache / header map emit flush and journal-clear spans nested inside
// them. All timestamps are *simulated* nanoseconds (SimClock), so a trace is
// deterministic and seeds replay identically.
//
// Concurrency model: each logical GC thread records into its own fixed-size
// ring buffer; a host thread binds itself to a logical tid at the start of a
// parallel phase (GcTracer::BindThread) and subsequent emits are plain
// unsynchronized writes into that ring. When the ring wraps, the oldest
// events are overwritten and counted as dropped. Export (SortedEvents /
// WriteChromeTrace) must only run while no parallel phase is active.

#ifndef NVMGC_SRC_OBS_TRACE_H_
#define NVMGC_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/nvm/sim_clock.h"

namespace nvmgc {

// One completed span (dur_ns > 0), instant event (dur_ns == 0), or counter
// sample (kCounter: `value` carries the sampled number, rendered by Perfetto
// as a counter track per (pid, name)). Names and categories are static
// strings owned by the call sites — the hot path never allocates.
enum class TraceEventKind : uint8_t {
  kSpanOrInstant,
  kCounter,
};

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  TraceEventKind kind = TraceEventKind::kSpanOrInstant;
  double value = 0.0;  // Counter events only.
};

class GcTracer {
 public:
  // `gc_threads` logical worker tids [0, gc_threads); the control thread uses
  // tid == gc_threads. `ring_capacity` is events retained per logical thread.
  explicit GcTracer(uint32_t gc_threads, size_t ring_capacity = 4096);

  GcTracer(const GcTracer&) = delete;
  GcTracer& operator=(const GcTracer&) = delete;

  // Tracing is off by default; a disabled tracer's Emit is one relaxed load.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  uint32_t control_tid() const { return gc_threads_; }

  // Binds the calling host thread to logical thread `tid` for subsequent
  // emits. Called by the collector at the start of every parallel phase (and
  // by the control thread once per pause); rebinding is cheap.
  void BindThread(uint32_t tid);

  // Emits a completed span / an instant event on the bound logical thread.
  // Events emitted by an unbound thread are dropped (counted).
  void Emit(const char* name, const char* cat, uint64_t start_ns, uint64_t end_ns);
  void EmitInstant(const char* name, const char* cat, uint64_t now_ns);
  // Emits one counter sample ("ph":"C"); Perfetto renders consecutive samples
  // of the same name as a step curve under the process, aligned with spans.
  void EmitCounter(const char* name, const char* cat, uint64_t now_ns, double value);

  // All retained events across rings, ordered by (start_ns, tid). Not safe
  // concurrently with emitting threads.
  std::vector<TraceEvent> SortedEvents() const;
  void Clear();

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Serializes retained events as Chrome-trace "traceEvents" array elements
  // (JSON objects separated by commas, no surrounding brackets) so multiple
  // tracers/processes can share one file. `pid` groups the events; a
  // process_name metadata record labeled `process_name` is prepended.
  void AppendChromeEvents(std::string* out, uint32_t pid,
                          const std::string& process_name) const;

  // Writes a complete, self-contained Chrome-trace JSON file that loads in
  // chrome://tracing and Perfetto. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path, const std::string& process_name) const;

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // capacity-sized, circular.
    size_t next = 0;
    uint64_t total = 0;  // Events ever emitted (total - retained = dropped).
  };

  Ring* BoundRing();

  const uint32_t gc_threads_;
  const size_t ring_capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::vector<Ring> rings_;  // gc_threads_ + 1 (control).
};

// RAII span: captures the clock on construction and emits on destruction.
// The clock must outlive the span; `name`/`cat` must be static strings.
class TraceSpan {
 public:
  TraceSpan(GcTracer* tracer, const SimClock* clock, const char* name, const char* cat)
      : tracer_(tracer), clock_(clock), name_(name), cat_(cat),
        start_ns_(clock->now_ns()) {}
  ~TraceSpan() {
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Emit(name_, cat_, start_ns_, clock_->now_ns());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  GcTracer* tracer_;
  const SimClock* clock_;
  const char* name_;
  const char* cat_;
  uint64_t start_ns_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_OBS_TRACE_H_
