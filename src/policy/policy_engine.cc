#include "src/policy/policy_engine.h"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace nvmgc {

namespace {

// Controller thresholds (documented in DESIGN.md §7). Grow/shrink pairs are
// deliberately far apart: the gap is the hysteresis band that keeps a knob
// from oscillating around a single operating point.

// Write cache: grow when this share of survivor bytes missed the cache,
// shrink when the pause staged less than 1/4 of the capacity with no misses.
constexpr double kCacheGrowOverflowFraction = 0.10;
constexpr double kCacheShrinkOccupancy = 0.25;

// Header map: double when this share of forwardings overflowed the bounded
// probe window; halve when occupancy fell below 1/16 with ~no overflows.
constexpr double kHmGrowOverflowRate = 0.20;
constexpr double kHmShrinkOverflowRate = 0.005;
constexpr double kHmShrinkOccupancy = 1.0 / 16.0;

// Async flushing: off when more than half the flushed regions were
// steal-tainted (their LIFO readiness never fired), back on below 20%.
constexpr double kAsyncOffTaintFraction = 0.50;
constexpr double kAsyncOnTaintFraction = 0.20;

// Durability: retreat when flush+fence time eats more than this share of the
// pause while async flushing is on — async flushing fences once per region
// (each flushing worker issues its own SFENCE) where the sync write-back
// fences once per worker batch, so backing off async is the one knob that
// directly removes fences.
constexpr double kPersistRetreatStallFraction = 0.25;
// Fleet-arbiter stall share of the inter-pause interval above which the
// tenant sheds GC threads (see DecideGcThreads).
constexpr double kFleetThrottleStallFraction = 0.25;

// Threads: the model comparison only applies when the pause was actually
// device-bound; 2% margins make shrink/grow verdicts mutually exclusive.
constexpr double kThreadsDeviceBoundUtilization = 0.85;
constexpr double kThreadsModelMargin = 0.02;

// Generational: raise the tenure threshold (hold objects in DRAM longer) when
// this share of the copied bytes was promoted with no survivor overflow —
// objects are reaching NVM while still dying young. Survivor overflow lowers
// it (promote a cohort earlier so the survivor semispace fits).
constexpr double kTenureRaisePromotedFraction = 0.60;
// Eden quota: grow eden (more time for objects to die before a minor pause)
// when this share of the young cset survived; shrink it back when survival is
// negligible, returning the DRAM to write-cache staging.
constexpr double kEdenGrowSurvivalFraction = 0.30;
constexpr double kEdenShrinkSurvivalFraction = 0.02;

// Prefetch distance: widen under this hit rate, narrow above the (much
// stricter) upper bound.
constexpr double kPrefetchGrowHitRate = 0.60;
constexpr double kPrefetchShrinkHitRate = 0.995;
constexpr uint32_t kPrefetchMinWindow = 8;
constexpr uint64_t kPrefetchMinSamples = 100;

std::string Format(const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

}  // namespace

const char* PolicyKnobName(PolicyKnob knob) {
  switch (knob) {
    case PolicyKnob::kGcThreads:
      return "gc_threads";
    case PolicyKnob::kWriteCacheBytes:
      return "write_cache_bytes";
    case PolicyKnob::kHeaderMapEnabled:
      return "header_map_enabled";
    case PolicyKnob::kHeaderMapEntries:
      return "header_map_entries";
    case PolicyKnob::kAsyncFlush:
      return "async_flush";
    case PolicyKnob::kPrefetchWindow:
      return "prefetch_window";
    case PolicyKnob::kTenureThreshold:
      return "tenure_threshold";
    case PolicyKnob::kEdenQuota:
      return "eden_quota_regions";
  }
  return "?";
}

PolicyEngine::PolicyEngine(const GcOptions& options, size_t heap_arena_bytes,
                           size_t cache_arena_bytes, const DeviceProfile& heap_profile,
                           uint32_t eden_quota_regions, uint32_t max_eden_quota_regions)
    : options_(options), model_(heap_profile) {
  NVMGC_CHECK_MSG(options.adaptive.enabled, "PolicyEngine built without AdaptivePolicy()");
  const std::string error = options.Validate();
  NVMGC_CHECK_MSG(error.empty(), error.c_str());
  const AdaptivePolicyOptions& a = options.adaptive;

  min_threads_ = a.min_gc_threads;
  max_threads_ = a.max_gc_threads != 0 ? a.max_gc_threads : options.gc_threads;

  min_cache_bytes_ = a.min_write_cache_bytes;
  max_cache_bytes_ = a.max_write_cache_bytes != 0
                         ? a.max_write_cache_bytes
                         : std::min(cache_arena_bytes, heap_arena_bytes / 8);
  max_cache_bytes_ = std::max(max_cache_bytes_, min_cache_bytes_);

  const size_t hm_bytes = options.header_map_bytes != 0 ? options.header_map_bytes
                                                        : heap_arena_bytes / 32;
  const size_t initial_hm_entries = std::bit_floor(std::max<size_t>(hm_bytes / 16, 16));
  min_hm_entries_ = 16;
  max_hm_entries_ =
      std::bit_floor(std::max(heap_arena_bytes / 8 / 16, initial_hm_entries));

  // The initial tuning is the static configuration, with the sentinel values
  // resolved so every later decision has a concrete old_value.
  tuning_ = DefaultGcTuning(options);
  tuning_.active_gc_threads =
      std::clamp(options.gc_threads, min_threads_, max_threads_);
  const size_t initial_cache = options.write_cache_bytes != 0
                                   ? options.write_cache_bytes
                                   : heap_arena_bytes / 32;
  tuning_.write_cache_capacity_bytes =
      std::clamp(initial_cache, min_cache_bytes_, max_cache_bytes_);
  tuning_.header_map_entries = initial_hm_entries;
  tuning_.header_map_enabled =
      options.use_header_map &&
      tuning_.active_gc_threads >= options.header_map_min_threads;
  if (options.generational.enabled) {
    tuning_.tenure_threshold = options.generational.tenure_threshold;
    tuning_.eden_quota_regions = eden_quota_regions;
    max_eden_quota_ = max_eden_quota_regions;
  }
}

bool PolicyEngine::Ready(PolicyKnob knob) const {
  const uint64_t last = last_change_[static_cast<size_t>(knob)];
  return last == 0 ||
         current_pause_ >= last + options_.adaptive.cooldown_pauses + 1;
}

void PolicyEngine::Decide(PolicyKnob knob, uint64_t old_value, uint64_t new_value,
                          bool retreat, std::string reason) {
  PolicyDecision d;
  d.pause_id = current_pause_;
  d.knob = knob;
  d.old_value = old_value;
  d.new_value = new_value;
  d.retreat = retreat;
  d.reason = std::move(reason);
  decisions_.push_back(std::move(d));
  last_change_[static_cast<size_t>(knob)] = current_pause_;
  ++decisions_this_pause_;
}

size_t PolicyEngine::OnPauseEnd(const PolicySignals& s) {
  ++pauses_seen_;
  current_pause_ = s.pause_id;
  decisions_this_pause_ = 0;
  // The retreat guardrail fires even during warmup and inside cooldowns: a
  // faulting device does not wait for the controller to feel settled.
  if (MaybeRetreat(s)) {
    return decisions_this_pause_;
  }
  if (pauses_seen_ <= options_.adaptive.warmup_pauses) {
    return 0;
  }
  if (options_.use_write_cache) {
    DecideWriteCache(s);
    DecideAsyncFlush(s);
  }
  if (options_.use_header_map) {
    DecideHeaderMap(s);
  }
  DecideGcThreads(s);
  if (options_.prefetch) {
    DecidePrefetch(s);
  }
  if (options_.generational.enabled) {
    DecideGenerational(s);
  }
  return decisions_this_pause_;
}

bool PolicyEngine::MaybeRetreat(const PolicySignals& s) {
  const bool dram_pressure = s.cache_fault_denials > 0 || s.cache_fallback_workers > 0;
  const bool persist_stall = options_.durability.enabled && tuning_.async_flush &&
                             s.persist_ns > 0 &&
                             s.persist_stall_fraction() > kPersistRetreatStallFraction;
  if (!s.degraded && !dram_pressure && !persist_stall) {
    return false;
  }
  ++retreats_;
  retreat_until_ = current_pause_ + options_.adaptive.cooldown_pauses + 1;
  const char* cause = s.degraded      ? "degraded pause (sustained throttle window)"
                      : dram_pressure ? "DRAM pressure (pair denials / worker fallback)"
                                      : "fence stalls dominate the pause (per-region SFENCEs)";
  if (tuning_.async_flush) {
    tuning_.async_flush = false;
    Decide(PolicyKnob::kAsyncFlush, 1, 0, /*retreat=*/true,
           Format("retreat: %s - async flushing off", cause));
  }
  if (dram_pressure && options_.use_write_cache &&
      tuning_.write_cache_capacity_bytes > min_cache_bytes_) {
    const size_t cur = tuning_.write_cache_capacity_bytes;
    const size_t next = std::max(min_cache_bytes_, cur / 2);
    tuning_.write_cache_capacity_bytes = next;
    Decide(PolicyKnob::kWriteCacheBytes, cur, next, /*retreat=*/true,
           Format("retreat: %s - halve staging demand on DRAM", cause));
  }
  return true;
}

void PolicyEngine::DecideWriteCache(const PolicySignals& s) {
  if (!Ready(PolicyKnob::kWriteCacheBytes)) {
    return;
  }
  const size_t cur = tuning_.write_cache_capacity_bytes;
  const double f = options_.adaptive.step_fraction;
  const double overflow = s.cache_overflow_fraction();
  if (overflow > kCacheGrowOverflowFraction && current_pause_ >= retreat_until_) {
    const size_t next =
        std::min(max_cache_bytes_, cur + static_cast<size_t>(static_cast<double>(cur) * f));
    if (next != cur) {
      tuning_.write_cache_capacity_bytes = next;
      Decide(PolicyKnob::kWriteCacheBytes, cur, next, /*retreat=*/false,
             Format("cache overflow %.1f%% of survivor bytes > %.0f%% - grow",
                    overflow * 100.0, kCacheGrowOverflowFraction * 100.0));
    }
    return;
  }
  if (s.cache_overflow_bytes == 0 &&
      static_cast<double>(s.cache_bytes_staged) <
          static_cast<double>(cur) * kCacheShrinkOccupancy) {
    size_t next = std::max(min_cache_bytes_,
                           cur - static_cast<size_t>(static_cast<double>(cur) * f));
    // Never shrink below twice what the pause actually staged — that would
    // manufacture the very overflow the grow rule reacts to.
    next = std::max(next, static_cast<size_t>(s.cache_bytes_staged) * 2);
    next = std::min(next, cur);
    if (next != cur) {
      tuning_.write_cache_capacity_bytes = next;
      Decide(PolicyKnob::kWriteCacheBytes, cur, next, /*retreat=*/false,
             Format("staged %.1f%% of capacity with no overflow - shrink",
                    static_cast<double>(s.cache_bytes_staged) /
                        static_cast<double>(cur) * 100.0));
    }
  }
}

void PolicyEngine::DecideHeaderMap(const PolicySignals& s) {
  // Gate: track the adapted thread count across the paper's threshold. This
  // is the feedback path by which a thread-count decision cascades into the
  // header map the next pause.
  const bool want = tuning_.active_gc_threads >= options_.header_map_min_threads;
  if (want != tuning_.header_map_enabled && Ready(PolicyKnob::kHeaderMapEnabled)) {
    tuning_.header_map_enabled = want;
    Decide(PolicyKnob::kHeaderMapEnabled, want ? 0 : 1, want ? 1 : 0, /*retreat=*/false,
           Format("active threads %u %s header_map_min_threads %u",
                  tuning_.active_gc_threads, want ? ">= " : "below",
                  options_.header_map_min_threads));
  }
  if (!tuning_.header_map_enabled || !Ready(PolicyKnob::kHeaderMapEntries)) {
    return;
  }
  const size_t cur = tuning_.header_map_entries;
  const double overflow = s.hm_overflow_rate();
  const uint64_t forwardings = s.hm_installs + s.hm_overflows;
  if (forwardings == 0) {
    return;  // Header map saw no traffic this pause; nothing to learn.
  }
  if (overflow > kHmGrowOverflowRate && cur < max_hm_entries_ &&
      current_pause_ >= retreat_until_) {
    const size_t next = std::min(max_hm_entries_, cur * 2);
    tuning_.header_map_entries = next;
    Decide(PolicyKnob::kHeaderMapEntries, cur, next, /*retreat=*/false,
           Format("probe overflow %.1f%% > %.0f%% - chains exceed the bounded "
                  "window, double the table",
                  overflow * 100.0, kHmGrowOverflowRate * 100.0));
    return;
  }
  if (overflow < kHmShrinkOverflowRate &&
      static_cast<double>(s.hm_installs) <
          static_cast<double>(cur) * kHmShrinkOccupancy &&
      cur > min_hm_entries_) {
    const size_t next = std::max(min_hm_entries_, cur / 2);
    tuning_.header_map_entries = next;
    Decide(PolicyKnob::kHeaderMapEntries, cur, next, /*retreat=*/false,
           Format("occupancy %.2f%% with no overflow - halve the table",
                  static_cast<double>(s.hm_installs) / static_cast<double>(cur) * 100.0));
  }
}

void PolicyEngine::DecideAsyncFlush(const PolicySignals& s) {
  if (!Ready(PolicyKnob::kAsyncFlush)) {
    return;
  }
  if (s.regions_flushed_sync + s.regions_flushed_async == 0) {
    return;  // No flush traffic to judge by.
  }
  const double taint = s.steal_taint_fraction();
  if (tuning_.async_flush && taint > kAsyncOffTaintFraction) {
    tuning_.async_flush = false;
    Decide(PolicyKnob::kAsyncFlush, 1, 0, /*retreat=*/false,
           Format("steal taint %.0f%% of flushed regions > %.0f%% - LIFO "
                  "readiness broken, flush synchronously",
                  taint * 100.0, kAsyncOffTaintFraction * 100.0));
    return;
  }
  if (!tuning_.async_flush && taint < kAsyncOnTaintFraction &&
      current_pause_ >= retreat_until_) {
    tuning_.async_flush = true;
    Decide(PolicyKnob::kAsyncFlush, 0, 1, /*retreat=*/false,
           Format("steal taint %.0f%% of flushed regions < %.0f%% - overlap "
                  "flushes with the read phase",
                  taint * 100.0, kAsyncOnTaintFraction * 100.0));
  }
}

void PolicyEngine::DecideGcThreads(const PolicySignals& s) {
  if (!Ready(PolicyKnob::kGcThreads)) {
    return;
  }
  const uint32_t cur = tuning_.active_gc_threads;
  const uint32_t step = std::max<uint32_t>(
      1, static_cast<uint32_t>(static_cast<double>(cur) * options_.adaptive.step_fraction / 2.0));
  // Fleet citizenship: when the bandwidth arbiter is stalling this tenant
  // (over budget while a higher QoS tier competes), more copy parallelism
  // only deepens the overshoot the stalls repay. Step the fan-out down and
  // let the cooldown window pace further shrinks while the throttling lasts.
  const double fleet_stall = s.fleet_stall_fraction();
  if (fleet_stall > kFleetThrottleStallFraction && cur > min_threads_) {
    const uint32_t down = cur - std::min(cur - min_threads_, step);
    tuning_.active_gc_threads = down;
    Decide(PolicyKnob::kGcThreads, cur, down, /*retreat=*/false,
           Format("fleet arbiter stalled %.0f%% of the interval - shed copy "
                  "bandwidth demand",
                  fleet_stall * 100.0));
    return;
  }
  if (s.read_model_mbps <= 0.0) {
    return;
  }
  MixState mix;
  mix.write_fraction = s.read_interleave;
  mix.nt_write_fraction = 0.0;
  mix.active_threads = cur;
  const double at_cur = model_.TotalBandwidthMbps(mix);
  if (at_cur <= 0.0) {
    return;
  }
  const double util = s.bandwidth_utilization();
  const uint32_t down = cur - std::min(cur - min_threads_, step);
  const uint32_t up = std::min(max_threads_, cur + step);
  // Shrink only when the pause was device-bound AND the model says fewer
  // workers sustain strictly more bandwidth (past the saturation knee):
  // otherwise fewer workers just means less CPU parallelism.
  if (down < cur && util > kThreadsDeviceBoundUtilization) {
    mix.active_threads = down;
    const double at_down = model_.TotalBandwidthMbps(mix);
    if (at_down > at_cur * (1.0 + kThreadsModelMargin)) {
      tuning_.active_gc_threads = down;
      Decide(PolicyKnob::kGcThreads, cur, down, /*retreat=*/false,
             Format("device-bound (%.0f%% of model): %.0f MB/s at %u threads vs "
                    "%.0f at %u - past the saturation knee",
                    util * 100.0, at_down, down, at_cur, cur));
      return;
    }
  }
  // Grow whenever the model says the added workers will not collapse the
  // bandwidth under the observed mix (CPU parallelism is then free).
  if (up > cur && current_pause_ >= retreat_until_) {
    mix.active_threads = up;
    const double at_up = model_.TotalBandwidthMbps(mix);
    if (at_up >= at_cur * (1.0 - kThreadsModelMargin)) {
      tuning_.active_gc_threads = up;
      Decide(PolicyKnob::kGcThreads, cur, up, /*retreat=*/false,
             Format("model holds %.0f MB/s at %u threads (%.0f at %u) - "
                    "parallelism is free under this mix",
                    at_up, up, at_cur, cur));
    }
  }
}

void PolicyEngine::DecidePrefetch(const PolicySignals& s) {
  if (!Ready(PolicyKnob::kPrefetchWindow) ||
      s.prefetches_issued < kPrefetchMinSamples) {
    return;
  }
  const uint32_t cur = tuning_.prefetch_window;
  const double hit = s.prefetch_hit_rate();
  if (hit < kPrefetchGrowHitRate && cur < 64) {
    const uint32_t next = std::min<uint32_t>(64, cur * 2);
    tuning_.prefetch_window = next;
    Decide(PolicyKnob::kPrefetchWindow, cur, next, /*retreat=*/false,
           Format("prefetch hit rate %.0f%% < %.0f%% - widen the distance",
                  hit * 100.0, kPrefetchGrowHitRate * 100.0));
    return;
  }
  if (hit > kPrefetchShrinkHitRate && cur > kPrefetchMinWindow * 2) {
    const uint32_t next = std::max(kPrefetchMinWindow, cur / 2);
    tuning_.prefetch_window = next;
    Decide(PolicyKnob::kPrefetchWindow, cur, next, /*retreat=*/false,
           Format("prefetch hit rate %.1f%% - narrow the distance, issue later",
                  hit * 100.0));
  }
}

void PolicyEngine::DecideGenerational(const PolicySignals& s) {
  if (s.is_major) {
    return;  // Major cycles copy old->old; their volumes would skew the rules.
  }
  // Tenure threshold: overflow means the survivor semispace cannot hold the
  // surviving cohort — tenure one age earlier so it fits. A promotion-heavy
  // pause with no overflow means objects reach NVM while still dying young —
  // hold them in DRAM one more cycle.
  if (Ready(PolicyKnob::kTenureThreshold)) {
    const uint32_t cur = tuning_.tenure_threshold;
    if (s.survivor_overflow_bytes > 0 && cur > 1) {
      tuning_.tenure_threshold = cur - 1;
      Decide(PolicyKnob::kTenureThreshold, cur, cur - 1, /*retreat=*/false,
             Format("survivor overflow %.0f KB promoted early - tenure one age sooner",
                    static_cast<double>(s.survivor_overflow_bytes) / 1e3));
    } else if (s.survivor_overflow_bytes == 0 && cur < 15 &&
               s.promoted_fraction() > kTenureRaisePromotedFraction &&
               current_pause_ >= retreat_until_) {
      tuning_.tenure_threshold = cur + 1;
      Decide(PolicyKnob::kTenureThreshold, cur, cur + 1, /*retreat=*/false,
             Format("promoted %.0f%% of copied bytes > %.0f%% with survivor room - "
                    "hold objects in DRAM one more cycle",
                    s.promoted_fraction() * 100.0,
                    kTenureRaisePromotedFraction * 100.0));
    }
  }
  // Eden quota: a high young survival rate means eden fills before its
  // objects have time to die; more eden regions push the pause later. Trade
  // back toward write-cache staging space when survival is negligible.
  if (max_eden_quota_ == 0 || !Ready(PolicyKnob::kEdenQuota) ||
      s.young_cset_bytes == 0) {
    return;
  }
  const uint32_t cur = tuning_.eden_quota_regions;
  const uint32_t step = std::max<uint32_t>(
      1, static_cast<uint32_t>(static_cast<double>(cur) * options_.adaptive.step_fraction));
  const double survival = s.young_survival_fraction();
  if (survival > kEdenGrowSurvivalFraction && cur < max_eden_quota_ &&
      current_pause_ >= retreat_until_) {
    const uint32_t next = std::min(max_eden_quota_, cur + step);
    tuning_.eden_quota_regions = next;
    Decide(PolicyKnob::kEdenQuota, cur, next, /*retreat=*/false,
           Format("young survival %.0f%% > %.0f%% - grow eden, let objects die first",
                  survival * 100.0, kEdenGrowSurvivalFraction * 100.0));
  } else if (survival < kEdenShrinkSurvivalFraction && cur > step + 1) {
    const uint32_t next = std::max<uint32_t>(1, cur - step);
    tuning_.eden_quota_regions = next;
    Decide(PolicyKnob::kEdenQuota, cur, next, /*retreat=*/false,
           Format("young survival %.1f%% - shrink eden, return DRAM to staging",
                  survival * 100.0));
  }
}

void PolicyEngine::ExportMetrics(MetricsRegistry* metrics) const {
  metrics->SetGauge("policy.active_threads", tuning_.active_gc_threads);
  metrics->SetGauge("policy.write_cache_capacity_bytes",
                    options_.use_write_cache ? tuning_.write_cache_capacity_bytes : 0);
  metrics->SetGauge("policy.header_map_enabled", tuning_.header_map_enabled ? 1 : 0);
  metrics->SetGauge("policy.header_map_entries",
                    options_.use_header_map ? tuning_.header_map_entries : 0);
  metrics->SetGauge("policy.async_flush", tuning_.async_flush ? 1 : 0);
  metrics->SetGauge("policy.prefetch_window", tuning_.prefetch_window);
  if (options_.generational.enabled) {
    metrics->SetGauge("policy.tenure_threshold", tuning_.tenure_threshold);
    metrics->SetGauge("policy.eden_quota_regions", tuning_.eden_quota_regions);
  }
  metrics->SetGauge("policy.decisions_total", decisions_.size());
  metrics->SetGauge("policy.retreats", retreats_);
}

void PolicyEngine::EmitTraceCounters(GcTracer* tracer, uint64_t now_ns) const {
  if (tracer == nullptr || !tracer->enabled()) {
    return;
  }
  tracer->EmitCounter("policy.active_threads", "policy", now_ns,
                      static_cast<double>(tuning_.active_gc_threads));
  tracer->EmitCounter("policy.write_cache_mb", "policy", now_ns,
                      options_.use_write_cache
                          ? static_cast<double>(tuning_.write_cache_capacity_bytes) / 1e6
                          : 0.0);
  tracer->EmitCounter("policy.header_map_entries", "policy", now_ns,
                      tuning_.header_map_enabled
                          ? static_cast<double>(tuning_.header_map_entries)
                          : 0.0);
  tracer->EmitCounter("policy.async_flush", "policy", now_ns,
                      tuning_.async_flush ? 1.0 : 0.0);
  tracer->EmitCounter("policy.prefetch_window", "policy", now_ns,
                      static_cast<double>(tuning_.prefetch_window));
  if (options_.generational.enabled) {
    tracer->EmitCounter("policy.tenure_threshold", "policy", now_ns,
                        static_cast<double>(tuning_.tenure_threshold));
    tracer->EmitCounter("policy.eden_quota_regions", "policy", now_ns,
                        static_cast<double>(tuning_.eden_quota_regions));
  }
  tracer->EmitCounter("policy.decisions_total", "policy", now_ns,
                      static_cast<double>(decisions_.size()));
}

}  // namespace nvmgc
