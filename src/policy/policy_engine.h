// Adaptive GC policy engine: per-pause feedback tuning of the NVM
// optimizations.
//
// Between pauses the engine turns the previous pause's PolicySignals into a
// new GcTuning: it grows/shrinks the write-cache DRAM capacity (from cache
// overflow, direct-to-NVM fallback, and DRAM-pressure degradation), gates and
// resizes the header map (from probe-chain overflow rate and occupancy),
// toggles asynchronous flushing (from the steal-taint rate that already
// disables it per region), and adapts the prefetch distance and GC thread
// count (from the observed interleave and effective bandwidth against the
// BandwidthModel optimum).
//
// The controller is deterministic and guard-railed:
//  - bounded steps       — capacity knobs move by step_fraction, the thread
//                          count by at most half a step per pause;
//  - cooldown windows    — a knob that just moved holds still for
//                          cooldown_pauses pauses (hysteresis against
//                          oscillation, separate thresholds for grow/shrink);
//  - hard clamps         — every value stays inside the Validate()-legal
//                          ranges resolved at construction;
//  - instant retreat     — a degraded pause or a DRAM-pressure fault
//                          (pair-allocation denial, worker fallback) shrinks
//                          the cache and disables async flushing immediately,
//                          bypassing cooldowns, and blocks re-growth for a
//                          cooldown window — composing with GcOptions::
//                          auto_degrade rather than fighting it.
//
// Every decision is recorded with a human-readable reason and surfaced three
// ways: the GcReport "policy decisions" table, policy.* gauges in the
// MetricsRegistry, and policy.* Chrome-trace counter tracks.

#ifndef NVMGC_SRC_POLICY_POLICY_ENGINE_H_
#define NVMGC_SRC_POLICY_POLICY_ENGINE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/gc/gc_options.h"
#include "src/nvm/bandwidth_model.h"
#include "src/nvm/device_profile.h"
#include "src/policy/policy_signals.h"

namespace nvmgc {

class GcTracer;
class MetricsRegistry;

enum class PolicyKnob : uint8_t {
  kGcThreads = 0,
  kWriteCacheBytes,
  kHeaderMapEnabled,
  kHeaderMapEntries,
  kAsyncFlush,
  kPrefetchWindow,
  kTenureThreshold,  // Generational heaps only.
  kEdenQuota,        // Generational heaps only.
};
inline constexpr size_t kPolicyKnobCount = 8;

const char* PolicyKnobName(PolicyKnob knob);

// One controller decision: knob moved from old_value to new_value after
// `pause_id`, because `reason`. Booleans are encoded 0/1.
struct PolicyDecision {
  uint64_t pause_id = 0;
  PolicyKnob knob = PolicyKnob::kGcThreads;
  uint64_t old_value = 0;
  uint64_t new_value = 0;
  bool retreat = false;  // Guardrail decision (bypassed cooldown).
  std::string reason;
};

class PolicyEngine {
 public:
  // Resolves the clamp ranges from the validated `options` and the heap
  // geometry (`heap_arena_bytes` for the paper-default capacities,
  // `cache_arena_bytes` as the physical ceiling of the write cache) and
  // builds the initial tuning, which reproduces the static configuration.
  // `heap_profile` parameterizes the bandwidth model driving the thread-count
  // rule.
  // The last two parameters only matter on a generational heap: the Vm passes
  // the heap's initial eden quota and the DRAM ceiling the quota may grow to
  // (dram_cache_regions minus the survivor reservation). Both default to 0,
  // which disables the eden-quota rule.
  PolicyEngine(const GcOptions& options, size_t heap_arena_bytes,
               size_t cache_arena_bytes, const DeviceProfile& heap_profile,
               uint32_t eden_quota_regions = 0, uint32_t max_eden_quota_regions = 0);

  // The tuning the next pause should run with (always resolved: capacities
  // and table sizes carry concrete values, never the 0 "keep" sentinels).
  const GcTuning& tuning() const { return tuning_; }

  // Feeds one pause's signals; updates the tuning and returns the number of
  // decisions made for the next pause.
  size_t OnPauseEnd(const PolicySignals& signals);

  const std::vector<PolicyDecision>& decisions() const { return decisions_; }
  uint64_t pauses_seen() const { return pauses_seen_; }
  uint64_t retreats() const { return retreats_; }

  // The decisions appended at or after decision index `from` — the per-pause
  // slice consumers like the flight recorder retain (`from` is the
  // decisions().size() observed at the previous pause end). Clamped, so a
  // stale index degrades to an empty slice rather than UB.
  std::vector<PolicyDecision> DecisionsSince(size_t from) const {
    return {decisions_.begin() +
                static_cast<ptrdiff_t>(std::min(from, decisions_.size())),
            decisions_.end()};
  }
  // True when any decision in the same slice was a retreat (the degraded /
  // fence-stall guardrail) — one of the flight recorder's anomaly triggers.
  bool AnyRetreatSince(size_t from) const {
    for (size_t i = std::min(from, decisions_.size()); i < decisions_.size(); ++i) {
      if (decisions_[i].retreat) return true;
    }
    return false;
  }

  // Resolved clamp ranges (exposed for tests and the report).
  uint32_t min_threads() const { return min_threads_; }
  uint32_t max_threads() const { return max_threads_; }
  size_t min_cache_bytes() const { return min_cache_bytes_; }
  size_t max_cache_bytes() const { return max_cache_bytes_; }
  size_t min_hm_entries() const { return min_hm_entries_; }
  size_t max_hm_entries() const { return max_hm_entries_; }

  // Publishes the current tuning and decision counts as policy.* gauges.
  void ExportMetrics(MetricsRegistry* metrics) const;
  // Emits policy.* counter tracks at `now_ns` on the tracer's bound thread
  // (the collector's control track), one point per pause.
  void EmitTraceCounters(GcTracer* tracer, uint64_t now_ns) const;

 private:
  // True when `knob` may move at the current pause: warmup is over, the knob
  // is outside its cooldown window, and (for growth) no retreat is in force.
  bool Ready(PolicyKnob knob) const;
  void Decide(PolicyKnob knob, uint64_t old_value, uint64_t new_value, bool retreat,
              std::string reason);

  // Guardrail: returns true when it fired (normal rules are skipped then).
  bool MaybeRetreat(const PolicySignals& s);
  void DecideWriteCache(const PolicySignals& s);
  void DecideHeaderMap(const PolicySignals& s);
  void DecideAsyncFlush(const PolicySignals& s);
  void DecideGcThreads(const PolicySignals& s);
  void DecidePrefetch(const PolicySignals& s);
  void DecideGenerational(const PolicySignals& s);

  GcOptions options_;
  BandwidthModel model_;
  GcTuning tuning_;

  // Resolved clamp ranges.
  uint32_t min_threads_ = 1;
  uint32_t max_threads_ = 1;
  size_t min_cache_bytes_ = 0;
  size_t max_cache_bytes_ = 0;
  size_t min_hm_entries_ = 16;
  size_t max_hm_entries_ = 16;
  uint32_t max_eden_quota_ = 0;  // 0 = eden-quota rule disabled.

  uint64_t pauses_seen_ = 0;
  uint64_t current_pause_ = 0;  // Pause id being decided on.
  uint64_t retreats_ = 0;
  // Growth decisions are blocked while current_pause_ < retreat_until_.
  uint64_t retreat_until_ = 0;
  // Pause id of each knob's last change (0 = never changed).
  std::array<uint64_t, kPolicyKnobCount> last_change_{};
  size_t decisions_this_pause_ = 0;
  std::vector<PolicyDecision> decisions_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_POLICY_POLICY_ENGINE_H_
