#include "src/policy/policy_signals.h"

namespace nvmgc {

namespace {
double Ratio(uint64_t num, uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double PolicySignals::steal_rate() const { return Ratio(steals, refs_processed); }

double PolicySignals::flush_stall_fraction() const {
  return Ratio(writeback_phase_ns, pause_ns);
}

double PolicySignals::cache_overflow_fraction() const {
  return Ratio(cache_overflow_bytes, cache_bytes_staged + cache_overflow_bytes);
}

double PolicySignals::steal_taint_fraction() const {
  return Ratio(regions_steal_tainted, regions_flushed_sync + regions_flushed_async);
}

double PolicySignals::hm_overflow_rate() const {
  return Ratio(hm_overflows, hm_installs + hm_overflows);
}

double PolicySignals::prefetch_hit_rate() const {
  return Ratio(prefetch_hits, prefetches_issued);
}

double PolicySignals::bandwidth_utilization() const {
  return read_model_mbps <= 0.0 ? 0.0 : read_total_mbps / read_model_mbps;
}

double PolicySignals::persist_stall_fraction() const { return Ratio(persist_ns, pause_ns); }

double PolicySignals::fleet_stall_fraction() const {
  return Ratio(fleet_stall_ns, fleet_interval_ns);
}

double PolicySignals::promoted_fraction() const {
  return Ratio(bytes_promoted, bytes_copied);
}

double PolicySignals::young_survival_fraction() const {
  return Ratio(bytes_copied, young_cset_bytes);
}

PolicySignals CollectPolicySignals(const GcCycleStats& cycle, uint64_t pause_id,
                                   const DeviceTimeline* timeline) {
  PolicySignals s;
  s.pause_id = pause_id;
  s.pause_ns = cycle.pause_ns;
  s.read_phase_ns = cycle.read_phase_ns;
  s.writeback_phase_ns = cycle.writeback_phase_ns;
  s.bytes_copied = cycle.bytes_copied;
  s.objects_copied = cycle.objects_copied;
  s.bytes_promoted = cycle.bytes_promoted;
  s.refs_processed = cycle.refs_processed;
  s.steals = cycle.steals;
  s.is_major = cycle.is_major != 0;
  s.young_cset_bytes = cycle.young_cset_bytes;
  s.survivor_overflow_bytes = cycle.survivor_overflow_bytes;
  s.cache_bytes_staged = cycle.cache_bytes_staged;
  s.cache_overflow_bytes = cycle.cache_overflow_bytes;
  s.cache_fallback_bytes = cycle.cache_fallback_bytes;
  s.cache_fallback_workers = cycle.cache_fallback_workers;
  s.cache_fault_denials = cycle.cache_fault_denials;
  s.regions_flushed_sync = cycle.regions_flushed_sync;
  s.regions_flushed_async = cycle.regions_flushed_async;
  s.regions_steal_tainted = cycle.regions_steal_tainted;
  s.degraded = cycle.degraded_mode != 0;
  s.hm_installs = cycle.header_map_installs;
  s.hm_overflows = cycle.header_map_overflows;
  s.hm_hits = cycle.header_map_hits;
  s.prefetches_issued = cycle.prefetches_issued;
  s.prefetch_hits = cycle.prefetch_hits;
  s.persist_ns = cycle.persist_ns;
  s.persist_fences = cycle.persist_fences;
  if (timeline != nullptr) {
    const DeviceTimeline::PhaseAverages avg =
        timeline->AveragePhase(pause_id, GcPhaseKind::kRead);
    s.read_interleave = avg.interleave;
    s.read_mbps = avg.read_mbps;
    s.read_total_mbps = avg.read_mbps + avg.write_mbps;
    s.read_model_mbps = avg.model_mbps;
  }
  return s;
}

}  // namespace nvmgc
