// PolicySignals: the per-pause measurement snapshot the adaptive policy
// engine decides from.
//
// One PolicySignals is assembled right after every pause from the merged
// GcCycleStats and the DeviceTimeline's read-phase bandwidth samples. It is a
// plain value — no references into collector state — so the engine's decision
// function is a pure (signals, state) -> (tuning, decisions) step, which is
// what makes the controller deterministic and unit-testable with hand-built
// signal sequences.

#ifndef NVMGC_SRC_POLICY_POLICY_SIGNALS_H_
#define NVMGC_SRC_POLICY_POLICY_SIGNALS_H_

#include <cstddef>
#include <cstdint>

#include "src/gc/gc_stats.h"
#include "src/obs/device_timeline.h"

namespace nvmgc {

struct PolicySignals {
  uint64_t pause_id = 0;  // 1-based GC cycle ordinal.

  // Durations.
  uint64_t pause_ns = 0;
  uint64_t read_phase_ns = 0;
  uint64_t writeback_phase_ns = 0;

  // Copy volume.
  uint64_t bytes_copied = 0;
  uint64_t objects_copied = 0;
  uint64_t bytes_promoted = 0;
  uint64_t refs_processed = 0;
  uint64_t steals = 0;

  // Generational (all zero outside generational mode).
  bool is_major = false;
  uint64_t young_cset_bytes = 0;
  uint64_t survivor_overflow_bytes = 0;

  // Write cache.
  uint64_t cache_bytes_staged = 0;
  uint64_t cache_overflow_bytes = 0;
  uint64_t cache_fallback_bytes = 0;
  uint64_t cache_fallback_workers = 0;
  uint64_t cache_fault_denials = 0;
  uint64_t regions_flushed_sync = 0;
  uint64_t regions_flushed_async = 0;
  uint64_t regions_steal_tainted = 0;
  bool degraded = false;

  // Header map (per-pause deltas).
  uint64_t hm_installs = 0;
  uint64_t hm_overflows = 0;
  uint64_t hm_hits = 0;

  // Prefetching.
  uint64_t prefetches_issued = 0;
  uint64_t prefetch_hits = 0;

  // Durability (all zero outside durability mode).
  uint64_t persist_ns = 0;
  uint64_t persist_fences = 0;

  // Fleet arbitration (all zero outside a FleetManager). Stall the bandwidth
  // arbiter injected into this tenant since the previous pause, over the
  // inter-pause application interval it accrued in.
  uint64_t fleet_stall_ns = 0;
  uint64_t fleet_interval_ns = 0;

  // Read-phase device behavior (means over the pause's timeline samples).
  double read_interleave = 0.0;   // Write share of the read-phase traffic.
  double read_mbps = 0.0;         // Observed read-direction bandwidth.
  double read_total_mbps = 0.0;   // Observed total bandwidth.
  double read_model_mbps = 0.0;   // Model ceiling under the observed mix.

  // --- Derived rates (all guard against zero denominators) ---
  // Stolen references per processed reference.
  double steal_rate() const;
  // Share of the pause spent in the write-only flush/clear sub-phase.
  double flush_stall_fraction() const;
  // Survivor bytes that missed the cache: overflow / (staged + overflow).
  double cache_overflow_fraction() const;
  // Flushed-region share whose LIFO readiness was broken by stealing.
  double steal_taint_fraction() const;
  // Forwardings that fell back to the NVM header: overflows / (installs+overflows).
  double hm_overflow_rate() const;
  double prefetch_hit_rate() const;
  // Observed total bandwidth as a share of the model ceiling: ~1 means the
  // pause was device-bound, << 1 means CPU-bound.
  double bandwidth_utilization() const;
  // Promoted share of the copied bytes (tenuring pressure).
  double promoted_fraction() const;
  // Copied share of the young collection-set bytes (young survival rate).
  double young_survival_fraction() const;
  // Share of the pause spent flushing and fencing for durability.
  double persist_stall_fraction() const;
  // Share of the inter-pause interval the fleet arbiter stalled this tenant.
  double fleet_stall_fraction() const;
};

// Assembles the signals for the pause `cycle` describes. `pause_id` is the
// 1-based cycle ordinal (the collector's gc_epoch); `timeline` may be null,
// leaving the read-phase device signals at zero.
PolicySignals CollectPolicySignals(const GcCycleStats& cycle, uint64_t pause_id,
                                   const DeviceTimeline* timeline);

}  // namespace nvmgc

#endif  // NVMGC_SRC_POLICY_POLICY_SIGNALS_H_
