#include "src/recovery/commit_record.h"

#include <algorithm>

namespace nvmgc {

namespace {
constexpr size_t AlignUp(size_t n, size_t a) { return (n + a - 1) / a * a; }
}  // namespace

CommitLayout ComputeCommitLayout(const HeapConfig& heap, const DurabilityOptions& durability) {
  CommitLayout layout;
  if (durability.commit_record_bytes != 0) {
    layout.record_slot_bytes = durability.commit_record_bytes;
  } else {
    // Reserve one root slot per 128 heap bytes (a root-heavy workload keeps a
    // handle per small live object, so the count scales with the heap, not
    // with some fixed budget), floored for tiny test heaps. Slot size costs
    // only arena footprint — the per-pause write is the actual payload — and
    // the collector check-fails with an actionable message if a run still
    // outgrows the slot.
    const size_t heap_bytes = heap.region_bytes * heap.heap_regions;
    const size_t root_slots = std::max<size_t>(8192, heap_bytes / 128);
    const size_t payload = sizeof(CommitHeader) +
                           sizeof(CommitRegionEntry) * heap.heap_regions +
                           sizeof(uint64_t) * root_slots + /*seal*/ 8;
    layout.record_slot_bytes = AlignUp(payload, 4096);
  }
  if (durability.redo_log_bytes != 0) {
    layout.redo_slot_bytes = durability.redo_log_bytes;
  } else {
    const size_t heap_bytes = heap.region_bytes * heap.heap_regions;
    layout.redo_slot_bytes = AlignUp(std::max<size_t>(heap_bytes / 32, 256 * 1024), 4096);
  }
  return layout;
}

uint64_t Fnv1a(const uint8_t* data, size_t bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace nvmgc
