// The durable commit record: the per-pause root of recovery.
//
// At the end of every pause in durability mode, the collector writes a
// snapshot of the post-GC heap shape — region table entries, root offsets,
// and the in-place-update redo log — into a commit area appended to the heap
// arena, with a durable-last protocol (see DESIGN.md §8):
//
//   1. clear the target slot's seal (write 0, flush, fence),
//   2. write + flush + fence the payload (header, region entries, roots),
//   3. write + flush + fence the seal word (kCommitMagic ^ epoch).
//
// The seal is the commit point: a crash before step 3's fence leaves the slot
// torn (seal missing or checksum mismatch) and recovery falls back to the
// other slot. Slots alternate by epoch parity, so the previous commit is
// never overwritten while the next is in flight.
//
// Commit-area layout (HeapConfig::commit_area_bytes, past the regions):
//
//   [record slot A][record slot B][redo slot A][redo slot B]
//
// The redo slots hold the content redo log: for in-place updates to regions
// that were already part of a sealed commit (remset-driven old-region slot
// rewrites, survivor aging), the collector logs (arena offset, 64B content)
// pairs and fences the log *before* the seal, then flushes the in-place lines
// only after the commit point. Recovery replays the chosen epoch's log;
// replay is idempotent.

#ifndef NVMGC_SRC_RECOVERY_COMMIT_RECORD_H_
#define NVMGC_SRC_RECOVERY_COMMIT_RECORD_H_

#include <cstddef>
#include <cstdint>

#include "src/gc/gc_options.h"
#include "src/heap/heap.h"

namespace nvmgc {

inline constexpr uint64_t kCommitMagic = 0x4e564d4743434d54ull;  // "NVMGCCMT"
inline constexpr uint64_t kNullRootOffset = ~0ull;

// Fixed-size header at the start of a record slot. All fields little-endian
// host layout (the simulated DIMM is the host's memory).
struct CommitHeader {
  uint64_t magic = 0;
  uint64_t epoch = 0;      // GC epoch this commit describes.
  uint64_t commit_ns = 0;  // Simulated instant the seal fence completed.
  uint64_t region_count = 0;
  uint64_t root_count = 0;
  uint64_t redo_entry_count = 0;
  uint64_t payload_checksum = 0;  // FNV-1a over entries + roots.
  uint64_t redo_checksum = 0;     // FNV-1a over the redo entries.
};

// One committed heap region (index into the heap region table).
struct CommitRegionEntry {
  uint32_t index = 0;
  uint32_t type = 0;  // RegionType as uint32.
  uint64_t used_bytes = 0;
  uint64_t gc_epoch = 0;  // Survivor age bookkeeping.
  uint64_t reserved = 0;
};
static_assert(sizeof(CommitRegionEntry) == 32);

// One content redo entry: 64 bytes of post-update line content at an arena
// offset inside a previously committed region.
struct RedoEntry {
  uint64_t arena_offset = 0;
  uint8_t content[64] = {};
};
static_assert(sizeof(RedoEntry) == 72);

// Byte geometry of the commit area. Offsets are relative to
// Heap::commit_area_base().
struct CommitLayout {
  size_t record_slot_bytes = 0;
  size_t redo_slot_bytes = 0;

  size_t total_bytes() const { return 2 * record_slot_bytes + 2 * redo_slot_bytes; }
  size_t record_offset(uint64_t epoch) const { return (epoch % 2) * record_slot_bytes; }
  size_t redo_offset(uint64_t epoch) const {
    return 2 * record_slot_bytes + (epoch % 2) * redo_slot_bytes;
  }
  // The seal word occupies the record slot's last 8 bytes.
  size_t seal_offset(uint64_t epoch) const {
    return record_offset(epoch) + record_slot_bytes - 8;
  }
};

// Derives the commit-area geometry from the heap shape and any explicit
// DurabilityOptions overrides (0 = derive).
CommitLayout ComputeCommitLayout(const HeapConfig& heap, const DurabilityOptions& durability);

uint64_t Fnv1a(const uint8_t* data, size_t bytes);

// Seal value for `epoch` (xor folds the epoch in so a stale seal from slot
// reuse two epochs ago cannot validate a newer torn payload).
inline uint64_t SealValue(uint64_t epoch) { return kCommitMagic ^ epoch; }

}  // namespace nvmgc

#endif  // NVMGC_SRC_RECOVERY_COMMIT_RECORD_H_
