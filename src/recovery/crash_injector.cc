#include "src/recovery/crash_injector.h"

#include <algorithm>

#include "src/util/check.h"

namespace nvmgc {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

CrashInjector::CrashInjector(PersistOrderingLedger* ledger, uint64_t crash_ns)
    : ledger_(ledger), crash_ns_(crash_ns) {
  NVMGC_CHECK(ledger != nullptr);
  ledger_->ArmCrashCapture(crash_ns);
}

std::vector<uint64_t> CrashInjector::SweepInstants(uint64_t seed, uint64_t min_ns,
                                                   uint64_t max_ns, size_t count) {
  NVMGC_CHECK(max_ns > min_ns);
  uint64_t state = seed;
  std::vector<uint64_t> instants;
  instants.reserve(count);
  const uint64_t span = max_ns - min_ns;
  for (size_t i = 0; i < count; ++i) {
    instants.push_back(min_ns + SplitMix64(&state) % span);
  }
  std::sort(instants.begin(), instants.end());
  return instants;
}

}  // namespace nvmgc
