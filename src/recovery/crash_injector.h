// Simulated power-cut injection.
//
// A CrashInjector arms the heap device's persistence ledger with a crash
// instant T: every fence completing before T snapshots its newly durable
// lines into a crash image, and everything else — dirty lines, flushed-but-
// unfenced lines, all DRAM state (write-cache staging regions, the header
// map, remembered sets, mutator handles) — is lost. TakeImage() surrenders
// "what the DIMM holds after power loss at T" for the RecoveryChecker.
//
// Crash sweeps pick instants with SweepInstants(): a seeded, deterministic
// scatter across a simulated horizon, so a failing instant reproduces from
// the seed printed by the test.

#ifndef NVMGC_SRC_RECOVERY_CRASH_INJECTOR_H_
#define NVMGC_SRC_RECOVERY_CRASH_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/nvm/persist_ledger.h"

namespace nvmgc {

class CrashInjector {
 public:
  // Arms `ledger` (which must already be configured by the Vm) to capture
  // the surviving image for a power cut at simulated instant `crash_ns`.
  CrashInjector(PersistOrderingLedger* ledger, uint64_t crash_ns);

  CrashInjector(const CrashInjector&) = delete;
  CrashInjector& operator=(const CrashInjector&) = delete;

  uint64_t crash_ns() const { return crash_ns_; }

  // The surviving NVM state. Call once, after the run has simulated past
  // crash_ns (later fences simply stop contributing to the image).
  CrashImage TakeImage() { return ledger_->TakeCrashImage(); }

  // Deterministic scatter of `count` crash instants in [min_ns, max_ns),
  // derived from `seed` (splitmix64). Sorted ascending.
  static std::vector<uint64_t> SweepInstants(uint64_t seed, uint64_t min_ns, uint64_t max_ns,
                                             size_t count);

 private:
  PersistOrderingLedger* ledger_;
  uint64_t crash_ns_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_RECOVERY_CRASH_INJECTOR_H_
