// Simulated power-cut injection.
//
// A CrashInjector arms the heap device's persistence ledger with a crash
// instant T: every fence completing before T snapshots its newly durable
// lines into a crash image, and everything else — dirty lines, flushed-but-
// unfenced lines, all DRAM state (write-cache staging regions, the header
// map, remembered sets, mutator handles) — is lost. TakeImage() surrenders
// "what the DIMM holds after power loss at T" for the RecoveryChecker.
//
// Crash sweeps pick instants with SweepInstants(): a seeded, deterministic
// scatter across a simulated horizon, so a failing instant reproduces from
// the seed printed by the test.

#ifndef NVMGC_SRC_RECOVERY_CRASH_INJECTOR_H_
#define NVMGC_SRC_RECOVERY_CRASH_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/nvm/persist_ledger.h"
#include "src/obs/flight_recorder.h"

namespace nvmgc {

class CrashInjector {
 public:
  // Arms `ledger` (which must already be configured by the Vm) to capture
  // the surviving image for a power cut at simulated instant `crash_ns`.
  CrashInjector(PersistOrderingLedger* ledger, uint64_t crash_ns);

  CrashInjector(const CrashInjector&) = delete;
  CrashInjector& operator=(const CrashInjector&) = delete;

  uint64_t crash_ns() const { return crash_ns_; }

  // Arms the VM's flight recorder alongside the ledger: TakeImage() then
  // dumps the flight record of the pauses leading up to the cut into
  // `dump_dir` (FrTrigger::kCrash), so a recovered heap ships with the
  // evidence of how it got there. Pass nullptr to disarm.
  void ArmFlightRecorder(FlightRecorder* recorder, std::string dump_dir) {
    flight_recorder_ = recorder;
    flight_dump_dir_ = std::move(dump_dir);
  }
  const std::string& flight_dump_path() const { return flight_dump_path_; }

  // The surviving NVM state. Call once, after the run has simulated past
  // crash_ns (later fences simply stop contributing to the image).
  CrashImage TakeImage() {
    if (flight_recorder_ != nullptr) {
      flight_dump_path_ = flight_recorder_->Dump(FrTrigger::kCrash, flight_dump_dir_);
    }
    return ledger_->TakeCrashImage();
  }

  // Deterministic scatter of `count` crash instants in [min_ns, max_ns),
  // derived from `seed` (splitmix64). Sorted ascending.
  static std::vector<uint64_t> SweepInstants(uint64_t seed, uint64_t min_ns, uint64_t max_ns,
                                             size_t count);

 private:
  PersistOrderingLedger* ledger_;
  uint64_t crash_ns_;
  FlightRecorder* flight_recorder_ = nullptr;
  std::string flight_dump_dir_;
  std::string flight_dump_path_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_RECOVERY_CRASH_INJECTOR_H_
