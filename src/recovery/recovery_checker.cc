#include "src/recovery/recovery_checker.h"

#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "src/heap/heap_verifier.h"
#include "src/util/check.h"

namespace nvmgc {

namespace {

std::string Format(const char* fmt, uint64_t a, uint64_t b = 0) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

bool AllPoison(const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != kPersistPoisonByte) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* RecoveryOutcomeName(RecoveryReport::Outcome outcome) {
  switch (outcome) {
    case RecoveryReport::Outcome::kRecovered:
      return "recovered";
    case RecoveryReport::Outcome::kNoCommittedState:
      return "no-committed-state";
    case RecoveryReport::Outcome::kCorrupt:
      return "corrupt";
  }
  return "?";
}

// One commit-record slot as read out of the crash image.
struct RecoveryChecker::SlotView {
  bool sealed = false;          // Seal matches this slot's header epoch.
  bool valid = false;           // Sealed and all checksums/bounds hold.
  CommitHeader header;
  const uint8_t* entries = nullptr;  // Region entries (inside the image).
  const uint8_t* roots = nullptr;    // Root offsets (inside the image).
  const uint8_t* redo = nullptr;     // Redo slot base (inside the image).
  std::string classification;
};

RecoveryChecker::RecoveryChecker(const HeapConfig& config, const DurabilityOptions& durability,
                                 const KlassTable& klasses)
    : config_(config),
      layout_(ComputeCommitLayout(config, durability)),
      nvm_(MakeOptaneProfile()),
      dram_(MakeDramProfile()) {
  if (config_.commit_area_bytes < layout_.total_bytes()) {
    config_.commit_area_bytes = layout_.total_bytes();
  }
  heap_ = std::make_unique<Heap>(config_, config_.heap_device == DeviceKind::kNvm ? &nvm_ : &dram_,
                                 &dram_);
  // Klass descriptors live in the runtime binary, not on the heap: mirror
  // the crashed run's table so klass ids resolve identically.
  for (KlassId id = 0; id < klasses.size(); ++id) {
    heap_->klasses().Register(klasses.Get(id));
  }
}

RecoveryReport RecoveryChecker::Check(const CrashImage& image) {
  RecoveryReport report;
  report.crash_ns = image.crash_ns;
  const size_t heap_bytes = heap_->heap_arena_bytes();
  const size_t region_bytes = config_.region_bytes;

  if (image.bytes != heap_bytes + heap_->commit_area_bytes()) {
    report.outcome = RecoveryReport::Outcome::kCorrupt;
    report.detail = Format("crash image covers %llu bytes but the configured heap needs %llu",
                           image.bytes, heap_bytes + heap_->commit_area_bytes());
    return report;
  }

  // --- 1. Parse both record slots and classify torn ones. ---
  SlotView slots[2];
  for (uint64_t s = 0; s < 2; ++s) {
    SlotView& slot = slots[s];
    const uint8_t* record = image.image.data() + heap_bytes + layout_.record_offset(s);
    uint64_t seal = 0;
    std::memcpy(&seal, record + layout_.record_slot_bytes - 8, sizeof(seal));
    std::memcpy(&slot.header, record, sizeof(CommitHeader));
    if (seal == 0) {
      slot.classification = "seal cleared: this slot's commit was in flight at the crash";
      continue;
    }
    if (AllPoison(record + layout_.record_slot_bytes - 8, 8)) {
      slot.classification = "slot never sealed before the crash";
      continue;
    }
    if (slot.header.magic != kCommitMagic || seal != SealValue(slot.header.epoch) ||
        slot.header.epoch % 2 != s) {
      slot.classification = Format("torn slot: seal %llx does not match the slot header", seal);
      continue;
    }
    slot.sealed = true;
    const size_t payload_bytes = sizeof(CommitHeader) +
                                 slot.header.region_count * sizeof(CommitRegionEntry) +
                                 slot.header.root_count * sizeof(uint64_t);
    if (slot.header.region_count > config_.heap_regions ||
        payload_bytes + 8 > layout_.record_slot_bytes ||
        slot.header.redo_entry_count * sizeof(RedoEntry) > layout_.redo_slot_bytes) {
      slot.classification = Format("sealed slot epoch %llu has impossible counts", slot.header.epoch);
      continue;
    }
    slot.entries = record + sizeof(CommitHeader);
    slot.roots = slot.entries + slot.header.region_count * sizeof(CommitRegionEntry);
    slot.redo = image.image.data() + heap_bytes + layout_.redo_offset(slot.header.epoch);
    if (Fnv1a(slot.entries, payload_bytes - sizeof(CommitHeader)) !=
        slot.header.payload_checksum) {
      slot.classification = Format("sealed slot epoch %llu has a payload checksum mismatch",
                                   slot.header.epoch);
      continue;
    }
    if (Fnv1a(slot.redo, slot.header.redo_entry_count * sizeof(RedoEntry)) !=
        slot.header.redo_checksum) {
      slot.classification =
          Format("sealed slot epoch %llu has a torn redo log", slot.header.epoch);
      continue;
    }
    slot.valid = true;
  }

  // The newest sealed slot is the recovery point. The protocol never touches
  // the previous epoch's slot while sealing the next, so a sealed-but-invalid
  // newest slot is a protocol violation, not a fallback case.
  const SlotView* chosen = nullptr;
  for (const SlotView& slot : slots) {
    if (slot.sealed && (chosen == nullptr || slot.header.epoch > chosen->header.epoch)) {
      chosen = &slot;
    }
  }
  if (chosen == nullptr) {
    report.outcome = RecoveryReport::Outcome::kNoCommittedState;
    report.detail = "no sealed commit: slot A: " + slots[0].classification +
                    "; slot B: " + slots[1].classification;
    return report;
  }
  if (!chosen->valid) {
    report.outcome = RecoveryReport::Outcome::kCorrupt;
    report.detail = chosen->classification;
    return report;
  }
  report.epoch = chosen->header.epoch;

  // --- 2. Restore the committed regions into a fresh heap. ---
  const Address new_base = heap_->heap_base();
  std::unordered_set<uint32_t> restored;
  for (uint64_t i = 0; i < chosen->header.region_count; ++i) {
    CommitRegionEntry e;
    std::memcpy(&e, chosen->entries + i * sizeof(CommitRegionEntry), sizeof(e));
    const RegionType type = static_cast<RegionType>(e.type);
    if (e.index >= config_.heap_regions || e.used_bytes > region_bytes ||
        (type != RegionType::kSurvivor && type != RegionType::kOld &&
         type != RegionType::kHumongous) ||
        !restored.insert(e.index).second) {
      report.outcome = RecoveryReport::Outcome::kCorrupt;
      report.detail = Format("commit region entry %llu is invalid (index %llu)", i, e.index);
      return report;
    }
    const uint64_t offset = uint64_t{e.index} * region_bytes;
    // Every line of a committed region's content must have been fenced before
    // the seal — a non-durable line here means the commit protocol lied.
    for (uint64_t line = offset; line < offset + e.used_bytes; line += 64) {
      if (!image.LineDurable(line)) {
        report.outcome = RecoveryReport::Outcome::kCorrupt;
        report.detail =
            Format("committed region %llu has non-durable content at arena offset %llu",
                   e.index, line);
        return report;
      }
    }
    heap_->RestoreRegion(e.index, type, e.used_bytes, e.gc_epoch);
    std::memcpy(reinterpret_cast<void*>(new_base + offset), image.image.data() + offset,
                e.used_bytes);
    ++report.regions_restored;
  }

  // --- 3. Replay the chosen epoch's content redo log (idempotent). ---
  for (uint64_t i = 0; i < chosen->header.redo_entry_count; ++i) {
    RedoEntry e;
    std::memcpy(&e, chosen->redo + i * sizeof(RedoEntry), sizeof(e));
    const uint64_t region_index = e.arena_offset / region_bytes;
    if (e.arena_offset % 64 != 0 || e.arena_offset >= heap_bytes ||
        restored.count(static_cast<uint32_t>(region_index)) == 0) {
      report.outcome = RecoveryReport::Outcome::kCorrupt;
      report.detail = Format("redo entry %llu targets arena offset %llu outside the commit",
                             i, e.arena_offset);
      return report;
    }
    std::memcpy(reinterpret_cast<void*>(new_base + e.arena_offset), e.content,
                sizeof(e.content));
    ++report.redo_entries_applied;
  }

  // --- 4. Rebase references and defensively parse every restored region
  // before handing the heap to the CHECK-happy verifier. ---
  const KlassTable& klasses = heap_->klasses();
  bool parse_ok = true;
  heap_->ForEachRegion([&](Region* r) {
    if (!parse_ok || r->type() == RegionType::kFree || r->type() == RegionType::kWriteCache) {
      return;
    }
    Address cursor = r->bottom();
    const Address top = r->top();
    while (cursor < top) {
      if (cursor + obj::kHeaderBytes > top) {
        report.detail = Format("truncated object header at arena offset %llu", cursor - new_base);
        parse_ok = false;
        return;
      }
      if (obj::IsForwarded(obj::LoadMark(cursor))) {
        report.detail =
            Format("forwarding pointer survived the commit at arena offset %llu", cursor - new_base);
        parse_ok = false;
        return;
      }
      const KlassId kid = obj::KlassIdOf(cursor);
      if (!klasses.IsValid(kid)) {
        report.detail = Format("invalid klass id %llu at arena offset %llu", kid, cursor - new_base);
        parse_ok = false;
        return;
      }
      const Klass& klass = klasses.Get(kid);
      const uint64_t len = klass.kind == KlassKind::kRegular ? 0 : obj::ArrayLength(cursor);
      const size_t size = obj::SizeOf(klass, len);
      if (size < obj::kHeaderBytes || cursor + size > top) {
        report.detail = Format("object of size %llu overruns region top at arena offset %llu",
                               size, cursor - new_base);
        parse_ok = false;
        return;
      }
      const size_t nslots = obj::RefSlotCount(cursor, klass);
      for (size_t s = 0; s < nslots; ++s) {
        const Address slot = obj::RefSlot(cursor, klass, s);
        const Address value = obj::LoadRef(slot);
        if (value == kNullAddress) {
          continue;
        }
        if (value < image.base || value >= image.base + heap_bytes) {
          report.detail = Format("reference outside the crashed heap arena at arena offset %llu",
                                 slot - new_base);
          parse_ok = false;
          return;
        }
        obj::StoreRef(slot, new_base + (value - image.base));
      }
      cursor += size;
      ++report.objects_parsed;
    }
    if (cursor != top) {
      report.detail =
          Format("region %llu does not parse exactly to its committed top", r->index());
      parse_ok = false;
    }
  });
  if (!parse_ok) {
    report.outcome = RecoveryReport::Outcome::kCorrupt;
    return report;
  }

  // --- 5. Roots, rebased the same way. ---
  roots_.clear();
  for (uint64_t i = 0; i < chosen->header.root_count; ++i) {
    uint64_t offset = 0;
    std::memcpy(&offset, chosen->roots + i * sizeof(uint64_t), sizeof(offset));
    if (offset == kNullRootOffset) {
      roots_.push_back(kNullAddress);
      continue;
    }
    if (offset >= heap_bytes) {
      report.outcome = RecoveryReport::Outcome::kCorrupt;
      report.detail = Format("root %llu points at arena offset %llu outside the heap", i, offset);
      return report;
    }
    roots_.push_back(new_base + offset);
    ++report.roots_restored;
  }

  // --- 6. Full verifier pass: reachability + parsability (remembered sets
  // are DRAM-only and rebuilt by a restarted runtime, so deliberately not
  // checked here). ---
  HeapVerifier verifier(heap_.get());
  std::vector<Address*> root_ptrs;
  root_ptrs.reserve(roots_.size());
  for (Address& r : roots_) {
    if (r != kNullAddress) {
      root_ptrs.push_back(&r);
    }
  }
  std::string error;
  if (!verifier.VerifyParsability(&error) || !verifier.VerifyReachable(root_ptrs, &error)) {
    report.outcome = RecoveryReport::Outcome::kCorrupt;
    report.detail = "verifier rejected the recovered heap: " + error;
    return report;
  }

  report.outcome = RecoveryReport::Outcome::kRecovered;
  return report;
}

}  // namespace nvmgc
