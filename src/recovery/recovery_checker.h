// Heap recovery from a crash image.
//
// The RecoveryChecker plays the role of a restarted runtime: given the bytes
// that survived a simulated power cut (CrashImage), it
//
//   1. parses both commit-record slots, classifies torn slots, and picks the
//      newest sealed commit (the recovery point),
//   2. rebuilds a fresh Heap with the same geometry: restores every committed
//      region, replays the chosen epoch's content redo log, and rebases all
//      reference slots and roots from the crashed arena base to the new one,
//   3. defensively re-parses every restored region (valid klass ids, no
//      leftover forwarding pointers, object sizes that land exactly on the
//      region top) before handing the heap to the CHECK-happy HeapVerifier,
//   4. runs HeapVerifier reachability + parsability over the rebuilt heap.
//
// Recovery is GC-paced: the commit protocol only seals at pause ends, so
// mutator state since the last pause (eden content, handle updates) is lost
// by design and the recovery point is the last sealed epoch. DRAM-only
// structures — the header map, remembered sets, write-cache staging — are
// rebuilt or vacated, not recovered; remset completeness is deliberately NOT
// checked (a restarted runtime re-discovers old->young edges because the
// recovered heap has no young regions at all).
//
// Every failure mode produces a classified RecoveryReport — a torn
// pre-commit state is kNoCommittedState/fallback with a diagnostic, an
// inconsistency that should be impossible under the protocol is kCorrupt
// with a diagnostic. Silent corruption is the one outcome this class exists
// to rule out.

#ifndef NVMGC_SRC_RECOVERY_RECOVERY_CHECKER_H_
#define NVMGC_SRC_RECOVERY_RECOVERY_CHECKER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/gc/gc_options.h"
#include "src/heap/heap.h"
#include "src/nvm/memory_device.h"
#include "src/nvm/persist_ledger.h"
#include "src/recovery/commit_record.h"

namespace nvmgc {

struct RecoveryReport {
  enum class Outcome {
    kRecovered,         // Heap rebuilt and verified from a sealed commit.
    kNoCommittedState,  // Power cut before the first commit ever sealed.
    kCorrupt,           // Protocol violation: sealed state failed validation.
  };

  Outcome outcome = Outcome::kCorrupt;
  uint64_t crash_ns = 0;
  uint64_t epoch = 0;  // The recovered commit's GC epoch (kRecovered only).
  size_t regions_restored = 0;
  size_t objects_parsed = 0;
  size_t redo_entries_applied = 0;
  size_t roots_restored = 0;  // Non-null roots surviving in the commit.
  std::string detail;         // Torn-state classification / corruption diagnostic.

  bool recovered() const { return outcome == Outcome::kRecovered; }
};

const char* RecoveryOutcomeName(RecoveryReport::Outcome outcome);

class RecoveryChecker {
 public:
  // `config` and `durability` must match the crashed Vm's (a real runtime
  // would read them from its own startup flags); `klasses` is the crashed
  // run's klass table, mirrored into the rebuilt heap (klass descriptors
  // live in the runtime binary, not on the heap).
  RecoveryChecker(const HeapConfig& config, const DurabilityOptions& durability,
                  const KlassTable& klasses);

  RecoveryChecker(const RecoveryChecker&) = delete;
  RecoveryChecker& operator=(const RecoveryChecker&) = delete;

  // Attempts recovery from `image`. The rebuilt heap and roots stay
  // accessible through recovered_heap()/recovered_roots() after a
  // kRecovered return.
  RecoveryReport Check(const CrashImage& image);

  Heap* recovered_heap() { return heap_.get(); }
  const std::vector<Address>& recovered_roots() const { return roots_; }

 private:
  struct SlotView;  // One parsed commit-record slot (in .cc).

  HeapConfig config_;
  CommitLayout layout_;
  MemoryDevice nvm_;
  MemoryDevice dram_;
  std::unique_ptr<Heap> heap_;
  std::vector<Address> roots_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_RECOVERY_RECOVERY_CHECKER_H_
