// Fleet-level GC pause coordination hook.
//
// A Vm that shares its heap device with co-tenant Vms (see VmOptions::
// shared_heap_device) can be given a GcCoordinator; the FleetManager
// implements it to stagger co-located write-back storms. The protocol:
//
//   1. Before a pause begins, the Vm asks OnPauseRequested how long to defer.
//      A deferral advances the tenant's *application* clock — the tenant keeps
//      mutating (in simulated time) while a co-tenant's write-back drains —
//      and is bounded by the coordinator's own policy, never refused outright
//      (the heap is exhausted; the pause must eventually run).
//   2. After the pause, OnPauseFinished reports the pause window and how much
//      of it was the write-back phase, which is what the coordinator tracks as
//      the co-tenant "drain window" future requests defer around.
//
// Called on the requesting Vm's control thread. Under the FleetManager's
// cooperative scheduler at most one tenant runs at a time, so implementations
// need no locking of their own.

#ifndef NVMGC_SRC_RUNTIME_GC_COORDINATOR_H_
#define NVMGC_SRC_RUNTIME_GC_COORDINATOR_H_

#include <cstdint>

#include "src/gc/gc_stats.h"

namespace nvmgc {

class GcCoordinator {
 public:
  virtual ~GcCoordinator() = default;

  // Returns the simulated ns `tenant` should defer a pause of `kind`
  // requested at `now_ns` (0 = start immediately).
  virtual uint64_t OnPauseRequested(uint32_t tenant, GcKind kind, uint64_t now_ns) = 0;

  // Reports a finished pause: [start_ns, end_ns), of which the final
  // `writeback_ns` were the write-back drain against the shared device.
  virtual void OnPauseFinished(uint32_t tenant, GcKind kind, uint64_t start_ns,
                               uint64_t end_ns, uint64_t writeback_ns) = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_RUNTIME_GC_COORDINATOR_H_
