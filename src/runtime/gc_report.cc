#include "src/runtime/gc_report.h"

#include <algorithm>

#include "src/runtime/vm.h"
#include "src/util/table_printer.h"

namespace nvmgc {

namespace {

std::string FormatPolicyValue(PolicyKnob knob, uint64_t value) {
  switch (knob) {
    case PolicyKnob::kWriteCacheBytes:
      return FormatSiBytes(value);
    case PolicyKnob::kHeaderMapEnabled:
    case PolicyKnob::kAsyncFlush:
      return value != 0 ? "on" : "off";
    default:
      return std::to_string(value);
  }
}

}  // namespace

std::string FormatGcCycle(size_t id, const GcCycleStats& cycle) {
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "[%8.3fs] GC(%zu) pause %s %.2fms (read %.2fms, write-back %.2fms) "
      "copied %s / %llu objects, promoted %s, refs %llu, steals %llu",
      static_cast<double>(cycle.start_ns) / 1e9, id,
      cycle.is_major != 0 ? "major" : "minor",
      static_cast<double>(cycle.pause_ns) / 1e6,
      static_cast<double>(cycle.read_phase_ns) / 1e6,
      static_cast<double>(cycle.writeback_phase_ns) / 1e6,
      FormatSiBytes(cycle.bytes_copied).c_str(),
      static_cast<unsigned long long>(cycle.objects_copied),
      FormatSiBytes(cycle.bytes_promoted).c_str(),
      static_cast<unsigned long long>(cycle.refs_processed),
      static_cast<unsigned long long>(cycle.steals));
  std::string out = line;
  if (cycle.cache_bytes_staged > 0 || cycle.regions_flushed_sync > 0 ||
      cycle.regions_flushed_async > 0) {
    std::snprintf(line, sizeof(line),
                  " | cache staged %s (overflow %s), flushed %llu sync / %llu async",
                  FormatSiBytes(cycle.cache_bytes_staged).c_str(),
                  FormatSiBytes(cycle.cache_overflow_bytes).c_str(),
                  static_cast<unsigned long long>(cycle.regions_flushed_sync),
                  static_cast<unsigned long long>(cycle.regions_flushed_async));
    out += line;
  }
  if (cycle.header_map_installs > 0 || cycle.header_map_overflows > 0) {
    std::snprintf(line, sizeof(line), " | header map %llu installs, %llu overflows",
                  static_cast<unsigned long long>(cycle.header_map_installs),
                  static_cast<unsigned long long>(cycle.header_map_overflows));
    out += line;
    if (cycle.header_map_fault_probes > 0) {
      std::snprintf(line, sizeof(line), " (%llu probes under fault)",
                    static_cast<unsigned long long>(cycle.header_map_fault_probes));
      out += line;
    }
  }
  if (cycle.cache_fault_denials > 0 || cycle.cache_fallback_workers > 0) {
    std::snprintf(line, sizeof(line),
                  " | cache fallback: %llu workers direct-to-NVM (%s, %llu pair denials)",
                  static_cast<unsigned long long>(cycle.cache_fallback_workers),
                  FormatSiBytes(cycle.cache_fallback_bytes).c_str(),
                  static_cast<unsigned long long>(cycle.cache_fault_denials));
    out += line;
  }
  if (cycle.survivor_overflow_bytes > 0) {
    std::snprintf(line, sizeof(line), " | survivor overflow %s promoted early",
                  FormatSiBytes(cycle.survivor_overflow_bytes).c_str());
    out += line;
  }
  if (cycle.degraded_mode != 0) {
    out += " | DEGRADED: sync flush, cache-line stores";
  }
  return out;
}

void PrintGcLog(Vm* vm, std::FILE* out) {
  const auto& cycles = vm->gc_stats().cycles();
  for (size_t i = 0; i < cycles.size(); ++i) {
    std::fprintf(out, "%s\n", FormatGcCycle(i, cycles[i]).c_str());
  }
}

void PrintGcSummary(Vm* vm, std::FILE* out) {
  const auto& cycles = vm->gc_stats().cycles();
  const GcCycleStats totals = vm->gc_stats().Totals();
  uint64_t max_pause = 0;
  for (const auto& c : cycles) {
    max_pause = std::max(max_pause, c.pause_ns);
  }
  std::fprintf(out, "GC summary (%s collector, %u threads)\n", vm->collector().name(),
               vm->options().gc.gc_threads);
  std::fprintf(out, "  collections:     %zu\n", cycles.size());
  if (totals.is_major > 0) {
    std::fprintf(out, "  major cycles:    %llu (tenure threshold %llu)\n",
                 static_cast<unsigned long long>(totals.is_major),
                 static_cast<unsigned long long>(totals.tenure_threshold_used));
  }
  std::fprintf(out, "  total pause:     %.2f ms\n", static_cast<double>(totals.pause_ns) / 1e6);
  if (!cycles.empty()) {
    std::fprintf(out, "  mean / max:      %.2f / %.2f ms\n",
                 static_cast<double>(totals.pause_ns) / cycles.size() / 1e6,
                 static_cast<double>(max_pause) / 1e6);
  }
  std::fprintf(out, "  copied:          %s in %llu objects\n",
               FormatSiBytes(totals.bytes_copied).c_str(),
               static_cast<unsigned long long>(totals.objects_copied));
  std::fprintf(out, "  promoted:        %s\n", FormatSiBytes(totals.bytes_promoted).c_str());
  if (totals.cache_bytes_staged + totals.cache_overflow_bytes > 0) {
    std::fprintf(out, "  write cache:     %.1f%% of survivor bytes staged in DRAM\n",
                 static_cast<double>(totals.cache_bytes_staged) /
                     static_cast<double>(totals.cache_bytes_staged +
                                         totals.cache_overflow_bytes) *
                     100.0);
  }
  if (totals.header_map_installs + totals.header_map_overflows > 0) {
    std::fprintf(out, "  header map:      %.1f%% of forwardings kept off NVM\n",
                 static_cast<double>(totals.header_map_installs) /
                     static_cast<double>(totals.header_map_installs +
                                         totals.header_map_overflows) *
                     100.0);
  }
  if (totals.prefetches_issued > 0) {
    std::fprintf(out, "  prefetch:        %.1f%% hit rate (%llu issued)\n",
                 static_cast<double>(totals.prefetch_hits) /
                     static_cast<double>(totals.prefetches_issued) * 100.0,
                 static_cast<unsigned long long>(totals.prefetches_issued));
  }
  if (totals.degraded_mode > 0) {
    std::fprintf(out, "  degraded cycles: %llu of %zu (sync flush, cache-line stores)\n",
                 static_cast<unsigned long long>(totals.degraded_mode), cycles.size());
  }
  if (totals.cache_fault_denials > 0 || totals.cache_fallback_workers > 0) {
    std::fprintf(out,
                 "  cache fallback:  %llu worker degradations, %llu pair denials, %s direct\n",
                 static_cast<unsigned long long>(totals.cache_fallback_workers),
                 static_cast<unsigned long long>(totals.cache_fault_denials),
                 FormatSiBytes(totals.cache_fallback_bytes).c_str());
  }
  if (totals.header_map_fault_probes > 0) {
    std::fprintf(out, "  faulted probes:  %llu header-map probes under an active fault\n",
                 static_cast<unsigned long long>(totals.header_map_fault_probes));
  }

  // Percentile digest of every histogram the registry accumulated (pause and
  // phase durations always; workload latencies when the workload records them).
  const auto summaries = vm->metrics().Summaries();
  if (!summaries.empty()) {
    std::fprintf(out, "  percentiles (ms):\n");
    TablePrinter table({"metric", "count", "p50", "p95", "p99", "max", "mean"});
    for (const auto& [name, s] : summaries) {
      if (s.count == 0) {
        continue;
      }
      table.AddRow({name, std::to_string(s.count),
                    FormatDouble(static_cast<double>(s.p50) / 1e6, 3),
                    FormatDouble(static_cast<double>(s.p95) / 1e6, 3),
                    FormatDouble(static_cast<double>(s.p99) / 1e6, 3),
                    FormatDouble(static_cast<double>(s.max) / 1e6, 3),
                    FormatDouble(s.mean / 1e6, 3)});
    }
    table.Print(out);
  }

  // Every adaptive-policy decision, with the controller's stated reason.
  const PolicyEngine* policy = vm->policy();
  if (policy != nullptr) {
    std::fprintf(out,
                 "  policy decisions: %zu over %llu pauses (%llu retreats)\n",
                 policy->decisions().size(),
                 static_cast<unsigned long long>(policy->pauses_seen()),
                 static_cast<unsigned long long>(policy->retreats()));
    if (!policy->decisions().empty()) {
      TablePrinter table({"pause", "knob", "from", "to", "reason"});
      for (const PolicyDecision& d : policy->decisions()) {
        table.AddRow({std::to_string(d.pause_id),
                      std::string(d.retreat ? "!" : "") + PolicyKnobName(d.knob),
                      FormatPolicyValue(d.knob, d.old_value),
                      FormatPolicyValue(d.knob, d.new_value), d.reason});
      }
      table.Print(out);
    }
  }

  // Flight recorder: retention + the last trigger / incident written.
  const FlightRecorder& fr = vm->flight_recorder();
  if (fr.enabled() && fr.pauses_recorded() > 0) {
    std::fprintf(out,
                 "  flight recorder: %llu pauses recorded (%zu retained), %llu incidents\n",
                 static_cast<unsigned long long>(fr.pauses_recorded()), fr.pauses().size(),
                 static_cast<unsigned long long>(fr.incidents()));
    if (fr.last_trigger().kind != FrTrigger::kNone) {
      std::fprintf(out, "    last trigger:  %s at pause %llu (observed %.3f ms)%s%s\n",
                   FrTriggerName(fr.last_trigger().kind),
                   static_cast<unsigned long long>(fr.last_trigger().pause_id),
                   static_cast<double>(fr.last_trigger().observed_ns) / 1e6,
                   fr.last_dump_path().empty() ? "" : " -> ",
                   fr.last_dump_path().c_str());
    }
  }

  // Allocation-site demographics: lifetime, tenuring rate, and NVM write
  // amplification per registered site (plus whatever landed untagged).
  const AllocSiteProfiler& profiler = vm->site_profiler();
  bool any_site = false;
  for (size_t i = 1; i < profiler.sites().size(); ++i) {
    any_site |= profiler.sites()[i].allocated_objects > 0;
  }
  if (any_site) {
    std::fprintf(out, "  allocation sites:\n");
    TablePrinter table({"site", "alloc", "survived", "promoted", "tenure%", "nvm-amp",
                        "dead", "life p50/p99"});
    for (const SiteStats& s : profiler.sites()) {
      if (s.allocated_objects == 0) {
        continue;
      }
      const HistogramSummary life = Summarize(s.lifetime);
      table.AddRow({s.name, FormatSiBytes(s.allocated_bytes),
                    FormatSiBytes(s.survived_bytes), FormatSiBytes(s.promoted_bytes),
                    FormatDouble(s.TenuringRate() * 100.0, 1),
                    FormatDouble(s.NvmWriteAmplification(), 2),
                    FormatSiBytes(s.died_bytes),
                    std::to_string(life.p50) + "/" + std::to_string(life.p99)});
    }
    table.Print(out);
  }
}

}  // namespace nvmgc
