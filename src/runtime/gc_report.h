// Human-readable GC reporting (the -Xlog:gc analog).

#ifndef NVMGC_SRC_RUNTIME_GC_REPORT_H_
#define NVMGC_SRC_RUNTIME_GC_REPORT_H_

#include <cstdio>
#include <string>

#include "src/gc/gc_stats.h"

namespace nvmgc {

class Vm;

// Formats one collection the way HotSpot's unified GC logging does, e.g.
//   [1.203s] GC(7) pause young 4.21ms (read 3.80ms, write-back 0.41ms)
//            copied 1.9 MiB / 24901 objects, promoted 0.1 MiB, ...
std::string FormatGcCycle(size_t id, const GcCycleStats& cycle);

// Prints every recorded cycle of `vm`'s collector to `out`.
void PrintGcLog(Vm* vm, std::FILE* out = stdout);

// Prints an aggregate summary: counts, total/mean/max pause, staging and
// header-map effectiveness, prefetch hit rate.
void PrintGcSummary(Vm* vm, std::FILE* out = stdout);

}  // namespace nvmgc

#endif  // NVMGC_SRC_RUNTIME_GC_REPORT_H_
