// RAII GC-root handle layered over the Vm's raw root-table API.
//
// GlobalRoot is the default way to keep an object alive across collections:
// it registers a root cell on construction and releases it on destruction, so
// a root cannot leak or dangle. It is move-only — moving transfers ownership
// of the underlying cell. The raw NewRoot/SetRoot/GetRoot/ReleaseRoot quartet
// remains the documented low-level escape hatch for code that manages handle
// lifetimes itself (e.g. tables of handles with index-based bookkeeping).

#ifndef NVMGC_SRC_RUNTIME_GLOBAL_ROOT_H_
#define NVMGC_SRC_RUNTIME_GLOBAL_ROOT_H_

#include <utility>

#include "src/runtime/vm.h"
#include "src/util/check.h"

namespace nvmgc {

class GlobalRoot {
 public:
  // An empty (detached) root; Get/Set on it check-fail.
  GlobalRoot() = default;

  explicit GlobalRoot(Vm& vm, Address value = kNullAddress)
      : vm_(&vm), handle_(vm.NewRoot(value)) {}

  GlobalRoot(GlobalRoot&& other) noexcept
      : vm_(std::exchange(other.vm_, nullptr)), handle_(other.handle_) {}

  GlobalRoot& operator=(GlobalRoot&& other) noexcept {
    if (this != &other) {
      Reset();
      vm_ = std::exchange(other.vm_, nullptr);
      handle_ = other.handle_;
    }
    return *this;
  }

  GlobalRoot(const GlobalRoot&) = delete;
  GlobalRoot& operator=(const GlobalRoot&) = delete;

  ~GlobalRoot() { Reset(); }

  Address Get() const {
    NVMGC_CHECK_MSG(vm_ != nullptr, "Get() on a detached GlobalRoot");
    return vm_->GetRoot(handle_);
  }

  void Set(Address value) {
    NVMGC_CHECK_MSG(vm_ != nullptr, "Set() on a detached GlobalRoot");
    vm_->SetRoot(handle_, value);
  }

  bool attached() const { return vm_ != nullptr; }

  // The raw handle (valid only while attached) — for interop with the
  // low-level API.
  RootHandle handle() const {
    NVMGC_CHECK_MSG(vm_ != nullptr, "handle() on a detached GlobalRoot");
    return handle_;
  }

  // Releases the underlying root cell now (idempotent).
  void Reset() {
    if (vm_ != nullptr) {
      vm_->ReleaseRoot(handle_);
      vm_ = nullptr;
    }
  }

 private:
  Vm* vm_ = nullptr;
  RootHandle handle_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_RUNTIME_GLOBAL_ROOT_H_
