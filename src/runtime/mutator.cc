#include "src/runtime/mutator.h"

#include "src/runtime/vm.h"
#include "src/util/check.h"

namespace nvmgc {

namespace {
constexpr uint64_t kAllocCpuNs = 9;    // Bump-pointer + size computation.
constexpr uint64_t kBarrierCpuNs = 3;  // Write-barrier filter.
}  // namespace

Address Mutator::Allocate(const AllocRequest& request) {
  const Klass& klass = vm_->heap_->klasses().Get(request.klass);
  const size_t size = obj::SizeOf(klass, request.array_length);
  const GenerationalOptions& gen = vm_->options().gc.generational;
  if (gen.enabled && size <= vm_->heap_->region_bytes()) {
    const size_t threshold = gen.large_object_threshold != 0
                                 ? gen.large_object_threshold
                                 : vm_->heap_->region_bytes() / 8;
    if (request.large_object || size >= threshold) {
      return AllocateLargeObject(klass, request.array_length, size, request.site);
    }
  }
  if (size > vm_->heap_->region_bytes() / 2) {
    return AllocateHumongous(klass, request.array_length, size, request.site);
  }
  return AllocateSmall(klass, request.array_length, size, request.site);
}

Address Mutator::Initialize(Address addr, const Klass& klass, uint64_t array_length,
                            size_t size, uint32_t site) {
  obj::InitializeObject(addr, klass, array_length, site);
  MemoryDevice* dev = vm_->heap_->DeviceFor(vm_->heap_->RegionFor(addr));
  dev->Access(&vm_->clock_, SequentialWrite(addr, static_cast<uint32_t>(size)));
  vm_->clock_.Advance(kAllocCpuNs);
  return addr;
}

Address Mutator::AllocateSmall(const Klass& klass, uint64_t array_length, size_t size,
                               uint32_t site) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (tlab_ != nullptr) {
      const Address addr = tlab_->Allocate(size);
      if (addr != kNullAddress) {
        vm_->site_profiler_->OnBirth(site, size);
        return Initialize(addr, klass, array_length, size, site);
      }
    }
    tlab_ = vm_->heap_->AllocateRegion(RegionType::kEden);
    if (tlab_ == nullptr) {
      // Eden quota exhausted: young GC, then retry with a fresh TLAB.
      vm_->CollectNow();
      ++gcs_triggered_;
    }
  }
  NVMGC_CHECK(false);  // Heap exhausted: allocation failed even after GC.
}

Address Mutator::AllocateHumongous(const Klass& klass, uint64_t array_length, size_t size,
                                   uint32_t site) {
  NVMGC_CHECK(size <= vm_->heap_->region_bytes());
  for (int attempt = 0; attempt < 2; ++attempt) {
    Region* region = vm_->heap_->AllocateHumongousRegion();
    if (region != nullptr) {
      const Address addr = region->Allocate(size);
      NVMGC_CHECK(addr != kNullAddress);
      vm_->site_profiler_->OnLargeAlloc(site, size);
      return Initialize(addr, klass, array_length, size, site);
    }
    vm_->CollectNow();
    ++gcs_triggered_;
  }
  NVMGC_CHECK(false);  // No region available for a humongous allocation.
}

Address Mutator::AllocateLargeObject(const Klass& klass, uint64_t array_length, size_t size,
                                     uint32_t site) {
  // Large objects are tenured in place: never copied, reclaimed whole-region
  // by the old-region sweep once every object in the region is dead.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Address addr = vm_->heap_->AllocateLarge(size);
    if (addr != kNullAddress) {
      vm_->site_profiler_->OnLargeAlloc(site, size);
      return Initialize(addr, klass, array_length, size, site);
    }
    // Free-list exhausted: CollectNow escalates to a major cycle when the
    // heap is this full, which is what frees old regions.
    vm_->CollectNow();
    ++gcs_triggered_;
  }
  NVMGC_CHECK(false);  // No region available for a large-object allocation.
}

Address Mutator::AllocateRegular(KlassId klass) {
  return Allocate(AllocRequest{klass, 0, false});
}

Address Mutator::AllocateRefArray(KlassId klass, uint64_t length) {
  NVMGC_DCHECK(vm_->heap_->klasses().Get(klass).kind == KlassKind::kRefArray);
  return Allocate(AllocRequest{klass, length, false});
}

Address Mutator::AllocateByteArray(KlassId klass, uint64_t length) {
  NVMGC_DCHECK(vm_->heap_->klasses().Get(klass).kind == KlassKind::kByteArray);
  return Allocate(AllocRequest{klass, length, false});
}

void Mutator::WriteRef(Address object, size_t slot_index, Address value) {
  const Klass& klass = vm_->heap_->klasses().Get(obj::KlassIdOf(object));
  const Address slot = obj::RefSlot(object, klass, slot_index);
  obj::StoreRef(slot, value);
  Region* region = vm_->heap_->RegionFor(object);
  vm_->heap_->DeviceFor(region)->Access(&vm_->clock_, RandomWrite(slot, 8));
  vm_->clock_.Advance(kBarrierCpuNs);
  // Old->young write barrier: record the slot in the target's remembered set.
  if (value != kNullAddress && region->is_old_like()) {
    Region* target = vm_->heap_->RegionFor(value);
    if (target != nullptr && target->is_young()) {
      target->remset().Add(slot);
    }
  }
}

Address Mutator::ReadRef(Address object, size_t slot_index) {
  const Klass& klass = vm_->heap_->klasses().Get(obj::KlassIdOf(object));
  const Address slot = obj::RefSlot(object, klass, slot_index);
  Region* region = vm_->heap_->RegionFor(object);
  vm_->heap_->DeviceFor(region)->Access(&vm_->clock_, RandomRead(slot, 8));
  return obj::LoadRef(slot);
}

void Mutator::ReadPayload(Address object, uint32_t bytes) {
  Region* region = vm_->heap_->RegionFor(object);
  MemoryDevice* dev = vm_->heap_->DeviceFor(region);
  if (bytes <= 64) {
    dev->Access(&vm_->clock_, RandomRead(object, bytes));
  } else {
    dev->Access(&vm_->clock_, SequentialRead(object, bytes));
  }
}

void Mutator::WritePayload(Address object, uint32_t bytes) {
  Region* region = vm_->heap_->RegionFor(object);
  MemoryDevice* dev = vm_->heap_->DeviceFor(region);
  if (bytes <= 64) {
    dev->Access(&vm_->clock_, RandomWrite(object, bytes));
  } else {
    dev->Access(&vm_->clock_, SequentialWrite(object, bytes));
  }
}

}  // namespace nvmgc
