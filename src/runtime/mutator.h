// Mutator: the application-facing allocation and access API.
//
// Allocation is TLAB-style bump allocation in eden regions; exhaustion of the
// eden quota triggers a young GC. Reference writes go through the old->young
// write barrier that feeds the remembered sets. All operations charge
// simulated time on the owning VM's shared application clock.

#ifndef NVMGC_SRC_RUNTIME_MUTATOR_H_
#define NVMGC_SRC_RUNTIME_MUTATOR_H_

#include "src/heap/heap.h"
#include "src/heap/object.h"

namespace nvmgc {

class Vm;

// The one argument every allocation entry point takes. `klass` selects the
// shape (regular / ref-array / byte-array); `array_length` is ignored for
// regular klasses. `large_object` hints that the allocation belongs in the
// large-object space even below the size threshold — meaningful only on a
// generational heap, ignored elsewhere. Size-based routing (humongous, and
// the generational large-object threshold) applies regardless of the hint.
// `site` is an allocation-site tag from Vm::RegisterAllocSite (0 = untagged);
// it is carried in the object's spare mark bits and drives the per-site
// lifetime/tenuring/write-amplification demographics (src/obs/alloc_site.h).
struct AllocRequest {
  KlassId klass = 0;
  uint64_t array_length = 0;
  bool large_object = false;
  uint32_t site = 0;
};

class Mutator {
 public:
  explicit Mutator(Vm* vm) : vm_(vm) {}

  // --- Allocation (may trigger GC; returned address is the new object) ---
  // The generation-aware entry point: routes to the TLAB (eden), the
  // large-object space (generational heaps, at the configured threshold or on
  // request), or a humongous region (above region_bytes / 2).
  Address Allocate(const AllocRequest& request);

  // Deprecated shims, kept for one release: thin wrappers over
  // Allocate(AllocRequest).
  [[deprecated("use Allocate(AllocRequest) instead")]] Address AllocateRegular(KlassId klass);
  [[deprecated("use Allocate(AllocRequest) instead")]] Address AllocateRefArray(
      KlassId klass, uint64_t length);
  [[deprecated("use Allocate(AllocRequest) instead")]] Address AllocateByteArray(
      KlassId klass, uint64_t length);

  // --- Field access (charged; WriteRef applies the write barrier) ---
  void WriteRef(Address object, size_t slot_index, Address value);
  Address ReadRef(Address object, size_t slot_index);
  // Touches `bytes` of the object's primitive payload (capped at its size).
  void ReadPayload(Address object, uint32_t bytes);
  void WritePayload(Address object, uint32_t bytes);

  // Number of GCs this mutator's allocations have triggered.
  uint64_t gcs_triggered() const { return gcs_triggered_; }

  // Called by the VM after every pause: eden regions were reclaimed, so the
  // current TLAB is stale.
  void ResetTlab() { tlab_ = nullptr; }

 private:
  Address AllocateSmall(const Klass& klass, uint64_t array_length, size_t size, uint32_t site);
  Address AllocateHumongous(const Klass& klass, uint64_t array_length, size_t size,
                            uint32_t site);
  Address AllocateLargeObject(const Klass& klass, uint64_t array_length, size_t size,
                              uint32_t site);
  Address Initialize(Address addr, const Klass& klass, uint64_t array_length, size_t size,
                     uint32_t site);

  Vm* vm_;
  Region* tlab_ = nullptr;
  uint64_t gcs_triggered_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_RUNTIME_MUTATOR_H_
