#include "src/runtime/vm.h"

#include "src/gc/old_reclaim.h"
#include "src/runtime/mutator.h"
#include "src/util/check.h"

namespace nvmgc {

Vm::Vm(const VmOptions& options) : options_(options) {
  heap_device_ = std::make_unique<MemoryDevice>(options.heap.heap_device == DeviceKind::kNvm
                                                    ? MakeOptaneProfile()
                                                    : MakeDramProfile());
  dram_device_ = std::make_unique<MemoryDevice>(MakeDramProfile());
  heap_ = std::make_unique<Heap>(options.heap, heap_device_.get(), dram_device_.get());
  pool_ = std::make_unique<GcThreadPool>(options.gc.gc_threads);
  switch (options.gc.collector) {
    case CollectorKind::kG1:
      collector_ = std::make_unique<G1Collector>(heap_.get(), options.gc, pool_.get());
      break;
    case CollectorKind::kParallelScavenge:
      collector_ = std::make_unique<PsCollector>(heap_.get(), options.gc, pool_.get());
      break;
  }
}

Vm::~Vm() = default;

Mutator* Vm::CreateMutator() {
  mutators_.push_back(std::make_unique<Mutator>(this));
  return mutators_.back().get();
}

RootHandle Vm::NewRoot(Address value) {
  if (!free_roots_.empty()) {
    const RootHandle handle = free_roots_.back();
    free_roots_.pop_back();
    root_cells_[handle] = value;
    root_active_[handle] = true;
    return handle;
  }
  root_cells_.push_back(value);
  root_active_.push_back(true);
  return root_cells_.size() - 1;
}

void Vm::SetRoot(RootHandle handle, Address value) {
  NVMGC_CHECK(handle < root_cells_.size() && root_active_[handle]);
  root_cells_[handle] = value;
}

Address Vm::GetRoot(RootHandle handle) const {
  NVMGC_CHECK(handle < root_cells_.size() && root_active_[handle]);
  return root_cells_[handle];
}

void Vm::ReleaseRoot(RootHandle handle) {
  NVMGC_CHECK(handle < root_cells_.size() && root_active_[handle]);
  root_cells_[handle] = kNullAddress;
  root_active_[handle] = false;
  free_roots_.push_back(handle);
}

std::vector<Address*> Vm::RootSlots() {
  std::vector<Address*> slots;
  slots.reserve(root_cells_.size());
  for (size_t i = 0; i < root_cells_.size(); ++i) {
    if (root_active_[i]) {
      slots.push_back(&root_cells_[i]);
    }
  }
  return slots;
}

GcCycleStats Vm::CollectNow() {
  const GcCycleStats cycle = collector_->Collect(RootSlots(), &clock_);
  // Eden was reclaimed: every mutator's TLAB pointer is stale.
  for (auto& mutator : mutators_) {
    mutator->ResetTlab();
  }
  // Concurrent-cycle analog: when the old generation has eaten most of the
  // heap, reclaim wholly-dead old regions. Like G1's concurrent marking it is
  // not charged to the application clock.
  if (heap_->free_region_count() < options_.heap.heap_regions / 4) {
    ReclaimDeadOldRegions(heap_.get(), RootSlots());
    ++old_reclaim_count_;
  }
  return cycle;
}

}  // namespace nvmgc
