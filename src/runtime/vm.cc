#include "src/runtime/vm.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/gc/old_reclaim.h"
#include "src/nvm/fault_injector.h"
#include "src/recovery/commit_record.h"
#include "src/runtime/gc_coordinator.h"
#include "src/runtime/mutator.h"
#include "src/util/check.h"

namespace nvmgc {

Vm::Vm(const VmOptions& options) : options_(options) {
  const std::string gc_error = options.gc.Validate();
  NVMGC_CHECK_MSG(gc_error.empty(), gc_error.c_str());
  if (options_.gc.generational.enabled) {
    // Derive the young-generation geometry before the heap is mapped: the
    // young generation (eden + survivor semispaces) lives in the DRAM cache
    // arena, so dram_cache_regions grows by the young budget and the
    // write-cache staging capacity the config asked for is untouched.
    HeapConfig& h = options_.heap;
    const GenerationalOptions& gen = options_.gc.generational;
    const size_t heap_bytes = static_cast<size_t>(h.region_bytes) * h.heap_regions;
    const size_t young_bytes = gen.young_gen_bytes != 0 ? gen.young_gen_bytes : heap_bytes / 4;
    const uint32_t young_regions = static_cast<uint32_t>(young_bytes / h.region_bytes);
    NVMGC_CHECK_MSG(young_regions >= 2,
                    "generational young generation too small: young_gen_bytes must cover at "
                    "least two regions (one eden + one survivor) — raise "
                    "GenerationalOptions::young_gen_bytes or shrink HeapConfig::region_bytes");
    const uint32_t survivor = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::ceil(young_regions * gen.survivor_fraction)));
    NVMGC_CHECK_MSG(survivor < young_regions,
                    "generational survivor space swallows the whole young generation: lower "
                    "GenerationalOptions::survivor_fraction or raise young_gen_bytes");
    h.generational = true;
    h.survivor_regions = survivor;
    h.eden_regions = young_regions - survivor;
    h.dram_cache_regions += young_regions;
  }
  if (options_.gc.durability.enabled) {
    NVMGC_CHECK_MSG(options_.heap.heap_device == DeviceKind::kNvm,
                    "durability requires NVM-backed tenured regions: set "
                    "HeapConfig::heap_device to DeviceKind::kNvm (a DRAM heap has no "
                    "persistence to model)");
    // Reserve the commit area past the regions before the arena is mapped.
    const CommitLayout layout = ComputeCommitLayout(options_.heap, options_.gc.durability);
    options_.heap.commit_area_bytes =
        std::max(options_.heap.commit_area_bytes, layout.total_bytes());
  }
  if (options_.shared_heap_device != nullptr) {
    NVMGC_CHECK_MSG(options_.shared_heap_device->kind() == options_.heap.heap_device,
                    "shared heap device kind does not match HeapConfig::heap_device");
    NVMGC_CHECK_MSG(options_.tenant_id < MemoryDevice::kMaxTenants,
                    "tenant_id out of range for a shared heap device");
    NVMGC_CHECK_MSG(!options_.gc.durability.enabled,
                    "durability mode is single-tenant: the persist ledger tracks one arena, "
                    "so a Vm on a shared (fleet) heap device cannot enable it");
    heap_device_ = options_.shared_heap_device;
  } else {
    owned_heap_device_ = std::make_unique<MemoryDevice>(
        options_.heap.heap_device == DeviceKind::kNvm ? MakeOptaneProfile()
                                                      : MakeDramProfile());
    heap_device_ = owned_heap_device_.get();
  }
  dram_device_ = std::make_unique<MemoryDevice>(MakeDramProfile());
  heap_ = std::make_unique<Heap>(options_.heap, heap_device_, dram_device_.get());
  if (options_.shared_heap_device != nullptr) {
    // Attribute this Vm's whole arena (regions + commit area) to its tenant:
    // the device resolves contention shares and per-tenant counters by range.
    heap_device_->BindTenantRange(
        static_cast<uint8_t>(options_.tenant_id), heap_->heap_base(),
        heap_->heap_arena_bytes() + heap_->commit_area_bytes());
  }
  if (options_.gc.durability.enabled) {
    // Track persist state for the whole durable range: heap regions plus the
    // commit area (records and redo logs obey the same flush/fence rules).
    const DeviceProfile& profile = heap_device_->profile();
    const DurabilityOptions& d = options_.gc.durability;
    heap_device_->persist().Configure(
        heap_->heap_base(), heap_->heap_arena_bytes() + heap_->commit_area_bytes(),
        d.flush_line_cost_ns >= 0 ? static_cast<uint64_t>(d.flush_line_cost_ns)
                                  : profile.flush_line_ns,
        d.fence_cost_ns >= 0 ? static_cast<uint64_t>(d.fence_cost_ns) : profile.fence_ns);
    heap_->set_durable_quarantine(true);
  }
  pool_ = std::make_unique<GcThreadPool>(options.gc.gc_threads);
  tracer_ = std::make_unique<GcTracer>(options.gc.gc_threads, options.trace_ring_capacity);
  tracer_->set_enabled(options.trace_gc);
  switch (options.gc.collector) {
    case CollectorKind::kG1:
      collector_ = std::make_unique<G1Collector>(heap_.get(), options.gc, pool_.get());
      break;
    case CollectorKind::kParallelScavenge:
      collector_ = std::make_unique<PsCollector>(heap_.get(), options.gc, pool_.get());
      break;
  }
  collector_->set_tracer(tracer_.get());
  timeline_ = std::make_unique<DeviceTimeline>(heap_device_);
  collector_->set_timeline(timeline_.get());
  site_profiler_ = std::make_unique<AllocSiteProfiler>();
  collector_->set_site_profiler(site_profiler_.get());
  if (options_.flight_recorder.tenant.empty() && options_.shared_heap_device != nullptr) {
    // Tag fleet incidents with the tenant so co-tenant dumps into one
    // directory never collide (see FlightRecorder::WriteIncident).
    options_.flight_recorder.tenant =
        options_.tenant_label.empty() ? "t" + std::to_string(options_.tenant_id)
                                      : options_.tenant_label;
  }
  flight_recorder_ = std::make_unique<FlightRecorder>(options_.flight_recorder);
  flight_recorder_->set_site_profiler(site_profiler_.get());
  if (options.gc.adaptive.enabled) {
    const bool gen = options_.gc.generational.enabled;
    policy_ = std::make_unique<PolicyEngine>(
        options_.gc, heap_->heap_arena_bytes(), heap_->cache_arena_bytes(),
        heap_device_->profile(), gen ? heap_->eden_quota() : 0,
        gen ? options_.heap.dram_cache_regions - options_.heap.survivor_regions : 0);
    // The engine's initial tuning resolves the 0 "keep" sentinels to concrete
    // values; install it so the first pause already runs under policy control.
    collector_->ApplyTuning(policy_->tuning());
    policy_->ExportMetrics(&metrics_);
  }
}

Vm::~Vm() = default;

Mutator* Vm::CreateMutator() {
  mutators_.push_back(std::make_unique<Mutator>(this));
  return mutators_.back().get();
}

Address Vm::Allocate(const AllocRequest& request) {
  if (default_mutator_ == nullptr) {
    default_mutator_ = CreateMutator();
  }
  return default_mutator_->Allocate(request);
}

RootHandle Vm::NewRoot(Address value) {
  if (!free_roots_.empty()) {
    const RootHandle handle = free_roots_.back();
    free_roots_.pop_back();
    root_cells_[handle] = value;
    root_active_[handle] = true;
    return handle;
  }
  root_cells_.push_back(value);
  root_active_.push_back(true);
  return root_cells_.size() - 1;
}

void Vm::SetRoot(RootHandle handle, Address value) {
  NVMGC_CHECK(handle < root_cells_.size() && root_active_[handle]);
  root_cells_[handle] = value;
}

Address Vm::GetRoot(RootHandle handle) const {
  NVMGC_CHECK(handle < root_cells_.size() && root_active_[handle]);
  return root_cells_[handle];
}

void Vm::ReleaseRoot(RootHandle handle) {
  NVMGC_CHECK(handle < root_cells_.size() && root_active_[handle]);
  root_cells_[handle] = kNullAddress;
  root_active_[handle] = false;
  free_roots_.push_back(handle);
}

std::vector<Address*> Vm::RootSlots() {
  std::vector<Address*> slots;
  slots.reserve(root_cells_.size());
  for (size_t i = 0; i < root_cells_.size(); ++i) {
    if (root_active_[i]) {
      slots.push_back(&root_cells_[i]);
    }
  }
  return slots;
}

GcCycleStats Vm::CollectNow() {
  GcKind kind = GcKind::kMinor;
  if (options_.gc.generational.enabled &&
      heap_->free_region_count() < options_.heap.heap_regions / 4) {
    // Old-generation pressure: escalate to a major cycle that also evacuates
    // (and thereby compacts) the old regions.
    kind = GcKind::kMajor;
  }
  return CollectNow(kind);
}

GcCycleStats Vm::CollectNow(GcKind kind) {
  if (coordinator_ != nullptr) {
    // Fleet pause scheduling: the coordinator may defer this pause (in
    // simulated time) so it does not land inside a co-tenant's write-back
    // drain. The deferral is application time — the tenant keeps running.
    const uint64_t defer_ns =
        coordinator_->OnPauseRequested(options_.tenant_id, kind, clock_.now_ns());
    if (defer_ns > 0) {
      clock_.Advance(defer_ns);
      metrics_.AddCounter("fleet.pauses_deferred", 1);
      metrics_.AddCounter("fleet.pause_defer_ns", defer_ns);
    }
  }
  const uint64_t pause_start_ns = clock_.now_ns();
  const DeviceCounters dram_before = dram_device_->counters();
  const size_t timeline_from = timeline_->size();
  const uint64_t pause_id = metrics_.pauses().size();
  const GcCycleStats cycle = collector_->Collect(RootSlots(), &clock_, kind);
  const DeviceCounters dram_delta = dram_device_->counters() - dram_before;

  // Per-pause snapshot: the merged cycle under stable dotted names, plus the
  // DRAM-side traffic of the pause (staging writes, header-map probes).
  PauseSnapshot snap = SnapshotFromCycle(pause_id, cycle);
  snap.values["device.dram.read_bytes"] = dram_delta.read_bytes;
  snap.values["device.dram.write_bytes"] = dram_delta.write_bytes;
  // Aggregate + kind-split duration histograms (the minor/major split keeps
  // percentile dashboards comparable across modes; see metrics.h).
  RecordGcCycleHistograms(&metrics_, cycle);
  metrics_.RecordPause(std::move(snap));
  if (options_.gc.generational.enabled) {
    // Per-cycle value, not a sum — a gauge, refreshed every pause.
    metrics_.SetGauge("gen.tenure_threshold", cycle.tenure_threshold_used);
    metrics_.SetGauge("gen.eden_quota_regions", heap_->eden_quota());
    metrics_.SetGauge("gen.survivor_regions", heap_->config().survivor_regions);
  }
  ExportLifetimeMetrics();

  // Feedback step: turn this pause's signals into the next pause's tuning.
  if (policy_ != nullptr) {
    PolicySignals signals =
        CollectPolicySignals(cycle, collector_->stats().gc_count(), timeline_.get());
    // Fleet stall accrued since the previous pause, over the application
    // interval it accrued in (stalls advance the clock, so they are part of
    // the interval by construction).
    signals.fleet_stall_ns = fleet_stall_accum_ - fleet_stall_seen_;
    signals.fleet_interval_ns =
        pause_start_ns > last_pause_end_ns_ ? pause_start_ns - last_pause_end_ns_ : 0;
    fleet_stall_seen_ = fleet_stall_accum_;
    const size_t made = policy_->OnPauseEnd(signals);
    metrics_.AddCounter("policy.decisions", made);
    policy_->ExportMetrics(&metrics_);
    if (tracer_->enabled()) {
      tracer_->BindThread(tracer_->control_tid());
      policy_->EmitTraceCounters(tracer_.get(), clock_.now_ns());
    }
    collector_->ApplyTuning(policy_->tuning());
  }

  // Flight recorder: retain this pause's full context (after the policy step,
  // so the record carries the decisions this pause produced) and let the
  // anomaly triggers auto-dump an incident. Host-side only — charges zero
  // simulated time.
  if (flight_recorder_->enabled()) {
    FlightPauseRecord record;
    record.pause_id = pause_id;
    record.kind = kind;
    record.degraded = cycle.degraded_mode != 0;
    record.stats = cycle;
    record.dram_read_bytes = dram_delta.read_bytes;
    record.dram_write_bytes = dram_delta.write_bytes;
    if (policy_ != nullptr) {
      record.retreat = policy_->AnyRetreatSince(policy_decisions_seen_);
      record.decisions = policy_->DecisionsSince(policy_decisions_seen_);
      policy_decisions_seen_ = policy_->decisions().size();
    }
    const std::vector<TimelineSample>& samples = timeline_->samples();
    record.timeline.assign(samples.begin() + std::min(timeline_from, samples.size()),
                           samples.end());
    record.sites = site_profiler_->last_cycle();
    const FrTrigger fired = flight_recorder_->RecordPause(std::move(record));
    metrics_.AddCounter("fr.pauses_recorded", 1);
    if (fired != FrTrigger::kNone) {
      metrics_.AddCounter("fr.triggers", 1);
      metrics_.AddCounter(std::string("fr.trigger.") + FrTriggerName(fired), 1);
    }
    metrics_.SetGauge("fr.incidents", flight_recorder_->incidents());
  }

  if (coordinator_ != nullptr) {
    coordinator_->OnPauseFinished(options_.tenant_id, kind, pause_start_ns, clock_.now_ns(),
                                  cycle.writeback_phase_ns);
  }
  last_pause_end_ns_ = clock_.now_ns();

  // Eden was reclaimed: every mutator's TLAB pointer is stale.
  for (auto& mutator : mutators_) {
    mutator->ResetTlab();
  }
  // Concurrent-cycle analog: when the old generation has eaten most of the
  // heap, reclaim wholly-dead old regions. Like G1's concurrent marking it is
  // not charged to the application clock.
  if (heap_->free_region_count() < options_.heap.heap_regions / 4) {
    ReclaimDeadOldRegions(heap_.get(), RootSlots());
    ++old_reclaim_count_;
  }
  return cycle;
}

std::string Vm::DumpFlightRecord(const std::string& dir) {
  const std::string path = flight_recorder_->Dump(FrTrigger::kExplicit, dir);
  if (!path.empty()) {
    metrics_.SetGauge("fr.incidents", flight_recorder_->incidents());
  }
  return path;
}

void Vm::ExportLifetimeMetrics() {
  heap_device_->ExportMetrics(&metrics_, "device.heap");
  dram_device_->ExportMetrics(&metrics_, "device.dram");
  pool_->ExportMetrics(&metrics_);
  if (collector_->write_cache() != nullptr) {
    collector_->write_cache()->ExportMetrics(&metrics_);
  }
  if (collector_->header_map() != nullptr) {
    collector_->header_map()->ExportMetrics(&metrics_);
  }
  FaultInjector* injector = heap_device_->fault_injector();
  if (injector != nullptr) {
    injector->ExportMetrics(&metrics_, "fault.heap");
  }
  FaultInjector* dram_injector = dram_device_->fault_injector();
  if (dram_injector != nullptr) {
    dram_injector->ExportMetrics(&metrics_, dram_injector == injector ? "fault.heap"
                                                                      : "fault.dram");
  }
}

}  // namespace nvmgc
