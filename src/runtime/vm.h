// The virtual machine facade: devices + heap + collector + mutators + roots.
//
// A Vm is the analog of one JVM process: it owns the simulated DRAM/NVM
// devices, the region heap, the GC thread pool and collector, the root-handle
// table, and the single simulated application clock that all mutators share.
// Workloads allocate through Mutator and read time through now_ns(); every
// reported number (GC pause, application time, request latency) is simulated.

#ifndef NVMGC_SRC_RUNTIME_VM_H_
#define NVMGC_SRC_RUNTIME_VM_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/gc/copy_collector.h"
#include "src/gc/gc_options.h"
#include "src/gc/gc_thread_pool.h"
#include "src/heap/heap.h"
#include "src/nvm/device_profile.h"
#include "src/nvm/memory_device.h"
#include "src/nvm/sim_clock.h"
#include "src/obs/alloc_site.h"
#include "src/obs/device_timeline.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/policy/policy_engine.h"

namespace nvmgc {

class GcCoordinator;
class Mutator;
struct AllocRequest;

struct VmOptions {
  // Heap geometry. With gc.generational.enabled the Vm derives the young-
  // generation split before constructing the heap: eden_regions and the
  // survivor quota come from GenerationalOptions, and dram_cache_regions
  // grows by the young budget so write-cache staging capacity is preserved.
  HeapConfig heap;
  GcOptions gc;
  // Observability: record GC phase spans into the tracer (off by default —
  // metrics are always on, tracing costs a ring-buffer write per span).
  bool trace_gc = false;
  // Events retained per logical GC thread when tracing.
  size_t trace_ring_capacity = 4096;
  // GC flight recorder (always-on by default; see src/obs/flight_recorder.h).
  // Set flight_recorder.dump_dir to enable anomaly-triggered incident dumps.
  FlightRecorderOptions flight_recorder;

  // --- Multi-tenant fleet mode (see src/fleet/fleet_manager.h) ---
  // When set, the Vm runs against this externally owned heap device instead
  // of creating a private one, and binds its heap arena to `tenant_id` on it
  // so the device attributes traffic and contention per tenant. The device
  // must outlive the Vm and match heap.heap_device's kind. Durability mode is
  // single-tenant (the persist ledger tracks one arena) and is rejected in
  // combination with a shared device.
  MemoryDevice* shared_heap_device = nullptr;
  // Tenant identity on the shared device: id < MemoryDevice::kMaxTenants,
  // label used for traces and flight-recorder incident names.
  uint32_t tenant_id = 0;
  std::string tenant_label;
};

// A stable index into the VM's root table.
using RootHandle = size_t;

class Vm {
 public:
  explicit Vm(const VmOptions& options);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // Mutator lifecycle. Mutators are owned by the Vm.
  Mutator* CreateMutator();

  // Generation-aware allocation through the Vm's internal mutator (created on
  // first use). Convenient for single-threaded drivers; workloads that model
  // several application threads should create explicit Mutators.
  Address Allocate(const AllocRequest& request);

  // --- GC roots (the analog of thread stacks / globals) ---
  RootHandle NewRoot(Address value = kNullAddress);
  void SetRoot(RootHandle handle, Address value);
  Address GetRoot(RootHandle handle) const;
  void ReleaseRoot(RootHandle handle);
  std::vector<Address*> RootSlots();

  // Triggers a stop-the-world collection immediately. The no-argument form
  // picks the kind: minor by default, escalated to major on a generational
  // heap once free regions fall below a quarter of the heap. When the heap is
  // still running low afterwards, a concurrent-cycle analog reclaims
  // wholly-dead old (and large-object) regions (see src/gc/old_reclaim.h).
  GcCycleStats CollectNow();
  GcCycleStats CollectNow(GcKind kind);

  uint64_t old_reclaim_count() const { return old_reclaim_count_; }

  // Fleet pause coordination: when set, CollectNow consults the coordinator
  // before pausing (it may defer the pause in simulated time) and reports
  // every finished pause. The coordinator must outlive the Vm; pass nullptr
  // to detach.
  void set_gc_coordinator(GcCoordinator* coordinator) { coordinator_ = coordinator; }
  uint32_t tenant_id() const { return options_.tenant_id; }
  // Fleet bandwidth arbitration: records `ns` of simulated stall the arbiter
  // injected into this tenant. The next pause's PolicySignals carry the
  // accumulated stall (as a fraction of the inter-pause interval), letting
  // the adaptive policy engine shed GC threads while the tenant is throttled.
  void NoteFleetStall(uint64_t ns) { fleet_stall_accum_ += ns; }
  uint64_t fleet_stall_ns() const { return fleet_stall_accum_; }

  // --- Accessors ---
  Heap& heap() { return *heap_; }
  CopyCollector& collector() { return *collector_; }
  const GcStats& gc_stats() const { return collector_->stats(); }
  MemoryDevice& heap_device() { return *heap_device_; }
  MemoryDevice& dram_device() { return *dram_device_; }
  SimClock& clock() { return clock_; }
  const VmOptions& options() const { return options_; }

  // --- Observability ---
  // The metrics registry holds a per-pause snapshot and lifetime aggregates
  // for every collection this Vm ran; lifetime device/cache/header-map/fault
  // gauges are refreshed at each pause boundary (see src/obs/metrics.h).
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  // The tracer records phase spans when options().trace_gc is set.
  GcTracer& tracer() { return *tracer_; }
  const GcTracer& tracer() const { return *tracer_; }
  // The heap device's per-pause bandwidth timeline (always sampled; a pause
  // adds a handful of 150 us samples, so the cost is negligible).
  DeviceTimeline& timeline() { return *timeline_; }
  const DeviceTimeline& timeline() const { return *timeline_; }
  // The adaptive policy engine, or nullptr when options().gc.adaptive.enabled
  // is false. When present, every CollectNow() feeds it the pause's signals
  // and applies the retuned GcTuning before the next pause.
  PolicyEngine* policy() { return policy_.get(); }
  const PolicyEngine* policy() const { return policy_.get(); }
  // The allocation-site profiler (always on). Register sites here and pass
  // the id in AllocRequest::site to get per-site lifetime demographics.
  AllocSiteProfiler& site_profiler() { return *site_profiler_; }
  const AllocSiteProfiler& site_profiler() const { return *site_profiler_; }
  // Shorthand for site_profiler().RegisterSite().
  AllocSiteId RegisterAllocSite(std::string_view name) {
    return site_profiler_->RegisterSite(name);
  }
  // The GC flight recorder (always on unless options disabled it).
  FlightRecorder& flight_recorder() { return *flight_recorder_; }
  const FlightRecorder& flight_recorder() const { return *flight_recorder_; }
  // Explicitly dumps the retained flight record as an incident file. `dir`
  // overrides options().flight_recorder.dump_dir when non-empty. Returns the
  // incident path, or "" when nothing was recorded / no directory is known.
  std::string DumpFlightRecord(const std::string& dir = "");

  uint64_t now_ns() const { return clock_.now_ns(); }
  // Application time excluding GC pauses.
  uint64_t app_time_ns() const { return clock_.now_ns() - collector_->stats().total_pause_ns(); }
  uint64_t gc_time_ns() const { return collector_->stats().total_pause_ns(); }
  size_t gc_count() const { return collector_->stats().gc_count(); }

 private:
  friend class Mutator;

  // Refreshes lifetime gauges (device ledgers, cache occupancy, header-map
  // and fault-injector counters) in the metrics registry.
  void ExportLifetimeMetrics();

  VmOptions options_;
  // Owned when options_.shared_heap_device is null; heap_device_ always
  // points at the device in use (owned or shared).
  std::unique_ptr<MemoryDevice> owned_heap_device_;
  MemoryDevice* heap_device_ = nullptr;
  std::unique_ptr<MemoryDevice> dram_device_;
  std::unique_ptr<Heap> heap_;
  std::unique_ptr<GcThreadPool> pool_;
  std::unique_ptr<CopyCollector> collector_;
  std::unique_ptr<GcTracer> tracer_;
  std::unique_ptr<DeviceTimeline> timeline_;
  std::unique_ptr<PolicyEngine> policy_;
  std::unique_ptr<AllocSiteProfiler> site_profiler_;
  std::unique_ptr<FlightRecorder> flight_recorder_;
  MetricsRegistry metrics_;
  SimClock clock_;

  // Policy decisions already handed to the flight recorder (index into
  // policy_->decisions()), so each pause record carries only its own.
  size_t policy_decisions_seen_ = 0;
  GcCoordinator* coordinator_ = nullptr;
  // Fleet-arbiter stall bookkeeping for PolicySignals (see NoteFleetStall).
  uint64_t fleet_stall_accum_ = 0;
  uint64_t fleet_stall_seen_ = 0;
  uint64_t last_pause_end_ns_ = 0;
  uint64_t old_reclaim_count_ = 0;
  Mutator* default_mutator_ = nullptr;  // Lazily created by Allocate().
  std::deque<Address> root_cells_;
  std::vector<RootHandle> free_roots_;
  std::vector<bool> root_active_;

  std::vector<std::unique_ptr<Mutator>> mutators_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_RUNTIME_VM_H_
