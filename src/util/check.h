// Assertion macros for invariant checking.
//
// NVMGC_CHECK is always on (even in release builds): a managed heap that has
// lost an invariant must fail fast rather than silently corrupt object graphs.
// NVMGC_DCHECK compiles away in NDEBUG builds and is meant for hot paths.

#ifndef NVMGC_SRC_UTIL_CHECK_H_
#define NVMGC_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace nvmgc {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "NVMGC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace nvmgc

#define NVMGC_CHECK(expr)                               \
  do {                                                  \
    if (!(expr)) {                                      \
      ::nvmgc::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                   \
  } while (0)

#ifdef NDEBUG
#define NVMGC_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define NVMGC_DCHECK(expr) NVMGC_CHECK(expr)
#endif

#endif  // NVMGC_SRC_UTIL_CHECK_H_
