// Assertion macros for invariant checking.
//
// NVMGC_CHECK is always on (even in release builds): a managed heap that has
// lost an invariant must fail fast rather than silently corrupt object graphs.
// NVMGC_DCHECK compiles away in NDEBUG builds and is meant for hot paths.
// NVMGC_CHECK_MSG attaches a context string to the failure report.
//
// The failure path writes one self-contained line — file:line, the failed
// expression, and any message — to stderr in a single write (so concurrent GC
// workers cannot interleave fragments), flushes, and aborts.

#ifndef NVMGC_SRC_UTIL_CHECK_H_
#define NVMGC_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace nvmgc {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const char* message = nullptr) {
  char buf[512];
  const int n =
      message != nullptr
          ? std::snprintf(buf, sizeof(buf), "NVMGC_CHECK failed at %s:%d: %s: %s\n", file,
                          line, expr, message)
          : std::snprintf(buf, sizeof(buf), "NVMGC_CHECK failed at %s:%d: %s\n", file, line,
                          expr);
  if (n > 0) {
    const size_t len = static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n)
                                                            : sizeof(buf) - 1;
    std::fwrite(buf, 1, len, stderr);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace nvmgc

#define NVMGC_CHECK(expr)                               \
  do {                                                  \
    if (!(expr)) {                                      \
      ::nvmgc::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                   \
  } while (0)

#define NVMGC_CHECK_MSG(expr, msg)                            \
  do {                                                        \
    if (!(expr)) {                                            \
      ::nvmgc::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                         \
  } while (0)

#ifdef NDEBUG
#define NVMGC_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define NVMGC_DCHECK(expr) NVMGC_CHECK(expr)
#endif

#endif  // NVMGC_SRC_UTIL_CHECK_H_
