#include "src/util/histogram.h"

#include <bit>

#include "src/util/check.h"

namespace nvmgc {

Histogram::Histogram() : buckets_(64 * kSubBuckets, 0) {}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int exponent = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>(value >> exponent) & (kSubBuckets - 1);
  return (exponent + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(int index) {
  // Inverse of BucketIndex: index = (exponent + 1) * kSubBuckets + sub for
  // values >= kSubBuckets, and index == value below that.
  const int stored = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (stored == 0) {
    return static_cast<uint64_t>(sub);
  }
  const int exponent = stored - 1;
  // The bucket covers [sub << exponent, ((sub + 1) << exponent) - 1].
  return (static_cast<uint64_t>(sub + 1) << exponent) - 1;
}

void Histogram::Record(uint64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  const int idx = BucketIndex(value);
  NVMGC_DCHECK(idx >= 0 && idx < static_cast<int>(buckets_.size()));
  buckets_[idx] += count;
  count_ += count;
  sum_ += value * count;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void Histogram::Merge(const Histogram& other) {
  NVMGC_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

uint64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double percentile) const {
  if (count_ == 0) {
    return 0;
  }
  if (percentile <= 0.0) {
    return min();
  }
  const uint64_t target =
      static_cast<uint64_t>(percentile / 100.0 * static_cast<double>(count_) + 0.5);
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target && buckets_[i] > 0) {
      const uint64_t bound = BucketUpperBound(static_cast<int>(i));
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

}  // namespace nvmgc
