// Log-bucketed histogram for latency percentiles (HdrHistogram-style, simplified).

#ifndef NVMGC_SRC_UTIL_HISTOGRAM_H_
#define NVMGC_SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace nvmgc {

// Records non-negative 64-bit values (typically nanoseconds) with ~3% relative
// error per bucket, supporting percentile queries. Not thread-safe; each thread
// records into its own histogram and histograms are merged afterwards.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void RecordMany(uint64_t value, uint64_t count);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const;
  uint64_t max() const { return max_; }
  double Mean() const;

  // percentile in [0, 100]; returns an upper bound of the bucket containing it.
  uint64_t Percentile(double percentile) const;

 private:
  // Buckets: 64 exponents x 16 linear sub-buckets.
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_UTIL_HISTOGRAM_H_
