#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace nvmgc {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::NextBelow(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Multiply-shift reduction; bias is negligible for our bounds (< 2^48).
  return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
}

uint64_t Random::NextInRange(uint64_t lo, uint64_t hi) {
  NVMGC_DCHECK(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Random::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Random::NextBool(double probability) { return NextDouble() < probability; }

uint64_t Random::NextGeometric(double success_probability) {
  if (success_probability >= 1.0) {
    return 0;
  }
  if (success_probability <= 0.0) {
    return 0;  // Degenerate; callers must not depend on an infinite tail.
  }
  const double u = NextDouble();
  return static_cast<uint64_t>(std::log1p(-u) / std::log1p(-success_probability));
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  // Exact for small n; truncated + tail-integrated for large n so that building
  // a generator over millions of keys stays O(1)-ish.
  constexpr uint64_t kExactTerms = 10000;
  double sum = 0.0;
  const uint64_t exact = n < kExactTerms ? n : kExactTerms;
  for (uint64_t i = 1; i <= exact; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact && theta != 1.0) {
    const double a = static_cast<double>(exact);
    const double b = static_cast<double>(n);
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  NVMGC_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double idx = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(idx);
  if (result >= n_) {
    result = n_ - 1;
  }
  return result;
}

}  // namespace nvmgc
