// Deterministic pseudo-random utilities used by workload generators and tests.
//
// We avoid <random> engines in workload code so that a workload seeded with the
// same value produces the identical object graph on every platform (libstdc++
// distributions are not specified bit-exactly).

#ifndef NVMGC_SRC_UTIL_RANDOM_H_
#define NVMGC_SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace nvmgc {

// xoshiro256** with a splitmix64 seeder; fast, high quality, reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double probability);

  // Approximate geometric: number of failures before first success.
  uint64_t NextGeometric(double success_probability);

 private:
  uint64_t state_[4];
};

// Zipfian generator over [0, n) with exponent theta; used to model skewed
// object popularity (Spark RDD hot keys, Cassandra row popularity).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;

  static double Zeta(uint64_t n, double theta);
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_UTIL_RANDOM_H_
