#include "src/util/table_printer.h"

#include <algorithm>
#include <cinttypes>

#include "src/util/check.h"

namespace nvmgc {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  NVMGC_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%c %-*s", c == 0 ? '|' : ' ', static_cast<int>(widths[c]),
                   row[c].c_str());
      std::fputs(" |", out);
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    std::fprintf(out, "|%s-", c == 0 ? "" : "-");
    for (size_t i = 0; i < widths[c]; ++i) {
      std::fputc('-', out);
    }
    std::fputs("-|", out);
  }
  std::fputc('\n', out);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatSiBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  return buf;
}

std::string FormatMillis(double millis) {
  char buf[64];
  if (millis >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", millis / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ms", millis);
  }
  return buf;
}

}  // namespace nvmgc
