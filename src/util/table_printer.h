// Console table / CSV emission helpers shared by the benchmark harness.

#ifndef NVMGC_SRC_UTIL_TABLE_PRINTER_H_
#define NVMGC_SRC_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace nvmgc {

// Collects rows of string cells and prints them as an aligned ASCII table.
// Benchmarks use this to print paper-style result tables; a CSV sink is also
// provided so series can be re-plotted.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders the table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  // Renders comma-separated rows (header first) to `out`.
  void PrintCsv(std::FILE* out = stdout) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers.
std::string FormatDouble(double value, int decimals = 2);
std::string FormatSiBytes(uint64_t bytes);
std::string FormatMillis(double millis);

}  // namespace nvmgc

#endif  // NVMGC_SRC_UTIL_TABLE_PRINTER_H_
