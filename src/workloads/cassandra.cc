#include "src/workloads/cassandra.h"

#include <algorithm>

namespace nvmgc {

namespace {
// Request-handling CPU cost outside heap accesses: protocol parsing,
// serialization, coordination.
constexpr uint64_t kRequestCpuNs = 3500;
}  // namespace

CassandraService::CassandraService(Vm* vm, const CassandraConfig& config)
    : vm_(vm),
      config_(config),
      mutator_(vm->CreateMutator()),
      rng_(config.seed),
      zipf_(config.rows, config.zipf_theta, config.seed ^ 0x5a5a) {
  KlassTable& klasses = vm->heap().klasses();
  row_klass_ = klasses.RegisterByteArray("cassandra.Row");
  request_klass_ = klasses.RegisterRegular("cassandra.Request", 1, 48);
  table_ = std::make_unique<ManagedTable>(vm, mutator_, config.rows);
  for (uint64_t i = 0; i < config.rows; ++i) {
    table_->Set(i, mutator_->Allocate({row_klass_, config.row_bytes}));
  }
}

void CassandraService::ServeRead(uint64_t row) {
  const Address request = mutator_->Allocate({request_klass_});
  const Address data = table_->Get(row);
  mutator_->WriteRef(request, 0, data);
  mutator_->ReadPayload(data, config_.row_bytes);
  // Response buffer: copy of the row, immediately garbage after the reply.
  const Address response = mutator_->Allocate({row_klass_, config_.row_bytes});
  mutator_->WritePayload(response, config_.row_bytes);
}

void CassandraService::ServeWrite(uint64_t row) {
  const Address request = mutator_->Allocate({request_klass_});
  // Cassandra rows are immutable: a write allocates a replacement row.
  const Address fresh = mutator_->Allocate({row_klass_, config_.row_bytes});
  mutator_->WriteRef(request, 0, fresh);
  mutator_->WritePayload(fresh, config_.row_bytes);
  table_->Set(row, fresh);  // Previous row becomes garbage.
}

LatencyResult CassandraService::RunPhase(uint64_t requests, double offered_kqps,
                                         double write_fraction) {
  Histogram latencies;
  const double interarrival_ns = 1e6 / offered_kqps;  // kQPS -> ns between arrivals.
  const uint64_t phase_start = vm_->now_ns();
  for (uint64_t i = 0; i < requests; ++i) {
    const uint64_t arrival =
        phase_start + static_cast<uint64_t>(static_cast<double>(i) * interarrival_ns);
    // Open loop: the server idles until the arrival; a backlog (clock past the
    // arrival) queues the request and its waiting time counts as latency.
    vm_->clock().SyncForwardTo(arrival);
    const uint64_t row = zipf_.Next();
    if (rng_.NextBool(write_fraction)) {
      ServeWrite(row);
    } else {
      ServeRead(row);
    }
    vm_->clock().Advance(kRequestCpuNs);
    const uint64_t latency_ns = vm_->now_ns() - arrival;
    latencies.Record(latency_ns);
    // Also feed the Vm's registry so the op latencies surface in GcReport's
    // percentile table and in bench JSON histogram digests.
    vm_->metrics().RecordHistogram("cassandra.op_latency_ns", latency_ns);
  }
  LatencyResult result;
  result.offered_kqps = offered_kqps;
  result.requests = requests;
  result.p50_ms = static_cast<double>(latencies.Percentile(50)) / 1e6;
  result.p95_ms = static_cast<double>(latencies.Percentile(95)) / 1e6;
  result.p99_ms = static_cast<double>(latencies.Percentile(99)) / 1e6;
  result.mean_ms = latencies.Mean() / 1e6;
  return result;
}

}  // namespace nvmgc
