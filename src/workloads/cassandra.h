// Cassandra-style key-value service driven by an open-loop load generator
// (the analog of cassandra-stress, Section 5.1 / Figure 8).
//
// The service keeps a resident table of row objects on the managed heap and
// serves read and write requests; every request allocates protocol garbage,
// and writes replace whole rows (Cassandra's immutable-row update path).
// Requests arrive on an open-loop schedule at a configured offered
// throughput, so a GC pause delays every request queued behind it — exactly
// the mechanism behind the paper's tail-latency results.

#ifndef NVMGC_SRC_WORKLOADS_CASSANDRA_H_
#define NVMGC_SRC_WORKLOADS_CASSANDRA_H_

#include <cstdint>
#include <memory>

#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/util/histogram.h"
#include "src/workloads/spark.h"

namespace nvmgc {

struct CassandraConfig {
  uint32_t rows = 16000;
  uint32_t row_bytes = 512;
  double zipf_theta = 0.8;  // Row-popularity skew.
  uint64_t seed = 11;
};

struct LatencyResult {
  double offered_kqps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  uint64_t requests = 0;
};

class CassandraService {
 public:
  CassandraService(Vm* vm, const CassandraConfig& config);

  // Runs one phase of `requests` arrivals at `offered_kqps` thousand requests
  // per simulated second; `write_fraction` selects the mix (cassandra-stress
  // runs a write-only phase then a read-only phase).
  LatencyResult RunPhase(uint64_t requests, double offered_kqps, double write_fraction);

 private:
  void ServeRead(uint64_t row);
  void ServeWrite(uint64_t row);

  Vm* vm_;
  CassandraConfig config_;
  Mutator* mutator_;
  KlassId row_klass_ = 0;
  KlassId request_klass_ = 0;
  std::unique_ptr<ManagedTable> table_;
  Random rng_;
  ZipfGenerator zipf_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_WORKLOADS_CASSANDRA_H_
