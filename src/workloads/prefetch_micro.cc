#include "src/workloads/prefetch_micro.h"

#include <vector>

#include "src/nvm/prefetch_queue.h"
#include "src/nvm/sim_clock.h"
#include "src/util/random.h"

namespace nvmgc {

namespace {
constexpr uint64_t kLoopCpuNs = 10;           // Index fetch, arithmetic, store.
constexpr uint64_t kArrayBytes = 1ULL << 30;  // 1 GiB simulated array.
constexpr uint64_t kElementBytes = 64;
// The microbenchmark's accesses are independent (indices are pre-generated),
// so an out-of-order core keeps several misses in flight; the GC's pointer
// chasing gets no such overlap, which is why the collector models full miss
// latency while this loop divides it by the effective MLP. The updated line
// is dirty in cache and written back off the critical path, so the store
// costs only CPU time at this (unsaturated) intensity.
constexpr double kMemoryLevelParallelism = 4.0;
}  // namespace

PrefetchMicroResult RunPrefetchMicro(DeviceKind device, bool prefetch, uint64_t accesses,
                                     uint32_t prefetch_distance, uint64_t seed) {
  const DeviceProfile profile =
      device == DeviceKind::kNvm ? MakeOptaneProfile() : MakeDramProfile();
  SimClock clock;
  PrefetchQueue queue;
  Random rng(seed);

  const uint64_t elements = kArrayBytes / kElementBytes;
  // Ring of upcoming indices so prefetches can run `prefetch_distance` ahead.
  std::vector<uint64_t> upcoming(prefetch_distance);
  for (auto& idx : upcoming) {
    idx = rng.NextBelow(elements);
  }
  if (prefetch) {
    for (uint64_t idx : upcoming) {
      queue.Prefetch(idx * kElementBytes);
      clock.Advance(1);  // Prefetch instruction issue cost.
    }
  }

  for (uint64_t i = 0; i < accesses; ++i) {
    const uint64_t idx = upcoming[i % prefetch_distance];
    upcoming[i % prefetch_distance] = rng.NextBelow(elements);
    if (prefetch) {
      queue.Prefetch(upcoming[i % prefetch_distance] * kElementBytes);
      clock.Advance(1);
    }
    double latency = static_cast<double>(profile.random_read_latency_ns);
    if (prefetch && queue.Consume(idx * kElementBytes)) {
      latency *= 1.0 - profile.prefetch_hide_fraction;
    }
    clock.Advance(static_cast<uint64_t>(latency / kMemoryLevelParallelism +
                                        profile.sequential_line_ns + 0.5));
    clock.Advance(kLoopCpuNs);
  }

  PrefetchMicroResult result;
  result.seconds = static_cast<double>(clock.now_ns()) / 1e9;
  result.accesses = accesses;
  result.prefetch_hit_rate =
      queue.issued() > 0 ? static_cast<double>(queue.hits()) / static_cast<double>(accesses)
                         : 0.0;
  return result;
}

}  // namespace nvmgc
