// Software-prefetch microbenchmark (the table in Section 4.3 of the paper).
//
// A large array is accessed at pre-generated random indices; each iteration
// reads the element and updates it. Because the indices are known in advance,
// a prefetch can be issued `distance` iterations ahead, hiding the miss
// latency. The paper reports 1.58x improvement on DRAM and 3.05x on NVM for
// 40 million accesses.

#ifndef NVMGC_SRC_WORKLOADS_PREFETCH_MICRO_H_
#define NVMGC_SRC_WORKLOADS_PREFETCH_MICRO_H_

#include <cstdint>

#include "src/nvm/device_profile.h"

namespace nvmgc {

struct PrefetchMicroResult {
  double seconds = 0.0;       // Simulated run time.
  uint64_t accesses = 0;
  double prefetch_hit_rate = 0.0;
};

PrefetchMicroResult RunPrefetchMicro(DeviceKind device, bool prefetch,
                                     uint64_t accesses = 40'000'000,
                                     uint32_t prefetch_distance = 16, uint64_t seed = 3);

}  // namespace nvmgc

#endif  // NVMGC_SRC_WORKLOADS_PREFETCH_MICRO_H_
