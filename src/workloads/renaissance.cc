#include "src/workloads/renaissance.h"

#include "src/util/check.h"

namespace nvmgc {

namespace {

constexpr size_t kMiB = 1024 * 1024;

// Builder with the defaults most profiles share.
WorkloadProfile Base(const char* name, uint64_t seed) {
  WorkloadProfile p;
  p.name = name;
  p.seed = seed;
  p.small_object_fraction = 0.85;
  p.small_ref_fields = 2;
  p.small_payload_bytes = 40;
  p.array_bytes_min = 256;
  p.array_bytes_max = 4096;
  p.ref_array_fraction = 0.2;
  p.survival_fraction = 0.08;
  p.live_window_bytes = 4 * kMiB;
  p.chain_fraction = 0.0;
  p.reads_per_alloc = 0.6;
  p.writes_per_alloc = 0.25;
  p.touch_bytes = 64;
  p.mutator_cache_hit = 0.55;
  p.total_allocation_bytes = 64 * kMiB;
  return p;
}

}  // namespace

std::vector<WorkloadProfile> RenaissanceProfiles() {
  std::vector<WorkloadProfile> v;

  // Actor-based UCT search: few live objects, deeply imbalanced traversal —
  // most GC threads idle while one walks the actor mailbox chain (Fig. 7e).
  {
    WorkloadProfile p = Base("akka-uct", 101);
    p.small_object_fraction = 0.95;
    p.survival_fraction = 0.03;
    p.live_window_bytes = 2 * kMiB;
    p.chain_fraction = 0.55;
    p.total_allocation_bytes = 96 * kMiB;
    p.reads_per_alloc = 0.8;
    v.push_back(p);
  }
  // ALS matrix factorization: large factor arrays, bandwidth-hungry GC but an
  // app phase that does not saturate NVM (Fig. 3).
  {
    WorkloadProfile p = Base("als", 102);
    p.small_object_fraction = 0.45;
    p.array_bytes_min = 512;
    p.array_bytes_max = 8192;
    p.survival_fraction = 0.08;
    p.live_window_bytes = 8 * kMiB;
    p.total_allocation_bytes = 96 * kMiB;
    p.reads_per_alloc = 1.2;
    p.writes_per_alloc = 0.4;
    p.mutator_cache_hit = 0.85;  // Factor blocks stream through cache.
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("chi-square", 103);
    p.small_object_fraction = 0.5;
    p.array_bytes_min = 256;
    p.array_bytes_max = 2048;
    p.survival_fraction = 0.04;
    p.live_window_bytes = 3 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("dec-tree", 104);
    p.small_object_fraction = 0.55;
    p.survival_fraction = 0.06;
    p.live_window_bytes = 6 * kMiB;
    p.total_allocation_bytes = 80 * kMiB;
    v.push_back(p);
  }
  // Scala compiler: pointer-rich small objects.
  {
    WorkloadProfile p = Base("dotty", 105);
    p.small_object_fraction = 0.92;
    p.small_ref_fields = 3;
    p.survival_fraction = 0.05;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("finagle-chirper", 106);
    p.small_object_fraction = 0.92;
    p.survival_fraction = 0.035;
    p.live_window_bytes = 2 * kMiB;
    p.total_allocation_bytes = 72 * kMiB;
    p.reads_per_alloc = 1.0;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("finagle-http", 107);
    p.small_object_fraction = 0.9;
    p.survival_fraction = 0.03;
    p.live_window_bytes = 2 * kMiB;
    p.total_allocation_bytes = 72 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("fj-kmeans", 108);
    p.small_object_fraction = 0.6;
    p.array_bytes_min = 512;
    p.survival_fraction = 0.06;
    p.live_window_bytes = 5 * kMiB;
    p.total_allocation_bytes = 80 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("future-genetic", 109);
    p.survival_fraction = 0.05;
    p.live_window_bytes = 3 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("gauss-mix", 110);
    p.small_object_fraction = 0.5;
    p.array_bytes_min = 1024;
    p.array_bytes_max = 8192;
    p.survival_fraction = 0.07;
    p.live_window_bytes = 6 * kMiB;
    p.total_allocation_bytes = 80 * kMiB;
    v.push_back(p);
  }
  // Logistic regression over cached datasets (also in Fig. 1).
  {
    WorkloadProfile p = Base("log-regression", 111);
    p.small_object_fraction = 0.55;
    p.array_bytes_min = 512;
    p.array_bytes_max = 8192;
    p.survival_fraction = 0.08;
    p.live_window_bytes = 8 * kMiB;
    p.total_allocation_bytes = 96 * kMiB;
    p.reads_per_alloc = 1.5;
    p.mutator_cache_hit = 0.85;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("mnemonics", 112);
    p.small_object_fraction = 0.95;
    p.survival_fraction = 0.04;
    p.live_window_bytes = 2 * kMiB;
    p.total_allocation_bytes = 96 * kMiB;
    v.push_back(p);
  }
  // Recommender with heavy app-side reads but little allocation: GC-light,
  // app time barely changes DRAM->NVM (Fig. 1, Section 2.2).
  {
    WorkloadProfile p = Base("movie-lens", 113);
    p.total_allocation_bytes = 24 * kMiB;
    p.survival_fraction = 0.03;
    p.live_window_bytes = 2 * kMiB;
    p.reads_per_alloc = 2.0;
    p.mutator_cache_hit = 0.96;  // Hot similarity tables stay LLC-resident.
    v.push_back(p);
  }
  // Naive Bayes training: copies many large primitive arrays — sequential GC
  // reads, write-intensive write-back (Fig. 7c/7d).
  {
    WorkloadProfile p = Base("naive-bayes", 114);
    p.small_object_fraction = 0.25;
    p.array_bytes_min = 4096;
    p.array_bytes_max = 16384;
    p.ref_array_fraction = 0.05;
    p.survival_fraction = 0.10;
    p.live_window_bytes = 10 * kMiB;
    p.total_allocation_bytes = 112 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("neo4j-analytics", 115);
    p.small_object_fraction = 0.7;
    p.small_ref_fields = 3;
    p.survival_fraction = 0.08;
    p.live_window_bytes = 8 * kMiB;
    p.total_allocation_bytes = 80 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("par-mnemonics", 116);
    p.small_object_fraction = 0.95;
    p.survival_fraction = 0.04;
    p.live_window_bytes = 2 * kMiB;
    p.total_allocation_bytes = 96 * kMiB;
    v.push_back(p);
  }
  // Tiny live set, infrequent short pauses: one of the three applications
  // that do not benefit from the optimizations (Section 5.2).
  {
    WorkloadProfile p = Base("philosophers", 117);
    p.small_object_fraction = 0.97;
    p.survival_fraction = 0.015;
    p.live_window_bytes = 1 * kMiB;
    p.total_allocation_bytes = 48 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("reactors", 118);
    p.small_object_fraction = 0.93;
    p.survival_fraction = 0.045;
    p.live_window_bytes = 3 * kMiB;
    p.total_allocation_bytes = 96 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("rx-scrabble", 119);
    p.total_allocation_bytes = 16 * kMiB;
    p.survival_fraction = 0.02;
    p.live_window_bytes = 1 * kMiB;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("scala-doku", 120);
    p.small_object_fraction = 0.95;
    p.survival_fraction = 0.025;
    p.live_window_bytes = 1536 * 1024;
    p.total_allocation_bytes = 56 * kMiB;
    v.push_back(p);
  }
  // STM torture test: the GC-intensive Renaissance app whose execution time
  // visibly improves with the optimizations (Section 5.4).
  {
    WorkloadProfile p = Base("scala-stm-bench7", 121);
    p.survival_fraction = 0.10;
    p.live_window_bytes = 8 * kMiB;
    p.total_allocation_bytes = 128 * kMiB;
    p.writes_per_alloc = 0.6;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("scrabble", 122);
    p.total_allocation_bytes = 24 * kMiB;
    p.survival_fraction = 0.03;
    p.live_window_bytes = 1 * kMiB;
    v.push_back(p);
  }
  return v;
}

std::vector<WorkloadProfile> SparkProfiles() {
  std::vector<WorkloadProfile> v;
  // Spark RDD churn: floods of small immutable objects with high per-iteration
  // survival and long traversal chains through dataset lineage.
  {
    WorkloadProfile p = Base("page-rank", 201);
    p.small_object_fraction = 0.9;
    p.small_ref_fields = 2;
    p.survival_fraction = 0.25;
    p.live_window_bytes = 12 * kMiB;
    p.total_allocation_bytes = 160 * kMiB;
    p.reads_per_alloc = 1.5;
    p.writes_per_alloc = 0.5;
    p.mutator_cache_hit = 0.45;  // RDD scans blow past the LLC (Fig. 2b).
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("kmeans", 202);
    p.small_object_fraction = 0.7;
    p.array_bytes_min = 256;
    p.array_bytes_max = 1024;
    p.survival_fraction = 0.20;
    p.live_window_bytes = 10 * kMiB;
    p.total_allocation_bytes = 128 * kMiB;
    p.reads_per_alloc = 1.2;
    p.mutator_cache_hit = 0.50;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("cc", 203);
    p.small_object_fraction = 0.85;
    p.survival_fraction = 0.14;
    p.live_window_bytes = 8 * kMiB;
    p.total_allocation_bytes = 112 * kMiB;
    p.reads_per_alloc = 1.0;
    v.push_back(p);
  }
  {
    WorkloadProfile p = Base("sssp", 204);
    p.small_object_fraction = 0.85;
    p.survival_fraction = 0.16;
    p.live_window_bytes = 9 * kMiB;
    p.total_allocation_bytes = 120 * kMiB;
    p.reads_per_alloc = 1.0;
    v.push_back(p);
  }
  return v;
}

std::vector<WorkloadProfile> AllApplicationProfiles() {
  std::vector<WorkloadProfile> all = RenaissanceProfiles();
  for (auto& p : SparkProfiles()) {
    all.push_back(p);
  }
  return all;
}

WorkloadProfile RenaissanceProfile(const std::string& name) {
  for (const auto& p : AllApplicationProfiles()) {
    if (p.name == name) {
      return p;
    }
  }
  NVMGC_CHECK(false);  // Unknown workload name.
}

}  // namespace nvmgc
