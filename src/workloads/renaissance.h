// Workload profiles modeling the 22 Renaissance 0.10 benchmarks the paper
// evaluates (db-shootout, page-rank and scala-kmeans are excluded, exactly as
// in Section 5.1).
//
// Each profile encodes the GC-relevant behaviour the paper reports for that
// application: allocation volume, object size mix (boxed objects vs primitive
// arrays), survival rate / live-set size, traversal imbalance, and how
// memory-bound the mutator phase is. The per-app observations called out in
// the paper are reflected directly: naive-bayes copies many primitive arrays
// (write-intensive GC, sequential reads), akka-uct has few live objects but a
// deeply imbalanced traversal, movie-lens is GC-light, scala-stm-bench7 is
// GC-intensive, and so on.

#ifndef NVMGC_SRC_WORKLOADS_RENAISSANCE_H_
#define NVMGC_SRC_WORKLOADS_RENAISSANCE_H_

#include <vector>

#include "src/workloads/synthetic_app.h"

namespace nvmgc {

// All 22 evaluated Renaissance profiles, in the paper's figure order.
std::vector<WorkloadProfile> RenaissanceProfiles();

// One profile by name (CHECK-fails on unknown names).
WorkloadProfile RenaissanceProfile(const std::string& name);

// The four Spark applications (page-rank, kmeans, cc, sssp) expressed as
// profiles for sweeps that treat all 26 apps uniformly. The mini-RDD engine
// in spark.h runs the real algorithms; these profiles match their GC-side
// behaviour for large parameter sweeps where running the full algorithm per
// configuration would be wasteful.
std::vector<WorkloadProfile> SparkProfiles();

// Renaissance + Spark, the 26-application set used by Figures 5, 6, 9-13.
std::vector<WorkloadProfile> AllApplicationProfiles();

}  // namespace nvmgc

#endif  // NVMGC_SRC_WORKLOADS_RENAISSANCE_H_
