#include "src/workloads/spark.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>

#include "src/util/check.h"
#include "src/util/random.h"

namespace nvmgc {

namespace {

// Raw (host-side) payload helpers; the simulated charge is issued separately
// through the Mutator API.
double ReadDoubleAt(const KlassTable& klasses, Address object, size_t index) {
  const Klass& k = klasses.Get(obj::KlassIdOf(object));
  double v;
  std::memcpy(&v, reinterpret_cast<const void*>(obj::PayloadOf(object, k) + 8 * index),
              sizeof(v));
  return v;
}

void WriteDoubleAt(const KlassTable& klasses, Address object, size_t index, double v) {
  const Klass& k = klasses.Get(obj::KlassIdOf(object));
  std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(object, k) + 8 * index), &v, sizeof(v));
}

// Shared graph scaffolding for page-rank / cc / sssp.
struct Graph {
  KlassId vertex_klass;     // 2 refs: [0]=adjacency, [1]=value; payload: id.
  KlassId adjacency_klass;  // Ref array of Vertex.
  KlassId value_klass;      // 0 refs, 8B payload (rank/label/distance).
  std::unique_ptr<ManagedTable> vertices;
};

Graph BuildGraph(Vm* vm, Mutator* m, const SparkConfig& config, const char* prefix) {
  Graph g;
  KlassTable& klasses = vm->heap().klasses();
  g.vertex_klass = klasses.RegisterRegular(std::string(prefix) + ".Vertex", 2, 8);
  g.adjacency_klass = klasses.RegisterRefArray(std::string(prefix) + ".Vertex[]");
  g.value_klass = klasses.RegisterRegular(std::string(prefix) + ".Value", 0, 8);
  g.vertices = std::make_unique<ManagedTable>(vm, m, config.vertices);

  for (uint64_t i = 0; i < config.vertices; ++i) {
    const Address v = m->Allocate({g.vertex_klass});
    WriteDoubleAt(klasses, v, 0, static_cast<double>(i));
    g.vertices->Set(i, v);
  }
  // Zipf-skewed adjacency (hot vertices attract edges, as in web graphs).
  ZipfGenerator zipf(config.vertices, 0.75, config.seed);
  Random rng(config.seed ^ 0xabcdef);
  for (uint64_t i = 0; i < config.vertices; ++i) {
    const uint64_t degree = 1 + rng.NextBelow(config.avg_degree * 2);
    const Address adjacency = m->Allocate({g.adjacency_klass, degree});
    for (uint64_t e = 0; e < degree; ++e) {
      m->WriteRef(adjacency, e, g.vertices->Get(zipf.Next()));
    }
    m->WriteRef(g.vertices->Get(i), 0, adjacency);
  }
  return g;
}

// One value-propagation iteration: for every vertex, read neighbors' values,
// combine, and install a freshly allocated value object. This reproduces the
// Spark pattern of immutable per-iteration datasets.
template <typename Combine>
void PropagateIteration(Vm* vm, Mutator* m, Graph* g, Combine combine) {
  const KlassTable& klasses = vm->heap().klasses();
  const uint64_t n = g->vertices->size();
  for (uint64_t i = 0; i < n; ++i) {
    const Address v = g->vertices->Get(i);
    const Address adjacency = m->ReadRef(v, 0);
    // Seed with the vertex's current value (falling back to its id before the
    // first iteration has installed one).
    const Address current = m->ReadRef(v, 1);
    double acc = current != kNullAddress ? ReadDoubleAt(klasses, current, 0)
                                         : ReadDoubleAt(klasses, v, 0);
    if (adjacency != kNullAddress) {
      const Klass& ak = klasses.Get(obj::KlassIdOf(adjacency));
      const uint64_t degree = obj::RefSlotCount(adjacency, ak);
      for (uint64_t e = 0; e < degree; ++e) {
        const Address neighbor = m->ReadRef(adjacency, e);
        const Address value = m->ReadRef(neighbor, 1);
        if (value != kNullAddress) {
          m->ReadPayload(value, 8);
          acc = combine(acc, ReadDoubleAt(klasses, value, 0));
        }
      }
    }
    const Address fresh = m->Allocate({g->value_klass});
    WriteDoubleAt(klasses, fresh, 0, acc);
    m->WritePayload(fresh, 8);
    m->WriteRef(v, 1, fresh);  // Old->young edge once vertices are promoted.
  }
}

WorkloadResult Finish(Vm* vm, const char* name, uint64_t start_ns, uint64_t start_gc,
                      size_t start_gcs) {
  WorkloadResult r;
  r.name = name;
  r.total_ns = vm->now_ns() - start_ns;
  r.gc_ns = vm->gc_time_ns() - start_gc;
  r.app_ns = r.total_ns - r.gc_ns;
  r.gc_count = vm->gc_count() - start_gcs;
  return r;
}

}  // namespace

ManagedTable::ManagedTable(Vm* vm, Mutator* mutator, uint64_t entries, uint32_t segment_entries)
    : vm_(vm), mutator_(mutator), entries_(entries), segment_entries_(segment_entries) {
  segment_klass_ = vm->heap().klasses().RegisterRefArray("ManagedTable.segment");
  const uint64_t segments = (entries + segment_entries - 1) / segment_entries;
  for (uint64_t s = 0; s < segments; ++s) {
    const uint64_t len = std::min<uint64_t>(segment_entries, entries - s * segment_entries);
    segments_.push_back(GlobalRoot(*vm, mutator->Allocate({segment_klass_, len})));
  }
}

Address ManagedTable::Get(uint64_t index) const {
  NVMGC_DCHECK(index < entries_);
  const Address segment = segments_[index / segment_entries_].Get();
  return mutator_->ReadRef(segment, index % segment_entries_);
}

void ManagedTable::Set(uint64_t index, Address value) {
  NVMGC_DCHECK(index < entries_);
  const Address segment = segments_[index / segment_entries_].Get();
  mutator_->WriteRef(segment, index % segment_entries_, value);
}

WorkloadResult RunPageRank(Vm* vm, const SparkConfig& config) {
  Mutator* m = vm->CreateMutator();
  const uint64_t t0 = vm->now_ns();
  const uint64_t gc0 = vm->gc_time_ns();
  const size_t n0 = vm->gc_count();
  Graph g = BuildGraph(vm, m, config, "pagerank");
  const KlassTable& klasses = vm->heap().klasses();
  // Initial rank 1/N for every vertex.
  for (uint64_t i = 0; i < config.vertices; ++i) {
    const Address rank = m->Allocate({g.value_klass});
    WriteDoubleAt(klasses, rank, 0, 1.0 / config.vertices);
    m->WriteRef(g.vertices->Get(i), 1, rank);
  }
  for (uint32_t iter = 0; iter < config.iterations; ++iter) {
    PropagateIteration(vm, m, &g, [&](double acc, double rank) {
      return 0.15 / config.vertices + 0.425 * (acc + rank);
    });
  }
  return Finish(vm, "page-rank", t0, gc0, n0);
}

WorkloadResult RunConnectedComponents(Vm* vm, const SparkConfig& config) {
  Mutator* m = vm->CreateMutator();
  const uint64_t t0 = vm->now_ns();
  const uint64_t gc0 = vm->gc_time_ns();
  const size_t n0 = vm->gc_count();
  Graph g = BuildGraph(vm, m, config, "cc");
  for (uint32_t iter = 0; iter < config.iterations; ++iter) {
    PropagateIteration(vm, m, &g, [](double acc, double label) { return std::min(acc, label); });
  }
  return Finish(vm, "cc", t0, gc0, n0);
}

WorkloadResult RunSssp(Vm* vm, const SparkConfig& config) {
  Mutator* m = vm->CreateMutator();
  const uint64_t t0 = vm->now_ns();
  const uint64_t gc0 = vm->gc_time_ns();
  const size_t n0 = vm->gc_count();
  Graph g = BuildGraph(vm, m, config, "sssp");
  // Edge relaxation: distance = min(distance, neighbor distance + 1).
  for (uint32_t iter = 0; iter < config.iterations; ++iter) {
    PropagateIteration(vm, m, &g,
                       [](double acc, double dist) { return std::min(acc, dist + 1.0); });
  }
  return Finish(vm, "sssp", t0, gc0, n0);
}

WorkloadResult RunKMeans(Vm* vm, const SparkConfig& config) {
  Mutator* m = vm->CreateMutator();
  const uint64_t t0 = vm->now_ns();
  const uint64_t gc0 = vm->gc_time_ns();
  const size_t n0 = vm->gc_count();
  KlassTable& klasses = vm->heap().klasses();
  const KlassId point_klass = klasses.RegisterRegular("kmeans.Point", 0, 32);  // 4 doubles.
  const KlassId assign_klass = klasses.RegisterRegular("kmeans.Assignment", 1, 16);

  Random rng(config.seed);
  ManagedTable points(vm, m, config.vertices);
  for (uint64_t i = 0; i < config.vertices; ++i) {
    const Address p = m->Allocate({point_klass});
    for (size_t d = 0; d < 4; ++d) {
      WriteDoubleAt(klasses, p, d, rng.NextDouble());
    }
    m->WritePayload(p, 32);
    points.Set(i, p);
  }
  std::vector<std::array<double, 4>> centroids(config.clusters);
  for (auto& c : centroids) {
    for (auto& x : c) {
      x = rng.NextDouble();
    }
  }
  ManagedTable assignments(vm, m, config.vertices);
  for (uint32_t iter = 0; iter < config.iterations; ++iter) {
    std::vector<std::array<double, 5>> sums(config.clusters, {0, 0, 0, 0, 0});
    for (uint64_t i = 0; i < config.vertices; ++i) {
      const Address p = points.Get(i);
      m->ReadPayload(p, 32);
      double best = 1e300;
      size_t best_c = 0;
      for (size_t c = 0; c < centroids.size(); ++c) {
        double dist = 0;
        for (size_t d = 0; d < 4; ++d) {
          const double delta = ReadDoubleAt(klasses, p, d) - centroids[c][d];
          dist += delta * delta;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      // Immutable per-iteration assignment record (previous one dies).
      const Address a = m->Allocate({assign_klass});
      WriteDoubleAt(klasses, a, 0, static_cast<double>(best_c));
      WriteDoubleAt(klasses, a, 1, best);
      m->WritePayload(a, 16);
      m->WriteRef(a, 0, p);
      assignments.Set(i, a);
      for (size_t d = 0; d < 4; ++d) {
        sums[best_c][d] += ReadDoubleAt(klasses, p, d);
      }
      sums[best_c][4] += 1.0;
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (sums[c][4] > 0) {
        for (size_t d = 0; d < 4; ++d) {
          centroids[c][d] = sums[c][d] / sums[c][4];
        }
      }
    }
  }
  return Finish(vm, "kmeans", t0, gc0, n0);
}

}  // namespace nvmgc
