// Miniature Spark-style analytics workloads running real algorithms over the
// managed heap (page-rank, k-means, connected components, SSSP — the four
// Spark applications in the paper's evaluation, Section 5.1).
//
// The data layout mirrors what makes Spark hostile to copying GC: a long-lived
// graph of boxed objects (promoted to the old generation) plus per-iteration
// floods of small, short-lived result objects that replace the previous
// iteration's results — each iteration's values survive exactly one GC wave
// and are linked from old objects, so remembered sets and old->young fix-ups
// are exercised heavily.

#ifndef NVMGC_SRC_WORKLOADS_SPARK_H_
#define NVMGC_SRC_WORKLOADS_SPARK_H_

#include <cstdint>
#include <vector>

#include "src/runtime/global_root.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {

struct SparkConfig {
  uint32_t vertices = 12000;   // Also: points for kmeans.
  uint32_t avg_degree = 6;     // Zipf-skewed out-degree.
  uint32_t iterations = 6;
  uint32_t clusters = 8;       // kmeans only.
  uint64_t seed = 7;
};

WorkloadResult RunPageRank(Vm* vm, const SparkConfig& config);
WorkloadResult RunKMeans(Vm* vm, const SparkConfig& config);
WorkloadResult RunConnectedComponents(Vm* vm, const SparkConfig& config);
WorkloadResult RunSssp(Vm* vm, const SparkConfig& config);

// A managed table: a sequence of rooted reference-array segments, used for
// vertex/point tables larger than a single region allows.
class ManagedTable {
 public:
  ManagedTable(Vm* vm, Mutator* mutator, uint64_t entries, uint32_t segment_entries = 2048);
  ~ManagedTable() = default;

  ManagedTable(const ManagedTable&) = delete;
  ManagedTable& operator=(const ManagedTable&) = delete;

  Address Get(uint64_t index) const;
  void Set(uint64_t index, Address value);
  uint64_t size() const { return entries_; }

 private:
  Vm* vm_;
  Mutator* mutator_;
  uint64_t entries_;
  uint32_t segment_entries_;
  KlassId segment_klass_;
  std::vector<GlobalRoot> segments_;
};

}  // namespace nvmgc

#endif  // NVMGC_SRC_WORKLOADS_SPARK_H_
