#include "src/workloads/synthetic_app.h"

#include <algorithm>

#include "src/util/check.h"

namespace nvmgc {

SyntheticApp::SyntheticApp(Vm* vm, WorkloadProfile profile)
    : vm_(vm), profile_(std::move(profile)), rng_(profile_.seed) {
  mutator_ = vm_->CreateMutator();
  KlassTable& klasses = vm_->heap().klasses();
  node_klass_ = klasses.RegisterRegular(profile_.name + ".Node",
                                        static_cast<uint16_t>(profile_.small_ref_fields),
                                        profile_.small_payload_bytes);
  container_klass_ = klasses.RegisterRegular(profile_.name + ".Container", 4, 16);
  byte_array_klass_ = klasses.RegisterByteArray(profile_.name + ".byte[]");
  ref_array_klass_ = klasses.RegisterRefArray(profile_.name + ".Object[]");
  node_site_ = vm_->RegisterAllocSite(profile_.name + ".node");
  ref_array_site_ = vm_->RegisterAllocSite(profile_.name + ".ref[]");
  byte_array_site_ = vm_->RegisterAllocSite(profile_.name + ".byte[]");
  chain_head_ = GlobalRoot(*vm_);
}

Address SyntheticApp::RandomLive() {
  if (live_window_.empty()) {
    return kNullAddress;
  }
  const auto& entry = live_window_[rng_.NextBelow(live_window_.size())];
  return entry.first.Get();
}

void SyntheticApp::AttachSurvivor(Address object) {
  const size_t size = obj::SizeOfAt(object, vm_->heap().klasses());
  if (profile_.chain_fraction > 0.0 && rng_.NextBool(profile_.chain_fraction)) {
    // Deep single chain: object.ref[0] = previous chain head. During GC this
    // forms one long dependent pointer walk that a single worker must follow.
    const Klass& k = vm_->heap().klasses().Get(obj::KlassIdOf(object));
    if (obj::RefSlotCount(object, k) > 0) {
      mutator_->WriteRef(object, 0, chain_head_.Get());
      chain_head_.Set(object);
      chain_started_ = true;
      return;
    }
  }
  live_window_.emplace_back(GlobalRoot(*vm_, object), size);
  live_window_bytes_ += size;
  // With some probability, link the previous survivor to this one so the live
  // set is a graph rather than disjoint roots. A link is only ever taken from
  // the immediately preceding survivor, so chain depth is geometric (expected
  // ~1.5, max ~log n) — the traversal stays *wide*, as real application heaps
  // are, and GC parallelism is limited by memory bandwidth rather than by an
  // artificial pointer-chain critical path. (akka-uct's deliberately deep
  // chain comes from chain_fraction above.)
  constexpr double kLinkPrevProbability = 0.35;
  if (live_window_.size() >= 2 && rng_.NextBool(kLinkPrevProbability)) {
    const Address peer = live_window_[live_window_.size() - 2].first.Get();
    if (peer != kNullAddress && peer != object) {
      const Klass& pk = vm_->heap().klasses().Get(obj::KlassIdOf(peer));
      const size_t nslots = obj::RefSlotCount(peer, pk);
      if (nslots > 0 && pk.kind == KlassKind::kRegular) {
        mutator_->WriteRef(peer, rng_.NextBelow(nslots), object);
      }
    }
  }
  while (live_window_bytes_ > profile_.live_window_bytes && live_window_.size() > 1) {
    live_window_bytes_ -= live_window_.front().second;
    live_window_.pop_front();  // ~GlobalRoot releases the root cell.
  }
}

void SyntheticApp::AllocateOne() {
  Address object = kNullAddress;
  if (rng_.NextBool(profile_.small_object_fraction)) {
    object = mutator_->Allocate({node_klass_, 0, false, node_site_});
  } else if (rng_.NextBool(profile_.ref_array_fraction)) {
    const uint64_t length =
        rng_.NextInRange(profile_.array_bytes_min, profile_.array_bytes_max) / 8;
    object = mutator_->Allocate(
        {ref_array_klass_, std::max<uint64_t>(1, length), false, ref_array_site_});
  } else {
    const uint64_t bytes = rng_.NextInRange(profile_.array_bytes_min, profile_.array_bytes_max);
    object = mutator_->Allocate(
        {byte_array_klass_, std::max<uint64_t>(8, bytes), false, byte_array_site_});
  }
  allocated_bytes_ += obj::SizeOfAt(object, vm_->heap().klasses());
  if (rng_.NextBool(profile_.survival_fraction)) {
    AttachSurvivor(object);
  }
}

void SyntheticApp::TouchLiveSet() {
  // Application reads/writes over the live set. Accesses that hit in the CPU
  // caches cost a fixed ~15 ns regardless of the backing device; only misses
  // reach the (DRAM or NVM) memory device.
  constexpr uint64_t kCacheHitNs = 15;
  double reads = profile_.reads_per_alloc;
  while (reads >= 1.0 || rng_.NextBool(reads)) {
    Address target = RandomLive();
    if (target != kNullAddress) {
      if (rng_.NextBool(profile_.mutator_cache_hit)) {
        vm_->clock().Advance(kCacheHitNs);
      } else {
        mutator_->ReadPayload(target, profile_.touch_bytes);
      }
    }
    reads -= 1.0;
    if (reads < 0.0) {
      break;
    }
  }
  double writes = profile_.writes_per_alloc;
  while (writes >= 1.0 || rng_.NextBool(writes)) {
    Address target = RandomLive();
    if (target != kNullAddress) {
      if (rng_.NextBool(profile_.mutator_cache_hit)) {
        vm_->clock().Advance(kCacheHitNs);
      } else {
        mutator_->WritePayload(target, profile_.touch_bytes);
      }
    }
    writes -= 1.0;
    if (writes < 0.0) {
      break;
    }
  }
}

WorkloadResult SyntheticApp::Run() {
  const uint64_t start_ns = vm_->now_ns();
  const uint64_t start_gc_ns = vm_->gc_time_ns();
  const size_t start_gcs = vm_->gc_count();
  while (allocated_bytes_ < profile_.total_allocation_bytes) {
    AllocateOne();
    TouchLiveSet();
  }

  WorkloadResult result;
  result.name = profile_.name;
  result.total_ns = vm_->now_ns() - start_ns;
  result.gc_ns = vm_->gc_time_ns() - start_gc_ns;
  result.app_ns = result.total_ns - result.gc_ns;
  result.gc_count = vm_->gc_count() - start_gcs;
  result.bytes_allocated = allocated_bytes_;

  // Average heap-device bandwidth during GC: bytes moved per pause second.
  uint64_t gc_bytes = 0;
  uint64_t gc_ns = 0;
  for (const auto& cycle : vm_->gc_stats().cycles()) {
    gc_bytes += cycle.device_read_bytes + cycle.device_write_bytes;
    gc_ns += cycle.pause_ns;
  }
  if (gc_ns > 0) {
    result.gc_bandwidth_mbps = static_cast<double>(gc_bytes) / 1e6 /
                               (static_cast<double>(gc_ns) / 1e9);
  }
  return result;
}

WorkloadResult RunWorkload(const WorkloadProfile& profile, const VmOptions& options,
                           const std::function<void(Vm&)>& post_run) {
  Vm vm(options);
  WorkloadResult result;
  {
    // Scoped so the app's roots are released before post_run observes the Vm.
    SyntheticApp app(&vm, profile);
    result = app.Run();
  }
  if (post_run) {
    post_run(vm);
  }
  return result;
}

WorkloadResult RunWorkload(const WorkloadProfile& profile, const HeapConfig& heap,
                           const GcOptions& gc) {
  VmOptions options;
  options.heap = heap;
  options.gc = gc;
  return RunWorkload(profile, options);
}

}  // namespace nvmgc
