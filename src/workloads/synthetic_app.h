// Synthetic-application engine: drives a Vm with a parameterized allocation,
// liveness and access profile.
//
// Each Renaissance benchmark is encoded as one WorkloadProfile (see
// renaissance.h); the engine turns the profile into real object-graph churn:
// it allocates boxed objects and arrays, attaches a configurable fraction to
// a sliding live window (so survivors exist for the copying GC to move),
// builds deep chains for load-imbalance profiles, and issues application
// reads/writes between allocations so the mutator phase consumes bandwidth
// too. GCs trigger naturally when the eden quota runs out.

#ifndef NVMGC_SRC_WORKLOADS_SYNTHETIC_APP_H_
#define NVMGC_SRC_WORKLOADS_SYNTHETIC_APP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "src/runtime/global_root.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/util/random.h"

namespace nvmgc {

struct WorkloadProfile {
  std::string name;

  // --- Allocation mix ---
  // Fraction of allocations that are small boxed objects (the rest arrays).
  double small_object_fraction = 0.8;
  uint32_t small_ref_fields = 2;
  uint32_t small_payload_bytes = 24;
  uint32_t array_bytes_min = 128;
  uint32_t array_bytes_max = 4096;
  // Of the array allocations, fraction that are reference arrays.
  double ref_array_fraction = 0.2;

  // --- Liveness ---
  // Fraction of allocations attached to the live window (survive the GC that
  // follows their allocation).
  double survival_fraction = 0.1;
  // Steady-state live-window size; the oldest survivors are dropped beyond it.
  size_t live_window_bytes = 4 * 1024 * 1024;
  // Fraction of survivors appended to one deep chain instead of the balanced
  // window: models load-imbalanced traversal (akka-uct).
  double chain_fraction = 0.0;

  // --- Application behavior between allocations ---
  double reads_per_alloc = 0.5;
  double writes_per_alloc = 0.2;
  // Payload bytes touched per application read/write.
  uint32_t touch_bytes = 64;
  // Fraction of application accesses served by the CPU caches. Unlike GC
  // traversal (whose locality is poor by construction — the paper's CAT
  // experiment shows GC barely uses the LLC), application phases often hit in
  // cache, which is why NVM slows applications far less than it slows GC.
  double mutator_cache_hit = 0.70;

  // --- Volume ---
  size_t total_allocation_bytes = 64 * 1024 * 1024;

  uint64_t seed = 1;
};

// Result of one synthetic run (all times simulated).
struct WorkloadResult {
  std::string name;
  uint64_t total_ns = 0;
  uint64_t gc_ns = 0;
  uint64_t app_ns = 0;  // total - gc
  size_t gc_count = 0;
  uint64_t bytes_allocated = 0;
  // Average NVM bandwidth consumed during GC pauses (MB/s).
  double gc_bandwidth_mbps = 0.0;

  double gc_seconds() const { return static_cast<double>(gc_ns) / 1e9; }
  double app_seconds() const { return static_cast<double>(app_ns) / 1e9; }
  double total_seconds() const { return static_cast<double>(total_ns) / 1e9; }
};

class SyntheticApp {
 public:
  SyntheticApp(Vm* vm, WorkloadProfile profile);

  // Runs the profile to completion and reports simulated results.
  WorkloadResult Run();

 private:
  void AllocateOne();
  void TouchLiveSet();
  void AttachSurvivor(Address object);
  Address RandomLive();

  Vm* vm_;
  WorkloadProfile profile_;
  Mutator* mutator_;
  Random rng_;

  KlassId node_klass_ = 0;
  KlassId container_klass_ = 0;
  KlassId byte_array_klass_ = 0;
  KlassId ref_array_klass_ = 0;

  // Allocation-site tags (Vm::RegisterAllocSite): one per allocation path in
  // AllocateOne(), so the site profiler attributes lifetime demographics and
  // NVM write amplification per object shape.
  AllocSiteId node_site_ = 0;
  AllocSiteId ref_array_site_ = 0;
  AllocSiteId byte_array_site_ = 0;

  // Live window: roots of surviving objects, FIFO-retired by byte budget.
  // GlobalRoot releases each root cell automatically on retirement.
  std::deque<std::pair<GlobalRoot, size_t>> live_window_;
  size_t live_window_bytes_ = 0;
  GlobalRoot chain_head_;
  bool chain_started_ = false;

  uint64_t allocated_bytes_ = 0;
};

// Convenience: construct a VM for `device`/`gc`, run `profile`, return result.
WorkloadResult RunWorkload(const WorkloadProfile& profile, const HeapConfig& heap,
                           const GcOptions& gc);

// Full-options variant: `post_run` (when set) receives the Vm after the
// workload finished but before teardown, so callers can harvest per-pause
// metrics snapshots and trace events (see Vm::metrics() / Vm::tracer()).
WorkloadResult RunWorkload(const WorkloadProfile& profile, const VmOptions& options,
                           const std::function<void(Vm&)>& post_run = {});

}  // namespace nvmgc

#endif  // NVMGC_SRC_WORKLOADS_SYNTHETIC_APP_H_
