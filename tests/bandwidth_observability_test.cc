// Observability tests: the bandwidth recorder and device counters must make
// the paper's phenomena *visible* during a real collection — this is what the
// bandwidth figures are built on.

#include <gtest/gtest.h>

#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

VmOptions MonitorVm(bool write_cache) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 96;
  o.heap.eden_regions = 64;
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc = write_cache ? AllOptimizationsOptions(CollectorKind::kG1, 8)
                     : VanillaOptions(CollectorKind::kG1, 8);
  return o;
}

WorkloadProfile MonitorProfile() {
  WorkloadProfile p = RenaissanceProfile("als");
  p.total_allocation_bytes = 16 * 1024 * 1024;
  return p;
}

TEST(BandwidthObservabilityTest, RecorderCapturesGcTraffic) {
  Vm vm(MonitorVm(false));
  vm.heap_device().StartRecording(0, 500'000, 1 << 16);
  SyntheticApp app(&vm, MonitorProfile());
  app.Run();
  vm.heap_device().StopRecording();
  const auto series = vm.heap_device().RecordedSeries();
  ASSERT_FALSE(series.empty());
  // Total bytes in the series must match the device counters.
  double series_bytes = 0.0;
  for (const auto& s : series) {
    series_bytes += s.total_mbps() * 1e6 * 0.5e-3;  // MB/s over a 0.5 ms bucket.
  }
  const DeviceCounters c = vm.heap_device().counters();
  EXPECT_NEAR(series_bytes, static_cast<double>(c.total_bytes()),
              static_cast<double>(c.total_bytes()) * 0.02);
}

TEST(BandwidthObservabilityTest, GcBucketsShowHigherReadShareThanAppBuckets) {
  Vm vm(MonitorVm(false));
  vm.heap_device().StartRecording(0, 500'000, 1 << 16);
  SyntheticApp app(&vm, MonitorProfile());
  app.Run();
  const auto series = vm.heap_device().RecordedSeries();
  std::vector<std::pair<uint64_t, uint64_t>> pauses;
  for (const auto& c : vm.gc_stats().cycles()) {
    pauses.emplace_back(c.start_ns, c.start_ns + c.pause_ns);
  }
  ASSERT_FALSE(pauses.empty());
  double gc_read = 0.0;
  double gc_write = 0.0;
  double app_read = 0.0;
  double app_write = 0.0;
  for (const auto& s : series) {
    bool in_gc = false;
    for (const auto& [start, end] : pauses) {
      if (start < s.time_ns + 500'000 && end > s.time_ns) {
        in_gc = true;
        break;
      }
    }
    (in_gc ? gc_read : app_read) += s.read_mbps;
    (in_gc ? gc_write : app_write) += s.write_mbps;
  }
  // The app phase is allocation-write dominated; GC traversal reads heavily.
  EXPECT_GT(gc_read / (gc_read + gc_write), app_read / (app_read + app_write));
}

TEST(BandwidthObservabilityTest, WriteCacheShiftsNvmWritesIntoWritebackPhase) {
  Vm vm(MonitorVm(true));
  vm.heap_device().StartRecording(0, 100'000, 1 << 17);
  SyntheticApp app(&vm, MonitorProfile());
  app.Run();
  const auto series = vm.heap_device().RecordedSeries();
  // Locate the longest pause; within it, the write traffic must concentrate
  // in the trailing (write-only) sub-phase.
  const GcCycleStats* longest = nullptr;
  for (const auto& c : vm.gc_stats().cycles()) {
    if (longest == nullptr || c.pause_ns > longest->pause_ns) {
      longest = &c;
    }
  }
  ASSERT_NE(longest, nullptr);
  ASSERT_GT(longest->writeback_phase_ns, 0u);
  const uint64_t read_phase_end = longest->start_ns + longest->read_phase_ns;
  double writes_in_read_phase = 0.0;
  double writes_in_writeback = 0.0;
  for (const auto& s : series) {
    if (s.time_ns + 100'000 <= longest->start_ns ||
        s.time_ns >= longest->start_ns + longest->pause_ns) {
      continue;
    }
    if (s.time_ns + 100'000 <= read_phase_end) {
      writes_in_read_phase += s.write_mbps;
    } else {
      writes_in_writeback += s.write_mbps;
    }
  }
  EXPECT_GT(writes_in_writeback, writes_in_read_phase)
      << "the write-only sub-phase must carry the bulk of NVM writes";
}

TEST(BandwidthObservabilityTest, NonTemporalBytesOnlyWithNtEnabled) {
  Vm vanilla_vm(MonitorVm(false));
  SyntheticApp vanilla_app(&vanilla_vm, MonitorProfile());
  vanilla_app.Run();
  EXPECT_EQ(vanilla_vm.heap_device().counters().nt_write_bytes, 0u);

  Vm opt_vm(MonitorVm(true));
  SyntheticApp opt_app(&opt_vm, MonitorProfile());
  opt_app.Run();
  EXPECT_GT(opt_vm.heap_device().counters().nt_write_bytes, 0u);
}

}  // namespace
}  // namespace nvmgc
