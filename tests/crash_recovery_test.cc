// Crash-point sweep over durability mode: cut power at seeded simulated
// instants across multi-cycle runs and require that the RecoveryChecker
// either rebuilds a verified heap from the last sealed commit or reports a
// classified pre-commit torn state — never silent corruption.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/nvm/fault_injector.h"
#include "src/recovery/crash_injector.h"
#include "src/recovery/recovery_checker.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

constexpr uint64_t kSweepSeed = 0xC0FFEE;

VmOptions DurableVm(uint32_t threads = 4) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 320;
  o.heap.dram_cache_regions = 48;
  o.heap.eden_regions = 16;  // Small eden: ~1 MiB per cycle forces many GCs.
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc = DurableOptions(CollectorKind::kG1, threads);
  return o;
}

WorkloadProfile CrashProfile() {
  WorkloadProfile p = RenaissanceProfile("dotty");
  p.total_allocation_bytes = 6 * 1024 * 1024;
  return p;
}

struct CrashRunResult {
  RecoveryReport report;
  std::vector<uint64_t> commit_instants;
  uint64_t end_ns = 0;
};

// Runs the workload with power cut at `crash_ns` (or no cut when 0), then
// recovers from the surviving image. The run's own commit instants predict
// which epoch recovery must land on.
CrashRunResult RunAndRecover(uint64_t crash_ns, const FaultPlan* faults = nullptr) {
  VmOptions o = DurableVm();
  Vm vm(o);
  FaultInjector injector(faults != nullptr ? *faults : FaultPlan{});
  if (faults != nullptr) {
    vm.heap_device().AttachFaultInjector(&injector);
  }
  CrashInjector crash(&vm.heap_device().persist(),
                      crash_ns != 0 ? crash_ns : ~uint64_t{0});
  SyntheticApp app(&vm, CrashProfile());
  app.Run();

  CrashRunResult result;
  result.commit_instants = vm.collector().commit_instants();
  result.end_ns = vm.now_ns();
  RecoveryChecker checker(vm.options().heap, vm.options().gc.durability,
                          vm.heap().klasses());
  result.report = checker.Check(crash.TakeImage());
  return result;
}

size_t SealedBefore(const std::vector<uint64_t>& instants, uint64_t crash_ns) {
  return static_cast<size_t>(
      std::count_if(instants.begin(), instants.end(),
                    [&](uint64_t t) { return t < crash_ns; }));
}

// The acceptance sweep: >= 200 crash points scattered over a run with >= 5
// GC cycles. Every point must recover to exactly the last sealed epoch, or
// classify the pre-first-commit window explicitly.
TEST(CrashRecovery, SeededSweepNeverSilentlyCorrupts) {
  // Reference run (no crash) fixes the horizon and confirms cycle depth.
  const CrashRunResult reference = RunAndRecover(0);
  ASSERT_GE(reference.commit_instants.size(), 5u)
      << "workload too small to exercise >= 5 GC cycles";
  ASSERT_TRUE(reference.report.recovered()) << reference.report.detail;
  EXPECT_EQ(reference.report.epoch, reference.commit_instants.size());

  const std::vector<uint64_t> instants =
      CrashInjector::SweepInstants(kSweepSeed, 1, reference.end_ns, 200);
  ASSERT_EQ(instants.size(), 200u);

  for (const uint64_t crash_ns : instants) {
    const CrashRunResult r = RunAndRecover(crash_ns);
    const size_t sealed = SealedBefore(r.commit_instants, crash_ns);
    SCOPED_TRACE("crash_ns=" + std::to_string(crash_ns) + " seed=" +
                 std::to_string(kSweepSeed) + " sealed=" + std::to_string(sealed) +
                 " detail=" + r.report.detail);
    ASSERT_NE(r.report.outcome, RecoveryReport::Outcome::kCorrupt);
    if (sealed == 0) {
      EXPECT_EQ(r.report.outcome, RecoveryReport::Outcome::kNoCommittedState);
      EXPECT_FALSE(r.report.detail.empty());  // Torn state must be classified.
    } else {
      ASSERT_EQ(r.report.outcome, RecoveryReport::Outcome::kRecovered);
      EXPECT_EQ(r.report.epoch, sealed);
      EXPECT_GT(r.report.regions_restored, 0u);
      EXPECT_GT(r.report.objects_parsed, 0u);
    }
  }
}

// Compound robustness: device faults (throttle windows, access stalls, DRAM
// pressure) during the run must not weaken the durability contract.
TEST(CrashRecovery, SurvivesCrashUnderDeviceFaults) {
  const CrashRunResult reference = RunAndRecover(0);
  const std::vector<uint64_t> instants =
      CrashInjector::SweepInstants(kSweepSeed ^ 0xFA117, 1, reference.end_ns, 10);
  FaultPlan plan;
  plan.seed = 7;
  plan.AddThrottle(0, reference.end_ns, 0.4)
      .AddStalls(0, reference.end_ns, 0.05, 2'000, 2)
      .AddDramPressure(reference.end_ns / 4, reference.end_ns / 2);
  for (const uint64_t crash_ns : instants) {
    const CrashRunResult r = RunAndRecover(crash_ns, &plan);
    const size_t sealed = SealedBefore(r.commit_instants, crash_ns);
    SCOPED_TRACE("crash_ns=" + std::to_string(crash_ns) + " detail=" + r.report.detail);
    ASSERT_NE(r.report.outcome, RecoveryReport::Outcome::kCorrupt);
    if (sealed > 0) {
      ASSERT_TRUE(r.report.recovered());
      EXPECT_EQ(r.report.epoch, sealed);
    }
  }
}

// A power cut after the final commit recovers the full final heap state:
// every committed epoch sealed, roots present, redo log replayed cleanly.
TEST(CrashRecovery, FullRunRecoversFinalEpoch) {
  const CrashRunResult r = RunAndRecover(0);
  ASSERT_TRUE(r.report.recovered()) << r.report.detail;
  EXPECT_EQ(r.report.epoch, r.commit_instants.size());
  EXPECT_GT(r.report.roots_restored, 0u);
  EXPECT_GT(r.report.regions_restored, 0u);
}

// Durability off is free: the same workload must report zero persist work.
TEST(CrashRecovery, DurabilityOffHasZeroPersistWork) {
  VmOptions o = DurableVm();
  o.gc = AllOptimizationsOptions(CollectorKind::kG1, 4);
  Vm vm(o);
  SyntheticApp app(&vm, CrashProfile());
  app.Run();
  const GcCycleStats totals = vm.gc_stats().Totals();
  EXPECT_EQ(totals.persist_flush_lines, 0u);
  EXPECT_EQ(totals.persist_fences, 0u);
  EXPECT_EQ(totals.persist_ns, 0u);
  EXPECT_EQ(totals.persist_redo_entries, 0u);
  EXPECT_EQ(totals.persist_commit_bytes, 0u);
  EXPECT_TRUE(vm.collector().commit_instants().empty());
}

// Durability on actually pays for persistence and seals one commit per pause.
TEST(CrashRecovery, DurabilityOnSealsEveryPause) {
  VmOptions o = DurableVm();
  Vm vm(o);
  SyntheticApp app(&vm, CrashProfile());
  app.Run();
  const GcCycleStats totals = vm.gc_stats().Totals();
  EXPECT_GT(totals.persist_flush_lines, 0u);
  EXPECT_GT(totals.persist_fences, 0u);
  EXPECT_GT(totals.persist_ns, 0u);
  EXPECT_GT(totals.persist_commit_bytes, 0u);
  EXPECT_EQ(vm.collector().commit_instants().size(), vm.gc_count());
}

}  // namespace
}  // namespace nvmgc
