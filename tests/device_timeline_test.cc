// Tests for the per-pause NVM bandwidth timeline (src/obs/device_timeline.h)
// and the per-region access heatmap (src/nvm/access_heatmap.h): unit-level
// bucket draining, and the integration-level claims the instrumentation
// exists to demonstrate — the optimized collector's read phase is
// read-dominated and its write-back phase write-dominated on the NVM device,
// and the write cache turns scattered survivor writes into contiguous
// streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/nvm/access_heatmap.h"
#include "src/nvm/device_profile.h"
#include "src/nvm/memory_device.h"
#include "src/obs/device_timeline.h"
#include "src/obs/trace.h"
#include "src/runtime/global_root.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

// ---------- DeviceTimeline unit tests ----------

TEST(DeviceTimelineTest, DrainsChargedBucketsIntoRates) {
  MemoryDevice device(MakeOptaneProfile());
  const uint64_t bucket_ns = device.ledger().bucket_ns();
  SimClock clock;

  // Charge reads into bucket 10 and writes into bucket 11 (resetting the
  // clock each time so each charge lands at a controlled timestamp).
  clock.SetTime(10 * bucket_ns + 1);
  device.Access(&clock, SequentialRead(0x1000, 60000));
  clock.SetTime(11 * bucket_ns + 1);
  device.Access(&clock, SequentialWrite(0x2000, 30000));

  DeviceTimeline timeline(&device);
  const size_t n = timeline.SamplePhase(/*pause_id=*/1, GcPhaseKind::kRead,
                                        10 * bucket_ns, 12 * bucket_ns,
                                        /*active_threads=*/4);
  ASSERT_EQ(n, 2u);
  ASSERT_EQ(timeline.samples().size(), 2u);

  const TimelineSample& read_bucket = timeline.samples()[0];
  EXPECT_EQ(read_bucket.pause_id, 1u);
  EXPECT_EQ(read_bucket.phase, GcPhaseKind::kRead);
  EXPECT_EQ(read_bucket.time_ns, 10 * bucket_ns);
  // 60000 bytes over a 150 us bucket = 400 MB/s.
  EXPECT_DOUBLE_EQ(read_bucket.read_mbps, 60000.0 * 1000.0 / bucket_ns);
  EXPECT_DOUBLE_EQ(read_bucket.write_mbps, 0.0);
  EXPECT_DOUBLE_EQ(read_bucket.interleave, 0.0);
  EXPECT_GT(read_bucket.model_mbps, 0.0);

  const TimelineSample& write_bucket = timeline.samples()[1];
  EXPECT_EQ(write_bucket.time_ns, 11 * bucket_ns);
  EXPECT_DOUBLE_EQ(write_bucket.write_mbps, 30000.0 * 1000.0 / bucket_ns);
  EXPECT_DOUBLE_EQ(write_bucket.interleave, 1.0);
  EXPECT_EQ(timeline.missing_buckets(), 0u);
}

TEST(DeviceTimelineTest, BucketStartInRangeRuleExcludesPartialFirstBucket) {
  MemoryDevice device(MakeOptaneProfile());
  const uint64_t bucket_ns = device.ledger().bucket_ns();
  SimClock clock;
  clock.SetTime(10 * bucket_ns + 1);
  device.Access(&clock, SequentialRead(0x1000, 4096));

  DeviceTimeline timeline(&device);
  // Phase starts mid-bucket-10: bucket 10's start is outside [start, end), so
  // the (mutator-contaminated) partial bucket must not be sampled.
  const size_t n = timeline.SamplePhase(1, GcPhaseKind::kRead,
                                        10 * bucket_ns + bucket_ns / 2,
                                        11 * bucket_ns, 1);
  EXPECT_EQ(n, 0u);
  EXPECT_TRUE(timeline.samples().empty());
}

TEST(DeviceTimelineTest, EvictedEpochsCountAsMissing) {
  MemoryDevice device(MakeOptaneProfile());
  const uint64_t bucket_ns = device.ledger().bucket_ns();
  SimClock clock;
  // Charge once far in the future so the ring slots for early epochs hold
  // nothing; sampling an early uncharged window yields only missing buckets.
  clock.SetTime(1000 * bucket_ns);
  device.Access(&clock, SequentialRead(0x1000, 4096));

  DeviceTimeline timeline(&device);
  const size_t n = timeline.SamplePhase(1, GcPhaseKind::kRead, 0, 3 * bucket_ns, 1);
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(timeline.missing_buckets(), 3u);
}

// ---------- AccessHeatmap unit tests ----------

TEST(AccessHeatmapTest, TracksPerRegionBytesAndDiscontiguity) {
  AccessHeatmap heatmap;
  EXPECT_FALSE(heatmap.configured());
  heatmap.Charge(SequentialWrite(0x1000, 64));  // Ignored while unconfigured.

  const uint64_t base = 0x10000;
  const uint64_t region_bytes = 4096;
  heatmap.Configure(base, region_bytes, /*regions=*/4);
  ASSERT_TRUE(heatmap.configured());
  EXPECT_EQ(heatmap.regions(), 4u);

  // Region 0: a contiguous stream of three writes.
  heatmap.Charge(SequentialWrite(base, 128));
  heatmap.Charge(SequentialWrite(base + 128, 128));
  heatmap.Charge(SequentialWrite(base + 256, 128));
  // Region 1: two scattered 8-byte writes (both discontiguous after the 1st).
  heatmap.Charge(RandomWrite(base + region_bytes + 512, 8));
  heatmap.Charge(RandomWrite(base + region_bytes + 64, 8));
  // Region 2: reads only.
  heatmap.Charge(SequentialRead(base + 2 * region_bytes, 256));
  // Outside the arena: ignored.
  heatmap.Charge(SequentialWrite(base + 4 * region_bytes, 64));
  heatmap.Charge(SequentialWrite(base - 8, 8));

  const std::vector<RegionHeat> snap = heatmap.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].write_bytes, 384u);
  EXPECT_EQ(snap[0].write_ops, 3u);
  EXPECT_EQ(snap[0].discontiguous_writes, 0u);
  EXPECT_DOUBLE_EQ(snap[0].contiguous_write_fraction(), 1.0);
  EXPECT_EQ(snap[1].write_ops, 2u);
  // The first write opens the stream (no predecessor); the second jumps.
  EXPECT_EQ(snap[1].discontiguous_writes, 1u);
  EXPECT_EQ(snap[2].read_bytes, 256u);
  EXPECT_EQ(snap[2].write_ops, 0u);
  EXPECT_EQ(snap[3].write_ops, 0u);

  const HeatmapTotals totals = heatmap.Totals();
  EXPECT_EQ(totals.regions_written, 2u);
  EXPECT_EQ(totals.regions_read, 1u);
  EXPECT_EQ(totals.write_ops, 5u);
  EXPECT_EQ(totals.discontiguous_writes, 1u);
  EXPECT_EQ(totals.max_region_write_bytes, 384u);
}

TEST(AccessHeatmapTest, ExportMetricsPublishesAggregateGauges) {
  AccessHeatmap heatmap;
  heatmap.Configure(0x1000, 4096, 2);
  heatmap.Charge(SequentialWrite(0x1000, 64));
  heatmap.Charge(SequentialWrite(0x1000 + 256, 64));  // Jumps: discontiguous.
  MetricsRegistry metrics;
  heatmap.ExportMetrics(&metrics, "device.heap");
  EXPECT_EQ(metrics.gauges().at("device.heap.heatmap.regions_written"), 1u);
  EXPECT_EQ(metrics.gauges().at("device.heap.heatmap.write_ops"), 2u);
  EXPECT_EQ(metrics.gauges().at("device.heap.heatmap.discontiguous_writes"), 1u);
  EXPECT_EQ(metrics.gauges().at("device.heap.heatmap.contiguous_write_permille"), 500u);
}

// ---------- Integration: a real collector run ----------

VmOptions TimelineVm(const GcOptions& gc) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 256;
  o.heap.dram_cache_regions = 64;
  o.heap.eden_regions = 48;
  o.heap.tenure_age = 8;  // Keep survivors young: no promotion traffic.
  o.gc = gc;
  o.trace_gc = true;
  return o;
}

GcOptions OptimizedGc() {
  return GcOptionsBuilder(AllOptimizationsOptions(CollectorKind::kG1, 4))
      .HeaderMapMinThreads(2)
      .Build();
}

// Allocates a ~1.5 MiB live graph and runs two collections.
void RunLiveGraphWorkload(Vm* vm) {
  Mutator* m = vm->CreateMutator();
  const KlassId refs = vm->heap().klasses().RegisterRefArray("Object[]");
  const KlassId blob = vm->heap().klasses().RegisterByteArray("byte[]");
  constexpr size_t kNodes = 1536;
  GlobalRoot table(*vm, m->Allocate({refs, kNodes}));
  for (size_t i = 0; i < kNodes; ++i) {
    m->WriteRef(table.Get(), i, m->Allocate({blob, 1024}));
  }
  vm->CollectNow();
  vm->CollectNow();
}

// The acceptance-criterion test: under the optimized collector the NVM-side
// read phase must be read-dominated and the write-back phase write-dominated.
TEST(DeviceTimelineIntegrationTest, PhasesHaveTheExpectedInterleaveDirection) {
  Vm vm(TimelineVm(OptimizedGc()));
  RunLiveGraphWorkload(&vm);

  const DeviceTimeline& timeline = vm.timeline();
  ASSERT_FALSE(timeline.samples().empty());
  // A phase's final bucket may start in the last sliver before end_ns with no
  // traffic charged into it yet (sampling runs synchronously at pause end),
  // so allow up to one missing bucket per sampled phase: 2 phases x 2 pauses.
  EXPECT_LE(timeline.missing_buckets(), 4u);

  double read_phase_read = 0.0, read_phase_write = 0.0;
  double wb_phase_read = 0.0, wb_phase_write = 0.0;
  size_t read_samples = 0, wb_samples = 0;
  for (const TimelineSample& s : timeline.samples()) {
    EXPECT_GE(s.interleave, 0.0);
    EXPECT_LE(s.interleave, 1.0);
    EXPECT_GT(s.model_mbps, 0.0);
    if (s.phase == GcPhaseKind::kRead) {
      read_phase_read += s.read_mbps;
      read_phase_write += s.write_mbps;
      ++read_samples;
    } else {
      wb_phase_read += s.read_mbps;
      wb_phase_write += s.write_mbps;
      ++wb_samples;
    }
  }
  ASSERT_GT(read_samples, 0u);
  ASSERT_GT(wb_samples, 0u);
  // Staged copies land in DRAM, so NVM traffic during copy/traverse is
  // reads; the write-back streams whole regions out.
  EXPECT_GT(read_phase_read, read_phase_write);
  EXPECT_GT(wb_phase_write, wb_phase_read);

  // Every sample falls inside its pause's phase window.
  const auto& cycles = vm.gc_stats().cycles();
  for (const TimelineSample& s : timeline.samples()) {
    ASSERT_GE(s.pause_id, 1u);
    ASSERT_LE(s.pause_id, cycles.size());
    const GcCycleStats& c = cycles[s.pause_id - 1];
    const uint64_t read_end = c.start_ns + c.read_phase_ns;
    if (s.phase == GcPhaseKind::kRead) {
      EXPECT_GE(s.time_ns, c.start_ns);
      EXPECT_LT(s.time_ns, read_end);
    } else {
      EXPECT_GE(s.time_ns, read_end);
      EXPECT_LT(s.time_ns, c.start_ns + c.pause_ns);
    }
  }
}

TEST(DeviceTimelineIntegrationTest, TracerCarriesCounterTracks) {
  Vm vm(TimelineVm(OptimizedGc()));
  RunLiveGraphWorkload(&vm);

  size_t counters = 0;
  bool saw_read = false, saw_write = false, saw_interleave = false, saw_model = false;
  for (const TraceEvent& e : vm.tracer().SortedEvents()) {
    if (e.kind != TraceEventKind::kCounter) {
      continue;
    }
    ++counters;
    EXPECT_EQ(e.tid, vm.tracer().control_tid());
    const std::string name = e.name;
    saw_read |= name == "nvm.read_mbps";
    saw_write |= name == "nvm.write_mbps";
    saw_interleave |= name == "nvm.interleave";
    saw_model |= name == "nvm.model_mbps";
  }
  EXPECT_EQ(counters, vm.timeline().samples().size() * 4);
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_interleave);
  EXPECT_TRUE(saw_model);

  // Counter events serialize as Chrome-trace "ph":"C" with a numeric value.
  std::string chrome;
  vm.tracer().AppendChromeEvents(&chrome, /*pid=*/1, "device_timeline_test");
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.find("\"nvm.read_mbps\""), std::string::npos);
  EXPECT_NE(chrome.find("\"args\":{\"value\":"), std::string::npos);
}

// The heatmap must show the write cache's sequentialization effect: the
// vanilla collector scatters forwarding-pointer installs across NVM regions,
// while the optimized one only writes NVM through contiguous region flushes.
TEST(AccessHeatmapIntegrationTest, WriteCacheSequentializesNvmWrites) {
  Vm vanilla(TimelineVm(VanillaOptions(CollectorKind::kG1, 4)));
  RunLiveGraphWorkload(&vanilla);
  Vm optimized(TimelineVm(OptimizedGc()));
  RunLiveGraphWorkload(&optimized);

  const HeatmapTotals van = vanilla.heap_device().heatmap().Totals();
  const HeatmapTotals opt = optimized.heap_device().heatmap().Totals();
  ASSERT_GT(van.write_ops, 0u);
  ASSERT_GT(opt.write_ops, 0u);
  EXPECT_GT(opt.contiguous_write_fraction(), van.contiguous_write_fraction());

  // The aggregates surface through the registry after each pause.
  const auto& gauges = optimized.metrics().gauges();
  EXPECT_TRUE(gauges.count("device.heap.heatmap.discontiguous_writes"));
  EXPECT_TRUE(gauges.count("device.heap.heatmap.contiguous_write_permille"));
  EXPECT_TRUE(gauges.count("device.dram.heatmap.write_ops"));
}

}  // namespace
}  // namespace nvmgc
