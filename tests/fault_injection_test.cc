// Fault-injection tests: the FaultInjector subsystem itself, the degradation
// paths it triggers in the collector (direct-to-NVM write-cache fallback,
// degraded sync/cache-line-store flushing), and the capstone randomized
// stress: seeded FaultPlans over multi-cycle GC runs with all three
// HeapVerifier checks asserted after every cycle — correctness under faults,
// not just survival.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/heap/heap_verifier.h"
#include "src/nvm/fault_injector.h"
#include "src/nvm/memory_device.h"
#include "src/runtime/gc_report.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/util/random.h"

namespace nvmgc {
namespace {

VmOptions FaultVmOptions(uint32_t threads = 4) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 32;
  o.heap.eden_regions = 64;
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc.gc_threads = threads;
  o.gc.use_write_cache = true;
  o.gc.use_header_map = true;
  o.gc.header_map_min_threads = 2;
  o.gc.use_non_temporal = true;
  o.gc.async_flush = true;
  o.gc.prefetch = true;
  o.gc.prefetch_header_map = true;
  return o;
}

void ExpectHeapValid(Vm* vm) {
  HeapVerifier verifier(&vm->heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm->RootSlots(), &error)) << error;
  EXPECT_TRUE(verifier.VerifyParsability(&error)) << error;
  EXPECT_TRUE(verifier.VerifyRemsetCompleteness(&error)) << error;
}

// Rooted linked chains with a shadow id model, safe against objects moving:
// every chain's head and tail are GC roots, and validation re-walks from the
// head after collections. Slot 0 is the chain link; slot 1 carries optional
// cross-links between chain heads.
class ChainWorkload {
 public:
  ChainWorkload(Vm* vm, uint64_t seed) : vm_(vm), mutator_(vm->CreateMutator()), rng_(seed) {
    klass_ = vm->heap().klasses().RegisterRegular("FaultNode", 2, 16);
  }

  void Grow(size_t nodes) {
    if (chains_.empty() || (chains_.size() < 8 && rng_.NextBool(0.25))) {
      NewChain();
      --nodes;
    }
    Chain& chain = chains_[rng_.NextBelow(chains_.size())];
    for (size_t i = 0; i < nodes; ++i) {
      const uint64_t id = next_id_++;
      const Address node = NewNode(id);  // May trigger GC: roots move first.
      const Address tail = vm_->GetRoot(chain.tail_root);
      mutator_->WriteRef(tail, 0, node);
      vm_->SetRoot(chain.tail_root, node);
      chain.ids.push_back(id);
    }
  }

  // Unreachable garbage for the collector to reclaim.
  void Churn(size_t nodes) {
    for (size_t i = 0; i < nodes; ++i) {
      NewNode(next_id_++);
    }
  }

  // Links one chain head to another through slot 1.
  void CrossLink() {
    if (chains_.size() < 2) {
      return;
    }
    const size_t src = rng_.NextBelow(chains_.size());
    size_t dst = rng_.NextBelow(chains_.size());
    if (dst == src) {
      dst = (dst + 1) % chains_.size();
    }
    mutator_->WriteRef(vm_->GetRoot(chains_[src].head_root), 1,
                       vm_->GetRoot(chains_[dst].head_root));
    cross_[chains_[src].ids.front()] = chains_[dst].ids.front();
  }

  // Re-walks every chain from its head root and checks ids and cross-links.
  void VerifyAll() {
    const Klass& k = vm_->heap().klasses().Get(klass_);
    for (const Chain& chain : chains_) {
      Address node = vm_->GetRoot(chain.head_root);
      for (size_t i = 0; i < chain.ids.size(); ++i) {
        ASSERT_NE(node, kNullAddress) << "chain truncated at index " << i;
        ASSERT_EQ(ReadId(node), chain.ids[i]);
        const Address cross = obj::LoadRef(obj::RefSlot(node, k, 1));
        const auto it = cross_.find(chain.ids[i]);
        if (it != cross_.end()) {
          ASSERT_NE(cross, kNullAddress);
          EXPECT_EQ(ReadId(cross), it->second);
        } else {
          EXPECT_EQ(cross, kNullAddress);
        }
        node = obj::LoadRef(obj::RefSlot(node, k, 0));
      }
      EXPECT_EQ(node, kNullAddress) << "chain longer than shadow model";
      EXPECT_EQ(ReadId(vm_->GetRoot(chain.tail_root)), chain.ids.back());
    }
  }

 private:
  struct Chain {
    RootHandle head_root = 0;
    RootHandle tail_root = 0;
    std::vector<uint64_t> ids;
  };

  void NewChain() {
    const uint64_t id = next_id_++;
    const Address node = NewNode(id);
    Chain chain;
    chain.head_root = vm_->NewRoot(node);
    chain.tail_root = vm_->NewRoot(node);
    chain.ids.push_back(id);
    chains_.push_back(chain);
  }

  Address NewNode(uint64_t id) {
    const Address node = mutator_->Allocate({klass_});
    const Klass& k = vm_->heap().klasses().Get(klass_);
    std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(node, k)), &id, sizeof(id));
    return node;
  }

  uint64_t ReadId(Address node) const {
    const Klass& k = vm_->heap().klasses().Get(klass_);
    uint64_t id;
    std::memcpy(&id, reinterpret_cast<const void*>(obj::PayloadOf(node, k)), sizeof(id));
    return id;
  }

  Vm* vm_;
  Mutator* mutator_;
  Random rng_;
  KlassId klass_ = 0;
  uint64_t next_id_ = 1;
  std::vector<Chain> chains_;
  std::map<uint64_t, uint64_t> cross_;
};

// --- FaultInjector unit tests ---

TEST(FaultInjectorTest, ThrottleScalesAccessCostInsideWindowOnly) {
  MemoryDevice device(MakeOptaneProfile());
  FaultPlan plan;
  plan.AddThrottle(0, 1'000'000, 0.5);
  FaultInjector injector(plan);
  device.AttachFaultInjector(&injector);

  SimClock clock;
  const AccessDescriptor d = SequentialWrite(0x1000, 4096);
  const uint64_t nominal_inside = device.CostNs(0, d);
  EXPECT_EQ(device.Access(&clock, d), 2 * nominal_inside);

  clock.SetTime(2'000'000);  // Past the window: nominal cost again.
  const uint64_t nominal_outside = device.CostNs(clock.now_ns(), d);
  EXPECT_EQ(device.Access(&clock, d), nominal_outside);

  const FaultStats stats = injector.stats();
  EXPECT_EQ(stats.throttled_accesses, 1u);
  EXPECT_EQ(stats.perturbed_accesses, 1u);
}

TEST(FaultInjectorTest, LatencySpikeMultipliesCost) {
  MemoryDevice device(MakeOptaneProfile());
  FaultPlan plan;
  plan.AddLatencySpike(0, 1'000'000, 3.0);
  FaultInjector injector(plan);
  device.AttachFaultInjector(&injector);
  SimClock clock;
  const AccessDescriptor d = RandomRead(0x2000, 64);
  const uint64_t nominal = device.CostNs(0, d);
  EXPECT_EQ(device.Access(&clock, d), 3 * nominal);
  EXPECT_EQ(injector.stats().spiked_accesses, 1u);
}

TEST(FaultInjectorTest, StallsAreDeterministicAndBounded) {
  FaultPlan plan;
  plan.seed = 123;
  plan.AddStalls(0, 1'000'000, /*probability=*/1.0, /*stall_ns=*/500, /*max_retries=*/3);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (uint64_t addr = 0x1000; addr < 0x1000 + 64 * 16; addr += 64) {
    const AccessDescriptor d = RandomRead(addr, 64);
    EXPECT_EQ(a.PerturbCost(addr, d, 100), b.PerturbCost(addr, d, 100));
  }
  const FaultStats sa = a.stats();
  EXPECT_EQ(sa.stalls_injected, 16u);  // p == 1: every access stalls.
  EXPECT_EQ(sa.stalls_injected, b.stats().stalls_injected);
  EXPECT_EQ(sa.stall_extra_ns, b.stats().stall_extra_ns);
  // Retries bounded: worst case 3 backoff rounds of 500 << k.
  EXPECT_LE(sa.stall_retries, 3u * 16u);
  EXPECT_GE(sa.stall_retries, 16u);
  EXPECT_LE(sa.stall_extra_ns, 16u * (500u + 1000u + 2000u));
}

TEST(FaultInjectorTest, DramPressureGateCountsDenials) {
  FaultPlan plan;
  plan.AddDramPressure(1000, 2000);
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.AllowRegionPairAllocation(500));
  EXPECT_FALSE(injector.AllowRegionPairAllocation(1500));
  EXPECT_FALSE(injector.AllowRegionPairAllocation(1999));
  EXPECT_TRUE(injector.AllowRegionPairAllocation(2000));  // End is exclusive.
  EXPECT_EQ(injector.stats().dram_denials, 2u);
  EXPECT_TRUE(injector.DramPressureActive(1500));
  EXPECT_FALSE(injector.DramPressureActive(2500));
}

TEST(FaultInjectorTest, OverlappingThrottlesCompound) {
  FaultPlan plan;
  plan.AddThrottle(0, 1000, 0.5).AddThrottle(500, 1500, 0.5);
  FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.BandwidthFraction(100), 0.5);
  EXPECT_DOUBLE_EQ(injector.BandwidthFraction(700), 0.25);
  EXPECT_DOUBLE_EQ(injector.BandwidthFraction(1200), 0.5);
  EXPECT_DOUBLE_EQ(injector.BandwidthFraction(2000), 1.0);
  EXPECT_TRUE(injector.ThrottleActive(700));
  EXPECT_FALSE(injector.ThrottleActive(1600));
}

TEST(FaultInjectorTest, RandomizedPlansAreSeedDeterministic) {
  const FaultPlan a = FaultPlan::Randomized(42, 10'000'000);
  const FaultPlan b = FaultPlan::Randomized(42, 10'000'000);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].kind, b.windows[i].kind);
    EXPECT_EQ(a.windows[i].start_ns, b.windows[i].start_ns);
    EXPECT_EQ(a.windows[i].end_ns, b.windows[i].end_ns);
    EXPECT_DOUBLE_EQ(a.windows[i].cost_multiplier, b.windows[i].cost_multiplier);
    EXPECT_DOUBLE_EQ(a.windows[i].bandwidth_fraction, b.windows[i].bandwidth_fraction);
  }
  // Every randomized plan guarantees both degradation triggers.
  bool has_throttle_at_zero = false;
  bool has_pressure_at_zero = false;
  for (const FaultWindow& w : a.windows) {
    has_throttle_at_zero |= w.kind == FaultKind::kBandwidthThrottle && w.Contains(0);
    has_pressure_at_zero |= w.kind == FaultKind::kDramPressure && w.Contains(0);
  }
  EXPECT_TRUE(has_throttle_at_zero);
  EXPECT_TRUE(has_pressure_at_zero);
  // Distinct seeds produce distinct schedules.
  const FaultPlan c = FaultPlan::Randomized(43, 10'000'000);
  bool differs = c.windows.size() != a.windows.size();
  for (size_t i = 0; !differs && i < a.windows.size(); ++i) {
    differs = a.windows[i].start_ns != c.windows[i].start_ns ||
              a.windows[i].end_ns != c.windows[i].end_ns;
  }
  EXPECT_TRUE(differs);
}

// --- Directed degradation tests ---

TEST(FaultDegradedModeTest, ThrottleDisablesAsyncAndNtStoresThenRecovers) {
  Vm vm(FaultVmOptions());
  ChainWorkload workload(&vm, 7);
  workload.Grow(300);

  FaultPlan plan;
  const uint64_t window_end = vm.now_ns() + 50'000'000;
  plan.AddThrottle(0, window_end, 0.25);
  FaultInjector injector(plan);
  vm.heap_device().AttachFaultInjector(&injector);
  vm.dram_device().AttachFaultInjector(&injector);

  DeviceCounters before = vm.heap_device().counters();
  const GcCycleStats degraded = vm.CollectNow();
  DeviceCounters delta = vm.heap_device().counters() - before;
  EXPECT_EQ(degraded.degraded_mode, 1u);
  EXPECT_EQ(degraded.regions_flushed_async, 0u);
  EXPECT_GT(degraded.regions_flushed_sync, 0u);  // Survivors still flushed.
  EXPECT_EQ(delta.nt_write_bytes, 0u);           // Cache-line stores only.
  workload.VerifyAll();
  ExpectHeapValid(&vm);
  EXPECT_NE(FormatGcCycle(0, degraded).find("DEGRADED"), std::string::npos);

  // Jump past the window: the next pause runs with the optimizations back on.
  vm.clock().SetTime(window_end + 1'000'000);
  workload.Grow(300);
  before = vm.heap_device().counters();
  const GcCycleStats nominal = vm.CollectNow();
  delta = vm.heap_device().counters() - before;
  EXPECT_EQ(nominal.degraded_mode, 0u);
  EXPECT_GT(delta.nt_write_bytes, 0u);  // Non-temporal write-back resumed.
  workload.VerifyAll();
  ExpectHeapValid(&vm);
  EXPECT_EQ(vm.gc_stats().degraded_cycles(), 1u);
}

TEST(FaultWriteCacheFallbackTest, DramPressureDegradesWorkersToDirectCopy) {
  Vm vm(FaultVmOptions());
  ChainWorkload workload(&vm, 11);
  workload.Grow(400);

  FaultPlan plan;
  plan.AddDramPressure(0, UINT64_MAX);
  FaultInjector injector(plan);
  vm.heap_device().AttachFaultInjector(&injector);
  vm.dram_device().AttachFaultInjector(&injector);

  const GcCycleStats cycle = vm.CollectNow();
  EXPECT_GT(cycle.cache_fault_denials, 0u);
  EXPECT_GT(cycle.cache_fallback_workers, 0u);
  EXPECT_GT(cycle.cache_fallback_bytes, 0u);
  EXPECT_EQ(cycle.cache_bytes_staged, 0u);  // Nothing went through DRAM.
  EXPECT_EQ(cycle.regions_flushed_sync + cycle.regions_flushed_async, 0u);
  workload.VerifyAll();
  ExpectHeapValid(&vm);

  const std::string line = FormatGcCycle(0, cycle);
  EXPECT_NE(line.find("cache fallback"), std::string::npos);
  EXPECT_GT(vm.gc_stats().Totals().cache_fault_denials, 0u);

  // The workload keeps running across more faulted cycles.
  for (int i = 0; i < 3; ++i) {
    workload.Grow(50);
    workload.Churn(500);
    vm.CollectNow();
    workload.VerifyAll();
    ExpectHeapValid(&vm);
  }
}

TEST(FaultReportTest, SummarySurfacesDegradationCounters) {
  GcCycleStats cycle;
  cycle.degraded_mode = 1;
  cycle.cache_fallback_workers = 2;
  cycle.cache_fault_denials = 3;
  cycle.cache_fallback_bytes = 4096;
  cycle.header_map_installs = 10;
  cycle.header_map_fault_probes = 5;
  const std::string line = FormatGcCycle(0, cycle);
  EXPECT_NE(line.find("DEGRADED"), std::string::npos);
  EXPECT_NE(line.find("cache fallback: 2 workers"), std::string::npos);
  EXPECT_NE(line.find("3 pair denials"), std::string::npos);
  EXPECT_NE(line.find("5 probes under fault"), std::string::npos);
}

// --- Capstone: randomized fault schedules across many GC cycles ---

class SeededFaultStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededFaultStress, MultiCycleGcStaysCorrectUnderRandomFaults) {
  const uint64_t seed = GetParam();
  Vm vm(FaultVmOptions());
  const FaultPlan plan = FaultPlan::Randomized(seed, /*horizon_ns=*/40'000'000);
  FaultInjector injector(plan);
  vm.heap_device().AttachFaultInjector(&injector);
  vm.dram_device().AttachFaultInjector(&injector);
  ChainWorkload workload(&vm, seed ^ 0x5eed);

  // All three heap invariants (reachability, parsability, remset
  // completeness) plus the shadow model are re-checked after every GC cycle,
  // explicit or allocation-triggered.
  size_t seen_cycles = 0;
  auto verify_new_cycles = [&] {
    if (vm.gc_count() != seen_cycles) {
      seen_cycles = vm.gc_count();
      ExpectHeapValid(&vm);
      workload.VerifyAll();
    }
  };

  workload.Grow(300);
  verify_new_cycles();
  for (int round = 0; round < 10 && !::testing::Test::HasFatalFailure(); ++round) {
    workload.Grow(60);
    if (round % 2 == 0) {
      workload.CrossLink();
    }
    for (int chunk = 0; chunk < 12; ++chunk) {
      workload.Churn(100);
      verify_new_cycles();
    }
    vm.CollectNow();
    verify_new_cycles();
  }

  EXPECT_GE(vm.gc_count(), 10u);
  const GcCycleStats totals = vm.gc_stats().Totals();
  // The guaranteed windows at t=0 force both degradation paths, and the
  // report counters must show it.
  EXPECT_GE(totals.degraded_mode, 1u);
  EXPECT_GE(totals.cache_fault_denials, 1u);
  EXPECT_GE(totals.cache_fallback_workers, 1u);
  EXPECT_GE(totals.cache_fallback_bytes, 1u);
  const FaultStats stats = injector.stats();
  EXPECT_GT(stats.perturbed_accesses, 0u);
  EXPECT_GE(stats.dram_denials, totals.cache_fault_denials);
}

// Bounded, deterministic seed matrix (also wired as a dedicated ctest entry;
// see tests/CMakeLists.txt).
INSTANTIATE_TEST_SUITE_P(BoundedSeedMatrix, SeededFaultStress,
                         ::testing::Values(0xA1u, 0xB2u, 0xC3u, 0xD4u, 0xE5u, 0xF6u));

}  // namespace
}  // namespace nvmgc
