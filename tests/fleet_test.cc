// Tests for the multi-tenant fleet layer: the contention model's tenant share
// curve, per-tenant ledger occupancy and device attribution, the bandwidth
// arbiter, the fleet pause scheduler, tenant-dimensioned observability, and
// the FleetManager end-to-end (including the satellite regression: a shared
// device's aggregate counters must equal the sum of its per-tenant counters).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/fleet/bandwidth_arbiter.h"
#include "src/fleet/fleet_manager.h"
#include "src/fleet/pause_scheduler.h"
#include "src/fleet/qos.h"
#include "src/fleet/tenant_workload.h"
#include "src/nvm/access.h"
#include "src/nvm/access_heatmap.h"
#include "src/nvm/bandwidth_ledger.h"
#include "src/nvm/bandwidth_model.h"
#include "src/nvm/device_profile.h"
#include "src/nvm/memory_device.h"
#include "src/nvm/sim_clock.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/policy/policy_engine.h"
#include "src/policy/policy_signals.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

VmOptions SmallTenantVm() {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 256;
  o.heap.dram_cache_regions = 32;
  o.heap.eden_regions = 32;
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc.gc_threads = 2;
  o.gc.use_write_cache = true;
  o.gc.use_header_map = true;
  o.gc.header_map_min_threads = 2;
  return o;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- BandwidthModel::TenantShareFraction (satellite: documented curve) ---

TEST(TenantShareTest, SingleTenantAlwaysFullShare) {
  const BandwidthModel model(MakeOptaneProfile());
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(0.3, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(1.0, 1), 1.0);
}

TEST(TenantShareTest, MatchesDocumentedCurve) {
  const DeviceProfile profile = MakeOptaneProfile();
  const BandwidthModel model(profile);
  const double k = profile.tenant_interference;
  ASSERT_GT(k, 0.0);
  // share(f, T) = min(1, max(f, 1/T)) / (1 + k (T - 1)).
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(0.5, 2), 0.5 / (1.0 + k));
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(0.9, 2), 0.9 / (1.0 + k));
  // The 1/T floor: an idle tenant still gets an equal split on demand.
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(0.0, 2), 0.5 / (1.0 + k));
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(0.1, 4), 0.25 / (1.0 + 3.0 * k));
  // Clamped above at the whole device.
  EXPECT_DOUBLE_EQ(model.TenantShareFraction(1.5, 2), 1.0 / (1.0 + k));
  // More co-tenants always means a smaller share at fixed occupancy.
  EXPECT_GT(model.TenantShareFraction(0.5, 2), model.TenantShareFraction(0.5, 3));
  EXPECT_GT(model.TenantShareFraction(0.5, 3), model.TenantShareFraction(0.5, 4));
}

TEST(TenantShareTest, DramInterferenceIsMilder) {
  const BandwidthModel optane(MakeOptaneProfile());
  const BandwidthModel dram(MakeDramProfile());
  EXPECT_GT(dram.TenantShareFraction(0.5, 2), optane.TenantShareFraction(0.5, 2));
}

// --- BandwidthLedger per-tenant occupancy ---

TEST(BandwidthLedgerTest, TenantOccupancyTracksWindowBytes) {
  BandwidthLedger ledger;
  const uint64_t now = 10 * ledger.bucket_ns();
  ledger.Charge(now, RandomRead(0x100, 1000), /*tenant=*/0);
  ledger.Charge(now, RandomWrite(0x200, 3000), /*tenant=*/1);

  const auto occ0 = ledger.SampleTenantOccupancy(now, 0);
  EXPECT_EQ(occ0.own_bytes, 1000u);
  EXPECT_EQ(occ0.total_bytes, 4000u);
  EXPECT_EQ(occ0.active_tenants, 2u);
  EXPECT_DOUBLE_EQ(occ0.own_fraction(), 0.25);

  // A tenant with no window traffic still counts itself active (it is about
  // to issue the access being costed).
  const auto occ2 = ledger.SampleTenantOccupancy(now, 2);
  EXPECT_EQ(occ2.own_bytes, 0u);
  EXPECT_EQ(occ2.total_bytes, 4000u);
  EXPECT_EQ(occ2.active_tenants, 3u);
  EXPECT_DOUBLE_EQ(occ2.own_fraction(), 0.0);
}

TEST(BandwidthLedgerTest, TenantOccupancyEmptyWindow) {
  BandwidthLedger ledger;
  const auto occ = ledger.SampleTenantOccupancy(5 * ledger.bucket_ns(), 0);
  EXPECT_EQ(occ.total_bytes, 0u);
  EXPECT_EQ(occ.active_tenants, 1u);
  EXPECT_DOUBLE_EQ(occ.own_fraction(), 1.0);  // Alone on an idle device.
}

TEST(BandwidthLedgerTest, TenantOccupancyWindowExpires) {
  BandwidthLedger ledger;
  const uint64_t now = 10 * ledger.bucket_ns();
  ledger.Charge(now, RandomRead(0x100, 4096), /*tenant=*/1);
  // Default sampling window is 3 buckets; 4 buckets later the charge is gone.
  const auto occ = ledger.SampleTenantOccupancy(now + 4 * ledger.bucket_ns(), 0);
  EXPECT_EQ(occ.total_bytes, 0u);
  EXPECT_EQ(occ.active_tenants, 1u);
}

// --- MemoryDevice tenant attribution and contention ---

TEST(MemoryDeviceTenantTest, BindingRangesAttributesTraffic) {
  MemoryDevice dev(MakeOptaneProfile());
  EXPECT_FALSE(dev.multi_tenant());
  dev.BindTenantRange(0, 0x10000, 0x10000);
  EXPECT_FALSE(dev.multi_tenant());  // One tenant is not a fleet.
  dev.BindTenantRange(1, 0x20000, 0x10000);
  EXPECT_TRUE(dev.multi_tenant());

  EXPECT_EQ(dev.TenantFor(0x10000), 0);
  EXPECT_EQ(dev.TenantFor(0x2ffff), 1);
  EXPECT_EQ(dev.TenantFor(0x99999), 0);  // Unbound addresses are tenant 0.

  SimClock clock;
  dev.Access(&clock, SequentialWrite(0x20000, 4096));
  dev.Access(&clock, RandomRead(0x10010, 64));
  EXPECT_EQ(dev.tenant_counters(1).write_bytes, 4096u);
  EXPECT_EQ(dev.tenant_counters(0).read_bytes, 64u);
  EXPECT_EQ(dev.counters().total_bytes(),
            dev.tenant_counters(0).total_bytes() + dev.tenant_counters(1).total_bytes());
}

TEST(MemoryDeviceTenantTest, CoTenantTrafficRaisesCostPerDocumentedCurve) {
  MemoryDevice dev(MakeOptaneProfile());
  dev.BindTenantRange(0, 0x100000, 0x100000);
  dev.BindTenantRange(1, 0x200000, 0x100000);

  const uint64_t now = 10'000'000;
  const AccessDescriptor d = SequentialRead(0x100000, 256 * 1024);
  const uint64_t cost_idle = dev.CostNs(now, d);

  // Co-tenant floods the sampling window with reads (reads keep the mix — and
  // thus the mix-interference term — unchanged, isolating the tenant share).
  SimClock co_clock;
  co_clock.SetTime(now);
  for (int i = 0; i < 4; ++i) {
    dev.Access(&co_clock, SequentialRead(0x200000, 1 << 20));
    co_clock.SetTime(now);
  }
  const uint64_t cost_contended = dev.CostNs(now, d);
  EXPECT_GT(cost_contended, cost_idle);

  // The charged cost must match the documented model exactly:
  // latency + bytes / (per-thread share x pattern x tenant share).
  const DeviceProfile& p = dev.profile();
  const MixState mix = dev.CurrentMix(now);
  const auto occ = dev.ledger().SampleTenantOccupancy(now, 0);
  EXPECT_EQ(occ.active_tenants, 2u);
  EXPECT_EQ(occ.own_bytes, 0u);
  double share_mbps = dev.model().TotalBandwidthMbps(mix) /
                      static_cast<double>(mix.active_threads) *
                      dev.model().PatternFraction(AccessOp::kRead, AccessPattern::kSequential);
  share_mbps *= dev.model().TenantShareFraction(occ.own_fraction(), occ.active_tenants);
  share_mbps = std::max(1.0, share_mbps);
  const double latency_ns = p.sequential_line_ns * static_cast<double>((d.bytes + 63) / 64);
  const uint64_t expected =
      static_cast<uint64_t>(latency_ns + static_cast<double>(d.bytes) * 1000.0 / share_mbps + 0.5);
  EXPECT_EQ(cost_contended, expected);

  // The busy tenant holds the occupancy, so its own accesses stay cheaper
  // than the idle tenant's equal-split floor.
  EXPECT_LT(dev.CostNs(now, SequentialRead(0x200000, 256 * 1024)), cost_contended);
}

TEST(MemoryDeviceTenantTest, SingleBoundTenantCostsMatchUnboundDevice) {
  // The contention term must never perturb a device that is not actually
  // shared — single-Vm benches depend on bit-identical costs.
  MemoryDevice unbound(MakeOptaneProfile());
  MemoryDevice bound(MakeOptaneProfile());
  bound.BindTenantRange(0, 0x100000, 0x100000);
  MemoryDevice same_tenant_twice(MakeOptaneProfile());
  same_tenant_twice.BindTenantRange(2, 0x100000, 0x80000);
  same_tenant_twice.BindTenantRange(2, 0x180000, 0x80000);
  EXPECT_FALSE(bound.multi_tenant());
  EXPECT_FALSE(same_tenant_twice.multi_tenant());

  SimClock c1, c2, c3;
  for (int i = 0; i < 8; ++i) {
    const AccessDescriptor w = SequentialWrite(0x100000 + 4096 * i, 4096);
    const AccessDescriptor r = RandomRead(0x100000 + 64 * i, 64);
    EXPECT_EQ(unbound.Access(&c1, w), bound.Access(&c2, w));
    EXPECT_EQ(unbound.Access(&c1, r), bound.Access(&c2, r));
    same_tenant_twice.Access(&c3, w);
    same_tenant_twice.Access(&c3, r);
  }
  EXPECT_EQ(c1.now_ns(), c2.now_ns());
  EXPECT_EQ(c1.now_ns(), c3.now_ns());
}

// --- BandwidthArbiter ---

ArbiterOptions StrictArbiter() {
  ArbiterOptions o;
  o.window_ns = 1'000'000;
  o.grace = 1.10;
  o.device_capacity_mbps = 0.0;  // Always contended: budgets are contracts.
  return o;
}

TEST(BandwidthArbiterTest, ServingIsNeverThrottled) {
  BandwidthArbiter arb(StrictArbiter());
  const uint32_t serving = arb.AddTenant(QosTier::kServing, 100.0);
  const uint32_t batch = arb.AddTenant(QosTier::kBatch, 100.0);
  const auto stalls = arb.EndWindow({10'000'000, 10'000'000});
  EXPECT_EQ(stalls[serving], 0u);
  EXPECT_GT(stalls[batch], 0u);
  EXPECT_EQ(arb.stats(serving).windows_throttled, 0u);
  EXPECT_EQ(arb.stats(batch).windows_throttled, 1u);
}

TEST(BandwidthArbiterTest, NoThrottleWithoutHigherTierDemand) {
  BandwidthArbiter arb(StrictArbiter());
  arb.AddTenant(QosTier::kServing, 100.0);
  const uint32_t batch = arb.AddTenant(QosTier::kBatch, 100.0);
  // Serving idle this window: throttling batch would only idle the device.
  const auto stalls = arb.EndWindow({0, 10'000'000});
  EXPECT_EQ(stalls[batch], 0u);
}

TEST(BandwidthArbiterTest, StallEqualsOvershootAtBudgetRate) {
  BandwidthArbiter arb(StrictArbiter());
  arb.AddTenant(QosTier::kServing, 500.0);
  const uint32_t batch = arb.AddTenant(QosTier::kBatch, 100.0);
  const uint32_t background = arb.AddTenant(QosTier::kBackground, 100.0);
  // Budget at 100 MB/s over a 1 ms window = 100'000 bytes; grace 1.10 puts
  // the throttle threshold at 110'000. 210'000 bytes overshoots by 100'000,
  // which takes 1 ms to move legitimately at 100 MB/s.
  EXPECT_EQ(arb.BudgetBytesPerWindow(batch), 100'000u);
  const auto stalls = arb.EndWindow({1000, 210'000, 210'000});
  EXPECT_EQ(stalls[batch], 1'000'000u);
  // Background pays the configured penalty multiple on the same overshoot.
  EXPECT_EQ(stalls[background], 2'000'000u);
}

TEST(BandwidthArbiterTest, StallIsClamped) {
  BandwidthArbiter arb(StrictArbiter());
  arb.AddTenant(QosTier::kServing, 500.0);
  const uint32_t batch = arb.AddTenant(QosTier::kBatch, 1.0);
  const auto stalls = arb.EndWindow({1000, 1'000'000'000});
  EXPECT_EQ(stalls[batch], 8'000'000u);  // max_stall_windows x window_ns.
}

TEST(BandwidthArbiterTest, UnbudgetedTenantIsExempt) {
  BandwidthArbiter arb(StrictArbiter());
  arb.AddTenant(QosTier::kServing, 500.0);
  const uint32_t batch = arb.AddTenant(QosTier::kBatch, 0.0);
  const auto stalls = arb.EndWindow({1000, 1'000'000'000});
  EXPECT_EQ(stalls[batch], 0u);
}

TEST(BandwidthArbiterTest, WorkConservingUnderCapacity) {
  ArbiterOptions o = StrictArbiter();
  o.device_capacity_mbps = 1000.0;  // 1'000'000 bytes/window capacity.
  o.contention_fraction = 0.5;
  BandwidthArbiter arb(o);
  arb.AddTenant(QosTier::kServing, 500.0);
  const uint32_t batch = arb.AddTenant(QosTier::kBatch, 100.0);
  // Fleet total 201'000 bytes < 500'000 threshold: idle bandwidth is free
  // even though batch is over budget.
  EXPECT_EQ(arb.EndWindow({1000, 200'000})[batch], 0u);
  // Past the contention threshold the same overshoot is throttled.
  EXPECT_GT(arb.EndWindow({400'000, 200'000})[batch], 0u);
}

TEST(BandwidthArbiterTest, StatsAccumulate) {
  BandwidthArbiter arb(StrictArbiter());
  arb.AddTenant(QosTier::kServing, 500.0);
  const uint32_t batch = arb.AddTenant(QosTier::kBatch, 100.0);
  arb.EndWindow({1000, 210'000});
  arb.EndWindow({1000, 210'000});
  arb.EndWindow({1000, 50'000});
  EXPECT_EQ(arb.windows_closed(), 3u);
  EXPECT_EQ(arb.stats(batch).windows_throttled, 2u);
  EXPECT_EQ(arb.stats(batch).total_stall_ns, 2'000'000u);
  EXPECT_EQ(arb.stats(batch).total_bytes, 470'000u);
}

// --- FleetPauseScheduler ---

TEST(PauseSchedulerTest, MajorDefersOutOfCoTenantDrain) {
  FleetPauseScheduler sched(PauseSchedulerOptions{});
  // Tenant 0's pause [1.0ms, 1.5ms) ended with a 200us write-back drain:
  // drain window [1.3ms, 1.5ms).
  sched.OnPauseFinished(0, 1'000'000, 1'500'000, 200'000);

  // Inside the drain: defer to its end.
  EXPECT_EQ(sched.DeferNs(1, GcKind::kMajor, 1'350'000), 150'000u);
  // Just ahead of the drain, within the leading margin: also defer.
  EXPECT_EQ(sched.DeferNs(1, GcKind::kMajor, 1'250'000), 250'000u);
  // Clear of the margin: no deferral.
  EXPECT_EQ(sched.DeferNs(1, GcKind::kMajor, 1'150'000), 0u);
  // Past the drain: no deferral.
  EXPECT_EQ(sched.DeferNs(1, GcKind::kMajor, 1'500'000), 0u);
  // A tenant never defers for its own drain window.
  EXPECT_EQ(sched.DeferNs(0, GcKind::kMajor, 1'350'000), 0u);
  // Minor pauses are not deferred by default.
  EXPECT_EQ(sched.DeferNs(1, GcKind::kMinor, 1'350'000), 0u);
  EXPECT_EQ(sched.deferrals(), 2u);
  EXPECT_EQ(sched.total_defer_ns(), 400'000u);
}

TEST(PauseSchedulerTest, DeferralIsBounded) {
  FleetPauseScheduler sched(PauseSchedulerOptions{});
  sched.OnPauseFinished(0, 10'000'000, 20'000'000, 9'000'000);
  // 8.5 ms of drain remain, but deferral is capped: the requesting tenant's
  // heap is near exhaustion, so the pause is delayed, never denied.
  EXPECT_EQ(sched.DeferNs(1, GcKind::kMajor, 11'500'000),
            PauseSchedulerOptions{}.max_defer_ns);
}

TEST(PauseSchedulerTest, ZeroWritebackLeavesNoWindow) {
  FleetPauseScheduler sched(PauseSchedulerOptions{});
  sched.OnPauseFinished(0, 1'000'000, 1'500'000, 0);
  EXPECT_EQ(sched.DeferNs(1, GcKind::kMajor, 1'400'000), 0u);
}

// --- AccessHeatmap multi-arena (shared fleet device) ---

TEST(AccessHeatmapTest, MultipleArenasGetDisjointSlots) {
  AccessHeatmap h;
  h.Configure(0x1000, 0x100, 4);
  EXPECT_EQ(h.arena_count(), 1u);
  EXPECT_EQ(h.AddArena(0x10000, 0x100, 4), 4u);  // First slot of arena 2.
  EXPECT_EQ(h.arena_count(), 2u);
  EXPECT_EQ(h.regions(), 8u);

  h.Charge(SequentialWrite(0x1000, 64));
  h.Charge(SequentialWrite(0x10150, 64));  // Arena 2, region 1 -> slot 5.
  h.Charge(SequentialWrite(0x5000, 64));   // Outside every arena: ignored.
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap[0].write_bytes, 64u);
  EXPECT_EQ(snap[5].write_bytes, 64u);
  uint64_t total = 0;
  for (const auto& s : snap) {
    total += s.write_bytes;
  }
  EXPECT_EQ(total, 128u);

  // Configure drops every arena and starts over.
  h.Configure(0x1000, 0x100, 2);
  EXPECT_EQ(h.arena_count(), 1u);
  EXPECT_EQ(h.regions(), 2u);
}

// --- MetricsRegistry::MergeFrom (satellite: tenant metric prefix) ---

TEST(MetricsMergeTest, MergeFromPrefixesEveryName) {
  MetricsRegistry src;
  src.AddCounter("alloc.bytes", 5);
  src.SetGauge("heap.free_regions", 7);
  src.RecordHistogram("serving.op_latency_ns", 100);
  src.RecordHistogram("serving.op_latency_ns", 300);
  PauseSnapshot ps;
  ps.id = 3;
  ps.start_ns = 42;
  ps.values["gc.pause_ns"] = 11;
  src.RecordPause(ps);

  MetricsRegistry dst;
  dst.AddCounter("tenant.1.alloc.bytes", 2);
  dst.MergeFrom(src, "tenant.1.");

  EXPECT_EQ(dst.counter("tenant.1.alloc.bytes"), 7u);  // Counters add.
  EXPECT_EQ(dst.gauges().at("tenant.1.heap.free_regions"), 7u);
  EXPECT_EQ(dst.Summary("tenant.1.serving.op_latency_ns").count, 2u);
  // RecordPause mirrored the value into src's lifetime counters; the merge
  // carries it over exactly once.
  EXPECT_EQ(dst.counter("tenant.1.gc.pause_ns"), 11u);
  ASSERT_EQ(dst.pauses().size(), 1u);
  EXPECT_EQ(dst.pauses()[0].id, 3u);
  EXPECT_EQ(dst.pauses()[0].start_ns, 42u);
  EXPECT_EQ(dst.pauses()[0].values.at("tenant.1.gc.pause_ns"), 11u);
}

// --- Flight recorder tenant tagging (satellite) ---

TEST(FlightRecorderTenantTest, IncidentFilesCarryTenantTag) {
  FlightRecorderOptions options;
  options.tenant = "cass";
  FlightRecorder fr(options);
  FlightPauseRecord record;
  record.pause_id = 0;
  record.stats.pause_ns = 12345;
  fr.RecordPause(std::move(record));

  const std::string dir = ::testing::TempDir() + "/fr_tenant_tag";
  std::filesystem::create_directories(dir);
  const std::string path = fr.Dump(FrTrigger::kExplicit, dir);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("incident-cass-"), std::string::npos);
  const std::string body = ReadFile(path);
  EXPECT_NE(body.find("\"tenant\""), std::string::npos);
  EXPECT_NE(body.find("cass"), std::string::npos);
}

// --- Shared-device Vms ---

TEST(SharedDeviceVmTest, InterleavedVmsKeepCounterSumInvariant) {
  // The satellite regression: with two Vms interleaving traffic on one
  // device, the aggregate ledger must equal the sum of per-tenant ledgers.
  MemoryDevice device(MakeOptaneProfile());

  VmOptions a = SmallTenantVm();
  a.shared_heap_device = &device;
  a.tenant_id = 0;
  VmOptions b = SmallTenantVm();
  b.shared_heap_device = &device;
  b.tenant_id = 1;

  Vm vm_a(a);
  Vm vm_b(b);
  EXPECT_TRUE(device.multi_tenant());

  Mutator* ma = vm_a.CreateMutator();
  Mutator* mb = vm_b.CreateMutator();
  const KlassId ka = vm_a.heap().klasses().RegisterByteArray("A");
  const KlassId kb = vm_b.heap().klasses().RegisterByteArray("B");
  for (int i = 0; i < 2000; ++i) {
    ma->WritePayload(ma->Allocate({ka, 512}), 512);
    mb->WritePayload(mb->Allocate({kb, 2048}), 2048);
  }
  vm_a.CollectNow();
  vm_b.CollectNow();

  const DeviceCounters total = device.counters();
  DeviceCounters sum;
  for (uint32_t t = 0; t < MemoryDevice::kMaxTenants; ++t) {
    const DeviceCounters tc = device.tenant_counters(static_cast<uint8_t>(t));
    sum.read_bytes += tc.read_bytes;
    sum.write_bytes += tc.write_bytes;
    sum.nt_write_bytes += tc.nt_write_bytes;
    sum.read_ops += tc.read_ops;
    sum.write_ops += tc.write_ops;
  }
  EXPECT_EQ(total.read_bytes, sum.read_bytes);
  EXPECT_EQ(total.write_bytes, sum.write_bytes);
  EXPECT_EQ(total.nt_write_bytes, sum.nt_write_bytes);
  EXPECT_EQ(total.read_ops, sum.read_ops);
  EXPECT_EQ(total.write_ops, sum.write_ops);
  // Both tenants actually contributed.
  EXPECT_GT(device.tenant_counters(0).total_bytes(), 0u);
  EXPECT_GT(device.tenant_counters(1).total_bytes(), 0u);
}

TEST(SharedDeviceVmTest, FlightRecorderTenantAutoFilled) {
  MemoryDevice device(MakeOptaneProfile());
  VmOptions o = SmallTenantVm();
  o.shared_heap_device = &device;
  o.tenant_id = 1;
  Vm vm(o);
  EXPECT_EQ(vm.flight_recorder().options().tenant, "t1");

  VmOptions labeled = SmallTenantVm();
  labeled.shared_heap_device = &device;
  labeled.tenant_id = 2;
  labeled.tenant_label = "cassandra";
  Vm vm2(labeled);
  EXPECT_EQ(vm2.flight_recorder().options().tenant, "cassandra");
}

// --- FleetManager end-to-end ---

TEST(FleetManagerTest, MixedFleetRunsAndExportsTenantObservability) {
  FleetOptions fleet_options;
  FleetManager fleet(fleet_options);

  FleetTenantSpec serving;
  serving.name = "serving";
  serving.tier = QosTier::kServing;
  serving.bandwidth_budget_mbps = 800.0;
  serving.vm = SmallTenantVm();
  serving.vm.trace_gc = true;

  FleetTenantSpec batch;
  batch.name = "batch";
  batch.tier = QosTier::kBatch;
  batch.bandwidth_budget_mbps = 300.0;
  batch.vm = SmallTenantVm();
  batch.vm.trace_gc = true;

  FleetTenantSpec background;
  background.name = "background";
  background.tier = QosTier::kBackground;
  background.bandwidth_budget_mbps = 150.0;
  background.vm = SmallTenantVm();
  background.vm.trace_gc = true;

  const uint32_t s = fleet.AddTenant(serving);
  const uint32_t b = fleet.AddTenant(batch);
  const uint32_t g = fleet.AddTenant(background);
  ASSERT_EQ(fleet.tenant_count(), 3u);

  ServingConfig sc;
  sc.rows = 2048;
  sc.row_bytes = 128;
  sc.total_requests = 4000;
  sc.offered_kqps = 80.0;
  auto serving_driver = std::make_unique<ServingDriver>(&fleet.vm(s), sc);
  ServingDriver* serving_ptr = serving_driver.get();

  BatchConfig bc;
  bc.rows = 4096;
  bc.row_bytes = 256;
  bc.total_tasks = 60;
  auto batch_driver = std::make_unique<BatchDriver>(&fleet.vm(b), bc);
  BatchDriver* batch_ptr = batch_driver.get();

  BackgroundConfig gc_cfg;
  gc_cfg.total_allocation_bytes = 6 * 1024 * 1024;
  gc_cfg.live_window_bytes = 512 * 1024;
  auto background_driver = std::make_unique<BackgroundDriver>(&fleet.vm(g), gc_cfg);
  BackgroundDriver* background_ptr = background_driver.get();

  fleet.SetDriver(s, std::move(serving_driver));
  fleet.SetDriver(b, std::move(batch_driver));
  fleet.SetDriver(g, std::move(background_driver));
  fleet.Run();

  EXPECT_EQ(serving_ptr->served(), sc.total_requests);
  EXPECT_EQ(batch_ptr->tasks_done(), bc.total_tasks);
  EXPECT_GE(background_ptr->allocated_bytes(), gc_cfg.total_allocation_bytes);
  EXPECT_TRUE(fleet.device().multi_tenant());
  EXPECT_GT(fleet.arbiter().windows_closed(), 0u);

  // Tenant-prefixed metrics roll-up.
  MetricsRegistry out;
  fleet.ExportMetrics(&out);
  EXPECT_EQ(out.gauges().at("fleet.tenants"), 3u);
  EXPECT_EQ(out.Summary("tenant.0.serving.op_latency_ns").count, sc.total_requests);
  EXPECT_GT(out.gauges().at("fleet.tenant.2.device_bytes"), 0u);
  // The background tenant churned 6 MB through a 2 MB eden: it must have
  // collected, and its pause stream must appear under its tenant prefix.
  EXPECT_GT(fleet.vm(g).gc_count(), 0u);
  EXPECT_GT(out.counter("tenant.2.gc.pause_ns"), 0u);

  // One Chrome-trace process per tenant.
  const std::string trace_path = ::testing::TempDir() + "/fleet_trace.json";
  ASSERT_TRUE(fleet.WriteChromeTrace(trace_path));
  const std::string trace = ReadFile(trace_path);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(trace.find("0.serving"), std::string::npos);
  EXPECT_NE(trace.find("2.background"), std::string::npos);
}

TEST(FleetManagerTest, ArbitrationRestoresStarvedServingTenant) {
  // The satellite integration test: a background bandwidth hog starves a
  // serving tenant; the arbiter throttles the hog back to its budget and the
  // serving tenant's latency recovers relative to the uncoordinated fleet.
  auto run_fleet = [](bool coordinated, HistogramSummary* serving_latency,
                      uint64_t* hog_throttled_windows) {
    FleetOptions options;
    options.arbitration = coordinated;
    options.pause_coordination = coordinated;

    FleetManager fleet(options);
    FleetTenantSpec serving;
    serving.name = "serving";
    serving.tier = QosTier::kServing;
    serving.bandwidth_budget_mbps = 500.0;
    serving.vm = SmallTenantVm();
    FleetTenantSpec hog;
    hog.name = "hog";
    hog.tier = QosTier::kBackground;
    hog.bandwidth_budget_mbps = 120.0;
    hog.vm = SmallTenantVm();
    const uint32_t s = fleet.AddTenant(serving);
    const uint32_t h = fleet.AddTenant(hog);

    ServingConfig sc;
    sc.rows = 2048;
    sc.row_bytes = 128;
    sc.total_requests = 6000;
    sc.offered_kqps = 120.0;
    auto serving_driver = std::make_unique<ServingDriver>(&fleet.vm(s), sc);
    ServingDriver* serving_ptr = serving_driver.get();

    BackgroundConfig hc;
    hc.total_allocation_bytes = 16 * 1024 * 1024;
    hc.allocs_per_step = 256;
    hc.touches_per_alloc = 1.0;
    hc.live_window_bytes = 1024 * 1024;
    auto hog_driver = std::make_unique<BackgroundDriver>(&fleet.vm(h), hc);

    fleet.SetDriver(s, std::move(serving_driver));
    fleet.SetDriver(h, std::move(hog_driver));
    fleet.Run();

    *serving_latency = serving_ptr->LatencySummary();
    *hog_throttled_windows = fleet.arbiter().stats(h).windows_throttled;
  };

  HistogramSummary coordinated_latency, uncoordinated_latency;
  uint64_t coordinated_throttles = 0, uncoordinated_throttles = 0;
  run_fleet(true, &coordinated_latency, &coordinated_throttles);
  run_fleet(false, &uncoordinated_latency, &uncoordinated_throttles);

  ASSERT_EQ(coordinated_latency.count, 6000u);
  ASSERT_EQ(uncoordinated_latency.count, 6000u);
  EXPECT_GT(coordinated_throttles, 0u);   // The hog actually got throttled.
  EXPECT_EQ(uncoordinated_throttles, 0u);  // Baseline never arbitrates.
  // Throttling the hog gives the serving tenant its bandwidth back.
  EXPECT_LT(coordinated_latency.mean, uncoordinated_latency.mean);
  EXPECT_LE(coordinated_latency.p99, uncoordinated_latency.p99);
}

// --- Fleet throttle feedback into the adaptive policy engine ---

// A pause that triggers no other rule (cache half full, no device-bound read
// phase), with an injected fleet stall / interval pair.
PolicySignals ThrottledPauseSignals(uint64_t pause_id, const PolicyEngine& engine,
                                    uint64_t stall_ns, uint64_t interval_ns) {
  PolicySignals s;
  s.pause_id = pause_id;
  s.pause_ns = 1'000'000;
  s.read_phase_ns = 800'000;
  s.writeback_phase_ns = 200'000;
  s.bytes_copied = 4 * 1024 * 1024;
  s.objects_copied = 1000;
  s.refs_processed = 3000;
  s.cache_bytes_staged = engine.tuning().write_cache_capacity_bytes / 2;
  s.fleet_stall_ns = stall_ns;
  s.fleet_interval_ns = interval_ns;
  return s;
}

TEST(FleetPolicyTest, SustainedThrottleShedsGcThreads) {
  const GcOptions options = AdaptiveOptions(CollectorKind::kG1, 8);
  PolicyEngine engine(options, 64 * 1024 * 1024, 24 * 1024 * 1024, MakeOptaneProfile());
  uint64_t pause = 1;
  for (uint32_t i = 0; i < options.adaptive.warmup_pauses; ++i, ++pause) {
    ASSERT_EQ(engine.OnPauseEnd(ThrottledPauseSignals(pause, engine, 0, 1'000'000)), 0u);
  }
  const uint32_t before = engine.tuning().active_gc_threads;

  // 20% of the interval stalled: under the 25% bar, no decision.
  EXPECT_EQ(engine.OnPauseEnd(ThrottledPauseSignals(pause++, engine, 200'000, 1'000'000)), 0u);
  EXPECT_EQ(engine.tuning().active_gc_threads, before);

  // 40% stalled: the tenant sheds copy parallelism.
  EXPECT_EQ(engine.OnPauseEnd(ThrottledPauseSignals(pause++, engine, 400'000, 1'000'000)), 1u);
  EXPECT_LT(engine.tuning().active_gc_threads, before);
  ASSERT_FALSE(engine.decisions().empty());
  const PolicyDecision& d = engine.decisions().back();
  EXPECT_EQ(d.knob, PolicyKnob::kGcThreads);
  EXPECT_NE(d.reason.find("fleet"), std::string::npos);

  // Cooldown paces further shrinks: the very next throttled pause holds the
  // thread count (other knobs may cascade, e.g. the header-map gate).
  const uint32_t after = engine.tuning().active_gc_threads;
  engine.OnPauseEnd(ThrottledPauseSignals(pause++, engine, 400'000, 1'000'000));
  EXPECT_EQ(engine.tuning().active_gc_threads, after);

  // A stall with no interval (first-pause edge) divides to zero, not NaN.
  PolicySignals edge = ThrottledPauseSignals(pause, engine, 400'000, 0);
  EXPECT_EQ(edge.fleet_stall_fraction(), 0.0);
}

TEST(FleetPolicyTest, FleetManagerFeedsStallSignalToTenantVms) {
  // End-to-end wiring: a throttled tenant's Vm accumulates the stall the
  // arbiter injected (what CollectNow hands PolicySignals).
  FleetOptions options;
  options.arbitration = true;
  options.pause_coordination = false;
  FleetManager fleet(options);

  FleetTenantSpec serving;
  serving.name = "svc";
  serving.tier = QosTier::kServing;
  serving.bandwidth_budget_mbps = 500.0;
  serving.vm = SmallTenantVm();
  FleetTenantSpec hog;
  hog.name = "hog";
  hog.tier = QosTier::kBackground;
  hog.bandwidth_budget_mbps = 120.0;
  hog.vm = SmallTenantVm();
  const uint32_t s = fleet.AddTenant(serving);
  const uint32_t g = fleet.AddTenant(hog);

  ServingConfig sc;
  sc.rows = 2048;
  sc.row_bytes = 128;
  sc.total_requests = 6000;
  sc.offered_kqps = 120.0;
  fleet.SetDriver(s, std::make_unique<ServingDriver>(&fleet.vm(s), sc));
  BackgroundConfig bc;
  bc.total_allocation_bytes = 16 * 1024 * 1024;
  bc.allocs_per_step = 256;
  bc.touches_per_alloc = 1.0;
  bc.live_window_bytes = 1024 * 1024;
  fleet.SetDriver(g, std::make_unique<BackgroundDriver>(&fleet.vm(g), bc));
  fleet.Run();

  ASSERT_GT(fleet.arbiter().stats(g).total_stall_ns, 0u);
  EXPECT_EQ(fleet.vm(g).fleet_stall_ns(), fleet.arbiter().stats(g).total_stall_ns);
  EXPECT_EQ(fleet.vm(s).fleet_stall_ns(), 0u);  // Serving is never throttled.
}

}  // namespace
}  // namespace nvmgc
