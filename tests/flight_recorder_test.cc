// Tests for the GC flight recorder and the allocation-site lifetime profiler
// (src/obs/flight_recorder.h, src/obs/alloc_site.h): trigger evaluation and
// priority, ring-buffer bounds, incident dump files, the birth/survival/death
// bookkeeping of the site profiler, the end-to-end Vm wiring (site tags ride
// the mark word through evacuation), and the crash-injector arming.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/alloc_site.h"
#include "src/obs/flight_recorder.h"
#include "src/recovery/crash_injector.h"
#include "src/runtime/gc_report.h"
#include "src/runtime/global_root.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

// --- AllocSiteProfiler ---

TEST(AllocSiteProfilerTest, RegisterDedupsAndCaps) {
  AllocSiteProfiler p;
  EXPECT_EQ(p.site_count(), 1u);  // Site 0 "(untagged)" always exists.
  const AllocSiteId a = p.RegisterSite("app.node");
  const AllocSiteId b = p.RegisterSite("app.array");
  EXPECT_NE(a, kUntaggedSite);
  EXPECT_NE(b, a);
  EXPECT_EQ(p.RegisterSite("app.node"), a);  // Dedup by name.
  for (size_t i = p.site_count(); i < AllocSiteProfiler::kMaxSites; ++i) {
    EXPECT_NE(p.RegisterSite("filler." + std::to_string(i)), kUntaggedSite);
  }
  // Table full: further registrations degrade to the untagged site.
  EXPECT_EQ(p.RegisterSite("one.too.many"), kUntaggedSite);
  EXPECT_EQ(p.site_count(), AllocSiteProfiler::kMaxSites);
}

TEST(AllocSiteProfilerTest, InfersDeathsFromBirthsMinusSurvivals) {
  AllocSiteProfiler p;
  const AllocSiteId site = p.RegisterSite("app.node");
  for (int i = 0; i < 10; ++i) {
    p.OnBirth(site, 100);
  }
  // Pause 1: 4 of the 10 age-0 objects get copied, 1 of those tenures.
  std::vector<SiteWorkerDelta> merged(p.site_count());
  merged[site].copied_objects[0] = 4;
  merged[site].copied_bytes[0] = 400;
  merged[site].promoted_objects[0] = 1;
  merged[site].promoted_bytes[0] = 100;
  merged[site].nvm_copy_bytes = 150;
  p.OnCycleEnd(merged, /*is_major=*/false);

  const SiteStats& s = p.sites()[site];
  EXPECT_EQ(s.allocated_objects, 10u);
  EXPECT_EQ(s.allocated_bytes, 1000u);
  EXPECT_EQ(s.survived_objects, 4u);
  EXPECT_EQ(s.promoted_objects, 1u);
  EXPECT_EQ(s.died_objects, 6u);  // 10 born - 4 copied.
  EXPECT_EQ(s.died_bytes, 600u);
  EXPECT_EQ(s.lifetime.count(), 6u);
  EXPECT_EQ(s.lifetime.max(), 0u);  // All deaths at age 0.
  // Survivors that did not tenure aged up to 1; the promoted one went old.
  EXPECT_EQ(s.pop_objects[0], 0u);
  EXPECT_EQ(s.pop_objects[1], 3u);
  EXPECT_EQ(s.old_pop_objects, 1u);
  EXPECT_DOUBLE_EQ(s.TenuringRate(), 100.0 / 1000.0);
  EXPECT_DOUBLE_EQ(s.NvmWriteAmplification(), 150.0 / 1000.0);

  // The per-pause digest carries the same numbers.
  ASSERT_EQ(p.last_cycle().size(), 1u);
  const SitePauseDelta& d = p.last_cycle()[0];
  EXPECT_EQ(d.site, site);
  EXPECT_EQ(d.name, "app.node");
  EXPECT_EQ(d.survived_objects, 4u);
  EXPECT_EQ(d.died_objects, 6u);
  EXPECT_EQ(d.nvm_copy_bytes, 150u);

  // Pause 2: 2 of the 3 age-1 survivors copied again; 1 died at age 1.
  std::vector<SiteWorkerDelta> merged2(p.site_count());
  merged2[site].copied_objects[1] = 2;
  merged2[site].copied_bytes[1] = 200;
  p.OnCycleEnd(merged2, /*is_major=*/false);
  EXPECT_EQ(p.sites()[site].died_objects, 7u);
  EXPECT_EQ(p.sites()[site].pop_objects[2], 2u);
  EXPECT_EQ(p.sites()[site].lifetime.max(), 1u);
}

TEST(AllocSiteProfilerTest, MajorCycleSettlesTenuredDeathsAtSentinelAge) {
  AllocSiteProfiler p;
  const AllocSiteId site = p.RegisterSite("app.cache");
  for (int i = 0; i < 4; ++i) {
    p.OnBirth(site, 64);
  }
  std::vector<SiteWorkerDelta> minor(p.site_count());
  minor[site].copied_objects[0] = 4;
  minor[site].copied_bytes[0] = 256;
  minor[site].promoted_objects[0] = 4;
  minor[site].promoted_bytes[0] = 256;
  p.OnCycleEnd(minor, /*is_major=*/false);
  ASSERT_EQ(p.sites()[site].old_pop_objects, 4u);

  // Major recompacts only 1 of the 4 tenured objects: 3 died after tenuring.
  std::vector<SiteWorkerDelta> major(p.site_count());
  major[site].old_copy_objects = 1;
  major[site].old_copy_bytes = 64;
  p.OnCycleEnd(major, /*is_major=*/true);
  const SiteStats& s = p.sites()[site];
  EXPECT_EQ(s.died_objects, 3u);
  EXPECT_EQ(s.old_pop_objects, 1u);
  EXPECT_EQ(s.lifetime.max(), kDiedTenuredAge);
}

TEST(AllocSiteProfilerTest, LargeAllocationsNeverJoinTheCopiedPopulation) {
  AllocSiteProfiler p;
  const AllocSiteId site = p.RegisterSite("app.blob");
  p.OnLargeAlloc(site, 1 << 20);
  EXPECT_EQ(p.sites()[site].large_objects, 1u);
  EXPECT_EQ(p.sites()[site].pop_objects[0], 0u);
  // A pause that copies nothing must not infer a death for the large object.
  p.OnCycleEnd(std::vector<SiteWorkerDelta>(p.site_count()), false);
  EXPECT_EQ(p.sites()[site].died_objects, 0u);
}

// --- FlightRecorder triggers and retention ---

FlightPauseRecord MakePause(uint64_t id, uint64_t pause_ns) {
  FlightPauseRecord r;
  r.pause_id = id;
  r.stats.start_ns = id * 10000;
  r.stats.pause_ns = pause_ns;
  r.stats.read_phase_ns = pause_ns / 2;
  r.stats.writeback_phase_ns = pause_ns - pause_ns / 2;
  return r;
}

TEST(FlightRecorderTest, RingRetainsOnlyTheLastNPauses) {
  FlightRecorderOptions o;
  o.retain_pauses = 4;
  FlightRecorder fr(o);
  for (uint64_t i = 0; i < 10; ++i) {
    fr.RecordPause(MakePause(i, 100));
  }
  EXPECT_EQ(fr.pauses_recorded(), 10u);
  ASSERT_EQ(fr.pauses().size(), 4u);
  EXPECT_EQ(fr.pauses().front().pause_id, 6u);
  EXPECT_EQ(fr.pauses().back().pause_id, 9u);
}

TEST(FlightRecorderTest, DisabledRecorderIsANoOp) {
  FlightRecorderOptions o;
  o.enabled = false;
  o.pause_threshold_ns = 1;
  FlightRecorder fr(o);
  EXPECT_EQ(fr.RecordPause(MakePause(0, 1000)), FrTrigger::kNone);
  EXPECT_EQ(fr.pauses_recorded(), 0u);
  EXPECT_EQ(fr.Dump(FrTrigger::kExplicit, testing::TempDir()), "");
}

TEST(FlightRecorderTest, PauseThresholdTriggerFires) {
  FlightRecorderOptions o;
  o.pause_threshold_ns = 1000;
  FlightRecorder fr(o);
  EXPECT_EQ(fr.RecordPause(MakePause(0, 999)), FrTrigger::kNone);
  EXPECT_EQ(fr.RecordPause(MakePause(1, 2000)), FrTrigger::kPauseThreshold);
  EXPECT_EQ(fr.last_trigger().pause_id, 1u);
  EXPECT_EQ(fr.last_trigger().observed_ns, 2000u);
  EXPECT_EQ(fr.last_trigger().threshold_ns, 1000u);
}

TEST(FlightRecorderTest, P99OutlierNeedsHistoryAndExcludesItself) {
  FlightRecorderOptions o;  // pause_threshold_ns=0: only the relative trigger.
  FlightRecorder fr(o);
  // One early outlier cannot fire: the window is shorter than p99_min_history.
  EXPECT_EQ(fr.RecordPause(MakePause(0, 100000)), FrTrigger::kNone);
  for (uint64_t i = 1; i <= o.p99_min_history; ++i) {
    EXPECT_EQ(fr.RecordPause(MakePause(i, 100)), FrTrigger::kNone);
  }
  // The early outlier has aged into the p99 of a 17-deep window at index 15 —
  // still 100000 at p99? nth index (17-1)*99/100 = 15 -> 100000 only if it is
  // the max; so push enough cheap pauses to flush it out of p99 first.
  for (uint64_t i = 0; i < 120; ++i) {
    fr.RecordPause(MakePause(100 + i, 100));
  }
  EXPECT_EQ(fr.TrailingP99(), 100u);
  // Now 1000 > 3.0 * 100: fires. The pause is judged against the window
  // *before* it was added, so a single spike cannot raise its own bar.
  EXPECT_EQ(fr.RecordPause(MakePause(999, 1000)), FrTrigger::kP99Outlier);
  EXPECT_EQ(fr.last_trigger().threshold_ns, 300u);
}

TEST(FlightRecorderTest, StateTriggersAndPriority) {
  FlightRecorderOptions o;
  o.pause_threshold_ns = 10000;
  FlightRecorder fr(o);

  FlightPauseRecord degraded = MakePause(0, 100);
  degraded.degraded = true;
  EXPECT_EQ(fr.RecordPause(std::move(degraded)), FrTrigger::kDegraded);

  FlightPauseRecord retreat = MakePause(1, 100);
  retreat.retreat = true;
  PolicyDecision d;
  d.retreat = true;
  d.reason = "fence stall";
  retreat.decisions.push_back(d);
  EXPECT_EQ(fr.RecordPause(std::move(retreat)), FrTrigger::kRetreat);
  EXPECT_NE(fr.last_trigger().detail.find("fence stall"), std::string::npos);

  FlightPauseRecord overflow = MakePause(2, 100);
  overflow.stats.survivor_overflow_bytes = 4096;
  EXPECT_EQ(fr.RecordPause(std::move(overflow)), FrTrigger::kSurvivorOverflow);
  EXPECT_EQ(fr.last_trigger().observed_ns, 4096u);

  // Absolute threshold outranks the state triggers.
  FlightPauseRecord both = MakePause(3, 20000);
  both.degraded = true;
  EXPECT_EQ(fr.RecordPause(std::move(both)), FrTrigger::kPauseThreshold);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FlightRecorderTest, AutoDumpWritesIncidentAndRespectsBudget) {
  const std::string dir = testing::TempDir() + "/fr_auto_dump";
  std::filesystem::remove_all(dir);
  FlightRecorderOptions o;
  o.pause_threshold_ns = 1000;
  o.dump_dir = dir;
  o.max_dumps = 1;
  FlightRecorder fr(o);
  EXPECT_EQ(fr.RecordPause(MakePause(0, 2000)), FrTrigger::kPauseThreshold);
  EXPECT_EQ(fr.incidents(), 1u);
  ASSERT_FALSE(fr.last_dump_path().empty());
  const std::string json = ReadFile(fr.last_dump_path());
  EXPECT_NE(json.find("\"schema\":\"nvmgc.incident.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"pause_threshold\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_file\":\"incident-0.trace.json\""), std::string::npos);
  const std::string trace = ReadFile(dir + "/incident-0.trace.json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"gc.pause\""), std::string::npos);

  // Budget exhausted: the trigger still reports, but no second auto dump.
  EXPECT_EQ(fr.RecordPause(MakePause(1, 3000)), FrTrigger::kPauseThreshold);
  EXPECT_EQ(fr.incidents(), 1u);
  // Explicit dumps bypass the auto budget and keep their own sequence.
  const std::string explicit_path = fr.Dump(FrTrigger::kExplicit);
  ASSERT_FALSE(explicit_path.empty());
  EXPECT_EQ(fr.incidents(), 2u);
  EXPECT_NE(ReadFile(explicit_path).find("\"kind\":\"explicit\""), std::string::npos);
}

TEST(FlightRecorderTest, DumpWithoutDirectoryOrPausesReturnsEmpty) {
  FlightRecorder fr(FlightRecorderOptions{});
  EXPECT_EQ(fr.Dump(FrTrigger::kExplicit), "");  // No pauses yet.
  fr.RecordPause(MakePause(0, 100));
  EXPECT_EQ(fr.Dump(FrTrigger::kExplicit), "");  // No directory configured.
  EXPECT_NE(fr.Dump(FrTrigger::kExplicit, testing::TempDir() + "/fr_override"), "");
}

// --- End-to-end Vm wiring ---

VmOptions SmallVm() {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 256;
  o.heap.dram_cache_regions = 32;
  o.heap.eden_regions = 32;
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc = AllOptimizationsOptions(CollectorKind::kG1, 4);
  return o;
}

TEST(FlightRecorderVmTest, SiteTagsSurviveEvacuationAndDeathsAreInferred) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 64);
  const KlassId refs = vm.heap().klasses().RegisterRefArray("Object[]");
  const AllocSiteId site = vm.RegisterAllocSite("test.node");
  ASSERT_NE(site, kUntaggedSite);

  // 64 tagged nodes; half rooted (survive), half garbage (die at age 0).
  GlobalRoot table(vm, m->Allocate({refs, 32}));
  for (size_t i = 0; i < 64; ++i) {
    const Address obj = m->Allocate({node, 0, false, site});
    if (i % 2 == 0) {
      m->WriteRef(table.Get(), i / 2, obj);
    }
  }
  vm.CollectNow();

  const SiteStats& s = vm.site_profiler().sites()[site];
  EXPECT_EQ(s.allocated_objects, 64u);
  EXPECT_EQ(s.survived_objects, 32u);
  EXPECT_EQ(s.died_objects, 32u);
  EXPECT_EQ(s.lifetime.count(), 32u);
  EXPECT_GT(s.nvm_copy_bytes + s.staged_bytes, 0u);  // NVM heap: copies hit
                                                     // NVM or the write cache.

  // Second pause: the rooted half survives again at age 1, nothing new dies.
  vm.CollectNow();
  EXPECT_EQ(vm.site_profiler().sites()[site].survived_objects, 64u);

  // The recorder retained both pauses with the site attribution attached.
  const FlightRecorder& fr = vm.flight_recorder();
  EXPECT_EQ(fr.pauses_recorded(), vm.gc_count());
  ASSERT_EQ(fr.pauses().size(), 2u);
  bool site_seen = false;
  for (const SitePauseDelta& d : fr.pauses().front().sites) {
    site_seen |= d.site == site;
  }
  EXPECT_TRUE(site_seen);
  EXPECT_EQ(vm.metrics().counter("fr.pauses_recorded"), vm.gc_count());
}

TEST(FlightRecorderVmTest, ExplicitDumpProducesValidatableIncident) {
  const std::string dir = testing::TempDir() + "/fr_vm_dump";
  std::filesystem::remove_all(dir);
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 64);
  const AllocSiteId site = vm.RegisterAllocSite("test.dump");
  GlobalRoot keep(vm, m->Allocate({node, 0, false, site}));
  vm.CollectNow();
  vm.CollectNow();

  const std::string path = vm.DumpFlightRecord(dir);
  ASSERT_FALSE(path.empty());
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"schema\":\"nvmgc.incident.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"explicit\""), std::string::npos);
  EXPECT_NE(json.find("test.dump"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gc.pause_ns\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(vm.metrics().gauges().at("fr.incidents"), 1u);

  // The GC report prints the recorder + allocation-site sections.
  std::string report;
  {
    std::FILE* tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    PrintGcSummary(&vm, tmp);
    std::rewind(tmp);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0) {
      report.append(buf, n);
    }
    std::fclose(tmp);
  }
  EXPECT_NE(report.find("flight recorder:"), std::string::npos);
  EXPECT_NE(report.find("test.dump"), std::string::npos);
}

TEST(FlightRecorderVmTest, PauseThresholdOptionTriggersAutoDump) {
  const std::string dir = testing::TempDir() + "/fr_vm_auto";
  std::filesystem::remove_all(dir);
  VmOptions o = SmallVm();
  o.flight_recorder.pause_threshold_ns = 1;  // Every pause is an anomaly.
  o.flight_recorder.dump_dir = dir;
  Vm vm(o);
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 64);
  GlobalRoot keep(vm, m->Allocate({node}));
  vm.CollectNow();
  EXPECT_GE(vm.flight_recorder().incidents(), 1u);
  EXPECT_EQ(vm.metrics().counter("fr.trigger.pause_threshold"), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/incident-0.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/incident-0.trace.json"));
}

TEST(FlightRecorderVmTest, CrashInjectorDumpsTheFlightRecord) {
  const std::string dir = testing::TempDir() + "/fr_crash_dump";
  std::filesystem::remove_all(dir);
  VmOptions o = SmallVm();
  o.gc = DurableOptions(CollectorKind::kG1, 4);
  Vm vm(o);
  CrashInjector crash(&vm.heap_device().persist(), ~uint64_t{0});
  crash.ArmFlightRecorder(&vm.flight_recorder(), dir);

  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 64);
  GlobalRoot keep(vm, m->Allocate({node}));
  vm.CollectNow();
  const CrashImage image = crash.TakeImage();
  (void)image;
  ASSERT_FALSE(crash.flight_dump_path().empty());
  const std::string json = ReadFile(crash.flight_dump_path());
  EXPECT_NE(json.find("\"kind\":\"crash\""), std::string::npos);
}

}  // namespace
}  // namespace nvmgc
