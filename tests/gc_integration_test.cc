// Integration tests: full GC cycles over real object graphs, verified for
// every collector/optimization combination.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/heap/heap_verifier.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"
#include "src/util/random.h"

namespace nvmgc {
namespace {

struct GcConfig {
  std::string label;
  CollectorKind collector = CollectorKind::kG1;
  DeviceKind device = DeviceKind::kNvm;
  bool write_cache = false;
  bool header_map = false;
  bool non_temporal = false;
  bool async_flush = false;
  bool eden_on_dram = false;
  uint32_t threads = 4;
};

std::ostream& operator<<(std::ostream& os, const GcConfig& c) { return os << c.label; }

VmOptions MakeOptions(const GcConfig& c) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 128;
  o.heap.eden_regions = 64;
  o.heap.heap_device = c.device;
  o.heap.eden_on_dram = c.eden_on_dram;
  o.gc.collector = c.collector;
  o.gc.gc_threads = c.threads;
  o.gc.use_write_cache = c.write_cache;
  o.gc.use_header_map = c.header_map;
  o.gc.header_map_min_threads = 2;  // Exercise the map even in small tests.
  o.gc.use_non_temporal = c.non_temporal;
  o.gc.async_flush = c.async_flush;
  o.gc.prefetch = true;
  o.gc.prefetch_header_map = c.header_map;
  return o;
}

// A linked binary-graph workload with a shadow model. Every node's payload
// stores a unique id; the shadow records each id's expected children, so the
// graph can be validated after any number of copying collections.
class GraphWorkload {
 public:
  explicit GraphWorkload(Vm* vm) : vm_(vm), mutator_(vm->CreateMutator()) {
    node_klass_ = vm->heap().klasses().RegisterRegular("Node", 2, 16);
  }

  Address NewNode() {
    const Address node = mutator_->Allocate({node_klass_});
    const uint64_t id = next_id_++;
    WriteId(node, id);
    shadow_[id] = {0, 0};
    return node;
  }

  void Link(Address parent, int which, Address child) {
    mutator_->WriteRef(parent, which, child);
    shadow_[ReadId(parent)].child[which] = child == kNullAddress ? 0 : ReadId(child);
  }

  // Walks the graph from `root` and checks every node matches the shadow.
  void VerifyFrom(Address root) {
    std::set<uint64_t> seen;
    VerifyNode(root, &seen);
  }

  Mutator* mutator() { return mutator_; }
  KlassId node_klass() const { return node_klass_; }

  uint64_t ReadId(Address node) const {
    const Klass& k = vm_->heap().klasses().Get(node_klass_);
    uint64_t id;
    std::memcpy(&id, reinterpret_cast<const void*>(obj::PayloadOf(node, k)), sizeof(id));
    return id;
  }

 private:
  struct ShadowNode {
    uint64_t child[2];
  };

  void WriteId(Address node, uint64_t id) {
    const Klass& k = vm_->heap().klasses().Get(node_klass_);
    std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(node, k)), &id, sizeof(id));
  }

  void VerifyNode(Address node, std::set<uint64_t>* seen) {
    ASSERT_NE(node, kNullAddress);
    const uint64_t id = ReadId(node);
    ASSERT_TRUE(shadow_.count(id)) << "node id " << id << " not in shadow model";
    if (!seen->insert(id).second) {
      return;
    }
    const Klass& k = vm_->heap().klasses().Get(obj::KlassIdOf(node));
    ASSERT_EQ(k.id, node_klass_);
    for (int which = 0; which < 2; ++which) {
      const Address child = obj::LoadRef(obj::RefSlot(node, k, which));
      const uint64_t expect = shadow_[id].child[which];
      if (expect == 0) {
        EXPECT_EQ(child, kNullAddress) << "id " << id << " child " << which;
      } else {
        ASSERT_NE(child, kNullAddress) << "id " << id << " child " << which;
        EXPECT_EQ(ReadId(child), expect) << "id " << id << " child " << which;
        VerifyNode(child, seen);
      }
    }
  }

  Vm* vm_;
  Mutator* mutator_;
  KlassId node_klass_ = 0;
  uint64_t next_id_ = 1;
  std::map<uint64_t, ShadowNode> shadow_;
};

class GcIntegrationTest : public ::testing::TestWithParam<GcConfig> {};

TEST_P(GcIntegrationTest, LiveChainSurvivesExplicitGc) {
  Vm vm(MakeOptions(GetParam()));
  GraphWorkload g(&vm);
  // Build a 200-node chain, rooted at the head.
  Address head = g.NewNode();
  const RootHandle root = vm.NewRoot(head);
  Address cursor = head;
  for (int i = 0; i < 199; ++i) {
    Address next = g.NewNode();
    g.Link(cursor, 0, next);
    cursor = next;
  }
  for (int gc = 0; gc < 4; ++gc) {
    vm.CollectNow();
    g.VerifyFrom(vm.GetRoot(root));
  }
  HeapVerifier verifier(&vm.heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm.RootSlots(), &error)) << error;
  EXPECT_TRUE(verifier.VerifyParsability(&error)) << error;
  EXPECT_TRUE(verifier.VerifyRemsetCompleteness(&error)) << error;
}

TEST_P(GcIntegrationTest, GarbageIsReclaimed) {
  Vm vm(MakeOptions(GetParam()));
  GraphWorkload g(&vm);
  Address live = g.NewNode();
  const RootHandle root = vm.NewRoot(live);
  // Allocate a lot of unreachable garbage; GCs triggered by eden exhaustion
  // must reclaim it without exhausting the heap.
  for (int i = 0; i < 200000; ++i) {
    g.NewNode();
  }
  EXPECT_GT(g.mutator()->gcs_triggered(), 0u);
  vm.CollectNow();
  g.VerifyFrom(vm.GetRoot(root));
  // After a final collection nearly all regions should be free again.
  EXPECT_GT(vm.heap().free_region_count(), vm.heap().config().heap_regions / 2);
  static_cast<void>(root);
}

TEST_P(GcIntegrationTest, SharedSubgraphCopiedOnce) {
  Vm vm(MakeOptions(GetParam()));
  GraphWorkload g(&vm);
  // Two roots share one diamond-shaped subgraph: forwarding pointers must
  // ensure a single copy.
  Address a = g.NewNode();
  Address b = g.NewNode();
  Address shared = g.NewNode();
  g.Link(a, 0, shared);
  g.Link(b, 0, shared);
  const RootHandle ra = vm.NewRoot(a);
  const RootHandle rb = vm.NewRoot(b);
  vm.CollectNow();
  const Address a2 = vm.GetRoot(ra);
  const Address b2 = vm.GetRoot(rb);
  const Klass& k = vm.heap().klasses().Get(g.node_klass());
  EXPECT_EQ(obj::LoadRef(obj::RefSlot(a2, k, 0)), obj::LoadRef(obj::RefSlot(b2, k, 0)));
  g.VerifyFrom(a2);
  g.VerifyFrom(b2);
}

TEST_P(GcIntegrationTest, CyclesSurvive) {
  Vm vm(MakeOptions(GetParam()));
  GraphWorkload g(&vm);
  Address a = g.NewNode();
  Address b = g.NewNode();
  g.Link(a, 0, b);
  g.Link(b, 0, a);
  const RootHandle root = vm.NewRoot(a);
  vm.CollectNow();
  vm.CollectNow();
  g.VerifyFrom(vm.GetRoot(root));
}

TEST_P(GcIntegrationTest, PromotionToOldGenAndRemsets) {
  Vm vm(MakeOptions(GetParam()));
  GraphWorkload g(&vm);
  Address old_obj = g.NewNode();
  const RootHandle root = vm.NewRoot(old_obj);
  // Age the object past the tenure threshold.
  for (uint32_t i = 0; i <= vm.heap().config().tenure_age; ++i) {
    vm.CollectNow();
  }
  old_obj = vm.GetRoot(root);
  ASSERT_TRUE(vm.heap().RegionFor(old_obj)->is_old_like());
  // Create an old->young edge through the write barrier, drop the young
  // object's root, and check the edge alone keeps it alive.
  Address young = g.NewNode();
  g.Link(old_obj, 1, young);
  vm.CollectNow();
  g.VerifyFrom(vm.GetRoot(root));
  std::string error;
  HeapVerifier verifier(&vm.heap());
  EXPECT_TRUE(verifier.VerifyRemsetCompleteness(&error)) << error;
}

TEST_P(GcIntegrationTest, RandomGraphChurnStaysConsistent) {
  Vm vm(MakeOptions(GetParam()));
  GraphWorkload g(&vm);
  Random rng(42);
  std::vector<RootHandle> roots;
  std::vector<Address> nodes;
  for (int i = 0; i < 50; ++i) {
    Address n = g.NewNode();
    roots.push_back(vm.NewRoot(n));
    nodes.push_back(n);
  }
  for (int round = 0; round < 20; ++round) {
    // Random links between live roots plus garbage churn.
    for (int i = 0; i < 30; ++i) {
      const size_t p = rng.NextBelow(roots.size());
      const size_t c = rng.NextBelow(roots.size());
      g.Link(vm.GetRoot(roots[p]), static_cast<int>(rng.NextBelow(2)), vm.GetRoot(roots[c]));
    }
    for (int i = 0; i < 3000; ++i) {
      g.NewNode();
    }
    if (round % 5 == 4) {
      vm.CollectNow();
    }
    for (RootHandle r : roots) {
      g.VerifyFrom(vm.GetRoot(r));
    }
  }
}

std::vector<GcConfig> AllConfigs() {
  std::vector<GcConfig> configs;
  for (CollectorKind collector : {CollectorKind::kG1, CollectorKind::kParallelScavenge}) {
    const std::string base = collector == CollectorKind::kG1 ? "g1" : "ps";
    configs.push_back({base + "_vanilla_nvm", collector, DeviceKind::kNvm});
    configs.push_back({base + "_vanilla_dram", collector, DeviceKind::kDram});
    GcConfig wc{base + "_writecache", collector, DeviceKind::kNvm, true};
    configs.push_back(wc);
    GcConfig all{base + "_all", collector, DeviceKind::kNvm, true, true, true};
    configs.push_back(all);
    GcConfig async{base + "_async", collector, DeviceKind::kNvm, true, true, true, true};
    configs.push_back(async);
  }
  GcConfig one_thread{"g1_all_1thread", CollectorKind::kG1, DeviceKind::kNvm, true, true, true};
  one_thread.threads = 1;
  configs.push_back(one_thread);
  GcConfig many{"g1_all_16threads", CollectorKind::kG1, DeviceKind::kNvm, true, true, true, true};
  many.threads = 16;
  configs.push_back(many);
  GcConfig young_dram{"g1_youngdram", CollectorKind::kG1, DeviceKind::kNvm};
  young_dram.eden_on_dram = true;
  configs.push_back(young_dram);
  return configs;
}

INSTANTIATE_TEST_SUITE_P(AllGcConfigs, GcIntegrationTest, ::testing::ValuesIn(AllConfigs()),
                         [](const ::testing::TestParamInfo<GcConfig>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace nvmgc
