// Tests for GcOptions::Validate(), the chainable GcOptionsBuilder, and the
// fail-fast paths (Build() and the Vm constructor die with the Validate()
// message on an incoherent configuration).

#include <gtest/gtest.h>

#include <string>

#include "src/gc/gc_options.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

// Every error message must say what is wrong AND which setter/flag fixes it.
void ExpectError(const GcOptions& o, const std::string& what,
                 const std::string& hint) {
  const std::string error = o.Validate();
  ASSERT_FALSE(error.empty()) << "expected a validation error mentioning "
                              << what;
  EXPECT_NE(error.find(what), std::string::npos) << error;
  EXPECT_NE(error.find(hint), std::string::npos)
      << "error lacks an actionable hint: " << error;
  EXPECT_FALSE(o.valid());
}

TEST(GcOptionsValidateTest, DefaultsAndPresetsAreValid) {
  EXPECT_TRUE(GcOptions{}.valid());
  for (const CollectorKind kind :
       {CollectorKind::kG1, CollectorKind::kParallelScavenge}) {
    EXPECT_TRUE(VanillaOptions(kind, 8).valid());
    EXPECT_TRUE(WriteCacheOptions(kind, 8).valid());
    EXPECT_TRUE(AllOptimizationsOptions(kind, 8).valid());
  }
}

TEST(GcOptionsValidateTest, RejectsZeroGcThreads) {
  GcOptions o;
  o.gc_threads = 0;
  ExpectError(o, "gc_threads", "GcThreads");
}

TEST(GcOptionsValidateTest, RejectsWriteCacheKnobsWithoutWriteCache) {
  {
    GcOptions o;
    o.async_flush = true;
    ExpectError(o, "async_flush requires use_write_cache", "WriteCache()");
  }
  {
    GcOptions o;
    o.use_non_temporal = true;
    ExpectError(o, "use_non_temporal requires use_write_cache", "WriteCache()");
  }
  {
    GcOptions o;
    o.write_cache_bytes = 1 << 20;
    ExpectError(o, "write_cache_bytes", "WriteCacheBytes()");
  }
  {
    GcOptions o;
    o.unlimited_write_cache = true;
    ExpectError(o, "unlimited_write_cache", "UnlimitedWriteCache()");
  }
}

TEST(GcOptionsValidateTest, RejectsUnlimitedCacheWithExplicitCap) {
  GcOptions o;
  o.use_write_cache = true;
  o.unlimited_write_cache = true;
  o.write_cache_bytes = 1 << 20;
  ExpectError(o, "contradicts", "WriteCacheBytes()");
}

TEST(GcOptionsValidateTest, RejectsHeaderMapKnobsWithoutHeaderMap) {
  {
    GcOptions o;
    o.prefetch_header_map = true;
    ExpectError(o, "prefetch_header_map requires use_header_map",
                "HeaderMap()");
  }
  {
    GcOptions o;
    o.header_map_bytes = 1 << 20;
    ExpectError(o, "header_map_bytes", "HeaderMapBytes()");
  }
}

TEST(GcOptionsValidateTest, RejectsZeroSearchBound) {
  GcOptions o;
  o.use_header_map = true;
  o.header_map_search_bound = 0;
  ExpectError(o, "header_map_search_bound", "HeaderMapSearchBound");
}

TEST(GcOptionsValidateTest, RejectsHeaderMapPrefetchWithoutPrefetch) {
  GcOptions o;
  o.use_header_map = true;
  o.prefetch = false;
  o.prefetch_header_map = true;
  ExpectError(o, "prefetch_header_map requires prefetch", "Prefetch()");
}

TEST(GcOptionsValidateTest, RejectsZeroLabBytesForParallelScavenge) {
  GcOptions o;
  o.collector = CollectorKind::kParallelScavenge;
  o.lab_bytes = 0;
  ExpectError(o, "lab_bytes", "LabBytes");
  // G1 never uses LABs, so the same setting is fine there.
  o.collector = CollectorKind::kG1;
  EXPECT_TRUE(o.valid());
}

TEST(GcOptionsValidateTest, AdaptivePresetAndBuilderAreValid) {
  for (const CollectorKind kind :
       {CollectorKind::kG1, CollectorKind::kParallelScavenge}) {
    const GcOptions preset = AdaptiveOptions(kind, 8);
    EXPECT_TRUE(preset.valid());
    EXPECT_TRUE(preset.adaptive.enabled);
    // The preset starts from every optimization plus async flushing, so the
    // controller has all knobs to tune.
    EXPECT_TRUE(preset.use_write_cache);
    EXPECT_TRUE(preset.use_header_map);
    EXPECT_TRUE(preset.async_flush);
  }
  EXPECT_TRUE(GcOptionsBuilder().AdaptivePolicy().Build().adaptive.enabled);
  EXPECT_FALSE(GcOptionsBuilder().AdaptivePolicy(false).Build().adaptive.enabled);
}

TEST(GcOptionsValidateTest, AdaptivePolicyOptionsOverload) {
  AdaptivePolicyOptions a;
  a.enabled = true;
  a.warmup_pauses = 3;
  a.cooldown_pauses = 2;
  a.step_fraction = 0.25;
  a.min_gc_threads = 2;
  a.max_gc_threads = 6;
  const GcOptions o = GcOptionsBuilder().GcThreads(8).AdaptivePolicy(a).Build();
  EXPECT_EQ(o.adaptive.warmup_pauses, 3u);
  EXPECT_EQ(o.adaptive.cooldown_pauses, 2u);
  EXPECT_DOUBLE_EQ(o.adaptive.step_fraction, 0.25);
  EXPECT_EQ(o.adaptive.min_gc_threads, 2u);
  EXPECT_EQ(o.adaptive.max_gc_threads, 6u);
}

TEST(GcOptionsValidateTest, RejectsBadAdaptiveStepFraction) {
  for (const double bad : {0.0, -0.5, 1.5}) {
    GcOptions o;
    o.adaptive.enabled = true;
    o.adaptive.step_fraction = bad;
    ExpectError(o, "adaptive.step_fraction", "AdaptivePolicy(AdaptivePolicyOptions)");
  }
}

TEST(GcOptionsValidateTest, RejectsBadAdaptiveThreadClamps) {
  {
    GcOptions o;
    o.adaptive.enabled = true;
    o.adaptive.min_gc_threads = 0;
    ExpectError(o, "adaptive.min_gc_threads", "AdaptivePolicy(AdaptivePolicyOptions)");
  }
  {
    GcOptions o;
    o.gc_threads = 4;
    o.adaptive.enabled = true;
    o.adaptive.min_gc_threads = 5;
    ExpectError(o, "adaptive.min_gc_threads exceeds gc_threads",
                "AdaptivePolicy(AdaptivePolicyOptions)");
  }
  {
    GcOptions o;
    o.gc_threads = 4;
    o.adaptive.enabled = true;
    o.adaptive.max_gc_threads = 5;
    ExpectError(o, "adaptive.max_gc_threads exceeds gc_threads",
                "AdaptivePolicy(AdaptivePolicyOptions)");
  }
  {
    GcOptions o;
    o.gc_threads = 8;
    o.adaptive.enabled = true;
    o.adaptive.min_gc_threads = 4;
    o.adaptive.max_gc_threads = 2;
    ExpectError(o, "adaptive.max_gc_threads is below adaptive.min_gc_threads",
                "AdaptivePolicy(AdaptivePolicyOptions)");
  }
}

TEST(GcOptionsValidateTest, RejectsBadAdaptiveCacheClamps) {
  {
    GcOptions o;
    o.adaptive.enabled = true;
    o.adaptive.min_write_cache_bytes = 0;
    ExpectError(o, "adaptive.min_write_cache_bytes",
                "AdaptivePolicy(AdaptivePolicyOptions)");
  }
  {
    GcOptions o;
    o.adaptive.enabled = true;
    o.adaptive.min_write_cache_bytes = 2 << 20;
    o.adaptive.max_write_cache_bytes = 1 << 20;
    ExpectError(o, "adaptive.min_write_cache_bytes exceeds adaptive.max_write_cache_bytes",
                "AdaptivePolicy(AdaptivePolicyOptions)");
  }
}

TEST(GcOptionsValidateTest, RejectsAdaptiveWithUnlimitedWriteCache) {
  GcOptions o = AllOptimizationsOptions(CollectorKind::kG1, 8);
  o.unlimited_write_cache = true;
  o.write_cache_bytes = 0;
  o.adaptive.enabled = true;
  ExpectError(o, "adaptive.enabled contradicts unlimited_write_cache",
              "UnlimitedWriteCache()");
}

TEST(GcOptionsValidateTest, DisabledAdaptiveSkipsItsValidation) {
  // The sub-struct is only checked when the engine is on.
  GcOptions o;
  o.adaptive.enabled = false;
  o.adaptive.step_fraction = 99.0;
  o.adaptive.min_gc_threads = 0;
  EXPECT_TRUE(o.valid());
}

TEST(GcOptionsValidateTest, DurablePresetAndBuilderAreValid) {
  for (const CollectorKind kind :
       {CollectorKind::kG1, CollectorKind::kParallelScavenge}) {
    const GcOptions preset = DurableOptions(kind, 8);
    EXPECT_TRUE(preset.valid());
    EXPECT_TRUE(preset.durability.enabled);
    // Durability rides on the full optimization stack: the commit protocol
    // persists the write cache's drained runs.
    EXPECT_TRUE(preset.use_write_cache);
  }
  EXPECT_TRUE(GcOptionsBuilder()
                  .WriteCache()
                  .Durability()
                  .Build()
                  .durability.enabled);
  EXPECT_FALSE(GcOptionsBuilder().Durability(false).Build().durability.enabled);
}

TEST(GcOptionsValidateTest, RejectsDurabilityKnobsWhileDisabled) {
  {
    GcOptions o;
    o.durability.commit_record_bytes = 8192;
    ExpectError(o, "durability sub-options are set but durability.enabled is false",
                "Durability()");
  }
  {
    GcOptions o;
    o.durability.flush_line_cost_ns = 10;
    ExpectError(o, "durability sub-options", "Durability()");
  }
}

TEST(GcOptionsValidateTest, RejectsNegativeDurabilityCosts) {
  {
    GcOptions o;
    o.durability.enabled = true;
    o.durability.flush_line_cost_ns = -2;
    ExpectError(o, "durability.flush_line_cost_ns",
                "Durability(DurabilityOptions)");
  }
  {
    GcOptions o;
    o.durability.enabled = true;
    o.durability.fence_cost_ns = -7;
    ExpectError(o, "durability.fence_cost_ns", "Durability(DurabilityOptions)");
  }
}

TEST(GcOptionsValidateTest, RejectsBadCommitRecordBytes) {
  for (const size_t bad : {size_t{1024}, size_t{16} * 1024 * 1024}) {
    GcOptions o;
    o.durability.enabled = true;
    o.durability.commit_record_bytes = bad;
    ExpectError(o, "durability.commit_record_bytes outside [4 KiB, 8 MiB]",
                "Durability(DurabilityOptions)");
  }
  {
    GcOptions o;
    o.durability.enabled = true;
    o.durability.commit_record_bytes = 4100;  // In range but misaligned.
    ExpectError(o, "durability.commit_record_bytes must be 8-byte aligned",
                "Durability(DurabilityOptions)");
  }
}

TEST(GcOptionsValidateTest, RejectsTinyRedoLog) {
  GcOptions o;
  o.durability.enabled = true;
  o.durability.redo_log_bytes = 512;
  ExpectError(o, "durability.redo_log_bytes", "Durability(DurabilityOptions)");
}

TEST(GcOptionsValidateTest, DurabilityOptionsOverload) {
  DurabilityOptions d;
  d.enabled = true;
  d.flush_line_cost_ns = 120;
  d.fence_cost_ns = 500;
  d.commit_record_bytes = 64 * 1024;
  d.redo_log_bytes = 128 * 1024;
  const GcOptions o = GcOptionsBuilder().Durability(d).Build();
  EXPECT_TRUE(o.durability.enabled);
  EXPECT_EQ(o.durability.flush_line_cost_ns, 120);
  EXPECT_EQ(o.durability.fence_cost_ns, 500);
  EXPECT_EQ(o.durability.commit_record_bytes, size_t{64} * 1024);
  EXPECT_EQ(o.durability.redo_log_bytes, size_t{128} * 1024);
}

TEST(GcOptionsBuilderTest, ChainsSetEveryField) {
  const GcOptions o = GcOptionsBuilder()
                          .Collector(CollectorKind::kParallelScavenge)
                          .GcThreads(12)
                          .WriteCache()
                          .WriteCacheBytes(4 << 20)
                          .HeaderMap()
                          .HeaderMapBytes(2 << 20)
                          .HeaderMapMinThreads(4)
                          .HeaderMapSearchBound(8)
                          .NonTemporal()
                          .AsyncFlush()
                          .Prefetch()
                          .PrefetchHeaderMap()
                          .LabBytes(32 * 1024)
                          .AutoDegrade(false)
                          .Build();
  EXPECT_EQ(o.collector, CollectorKind::kParallelScavenge);
  EXPECT_EQ(o.gc_threads, 12u);
  EXPECT_TRUE(o.use_write_cache);
  EXPECT_EQ(o.write_cache_bytes, size_t{4} << 20);
  EXPECT_TRUE(o.use_header_map);
  EXPECT_EQ(o.header_map_bytes, size_t{2} << 20);
  EXPECT_EQ(o.header_map_min_threads, 4u);
  EXPECT_EQ(o.header_map_search_bound, 8u);
  EXPECT_TRUE(o.use_non_temporal);
  EXPECT_TRUE(o.async_flush);
  EXPECT_TRUE(o.prefetch);
  EXPECT_TRUE(o.prefetch_header_map);
  EXPECT_EQ(o.lab_bytes, size_t{32} * 1024);
  EXPECT_FALSE(o.auto_degrade);
}

TEST(GcOptionsBuilderTest, PresetBaseCanBeTweaked) {
  const GcOptions base = AllOptimizationsOptions(CollectorKind::kG1, 8);
  const GcOptions o = GcOptionsBuilder(base).HeaderMapBytes(1 << 20).Build();
  EXPECT_EQ(o.header_map_bytes, size_t{1} << 20);
  EXPECT_TRUE(o.use_write_cache);  // Preset fields carried over.
  EXPECT_TRUE(o.use_non_temporal);
}

TEST(GcOptionsBuilderTest, BuildUncheckedIsTheEscapeHatch) {
  const GcOptions o = GcOptionsBuilder().AsyncFlush().BuildUnchecked();
  EXPECT_TRUE(o.async_flush);
  EXPECT_FALSE(o.valid());  // Incoherent, but deliberately not rejected.
}

TEST(GcOptionsDeathTest, BuildDiesOnInvalidCombination) {
  EXPECT_DEATH(GcOptionsBuilder().GcThreads(0).Build(), "NVMGC_CHECK");
  EXPECT_DEATH(GcOptionsBuilder().AsyncFlush().Build(),
               "async_flush requires use_write_cache");
}

TEST(GcOptionsDeathTest, VmConstructorRejectsInvalidOptions) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 64;
  o.heap.dram_cache_regions = 8;
  o.heap.eden_regions = 8;
  o.gc = GcOptionsBuilder().PrefetchHeaderMap().BuildUnchecked();
  EXPECT_DEATH(Vm vm(o), "prefetch_header_map requires use_header_map");
}

TEST(GcOptionsValidateTest, GenerationalPresetAndBuilderAreValid) {
  const GcOptions preset = GenerationalGcOptions(CollectorKind::kG1, 8);
  EXPECT_TRUE(preset.valid());
  EXPECT_TRUE(preset.generational.enabled);
  EXPECT_TRUE(preset.use_write_cache);  // "+all" base under the young gen.
  const GcOptions built = GcOptionsBuilder().Generational().Build();
  EXPECT_TRUE(built.generational.enabled);
  const GcOptions off = GcOptionsBuilder(preset).Generational(false).Build();
  EXPECT_FALSE(off.generational.enabled);
}

TEST(GcOptionsValidateTest, GenerationalOptionsOverload) {
  GenerationalOptions gen;
  gen.enabled = true;
  gen.young_gen_bytes = 8 * 1024 * 1024;
  gen.survivor_fraction = 0.25;
  gen.tenure_threshold = 5;
  gen.large_object_threshold = 16 * 1024;
  const GcOptions o = GcOptionsBuilder().Generational(gen).Build();
  EXPECT_EQ(o.generational.young_gen_bytes, 8u * 1024 * 1024);
  EXPECT_EQ(o.generational.survivor_fraction, 0.25);
  EXPECT_EQ(o.generational.tenure_threshold, 5u);
  EXPECT_EQ(o.generational.large_object_threshold, 16u * 1024);
}

TEST(GcOptionsValidateTest, RejectsGenerationalKnobsWhileDisabled) {
  {
    GcOptions o;
    o.generational.young_gen_bytes = 1024 * 1024;
    ExpectError(o, "generational sub-options are set but generational.enabled is false",
                "Generational()");
  }
  {
    GcOptions o;
    o.generational.tenure_threshold = 7;
    ExpectError(o, "generational sub-options", "Generational()");
  }
}

TEST(GcOptionsValidateTest, RejectsBadSurvivorFraction) {
  for (const double bad : {0.0, -0.1, 0.51}) {
    GcOptions o;
    o.generational.enabled = true;
    o.generational.survivor_fraction = bad;
    ExpectError(o, "generational.survivor_fraction", "survivor_fraction");
  }
}

TEST(GcOptionsValidateTest, RejectsBadTenureThreshold) {
  for (const uint32_t bad : {0u, 16u, 100u}) {
    GcOptions o;
    o.generational.enabled = true;
    o.generational.tenure_threshold = bad;
    ExpectError(o, "generational.tenure_threshold", "tenure_threshold");
  }
}

TEST(GcOptionsValidateTest, RejectsTinyLargeObjectThreshold) {
  GcOptions o;
  o.generational.enabled = true;
  o.generational.large_object_threshold = 512;
  ExpectError(o, "generational.large_object_threshold", "large_object_threshold");
}

TEST(GcOptionsDeathTest, VmRejectsDegenerateYoungGeneration) {
  // One region cannot hold both an eden and a survivor space; the geometry
  // check lives in the Vm constructor because it needs HeapConfig.
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 64;
  o.heap.dram_cache_regions = 8;
  o.heap.eden_regions = 8;
  GenerationalOptions gen;
  gen.enabled = true;
  gen.young_gen_bytes = 64 * 1024;  // Exactly one region.
  o.gc = GcOptionsBuilder(GenerationalGcOptions(CollectorKind::kG1, 4))
             .Generational(gen)
             .Build();
  EXPECT_DEATH(Vm vm(o), "young generation too small");
}

TEST(GcOptionsDeathTest, VmRejectsDurabilityOnDramHeap) {
  // The enabled/device coherence check lives in the Vm constructor because
  // GcOptions cannot see the HeapConfig.
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 64;
  o.heap.dram_cache_regions = 8;
  o.heap.eden_regions = 8;
  o.heap.heap_device = DeviceKind::kDram;
  o.gc = DurableOptions(CollectorKind::kG1, 4);
  EXPECT_DEATH(Vm vm(o), "durability requires NVM-backed tenured regions");
}

}  // namespace
}  // namespace nvmgc
