// Property-based tests: invariants that must hold across the whole GC
// configuration space, checked with parameterized sweeps.

#include <gtest/gtest.h>

#include <tuple>

#include "src/heap/heap_verifier.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

VmOptions SweepVm(CollectorKind collector, uint32_t threads, bool write_cache, bool header_map,
                  bool async, bool adaptive = false) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 96;
  o.heap.eden_regions = 64;
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc.collector = collector;
  o.gc.gc_threads = threads;
  o.gc.use_write_cache = write_cache;
  o.gc.use_header_map = header_map;
  o.gc.header_map_min_threads = 1;
  o.gc.use_non_temporal = write_cache;
  o.gc.async_flush = async;
  o.gc.adaptive.enabled = adaptive;
  return o;
}

WorkloadProfile SweepProfile() {
  WorkloadProfile p = RenaissanceProfile("dotty");
  p.total_allocation_bytes = 12 * 1024 * 1024;
  return p;
}

// (collector, threads, write_cache, header_map, async, adaptive)
using SweepParam = std::tuple<CollectorKind, uint32_t, bool, bool, bool, bool>;

class GcSweepTest : public ::testing::TestWithParam<SweepParam> {};

// Invariant 1: the set of surviving objects is configuration-independent —
// every configuration must copy exactly the same live data.
TEST_P(GcSweepTest, LiveDataIndependentOfConfiguration) {
  const auto [collector, threads, wc, hm, async, adaptive] = GetParam();
  // Reference run: single-threaded vanilla G1.
  WorkloadProfile profile = SweepProfile();
  uint64_t reference_objects = 0;
  {
    VmOptions o = SweepVm(CollectorKind::kG1, 1, false, false, false);
    Vm vm(o);
    SyntheticApp app(&vm, profile);
    app.Run();
    reference_objects = vm.gc_stats().Totals().objects_copied;
  }
  VmOptions o = SweepVm(collector, threads, wc, hm, async, adaptive);
  Vm vm(o);
  SyntheticApp app(&vm, profile);
  app.Run();
  EXPECT_EQ(vm.gc_stats().Totals().objects_copied, reference_objects);
}

// Invariant 2: after every run the heap verifies — reachability, region
// parsability, remembered-set completeness.
TEST_P(GcSweepTest, HeapVerifiesAfterRun) {
  const auto [collector, threads, wc, hm, async, adaptive] = GetParam();
  VmOptions o = SweepVm(collector, threads, wc, hm, async, adaptive);
  Vm vm(o);
  SyntheticApp app(&vm, SweepProfile());
  app.Run();
  HeapVerifier verifier(&vm.heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm.RootSlots(), &error)) << error;
  EXPECT_TRUE(verifier.VerifyParsability(&error)) << error;
  EXPECT_TRUE(verifier.VerifyRemsetCompleteness(&error)) << error;
}

// Invariant 3: no write-cache staging region leaks past a pause, and no
// region is left flush-claimed but unflushed.
TEST_P(GcSweepTest, NoStagingRegionLeaks) {
  const auto [collector, threads, wc, hm, async, adaptive] = GetParam();
  VmOptions o = SweepVm(collector, threads, wc, hm, async, adaptive);
  Vm vm(o);
  SyntheticApp app(&vm, SweepProfile());
  app.Run();
  EXPECT_EQ(vm.heap().CountRegions(RegionType::kWriteCache), 0u);
  vm.heap().ForEachRegion([&](Region* region) {
    EXPECT_EQ(region->cache_twin(), nullptr);
    EXPECT_EQ(region->pending_slots(), 0);
  });
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = std::get<0>(info.param) == CollectorKind::kG1 ? "g1" : "ps";
  name += "_t" + std::to_string(std::get<1>(info.param));
  if (std::get<2>(info.param)) {
    name += "_wc";
  }
  if (std::get<3>(info.param)) {
    name += "_hm";
  }
  if (std::get<4>(info.param)) {
    name += "_async";
  }
  if (std::get<5>(info.param)) {
    name += "_adaptive";
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, GcSweepTest,
    ::testing::Values(SweepParam{CollectorKind::kG1, 1, false, false, false, false},
                      SweepParam{CollectorKind::kG1, 4, false, false, false, false},
                      SweepParam{CollectorKind::kG1, 4, true, false, false, false},
                      SweepParam{CollectorKind::kG1, 4, true, true, false, false},
                      SweepParam{CollectorKind::kG1, 4, true, true, true, false},
                      SweepParam{CollectorKind::kG1, 13, true, true, true, false},
                      SweepParam{CollectorKind::kParallelScavenge, 4, false, false, false, false},
                      SweepParam{CollectorKind::kParallelScavenge, 4, true, true, false, false},
                      SweepParam{CollectorKind::kParallelScavenge, 7, true, true, true, false},
                      // Policy engine on: the same invariants must hold while
                      // the controller retunes the knobs between pauses.
                      SweepParam{CollectorKind::kG1, 1, true, true, false, true},
                      SweepParam{CollectorKind::kG1, 4, true, true, true, true},
                      SweepParam{CollectorKind::kG1, 13, true, true, true, true},
                      SweepParam{CollectorKind::kParallelScavenge, 4, true, true, true, true}),
    SweepName);

// Invariant 4: the write cache reduces the share of NVM writes that happen
// during the read-mostly sub-phase (the paper's central mechanism).
TEST(GcMechanismTest, WriteCacheSeparatesPhases) {
  WorkloadProfile profile = SweepProfile();
  auto run = [&](bool wc) {
    VmOptions o = SweepVm(CollectorKind::kG1, 4, wc, false, false);
    Vm vm(o);
    SyntheticApp app(&vm, profile);
    app.Run();
    const GcCycleStats totals = vm.gc_stats().Totals();
    return totals;
  };
  const GcCycleStats vanilla = run(false);
  const GcCycleStats cached = run(true);
  // Vanilla has no write-only sub-phase; write cache gets a substantial one.
  EXPECT_GT(cached.writeback_phase_ns, vanilla.writeback_phase_ns);
  EXPECT_GT(cached.cache_bytes_staged, 0u);
  EXPECT_GT(cached.regions_flushed_sync + cached.regions_flushed_async, 0u);
}

// Invariant 5: the header map absorbs forwarding installs (installs+overflows
// equals objects copied) and reduces NVM write operations.
TEST(GcMechanismTest, HeaderMapAbsorbsForwardingPointers) {
  WorkloadProfile profile = SweepProfile();
  VmOptions o = SweepVm(CollectorKind::kG1, 4, true, true, false);
  Vm vm(o);
  SyntheticApp app(&vm, profile);
  app.Run();
  const GcCycleStats totals = vm.gc_stats().Totals();
  EXPECT_GT(totals.header_map_installs, 0u);
  EXPECT_EQ(totals.header_map_installs + totals.header_map_overflows, totals.objects_copied);
}

// Invariant 6: the header map is bypassed below its thread threshold.
TEST(GcMechanismTest, HeaderMapThreadThreshold) {
  WorkloadProfile profile = SweepProfile();
  VmOptions o = SweepVm(CollectorKind::kG1, 2, true, true, false);
  o.gc.header_map_min_threads = 8;  // Above our 2 threads.
  Vm vm(o);
  SyntheticApp app(&vm, profile);
  app.Run();
  EXPECT_EQ(vm.gc_stats().Totals().header_map_installs, 0u);
}

// Invariant 7: asynchronous flushing flushes at least some regions during the
// read phase and never double-flushes.
TEST(GcMechanismTest, AsyncFlushWorks) {
  WorkloadProfile profile = SweepProfile();
  profile.total_allocation_bytes = 24 * 1024 * 1024;
  VmOptions o = SweepVm(CollectorKind::kG1, 4, true, true, true);
  Vm vm(o);
  SyntheticApp app(&vm, profile);
  app.Run();
  const GcCycleStats totals = vm.gc_stats().Totals();
  EXPECT_GT(totals.regions_flushed_async, 0u);
  // Every staged region flushed exactly once (async + sync covers all twins).
  EXPECT_EQ(vm.heap().CountRegions(RegionType::kWriteCache), 0u);
}

// Invariant 8: PS keeps large objects out of the write cache (LAB policy).
TEST(GcMechanismTest, PsLabPolicyBypassesCacheForLargeObjects) {
  WorkloadProfile profile = RenaissanceProfile("naive-bayes");  // Large arrays.
  profile.total_allocation_bytes = 12 * 1024 * 1024;
  auto overflow_share = [&](CollectorKind kind) {
    VmOptions o = SweepVm(kind, 4, true, false, false);
    o.gc.lab_bytes = 16 * 1024;  // Objects > 4 KiB copied directly.
    Vm vm(o);
    SyntheticApp app(&vm, profile);
    app.Run();
    const GcCycleStats totals = vm.gc_stats().Totals();
    return static_cast<double>(totals.cache_overflow_bytes) /
           static_cast<double>(totals.cache_overflow_bytes + totals.cache_bytes_staged + 1);
  };
  EXPECT_GT(overflow_share(CollectorKind::kParallelScavenge),
            overflow_share(CollectorKind::kG1) + 0.2);
}

// Invariant 9: simulated GC time is monotone in device speed — NVM pauses
// dominate DRAM pauses for the same workload and configuration.
TEST(GcMechanismTest, NvmPausesDominateDram) {
  WorkloadProfile profile = SweepProfile();
  GcOptions gc;
  gc.gc_threads = 4;
  HeapConfig nvm_heap = SweepVm(CollectorKind::kG1, 4, false, false, false).heap;
  HeapConfig dram_heap = nvm_heap;
  dram_heap.heap_device = DeviceKind::kDram;
  const WorkloadResult nvm = RunWorkload(profile, nvm_heap, gc);
  const WorkloadResult dram = RunWorkload(profile, dram_heap, gc);
  EXPECT_GT(nvm.gc_ns, dram.gc_ns);
}

}  // namespace
}  // namespace nvmgc
