// Generational NVM-tiered heap tests: DRAM young generation, age-based
// tenuring into NVM, the old->young remembered-set barrier, large-object
// routing, and minor/major cycle equivalence.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/heap/heap_verifier.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

// Small generational VM: 32 MiB heap, young generation derived by the Vm
// from GcOptions::generational (default: heap/4 = 128 regions, 16 survivor).
VmOptions GenVmOptions(uint32_t tenure_threshold = 3, size_t young_gen_bytes = 0,
                       size_t large_object_threshold = 0) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 128;
  o.heap.heap_device = DeviceKind::kNvm;
  GenerationalOptions gen;
  gen.enabled = true;
  gen.tenure_threshold = tenure_threshold;
  gen.young_gen_bytes = young_gen_bytes;
  gen.large_object_threshold = large_object_threshold;
  o.gc = GcOptionsBuilder(GenerationalGcOptions(CollectorKind::kG1, 4))
             .Generational(gen)
             .Build();
  return o;
}

void ExpectHeapConsistent(Vm* vm) {
  HeapVerifier verifier(&vm->heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm->RootSlots(), &error)) << error;
  EXPECT_TRUE(verifier.VerifyParsability(&error)) << error;
  EXPECT_TRUE(verifier.VerifyRemsetCompleteness(&error)) << error;
}

TEST(GenerationalHeapTest, YoungAllocationsLandInDramEden) {
  Vm vm(GenVmOptions());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("Node", 2, 16);
  const Address a = m->Allocate({node});
  Region* region = vm.heap().RegionFor(a);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->type(), RegionType::kEden);
  // The young generation is served from the DRAM arena, not the NVM heap.
  EXPECT_TRUE(vm.heap().InCacheArena(a));
  EXPECT_FALSE(vm.heap().InHeapArena(a));
}

TEST(GenerationalHeapTest, TenuringProgressionAgesThroughSurvivorToOld) {
  const uint32_t kThreshold = 3;
  Vm vm(GenVmOptions(kThreshold));
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("Node", 2, 16);
  const RootHandle root = vm.NewRoot(m->Allocate({node}));
  // Each minor collection copies the survivor and bumps its age; it stays in
  // a DRAM survivor region until the copy that would reach the threshold.
  for (uint32_t i = 1; i < kThreshold; ++i) {
    vm.CollectNow(GcKind::kMinor);
    const Address a = vm.GetRoot(root);
    EXPECT_EQ(vm.heap().RegionFor(a)->type(), RegionType::kSurvivor) << "copy " << i;
    EXPECT_TRUE(vm.heap().InCacheArena(a)) << "copy " << i;
    EXPECT_EQ(obj::AgeOf(obj::LoadMark(a)), i) << "copy " << i;
  }
  // The threshold-reaching copy tenures the object into the NVM old gen.
  vm.CollectNow(GcKind::kMinor);
  const Address tenured = vm.GetRoot(root);
  EXPECT_EQ(vm.heap().RegionFor(tenured)->type(), RegionType::kOld);
  EXPECT_TRUE(vm.heap().InHeapArena(tenured));
  const GcCycleStats& last = vm.gc_stats().cycles().back();
  EXPECT_GT(last.objects_promoted, 0u);
  EXPECT_GT(last.bytes_promoted, 0u);
  ExpectHeapConsistent(&vm);
}

TEST(GenerationalHeapTest, TenureThresholdOnePromotesOnFirstCopy) {
  Vm vm(GenVmOptions(/*tenure_threshold=*/1));
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("Node", 2, 16);
  const RootHandle root = vm.NewRoot(m->Allocate({node}));
  vm.CollectNow(GcKind::kMinor);
  const Address a = vm.GetRoot(root);
  EXPECT_EQ(vm.heap().RegionFor(a)->type(), RegionType::kOld);
  EXPECT_TRUE(vm.heap().InHeapArena(a));
}

TEST(GenerationalHeapTest, OldToYoungRemsetKeepsYoungAlive) {
  Vm vm(GenVmOptions(/*tenure_threshold=*/1));
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("Node", 2, 16);
  const RootHandle root = vm.NewRoot(m->Allocate({node}));
  vm.CollectNow(GcKind::kMinor);
  const Address parent = vm.GetRoot(root);
  ASSERT_TRUE(vm.heap().RegionFor(parent)->is_old_like());
  // Old->young edge through the write barrier; the young child has no root,
  // so only the remembered set can keep it alive across a minor collection.
  const Address child = m->Allocate({node});
  m->WriteRef(parent, 0, child);
  vm.CollectNow(GcKind::kMinor);
  const Address moved = m->ReadRef(vm.GetRoot(root), 0);
  ASSERT_NE(moved, kNullAddress);
  EXPECT_EQ(obj::KlassIdOf(moved), node);
  ExpectHeapConsistent(&vm);
}

TEST(GenerationalHeapTest, RemsetStaysCorrectUnderRepeatedMutation) {
  Vm vm(GenVmOptions(/*tenure_threshold=*/1));
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("Node", 2, 16);
  const Klass& k = vm.heap().klasses().Get(node);
  const RootHandle root = vm.NewRoot(m->Allocate({node}));
  vm.CollectNow(GcKind::kMinor);
  ASSERT_TRUE(vm.heap().RegionFor(vm.GetRoot(root))->is_old_like());
  // Retarget the old object's slots at fresh young objects every round; each
  // round must remember the live edge and let the stale target die.
  for (int round = 0; round < 8; ++round) {
    const Address parent = vm.GetRoot(root);
    const Address fresh = m->Allocate({node});
    m->WriteRef(parent, round % 2, fresh);
    for (int i = 0; i < 500; ++i) {
      m->Allocate({node});  // Garbage pressure around the live edge.
    }
    vm.CollectNow(GcKind::kMinor);
    const Address kept = obj::LoadRef(obj::RefSlot(vm.GetRoot(root), k, round % 2));
    ASSERT_NE(kept, kNullAddress) << "round " << round;
    EXPECT_EQ(obj::KlassIdOf(kept), node) << "round " << round;
  }
  ExpectHeapConsistent(&vm);
}

TEST(GenerationalHeapTest, LargeObjectRoutingAtThresholdBoundary) {
  const size_t kThresholdBytes = 4096;
  Vm vm(GenVmOptions(3, 0, kThresholdBytes));
  Mutator* m = vm.CreateMutator();
  const KlassId bytes = vm.heap().klasses().RegisterByteArray("byte[]");
  const Klass& k = vm.heap().klasses().Get(bytes);
  // Pick lengths so the object size lands just below / exactly at the
  // threshold (byte arrays are 8-byte aligned, so subtracting 8 from the
  // boundary length stays strictly below).
  uint64_t at_len = 0;
  while (obj::SizeOf(k, at_len + 8) <= kThresholdBytes) {
    at_len += 8;
  }
  ASSERT_EQ(obj::SizeOf(k, at_len), kThresholdBytes);
  const Address below = m->Allocate({bytes, at_len - 8});
  EXPECT_EQ(vm.heap().RegionFor(below)->type(), RegionType::kEden);
  const Address at = m->Allocate({bytes, at_len});
  EXPECT_EQ(vm.heap().RegionFor(at)->type(), RegionType::kLarge);
  EXPECT_TRUE(vm.heap().InHeapArena(at));
  const Address above = m->Allocate({bytes, at_len + 128});
  EXPECT_EQ(vm.heap().RegionFor(above)->type(), RegionType::kLarge);
  // The explicit hint routes even a small object to the large-object space.
  const Address hinted = m->Allocate({bytes, 64, /*large_object=*/true});
  EXPECT_EQ(vm.heap().RegionFor(hinted)->type(), RegionType::kLarge);
  // Large objects are tenured in place: never copied by minor or major GC.
  const RootHandle root = vm.NewRoot(at);
  vm.CollectNow(GcKind::kMinor);
  vm.CollectNow(GcKind::kMajor);
  EXPECT_EQ(vm.GetRoot(root), at);
  ExpectHeapConsistent(&vm);
}

TEST(GenerationalHeapTest, LargeRefArrayEdgesSurviveMinorAndMajor) {
  Vm vm(GenVmOptions());
  Mutator* m = vm.CreateMutator();
  const KlassId refs = vm.heap().klasses().RegisterRefArray("Object[]");
  const KlassId node = vm.heap().klasses().RegisterRegular("Node", 0, 8);
  const Address arr = m->Allocate({refs, 8, /*large_object=*/true});
  ASSERT_EQ(vm.heap().RegionFor(arr)->type(), RegionType::kLarge);
  const RootHandle root = vm.NewRoot(arr);
  // Unrooted young targets reachable only through the large array: the
  // barrier remset covers minors, the conservative slot scan covers majors.
  m->WriteRef(arr, 3, m->Allocate({node}));
  vm.CollectNow(GcKind::kMinor);
  Address kept = m->ReadRef(vm.GetRoot(root), 3);
  ASSERT_NE(kept, kNullAddress);
  EXPECT_EQ(obj::KlassIdOf(kept), node);
  m->WriteRef(arr, 5, m->Allocate({node}));
  vm.CollectNow(GcKind::kMajor);
  kept = m->ReadRef(vm.GetRoot(root), 5);
  ASSERT_NE(kept, kNullAddress);
  EXPECT_EQ(obj::KlassIdOf(kept), node);
  ExpectHeapConsistent(&vm);
}

TEST(GenerationalHeapTest, SurvivorOverflowPromotesEarlyInsteadOfFailing) {
  // Tiny young generation: 4 regions -> 1 survivor region (64 KiB). A live
  // set twice that size cannot fit the survivor space, so the overflow path
  // must promote the excess straight to NVM old regions.
  Vm vm(GenVmOptions(/*tenure_threshold=*/3, /*young_gen_bytes=*/4 * 64 * 1024));
  Mutator* m = vm.CreateMutator();
  const KlassId bytes = vm.heap().klasses().RegisterByteArray("byte[]");
  std::vector<RootHandle> roots;
  for (int i = 0; i < 120; ++i) {
    roots.push_back(vm.NewRoot(m->Allocate({bytes, 1024})));
  }
  vm.CollectNow(GcKind::kMinor);
  const GcCycleStats& cycle = vm.gc_stats().cycles().back();
  EXPECT_GT(cycle.survivor_overflow_bytes, 0u);
  EXPECT_GT(cycle.bytes_promoted, 0u);
  for (RootHandle r : roots) {
    const Address a = vm.GetRoot(r);
    ASSERT_NE(a, kNullAddress);
    EXPECT_EQ(obj::KlassIdOf(a), bytes);
    EXPECT_EQ(obj::ArrayLength(a), 1024u);
  }
  ExpectHeapConsistent(&vm);
}

TEST(GenerationalHeapTest, MinorAndMajorCyclesReportTheirKind) {
  Vm vm(GenVmOptions());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("Node", 2, 16);
  const RootHandle root = vm.NewRoot(m->Allocate({node}));
  const GcCycleStats minor = vm.CollectNow(GcKind::kMinor);
  EXPECT_EQ(minor.is_major, 0u);
  EXPECT_GT(minor.young_cset_bytes, 0u);
  EXPECT_EQ(minor.old_cset_bytes, 0u);
  const GcCycleStats major = vm.CollectNow(GcKind::kMajor);
  EXPECT_EQ(major.is_major, 1u);
  static_cast<void>(root);
}

TEST(GenerationalHeapTest, MajorCollectionCompactsOldGeneration) {
  Vm vm(GenVmOptions(/*tenure_threshold=*/1));
  Mutator* m = vm.CreateMutator();
  const KlassId bytes = vm.heap().klasses().RegisterByteArray("byte[]");
  std::vector<RootHandle> roots;
  for (int i = 0; i < 256; ++i) {
    roots.push_back(vm.NewRoot(m->Allocate({bytes, 4096})));
  }
  vm.CollectNow(GcKind::kMinor);  // Tenure everything (threshold 1).
  const uint32_t old_before = vm.heap().CountRegions(RegionType::kOld);
  ASSERT_GT(old_before, 1u);
  // Drop 7 of 8 roots; a major cycle must evacuate the survivors into a
  // denser old generation and hand the rest of the regions back.
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i % 8 != 0) {
      vm.ReleaseRoot(roots[i]);
    }
  }
  vm.CollectNow(GcKind::kMajor);
  EXPECT_LT(vm.heap().CountRegions(RegionType::kOld), old_before);
  for (size_t i = 0; i < roots.size(); i += 8) {
    EXPECT_EQ(obj::KlassIdOf(vm.GetRoot(roots[i])), bytes);
  }
  ExpectHeapConsistent(&vm);
}

// Deterministic linked-graph builder with a shadow model: node payloads carry
// unique ids, so two VMs running different collection schedules over the same
// build can be checked for identical reachable graphs.
class ShadowGraph {
 public:
  explicit ShadowGraph(Vm* vm) : vm_(vm), mutator_(vm->CreateMutator()) {
    klass_ = vm->heap().klasses().RegisterRegular("Shadow.Node", 2, 16);
  }

  Address NewNode() {
    const Address node = mutator_->Allocate({klass_});
    const uint64_t id = next_id_++;
    const Klass& k = vm_->heap().klasses().Get(klass_);
    std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(node, k)), &id, sizeof(id));
    shadow_[id] = {0, 0};
    return node;
  }

  void Link(Address parent, int which, Address child) {
    mutator_->WriteRef(parent, which, child);
    shadow_[ReadId(parent)].child[which] = child == kNullAddress ? 0 : ReadId(child);
  }

  uint64_t ReadId(Address node) const {
    const Klass& k = vm_->heap().klasses().Get(klass_);
    uint64_t id;
    std::memcpy(&id, reinterpret_cast<const void*>(obj::PayloadOf(node, k)), sizeof(id));
    return id;
  }

  // Walks from `root` and returns id -> (child ids) for every reachable node,
  // checking each against the shadow model along the way.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> Walk(Address root) {
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> out;
    WalkNode(root, &out);
    return out;
  }

  Mutator* mutator() { return mutator_; }

 private:
  struct ShadowNode {
    uint64_t child[2];
  };

  void WalkNode(Address node, std::map<uint64_t, std::pair<uint64_t, uint64_t>>* out) {
    if (node == kNullAddress) {
      return;
    }
    const uint64_t id = ReadId(node);
    ASSERT_TRUE(shadow_.count(id)) << "node id " << id << " not in shadow model";
    if (out->count(id)) {
      return;
    }
    const Klass& k = vm_->heap().klasses().Get(klass_);
    uint64_t child_ids[2] = {0, 0};
    for (int which = 0; which < 2; ++which) {
      const Address child = obj::LoadRef(obj::RefSlot(node, k, which));
      child_ids[which] = child == kNullAddress ? 0 : ReadId(child);
      EXPECT_EQ(child_ids[which], shadow_[id].child[which]) << "id " << id;
    }
    (*out)[id] = {child_ids[0], child_ids[1]};
    for (int which = 0; which < 2; ++which) {
      WalkNode(obj::LoadRef(obj::RefSlot(node, k, which)), out);
    }
  }

  Vm* vm_;
  Mutator* mutator_;
  KlassId klass_ = 0;
  uint64_t next_id_ = 1;
  std::map<uint64_t, ShadowNode> shadow_;
};

// Builds the same chain-with-backlinks graph in `g`, collecting per the
// given schedule, and returns the walked reachable graph.
std::map<uint64_t, std::pair<uint64_t, uint64_t>> BuildAndCollect(
    Vm* vm, ShadowGraph* g, const std::vector<GcKind>& schedule) {
  Address head = g->NewNode();
  const RootHandle root = vm->NewRoot(head);
  Address cursor = head;
  size_t next_gc = 0;
  for (int i = 1; i < 150; ++i) {
    Address next = g->NewNode();
    g->Link(cursor, 0, next);
    if (i % 7 == 0) {
      g->Link(next, 1, vm->GetRoot(root));  // Back edge to the (moved) head.
    }
    cursor = next;
    if (i % 40 == 0 && next_gc < schedule.size()) {
      vm->CollectNow(schedule[next_gc++]);
      cursor = kNullAddress;  // Stale after a copy; re-walk from the root.
      Address n = vm->GetRoot(root);
      const Klass& k = vm->heap().klasses().Get(obj::KlassIdOf(n));
      while (n != kNullAddress) {
        cursor = n;
        n = obj::LoadRef(obj::RefSlot(n, k, 0));
      }
    }
  }
  while (next_gc < schedule.size()) {
    vm->CollectNow(schedule[next_gc++]);
  }
  ExpectHeapConsistent(vm);
  return g->Walk(vm->GetRoot(root));
}

TEST(GenerationalHeapTest, MinorThenMajorMatchesMajorOnlyCollection) {
  // The same deterministic build under two schedules: interleaved minors with
  // a final major, versus majors only. The reachable graphs must be
  // identical — tenuring and remsets change placement, never the graph.
  Vm mixed_vm(GenVmOptions());
  ShadowGraph mixed_graph(&mixed_vm);
  const auto mixed = BuildAndCollect(
      &mixed_vm, &mixed_graph,
      {GcKind::kMinor, GcKind::kMinor, GcKind::kMinor, GcKind::kMajor});

  Vm major_vm(GenVmOptions());
  ShadowGraph major_graph(&major_vm);
  const auto major_only = BuildAndCollect(
      &major_vm, &major_graph,
      {GcKind::kMajor, GcKind::kMajor, GcKind::kMajor, GcKind::kMajor});

  EXPECT_EQ(mixed, major_only);
  EXPECT_EQ(mixed.size(), 150u);  // Every chain node reachable, none duplicated.
}

}  // namespace
}  // namespace nvmgc
