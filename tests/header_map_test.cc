// Tests for the header map (paper Algorithm 1): bounded closed hashing with
// CAS-claimed keys, value spinning, overflow fallback, and parallel clearing.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/header_map.h"
#include "src/nvm/device_profile.h"

namespace nvmgc {
namespace {

class HeaderMapTest : public ::testing::Test {
 protected:
  HeaderMapTest() : dram_(MakeDramProfile()), map_(4096, 16, &dram_) {}

  MemoryDevice dram_;
  HeaderMap map_;
  SimClock clock_;
};

TEST_F(HeaderMapTest, PutThenGet) {
  EXPECT_EQ(map_.Put(0x1000, 0x2000, &clock_, nullptr), 0x2000u);
  EXPECT_EQ(map_.Get(0x1000, &clock_, nullptr), 0x2000u);
}

TEST_F(HeaderMapTest, GetMissReturnsNull) {
  EXPECT_EQ(map_.Get(0xdead0, &clock_, nullptr), kNullAddress);
}

TEST_F(HeaderMapTest, SecondPutForSameKeyReturnsWinner) {
  EXPECT_EQ(map_.Put(0x1000, 0x2000, &clock_, nullptr), 0x2000u);
  // A losing thread gets the winner's value, not its own.
  EXPECT_EQ(map_.Put(0x1000, 0x3000, &clock_, nullptr), 0x2000u);
  EXPECT_EQ(map_.installs(), 1u);
  EXPECT_GE(map_.hits(), 1u);
}

TEST_F(HeaderMapTest, ManyDistinctKeys) {
  for (Address k = 8; k <= 8 * 200; k += 8) {
    EXPECT_EQ(map_.Put(k, k + 1, &clock_, nullptr), k + 1);
  }
  for (Address k = 8; k <= 8 * 200; k += 8) {
    EXPECT_EQ(map_.Get(k, &clock_, nullptr), k + 1);
  }
  EXPECT_EQ(map_.OccupiedEntries(), 200u);
}

TEST_F(HeaderMapTest, OverflowReturnsNullAndCounts) {
  // A tiny map with a tiny probe window overflows quickly.
  MemoryDevice dram(MakeDramProfile());
  HeaderMap tiny(16 * 16 /* 16 entries */, 2 /* probe window */, &dram);
  SimClock clock;
  int overflows = 0;
  for (Address k = 8; k <= 8 * 64; k += 8) {
    if (tiny.Put(k, k + 1, &clock, nullptr) == kNullAddress) {
      ++overflows;
    }
  }
  EXPECT_GT(overflows, 0);
  EXPECT_EQ(tiny.overflows(), static_cast<uint64_t>(overflows));
  // Keys that overflowed on put must also miss on get (caller then reads the
  // NVM header) — the probe windows are identical.
  SimClock c2;
  for (Address k = 8; k <= 8 * 64; k += 8) {
    const Address got = tiny.Get(k, &c2, nullptr);
    if (got != kNullAddress) {
      EXPECT_EQ(got, k + 1);
    }
  }
}

TEST_F(HeaderMapTest, ClearStripeEmptiesMap) {
  for (Address k = 8; k <= 8 * 50; k += 8) {
    map_.Put(k, k + 1, &clock_, nullptr);
  }
  EXPECT_GT(map_.OccupiedEntries(), 0u);
  constexpr uint32_t kWorkers = 4;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    map_.ClearStripe(w, kWorkers, &clock_);
  }
  EXPECT_EQ(map_.OccupiedEntries(), 0u);
  EXPECT_EQ(map_.Get(8, &clock_, nullptr), kNullAddress);
}

TEST_F(HeaderMapTest, ClearJournalClearsExactlyOwnInstalls) {
  std::vector<uint32_t> journal_a;
  std::vector<uint32_t> journal_b;
  map_.Put(0x1000, 0x2000, &clock_, nullptr, &journal_a);
  map_.Put(0x1008, 0x2008, &clock_, nullptr, &journal_b);
  EXPECT_EQ(journal_a.size(), 1u);
  EXPECT_EQ(journal_b.size(), 1u);
  map_.ClearJournal(&journal_a, &clock_);
  EXPECT_TRUE(journal_a.empty());
  EXPECT_EQ(map_.Get(0x1000, &clock_, nullptr), kNullAddress);  // Cleared.
  EXPECT_EQ(map_.Get(0x1008, &clock_, nullptr), 0x2008u);       // Untouched.
  map_.ClearJournal(&journal_b, &clock_);
  EXPECT_EQ(map_.OccupiedEntries(), 0u);
}

TEST_F(HeaderMapTest, LoserDoesNotJournal) {
  std::vector<uint32_t> winner_journal;
  std::vector<uint32_t> loser_journal;
  map_.Put(0x1000, 0x2000, &clock_, nullptr, &winner_journal);
  map_.Put(0x1000, 0x3000, &clock_, nullptr, &loser_journal);
  EXPECT_EQ(winner_journal.size(), 1u);
  EXPECT_TRUE(loser_journal.empty());
}

TEST_F(HeaderMapTest, ProbesChargeSimulatedTime) {
  const uint64_t before = clock_.now_ns();
  map_.Put(0x1000, 0x2000, &clock_, nullptr);
  EXPECT_GT(clock_.now_ns(), before);
}

TEST_F(HeaderMapTest, PrefetchedProbeIsCheaper) {
  PrefetchQueue pf;
  map_.PrefetchProbe(0x4240, &pf);
  SimClock with_pf;
  map_.Get(0x4240, &with_pf, &pf);
  SimClock without_pf;
  map_.Get(0x4240, &without_pf, nullptr);
  EXPECT_LT(with_pf.now_ns(), without_pf.now_ns());
}

// The central concurrency property: for any set of racing installers of the
// same key, exactly one value wins and every caller observes that value.
TEST_F(HeaderMapTest, ConcurrentPutsAgreeOnOneWinner) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 256;
  MemoryDevice dram(MakeDramProfile());
  HeaderMap map(16 * 1024, 16, &dram);
  std::vector<std::vector<Address>> results(kThreads, std::vector<Address>(kKeys));
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SimClock clock;
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {
      }
      for (int k = 0; k < kKeys; ++k) {
        const Address key = 0x100000 + static_cast<Address>(k) * 8;
        const Address my_value = 0x200000 + static_cast<Address>(t) * 0x10000 + k * 8;
        results[t][k] = map.Put(key, my_value, &clock, nullptr);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  SimClock clock;
  for (int k = 0; k < kKeys; ++k) {
    const Address key = 0x100000 + static_cast<Address>(k) * 8;
    const Address stored = map.Get(key, &clock, nullptr);
    ASSERT_NE(stored, kNullAddress);
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(results[t][k], stored) << "thread " << t << " key " << k;
    }
  }
  EXPECT_EQ(map.installs(), static_cast<uint64_t>(kKeys));
}

TEST_F(HeaderMapTest, CapacityRoundedToPowerOfTwo) {
  MemoryDevice dram(MakeDramProfile());
  HeaderMap map(1000 /* bytes -> 62 entries -> 32 */, 4, &dram);
  EXPECT_EQ(map.capacity(), 32u);
}

}  // namespace
}  // namespace nvmgc
