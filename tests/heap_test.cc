// Unit tests for the managed-heap substrate: klasses, object layout, regions,
// region management, and the heap verifier.

#include <gtest/gtest.h>

#include <memory>

#include "src/heap/heap.h"
#include "src/heap/heap_verifier.h"
#include "src/nvm/memory_device.h"

namespace nvmgc {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  HeapTest()
      : nvm_(MakeOptaneProfile()),
        dram_(MakeDramProfile()),
        heap_(MakeConfig(), &nvm_, &dram_) {}

  static HeapConfig MakeConfig() {
    HeapConfig c;
    c.region_bytes = 64 * 1024;
    c.heap_regions = 32;
    c.dram_cache_regions = 8;
    c.eden_regions = 8;
    c.heap_device = DeviceKind::kNvm;
    return c;
  }

  MemoryDevice nvm_;
  MemoryDevice dram_;
  Heap heap_;
};

TEST_F(HeapTest, KlassRegistrationAndLookup) {
  KlassTable& t = heap_.klasses();
  const KlassId node = t.RegisterRegular("Node", 2, 16);
  const KlassId arr = t.RegisterRefArray("Object[]");
  const KlassId bytes = t.RegisterByteArray("byte[]");
  EXPECT_EQ(t.Get(node).ref_fields, 2);
  EXPECT_EQ(t.Get(node).payload_bytes, 16u);
  EXPECT_EQ(t.Get(arr).kind, KlassKind::kRefArray);
  EXPECT_EQ(t.Get(bytes).kind, KlassKind::kByteArray);
  EXPECT_TRUE(t.IsValid(node));
  EXPECT_FALSE(t.IsValid(999));
}

TEST_F(HeapTest, ObjectSizeComputation) {
  Klass regular;
  regular.kind = KlassKind::kRegular;
  regular.ref_fields = 3;
  regular.payload_bytes = 13;  // Padded to 16.
  EXPECT_EQ(obj::SizeOf(regular, 0), 16u + 24u + 16u);

  Klass ref_array;
  ref_array.kind = KlassKind::kRefArray;
  EXPECT_EQ(obj::SizeOf(ref_array, 10), 24u + 80u);

  Klass byte_array;
  byte_array.kind = KlassKind::kByteArray;
  EXPECT_EQ(obj::SizeOf(byte_array, 100), 24u + 104u);  // 100 padded to 104.
}

TEST_F(HeapTest, HeaderForwardingProtocol) {
  alignas(8) uint8_t storage[64] = {0};
  const Address a = reinterpret_cast<Address>(storage);
  obj::StoreMark(a, obj::MarkWithAge(2));
  EXPECT_FALSE(obj::IsForwarded(obj::LoadMark(a)));
  EXPECT_EQ(obj::AgeOf(obj::LoadMark(a)), 2u);

  const Address target = 0x1000;
  EXPECT_EQ(obj::CasForward(a, target), kNullAddress);  // We won.
  EXPECT_TRUE(obj::IsForwarded(obj::LoadMark(a)));
  EXPECT_EQ(obj::ForwardeeOf(obj::LoadMark(a)), target);
  // Second CAS loses and reports the winner.
  EXPECT_EQ(obj::CasForward(a, 0x2000), target);
}

TEST_F(HeapTest, RegionBumpAllocation) {
  Region* r = heap_.AllocateRegion(RegionType::kEden);
  ASSERT_NE(r, nullptr);
  const Address a = r->Allocate(100);
  const Address b = r->Allocate(100);
  EXPECT_EQ(b, a + 100);
  EXPECT_EQ(r->used(), 200u);
  // Exhaustion returns null.
  EXPECT_EQ(r->Allocate(r->free_bytes() + 1), kNullAddress);
  heap_.FreeRegion(r);
}

TEST_F(HeapTest, EdenQuotaEnforced) {
  std::vector<Region*> edens;
  for (uint32_t i = 0; i < MakeConfig().eden_regions; ++i) {
    Region* r = heap_.AllocateRegion(RegionType::kEden);
    ASSERT_NE(r, nullptr);
    edens.push_back(r);
  }
  EXPECT_EQ(heap_.AllocateRegion(RegionType::kEden), nullptr);
  // Non-eden regions are still available.
  Region* survivor = heap_.AllocateRegion(RegionType::kSurvivor);
  EXPECT_NE(survivor, nullptr);
  for (Region* r : edens) {
    heap_.FreeRegion(r);
  }
  EXPECT_NE(heap_.AllocateRegion(RegionType::kEden), nullptr);
}

TEST_F(HeapTest, RegionForResolvesBothArenas) {
  Region* heap_region = heap_.AllocateRegion(RegionType::kOld);
  Region* cache_region = heap_.AllocateCacheRegion();
  ASSERT_NE(heap_region, nullptr);
  ASSERT_NE(cache_region, nullptr);
  EXPECT_EQ(heap_.RegionFor(heap_region->bottom() + 8), heap_region);
  EXPECT_EQ(heap_.RegionFor(cache_region->bottom() + 8), cache_region);
  EXPECT_EQ(heap_.RegionFor(0x1), nullptr);
  EXPECT_EQ(heap_region->device(), DeviceKind::kNvm);
  EXPECT_EQ(cache_region->device(), DeviceKind::kDram);
}

TEST_F(HeapTest, FreeListExhaustion) {
  std::vector<Region*> all;
  while (true) {
    Region* r = heap_.AllocateRegion(RegionType::kOld);
    if (r == nullptr) {
      break;
    }
    all.push_back(r);
  }
  EXPECT_EQ(all.size(), MakeConfig().heap_regions);
  EXPECT_EQ(heap_.free_region_count(), 0u);
  for (Region* r : all) {
    heap_.FreeRegion(r);
  }
  EXPECT_EQ(heap_.free_region_count(), MakeConfig().heap_regions);
}

TEST_F(HeapTest, ObjectIterationParsesRegion) {
  const KlassId node = heap_.klasses().RegisterRegular("N", 1, 8);
  Region* r = heap_.AllocateRegion(RegionType::kEden);
  std::vector<Address> expected;
  for (int i = 0; i < 10; ++i) {
    const Address a = r->Allocate(obj::SizeOf(heap_.klasses().Get(node), 0));
    obj::InitializeObject(a, heap_.klasses().Get(node), 0);
    expected.push_back(a);
  }
  std::vector<Address> seen;
  heap_.ForEachObjectInRegion(r, [&](Address a) { seen.push_back(a); });
  EXPECT_EQ(seen, expected);
  heap_.FreeRegion(r);
}

TEST_F(HeapTest, RememberedSetTakeAndClear) {
  Region* r = heap_.AllocateRegion(RegionType::kSurvivor);
  r->remset().Add(0x10);
  r->remset().Add(0x20);
  EXPECT_EQ(r->remset().size(), 2u);
  const auto taken = r->remset().Take();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(r->remset().size(), 0u);
  heap_.FreeRegion(r);
}

TEST_F(HeapTest, VerifierCatchesDanglingReference) {
  const KlassId node = heap_.klasses().RegisterRegular("N", 1, 0);
  Region* r = heap_.AllocateRegion(RegionType::kEden);
  const Klass& k = heap_.klasses().Get(node);
  const Address a = r->Allocate(obj::SizeOf(k, 0));
  obj::InitializeObject(a, k, 0);
  // Point the ref field at a free region's memory.
  Region* other = heap_.AllocateRegion(RegionType::kOld);
  const Address dangling = other->bottom();
  heap_.FreeRegion(other);
  obj::StoreRef(obj::RefSlot(a, k, 0), dangling);

  Address root = a;
  HeapVerifier verifier(&heap_);
  std::string error;
  EXPECT_FALSE(verifier.VerifyReachable({&root}, &error));
  EXPECT_NE(error.find("free region"), std::string::npos);
  heap_.FreeRegion(r);
}

TEST_F(HeapTest, VerifierCatchesStaleForwardingPointer) {
  const KlassId node = heap_.klasses().RegisterRegular("N", 0, 0);
  Region* r = heap_.AllocateRegion(RegionType::kEden);
  const Klass& k = heap_.klasses().Get(node);
  const Address a = r->Allocate(obj::SizeOf(k, 0));
  obj::InitializeObject(a, k, 0);
  obj::CasForward(a, 0x1000);  // Leftover forwarding pointer.
  Address root = a;
  HeapVerifier verifier(&heap_);
  std::string error;
  EXPECT_FALSE(verifier.VerifyReachable({&root}, &error));
  EXPECT_NE(error.find("forwarding"), std::string::npos);
  heap_.FreeRegion(r);
}

TEST_F(HeapTest, HumongousRegionAllocation) {
  Region* r = heap_.AllocateHumongousRegion();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->type(), RegionType::kHumongous);
  EXPECT_TRUE(r->is_old_like());
  heap_.FreeRegion(r);
}

TEST_F(HeapTest, RegionTypeNames) {
  EXPECT_STREQ(RegionTypeName(RegionType::kEden), "eden");
  EXPECT_STREQ(RegionTypeName(RegionType::kWriteCache), "write-cache");
}

}  // namespace
}  // namespace nvmgc
