// Unit tests for the NVM device simulation substrate.

#include <gtest/gtest.h>

#include "src/nvm/bandwidth_ledger.h"
#include "src/nvm/bandwidth_model.h"
#include "src/nvm/device_profile.h"
#include "src/nvm/memory_device.h"
#include "src/nvm/prefetch_queue.h"
#include "src/nvm/sim_clock.h"

namespace nvmgc {
namespace {

TEST(DeviceProfileTest, OptaneIsSlowerThanDramInLatency) {
  const DeviceProfile dram = MakeDramProfile();
  const DeviceProfile nvm = MakeOptaneProfile();
  EXPECT_GT(nvm.random_read_latency_ns, 2 * dram.random_read_latency_ns);
  EXPECT_GT(nvm.random_write_latency_ns, dram.random_write_latency_ns);
}

TEST(DeviceProfileTest, OptaneBandwidthIsAsymmetric) {
  const DeviceProfile nvm = MakeOptaneProfile();
  EXPECT_GT(nvm.peak_read_bw_mbps, 2.0 * nvm.peak_write_bw_mbps);
  EXPECT_GT(nvm.peak_write_nt_bw_mbps, nvm.peak_write_bw_mbps);
}

TEST(BandwidthModelTest, PureReadReachesCeiling) {
  BandwidthModel model(MakeOptaneProfile());
  MixState mix;
  mix.write_fraction = 0.0;
  mix.active_threads = model.profile().read_saturation_threads;
  EXPECT_NEAR(model.TotalBandwidthMbps(mix), model.profile().peak_read_bw_mbps, 1.0);
}

TEST(BandwidthModelTest, PureNonTemporalWriteReachesNtCeiling) {
  BandwidthModel model(MakeOptaneProfile());
  MixState mix;
  mix.write_fraction = 1.0;
  mix.nt_write_fraction = 1.0;
  mix.active_threads = 4;
  EXPECT_NEAR(model.TotalBandwidthMbps(mix), model.profile().peak_write_nt_bw_mbps, 1.0);
}

TEST(BandwidthModelTest, MixedWorkloadCollapsesOnNvm) {
  BandwidthModel model(MakeOptaneProfile());
  MixState pure_read{0.0, 0.0, 8};
  MixState mixed{0.3, 0.0, 8};
  const double read_bw = model.TotalBandwidthMbps(pure_read);
  const double mixed_bw = model.TotalBandwidthMbps(mixed);
  // The paper's core observation: a modest write share destroys total NVM
  // bandwidth far beyond the harmonic blend.
  EXPECT_LT(mixed_bw, 0.35 * read_bw);
}

TEST(BandwidthModelTest, MixedWorkloadBarelyAffectsDram) {
  BandwidthModel model(MakeDramProfile());
  MixState pure_read{0.0, 0.0, 8};
  MixState mixed{0.3, 0.0, 8};
  const double ratio = model.TotalBandwidthMbps(mixed) / model.TotalBandwidthMbps(pure_read);
  EXPECT_GT(ratio, 0.55);
}

TEST(BandwidthModelTest, NonTemporalWritesInterfereLess) {
  BandwidthModel model(MakeOptaneProfile());
  MixState regular{0.3, 0.0, 8};
  MixState nt{0.3, 0.3, 8};
  EXPECT_GT(model.TotalBandwidthMbps(nt), 1.3 * model.TotalBandwidthMbps(regular));
}

TEST(BandwidthModelTest, NvmWriteSideSaturatesEarly) {
  BandwidthModel model(MakeOptaneProfile());
  const double bw4 = model.WriteCeilingMbps(4, 0.0);
  const double bw8 = model.WriteCeilingMbps(8, 0.0);
  const double bw56 = model.WriteCeilingMbps(56, 0.0);
  EXPECT_NEAR(bw4, model.profile().peak_write_bw_mbps, 1.0);
  EXPECT_LE(bw8, bw4);
  EXPECT_LT(bw56, bw8);  // Contention decline beyond the knee.
}

TEST(BandwidthModelTest, DramReadScalesWithThreads) {
  BandwidthModel model(MakeDramProfile());
  EXPECT_GT(model.ReadCeilingMbps(16), 1.9 * model.ReadCeilingMbps(8));
}

TEST(SimClockTest, AdvanceAndSync) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.Advance(150);
  EXPECT_EQ(clock.now_ns(), 150u);
  clock.SyncForwardTo(100);
  EXPECT_EQ(clock.now_ns(), 150u);
  clock.SyncForwardTo(400);
  EXPECT_EQ(clock.now_ns(), 400u);
}

TEST(MemoryDeviceTest, RandomReadPaysLatency) {
  MemoryDevice dev(MakeOptaneProfile());
  SimClock clock;
  const uint64_t cost = dev.Access(&clock, RandomRead(0x1000, 64));
  EXPECT_GE(cost, dev.profile().random_read_latency_ns);
  EXPECT_EQ(clock.now_ns(), cost);
}

TEST(MemoryDeviceTest, PrefetchedReadIsCheaper) {
  MemoryDevice dev(MakeOptaneProfile());
  SimClock clock;
  AccessDescriptor plain = RandomRead(0x1000, 64);
  AccessDescriptor prefetched = plain;
  prefetched.prefetched = true;
  EXPECT_LT(dev.CostNs(0, prefetched), dev.CostNs(0, plain) / 2);
}

TEST(MemoryDeviceTest, SequentialBigAccessDominatedByBandwidth) {
  MemoryDevice dev(MakeOptaneProfile());
  SimClock clock;
  const uint64_t small = dev.Access(&clock, SequentialRead(0x0, 64));
  const uint64_t big = dev.Access(&clock, SequentialRead(0x0, 1 << 20));
  EXPECT_GT(big, 100 * small);
}

TEST(MemoryDeviceTest, CountersTrackTraffic) {
  MemoryDevice dev(MakeDramProfile());
  SimClock clock;
  dev.Access(&clock, RandomRead(0x0, 128));
  dev.Access(&clock, NonTemporalWrite(0x40, 256));
  const DeviceCounters c = dev.counters();
  EXPECT_EQ(c.read_bytes, 128u);
  EXPECT_EQ(c.write_bytes, 256u);
  EXPECT_EQ(c.nt_write_bytes, 256u);
  EXPECT_EQ(c.read_ops, 1u);
  EXPECT_EQ(c.write_ops, 1u);
}

TEST(MemoryDeviceTest, MoreActiveThreadsShrinkPerThreadShare) {
  MemoryDevice dev(MakeOptaneProfile());
  // Saturate write mix so total bandwidth stops scaling with threads.
  SimClock warm;
  for (int i = 0; i < 200; ++i) {
    dev.Access(&warm, SequentialWrite(0x0, 4096));
  }
  AccessDescriptor big_write = SequentialWrite(0x0, 1 << 20);
  const uint64_t at8 = [&] {
    ScopedDeviceActivity activity(&dev, 8);
    return dev.CostNs(warm.now_ns(), big_write);
  }();
  const uint64_t at56 = [&] {
    ScopedDeviceActivity activity(&dev, 56);
    return dev.CostNs(warm.now_ns(), big_write);
  }();
  EXPECT_GT(at56, 3 * at8);
}

TEST(BandwidthLedgerTest, MixReflectsRecentTraffic) {
  BandwidthLedger ledger(1000);
  AccessDescriptor read = SequentialRead(0, 3000);
  AccessDescriptor write = SequentialWrite(0, 1000);
  ledger.Charge(500, read);
  ledger.Charge(600, write);
  const auto mix = ledger.SampleMix(700);
  EXPECT_NEAR(mix.write_fraction, 0.25, 1e-9);
  EXPECT_EQ(mix.window_bytes, 4000u);
}

TEST(BandwidthLedgerTest, OldTrafficAgesOut) {
  BandwidthLedger ledger(1000);
  ledger.Charge(0, SequentialWrite(0, 1 << 20));
  const auto mix = ledger.SampleMix(1'000'000);  // 1000 buckets later.
  EXPECT_EQ(mix.window_bytes, 0u);
  EXPECT_EQ(mix.write_fraction, 0.0);
}

TEST(BandwidthRecorderTest, SeriesBucketsBytes) {
  BandwidthRecorder rec(1'000'000, 16);  // 1ms buckets.
  rec.Start(0);
  rec.Charge(100, SequentialRead(0, 1'000'000));       // Bucket 0: 1 MB read.
  rec.Charge(1'500'000, SequentialWrite(0, 500'000));  // Bucket 1: 0.5 MB write.
  const auto series = rec.Series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0].read_mbps, 1000.0, 1.0);   // 1MB per ms = 1000 MB/s.
  EXPECT_NEAR(series[1].write_mbps, 500.0, 1.0);
  EXPECT_EQ(series[0].time_ns, 0u);
  EXPECT_EQ(series[1].time_ns, 1'000'000u);
}

TEST(PrefetchQueueTest, HitThenConsume) {
  PrefetchQueue q;
  q.Prefetch(0x12345);
  EXPECT_TRUE(q.Consume(0x12345));
  EXPECT_FALSE(q.Consume(0x12345));  // One-shot.
  EXPECT_EQ(q.issued(), 1u);
  EXPECT_EQ(q.hits(), 1u);
}

TEST(PrefetchQueueTest, SameLineMatches) {
  PrefetchQueue q;
  q.Prefetch(0x1000);
  EXPECT_TRUE(q.Consume(0x103F));  // Same 64B line.
}

TEST(PrefetchQueueTest, CapacityEvictsOldest) {
  PrefetchQueue q;
  q.Prefetch(0x40);
  for (size_t i = 0; i < PrefetchQueue::kCapacity; ++i) {
    q.Prefetch(0x100000 + i * 64);
  }
  EXPECT_FALSE(q.Consume(0x40));
}

}  // namespace
}  // namespace nvmgc
