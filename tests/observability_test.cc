// Tests for the observability layer (src/obs/): the MetricsRegistry with its
// stable dotted names and snapshot-vs-aggregate consistency, the GcTracer
// ring buffers, and the Chrome-trace export of a real traced GC cycle.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/global_root.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

TEST(MetricsRegistryTest, CountersGaugesAndHistograms) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("gc.never_recorded"), 0u);
  EXPECT_FALSE(m.has_counter("gc.never_recorded"));
  m.AddCounter("gc.steals", 3);
  m.AddCounter("gc.steals", 4);
  EXPECT_EQ(m.counter("gc.steals"), 7u);
  EXPECT_TRUE(m.has_counter("gc.steals"));

  m.SetGauge("cache.occupancy_bytes", 10);
  m.SetGauge("cache.occupancy_bytes", 5);  // Last value wins.
  EXPECT_EQ(m.gauges().at("cache.occupancy_bytes"), 5u);

  EXPECT_EQ(m.histogram("gc.pause_ns"), nullptr);
  m.RecordHistogram("gc.pause_ns", 100);
  m.RecordHistogram("gc.pause_ns", 300);
  ASSERT_NE(m.histogram("gc.pause_ns"), nullptr);
  EXPECT_EQ(m.histogram("gc.pause_ns")->count(), 2u);
  EXPECT_EQ(m.histogram("gc.pause_ns")->max(), 300u);
}

TEST(MetricsRegistryTest, NameListsAreSorted) {
  MetricsRegistry m;
  m.AddCounter("hm.installs", 1);
  m.AddCounter("cache.bytes_staged", 1);
  m.AddCounter("gc.steals", 1);
  const std::vector<std::string> names = m.CounterNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.front(), "cache.bytes_staged");
}

TEST(MetricsRegistryTest, RecordPauseFeedsLifetimeCounters) {
  MetricsRegistry m;
  PauseSnapshot a;
  a.id = 0;
  a.values["gc.pause_ns"] = 100;
  a.values["gc.bytes_copied"] = 64;
  PauseSnapshot b;
  b.id = 1;
  b.values["gc.pause_ns"] = 50;
  b.values["gc.bytes_copied"] = 32;
  m.RecordPause(a);
  m.RecordPause(b);
  ASSERT_EQ(m.pauses().size(), 2u);
  // Snapshot-vs-aggregate consistency by construction: lifetime counters are
  // the sums of the per-pause values.
  EXPECT_EQ(m.counter("gc.pause_ns"), 150u);
  EXPECT_EQ(m.counter("gc.bytes_copied"), 96u);
  for (const PauseSnapshot& p : m.pauses()) {
    for (const auto& [name, value] : p.values) {
      EXPECT_LE(value, m.counter(name)) << name;
    }
  }
}

TEST(MetricsRegistryTest, SnapshotFromCycleUsesTheStableNames) {
  GcCycleStats cycle;
  cycle.start_ns = 42;
  cycle.pause_ns = 1000;
  cycle.cache_bytes_staged = 4096;
  cycle.header_map_installs = 7;
  cycle.device_read_bytes = 8192;
  const PauseSnapshot snap = SnapshotFromCycle(3, cycle);
  EXPECT_EQ(snap.id, 3u);
  EXPECT_EQ(snap.start_ns, 42u);
  // The snapshot keys are exactly GcPauseMetricNames() — the documented
  // stable scheme consumers (bench JSON, CI checker) rely on.
  const std::vector<std::string>& names = GcPauseMetricNames();
  ASSERT_EQ(snap.values.size(), names.size());
  for (const std::string& name : names) {
    EXPECT_TRUE(snap.values.count(name)) << name;
  }
  EXPECT_EQ(snap.values.at("gc.pause_ns"), 1000u);
  EXPECT_EQ(snap.values.at("cache.bytes_staged"), 4096u);
  EXPECT_EQ(snap.values.at("hm.installs"), 7u);
  EXPECT_EQ(snap.values.at("device.heap.read_bytes"), 8192u);
}

TEST(MetricsRegistryTest, RecordGcCycleAppendsSnapshotAndHistograms) {
  MetricsRegistry m;
  GcCycleStats cycle;
  cycle.pause_ns = 500;
  cycle.read_phase_ns = 300;
  cycle.writeback_phase_ns = 200;
  RecordGcCycle(&m, cycle);
  RecordGcCycle(&m, cycle);
  ASSERT_EQ(m.pauses().size(), 2u);
  EXPECT_EQ(m.pauses()[0].id, 0u);
  EXPECT_EQ(m.pauses()[1].id, 1u);
  EXPECT_EQ(m.counter("gc.pause_ns"), 1000u);
  ASSERT_NE(m.histogram("gc.pause_ns"), nullptr);
  EXPECT_EQ(m.histogram("gc.pause_ns")->count(), 2u);
  ASSERT_NE(m.histogram("gc.read_phase_ns"), nullptr);
  EXPECT_EQ(m.histogram("gc.read_phase_ns")->Mean(), 300.0);
}

TEST(MetricsRegistryTest, KindSplitHistogramsTrackPauseKind) {
  MetricsRegistry m;
  GcCycleStats minor;
  minor.pause_ns = 100;
  minor.read_phase_ns = 60;
  minor.writeback_phase_ns = 40;
  GcCycleStats major = minor;
  major.is_major = 1;
  major.pause_ns = 900;
  RecordGcCycle(&m, minor);
  RecordGcCycle(&m, minor);
  RecordGcCycle(&m, major);
  // The aggregate histogram sees every pause; the kind-split pair partitions
  // the same recordings, so their counts sum to the aggregate's.
  ASSERT_NE(m.histogram("gc.pause_ns"), nullptr);
  ASSERT_NE(m.histogram("gc.pause.minor.pause_ns"), nullptr);
  ASSERT_NE(m.histogram("gc.pause.major.pause_ns"), nullptr);
  EXPECT_EQ(m.histogram("gc.pause.minor.pause_ns")->count(), 2u);
  EXPECT_EQ(m.histogram("gc.pause.major.pause_ns")->count(), 1u);
  EXPECT_EQ(m.histogram("gc.pause.minor.pause_ns")->count() +
                m.histogram("gc.pause.major.pause_ns")->count(),
            m.histogram("gc.pause_ns")->count());
  EXPECT_EQ(m.histogram("gc.pause.major.pause_ns")->max(), 900u);
  // Both kinds surface in the percentile digests (bench JSON
  // metrics.histograms and the GC report table read these).
  const auto summaries = m.Summaries();
  EXPECT_TRUE(summaries.count("gc.pause.minor.read_phase_ns"));
  EXPECT_TRUE(summaries.count("gc.pause.major.writeback_phase_ns"));
}

TEST(HistogramSummaryTest, MergeAndResetAcrossPauses) {
  // Merge folds another histogram's buckets in; Reset empties everything —
  // the semantics RecordGcCycleHistograms leans on when accumulating pauses.
  Histogram a;
  a.Record(100);
  a.Record(200);
  Histogram b;
  b.Record(400);
  a.Merge(b);
  HistogramSummary s = Summarize(a);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max, 400u);
  EXPECT_DOUBLE_EQ(s.mean, (100.0 + 200.0 + 400.0) / 3.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);

  a.Reset();
  s = Summarize(a);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
  // A reset histogram accumulates from scratch, unaffected by old buckets.
  a.Record(7);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
}

TEST(MetricsRegistryTest, SnapshotsAreIsolatedFromLaterUpdates) {
  // A per-pause snapshot is a value copy: once recorded, neither mutating the
  // source cycle nor recording later pauses may change it, and mid-pause the
  // lifetime counters must reflect only *completed* pauses — a reader between
  // RecordGcCycle calls never sees partially-updated gen.*/gc.* values.
  MetricsRegistry m;
  GcCycleStats cycle;
  cycle.pause_ns = 100;
  cycle.bytes_copied = 4096;
  RecordGcCycle(&m, cycle);
  const PauseSnapshot first = m.pauses()[0];  // Copy, as a reader would take.

  cycle.pause_ns = 900;        // Mutate the source after recording...
  cycle.bytes_copied = 1 << 20;
  EXPECT_EQ(m.pauses()[0].values.at("gc.pause_ns"), 100u);  // ...no effect.
  EXPECT_EQ(m.counter("gc.pause_ns"), 100u);  // Mid-pause: only pause 0.
  EXPECT_EQ(m.counter("gc.bytes_copied"), 4096u);

  RecordGcCycle(&m, cycle);
  // The earlier snapshot is untouched by the second pause.
  EXPECT_EQ(m.pauses()[0].values.at("gc.pause_ns"), first.values.at("gc.pause_ns"));
  EXPECT_EQ(m.pauses()[1].values.at("gc.pause_ns"), 900u);
  EXPECT_EQ(m.counter("gc.pause_ns"), 1000u);
}

TEST(GcTracerTest, DisabledTracerRecordsNothing) {
  SimClock clock;
  GcTracer tracer(2);
  ASSERT_FALSE(tracer.enabled());
  tracer.BindThread(0);
  tracer.Emit("gc.read_phase", "gc", 0, 10);
  { TraceSpan span(&tracer, &clock, "gc.pause", "gc"); }
  EXPECT_TRUE(tracer.SortedEvents().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(GcTracerTest, RingOverflowDropsOldestAndCounts) {
  GcTracer tracer(1, /*ring_capacity=*/4);
  tracer.set_enabled(true);
  tracer.BindThread(0);
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Emit("gc.steal", "gc", i, i + 1);
  }
  const std::vector<TraceEvent> events = tracer.SortedEvents();
  ASSERT_EQ(events.size(), 4u);  // Ring retains the newest capacity events.
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(events.front().start_ns, 6u);
  EXPECT_EQ(events.back().start_ns, 9u);
}

VmOptions TracedVm() {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 256;
  o.heap.dram_cache_regions = 32;
  o.heap.eden_regions = 32;
  o.gc = GcOptionsBuilder(AllOptimizationsOptions(CollectorKind::kG1, 4))
             .HeaderMapMinThreads(2)
             .Build();
  o.trace_gc = true;
  return o;
}

// Runs two real GC cycles with live data and checks the recorded spans:
// one gc.pause span per cycle on the control tid, worker read-phase spans on
// worker tids, every span nested inside its pause.
TEST(GcTracerTest, TracedGcCycleProducesNestedPhaseSpans) {
  Vm vm(TracedVm());
  Mutator* m = vm.CreateMutator();
  const KlassId refs = vm.heap().klasses().RegisterRefArray("Object[]");
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 64);
  GlobalRoot table(vm, m->Allocate({refs, 64}));
  for (size_t i = 0; i < 64; ++i) {
    m->WriteRef(table.Get(), i, m->Allocate({node}));
  }
  vm.CollectNow();
  vm.CollectNow();

  const std::vector<TraceEvent> events = vm.tracer().SortedEvents();
  ASSERT_FALSE(events.empty());
  const uint32_t control = vm.tracer().control_tid();

  std::vector<TraceEvent> pauses;
  std::set<uint32_t> read_tids;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "gc.pause") {
      EXPECT_EQ(e.tid, control);
      EXPECT_GT(e.dur_ns, 0u);
      pauses.push_back(e);
    } else if (std::string(e.name) == "gc.read_phase") {
      EXPECT_LT(e.tid, control);  // Worker spans carry worker tids.
      read_tids.insert(e.tid);
    }
  }
  EXPECT_EQ(pauses.size(), vm.gc_count());
  EXPECT_FALSE(read_tids.empty());

  // Every non-pause span nests inside some pause interval.
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "gc.pause") continue;
    const bool nested = std::any_of(
        pauses.begin(), pauses.end(), [&](const TraceEvent& p) {
          return p.start_ns <= e.start_ns &&
                 e.start_ns + e.dur_ns <= p.start_ns + p.dur_ns;
        });
    EXPECT_TRUE(nested) << e.name << " @" << e.start_ns;
  }

  // Metrics agree with the trace: one snapshot per pause, and no per-pause
  // value exceeds the lifetime counter of the same name.
  ASSERT_EQ(vm.metrics().pauses().size(), vm.gc_count());
  for (const PauseSnapshot& p : vm.metrics().pauses()) {
    for (const auto& [name, value] : p.values) {
      EXPECT_LE(value, vm.metrics().counter(name)) << name;
    }
  }
  EXPECT_GT(vm.metrics().counter("gc.bytes_copied"), 0u);
}

TEST(GcTracerTest, WriteChromeTraceProducesLoadableJson) {
  Vm vm(TracedVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 64);
  GlobalRoot keep(vm, m->Allocate({node}));
  vm.CollectNow();

  const std::string path = testing::TempDir() + "/nvmgc_trace_test.json";
  ASSERT_TRUE(vm.tracer().WriteChromeTrace(path, "observability_test"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  // Structural checks on the Chrome-trace envelope; full JSON validation is
  // scripts/check_bench_artifacts.py's job in CI.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"gc.pause\""), std::string::npos);
  EXPECT_NE(json.find("\"gc.read_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back() == '\n' ? json[json.size() - 2] : json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace nvmgc
