// Tests for old-generation region reclamation (the concurrent-cycle analog).

#include <gtest/gtest.h>

#include <deque>

#include "src/gc/old_reclaim.h"
#include "src/heap/heap_verifier.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

VmOptions SmallVm() {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 256;
  o.heap.dram_cache_regions = 32;
  o.heap.eden_regions = 32;
  o.heap.tenure_age = 1;  // Promote after a single survived GC.
  o.gc.gc_threads = 4;
  return o;
}

TEST(OldReclaimTest, DeadOldRegionsAreFreed) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 32);

  // Promote a batch of objects to old, then drop their roots.
  std::vector<RootHandle> roots;
  for (int i = 0; i < 2000; ++i) {
    roots.push_back(vm.NewRoot(m->Allocate({node})));
  }
  vm.CollectNow();
  vm.CollectNow();  // tenure_age 1: survivors promote here.
  EXPECT_GT(vm.heap().CountRegions(RegionType::kOld), 0u);
  for (RootHandle r : roots) {
    vm.ReleaseRoot(r);
  }
  const uint32_t free_before = vm.heap().free_region_count();
  const OldReclaimStats stats = ReclaimDeadOldRegions(&vm.heap(), vm.RootSlots());
  EXPECT_GT(stats.regions_freed, 0u);
  EXPECT_GT(vm.heap().free_region_count(), free_before);
}

TEST(OldReclaimTest, LiveOldRegionsSurvive) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 32);
  const RootHandle keeper = vm.NewRoot(m->Allocate({node}));
  vm.CollectNow();
  vm.CollectNow();
  ASSERT_TRUE(vm.heap().RegionFor(vm.GetRoot(keeper))->is_old_like());
  const OldReclaimStats stats = ReclaimDeadOldRegions(&vm.heap(), vm.RootSlots());
  EXPECT_GE(stats.regions_kept, 1u);
  // The object is intact.
  EXPECT_EQ(obj::KlassIdOf(vm.GetRoot(keeper)), node);
}

TEST(OldReclaimTest, TransitivelyLiveOldObjectsKept) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 32);
  Address a = m->Allocate({node});
  Address b = m->Allocate({node});
  const RootHandle root = vm.NewRoot(a);
  const RootHandle temp = vm.NewRoot(b);
  m->WriteRef(a, 0, b);
  vm.CollectNow();
  vm.CollectNow();
  vm.ReleaseRoot(temp);  // b is now live only through a.
  ReclaimDeadOldRegions(&vm.heap(), vm.RootSlots());
  a = vm.GetRoot(root);
  b = m->ReadRef(a, 0);
  ASSERT_NE(b, kNullAddress);
  EXPECT_EQ(obj::KlassIdOf(b), node);
}

TEST(OldReclaimTest, StaleRemsetEntriesPurged) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 32);
  // Old object pointing at a young object -> remset entry from the old region.
  std::vector<RootHandle> batch;
  for (int i = 0; i < 2000; ++i) {
    batch.push_back(vm.NewRoot(m->Allocate({node})));
  }
  vm.CollectNow();
  vm.CollectNow();
  Address old_obj = vm.GetRoot(batch[0]);
  ASSERT_TRUE(vm.heap().RegionFor(old_obj)->is_old_like());
  Address young = m->Allocate({node});
  const RootHandle young_root = vm.NewRoot(young);
  m->WriteRef(old_obj, 0, young);
  // Kill the old batch (including the referencing object).
  for (RootHandle r : batch) {
    vm.ReleaseRoot(r);
  }
  const OldReclaimStats stats = ReclaimDeadOldRegions(&vm.heap(), vm.RootSlots());
  EXPECT_GT(stats.regions_freed, 0u);
  EXPECT_GT(stats.remset_entries_purged, 0u);
  // The next young GC must not touch the purged slot.
  vm.CollectNow();
  HeapVerifier verifier(&vm.heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm.RootSlots(), &error)) << error;
  static_cast<void>(young_root);
}

TEST(OldReclaimTest, VmTriggersReclaimUnderPressure) {
  VmOptions o = SmallVm();
  o.heap.tenure_age = 1;
  Vm vm(o);
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 48);
  // Rolling window of promoted-then-dropped objects: the live window exceeds
  // eden, so survivors promote, and without reclamation the old generation
  // would exhaust the 256-region (16 MiB) heap.
  std::deque<RootHandle> window;
  for (int i = 0; i < 350000; ++i) {
    window.push_back(vm.NewRoot(m->Allocate({node})));
    if (window.size() > 30000) {
      vm.ReleaseRoot(window.front());
      window.pop_front();
    }
  }
  EXPECT_GT(vm.old_reclaim_count(), 0u);
}

}  // namespace
}  // namespace nvmgc
