// Tests for the adaptive GC policy engine: controller rules on hand-built
// signal sequences, guardrails (warmup, cooldown, retreat), the Vm feedback
// loop, seeded determinism, and the GcReport decision table.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/nvm/bandwidth_model.h"
#include "src/nvm/device_profile.h"
#include "src/policy/policy_engine.h"
#include "src/policy/policy_signals.h"
#include "src/runtime/gc_report.h"
#include "src/runtime/vm.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

constexpr size_t kHeapBytes = 64 * 1024 * 1024;
constexpr size_t kCacheBytes = 24 * 1024 * 1024;

GcOptions EngineOptions(uint32_t threads = 8) {
  return AdaptiveOptions(CollectorKind::kG1, threads);
}

PolicyEngine MakeEngine(const GcOptions& options = EngineOptions()) {
  return PolicyEngine(options, kHeapBytes, kCacheBytes, MakeOptaneProfile());
}

// A pause that should trigger no rule: cache half full with no overflow, no
// header-map or flush traffic, no device-bound read phase, no prefetches.
PolicySignals CalmSignals(uint64_t pause_id, const PolicyEngine& engine) {
  PolicySignals s;
  s.pause_id = pause_id;
  s.pause_ns = 1'000'000;
  s.read_phase_ns = 800'000;
  s.writeback_phase_ns = 200'000;
  s.bytes_copied = 4 * 1024 * 1024;
  s.objects_copied = 1000;
  s.refs_processed = 3000;
  s.cache_bytes_staged = engine.tuning().write_cache_capacity_bytes / 2;
  return s;
}

// Advances the engine past its warmup window with calm pauses; returns the
// next free pause id.
uint64_t Warmup(PolicyEngine& engine, const GcOptions& options) {
  uint64_t pause = 1;
  for (uint32_t i = 0; i < options.adaptive.warmup_pauses; ++i, ++pause) {
    EXPECT_EQ(engine.OnPauseEnd(CalmSignals(pause, engine)), 0u);
  }
  return pause;
}

TEST(PolicyKnobTest, EveryKnobHasAName) {
  for (size_t i = 0; i < kPolicyKnobCount; ++i) {
    EXPECT_STRNE(PolicyKnobName(static_cast<PolicyKnob>(i)), "?");
  }
}

TEST(PolicyEngineTest, InitialTuningReproducesStaticConfiguration) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  const GcTuning& t = engine.tuning();
  EXPECT_EQ(t.active_gc_threads, options.gc_threads);
  EXPECT_EQ(t.write_cache_capacity_bytes, kHeapBytes / 32);  // Paper default.
  EXPECT_TRUE(t.header_map_enabled);
  EXPECT_TRUE(t.async_flush);
  EXPECT_EQ(t.prefetch_window, 64u);
  // Sentinels resolved: nothing is 0 / "keep".
  EXPECT_GT(t.write_cache_capacity_bytes, 0u);
  EXPECT_GT(t.header_map_entries, 0u);
}

TEST(PolicyEngineTest, ResolvesClampRanges) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  EXPECT_EQ(engine.min_threads(), 1u);
  EXPECT_EQ(engine.max_threads(), options.gc_threads);
  EXPECT_EQ(engine.min_cache_bytes(), options.adaptive.min_write_cache_bytes);
  // Derived ceiling: min(cache arena, heap/8).
  EXPECT_EQ(engine.max_cache_bytes(), kHeapBytes / 8);
  EXPECT_GE(engine.max_hm_entries(), engine.min_hm_entries());
}

TEST(PolicyEngineTest, WarmupPausesMakeNoDecisions) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  PolicySignals s = CalmSignals(1, engine);
  // Even an alarming signal makes no (non-retreat) decision during warmup.
  s.cache_overflow_bytes = s.cache_bytes_staged;
  EXPECT_EQ(engine.OnPauseEnd(s), 0u);
  EXPECT_TRUE(engine.decisions().empty());
}

TEST(PolicyEngineTest, GrowsWriteCacheOnOverflow) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  const size_t before = engine.tuning().write_cache_capacity_bytes;
  PolicySignals s = CalmSignals(pause, engine);
  s.cache_overflow_bytes = s.cache_bytes_staged;  // 50% overflow.
  EXPECT_GT(engine.OnPauseEnd(s), 0u);
  EXPECT_GT(engine.tuning().write_cache_capacity_bytes, before);
  bool found = false;
  for (const PolicyDecision& d : engine.decisions()) {
    if (d.knob == PolicyKnob::kWriteCacheBytes) {
      found = true;
      EXPECT_EQ(d.old_value, before);
      EXPECT_EQ(d.new_value, engine.tuning().write_cache_capacity_bytes);
      EXPECT_NE(d.reason.find("overflow"), std::string::npos) << d.reason;
      EXPECT_FALSE(d.retreat);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PolicyEngineTest, ShrinksIdleWriteCacheButNotBelowDemand) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  const size_t before = engine.tuning().write_cache_capacity_bytes;
  PolicySignals s = CalmSignals(pause, engine);
  s.cache_bytes_staged = before / 10;  // Well under the 25% occupancy bar.
  EXPECT_GT(engine.OnPauseEnd(s), 0u);
  const size_t after = engine.tuning().write_cache_capacity_bytes;
  EXPECT_LT(after, before);
  EXPECT_GE(after, engine.min_cache_bytes());
  EXPECT_GE(after, s.cache_bytes_staged * 2);  // Never shrink below 2x demand.
}

TEST(PolicyEngineTest, CooldownHoldsAKnobStill) {
  const GcOptions options = EngineOptions();  // cooldown_pauses = 1.
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  PolicySignals grow = CalmSignals(pause, engine);
  grow.cache_overflow_bytes = grow.cache_bytes_staged;
  EXPECT_GT(engine.OnPauseEnd(grow), 0u);
  const size_t grown = engine.tuning().write_cache_capacity_bytes;

  // The very next pause overflows too, but the knob is cooling down.
  PolicySignals again = CalmSignals(pause + 1, engine);
  again.cache_overflow_bytes = again.cache_bytes_staged;
  engine.OnPauseEnd(again);
  EXPECT_EQ(engine.tuning().write_cache_capacity_bytes, grown);

  // One pause later the cooldown has passed.
  PolicySignals later = CalmSignals(pause + 2, engine);
  later.cache_overflow_bytes = later.cache_bytes_staged;
  engine.OnPauseEnd(later);
  EXPECT_GT(engine.tuning().write_cache_capacity_bytes, grown);
}

TEST(PolicyEngineTest, RetreatsOnDegradedPauseAndBlocksRegrowth) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  ASSERT_TRUE(engine.tuning().async_flush);

  // DRAM pressure: the guardrail fires even though the knobs are cooling.
  PolicySignals bad = CalmSignals(pause, engine);
  bad.cache_fault_denials = 3;
  bad.cache_fallback_workers = 1;
  const size_t cache_before = engine.tuning().write_cache_capacity_bytes;
  EXPECT_GT(engine.OnPauseEnd(bad), 0u);
  EXPECT_EQ(engine.retreats(), 1u);
  EXPECT_FALSE(engine.tuning().async_flush);
  EXPECT_LT(engine.tuning().write_cache_capacity_bytes, cache_before);
  for (const PolicyDecision& d : engine.decisions()) {
    EXPECT_TRUE(d.retreat);
    EXPECT_NE(d.reason.find("retreat"), std::string::npos) << d.reason;
  }

  // Growth stays blocked inside the retreat window even under overflow.
  ++pause;
  PolicySignals overflow = CalmSignals(pause, engine);
  overflow.cache_overflow_bytes = overflow.cache_bytes_staged;
  const size_t after_retreat = engine.tuning().write_cache_capacity_bytes;
  engine.OnPauseEnd(overflow);
  EXPECT_EQ(engine.tuning().write_cache_capacity_bytes, after_retreat);

  // Past the window the controller grows again.
  ++pause;
  PolicySignals recover = CalmSignals(pause, engine);
  recover.cache_overflow_bytes = recover.cache_bytes_staged;
  engine.OnPauseEnd(recover);
  EXPECT_GT(engine.tuning().write_cache_capacity_bytes, after_retreat);
}

TEST(PolicyEngineTest, ResizesHeaderMapFromOverflowRate) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  ASSERT_TRUE(engine.tuning().header_map_enabled);
  const size_t before = engine.tuning().header_map_entries;

  PolicySignals s = CalmSignals(pause, engine);
  s.hm_installs = 700;
  s.hm_overflows = 300;  // 30% overflow rate.
  EXPECT_GT(engine.OnPauseEnd(s), 0u);
  EXPECT_EQ(engine.tuning().header_map_entries, before * 2);

  // Near-empty map with no overflow halves back after the cooldown.
  pause += 2;
  PolicySignals idle = CalmSignals(pause, engine);
  idle.hm_installs = 4;
  EXPECT_GT(engine.OnPauseEnd(idle), 0u);
  EXPECT_EQ(engine.tuning().header_map_entries, before);
}

TEST(PolicyEngineTest, AsyncFlushHysteresisOnStealTaint) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  ASSERT_TRUE(engine.tuning().async_flush);

  PolicySignals tainted = CalmSignals(pause, engine);
  tainted.regions_flushed_async = 10;
  tainted.regions_steal_tainted = 6;  // 60% > off threshold.
  EXPECT_GT(engine.OnPauseEnd(tainted), 0u);
  EXPECT_FALSE(engine.tuning().async_flush);

  // 30% taint is inside the hysteresis band: stays off.
  pause += 2;
  PolicySignals band = CalmSignals(pause, engine);
  band.regions_flushed_sync = 10;
  band.regions_steal_tainted = 3;
  engine.OnPauseEnd(band);
  EXPECT_FALSE(engine.tuning().async_flush);

  // 10% taint re-enables it.
  pause += 2;
  PolicySignals clean = CalmSignals(pause, engine);
  clean.regions_flushed_sync = 10;
  clean.regions_steal_tainted = 1;
  EXPECT_GT(engine.OnPauseEnd(clean), 0u);
  EXPECT_TRUE(engine.tuning().async_flush);
}

TEST(PolicyEngineTest, ThreadRuleAgreesWithBandwidthModel) {
  const GcOptions options = EngineOptions(16);
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);

  // A device-bound read phase with a half-write mix. The engine must shrink
  // exactly when its own model says fewer workers sustain strictly more
  // bandwidth (the profile's past-knee decline).
  BandwidthModel model(MakeOptaneProfile());
  MixState mix;
  mix.write_fraction = 0.5;
  mix.active_threads = 16;
  const double at_cur = model.TotalBandwidthMbps(mix);
  mix.active_threads = 12;  // step = 16 * 0.5 / 2 = 4.
  const double at_down = model.TotalBandwidthMbps(mix);

  PolicySignals s = CalmSignals(pause, engine);
  s.read_interleave = 0.5;
  s.read_model_mbps = at_cur;
  s.read_total_mbps = at_cur * 0.95;  // 95% of the model ceiling: device-bound.
  engine.OnPauseEnd(s);
  const bool model_prefers_fewer = at_down > at_cur * 1.02;
  if (model_prefers_fewer) {
    EXPECT_EQ(engine.tuning().active_gc_threads, 12u);
  } else {
    EXPECT_EQ(engine.tuning().active_gc_threads, 16u);
  }
}

TEST(PolicyEngineTest, ThreadShrinkRequiresDeviceBoundPause) {
  const GcOptions options = EngineOptions(16);
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  PolicySignals s = CalmSignals(pause, engine);
  s.read_interleave = 0.5;
  s.read_model_mbps = 2000.0;
  s.read_total_mbps = 400.0;  // 20% utilization: CPU-bound, never shrink.
  engine.OnPauseEnd(s);
  EXPECT_GE(engine.tuning().active_gc_threads, 16u);
}

TEST(PolicyEngineTest, PrefetchWindowNarrowsAndWidens) {
  const GcOptions options = EngineOptions();
  PolicyEngine engine = MakeEngine(options);
  uint64_t pause = Warmup(engine, options);
  ASSERT_EQ(engine.tuning().prefetch_window, 64u);

  PolicySignals perfect = CalmSignals(pause, engine);
  perfect.prefetches_issued = 1000;
  perfect.prefetch_hits = 1000;  // 100% hit rate: the distance is excessive.
  EXPECT_GT(engine.OnPauseEnd(perfect), 0u);
  EXPECT_EQ(engine.tuning().prefetch_window, 32u);

  pause += 2;
  PolicySignals missing = CalmSignals(pause, engine);
  missing.prefetches_issued = 1000;
  missing.prefetch_hits = 200;  // 20% hit rate: too shallow.
  EXPECT_GT(engine.OnPauseEnd(missing), 0u);
  EXPECT_EQ(engine.tuning().prefetch_window, 64u);
}

TEST(PolicyEngineTest, ExportsMetricsGauges) {
  PolicyEngine engine = MakeEngine();
  MetricsRegistry metrics;
  engine.ExportMetrics(&metrics);
  const auto& gauges = metrics.gauges();
  EXPECT_EQ(gauges.at("policy.active_threads"), 8u);
  EXPECT_EQ(gauges.at("policy.write_cache_capacity_bytes"), kHeapBytes / 32);
  EXPECT_EQ(gauges.at("policy.async_flush"), 1u);
  EXPECT_EQ(gauges.at("policy.decisions_total"), 0u);
  EXPECT_EQ(gauges.at("policy.retreats"), 0u);
}

// --- Vm integration ---

VmOptions AdaptiveVm(uint32_t threads, uint64_t /*seed*/ = 1) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 96;
  o.heap.eden_regions = 64;
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc = AdaptiveOptions(CollectorKind::kG1, threads);
  return o;
}

WorkloadProfile AdaptiveProfile(uint64_t seed) {
  WorkloadProfile p;
  p.name = "policy-test";
  p.survival_fraction = 0.3;
  p.live_window_bytes = 4 * 1024 * 1024;
  p.total_allocation_bytes = 16 * 1024 * 1024;
  p.seed = seed;
  return p;
}

TEST(PolicyVmTest, VmBuildsEngineAndFeedsEveryPause) {
  Vm vm(AdaptiveVm(8));
  ASSERT_NE(vm.policy(), nullptr);
  SyntheticApp app(&vm, AdaptiveProfile(1));
  app.Run();
  ASSERT_GT(vm.gc_count(), 0u);
  EXPECT_EQ(vm.policy()->pauses_seen(), vm.gc_count());
  // The engine's tuning is what the collector runs with.
  EXPECT_EQ(vm.collector().tuning().active_gc_threads,
            vm.policy()->tuning().active_gc_threads);
  const auto& gauges = vm.metrics().gauges();
  EXPECT_NE(gauges.find("policy.active_threads"), gauges.end());
  EXPECT_NE(gauges.find("policy.decisions_total"), gauges.end());
  EXPECT_EQ(gauges.at("policy.decisions_total"), vm.policy()->decisions().size());
}

TEST(PolicyVmTest, NoEngineWithoutAdaptiveOption) {
  VmOptions o = AdaptiveVm(8);
  o.gc = AllOptimizationsOptions(CollectorKind::kG1, 8);
  Vm vm(o);
  EXPECT_EQ(vm.policy(), nullptr);
}

// Same seed, single GC thread (a fully deterministic schedule): the decision
// sequence must be bit-identical across runs.
TEST(PolicyVmTest, DecisionSequenceIsDeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    Vm vm(AdaptiveVm(1));
    SyntheticApp app(&vm, AdaptiveProfile(seed));
    app.Run();
    return vm.policy()->decisions();
  };
  const std::vector<PolicyDecision> a = run(42);
  const std::vector<PolicyDecision> b = run(42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pause_id, b[i].pause_id);
    EXPECT_EQ(a[i].knob, b[i].knob);
    EXPECT_EQ(a[i].old_value, b[i].old_value);
    EXPECT_EQ(a[i].new_value, b[i].new_value);
    EXPECT_EQ(a[i].retreat, b[i].retreat);
    EXPECT_EQ(a[i].reason, b[i].reason);
  }
  // A different seed is allowed to differ (and, on this workload, the pause
  // count at minimum stays equal only by coincidence) — just ensure the run
  // completes.
  run(43);
}

TEST(PolicyVmTest, GcReportPrintsPolicyDecisionTable) {
  Vm vm(AdaptiveVm(8));
  SyntheticApp app(&vm, AdaptiveProfile(7));
  app.Run();
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  PrintGcSummary(&vm, tmp);
  std::fseek(tmp, 0, SEEK_SET);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0) {
    text.append(buf, n);
  }
  std::fclose(tmp);
  EXPECT_NE(text.find("policy decisions"), std::string::npos) << text;
  // Every decision's knob name appears in the table.
  for (const PolicyDecision& d : vm.policy()->decisions()) {
    EXPECT_NE(text.find(PolicyKnobName(d.knob)), std::string::npos) << text;
  }
}

}  // namespace
}  // namespace nvmgc
