// Tests for the runtime layer: VM roots, mutator allocation paths, write
// barrier, humongous objects, and GC reporting.

#include <gtest/gtest.h>

#include <cstring>
#include <utility>

#include "src/runtime/gc_report.h"
#include "src/runtime/global_root.h"
#include "src/runtime/mutator.h"
#include "src/runtime/vm.h"

namespace nvmgc {
namespace {

VmOptions SmallVm(DeviceKind device = DeviceKind::kNvm) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 256;
  o.heap.dram_cache_regions = 32;
  o.heap.eden_regions = 32;
  o.heap.heap_device = device;
  o.gc.gc_threads = 4;
  o.gc.use_write_cache = true;
  o.gc.use_header_map = true;
  o.gc.header_map_min_threads = 2;
  return o;
}

TEST(VmTest, RootLifecycleAndReuse) {
  Vm vm(SmallVm());
  const RootHandle a = vm.NewRoot(0x10);
  const RootHandle b = vm.NewRoot(0x20);
  EXPECT_EQ(vm.GetRoot(a), 0x10u);
  EXPECT_EQ(vm.GetRoot(b), 0x20u);
  vm.SetRoot(a, 0x30);
  EXPECT_EQ(vm.GetRoot(a), 0x30u);
  EXPECT_EQ(vm.RootSlots().size(), 2u);
  vm.ReleaseRoot(a);
  EXPECT_EQ(vm.RootSlots().size(), 1u);
  const RootHandle c = vm.NewRoot(0x40);
  EXPECT_EQ(c, a);  // Slot reused.
  EXPECT_DEATH(vm.GetRoot(999), "NVMGC_CHECK");
}

TEST(VmTest, ClockAdvancesWithWork) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 64);
  const uint64_t before = vm.now_ns();
  for (int i = 0; i < 100; ++i) {
    m->Allocate({node});
  }
  EXPECT_GT(vm.now_ns(), before);
  EXPECT_EQ(vm.app_time_ns() + vm.gc_time_ns(), vm.now_ns());
}

TEST(MutatorTest, AllocationInitializesObjects) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 3, 8);
  const Address a = m->Allocate({node});
  EXPECT_EQ(obj::KlassIdOf(a), node);
  EXPECT_FALSE(obj::IsForwarded(obj::LoadMark(a)));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m->ReadRef(a, i), kNullAddress);  // Ref slots zeroed.
  }
}

TEST(MutatorTest, ArraysRememberTheirLength) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId refs = vm.heap().klasses().RegisterRefArray("Object[]");
  const KlassId bytes = vm.heap().klasses().RegisterByteArray("byte[]");
  const Address ra = m->Allocate({refs, 17});
  const Address ba = m->Allocate({bytes, 100});
  EXPECT_EQ(obj::ArrayLength(ra), 17u);
  EXPECT_EQ(obj::ArrayLength(ba), 100u);
  m->WriteRef(ra, 16, ba);
  EXPECT_EQ(m->ReadRef(ra, 16), ba);
}

TEST(MutatorTest, HumongousObjectsGetDedicatedRegions) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId bytes = vm.heap().klasses().RegisterByteArray("byte[]");
  // Larger than half a region -> humongous path.
  const Address big = m->Allocate({bytes, 48 * 1024});
  Region* region = vm.heap().RegionFor(big);
  EXPECT_EQ(region->type(), RegionType::kHumongous);
  // Humongous objects are never evacuated.
  const RootHandle root = vm.NewRoot(big);
  vm.CollectNow();
  EXPECT_EQ(vm.GetRoot(root), big);
}

TEST(MutatorTest, HumongousReferencesYoungViaRemset) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId refs = vm.heap().klasses().RegisterRefArray("Object[]");
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 8);
  const Address big = m->Allocate({refs, 5000});  // Humongous ref array.
  ASSERT_EQ(vm.heap().RegionFor(big)->type(), RegionType::kHumongous);
  const RootHandle root = vm.NewRoot(big);
  const Address young = m->Allocate({node});
  m->WriteRef(big, 123, young);  // old-like -> young: must hit the barrier.
  vm.CollectNow();               // young must survive through the remset.
  const Address moved = m->ReadRef(big, 123);
  ASSERT_NE(moved, kNullAddress);
  EXPECT_EQ(obj::KlassIdOf(moved), node);
  static_cast<void>(root);
}

TEST(MutatorTest, AllocationTriggersGcWhenEdenExhausted) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 240);
  for (int i = 0; i < 20000; ++i) {
    m->Allocate({node});
  }
  EXPECT_GT(m->gcs_triggered(), 0u);
  EXPECT_EQ(vm.gc_count(), m->gcs_triggered());
}

TEST(GcReportTest, FormatsCycleAndSummary) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 16);
  const RootHandle root = vm.NewRoot(m->Allocate({node}));
  vm.CollectNow();
  ASSERT_EQ(vm.gc_count(), 1u);
  const std::string line = FormatGcCycle(0, vm.gc_stats().cycles()[0]);
  EXPECT_NE(line.find("GC(0)"), std::string::npos);
  EXPECT_NE(line.find("pause minor"), std::string::npos);
  EXPECT_NE(line.find("objects"), std::string::npos);

  char buf[8192] = {0};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  PrintGcLog(&vm, mem);
  PrintGcSummary(&vm, mem);
  std::fclose(mem);
  EXPECT_NE(std::strstr(buf, "GC summary"), nullptr);
  EXPECT_NE(std::strstr(buf, "collections:     1"), nullptr);
  static_cast<void>(root);
}

TEST(GcReportTest, SummaryIncludesOptimizationEffectiveness) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 1, 16);
  std::vector<RootHandle> roots;
  for (int i = 0; i < 3000; ++i) {
    roots.push_back(vm.NewRoot(m->Allocate({node})));
  }
  vm.CollectNow();
  char buf[8192] = {0};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  PrintGcSummary(&vm, mem);
  std::fclose(mem);
  EXPECT_NE(std::strstr(buf, "write cache"), nullptr);
  EXPECT_NE(std::strstr(buf, "header map"), nullptr);
}

TEST(GlobalRootTest, ReleasesItsSlotOnDestruction) {
  Vm vm(SmallVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 32);
  {
    GlobalRoot root(vm, m->Allocate({node}));
    EXPECT_TRUE(root.attached());
    EXPECT_EQ(vm.RootSlots().size(), 1u);
    EXPECT_EQ(obj::KlassIdOf(root.Get()), node);
    root.Set(kNullAddress);
    EXPECT_EQ(root.Get(), kNullAddress);
  }
  EXPECT_EQ(vm.RootSlots().size(), 0u);  // RAII released the slot.
}

TEST(GlobalRootTest, MoveTransfersOwnership) {
  Vm vm(SmallVm());
  GlobalRoot a(vm, 0x40);
  GlobalRoot b(std::move(a));
  EXPECT_FALSE(a.attached());
  EXPECT_TRUE(b.attached());
  EXPECT_EQ(b.Get(), 0x40u);
  EXPECT_EQ(vm.RootSlots().size(), 1u);  // Still one slot, not two.

  GlobalRoot c(vm, 0x50);
  c = std::move(b);  // Move-assign releases c's old slot first.
  EXPECT_FALSE(b.attached());
  EXPECT_EQ(c.Get(), 0x40u);
  EXPECT_EQ(vm.RootSlots().size(), 1u);
}

TEST(GlobalRootTest, ResetDetachesAndIsIdempotent) {
  Vm vm(SmallVm());
  GlobalRoot root(vm, 0x10);
  root.Reset();
  EXPECT_FALSE(root.attached());
  EXPECT_EQ(vm.RootSlots().size(), 0u);
  root.Reset();  // Second Reset is a no-op.
  EXPECT_FALSE(root.attached());
}

TEST(GlobalRootDeathTest, DetachedAccessDies) {
  Vm vm(SmallVm());
  GlobalRoot detached;
  EXPECT_DEATH(detached.Get(), "NVMGC_CHECK");
  EXPECT_DEATH(detached.Set(0x10), "NVMGC_CHECK");
  EXPECT_DEATH(detached.handle(), "NVMGC_CHECK");
}

TEST(VmTest, DramHeapConfigWorksEndToEnd) {
  Vm vm(SmallVm(DeviceKind::kDram));
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("N", 0, 32);
  const RootHandle root = vm.NewRoot(m->Allocate({node}));
  for (int i = 0; i < 50000; ++i) {
    m->Allocate({node});
  }
  EXPECT_GT(vm.gc_count(), 0u);
  EXPECT_EQ(obj::KlassIdOf(vm.GetRoot(root)), node);
}

}  // namespace
}  // namespace nvmgc
