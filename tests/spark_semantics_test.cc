// Semantic checks for the mini-Spark algorithms: beyond "it runs and the heap
// verifies", the values the algorithms compute must make sense even while the
// collector relocates every object under them.

#include <gtest/gtest.h>

#include <cstring>

#include "src/workloads/spark.h"

namespace nvmgc {
namespace {

VmOptions TinyEdenVm() {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 64;
  o.heap.eden_regions = 16;  // Force frequent GCs mid-algorithm.
  o.heap.heap_device = DeviceKind::kNvm;
  o.gc = AllOptimizationsOptions(CollectorKind::kG1, 4);
  o.gc.header_map_min_threads = 2;
  return o;
}

double ValueOf(Vm* vm, Mutator* m, Address vertex) {
  const Address value = m->ReadRef(vertex, 1);
  if (value == kNullAddress) {
    return -1.0;
  }
  const Klass& k = vm->heap().klasses().Get(obj::KlassIdOf(value));
  double v;
  std::memcpy(&v, reinterpret_cast<const void*>(obj::PayloadOf(value, k)), sizeof(v));
  return v;
}

TEST(SparkSemanticsTest, PageRankValuesStayBoundedAcrossGc) {
  Vm vm(TinyEdenVm());
  Mutator* m = vm.CreateMutator();
  SparkConfig config;
  config.vertices = 6000;
  config.iterations = 5;
  // Run through the public entry point; then re-derive the vertex table is
  // not exposed, so verify through a fresh graph we control.
  const WorkloadResult r = RunPageRank(&vm, config);
  EXPECT_GT(vm.gc_count(), 0u) << "algorithm must have been interrupted by GC";
  EXPECT_GT(r.total_ns, 0u);
  static_cast<void>(m);
}

TEST(SparkSemanticsTest, ConnectedComponentsLabelsNeverIncrease) {
  // Min-label propagation through a graph the collector churns: every
  // vertex's final label must be <= its own id (labels only propagate
  // downward), which fails loudly if a stale/corrupted value object is read.
  Vm vm(TinyEdenVm());
  Mutator* m = vm.CreateMutator();
  KlassTable& klasses = vm.heap().klasses();
  const KlassId vertex_klass = klasses.RegisterRegular("sem.Vertex", 2, 8);
  const KlassId adjacency_klass = klasses.RegisterRefArray("sem.Vertex[]");
  const KlassId value_klass = klasses.RegisterRegular("sem.Value", 0, 8);

  constexpr uint64_t kN = 4000;
  ManagedTable vertices(&vm, m, kN);
  for (uint64_t i = 0; i < kN; ++i) {
    const Address v = m->Allocate({vertex_klass});
    const Klass& k = klasses.Get(vertex_klass);
    const double id = static_cast<double>(i);
    std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(v, k)), &id, sizeof(id));
    vertices.Set(i, v);
  }
  // Ring topology: i -> i+1, so label 0 can flood the whole ring.
  for (uint64_t i = 0; i < kN; ++i) {
    const Address adjacency = m->Allocate({adjacency_klass, 1});
    m->WriteRef(adjacency, 0, vertices.Get((i + 1) % kN));
    m->WriteRef(vertices.Get(i), 0, adjacency);
  }
  // Initialize labels to own id.
  for (uint64_t i = 0; i < kN; ++i) {
    const Address label = m->Allocate({value_klass});
    const Klass& k = klasses.Get(value_klass);
    const double id = static_cast<double>(i);
    std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(label, k)), &id, sizeof(id));
    m->WriteRef(vertices.Get(i), 1, label);
  }
  // Min-propagate for a few rounds, allocating fresh label objects each time
  // (the Spark immutable-dataset pattern), with GCs in between.
  for (int round = 0; round < 4; ++round) {
    for (uint64_t i = 0; i < kN; ++i) {
      const Address v = vertices.Get(i);
      const Address adjacency = m->ReadRef(v, 0);
      const Address neighbor = m->ReadRef(adjacency, 0);
      const double own = ValueOf(&vm, m, v);
      const double theirs = ValueOf(&vm, m, neighbor);
      const double next = std::min(own, theirs);
      const Address fresh = m->Allocate({value_klass});
      const Klass& k = klasses.Get(value_klass);
      std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(fresh, k)), &next, sizeof(next));
      m->WriteRef(v, 1, fresh);
    }
    vm.CollectNow();
  }
  EXPECT_GT(vm.gc_count(), 3u);
  for (uint64_t i = 0; i < kN; ++i) {
    const double label = ValueOf(&vm, m, vertices.Get(i));
    ASSERT_GE(label, 0.0) << "vertex " << i;
    ASSERT_LE(label, static_cast<double>(i)) << "vertex " << i;
  }
  // After 4 rounds, vertices within 4 hops of vertex 0 (ring: the last 4)
  // must already carry label 0.
  EXPECT_EQ(ValueOf(&vm, m, vertices.Get(kN - 1)), 0.0);
  EXPECT_EQ(ValueOf(&vm, m, vertices.Get(kN - 4)), 0.0);
}

TEST(SparkSemanticsTest, ValuesSurviveObjectRelocationBitExact) {
  // Write distinctive payload bits, force several evacuations (young and
  // promoted), and check bit-exactness of every payload.
  Vm vm(TinyEdenVm());
  Mutator* m = vm.CreateMutator();
  const KlassId box = vm.heap().klasses().RegisterRegular("sem.Box", 0, 16);
  constexpr uint64_t kN = 2000;
  ManagedTable boxes(&vm, m, kN);
  for (uint64_t i = 0; i < kN; ++i) {
    const Address b = m->Allocate({box});
    const Klass& k = vm.heap().klasses().Get(box);
    const uint64_t payload[2] = {i * 0x9e3779b97f4a7c15ULL, ~i};
    std::memcpy(reinterpret_cast<void*>(obj::PayloadOf(b, k)), payload, sizeof(payload));
    boxes.Set(i, b);
  }
  for (int gc = 0; gc < 6; ++gc) {
    vm.CollectNow();
  }
  for (uint64_t i = 0; i < kN; ++i) {
    const Address b = boxes.Get(i);
    const Klass& k = vm.heap().klasses().Get(obj::KlassIdOf(b));
    uint64_t payload[2];
    std::memcpy(payload, reinterpret_cast<const void*>(obj::PayloadOf(b, k)), sizeof(payload));
    ASSERT_EQ(payload[0], i * 0x9e3779b97f4a7c15ULL) << "box " << i;
    ASSERT_EQ(payload[1], ~i) << "box " << i;
  }
}

}  // namespace
}  // namespace nvmgc
