// Tests for work-stealing queues and the GC thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/gc/gc_thread_pool.h"
#include "src/gc/task_queue.h"

namespace nvmgc {
namespace {

TEST(TaskQueueTest, LifoOwnerOrder) {
  TaskQueue q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  Address v = 0;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3u);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1u);
  EXPECT_FALSE(q.Pop(&v));
}

TEST(TaskQueueTest, StealTakesOldest) {
  TaskQueue q;
  q.Push(1);
  q.Push(2);
  Address v = 0;
  ASSERT_TRUE(q.Steal(&v));
  EXPECT_EQ(v, 1u);  // FIFO from the top.
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2u);
}

TEST(TaskQueueTest, StealHalfTakesOldestHalf) {
  TaskQueue q;
  for (Address i = 1; i <= 10; ++i) {
    q.Push(i);
  }
  std::vector<Address> out;
  EXPECT_EQ(q.StealHalf(&out), 5u);
  EXPECT_EQ(out, (std::vector<Address>{1, 2, 3, 4, 5}));
  EXPECT_EQ(q.size(), 5u);
}

TEST(TaskQueueTest, StealHalfOfOneTakesIt) {
  TaskQueue q;
  q.Push(42);
  std::vector<Address> out;
  EXPECT_EQ(q.StealHalf(&out), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(TaskQueueSetTest, StealForSkipsSelfAndFindsVictim) {
  TaskQueueSet set(3);
  set.queue(2).Push(99);
  Address v = 0;
  uint32_t victim = 0;
  EXPECT_TRUE(set.StealFor(0, &v, &victim));
  EXPECT_EQ(v, 99u);
  EXPECT_EQ(victim, 2u);
  EXPECT_FALSE(set.StealFor(0, &v, &victim));
  EXPECT_TRUE(set.AllEmpty());
}

TEST(TaskQueueSetTest, StealHalfForDrainsVictims) {
  TaskQueueSet set(2);
  for (Address i = 0; i < 8; ++i) {
    set.queue(1).Push(i);
  }
  std::vector<Address> out;
  uint32_t victim = 0;
  EXPECT_EQ(set.StealHalfFor(0, &out, &victim), 4u);
  EXPECT_EQ(victim, 1u);
  EXPECT_EQ(set.queue(1).size(), 4u);
}

TEST(GcThreadPoolTest, RunParallelVisitsEveryWorkerExactlyOnce) {
  GcThreadPool pool(7);
  std::vector<std::atomic<int>> visits(7);
  pool.RunParallel([&](uint32_t id) { visits[id].fetch_add(1); });
  for (auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(GcThreadPoolTest, SequentialPhasesDoNotOverlap) {
  GcThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int phase = 0; phase < 20; ++phase) {
    pool.RunParallel([&](uint32_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), (phase + 1) * 4);
  }
}

TEST(GcThreadPoolTest, WorkersActuallyRunConcurrentlyByContract) {
  // All workers must enter the phase before any is allowed to finish
  // (rendezvous) — verifies the pool dispatches to every thread rather than
  // running the function n times on one thread.
  constexpr uint32_t kThreads = 4;
  GcThreadPool pool(kThreads);
  std::atomic<uint32_t> arrived{0};
  pool.RunParallel([&](uint32_t) {
    arrived.fetch_add(1);
    while (arrived.load() < kThreads) {
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(arrived.load(), kThreads);
}

TEST(GcThreadPoolTest, SingleThreadPool) {
  GcThreadPool pool(1);
  int runs = 0;
  const std::function<void(uint32_t)> fn = [&](uint32_t id) {
    EXPECT_EQ(id, 0u);
    ++runs;
  };
  pool.RunParallel(fn);
  pool.RunParallel(fn);
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace nvmgc
