// Unit tests for src/util.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/histogram.h"
#include "src/util/random.h"
#include "src/util/table_printer.h"

namespace nvmgc {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  NVMGC_CHECK(1 + 1 == 2);
  NVMGC_CHECK_MSG(true, "never printed");
}

TEST(CheckDeathTest, FailureReportsFileLineAndExpression) {
  EXPECT_DEATH(NVMGC_CHECK(2 + 2 == 5),
               "NVMGC_CHECK failed at .*util_test\\.cc:[0-9]+: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailureWithMessageAppendsContext) {
  EXPECT_DEATH(NVMGC_CHECK_MSG(false, "region 7 lost its twin"),
               "NVMGC_CHECK failed at .*util_test\\.cc:[0-9]+: false: "
               "region 7 lost its twin");
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, NextBelowStaysInBounds) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
  }
  EXPECT_EQ(r.NextBelow(0), 0u);
  EXPECT_EQ(r.NextBelow(1), 0u);
}

TEST(RandomTest, NextBelowIsRoughlyUniform) {
  Random r(9);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) {
    counts[r.NextBelow(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RandomTest, NextInRangeInclusive) {
  Random r(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = r.NextInRange(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All three values appear.
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextBoolMatchesProbability) {
  Random r(17);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    heads += r.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads, 30000, 1200);
}

TEST(ZipfTest, StaysInRangeAndIsSkewed) {
  ZipfGenerator zipf(1000, 0.9, 21);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Head keys dominate the tail under a zipfian law.
  int head = 0;
  for (uint64_t k = 0; k < 10; ++k) {
    head += counts.count(k) ? counts[k] : 0;
  }
  EXPECT_GT(head, 50000 / 5);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Percentile(50), 1000, 1000 * 0.07);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Random r(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(r.NextBelow(1'000'000));
  }
  const uint64_t p50 = h.Percentile(50);
  const uint64_t p95 = h.Percentile(95);
  const uint64_t p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 500'000, 50'000);
  EXPECT_NEAR(p99, 990'000, 40'000);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, LargeValuesBucketedWithBoundedError) {
  Histogram h;
  const uint64_t value = 123'456'789'000ULL;
  h.Record(value);
  const uint64_t p = h.Percentile(100);
  EXPECT_NEAR(static_cast<double>(p), static_cast<double>(value), value * 0.07);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ResetThenRecordBehavesLikeFresh) {
  Histogram h;
  h.Record(1'000'000);
  h.Reset();
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_NEAR(h.Percentile(50), 42, 42 * 0.07);
}

TEST(HistogramTest, MergeDisjointRangesPreservesCountSumAndExtremes) {
  Histogram low;
  Histogram high;
  double expected_sum = 0;
  for (int i = 0; i < 100; ++i) {
    low.Record(100 + i);  // [100, 199]
    high.Record(1'000'000 + i * 1000);  // [1e6, ~1.1e6]
    expected_sum += (100 + i) + (1'000'000 + i * 1000);
  }
  low.Merge(high);
  EXPECT_EQ(low.count(), 200u);
  EXPECT_EQ(low.min(), 100u);
  EXPECT_EQ(low.max(), 1'099'000u);
  EXPECT_NEAR(low.Mean() * low.count(), expected_sum, expected_sum * 0.07);
  // The merged median sits in the gap boundary: half the mass is low-range.
  EXPECT_LE(low.Percentile(49), 250u);
  EXPECT_GE(low.Percentile(51), 900'000u);
}

TEST(HistogramTest, MergeOverlappingRangesMatchesDirectRecording) {
  Histogram merged;
  Histogram other;
  Histogram direct;
  Random r(17);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t a = r.NextBelow(10'000);
    const uint64_t b = 5'000 + r.NextBelow(10'000);
    merged.Record(a);
    other.Record(b);
    direct.Record(a);
    direct.Record(b);
  }
  merged.Merge(other);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_DOUBLE_EQ(merged.Mean(), direct.Mean());
  for (int p : {1, 10, 25, 50, 75, 90, 99, 100}) {
    EXPECT_EQ(merged.Percentile(p), direct.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, PercentileEdgesBracketTheDistribution) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  // p0 resolves at/near the minimum, p100 at/near the maximum (both within
  // the bucketing error bound).
  EXPECT_LE(h.Percentile(0), h.Percentile(1));
  EXPECT_NEAR(h.Percentile(0), 1, 1);
  EXPECT_NEAR(h.Percentile(100), 1000, 1000 * 0.07);
  EXPECT_GE(h.Percentile(100), h.max() * 93 / 100);
}

TEST(HistogramTest, PercentileIsMonotoneInP) {
  Histogram h;
  Random r(29);
  for (int i = 0; i < 20000; ++i) {
    h.Record(1 + r.NextBelow(1'000'000'000));
  }
  uint64_t prev = 0;
  for (int p = 0; p <= 100; ++p) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "Percentile(" << p << ") < Percentile(" << p - 1 << ")";
    prev = v;
  }
}

TEST(HistogramTest, SummarizeDigest) {
  Histogram empty;
  const HistogramSummary zero = Summarize(empty);
  EXPECT_EQ(zero.count, 0u);
  EXPECT_EQ(zero.p50, 0u);
  EXPECT_EQ(zero.max, 0u);
  EXPECT_EQ(zero.mean, 0.0);

  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) {
    h.Record(v);
  }
  const HistogramSummary s = Summarize(h);
  EXPECT_EQ(s.count, 10000u);
  EXPECT_EQ(s.max, 10000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_NEAR(s.p50, 5000, 5000 * 0.07);
  EXPECT_NEAR(s.mean, 5000.5, 5000.5 * 0.01);
}

TEST(HistogramTest, RegistrySummariesCoverRecordedMetrics) {
  MetricsRegistry metrics;
  metrics.RecordHistogram("a.lat", 100);
  metrics.RecordHistogram("a.lat", 300);
  metrics.RecordHistogram("b.lat", 7);
  const auto summaries = metrics.Summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries.at("a.lat").count, 2u);
  EXPECT_EQ(summaries.at("b.lat").count, 1u);
  EXPECT_EQ(metrics.Summary("a.lat").count, 2u);
  EXPECT_EQ(metrics.Summary("missing").count, 0u);
}

TEST(TablePrinterTest, AddRowRequiresMatchingWidth) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_DEATH(t.AddRow({"only-one"}), "NVMGC_CHECK");
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.AddRow({"1", "2"});
  char buf[256] = {0};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  t.PrintCsv(mem);
  std::fclose(mem);
  EXPECT_STREQ(buf, "x,y\n1,2\n");
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(FormatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(FormatSiBytes(1024), "1.0 KiB");
  EXPECT_EQ(FormatSiBytes(3 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(FormatMillis(1500.0), "1.50 s");
  EXPECT_EQ(FormatMillis(12.5), "12.50 ms");
}

}  // namespace
}  // namespace nvmgc
