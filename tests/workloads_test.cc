// Tests for the workload layer: profiles, the synthetic-app engine, the
// mini-Spark algorithms, the Cassandra service, and the prefetch microbench.

#include <gtest/gtest.h>

#include <set>

#include "src/heap/heap_verifier.h"
#include "src/workloads/cassandra.h"
#include "src/workloads/prefetch_micro.h"
#include "src/workloads/renaissance.h"
#include "src/workloads/spark.h"
#include "src/workloads/synthetic_app.h"

namespace nvmgc {
namespace {

VmOptions TestVm(DeviceKind device = DeviceKind::kNvm) {
  VmOptions o;
  o.heap.region_bytes = 64 * 1024;
  o.heap.heap_regions = 512;
  o.heap.dram_cache_regions = 64;
  o.heap.eden_regions = 64;
  o.heap.heap_device = device;
  o.gc.gc_threads = 4;
  return o;
}

TEST(ProfilesTest, TwentyTwoRenaissanceAndFourSpark) {
  EXPECT_EQ(RenaissanceProfiles().size(), 22u);
  EXPECT_EQ(SparkProfiles().size(), 4u);
  EXPECT_EQ(AllApplicationProfiles().size(), 26u);
}

TEST(ProfilesTest, NamesAreUniqueAndLookupWorks) {
  std::set<std::string> names;
  for (const auto& p : AllApplicationProfiles()) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate profile " << p.name;
    EXPECT_EQ(RenaissanceProfile(p.name).name, p.name);
  }
  EXPECT_TRUE(names.count("akka-uct"));
  EXPECT_TRUE(names.count("page-rank"));
  EXPECT_DEATH(RenaissanceProfile("no-such-app"), "NVMGC_CHECK");
}

TEST(ProfilesTest, ProfilesEncodePaperTraits) {
  const auto nb = RenaissanceProfile("naive-bayes");
  EXPECT_LT(nb.small_object_fraction, 0.5);   // Primitive-array heavy.
  EXPECT_GE(nb.array_bytes_min, 4096u);
  const auto akka = RenaissanceProfile("akka-uct");
  EXPECT_GT(akka.chain_fraction, 0.0);        // Load-imbalanced traversal.
  const auto ml = RenaissanceProfile("movie-lens");
  EXPECT_LT(ml.total_allocation_bytes, RenaissanceProfile("page-rank").total_allocation_bytes);
}

TEST(SyntheticAppTest, RunsToCompletionAndTriggersGc) {
  Vm vm(TestVm());
  WorkloadProfile p = RenaissanceProfile("dotty");
  p.total_allocation_bytes = 16 * 1024 * 1024;
  SyntheticApp app(&vm, p);
  const WorkloadResult r = app.Run();
  EXPECT_GE(r.bytes_allocated, p.total_allocation_bytes);
  EXPECT_GT(r.gc_count, 0u);
  EXPECT_GT(r.gc_ns, 0u);
  EXPECT_EQ(r.total_ns, r.gc_ns + r.app_ns);
  HeapVerifier verifier(&vm.heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm.RootSlots(), &error)) << error;
}

TEST(SyntheticAppTest, DeterministicForSameSeed) {
  WorkloadProfile p = RenaissanceProfile("scrabble");
  p.total_allocation_bytes = 8 * 1024 * 1024;
  GcOptions gc;
  gc.gc_threads = 1;  // Single worker: fully deterministic.
  const WorkloadResult a = RunWorkload(p, TestVm().heap, gc);
  const WorkloadResult b = RunWorkload(p, TestVm().heap, gc);
  EXPECT_EQ(a.total_ns, b.total_ns);
  EXPECT_EQ(a.gc_count, b.gc_count);
}

TEST(SyntheticAppTest, NvmSlowerThanDram) {
  WorkloadProfile p = RenaissanceProfile("scala-stm-bench7");
  p.total_allocation_bytes = 16 * 1024 * 1024;
  GcOptions gc;
  gc.gc_threads = 4;
  const WorkloadResult nvm = RunWorkload(p, TestVm(DeviceKind::kNvm).heap, gc);
  const WorkloadResult dram = RunWorkload(p, TestVm(DeviceKind::kDram).heap, gc);
  EXPECT_GT(nvm.gc_ns, dram.gc_ns * 2);
  EXPECT_GT(nvm.app_ns, dram.app_ns);
}

TEST(SparkTest, PageRankRunsAndSurvivesGc) {
  VmOptions options = TestVm();
  options.heap.eden_regions = 16;  // Small eden: the iterations must GC.
  Vm vm(options);
  SparkConfig config;
  config.vertices = 8000;
  config.iterations = 4;
  const WorkloadResult r = RunPageRank(&vm, config);
  EXPECT_GT(r.gc_count, 0u);
  HeapVerifier verifier(&vm.heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm.RootSlots(), &error)) << error;
  EXPECT_TRUE(verifier.VerifyRemsetCompleteness(&error)) << error;
}

TEST(SparkTest, KMeansConvergesWithoutHeapCorruption) {
  Vm vm(TestVm());
  SparkConfig config;
  config.vertices = 4000;
  config.iterations = 4;
  config.clusters = 5;
  const WorkloadResult r = RunKMeans(&vm, config);
  EXPECT_GT(r.total_ns, 0u);
  HeapVerifier verifier(&vm.heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyParsability(&error)) << error;
}

TEST(SparkTest, ConnectedComponentsAndSssp) {
  Vm vm(TestVm());
  SparkConfig config;
  config.vertices = 2500;
  config.iterations = 3;
  EXPECT_GT(RunConnectedComponents(&vm, config).total_ns, 0u);
  EXPECT_GT(RunSssp(&vm, config).total_ns, 0u);
  HeapVerifier verifier(&vm.heap());
  std::string error;
  EXPECT_TRUE(verifier.VerifyReachable(vm.RootSlots(), &error)) << error;
}

TEST(ManagedTableTest, SetGetAcrossSegmentsAndGc) {
  Vm vm(TestVm());
  Mutator* m = vm.CreateMutator();
  const KlassId node = vm.heap().klasses().RegisterRegular("T", 0, 8);
  ManagedTable table(&vm, m, 5000, 512);
  std::vector<Address> values(5000);
  for (uint64_t i = 0; i < 5000; i += 7) {
    values[i] = m->Allocate({node});
    table.Set(i, values[i]);
  }
  vm.CollectNow();
  for (uint64_t i = 0; i < 5000; i += 7) {
    const Address v = table.Get(i);
    ASSERT_NE(v, kNullAddress);
    EXPECT_EQ(obj::KlassIdOf(v), node);
  }
}

TEST(CassandraTest, LatencyGrowsWithLoad) {
  VmOptions options = TestVm();
  Vm vm(options);
  CassandraConfig config;
  config.rows = 2000;
  CassandraService service(&vm, config);
  const LatencyResult light = service.RunPhase(5000, 20.0, 0.5);
  const LatencyResult heavy = service.RunPhase(5000, 2000.0, 0.5);
  EXPECT_GT(light.p99_ms, 0.0);
  EXPECT_GT(heavy.p99_ms, light.p99_ms);  // Overload queues requests.
  EXPECT_LE(light.p50_ms, light.p95_ms);
  EXPECT_LE(light.p95_ms, light.p99_ms);
}

TEST(CassandraTest, GcPausesInflateTailNotMedian) {
  VmOptions options = TestVm();
  options.heap.eden_regions = 16;  // Frequent GCs.
  Vm vm(options);
  CassandraConfig config;
  config.rows = 2000;
  CassandraService service(&vm, config);
  const LatencyResult r = service.RunPhase(20000, 50.0, 1.0);
  EXPECT_GT(vm.gc_count(), 0u);
  // Tail dominated by pauses, median by service time.
  EXPECT_GT(r.p99_ms, 4.0 * r.p50_ms);
}

TEST(PrefetchMicroTest, PrefetchingHelpsNvmMoreThanDram) {
  constexpr uint64_t kAccesses = 200000;
  const double dram_gain = RunPrefetchMicro(DeviceKind::kDram, false, kAccesses).seconds /
                           RunPrefetchMicro(DeviceKind::kDram, true, kAccesses).seconds;
  const double nvm_gain = RunPrefetchMicro(DeviceKind::kNvm, false, kAccesses).seconds /
                          RunPrefetchMicro(DeviceKind::kNvm, true, kAccesses).seconds;
  EXPECT_GT(dram_gain, 1.2);
  EXPECT_GT(nvm_gain, 2.0);
  EXPECT_GT(nvm_gain, dram_gain * 1.5);
}

TEST(PrefetchMicroTest, HitRateIsHigh) {
  const PrefetchMicroResult r = RunPrefetchMicro(DeviceKind::kNvm, true, 100000);
  EXPECT_GT(r.prefetch_hit_rate, 0.9);
}

}  // namespace
}  // namespace nvmgc
